#include "phylo/mlsearch.h"

#include <cmath>

namespace bgl::phylo {
namespace {

/// Multiplicative line search on one branch: try up/down steps while the
/// likelihood improves. Greedy but robust (the likelihood is unimodal in a
/// single branch length for common models).
double optimizeBranch(TreeLikelihood& like, Tree& tree, int node, double step,
                      double currentLogL, long* evaluations) {
  double best = currentLogL;
  for (double factor : {step, 1.0 / step}) {
    for (;;) {
      const double saved = tree.node(node).length;
      const double trial = saved * factor;
      if (trial < 1e-9 || trial > 50.0) break;
      tree.node(node).length = trial;
      const double logL = like.logLikelihood(tree);
      ++*evaluations;
      if (logL > best) {
        best = logL;
      } else {
        tree.node(node).length = saved;
        break;
      }
    }
  }
  return best;
}

}  // namespace

MlSearchResult mlSearch(const Tree& start, const SubstitutionModel& model,
                        const PatternSet& data, const MlSearchOptions& options) {
  MlSearchResult result;
  result.tree = start;
  Rng rng(options.seed);

  TreeLikelihood like(start, model, data, options.likelihood);
  result.logL = like.logLikelihood(result.tree);
  ++result.evaluations;

  for (int round = 0; round < options.maxRounds; ++round) {
    ++result.rounds;
    bool improved = false;

    // Branch-length sweeps.
    for (int sweep = 0; sweep < options.branchSweeps; ++sweep) {
      for (int n = 0; n < result.tree.nodeCount(); ++n) {
        if (n == result.tree.root()) continue;
        const double before = result.logL;
        result.logL = optimizeBranch(like, result.tree, n, options.branchStep,
                                     result.logL, &result.evaluations);
        improved |= result.logL > before + 1e-9;
      }
    }

    // NNI pass: try a batch of random interchanges, keep improvements.
    const int attempts = std::max(4, result.tree.tipCount());
    for (int a = 0; a < attempts; ++a) {
      Tree trial = result.tree;
      if (!trial.nni(rng)) break;
      ++result.nniTried;
      const double logL = like.logLikelihood(trial);
      ++result.evaluations;
      if (logL > result.logL + 1e-9) {
        result.tree = trial;
        result.logL = logL;
        ++result.nniAccepted;
        improved = true;
      }
    }

    if (!improved) break;
  }

  // Leave the evaluator consistent with the reported tree.
  result.logL = like.logLikelihood(result.tree);
  return result;
}

}  // namespace bgl::phylo
