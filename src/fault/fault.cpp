#include "fault/fault.h"

#include <cstdio>
#include <cstdlib>

#include "core/defs.h"
#include "obs/journal.h"

namespace bgl::fault {
namespace {

const char* kindName(Kind kind) {
  switch (kind) {
    case Kind::Launch: return "launch";
    case Kind::Memcpy: return "memcpy";
    case Kind::Alloc: return "alloc";
  }
  return "?";
}

/// Flight-record a directive firing before the throw: the exception may be
/// swallowed by a retry loop layers above, but the journal still shows the
/// fault actually triggered.
void journalFired(Kind kind, const char* framework, long long value, int code) {
  obs::Journal::instance().append(
      obs::JournalKind::kFaultInjected, code, /*instance=*/-1, /*resource=*/-1,
      /*shard=*/-1,
      std::string(kindName(kind)) + ":" + std::to_string(value) + " fired on " +
          framework);
}

/// Split `spec` on commas, dropping empty pieces (trailing commas ok).
std::vector<std::string> splitDirectives(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) out.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parseValue(const std::string& text, long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Injector::Injector() {
  if (const char* env = std::getenv("BGL_FAULT"); env != nullptr && *env) {
    std::string error;
    if (!configure(env, &error)) {
      // Environment-driven configuration has nowhere to return a code to;
      // a silently ignored spec would be worse than a noisy one.
      std::fprintf(stderr, "bgl: ignoring BGL_FAULT: %s\n", error.c_str());
    }
  }
}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

bool Injector::configure(const std::string& spec, std::string* error) {
  auto state = std::make_unique<State>();
  for (const std::string& piece : splitDirectives(spec)) {
    // [framework:]kind:value — split on the *last* two colons so the
    // optional framework prefix falls out naturally.
    const std::size_t lastColon = piece.rfind(':');
    if (lastColon == std::string::npos || lastColon + 1 >= piece.size()) {
      if (error != nullptr) *error = "fault spec directive '" + piece +
                                     "' is not [framework:]kind:value";
      return false;
    }
    const std::size_t kindStart = piece.rfind(':', lastColon - 1);
    const std::string framework =
        kindStart == std::string::npos ? "" : piece.substr(0, kindStart);
    const std::string kindText = piece.substr(
        kindStart == std::string::npos ? 0 : kindStart + 1,
        lastColon - (kindStart == std::string::npos ? 0 : kindStart + 1));
    const std::string valueText = piece.substr(lastColon + 1);

    if (!framework.empty() && framework != "cuda" && framework != "opencl" &&
        framework != "host") {
      if (error != nullptr) *error = "unknown fault framework '" + framework +
                                     "' (expected cuda, opencl or host)";
      return false;
    }
    auto directive = std::make_unique<Directive>();
    directive->framework = framework;
    if (kindText == "launch") {
      directive->kind = Kind::Launch;
    } else if (kindText == "memcpy") {
      directive->kind = Kind::Memcpy;
    } else if (kindText == "alloc") {
      directive->kind = Kind::Alloc;
    } else {
      if (error != nullptr) *error = "unknown fault kind '" + kindText +
                                     "' (expected launch, memcpy or alloc)";
      return false;
    }
    if (framework == "host" && directive->kind != Kind::Alloc) {
      if (error != nullptr) *error = "the host fault site supports only alloc "
                                     "(got '" + kindText + "')";
      return false;
    }
    long long value = 0;
    if (!parseValue(valueText, &value) || value < 1) {
      if (error != nullptr) *error = "fault value '" + valueText +
                                     "' must be a positive integer";
      return false;
    }
    directive->value = value;
    directive->remaining.store(value, std::memory_order_relaxed);
    state->directives.push_back(std::move(directive));
  }

  std::lock_guard lock(configMutex_);
  if (state->directives.empty()) {
    state_.store(nullptr, std::memory_order_release);
    return true;
  }
  State* raw = state.get();
  retired_.push_back(std::move(state));
  state_.store(raw, std::memory_order_release);
  return true;
}

void Injector::disable() {
  std::lock_guard lock(configMutex_);
  state_.store(nullptr, std::memory_order_release);
}

Counters Injector::counters() const {
  Counters out;
  const State* s = state_.load(std::memory_order_acquire);
  if (s == nullptr) return out;
  out.launches = s->launches.load(std::memory_order_relaxed);
  out.memcpys = s->memcpys.load(std::memory_order_relaxed);
  out.allocBytes = s->allocBytes.load(std::memory_order_relaxed);
  for (const auto& d : s->directives) {
    if (d->fired.load(std::memory_order_relaxed)) ++out.fired;
  }
  return out;
}

void Injector::onLaunch(const char* framework) {
  State* s = state_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->launches.fetch_add(1, std::memory_order_relaxed);
  for (auto& d : s->directives) {
    if (d->kind != Kind::Launch) continue;
    if (!d->framework.empty() && d->framework != framework) continue;
    // One-shot: exactly the thread that takes the countdown from 1 to 0
    // fires; later events drive it negative and never match again.
    if (d->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      d->fired.store(true, std::memory_order_relaxed);
      journalFired(d->kind, framework, d->value, kErrHardware);
      throw Error("fault: injected kernel-launch failure (launch " +
                      std::to_string(d->value) + " on " + framework + ")",
                  kErrHardware);
    }
  }
}

void Injector::onMemcpy(const char* framework, std::size_t bytes) {
  State* s = state_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->memcpys.fetch_add(1, std::memory_order_relaxed);
  for (auto& d : s->directives) {
    if (d->kind != Kind::Memcpy) continue;
    if (!d->framework.empty() && d->framework != framework) continue;
    if (d->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      d->fired.store(true, std::memory_order_relaxed);
      journalFired(d->kind, framework, d->value, kErrHardware);
      throw Error("fault: injected memcpy failure (transfer " +
                      std::to_string(d->value) + ", " + std::to_string(bytes) +
                      " bytes on " + framework + ")",
                  kErrHardware);
    }
  }
}

void Injector::onHostAlloc(const char* what, std::size_t bytes) {
  State* s = state_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  for (auto& d : s->directives) {
    // Host directives are always explicit (`host:alloc:N`); device-wide
    // alloc budgets never match the host checkpoint.
    if (d->kind != Kind::Alloc || d->framework != "host") continue;
    // Event-counted one-shot, same scheme as launch:N.
    if (d->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      d->fired.store(true, std::memory_order_relaxed);
      journalFired(d->kind, "host", d->value, kErrOutOfMemory);
      throw Error("fault: injected host allocation failure (" +
                      std::string(what) + ", " + std::to_string(bytes) +
                      " bytes, checkpoint " + std::to_string(d->value) + ")",
                  kErrOutOfMemory);
    }
  }
}

void Injector::onAlloc(const char* framework, std::size_t bytes) {
  State* s = state_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->allocBytes.fetch_add(bytes, std::memory_order_relaxed);
  for (auto& d : s->directives) {
    if (d->kind != Kind::Alloc) continue;
    if (d->framework == "host") continue;
    if (!d->framework.empty() && d->framework != framework) continue;
    // Persistent budget: the allocation that crosses it fails, and so
    // does every allocation after (the budget only ever shrinks).
    const long long before =
        d->remaining.fetch_sub(static_cast<long long>(bytes),
                               std::memory_order_acq_rel);
    if (before < static_cast<long long>(bytes)) {
      d->fired.store(true, std::memory_order_relaxed);
      journalFired(d->kind, framework, d->value, kErrOutOfMemory);
      throw Error("fault: device allocation budget exhausted (" +
                      std::to_string(bytes) + " bytes requested, budget " +
                      std::to_string(d->value) + " on " + framework + ")",
                  kErrOutOfMemory);
    }
  }
}

}  // namespace bgl::fault
