// Serving-layer benchmark: pooled sessions vs per-request instance
// lifecycle, and the O(depth) online-update contract.
//
// Part 1 replays a mixed many-client trace twice. The baseline pays the
// full per-request cost a service without a pool would pay — calibration
// (cold scheduler cache), bglCreateInstance, model + data staging, a full
// evaluation, bglFinalizeInstance — once per session. The pooled path
// replays the same trace through bglSessionOpen/Close, where instances
// are recycled across sessions and admission uses cached estimates. The
// acceptance gate is pooled throughput >= 3x the baseline.
//
// Part 2 builds a caterpillar tree on the simulated CUDA resource (async
// command streams), then measures the streamedLaunches delta of one
// online addTaxon + evaluate. The dirty path is O(depth) operations, one
// fused launch per level, so the delta must stay within a small constant
// of the dirtied-path length — while a full recompute issues one launch
// per internal node. Both must agree bitwise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "api/bgl.h"
#include "bench/bench_util.h"
#include "core/gamma.h"
#include "core/model.h"
#include "core/rng.h"
#include "harness/serve_trace.h"
#include "perfmodel/device_profiles.h"
#include "phylo/seqsim.h"
#include "sched/sched.h"

namespace {

using bgl::bench::JsonReport;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One session's worth of baseline work: what a pool-less service pays per
/// request. Returns the evaluation log likelihood.
double baselineRequest(int states, int patterns, int categories, int taxa,
                       unsigned seed) {
  // Cold calibration, as a fresh process (or per-request re-calibration)
  // would run it.
  bgl::sched::clearCache();
  bgl::sched::CalibrationSpec calib;
  calib.states = states;
  calib.patterns = patterns;
  calib.categories = categories;
  bgl::sched::benchmarkResource(0, calib);

  const int resource = 0;
  BglInstanceDetails details{};
  const int instance = bglCreateInstance(
      taxa, taxa, taxa, states, patterns, 1, 2 * taxa, categories, 0,
      &resource, 1, 0, 0, &details);
  if (instance < 0) {
    std::fprintf(stderr, "baseline create failed (%d)\n", instance);
    std::exit(1);
  }

  bgl::Rng rng(seed);
  const auto model = bgl::defaultModelForStates(states, seed);
  const auto es = model->eigenSystem();
  bglSetEigenDecomposition(instance, 0, es.evec.data(), es.ivec.data(),
                           es.eval.data());
  bglSetStateFrequencies(instance, 0, model->frequencies().data());
  const std::vector<double> weights(static_cast<std::size_t>(categories),
                                    1.0 / categories);
  bglSetCategoryWeights(instance, 0, weights.data());
  const auto rates = categories > 1 ? bgl::discreteGammaRates(0.5, categories)
                                    : std::vector<double>{1.0};
  bglSetCategoryRates(instance, rates.data());
  const std::vector<double> patternWeights(static_cast<std::size_t>(patterns),
                                           1.0);
  bglSetPatternWeights(instance, patternWeights.data());

  const auto tipData = bgl::phylo::randomStates(taxa, patterns, states, rng);
  std::vector<int> tip(static_cast<std::size_t>(patterns));
  for (int t = 0; t < taxa; ++t) {
    std::memcpy(tip.data(),
                tipData.data() + static_cast<std::size_t>(t) * patterns,
                sizeof(int) * static_cast<std::size_t>(patterns));
    bglSetTipStates(instance, t, tip.data());
  }

  std::vector<int> matrices;
  std::vector<double> lengths;
  for (int m = 0; m < 2 * (taxa - 1); ++m) {
    matrices.push_back(m);
    lengths.push_back(rng.uniform(0.01, 0.5));
  }
  bglUpdateTransitionMatrices(instance, 0, matrices.data(), nullptr, nullptr,
                              lengths.data(), static_cast<int>(matrices.size()));

  // Caterpillar evaluation over all taxa.
  std::vector<BglOperation> ops;
  for (int i = 0; i < taxa - 1; ++i) {
    BglOperation op;
    op.destinationPartials = taxa + i;
    op.destinationScaleWrite = BGL_OP_NONE;
    op.destinationScaleRead = BGL_OP_NONE;
    op.child1Partials = i == 0 ? 0 : taxa + i - 1;
    op.child1TransitionMatrix = 2 * i;
    op.child2Partials = i + 1;
    op.child2TransitionMatrix = 2 * i + 1;
    ops.push_back(op);
  }
  bglUpdatePartials(instance, ops.data(), static_cast<int>(ops.size()),
                    BGL_OP_NONE);
  const int rootBuffer = taxa + taxa - 2;
  const int zero = 0;
  double logL = 0.0;
  bglCalculateRootLogLikelihoods(instance, &rootBuffer, &zero, &zero, nullptr,
                                 1, &logL);
  bglFinalizeInstance(instance);
  return logL;
}

/// The mixed-client request schedule both paths replay: (states, patterns,
/// categories, taxa, seed) per session, interleaved tenants.
struct Request {
  int states, patterns, categories, taxa;
  unsigned seed;
};

std::vector<Request> requestMix() {
  // Three shape classes (a nucleotide 4-category model, a fast no-gamma
  // screen, and an amino-acid class), interleaved as three tenants would
  // issue them. Tree sizes stay inside the pool's base capacity class so
  // steady-state requests recycle instead of growing.
  return {
      {4, 300, 4, 8, 101}, {4, 200, 1, 6, 201}, {20, 120, 2, 6, 301},
      {4, 200, 1, 7, 202}, {4, 300, 4, 7, 102}, {20, 120, 2, 5, 302},
      {4, 200, 1, 5, 203}, {4, 300, 4, 8, 103}, {20, 120, 2, 6, 303},
      {4, 200, 1, 6, 204}, {4, 300, 4, 6, 104}, {20, 120, 2, 5, 304},
  };
}

}  // namespace

int main() {
  bgl::bench::printHeader(
      "Serving-layer instance pool: pooled sessions vs per-request lifecycle",
      "ISSUE 8 (likelihood-as-a-service); BEAGLE 4.1 long-lived instances");
  JsonReport report("pr8", "Serving-layer instance pool",
                    "likelihood-as-a-service, ICPP 2017 reproduction PR 8");

  const std::vector<Request> mix = requestMix();

  // ---- baseline: per-request create/calibrate/finalize ----
  const double baseStart = now();
  double baseLogL = 0.0;
  for (const Request& r : mix) {
    baseLogL = baselineRequest(r.states, r.patterns, r.categories, r.taxa,
                               r.seed);
  }
  const double baselineSeconds = now() - baseStart;

  // ---- pooled: the same sessions through the serving layer ----
  bglPoolConfigure(nullptr);
  bgl::sched::clearCache();
  const double poolStart = now();
  double poolLogL = 0.0;
  for (const Request& r : mix) {
    const int session = bglSessionOpen("bench", r.states, r.patterns,
                                       r.categories, 0, 0, 0);
    if (session < 0) {
      std::fprintf(stderr, "pooled open failed (%d): %s\n", session,
                   bglGetLastErrorMessage());
      return 1;
    }
    const auto model = bgl::defaultModelForStates(r.states, r.seed);
    const auto es = model->eigenSystem();
    const std::vector<double> weights(
        static_cast<std::size_t>(r.categories), 1.0 / r.categories);
    const auto rates = r.categories > 1
                           ? bgl::discreteGammaRates(0.5, r.categories)
                           : std::vector<double>{1.0};
    bglSessionSetModel(session, es.evec.data(), es.ivec.data(), es.eval.data(),
                       model->frequencies().data(), weights.data(),
                       rates.data(), nullptr);
    bgl::Rng rng(r.seed);
    const auto tipData =
        bgl::phylo::randomStates(r.taxa, r.patterns, r.states, rng);
    std::vector<int> tip(static_cast<std::size_t>(r.patterns));
    for (int t = 0; t < r.taxa; ++t) {
      std::memcpy(tip.data(),
                  tipData.data() + static_cast<std::size_t>(t) * r.patterns,
                  sizeof(int) * static_cast<std::size_t>(r.patterns));
      BglSessionDetails details{};
      bglSessionGetDetails(session, &details);
      // Caterpillar: attach every taxon at the previous tip's join point
      // (node ids grow monotonically; attaching at the root each time).
      bglSessionAddTaxon(session, tip.data(), details.root < 0 ? 0 : details.root,
                         rng.uniform(0.01, 0.5), rng.uniform(0.01, 0.5));
    }
    if (bglSessionLogLikelihood(session, &poolLogL) != BGL_SUCCESS) {
      std::fprintf(stderr, "pooled eval failed: %s\n", bglGetLastErrorMessage());
      return 1;
    }
    bglSessionClose(session);
  }
  const double pooledSeconds = now() - poolStart;

  BglPoolStatistics pool{};
  bglPoolGetStatistics(&pool);
  const double speedup = baselineSeconds / pooledSeconds;

  std::printf("\nrequests: %zu sessions (mixed shapes, interleaved tenants)\n",
              mix.size());
  std::printf("%-46s %10.4f s\n",
              "baseline (create/calibrate/finalize per request)",
              baselineSeconds);
  std::printf("%-46s %10.4f s\n", "pooled (bglSession*, recycled leases)",
              pooledSeconds);
  std::printf("%-46s %10.2fx\n", "speedup", speedup);
  std::printf("pool: created %llu  recycled %llu  grows %llu\n",
              pool.instancesCreated, pool.instancesRecycled, pool.reinitGrows);
  (void)baseLogL;

  report.row()
      .field("section", "pooled-vs-per-request")
      .field("requests", static_cast<int>(mix.size()))
      .field("baselineSeconds", baselineSeconds)
      .field("pooledSeconds", pooledSeconds)
      .field("speedup", speedup)
      .field("recycled", static_cast<double>(pool.instancesRecycled))
      .field("gate", "speedup >= 3x");

  bool pass = speedup >= 3.0;
  if (!pass) {
    std::fprintf(stderr, "GATE FAILED: pooled speedup %.2fx < 3x\n", speedup);
  }

  // ---- online update: O(depth) launches, bit-identical logL ----
  std::printf("\nonline update on the simulated CUDA resource "
              "(async command streams):\n");
  {
    const int states = 4, patterns = 512, categories = 4, taxa = 24;
    const int session = bglSessionOpen("bench-online", states, patterns,
                                       categories, bgl::perf::kQuadroP5000,
                                       0, 0);
    if (session < 0) {
      std::fprintf(stderr, "online open failed (%d): %s\n", session,
                   bglGetLastErrorMessage());
      return 1;
    }
    const auto model = bgl::defaultModelForStates(states, 7);
    const auto es = model->eigenSystem();
    const std::vector<double> weights(static_cast<std::size_t>(categories),
                                      1.0 / categories);
    const auto rates = bgl::discreteGammaRates(0.5, categories);
    bglSessionSetModel(session, es.evec.data(), es.ivec.data(), es.eval.data(),
                       model->frequencies().data(), weights.data(),
                       rates.data(), nullptr);
    bgl::Rng rng(7);
    const auto tipData =
        bgl::phylo::randomStates(taxa + 1, patterns, states, rng);
    std::vector<int> tip(static_cast<std::size_t>(patterns));
    for (int t = 0; t < taxa; ++t) {
      std::memcpy(tip.data(),
                  tipData.data() + static_cast<std::size_t>(t) * patterns,
                  sizeof(int) * static_cast<std::size_t>(patterns));
      BglSessionDetails details{};
      bglSessionGetDetails(session, &details);
      bglSessionAddTaxon(session, tip.data(),
                         details.root < 0 ? 0 : details.root,
                         rng.uniform(0.01, 0.5), rng.uniform(0.01, 0.5));
    }
    double warm = 0.0;
    bglSessionLogLikelihood(session, &warm);  // settle the tree

    BglSessionDetails details{};
    bglSessionGetDetails(session, &details);
    BglStatistics before{};
    bglGetStatistics(details.instance, &before);

    // One online update: a new taxon at the root dirties a path of one new
    // join node — O(1) partials ops here; O(depth) in general.
    std::memcpy(tip.data(),
                tipData.data() + static_cast<std::size_t>(taxa) * patterns,
                sizeof(int) * static_cast<std::size_t>(patterns));
    bglSessionAddTaxon(session, tip.data(), details.root, 0.1, 0.2);
    double online = 0.0;
    bglSessionLogLikelihood(session, &online);

    bglSessionGetDetails(session, &details);
    BglStatistics after{};
    bglGetStatistics(details.instance, &after);
    const unsigned long long onlineLaunches =
        after.streamedLaunches - before.streamedLaunches;

    double full = 0.0;
    bglSessionFullLogLikelihood(session, &full);
    BglStatistics final{};
    bglGetStatistics(details.instance, &final);
    const unsigned long long fullLaunches =
        final.streamedLaunches - after.streamedLaunches;

    const bool identical = online == full;
    // The dirtied path after attaching at the root is a single join node:
    // one partials level. Matrices (one fused batch) and the root kernel
    // ride along — allow a small constant.
    const bool launchesOk = onlineLaunches <= 8 && onlineLaunches > 0 &&
                            fullLaunches > onlineLaunches;

    std::printf("  online addTaxon+eval: %llu streamed launches\n",
                onlineLaunches);
    std::printf("  full recompute:       %llu streamed launches\n",
                fullLaunches);
    std::printf("  logL online %.10f  full %.10f  %s\n", online, full,
                identical ? "bit-identical" : "MISMATCH");
    report.row()
        .field("section", "online-update")
        .field("onlineStreamedLaunches", static_cast<double>(onlineLaunches))
        .field("fullStreamedLaunches", static_cast<double>(fullLaunches))
        .field("bitIdentical", identical ? 1 : 0)
        .field("gate", "online launches O(depth), logL bit-identical");
    if (!identical) {
      std::fprintf(stderr, "GATE FAILED: online logL != full logL\n");
      pass = false;
    }
    if (!launchesOk) {
      std::fprintf(stderr,
                   "GATE FAILED: online launches %llu (full %llu) not O(depth)\n",
                   onlineLaunches, fullLaunches);
      pass = false;
    }
    bglSessionClose(session);
  }

  std::printf("\n%s\n", pass ? "ALL GATES PASSED" : "GATE FAILURE");
  return pass ? 0 : 1;
}
