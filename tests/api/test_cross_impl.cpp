// Cross-implementation agreement: every implementation x framework x
// kernel-variant combination must produce the same log-likelihood as the
// serial double-precision CPU implementation. This is the test-script
// methodology of Section V-A ("we have verified correct functioning of all
// new implementations").
#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/device_profiles.h"
#include "phylo/likelihood.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

struct ImplConfig {
  const char* label;
  long requirementFlags;
  int resource;          // perf-registry id
  bool singlePrecision;
  bool nucleotideOnly;
};

const ImplConfig kConfigs[] = {
    {"cpu-serial-double", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE,
     perf::kHostCpu, false, false},
    {"cpu-serial-single", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE,
     perf::kHostCpu, true, false},
    {"cpu-sse-double", BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_NONE,
     perf::kHostCpu, false, true},
    {"cpu-avx-double", BGL_FLAG_VECTOR_AVX | BGL_FLAG_THREADING_NONE,
     perf::kHostCpu, false, true},
    {"cpu-futures", BGL_FLAG_THREADING_FUTURES, perf::kHostCpu, false, false},
    {"cpu-thread-create", BGL_FLAG_THREADING_THREAD_CREATE, perf::kHostCpu, false,
     false},
    {"cpu-thread-pool", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu, false, false},
    {"cpu-thread-pool-single", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu, true,
     false},
    {"cpu-sse-pool", BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_THREAD_POOL,
     perf::kHostCpu, false, true},
    {"cuda-host-x86", BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_KERNEL_X86_STYLE,
     perf::kHostCpu, false, false},
    {"cuda-host-gpu-style", BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_KERNEL_GPU_STYLE,
     perf::kHostCpu, false, false},
    {"opencl-host-x86", BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE,
     perf::kHostCpu, false, false},
    {"opencl-host-gpu-style", BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_GPU_STYLE,
     perf::kHostCpu, false, false},
    {"opencl-host-single", BGL_FLAG_FRAMEWORK_OPENCL, perf::kHostCpu, true, false},
    {"cuda-p5000", BGL_FLAG_FRAMEWORK_CUDA, perf::kQuadroP5000, false, false},
    {"opencl-p5000", BGL_FLAG_FRAMEWORK_OPENCL, perf::kQuadroP5000, false, false},
    {"opencl-r9nano", BGL_FLAG_FRAMEWORK_OPENCL, perf::kRadeonR9Nano, false, false},
    {"opencl-r9nano-single", BGL_FLAG_FRAMEWORK_OPENCL, perf::kRadeonR9Nano, true,
     false},
    {"opencl-s9170", BGL_FLAG_FRAMEWORK_OPENCL, perf::kFireProS9170, false, false},
    {"opencl-phi", BGL_FLAG_FRAMEWORK_OPENCL, perf::kXeonPhi7210, false, false},
    {"opencl-dualxeon", BGL_FLAG_FRAMEWORK_OPENCL, perf::kDualXeonE5, false, false},
    {"opencl-nofma", BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_FMA_OFF,
     perf::kRadeonR9Nano, false, false},
};

class CrossImpl : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossImpl, AgreesWithSerialReference) {
  const auto [configIndex, states] = GetParam();
  const ImplConfig& config = kConfigs[configIndex];
  if (config.nucleotideOnly && states != 4) GTEST_SKIP();

  // Shared problem.
  Rng rng(900 + states);
  auto tree = phylo::Tree::random(7, rng, 0.1);
  auto model = defaultModelForStates(states, 33);
  auto data = phylo::simulatePatterns(tree, *model, 80, rng);

  phylo::LikelihoodOptions refOpts;
  refOpts.categories = 4;
  refOpts.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  refOpts.resources = {perf::kHostCpu};
  phylo::TreeLikelihood ref(tree, *model, data, refOpts);
  const double reference = ref.logLikelihood();
  ASSERT_TRUE(std::isfinite(reference));

  phylo::LikelihoodOptions opts;
  opts.categories = 4;
  opts.requirementFlags =
      config.requirementFlags |
      (config.singlePrecision ? BGL_FLAG_PRECISION_SINGLE : BGL_FLAG_PRECISION_DOUBLE);
  opts.resources = {config.resource};
  opts.useScaling = config.singlePrecision;  // keep single precision in range
  phylo::TreeLikelihood like(tree, *model, data, opts);

  const double value = like.logLikelihood();
  const double tol = config.singlePrecision ? std::abs(reference) * 2e-4
                                            : std::abs(reference) * 1e-9;
  EXPECT_NEAR(value, reference, tol)
      << config.label << " impl=" << like.implName() << " states=" << states;
}

std::string crossImplName(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto [configIndex, states] = info.param;
  std::string name = kConfigs[configIndex].label;
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(states);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, CrossImpl,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kConfigs))),
                       ::testing::Values(4, 20, 61)),
    crossImplName);

// The PR 5 determinism contract (docs/PERFORMANCE.md), extended by PR 9 to
// three-way: the asynchronous level-order batched path AND the cross-call
// pipelined path (BGL_FLAG_COMPUTATION_PIPELINE, multi-stream on the
// simulated accelerators, a no-op on the CPU families) must reproduce the
// synchronous per-operation path BIT-FOR-BIT on every implementation
// family — same tree, same data, scaling on so the deferred cumulative
// accumulation is exercised too.
struct SyncAsyncConfig {
  const char* label;
  long requirementFlags;
  int resource;
};

const SyncAsyncConfig kSyncAsyncConfigs[] = {
    {"cpu-serial", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE, perf::kHostCpu},
    {"cpu-futures", BGL_FLAG_THREADING_FUTURES, perf::kHostCpu},
    {"cpu-thread-create", BGL_FLAG_THREADING_THREAD_CREATE, perf::kHostCpu},
    {"cpu-thread-pool", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu},
    {"cuda", BGL_FLAG_FRAMEWORK_CUDA, perf::kQuadroP5000},
    {"opencl", BGL_FLAG_FRAMEWORK_OPENCL, perf::kRadeonR9Nano},
};

class SyncAsyncParity : public ::testing::TestWithParam<int> {};

TEST_P(SyncAsyncParity, LogLikelihoodBitIdentical) {
  const SyncAsyncConfig& config = kSyncAsyncConfigs[GetParam()];
  Rng rng(4242);
  auto tree = phylo::Tree::random(12, rng, 0.1);
  HKY85Model model(2.0, {0.3, 0.25, 0.2, 0.25});
  auto data = phylo::simulatePatterns(tree, model, 600, rng);

  auto run = [&](long mode) {
    phylo::LikelihoodOptions opts;
    opts.categories = 4;
    opts.requirementFlags = config.requirementFlags | mode;
    opts.resources = {config.resource};
    opts.useScaling = true;  // exercise deferred cumulative accumulation
    phylo::TreeLikelihood like(tree, model, data, opts);
    return like.logLikelihood();
  };

  const double sync = run(BGL_FLAG_COMPUTATION_SYNCH);
  const double async = run(BGL_FLAG_COMPUTATION_ASYNCH);
  const double pipelined =
      run(BGL_FLAG_COMPUTATION_ASYNCH | BGL_FLAG_COMPUTATION_PIPELINE);
  ASSERT_TRUE(std::isfinite(sync)) << config.label;
  EXPECT_EQ(sync, async) << config.label;      // bitwise, not NEAR
  EXPECT_EQ(sync, pipelined) << config.label;  // bitwise, not NEAR
}

// Multi-round parity: an optimizer's call pattern — re-set every branch
// length and re-evaluate on one persistent instance. This is the pattern
// the pipelined mode overlaps across calls (round N+1 matrices enqueued
// while round N partials drain), so every round's logL must match the
// synchronous path bit-for-bit, per round, with scaling on.
TEST_P(SyncAsyncParity, MultiRoundRebranchBitIdentical) {
  const SyncAsyncConfig& config = kSyncAsyncConfigs[GetParam()];
  constexpr int kRounds = 4;
  Rng rng(5151);
  auto tree = phylo::Tree::random(12, rng, 0.1);
  HKY85Model model(2.0, {0.3, 0.25, 0.2, 0.25});
  auto data = phylo::simulatePatterns(tree, model, 400, rng);

  // Round r evaluates a tree whose branch lengths are all rescaled by
  // (1 + 0.15*r); built once so every mode sees identical inputs.
  std::vector<phylo::Tree> roundTrees;
  for (int r = 0; r < kRounds; ++r) {
    phylo::Tree scaled = tree;
    for (int i = 0; i < scaled.nodeCount(); ++i) {
      scaled.node(i).length = tree.node(i).length * (1.0 + 0.15 * r);
    }
    roundTrees.push_back(std::move(scaled));
  }

  auto run = [&](long mode) {
    phylo::LikelihoodOptions opts;
    opts.categories = 4;
    opts.requirementFlags = config.requirementFlags | mode;
    opts.resources = {config.resource};
    opts.useScaling = true;
    phylo::TreeLikelihood like(tree, model, data, opts);
    std::vector<double> logLs;
    for (const auto& t : roundTrees) logLs.push_back(like.logLikelihood(t));
    return logLs;
  };

  const auto sync = run(BGL_FLAG_COMPUTATION_SYNCH);
  const auto async = run(BGL_FLAG_COMPUTATION_ASYNCH);
  const auto pipelined =
      run(BGL_FLAG_COMPUTATION_ASYNCH | BGL_FLAG_COMPUTATION_PIPELINE);
  ASSERT_EQ(sync.size(), static_cast<std::size_t>(kRounds));
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(std::isfinite(sync[r])) << config.label << " round=" << r;
    EXPECT_EQ(sync[r], async[r]) << config.label << " round=" << r;
    EXPECT_EQ(sync[r], pipelined[r]) << config.label << " round=" << r;
  }
  // Sanity: the rescales actually changed the answer between rounds.
  EXPECT_NE(sync[0], sync[1]);
}

std::string syncAsyncName(const ::testing::TestParamInfo<int>& info) {
  std::string name = kSyncAsyncConfigs[info.param].label;
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, SyncAsyncParity,
    ::testing::Range(0, static_cast<int>(std::size(kSyncAsyncConfigs))),
    syncAsyncName);

TEST(CrossImpl, SiteLogLikelihoodsAgreeAcrossFrameworks) {
  Rng rng(77);
  auto tree = phylo::Tree::random(6, rng, 0.1);
  HKY85Model model(2.5, {0.3, 0.25, 0.2, 0.25});
  auto data = phylo::simulatePatterns(tree, model, 120, rng);

  auto run = [&](long req, int resource, std::vector<double>& site) {
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = req;
    opts.resources = {resource};
    phylo::TreeLikelihood like(tree, model, data, opts);
    like.logLikelihood();
    site.resize(data.patterns);
    ASSERT_EQ(bglGetSiteLogLikelihoods(like.instance(), site.data()), BGL_SUCCESS);
  };

  std::vector<double> cpu, cuda, opencl;
  run(BGL_FLAG_THREADING_NONE, perf::kHostCpu, cpu);
  run(BGL_FLAG_FRAMEWORK_CUDA, perf::kQuadroP5000, cuda);
  run(BGL_FLAG_FRAMEWORK_OPENCL, perf::kRadeonR9Nano, opencl);
  for (int k = 0; k < data.patterns; ++k) {
    EXPECT_NEAR(cpu[k], cuda[k], 1e-9);
    EXPECT_NEAR(cuda[k], opencl[k], 1e-12);  // identical shared kernels
  }
}

TEST(CrossImpl, PartialsRoundTripThroughEveryFramework) {
  Rng rng(78);
  auto tree = phylo::Tree::random(4, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, 30, rng);

  auto partialsOf = [&](long req, int resource) {
    phylo::LikelihoodOptions opts;
    opts.categories = 2;
    opts.requirementFlags = req;
    opts.resources = {resource};
    phylo::TreeLikelihood like(tree, model, data, opts);
    like.logLikelihood();
    std::vector<double> p(2ull * data.patterns * 4);
    EXPECT_EQ(bglGetPartials(like.instance(), tree.root(), p.data()), BGL_SUCCESS);
    return p;
  };

  const auto a = partialsOf(BGL_FLAG_THREADING_NONE, perf::kHostCpu);
  const auto b = partialsOf(BGL_FLAG_FRAMEWORK_CUDA, perf::kHostCpu);
  const auto c = partialsOf(BGL_FLAG_FRAMEWORK_OPENCL, perf::kHostCpu);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
    EXPECT_NEAR(b[i], c[i], 1e-12);
  }
}

}  // namespace
}  // namespace bgl
