// Host execution engine for simulated accelerator kernels.
//
// Both framework runtimes lower a kernel launch to "run this work-group
// function for every group id", which this executor parallelizes across
// host threads. Each worker owns a local-memory arena reused across groups
// (the simulated analog of on-chip local/shared memory).
#pragma once

#include "core/thread_pool.h"
#include "hal/hal.h"

namespace bgl::hal {

/// Execute `fn` for every work-group described by `dims`, using at most
/// `maxWorkers` concurrent host workers (0 = all pool threads).
void executeGrid(KernelFn fn, const LaunchDims& dims, const KernelArgs& args,
                 unsigned maxWorkers = 0);

}  // namespace bgl::hal
