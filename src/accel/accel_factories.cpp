#include "accel/accel_factories.h"

#include "accel/accel_impl.h"
#include "clsim/cl_runtime.h"
#include "cudasim/cuda_device.h"
#include "perfmodel/device_profiles.h"

namespace bgl::accel {
namespace {

long resourceProcessorFlag(int resource) {
  switch (perf::deviceRegistry().at(resource).deviceClass) {
    case perf::DeviceClass::Gpu: return BGL_FLAG_PROCESSOR_GPU;
    case perf::DeviceClass::ManyCore: return BGL_FLAG_PROCESSOR_PHI;
    default: return BGL_FLAG_PROCESSOR_CPU;
  }
}

constexpr long kCommonFlags =
    BGL_FLAG_PRECISION_SINGLE | BGL_FLAG_PRECISION_DOUBLE |
    BGL_FLAG_COMPUTATION_SYNCH | BGL_FLAG_COMPUTATION_ASYNCH |
    BGL_FLAG_COMPUTATION_PIPELINE |
    BGL_FLAG_SCALING_MANUAL | BGL_FLAG_SCALING_ALWAYS |
    BGL_FLAG_KERNEL_GPU_STYLE | BGL_FLAG_KERNEL_X86_STYLE | BGL_FLAG_FMA_OFF;

class CudaFactory final : public ImplementationFactory {
 public:
  std::string name() const override { return "Accel-CUDA"; }
  int priority() const override { return 40; }  // prefer CUDA on NVIDIA

  long supportFlags(int resource) const override {
    return kCommonFlags | BGL_FLAG_FRAMEWORK_CUDA | resourceProcessorFlag(resource);
  }

  bool servesResource(int resource) const override {
    for (int r : cudasim::visibleDeviceProfiles()) {
      if (r == resource) return true;
    }
    return false;
  }

  std::unique_ptr<Implementation> create(const InstanceConfig& cfg) override {
    if (!servesResource(cfg.resource)) return nullptr;
    auto device = cudasim::createDevice(cfg.resource);
    if (cfg.flags & BGL_FLAG_PRECISION_SINGLE) {
      return std::make_unique<AccelImpl<float>>(cfg, std::move(device));
    }
    return std::make_unique<AccelImpl<double>>(cfg, std::move(device));
  }
};

class OpenClFactory final : public ImplementationFactory {
 public:
  std::string name() const override { return "Accel-OpenCL"; }
  int priority() const override { return 35; }

  long supportFlags(int resource) const override {
    return kCommonFlags | BGL_FLAG_FRAMEWORK_OPENCL | resourceProcessorFlag(resource);
  }

  bool servesResource(int resource) const override {
    for (const auto& p : clsim::platforms()) {
      for (int r : p.deviceProfiles) {
        if (r == resource) return true;
      }
    }
    return false;
  }

  std::unique_ptr<Implementation> create(const InstanceConfig& cfg) override {
    if (!servesResource(cfg.resource)) return nullptr;
    auto device = clsim::createDeviceByProfile(cfg.resource);
    if (cfg.flags & BGL_FLAG_PRECISION_SINGLE) {
      return std::make_unique<AccelImpl<float>>(cfg, std::move(device));
    }
    return std::make_unique<AccelImpl<double>>(cfg, std::move(device));
  }
};

}  // namespace

void appendAccelFactories(std::vector<std::unique_ptr<ImplementationFactory>>& out) {
  out.push_back(std::make_unique<CudaFactory>());
  out.push_back(std::make_unique<OpenClFactory>());
}

}  // namespace bgl::accel
