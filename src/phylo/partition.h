// Partitioned and multi-device analyses.
//
// Section IV-F: "application programs running partitioned analyses can
// invoke multiple library instances, one for each data subset" — each
// partition gets its own model, its own instance, and (optionally) its own
// hardware resource; instance evaluations run concurrently.
//
// The paper's conclusion sketches the complementary feature: splitting a
// single data subset across multiple devices by site patterns, with one
// instance per device. SplitLikelihood implements that: the total log
// likelihood is the sum over pattern shards, so shards evaluate
// independently and concurrently on different resources.
#pragma once

#include <memory>
#include <vector>

#include "core/model.h"
#include "core/patterns.h"
#include "phylo/likelihood.h"
#include "phylo/tree.h"

namespace bgl::phylo {

/// One data subset of a partitioned analysis.
struct PartitionSpec {
  PatternSet data;
  const SubstitutionModel* model = nullptr;  ///< borrowed, must outlive
  LikelihoodOptions options;
};

/// Multiple (model, data, instance) triples sharing one tree: the
/// partitioned-analysis pattern of Section IV-F.
class PartitionedLikelihood {
 public:
  PartitionedLikelihood(const Tree& tree, const std::vector<PartitionSpec>& specs,
                        bool concurrent = true);

  /// Sum of per-partition log likelihoods for `tree`.
  double logLikelihood(const Tree& tree);

  int partitionCount() const { return static_cast<int>(parts_.size()); }
  const std::string& implName(int partition) const {
    return parts_[partition]->implName();
  }

 private:
  std::vector<std::unique_ptr<TreeLikelihood>> parts_;
  bool concurrent_;
};

/// One alignment split across several resources by site patterns
/// (multi-device execution; the conclusion's planned extension). The split
/// preserves per-pattern weights, so the shard log likelihoods add up to
/// exactly the single-instance value.
class SplitLikelihood {
 public:
  /// `shardOptions[i]` selects the resource/implementation of shard i;
  /// patterns are dealt round-robin across shards.
  SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                  const PatternSet& data,
                  const std::vector<LikelihoodOptions>& shardOptions,
                  bool concurrent = true);

  double logLikelihood(const Tree& tree);

  int shardCount() const { return static_cast<int>(shards_.size()); }
  int shardPatterns(int shard) const { return shardPatterns_[shard]; }
  const std::string& implName(int shard) const { return shards_[shard]->implName(); }

 private:
  std::vector<std::unique_ptr<TreeLikelihood>> shards_;
  std::vector<int> shardPatterns_;
  bool concurrent_;
};

/// Deal `data`'s patterns round-robin into `shards` subsets (weights kept).
std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards);

}  // namespace bgl::phylo
