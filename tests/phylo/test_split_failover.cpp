// Shard failover in SplitLikelihood under injected device faults: failing
// shards are quarantined, survivors absorb their patterns, the CPU
// fallback catches an all-shards failure, and the recovered result matches
// a serial host-CPU single instance.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/bgl.h"
#include "core/defs.h"
#include "core/model.h"
#include "core/rng.h"
#include "phylo/likelihood.h"
#include "phylo/partition.h"
#include "phylo/seqsim.h"
#include "phylo/tree.h"
#include "sched/sched.h"

namespace bgl::phylo {
namespace {

constexpr int kTips = 8;
constexpr int kPatterns = 200;

struct Problem {
  Tree tree;
  std::unique_ptr<SubstitutionModel> model;
  PatternSet data;
};

Problem makeProblem() {
  Rng rng(4242);
  Problem p{Tree::random(kTips, rng), defaultModelForStates(4, 4242), {}};
  p.data.taxa = kTips;
  p.data.patterns = kPatterns;
  p.data.states = randomStates(kTips, kPatterns, 4, rng);
  p.data.weights.assign(kPatterns, 1.0);
  p.data.originalSites = kPatterns;
  return p;
}

double referenceLogL(const Problem& p) {
  LikelihoodOptions ref;
  ref.resources = {0};
  ref.requirementFlags = BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_NONE |
                         BGL_FLAG_VECTOR_NONE | BGL_FLAG_PRECISION_DOUBLE;
  TreeLikelihood like(p.tree, *p.model, p.data, ref);
  return like.logLikelihood(p.tree);
}

LikelihoodOptions cudaShard() {
  LikelihoodOptions o;
  o.resources = {0};
  o.requirementFlags = BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE;
  return o;
}

LikelihoodOptions serialShard() {
  LikelihoodOptions o;
  o.resources = {0};
  o.requirementFlags = BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_NONE |
                       BGL_FLAG_VECTOR_NONE | BGL_FLAG_PRECISION_DOUBLE;
  return o;
}

/// Serial evaluation keeps fault firing order deterministic across runs.
SplitOptions serialSplit() {
  SplitOptions split;
  split.mode = SplitMode::Equal;
  split.concurrent = false;
  return split;
}

class SplitFailover : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS); }
};

TEST_F(SplitFailover, LaunchFaultQuarantinesShardAndPreservesLogL) {
  const Problem p = makeProblem();
  const double expected = referenceLogL(p);
  const auto before = sched::counters();

  SplitLikelihood like(p.tree, *p.model, p.data, {cudaShard(), serialShard()},
                       serialSplit());
  ASSERT_EQ(bglSetFaultSpec("launch:2"), BGL_SUCCESS);
  const double logL = like.logLikelihood(p.tree);

  // The surviving serial shard holds every pattern in original index
  // order, so the recovered value is bit-identical to the single-instance
  // reference.
  EXPECT_EQ(logL, expected);
  EXPECT_EQ(like.failoverCount(), 1);
  EXPECT_EQ(like.quarantinedShards(), std::vector<int>({0}));
  EXPECT_NE(like.shardError(0).find("fault"), std::string::npos);
  EXPECT_EQ(like.shardPatterns(0), 0);
  EXPECT_EQ(like.shardPatterns(1), kPatterns);
  EXPECT_FALSE(like.usedCpuFallback());

  const auto after = sched::counters();
  EXPECT_EQ(after.failovers, before.failovers + 1);
  EXPECT_EQ(after.quarantinedShards, before.quarantinedShards + 1);

  // The quarantine is permanent: later rounds stay on the survivors and
  // stay exact.
  EXPECT_EQ(like.logLikelihood(p.tree), expected);
  EXPECT_EQ(like.failoverCount(), 1);
}

TEST_F(SplitFailover, ConstructionFaultQuarantinesAtBuildTime) {
  const Problem p = makeProblem();
  const double expected = referenceLogL(p);

  // A 1-byte budget fails the CUDA shard's very first device allocation,
  // inside the TreeLikelihood constructor.
  ASSERT_EQ(bglSetFaultSpec("alloc:1"), BGL_SUCCESS);
  SplitLikelihood like(p.tree, *p.model, p.data, {cudaShard(), serialShard()},
                       serialSplit());
  ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);

  EXPECT_EQ(like.failoverCount(), 1);
  EXPECT_EQ(like.quarantinedShards(), std::vector<int>({0}));
  EXPECT_EQ(like.logLikelihood(p.tree), expected);
}

TEST_F(SplitFailover, AllShardsFailedEngagesCpuFallback) {
  const Problem p = makeProblem();
  const double expected = referenceLogL(p);

  SplitLikelihood like(p.tree, *p.model, p.data, {cudaShard(), cudaShard()},
                       serialSplit());
  // Both shards launch kernels; the 1st and 2nd launch events each fire
  // one directive, so the whole split is dead after one round.
  ASSERT_EQ(bglSetFaultSpec("launch:1,launch:2"), BGL_SUCCESS);
  const double logL = like.logLikelihood(p.tree);

  EXPECT_TRUE(like.usedCpuFallback());
  EXPECT_GE(like.failoverCount(), 1);
  EXPECT_EQ(like.shardPatterns(0), kPatterns);
  EXPECT_EQ(like.shardPatterns(1), 0);
  EXPECT_DOUBLE_EQ(logL, expected);
}

TEST_F(SplitFailover, FailoverDisabledPropagatesTheError) {
  const Problem p = makeProblem();
  SplitOptions split = serialSplit();
  split.failover = false;

  SplitLikelihood like(p.tree, *p.model, p.data, {cudaShard(), serialShard()},
                       split);
  ASSERT_EQ(bglSetFaultSpec("launch:1"), BGL_SUCCESS);
  try {
    like.logLikelihood(p.tree);
    FAIL() << "expected the injected fault to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), kErrHardware);
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos);
  }
}

}  // namespace
}  // namespace bgl::phylo
