#include "hal/workgroup_executor.h"

#include <vector>

namespace bgl::hal {

void executeGrid(KernelFn fn, const LaunchDims& dims, const KernelArgs& args,
                 unsigned maxWorkers) {
  if (dims.numGroups <= 0) return;

  // Chunk groups so each task amortizes queue overhead; one arena per task.
  auto& pool = globalThreadPool();
  unsigned workers = maxWorkers == 0 ? pool.size() + 1 : maxWorkers;
  const int chunks = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers) * 4,
                            static_cast<std::size_t>(dims.numGroups)));
  const int groupsPerChunk = (dims.numGroups + chunks - 1) / chunks;

  pool.parallelFor(
      chunks,
      [&](int chunk) {
        std::vector<std::byte> localMem(dims.localMemBytes);
        WorkGroupCtx ctx;
        ctx.groupSize = dims.groupSize;
        ctx.numGroups = dims.numGroups;
        ctx.localMem = localMem.empty() ? nullptr : localMem.data();
        ctx.localMemBytes = dims.localMemBytes;
        const int begin = chunk * groupsPerChunk;
        const int end = std::min(dims.numGroups, begin + groupsPerChunk);
        for (int g = begin; g < end; ++g) {
          ctx.groupId = g;
          fn(ctx, args);
        }
      },
      maxWorkers == 0 ? 0 : maxWorkers);
}

void executeGridBatch(const GridBatchItem* items, std::size_t count,
                      unsigned maxWorkers) {
  if (count == 0) return;
  if (count == 1) {
    executeGrid(items[0].fn, items[0].dims, *items[0].args, maxWorkers);
    return;
  }

  // Concatenate the items' group ranges into one global group space.
  std::vector<int> offsets(count + 1, 0);
  std::size_t maxLocalMem = 0;
  for (std::size_t i = 0; i < count; ++i) {
    offsets[i + 1] = offsets[i] + std::max(0, items[i].dims.numGroups);
    maxLocalMem = std::max(maxLocalMem, items[i].dims.localMemBytes);
  }
  const int totalGroups = offsets[count];
  if (totalGroups <= 0) return;

  auto& pool = globalThreadPool();
  unsigned workers = maxWorkers == 0 ? pool.size() + 1 : maxWorkers;
  const int chunks = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers) * 4,
                            static_cast<std::size_t>(totalGroups)));
  const int groupsPerChunk = (totalGroups + chunks - 1) / chunks;

  pool.parallelFor(
      chunks,
      [&](int chunk) {
        std::vector<std::byte> localMem(maxLocalMem);
        const int begin = chunk * groupsPerChunk;
        const int end = std::min(totalGroups, begin + groupsPerChunk);
        std::size_t item = 0;
        for (int g = begin; g < end; ++g) {
          while (g >= offsets[item + 1]) ++item;
          const GridBatchItem& it = items[item];
          WorkGroupCtx ctx;
          ctx.groupId = g - offsets[item];
          ctx.groupSize = it.dims.groupSize;
          ctx.numGroups = it.dims.numGroups;
          ctx.localMem = it.dims.localMemBytes ? localMem.data() : nullptr;
          ctx.localMemBytes = it.dims.localMemBytes;
          it.fn(ctx, *it.args);
        }
      },
      maxWorkers == 0 ? 0 : maxWorkers);
}

}  // namespace bgl::hal
