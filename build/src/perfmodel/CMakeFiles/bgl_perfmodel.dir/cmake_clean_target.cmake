file(REMOVE_RECURSE
  "libbgl_perfmodel.a"
)
