file(REMOVE_RECURSE
  "CMakeFiles/bgl_harness.dir/genomictest.cpp.o"
  "CMakeFiles/bgl_harness.dir/genomictest.cpp.o.d"
  "libbgl_harness.a"
  "libbgl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
