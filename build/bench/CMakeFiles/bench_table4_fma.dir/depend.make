# Empty dependencies file for bench_table4_fma.
# This may be replaced when dependencies are built.
