#include "phylo/nexus.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/defs.h"

namespace bgl::phylo {
namespace {

/// Tokenizer: NEXUS is word-based with [] comments, ; terminators, and
/// case-insensitive keywords.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Next token, or empty string at end. Punctuation ; = , stand alone.
  std::string next() {
    skipSpaceAndComments();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (c == ';' || c == '=' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '\'') {  // quoted token
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '\'') out += text_[pos_++];
      if (pos_ < text_.size()) ++pos_;
      return out;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(d)) || d == ';' || d == '=' ||
          d == ',' || d == '[') {
        break;
      }
      out += d;
      ++pos_;
    }
    return out;
  }

  /// Peek without consuming.
  std::string peek() {
    const std::size_t save = pos_;
    std::string token = next();
    pos_ = save;
    return token;
  }

  /// Raw characters until the next ';' (for MATRIX rows and TREE strings).
  std::string untilSemicolon() {
    skipSpaceAndComments();
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != ';') {
      if (text_[pos_] == '[') {
        skipSpaceAndComments();
        continue;
      }
      out += text_[pos_++];
    }
    if (pos_ < text_.size()) ++pos_;  // consume ';'
    return out;
  }

  bool atEnd() {
    skipSpaceAndComments();
    return pos_ >= text_.size();
  }

 private:
  void skipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '[') {
        int depth = 1;
        ++pos_;
        while (pos_ < text_.size() && depth > 0) {
          if (text_[pos_] == '[') ++depth;
          if (text_[pos_] == ']') --depth;
          ++pos_;
        }
        continue;
      }
      break;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

void skipToSemicolon(Lexer& lex) { lex.untilSemicolon(); }

void parseDimensions(Lexer& lex, NexusData& out) {
  for (;;) {
    std::string token = lower(lex.next());
    if (token.empty() || token == ";") break;
    if (token == "ntax" || token == "nchar") {
      if (lex.next() != "=") throw Error("NEXUS: expected '=' in DIMENSIONS");
      const std::string value = lex.next();
      try {
        (token == "ntax" ? out.taxa : out.characters) = std::stoi(value);
      } catch (...) {
        throw Error("NEXUS: bad number in DIMENSIONS: " + value);
      }
    }
  }
}

void parseFormat(Lexer& lex, NexusData& out) {
  for (;;) {
    std::string token = lower(lex.next());
    if (token.empty() || token == ";") break;
    if (token == "datatype" || token == "gap" || token == "missing") {
      if (lex.next() != "=") throw Error("NEXUS: expected '=' in FORMAT");
      const std::string value = lower(lex.next());
      if (token == "datatype") {
        if (value == "dna" || value == "nucleotide" || value == "rna") {
          out.dataType = NexusDataType::Dna;
        } else if (value == "protein") {
          out.dataType = NexusDataType::Protein;
        } else {
          throw Error("NEXUS: unsupported datatype '" + value + "'");
        }
      } else if (token == "gap") {
        out.gapChar = value.empty() ? '-' : value[0];
      } else {
        out.missingChar = value.empty() ? '?' : value[0];
      }
    }
  }
}

void parseMatrix(Lexer& lex, NexusData& out) {
  if (out.taxa <= 0 || out.characters <= 0) {
    throw Error("NEXUS: MATRIX before DIMENSIONS");
  }
  // MATRIX rows are line-oriented: "name chunk [chunk...]" per line, with
  // interleaved files repeating the names in later blocks. A line whose
  // first token is a known name (or a new name while NTAX is not yet
  // reached) starts/extends that taxon; other lines continue the previous
  // taxon (wrapped sequential format).
  const std::string raw = lex.untilSemicolon();
  std::map<std::string, int> indexOf;
  int lastTaxon = -1;
  std::istringstream lines(raw);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream in(line);
    std::string first;
    if (!(in >> first)) continue;

    int taxon;
    std::string chunk;
    const auto known = indexOf.find(first);
    if (known != indexOf.end()) {
      taxon = known->second;
    } else if (static_cast<int>(out.taxonNames.size()) < out.taxa) {
      taxon = static_cast<int>(out.taxonNames.size());
      indexOf[first] = taxon;
      out.taxonNames.push_back(first);
      out.sequences.emplace_back();
    } else if (lastTaxon >= 0) {
      taxon = lastTaxon;  // continuation line: `first` is sequence data
      out.sequences[taxon] += first;
    } else {
      throw Error("NEXUS: unexpected token in MATRIX: " + first);
    }
    while (in >> chunk) out.sequences[taxon] += chunk;
    lastTaxon = taxon;
  }
  if (static_cast<int>(out.taxonNames.size()) != out.taxa) {
    throw Error("NEXUS: MATRIX has " + std::to_string(out.taxonNames.size()) +
                " taxa, expected " + std::to_string(out.taxa));
  }
  for (const auto& seq : out.sequences) {
    if (static_cast<int>(seq.size()) != out.characters) {
      throw Error("NEXUS: sequence length mismatch in MATRIX");
    }
  }
}

void parseTrees(Lexer& lex, NexusData& out) {
  std::map<std::string, int> translate;  // label -> taxon index
  // Default translation: data-block taxon names.
  for (std::size_t i = 0; i < out.taxonNames.size(); ++i) {
    translate[out.taxonNames[i]] = static_cast<int>(i);
  }

  for (;;) {
    std::string token = lower(lex.next());
    if (token.empty() || token == "end" || token == "endblock") {
      skipToSemicolon(lex);
      break;
    }
    if (token == "translate") {
      const std::string body = lex.untilSemicolon();
      std::istringstream in(body);
      std::string key, value;
      while (in >> key >> value) {
        if (!value.empty() && value.back() == ',') value.pop_back();
        int index;
        if (translate.count(value) != 0) {
          index = translate[value];
        } else {
          index = static_cast<int>(translate.size());
          translate[value] = index;
        }
        translate[key] = index;
        std::string comma;
        const auto save = in.tellg();
        if (in >> comma && comma != ",") in.seekg(save);
      }
    } else if (token == "tree") {
      std::string name = lex.next();
      if (lex.next() != "=") throw Error("NEXUS: expected '=' in TREE");
      std::string newick = lex.untilSemicolon();
      // Strip rooting comments like [&R] (already removed) and rewrite
      // labels through the translate table into t<i> form.
      std::string rewritten;
      for (std::size_t i = 0; i < newick.size();) {
        const char c = newick[i];
        if (c == '(' || c == ')' || c == ',' || c == ':') {
          rewritten += c;
          ++i;
          if (c == ':') {  // copy the number verbatim
            while (i < newick.size() &&
                   (std::isdigit(static_cast<unsigned char>(newick[i])) ||
                    newick[i] == '.' || newick[i] == 'e' || newick[i] == 'E' ||
                    newick[i] == '-' || newick[i] == '+')) {
              rewritten += newick[i++];
            }
          }
          continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
          ++i;
          continue;
        }
        std::string label;
        while (i < newick.size() && newick[i] != '(' && newick[i] != ')' &&
               newick[i] != ',' && newick[i] != ':' &&
               !std::isspace(static_cast<unsigned char>(newick[i]))) {
          label += newick[i++];
        }
        const auto it = translate.find(label);
        if (it == translate.end()) {
          throw Error("NEXUS: unknown taxon label '" + label + "' in tree");
        }
        rewritten += "t" + std::to_string(it->second);
      }
      rewritten += ";";
      out.trees.emplace_back(name, Tree::fromNewick(rewritten));
    } else if (token == ";") {
      continue;
    } else {
      skipToSemicolon(lex);
    }
  }
}

}  // namespace

NexusData parseNexus(const std::string& text) {
  Lexer lex(text);
  const std::string magic = lower(lex.next());
  if (magic != "#nexus") throw Error("NEXUS: missing #NEXUS header");

  NexusData out;
  while (!lex.atEnd()) {
    std::string token = lower(lex.next());
    if (token != "begin") continue;
    std::string block = lower(lex.next());
    skipToSemicolon(lex);  // 'begin <name>;'

    if (block == "data" || block == "characters" || block == "taxa") {
      for (;;) {
        std::string cmd = lower(lex.next());
        if (cmd.empty() || cmd == "end" || cmd == "endblock") {
          skipToSemicolon(lex);
          break;
        }
        if (cmd == "dimensions") {
          parseDimensions(lex, out);
        } else if (cmd == "format") {
          parseFormat(lex, out);
        } else if (cmd == "matrix") {
          parseMatrix(lex, out);
        } else if (cmd == "taxlabels") {
          const std::string body = lex.untilSemicolon();
          std::istringstream in(body);
          std::string label;
          while (in >> label) out.taxonNames.push_back(label);
        } else {
          skipToSemicolon(lex);
        }
      }
    } else if (block == "trees") {
      parseTrees(lex, out);
    } else {
      // Unknown block: skip to END;.
      for (;;) {
        std::string cmd = lower(lex.next());
        if (cmd.empty()) break;
        if (cmd == "end" || cmd == "endblock") {
          skipToSemicolon(lex);
          break;
        }
        if (cmd != ";") skipToSemicolon(lex);
      }
    }
  }
  return out;
}

std::vector<int> NexusData::encodeStates() const {
  if (sequences.empty()) throw Error("NexusData: no sequence matrix");
  std::vector<int> out(static_cast<std::size_t>(taxa) * characters);
  for (int t = 0; t < taxa; ++t) {
    for (int k = 0; k < characters; ++k) {
      const char c = sequences[t][k];
      if (c == gapChar || c == missingChar) {
        out[static_cast<std::size_t>(t) * characters + k] = -1;
      } else {
        out[static_cast<std::size_t>(t) * characters + k] =
            dataType == NexusDataType::Dna ? nucleotideState(c) : aminoAcidState(c);
      }
    }
  }
  return out;
}

std::string writeNexus(const NexusData& data) {
  std::ostringstream os;
  os << "#NEXUS\n\nBEGIN DATA;\n";
  os << "  DIMENSIONS NTAX=" << data.taxa << " NCHAR=" << data.characters << ";\n";
  os << "  FORMAT DATATYPE="
     << (data.dataType == NexusDataType::Dna ? "DNA" : "PROTEIN") << " GAP="
     << data.gapChar << " MISSING=" << data.missingChar << ";\n  MATRIX\n";
  for (int t = 0; t < data.taxa; ++t) {
    os << "    " << data.taxonNames[t] << "  " << data.sequences[t] << "\n";
  }
  os << "  ;\nEND;\n";
  if (!data.trees.empty()) {
    os << "\nBEGIN TREES;\n  TRANSLATE\n";
    for (int t = 0; t < data.taxa; ++t) {
      os << "    " << (t + 1) << " " << data.taxonNames[t]
         << (t + 1 < data.taxa ? ",\n" : ";\n");
    }
    for (const auto& [name, tree] : data.trees) {
      // Rewrite t<i> labels to 1-based translate keys.
      std::string newick = tree.toNewick();
      std::string rewritten;
      for (std::size_t i = 0; i < newick.size();) {
        if (newick[i] == 't' &&
            i + 1 < newick.size() &&
            std::isdigit(static_cast<unsigned char>(newick[i + 1]))) {
          ++i;
          int index = 0;
          while (i < newick.size() &&
                 std::isdigit(static_cast<unsigned char>(newick[i]))) {
            index = index * 10 + (newick[i++] - '0');
          }
          rewritten += std::to_string(index + 1);
        } else {
          rewritten += newick[i++];
        }
      }
      os << "  TREE " << name << " = " << rewritten << "\n";
    }
    os << "END;\n";
  }
  return os.str();
}

}  // namespace bgl::phylo
