// The single shared kernel set used by BOTH framework runtimes.
//
// Section VII-A of the paper: "There is a single set of kernels for both
// frameworks, with keywords for each being defined at the pre-processor
// stage." Here the sharing is structural: kernels are host function
// templates instantiated per (precision, state count, hardware variant)
// and both cudasim and clsim obtain them through lookupKernel(). The
// framework-specific part — buffer models, sub-region addressing, launch
// mechanics, overhead profile — lives entirely in the runtimes.
//
// Hardware-specific variants (Section VII-B):
//  * GpuStyle — one work-item per (pattern, state); transition matrices are
//    staged into local memory per work-group before the compute phase.
//  * X86Style — one work-item per pattern, looping over the state space,
//    no explicit local-memory staging (the cache hierarchy serves reuse),
//    and much larger work-groups (Table V tunes this size).
//
// Argument slot layout per kernel (buffers `b`, ints `i`, reals `r`):
//
//  PartialsPartials / StatesPartials / StatesStates
//    b0 dest partials [C][P][S]
//    b1 child1 partials (Real*) or states (int32*)
//    b2 child1 transition matrices [C][S][S]
//    b3 child2 partials (Real*) or states (int32*)
//    b4 child2 transition matrices [C][S][S]
//    i0 patterns  i1 categories  i2 states  i3 patternsPerGroup
//    Fused level batch (i4 = op count > 0): b0..b4 are ignored; b5 is a
//    pointer table with 5 entries per op (dest, child1, m1, child2, m2)
//    and the grid is opCount * patternBlocks * categories groups.
//    Partitioned fused batch (i4 > 0 AND i5 != 0): additionally b6 is an
//    int32 table with 4 entries per op {rangeBegin, rangeEnd, groupOffset,
//    patternBlocks}; each op spans patternBlocks * categories groups
//    starting at its groupOffset and computes only its pattern range.
//
//  TransitionMatrices / TransitionMatricesDerivs
//    b0 dest P  [C][S][S]       (derivs: b4 dest P', b5 dest P'')
//    b1 Cijk    [S][S][S]  (evec[i][k] * ivec[k][j])
//    b2 eigenvalues [S]
//    b3 category rates [C]
//    i0 categories  i1 states  r0 edge length
//    Edge batch (i2 = edge count > 0): b0 is the matrix pool base, b6 the
//    per-edge lengths (Real[count]), b7 int32 matrix-pool indices with
//    stride i3 reals; grid = count * categories. For derivs the index
//    array has three count-long sections (P, P', P'') and b4/b5 are
//    ignored.
//
//  RootLikelihood
//    b0 root partials [C][P][S]
//    b1 state frequencies [S]
//    b2 category weights [C]
//    b3 site log-likelihoods out [P] (Real)
//    b4 cumulative scale factors [P] or null
//    i0 patterns  i1 categories  i2 states  i3 patternsPerGroup
//    Ranged (i5 = range end > 0): integrate patterns [i4, i5) only, with
//    block 0 at i4 (one partition of a concatenated pattern axis).
//
//  EdgeLikelihood
//    b0 parent partials [C][P][S]
//    b1 child partials (Real*) or states (int32*)
//    b2 transition matrices [C][S][S]
//    b3 state frequencies [S]
//    b4 category weights [C]
//    b5 site log-likelihoods out [P]
//    b6 site d1 out [P] or null       b7 site d2 out [P] or null
//    b8 d1 matrices or null           b9 d2 matrices or null
//    b10 cumulative scale factors [P] or null
//    i0 patterns  i1 categories  i2 states  i3 patternsPerGroup
//    i4 child-is-states flag
//
//  RescalePartials
//    b0 partials [C][P][S] (in/out)
//    b1 scale factors out [P] (log space)
//    i0 patterns  i1 categories  i2 states  i3 patternsPerGroup
//    Ranged (i5 = range end > 0): rescale patterns [i4, i5) only.
//
//  AccumulateScale
//    b0 cumulative [P]  b1 source [P]  i0 patterns  i1 sign (+1/-1)
//    Batched multi-group (i2 = source count > 0): b1 is the scale pool
//    base, b2 int32 scale-buffer indices with stride i3 reals, grid =
//    pattern blocks of i4 patterns; sources accumulate in array order
//    (bit-identical to the serial single-source sequence). Ranged batched
//    (i6 = range end > 0): accumulate patterns [i5, i6) only.
//
//  ResetScale
//    b0 cumulative [P]  i0 patterns
//    Multi-group (i1 = patterns per group > 0): grid over pattern blocks.
//
//  SumSiteLikelihoods
//    b0 site log-likelihoods [P] (Real)
//    b1 pattern weights [P] (Real)
//    b2 out (double[1])
//    i0 patterns
//    Two-phase: phase 1 (i1 = block size > 0) writes per-block partial
//    sums to b2[group]; phase 2 (i2 = block count > 0) has group 0 sum
//    the doubles at b0 in ascending order into b2[0]. Fixed block size
//    per pattern count => deterministic bracketing everywhere. Ranged
//    phase 1 (i4 = range end > 0): blocks laid out from i3, covering
//    patterns [i3, i4) — per-partition sums match a standalone
//    per-partition buffer's bracketing exactly.
#pragma once

#include "hal/hal.h"

namespace bgl::kernels {

/// Resolve the kernel function for a spec; throws bgl::Error for
/// unsupported combinations. Both framework runtimes use this — the code
/// they execute is identical; only the runtime around it differs.
hal::KernelFn lookupKernel(const hal::KernelSpec& spec);

/// Local-memory bytes the GPU-style partials kernel wants per work-group
/// (two staged transition matrices).
std::size_t gpuStyleLocalMemBytes(int states, bool singlePrecision);

}  // namespace bgl::kernels
