file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fma.dir/bench_table4_fma.cpp.o"
  "CMakeFiles/bench_table4_fma.dir/bench_table4_fma.cpp.o.d"
  "bench_table4_fma"
  "bench_table4_fma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
