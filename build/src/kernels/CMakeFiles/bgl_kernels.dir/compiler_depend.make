# Empty compiler generated dependencies file for bgl_kernels.
# This may be replaced when dependencies are built.
