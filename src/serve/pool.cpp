#include "serve/pool.h"

#include <cstddef>
#include <iterator>
#include <utility>

#include "api/bgl.h"
#include "core/defs.h"
#include "fault/fault.h"
#include "obs/journal.h"

namespace bgl::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Append the thread-local API error detail (when any) to `message`.
std::string withLastError(std::string message) {
  if (const char* detail = bglGetLastErrorMessage();
      detail != nullptr && *detail != '\0') {
    message += ": ";
    message += detail;
  }
  return message;
}

/// Rough footprint of one pooled instance, for the fault checkpoint's
/// journal record (partials dominate: one buffer per tip slot and per
/// internal slot).
std::size_t approxBytes(const PoolKey& key) {
  const std::size_t buffer = static_cast<std::size_t>(key.patterns) *
                             key.states * key.categories * sizeof(double);
  return buffer * static_cast<std::size_t>(2 * key.tipCapacity);
}

}  // namespace

int quantizeTipCapacity(int tips) {
  int capacity = kMinTipCapacity;
  while (capacity < tips) capacity *= 2;
  return capacity;
}

InstancePool& InstancePool::instance() {
  static InstancePool* pool = new InstancePool();  // leaked: outlives callers
  return *pool;
}

Lease InstancePool::create(const PoolKey& key) {
  // Deterministic failure site for pool growth paths: BGL_FAULT=host:alloc:N
  // fails the Nth pooled creation (first lease or grow reinit alike).
  fault::Injector::instance().onHostAlloc("pooled instance partials",
                                          approxBytes(key));

  const int t = key.tipCapacity;
  BglInstanceDetails details{};
  const int instance = bglCreateInstance(
      /*tipCount=*/t, /*partialsBufferCount=*/t, /*compactBufferCount=*/t,
      key.states, key.patterns, /*eigenBufferCount=*/1,
      /*matrixBufferCount=*/2 * t, key.categories, /*scaleBufferCount=*/0,
      &key.resource, 1, key.preferenceFlags, key.requirementFlags, &details);
  if (instance < 0) {
    throw Error(withLastError("serve: could not create a pooled instance "
                              "(code " +
                              std::to_string(instance) + ")"),
                instance);
  }

  Lease lease;
  lease.instance = instance;
  lease.key = key;
  lease.implName = details.implName;
  lease.resourceName = details.resourceName;
  return lease;
}

Lease InstancePool::acquire(int resource, int states, int patterns,
                            int categories, long preferenceFlags,
                            long requirementFlags, int minTips) {
  PoolKey key;
  key.resource = resource;
  key.states = states;
  key.patterns = patterns;
  key.categories = categories;
  key.preferenceFlags = preferenceFlags;
  key.requirementFlags = requirementFlags;
  key.tipCapacity = quantizeTipCapacity(minTips);

  {
    std::lock_guard lock(mutex_);
    auto it = free_.find(key);
    if (it != free_.end() && !it->second.empty()) {
      Lease lease = std::move(it->second.back().lease);
      it->second.pop_back();
      if (it->second.empty()) free_.erase(it);
      ++leased_;
      ++counters_.recycled;
      return lease;
    }
  }

  Lease lease = create(key);
  {
    std::lock_guard lock(mutex_);
    ++leased_;
    ++counters_.created;
  }
  return lease;
}

Lease InstancePool::grow(Lease lease, int minTips) {
  PoolKey key = lease.key;
  key.tipCapacity = quantizeTipCapacity(minTips);
  const int oldInstance = lease.instance;
  const int oldCapacity = lease.key.tipCapacity;

  // The old instance is finalized before the larger one is created: a
  // serving process near its memory ceiling should not need both alive at
  // once, and the session replays its state into the new lease anyway.
  bglFinalizeInstance(oldInstance);
  lease.instance = -1;

  Lease grown;
  try {
    grown = create(key);
  } catch (...) {
    std::lock_guard lock(mutex_);
    --leased_;  // the old lease is gone and no new one replaced it
    throw;
  }
  {
    std::lock_guard lock(mutex_);
    ++counters_.created;
    ++counters_.grows;
  }
  obs::Journal::instance().append(
      obs::JournalKind::kPoolReinit, 0, grown.instance, key.resource,
      /*shard=*/-1,
      "pool grow: " + std::to_string(oldCapacity) + " -> " +
          std::to_string(key.tipCapacity) + " tips (was instance " +
          std::to_string(oldInstance) + ")");
  return grown;
}

void InstancePool::release(Lease lease) {
  if (!lease.valid()) return;
  int idleMs;
  {
    std::lock_guard lock(mutex_);
    FreeEntry entry;
    entry.lease = std::move(lease);
    entry.idleSince = Clock::now();
    free_[entry.lease.key].push_back(std::move(entry));
    --leased_;
    idleMs = idleEvictMs_;
  }
  trim(idleMs);
}

void InstancePool::setIdleEvictMs(int idleEvictMs) {
  std::lock_guard lock(mutex_);
  idleEvictMs_ = idleEvictMs;
}

int InstancePool::trim(int idleMs) {
  // Collect under the lock, finalize outside it: bglFinalizeInstance can
  // block on in-flight device work.
  std::vector<Lease> evict;
  {
    std::lock_guard lock(mutex_);
    const auto cutoff = Clock::now() - std::chrono::milliseconds(idleMs);
    for (auto it = free_.begin(); it != free_.end();) {
      auto& entries = it->second;
      for (std::size_t i = 0; i < entries.size();) {
        if (entries[i].idleSince <= cutoff) {
          evict.push_back(std::move(entries[i].lease));
          entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      it = entries.empty() ? free_.erase(it) : std::next(it);
    }
    counters_.evictions += evict.size();
  }
  for (const Lease& lease : evict) {
    bglFinalizeInstance(lease.instance);
    obs::Journal::instance().append(
        obs::JournalKind::kPoolEvict, 0, lease.instance, lease.key.resource,
        /*shard=*/-1,
        "pool evict: idle instance (" + std::to_string(lease.key.tipCapacity) +
            " tips, " + std::to_string(lease.key.patterns) + " patterns)");
  }
  return static_cast<int>(evict.size());
}

PoolStats InstancePool::stats() const {
  std::lock_guard lock(mutex_);
  PoolStats out;
  out.counters = counters_;
  out.free_ = 0;
  for (const auto& [key, entries] : free_) {
    out.free_ += static_cast<int>(entries.size());
  }
  out.pooled = leased_ + out.free_;
  return out;
}

}  // namespace bgl::serve
