file(REMOVE_RECURSE
  "CMakeFiles/bgl_phylo.dir/fasta.cpp.o"
  "CMakeFiles/bgl_phylo.dir/fasta.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/likelihood.cpp.o"
  "CMakeFiles/bgl_phylo.dir/likelihood.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/mlsearch.cpp.o"
  "CMakeFiles/bgl_phylo.dir/mlsearch.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/nexus.cpp.o"
  "CMakeFiles/bgl_phylo.dir/nexus.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/partition.cpp.o"
  "CMakeFiles/bgl_phylo.dir/partition.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/seqsim.cpp.o"
  "CMakeFiles/bgl_phylo.dir/seqsim.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/tree.cpp.o"
  "CMakeFiles/bgl_phylo.dir/tree.cpp.o.d"
  "CMakeFiles/bgl_phylo.dir/treedist.cpp.o"
  "CMakeFiles/bgl_phylo.dir/treedist.cpp.o.d"
  "libbgl_phylo.a"
  "libbgl_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
