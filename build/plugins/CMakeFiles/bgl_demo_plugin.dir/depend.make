# Empty dependencies file for bgl_demo_plugin.
# This may be replaced when dependencies are built.
