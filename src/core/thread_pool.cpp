#include "core/thread_pool.h"

namespace bgl {

ThreadPool& globalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bgl
