#include "phylo/partition.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <numeric>
#include <thread>

#include "core/defs.h"
#include "core/gamma.h"
#include "obs/journal.h"
#include "sched/sched.h"

namespace bgl::phylo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsedSeconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Calibration spec matching one shard's (model, options) combination.
sched::CalibrationSpec shardSpec(const SubstitutionModel& model,
                                 const LikelihoodOptions& options,
                                 const SplitOptions& split) {
  sched::CalibrationSpec spec;
  spec.states = model.states();
  spec.categories = options.categories;
  spec.singlePrecision = sched::resolveSinglePrecision(options.preferenceFlags,
                                                       options.requirementFlags);
  spec.preferenceFlags = options.preferenceFlags;
  spec.requirementFlags = options.requirementFlags;
  spec.seed = split.calibrationSeed;
  return spec;
}

int shardResource(const LikelihoodOptions& options) {
  return options.resources.empty() ? 0 : options.resources.front();
}

/// Failures worth failing over: the device/runtime/implementation is gone
/// or misbehaving. Programming errors (OUT_OF_RANGE, UNIMPLEMENTED,
/// FLOATING_POINT) would reproduce identically on any shard, so they are
/// never failed over.
bool isHardError(int code) {
  switch (code) {
    case BGL_ERROR_GENERAL:
    case BGL_ERROR_OUT_OF_MEMORY:
    case BGL_ERROR_UNIDENTIFIED_EXCEPTION:
    case BGL_ERROR_NO_RESOURCE:
    case BGL_ERROR_NO_IMPLEMENTATION:
    case BGL_ERROR_HARDWARE:
      return true;
    default:
      return false;
  }
}

/// See likelihood.cpp: throw with the code plus the thread-local detail.
[[noreturn]] void throwApiError(const std::string& what, int rc) {
  std::string message = what + " failed with code " + std::to_string(rc);
  if (const char* detail = bglGetLastErrorMessage(); detail != nullptr && *detail) {
    message += ": ";
    message += detail;
  }
  throw Error(message, rc);
}

/// Run fn(i) for i in [0, n) with at most `cap` concurrent executors; the
/// calling thread participates, so at most cap-1 threads are spawned no
/// matter how many work items there are. fn must not throw. Returns the
/// peak number of simultaneously running fn calls.
int runBounded(int n, int cap, const std::function<void(int)>& fn) {
  if (n <= 0) return 0;
  if (cap < 1) cap = 1;
  const int workers = std::min(cap, n);
  std::atomic<int> next{0};
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  auto body = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
      int seen = peak.load(std::memory_order_relaxed);
      while (now > seen &&
             !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
      }
      fn(i);
      running.fetch_sub(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 1; t < workers; ++t) threads.emplace_back(body);
  body();
  for (auto& th : threads) th.join();
  return peak.load(std::memory_order_relaxed);
}

int concurrencyCap(const PartitionOptions& options) {
  if (options.maxConcurrency > 0) return options.maxConcurrency;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

/// Predicted seconds of one evaluation of `spec` on `resource`; positive
/// even when the perf model has no answer for the resource.
double partitionCost(int resource, const PartitionSpec& spec) {
  const int states = spec.model != nullptr ? spec.model->states() : 4;
  const double est = sched::estimateEvaluationSeconds(
      resource, spec.data.patterns, states, spec.options.categories);
  if (est > 0.0) return est;
  return 1e-9 * spec.data.patterns * states * spec.options.categories;
}

}  // namespace

PartitionedLikelihood::PartitionedLikelihood(const Tree& tree,
                                             const std::vector<PartitionSpec>& specs,
                                             bool concurrent)
    : PartitionedLikelihood(tree, specs, [&] {
        PartitionOptions options;
        options.batched = false;  // keep the Section IV-F per-partition layout
        options.concurrent = concurrent;
        return options;
      }()) {}

PartitionedLikelihood::PartitionedLikelihood(const Tree& tree,
                                             const std::vector<PartitionSpec>& specs,
                                             const PartitionOptions& options)
    : tree_(tree), specs_(specs), options_(options) {
  if (specs_.empty()) throw Error("PartitionedLikelihood: no partitions");
  for (const auto& spec : specs_) {
    if (spec.model == nullptr) throw Error("PartitionedLikelihood: null model");
    if (spec.data.taxa != tree_.tipCount()) {
      throw Error("PartitionedLikelihood: tree/data taxon count mismatch");
    }
    if (spec.data.patterns < 1) {
      throw Error("PartitionedLikelihood: partition with no patterns");
    }
  }
  partitionLogL_.assign(specs_.size(), 0.0);

  if (!options_.batched) {
    parts_.reserve(specs_.size());
    for (const auto& spec : specs_) {
      parts_.push_back(std::make_unique<TreeLikelihood>(tree_, *spec.model,
                                                        spec.data, spec.options));
    }
    return;
  }

  partitionResource_.reserve(specs_.size());
  for (const auto& spec : specs_) {
    partitionResource_.push_back(shardResource(spec.options));
  }
  for (int r : partitionResource_) {
    if (std::find(resourceIds_.begin(), resourceIds_.end(), r) ==
        resourceIds_.end()) {
      resourceIds_.push_back(r);
    }
  }
  resourceQuarantined_.assign(resourceIds_.size(), 0);
  if (options_.adaptive) rebuildBalancer();
  buildGroupsWithFailover();
}

PartitionedLikelihood::~PartitionedLikelihood() { destroyGroups(); }

void PartitionedLikelihood::destroyGroups() {
  for (auto& group : groups_) {
    if (group.instance >= 0) bglFinalizeInstance(group.instance);
  }
  groups_.clear();
}

bool PartitionedLikelihood::tryBuildGroups() {
  destroyGroups();
  partitionGroup_.assign(specs_.size(), -1);
  // Group partitions of compatible shape per resource, first-appearance
  // order; member order within a group fixes the concatenation order of
  // the shared pattern axis.
  for (std::size_t p = 0; p < specs_.size(); ++p) {
    const auto& spec = specs_[p];
    const int resource = partitionResource_[p];
    const int states = spec.model->states();
    int slot = -1;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const auto& group = groups_[g];
      if (group.resource == resource && group.states == states &&
          group.categories == spec.options.categories &&
          group.useScaling == spec.options.useScaling &&
          group.preferenceFlags == spec.options.preferenceFlags &&
          group.requirementFlags == spec.options.requirementFlags) {
        slot = static_cast<int>(g);
        break;
      }
    }
    if (slot < 0) {
      Group group;
      group.resource = resource;
      group.states = states;
      group.categories = spec.options.categories;
      group.useScaling = spec.options.useScaling;
      group.preferenceFlags = spec.options.preferenceFlags;
      group.requirementFlags = spec.options.requirementFlags;
      slot = static_cast<int>(groups_.size());
      groups_.push_back(std::move(group));
    }
    groups_[static_cast<std::size_t>(slot)].members.push_back(static_cast<int>(p));
    groups_[static_cast<std::size_t>(slot)].patterns += spec.data.patterns;
    partitionGroup_[p] = slot;
  }
  for (auto& group : groups_) {
    try {
      buildGroupInstance(group);
    } catch (const Error& e) {
      if (!options_.failover || !isHardError(e.code())) throw;
      quarantineResource(group.resource, e.what(), e.code());
      return false;
    } catch (const std::bad_alloc&) {
      if (!options_.failover) throw;
      quarantineResource(group.resource, "out of host memory building instance",
                         kErrOutOfMemory);
      return false;
    }
  }
  return true;
}

void PartitionedLikelihood::buildGroupInstance(Group& group) {
  const int tips = tree_.tipCount();
  const int edges = 2 * tips - 2;
  const int q = static_cast<int>(group.members.size());
  const int scaleBuffers = group.useScaling ? tips : 0;

  // ONE instance for the whole group: the pattern axis is the member
  // partitions' concatenation; each member owns eigen/frequency/weight/
  // rate slot s and the matrix slots [s*edges, (s+1)*edges).
  BglInstanceDetails details{};
  const int instance = bglCreateInstance(
      tips, /*partialsBufferCount=*/tips - 1, /*compactBufferCount=*/tips,
      group.states, group.patterns, /*eigenBufferCount=*/q,
      /*matrixBufferCount=*/q * edges, group.categories, scaleBuffers,
      &group.resource, 1, group.preferenceFlags, group.requirementFlags,
      &details);
  if (instance < 0) {
    throwApiError("PartitionedLikelihood: bglCreateInstance", instance);
  }
  group.instance = instance;
  group.implName = details.implName;

  int rc = BGL_SUCCESS;
  for (int s = 0; rc == BGL_SUCCESS && s < q; ++s) {
    const auto& spec = specs_[static_cast<std::size_t>(group.members[s])];
    const auto es = spec.model->eigenSystem();
    rc = bglSetEigenDecomposition(instance, s, es.evec.data(), es.ivec.data(),
                                  es.eval.data());
    if (rc == BGL_SUCCESS) {
      rc = bglSetStateFrequencies(instance, s, spec.model->frequencies().data());
    }
    if (rc == BGL_SUCCESS) {
      const std::vector<double> weights(group.categories, 1.0 / group.categories);
      rc = bglSetCategoryWeights(instance, s, weights.data());
    }
    if (rc == BGL_SUCCESS) {
      const auto rates =
          group.categories > 1
              ? discreteGammaRates(spec.options.alpha, group.categories)
              : std::vector<double>{1.0};
      rc = bglSetCategoryRatesWithIndex(instance, s, rates.data());
    }
  }
  if (rc == BGL_SUCCESS) {
    std::vector<double> weights;
    std::vector<int> map;
    weights.reserve(static_cast<std::size_t>(group.patterns));
    map.reserve(static_cast<std::size_t>(group.patterns));
    for (int s = 0; s < q; ++s) {
      const auto& data = specs_[static_cast<std::size_t>(group.members[s])].data;
      weights.insert(weights.end(), data.weights.begin(), data.weights.end());
      map.insert(map.end(), static_cast<std::size_t>(data.patterns), s);
    }
    rc = bglSetPatternWeights(instance, weights.data());
    if (rc == BGL_SUCCESS) rc = bglSetPatternPartitions(instance, q, map.data());
  }
  for (int t = 0; rc == BGL_SUCCESS && t < tips; ++t) {
    std::vector<int> tipStates;
    tipStates.reserve(static_cast<std::size_t>(group.patterns));
    for (int s = 0; s < q; ++s) {
      const auto& data = specs_[static_cast<std::size_t>(group.members[s])].data;
      for (int k = 0; k < data.patterns; ++k) tipStates.push_back(data.at(t, k));
    }
    rc = bglSetTipStates(instance, t, tipStates.data());
  }
  if (rc != BGL_SUCCESS) {
    const std::string detail = bglGetLastErrorMessage();
    bglFinalizeInstance(instance);
    group.instance = -1;
    std::string message =
        "PartitionedLikelihood: instance setup failed with code " +
        std::to_string(rc);
    if (!detail.empty()) message += ": " + detail;
    throw Error(message, rc);
  }
}

void PartitionedLikelihood::buildGroupsWithFailover() {
  const int maxAttempts = static_cast<int>(resourceIds_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    if (tryBuildGroups()) return;
    // tryBuildGroups quarantined the failing resource; re-home its
    // partitions onto the survivors and retry the whole build.
    ++failovers_;
    sched::noteFailover(1);
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    rehomeQuarantined();
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "rebuilding partition groups, attempt " + std::to_string(attempt + 2) +
            "/" + std::to_string(maxAttempts));
  }
  throw Error("PartitionedLikelihood: group construction still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

void PartitionedLikelihood::quarantineResource(int resource,
                                               const std::string& reason,
                                               int code) {
  for (std::size_t i = 0; i < resourceIds_.size(); ++i) {
    if (resourceIds_[i] == resource) resourceQuarantined_[i] = 1;
  }
  lastFailure_ = reason;
  lastFailureCode_ = code;
  obs::Journal::instance().append(obs::JournalKind::kShardQuarantine, code,
                                  /*instance=*/-1, resource, /*shard=*/-1,
                                  reason);
}

void PartitionedLikelihood::rehomeQuarantined() {
  std::vector<int> active;
  for (std::size_t i = 0; i < resourceIds_.size(); ++i) {
    if (!resourceQuarantined_[i]) active.push_back(resourceIds_[i]);
  }
  if (active.empty()) {
    if (!options_.cpuFallback || cpuFallbackUsed_) {
      throw Error(
          "PartitionedLikelihood: every resource is quarantined; last error: " +
              lastFailure_,
          lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
    }
    // Last resort: one host-CPU instance set carries every partition.
    // Precision requirements are preserved; the failing framework/vector/
    // threading demands are dropped.
    const long precisionMask =
        BGL_FLAG_PRECISION_SINGLE | BGL_FLAG_PRECISION_DOUBLE;
    for (auto& spec : specs_) {
      LikelihoodOptions fallback;
      fallback.categories = spec.options.categories;
      fallback.alpha = spec.options.alpha;
      fallback.useScaling = spec.options.useScaling;
      fallback.requirementFlags =
          BGL_FLAG_FRAMEWORK_CPU | (spec.options.requirementFlags & precisionMask);
      fallback.preferenceFlags = spec.options.preferenceFlags & precisionMask;
      fallback.resources = {0};
      spec.options = fallback;
    }
    std::fill(partitionResource_.begin(), partitionResource_.end(), 0);
    bool known = false;
    for (std::size_t i = 0; i < resourceIds_.size(); ++i) {
      if (resourceIds_[i] == 0) {
        resourceQuarantined_[i] = 0;
        known = true;
      }
    }
    if (!known) {
      resourceIds_.push_back(0);
      resourceQuarantined_.push_back(0);
    }
    cpuFallbackUsed_ = true;
    obs::Journal::instance().append(
        obs::JournalKind::kCpuFallback, 0, /*instance=*/-1, /*resource=*/0,
        /*shard=*/-1,
        "every resource quarantined; host-CPU fallback carries all partitions");
    if (options_.adaptive) rebuildBalancer();
    return;
  }

  // Greedy re-home: partitions stranded on quarantined resources, heaviest
  // first, each onto the surviving resource with the smallest predicted
  // finish time (current load + this partition's cost there).
  auto onQuarantined = [&](int resource) {
    for (std::size_t i = 0; i < resourceIds_.size(); ++i) {
      if (resourceIds_[i] == resource) return resourceQuarantined_[i] != 0;
    }
    return false;
  };
  std::vector<double> load(active.size(), 0.0);
  std::vector<std::size_t> stranded;
  for (std::size_t p = 0; p < specs_.size(); ++p) {
    if (onQuarantined(partitionResource_[p])) {
      stranded.push_back(p);
      continue;
    }
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (active[j] == partitionResource_[p]) {
        load[j] += partitionCost(active[j], specs_[p]);
      }
    }
  }
  std::stable_sort(stranded.begin(), stranded.end(),
                   [&](std::size_t a, std::size_t b) {
                     return partitionCost(active[0], specs_[a]) >
                            partitionCost(active[0], specs_[b]);
                   });
  for (std::size_t p : stranded) {
    std::size_t best = 0;
    double bestFinish = 0.0;
    for (std::size_t j = 0; j < active.size(); ++j) {
      const double finish = load[j] + partitionCost(active[j], specs_[p]);
      if (j == 0 || finish < bestFinish) {
        best = j;
        bestFinish = finish;
      }
    }
    partitionResource_[p] = active[best];
    load[best] = bestFinish;
  }
  obs::Journal::instance().append(
      obs::JournalKind::kReapportion, 0, /*instance=*/-1, /*resource=*/-1,
      /*shard=*/-1,
      std::to_string(stranded.size()) + " partition(s) re-homed across " +
          std::to_string(active.size()) + " surviving resource(s)");
  if (options_.adaptive) rebuildBalancer();
}

void PartitionedLikelihood::rebuildBalancer() {
  balancerResources_.clear();
  for (std::size_t i = 0; i < resourceIds_.size(); ++i) {
    if (!resourceQuarantined_[i]) balancerResources_.push_back(resourceIds_[i]);
  }
  if (balancerResources_.size() < 2) {
    balancer_.reset();
    return;
  }
  // Seed speeds from the perf model so the first rounds start near the
  // steady state; observations take over through the EWMA.
  std::vector<double> speeds;
  speeds.reserve(balancerResources_.size());
  for (int r : balancerResources_) {
    double patterns = 0.0;
    double seconds = 0.0;
    for (std::size_t p = 0; p < specs_.size(); ++p) {
      patterns += specs_[p].data.patterns;
      seconds += partitionCost(r, specs_[p]);
    }
    speeds.push_back(seconds > 0.0 ? patterns / seconds : 1.0);
  }
  sched::LoadBalancer::Options options;
  options.ewmaAlpha = options_.ewmaAlpha;
  options.imbalanceThreshold = options_.imbalanceThreshold;
  options.settleRounds = options_.settleRounds;
  balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
}

void PartitionedLikelihood::evaluateGroup(Group& group, const Tree& tree) {
  group.seconds = 0.0;
  group.launches = 0;
  group.errorCode = 0;
  group.errorMessage.clear();
  // Failures are captured into the group instead of thrown: groups run on
  // worker threads, and a raw exception would lose the resource identity
  // the failover path needs.
  try {
    const int instance = group.instance;
    const int tips = tree.tipCount();
    const int edges = 2 * tips - 2;
    const int q = static_cast<int>(group.members.size());
    const bool timeline = bglResetTimeline(instance) == BGL_SUCCESS;
    const auto start = Clock::now();

    // Every member shares the tree's edge set; one batched call refreshes
    // all q model copies of every edge matrix.
    std::vector<int> matrixNodes;
    std::vector<double> lengths;
    tree.matrixUpdates(matrixNodes, lengths);
    const int perModel = static_cast<int>(matrixNodes.size());
    std::vector<int> eigenIdx(static_cast<std::size_t>(q) * perModel);
    std::vector<int> ratesIdx(static_cast<std::size_t>(q) * perModel);
    std::vector<int> probIdx(static_cast<std::size_t>(q) * perModel);
    std::vector<double> allLengths(static_cast<std::size_t>(q) * perModel);
    for (int s = 0; s < q; ++s) {
      for (int i = 0; i < perModel; ++i) {
        const std::size_t at = static_cast<std::size_t>(s) * perModel + i;
        eigenIdx[at] = s;
        ratesIdx[at] = s;
        probIdx[at] = s * edges + matrixNodes[static_cast<std::size_t>(i)];
        allLengths[at] = lengths[static_cast<std::size_t>(i)];
      }
    }
    int rc = bglUpdateTransitionMatricesWithModels(
        instance, eigenIdx.data(), ratesIdx.data(), probIdx.data(),
        allLengths.data(), q * perModel);
    if (rc != BGL_SUCCESS) throwApiError("updateTransitionMatricesWithModels", rc);

    const int cum = group.useScaling ? tips - 1 : BGL_OP_NONE;
    if (group.useScaling) {
      rc = bglResetScaleFactors(instance, cum);
      if (rc != BGL_SUCCESS) throwApiError("resetScaleFactors", rc);
    }

    // The same level-order traversal once per member; the level batcher
    // fuses all members' operations for a level into one launch set.
    const auto baseOps = tree.operations(group.useScaling);
    std::vector<BglOperationByPartition> ops;
    ops.reserve(baseOps.size() * static_cast<std::size_t>(q));
    for (int s = 0; s < q; ++s) {
      for (const auto& op : baseOps) {
        BglOperationByPartition pop;
        pop.destinationPartials = op.destinationPartials;
        pop.destinationScaleWrite = op.destinationScaleWrite;
        pop.destinationScaleRead = op.destinationScaleRead;
        pop.child1Partials = op.child1Partials;
        pop.child1TransitionMatrix = s * edges + op.child1TransitionMatrix;
        pop.child2Partials = op.child2Partials;
        pop.child2TransitionMatrix = s * edges + op.child2TransitionMatrix;
        pop.partition = s;
        ops.push_back(pop);
      }
    }
    rc = bglUpdatePartialsByPartition(instance, ops.data(),
                                      static_cast<int>(ops.size()), cum);
    if (rc != BGL_SUCCESS) throwApiError("updatePartialsByPartition", rc);

    const int root = tree.root();
    std::vector<int> roots(static_cast<std::size_t>(q), root);
    std::vector<int> slots(static_cast<std::size_t>(q));
    std::iota(slots.begin(), slots.end(), 0);
    std::vector<int> cums(static_cast<std::size_t>(q), cum);
    std::vector<int> partIdx = slots;
    std::vector<double> logLs(static_cast<std::size_t>(q), 0.0);
    double total = 0.0;
    rc = bglCalculateRootLogLikelihoodsByPartition(
        instance, roots.data(), slots.data(), slots.data(),
        group.useScaling ? cums.data() : nullptr, partIdx.data(), q,
        logLs.data(), &total);
    if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
      throwApiError("calculateRootLogLikelihoodsByPartition", rc);
    }
    for (int s = 0; s < q; ++s) {
      partitionLogL_[static_cast<std::size_t>(group.members[s])] =
          logLs[static_cast<std::size_t>(s)];
    }

    double seconds = elapsedSeconds(start);
    if (timeline) {
      // Prefer the obs-layer timeline: on simulated accelerator profiles
      // the roofline-modeled time is the honest per-device time base and is
      // immune to host oversubscription when groups run concurrently.
      BglTimeline tl{};
      if (bglGetTimeline(instance, &tl) == BGL_SUCCESS) {
        group.launches = tl.kernelLaunches;
        if (tl.modeledSeconds > 0.0) seconds = tl.modeledSeconds;
      }
    }
    group.seconds = seconds;
  } catch (const Error& e) {
    group.errorCode = e.code() != 0 ? e.code() : kErrGeneral;
    group.errorMessage = e.what();
  } catch (const std::bad_alloc&) {
    group.errorCode = kErrOutOfMemory;
    group.errorMessage = "out of host memory evaluating partition group";
  } catch (const std::exception& e) {
    group.errorCode = kErrGeneral;
    group.errorMessage = e.what();
  }
}

double PartitionedLikelihood::evaluateBatched(const Tree& tree) {
  const int maxAttempts = static_cast<int>(resourceIds_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    const int n = static_cast<int>(groups_.size());
    if (!options_.concurrent || n == 1) {
      for (auto& group : groups_) evaluateGroup(group, tree);
      peakConcurrency_ = std::max(peakConcurrency_, 1);
    } else {
      const int peak = runBounded(n, concurrencyCap(options_), [&](int i) {
        evaluateGroup(groups_[static_cast<std::size_t>(i)], tree);
      });
      peakConcurrency_ = std::max(peakConcurrency_, peak);
    }

    std::vector<std::size_t> failed;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g].errorCode == 0) continue;
      if (!isHardError(groups_[g].errorCode)) {
        // Programming error: reproduces on any resource, never failed over.
        throw Error(groups_[g].errorMessage, groups_[g].errorCode);
      }
      failed.push_back(g);
    }

    if (failed.empty()) {
      lastInstanceSeconds_.clear();
      lastKernelLaunches_ = 0;
      for (const auto& group : groups_) {
        lastInstanceSeconds_.push_back(group.seconds);
        lastKernelLaunches_ += group.launches;
      }
      if (options_.adaptive) maybeRebalance();
      double total = 0.0;
      for (double v : partitionLogL_) total += v;
      return total;
    }

    if (!options_.failover) {
      throw Error(groups_[failed.front()].errorMessage,
                  groups_[failed.front()].errorCode);
    }
    for (std::size_t g : failed) {
      quarantineResource(groups_[g].resource, groups_[g].errorMessage,
                         groups_[g].errorCode);
    }
    ++failovers_;
    sched::noteFailover(static_cast<std::uint64_t>(failed.size()));
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    rehomeQuarantined();
    buildGroupsWithFailover();
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "partition groups rebuilt after " + std::to_string(failed.size()) +
            " instance failure(s); retrying the evaluation");
  }
  throw Error("PartitionedLikelihood: evaluation still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

void PartitionedLikelihood::maybeRebalance() {
  if (balancer_ == nullptr || balancerResources_.size() < 2) return;
  // One observation per active resource: patterns and modeled seconds
  // summed over the resource's groups.
  const std::size_t nR = balancerResources_.size();
  std::vector<double> seconds(nR, 0.0);
  std::vector<int> patterns(nR, 0);
  for (const auto& group : groups_) {
    for (std::size_t j = 0; j < nR; ++j) {
      if (balancerResources_[j] == group.resource) {
        seconds[j] += group.seconds;
        patterns[j] += group.patterns;
      }
    }
  }
  int totalPatterns = 0;
  for (std::size_t j = 0; j < nR; ++j) {
    totalPatterns += patterns[j];
    if (patterns[j] > 0 && seconds[j] > 0.0) {
      balancer_->observe(static_cast<int>(j), patterns[j], seconds[j]);
    }
  }
  if (balancer_->rebalance(totalPatterns, patterns).empty()) return;
  // The balancer votes for a re-split of the pattern axis; partitions move
  // whole, so translate the vote into an LPT assignment of per-partition
  // costs onto the observed speeds.
  std::vector<double> weights(specs_.size());
  for (std::size_t p = 0; p < specs_.size(); ++p) {
    const auto& spec = specs_[p];
    weights[p] = static_cast<double>(spec.data.patterns) *
                 spec.model->states() * spec.options.categories;
  }
  const auto assignment = sched::apportionWeightedItems(weights, balancer_->speeds());
  int migrated = 0;
  for (std::size_t p = 0; p < specs_.size(); ++p) {
    const int resource = balancerResources_[static_cast<std::size_t>(assignment[p])];
    if (resource != partitionResource_[p]) {
      ++migrated;
      partitionResource_[p] = resource;
    }
  }
  if (migrated == 0) return;
  sched::noteRebalance(static_cast<std::uint64_t>(migrated));
  obs::Journal::instance().append(
      obs::JournalKind::kRebalance, 0, /*instance=*/-1, /*resource=*/-1,
      /*shard=*/-1,
      "adaptive re-home migrated " + std::to_string(migrated) +
          " partition(s) across " + std::to_string(nR) + " resource(s)");
  obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                       "sched.rebalance");
  buildGroupsWithFailover();
  ++rebalances_;
}

double PartitionedLikelihood::evaluateLegacy(const Tree& tree) {
  const int n = static_cast<int>(parts_.size());
  std::vector<int> codes(static_cast<std::size_t>(n), 0);
  std::vector<std::string> messages(static_cast<std::size_t>(n));
  std::vector<double> seconds(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint64_t> launches(static_cast<std::size_t>(n), 0);
  auto evalOne = [&](int i) {
    const auto at = static_cast<std::size_t>(i);
    try {
      const int instance = parts_[at]->instance();
      const bool timeline = bglResetTimeline(instance) == BGL_SUCCESS;
      const auto start = Clock::now();
      partitionLogL_[at] = parts_[at]->logLikelihood(tree);
      seconds[at] = elapsedSeconds(start);
      if (timeline) {
        BglTimeline tl{};
        if (bglGetTimeline(instance, &tl) == BGL_SUCCESS) {
          launches[at] = tl.kernelLaunches;
          if (tl.modeledSeconds > 0.0) seconds[at] = tl.modeledSeconds;
        }
      }
    } catch (const Error& e) {
      codes[at] = e.code() != 0 ? e.code() : kErrGeneral;
      messages[at] = e.what();
    } catch (const std::exception& e) {
      codes[at] = kErrGeneral;
      messages[at] = e.what();
    }
  };
  if (!options_.concurrent || n == 1) {
    for (int i = 0; i < n; ++i) evalOne(i);
    peakConcurrency_ = std::max(peakConcurrency_, 1);
  } else {
    // Bounded worker team popping an index queue: never more live threads
    // than the concurrency cap, however many partitions the analysis has
    // (the old per-partition std::async fan-out spawned one thread each).
    const int peak = runBounded(n, concurrencyCap(options_), evalOne);
    peakConcurrency_ = std::max(peakConcurrency_, peak);
  }
  for (int i = 0; i < n; ++i) {
    const auto at = static_cast<std::size_t>(i);
    if (codes[at] != 0) throw Error(messages[at], codes[at]);
  }
  lastInstanceSeconds_.assign(seconds.begin(), seconds.end());
  lastKernelLaunches_ = 0;
  for (std::uint64_t l : launches) lastKernelLaunches_ += l;
  double total = 0.0;
  for (double v : partitionLogL_) total += v;
  return total;
}

double PartitionedLikelihood::logLikelihood(const Tree& tree) {
  if (tree.tipCount() != tree_.tipCount()) {
    throw Error("PartitionedLikelihood: taxon count changed");
  }
  tree_ = tree;
  return options_.batched ? evaluateBatched(tree_) : evaluateLegacy(tree_);
}

const std::string& PartitionedLikelihood::implName(int partition) const {
  if (!options_.batched) {
    return parts_[static_cast<std::size_t>(partition)]->implName();
  }
  const int g = partitionGroup_[static_cast<std::size_t>(partition)];
  return groups_[static_cast<std::size_t>(g)].implName;
}

int PartitionedLikelihood::instanceCount() const {
  return options_.batched ? static_cast<int>(groups_.size())
                          : static_cast<int>(parts_.size());
}

int PartitionedLikelihood::groupOf(int partition) const {
  return options_.batched ? partitionGroup_[static_cast<std::size_t>(partition)]
                          : partition;
}

double PartitionedLikelihood::lastModeledSeconds() const {
  double total = 0.0;
  for (double s : lastInstanceSeconds_) total += s;
  return total;
}

void autoAssignResources(std::vector<PartitionSpec>& specs, bool benchmark) {
  if (specs.empty()) return;
  const auto estimates = sched::resourceEstimates({}, {}, benchmark);
  if (estimates.empty()) return;
  // Fastest resources first.
  std::vector<const sched::ResourceEstimate*> ranked;
  ranked.reserve(estimates.size());
  for (const auto& e : estimates) ranked.push_back(&e);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const sched::ResourceEstimate* a,
                      const sched::ResourceEstimate* b) {
                     return a->patternsPerSecond > b->patternsPerSecond;
                   });
  // Costliest partitions first, so the heaviest subsets land on the
  // fastest resources; wrap around when partitions outnumber resources.
  // Cost is the scheduler's full per-evaluation estimate — patterns AND
  // states x categories — measured against one fixed yardstick resource
  // (the fastest) so the ordering is resource-independent: a 500-pattern
  // codon partition outranks a 2000-pattern nucleotide one.
  const int yardstick = ranked.front()->resource;
  std::vector<double> costs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    costs[i] = partitionCost(yardstick, specs[i]);
  }
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto* pick = ranked[i % ranked.size()];
    specs[order[i]].options.resources = {pick->resource};
  }
}

SplitMode splitModeFromFlags(long flags) {
  if (flags & BGL_FLAG_LOADBALANCE_ADAPTIVE) return SplitMode::Adaptive;
  if (flags & (BGL_FLAG_LOADBALANCE_BENCHMARK | BGL_FLAG_LOADBALANCE_MODEL)) {
    return SplitMode::Proportional;
  }
  return SplitMode::Equal;
}

std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards) {
  if (shards < 1) throw Error("splitPatterns: need >= 1 shard");
  if (shards > data.patterns) shards = data.patterns;
  std::vector<int> shares(static_cast<std::size_t>(shards));
  for (int k = 0; k < data.patterns; ++k) ++shares[static_cast<std::size_t>(k % shards)];
  return splitPatternsByShares(data, shares);
}

std::vector<PatternSet> splitPatternsByShares(const PatternSet& data,
                                              const std::vector<int>& shares) {
  if (shares.empty()) throw Error("splitPatternsByShares: need >= 1 shard");
  int total = 0;
  for (int s : shares) {
    if (s < 0) throw Error("splitPatternsByShares: negative share");
    total += s;
  }
  if (total != data.patterns) {
    throw Error("splitPatternsByShares: shares sum to " + std::to_string(total) +
                ", expected " + std::to_string(data.patterns));
  }
  const int n = static_cast<int>(shares.size());
  std::vector<PatternSet> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[s].taxa = data.taxa;
    out[s].originalSites = 0;
  }
  // Deal pattern columns in index order, strided across the shards that
  // still have capacity: shard composition stays statistically similar to
  // the full set even when shares are very unequal.
  std::vector<std::vector<int>> columns(static_cast<std::size_t>(n));
  std::vector<int> remaining = shares;
  int cursor = 0;
  for (int k = 0; k < data.patterns; ++k) {
    int probed = 0;
    while (remaining[static_cast<std::size_t>(cursor)] == 0 && probed < n) {
      cursor = (cursor + 1) % n;
      ++probed;
    }
    columns[static_cast<std::size_t>(cursor)].push_back(k);
    --remaining[static_cast<std::size_t>(cursor)];
    cursor = (cursor + 1) % n;
  }
  for (int s = 0; s < n; ++s) {
    auto& shard = out[s];
    shard.patterns = static_cast<int>(columns[s].size());
    shard.states.resize(static_cast<std::size_t>(data.taxa) * shard.patterns);
    shard.weights.reserve(shard.patterns);
    for (int j = 0; j < shard.patterns; ++j) {
      const int k = columns[s][j];
      shard.weights.push_back(data.weights[k]);
      shard.originalSites += static_cast<int>(data.weights[k]);
      for (int t = 0; t < data.taxa; ++t) {
        shard.states[static_cast<std::size_t>(t) * shard.patterns + j] =
            data.at(t, k);
      }
    }
  }
  return out;
}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 bool concurrent)
    : SplitLikelihood(tree, model, data, shardOptions, [&] {
        SplitOptions split;
        split.mode = SplitMode::Equal;
        split.concurrent = concurrent;
        return split;
      }()) {}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 const SplitOptions& split)
    : model_(&model), data_(data), shardOptions_(shardOptions), split_(split) {
  if (shardOptions_.empty()) throw Error("SplitLikelihood: no shards");
  if (data_.patterns < 1) throw Error("SplitLikelihood: no patterns");
  const int n = static_cast<int>(shardOptions_.size());

  std::vector<double> speeds;
  if (split_.mode == SplitMode::Equal) {
    speeds.assign(static_cast<std::size_t>(n), 1.0);
  } else if (!split_.speeds.empty()) {
    if (static_cast<int>(split_.speeds.size()) != n) {
      throw Error("SplitLikelihood: speeds/shardOptions size mismatch");
    }
    speeds = split_.speeds;
    calibratedSpeeds_ = speeds;
  } else {
    // Calibrate each shard's (resource, flags) combination through the
    // scheduler; estimates are cached process-wide, so identical shard
    // configurations cost one calibration run between them.
    speeds.reserve(static_cast<std::size_t>(n));
    for (const auto& options : shardOptions_) {
      const auto estimate = sched::resourceEstimate(
          shardResource(options), shardSpec(model, options, split_),
          split_.benchmark);
      speeds.push_back(estimate.patternsPerSecond);
    }
    calibratedSpeeds_ = speeds;
  }

  currentSpeeds_ = speeds;
  quarantined_.assign(static_cast<std::size_t>(n), 0);
  shardErrors_.assign(static_cast<std::size_t>(n), std::string());
  active_.resize(static_cast<std::size_t>(n));
  std::iota(active_.begin(), active_.end(), 0);

  const auto shares =
      sched::proportionalShares(data_.patterns, speeds, split_.minPatternsPerShard);
  if (split_.mode == SplitMode::Adaptive) {
    sched::LoadBalancer::Options options;
    options.ewmaAlpha = split_.ewmaAlpha;
    options.imbalanceThreshold = split_.imbalanceThreshold;
    options.minShare = split_.minPatternsPerShard;
    options.settleRounds = split_.settleRounds;
    balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
  }
  build(tree, shares);
}

void SplitLikelihood::build(const Tree& tree, const std::vector<int>& shares) {
  std::vector<int> current = shares;
  const int maxAttempts = static_cast<int>(shardOptions_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    if (tryBuild(tree, current)) return;
    // tryBuild quarantined the failing shard; re-apportion its patterns
    // across the survivors and retry the whole build.
    ++failovers_;
    sched::noteFailover(1);
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    current = sharesAfterQuarantine();
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "rebuilding shard set, attempt " + std::to_string(attempt + 2) + "/" +
            std::to_string(maxAttempts));
  }
  throw Error("SplitLikelihood: shard construction still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

bool SplitLikelihood::tryBuild(const Tree& tree, const std::vector<int>& shares) {
  shards_.clear();
  shards_.resize(shares.size());
  shardPatterns_ = shares;
  shardSeconds_.assign(shares.size(), 0.0);
  const auto shardData = splitPatternsByShares(data_, shares);
  for (std::size_t s = 0; s < shares.size(); ++s) {
    if (shares[s] <= 0) continue;  // idle or quarantined shard: no instance
    try {
      shards_[s] = std::make_unique<TreeLikelihood>(tree, *model_, shardData[s],
                                                    shardOptions_[s]);
    } catch (const Error& e) {
      if (!split_.failover || !isHardError(e.code())) throw;
      quarantine(s, e.what(), e.code());
      return false;
    } catch (const std::bad_alloc&) {
      if (!split_.failover) throw;
      quarantine(s, "out of host memory building shard", kErrOutOfMemory);
      return false;
    }
  }
  return true;
}

void SplitLikelihood::quarantine(std::size_t shard, const std::string& reason,
                                 int code) {
  quarantined_[shard] = 1;
  shardErrors_[shard] = reason;
  shards_[shard].reset();  // destroy the instance; never hand it work again
  lastFailure_ = reason;
  lastFailureCode_ = code;
  obs::Journal::instance().append(obs::JournalKind::kShardQuarantine, code,
                                  /*instance=*/-1, /*resource=*/-1,
                                  static_cast<int>(shard), reason);
}

std::vector<int> SplitLikelihood::sharesAfterQuarantine() {
  active_.clear();
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (!quarantined_[i]) active_.push_back(static_cast<int>(i));
  }
  if (active_.empty()) {
    if (!split_.cpuFallback || cpuFallbackUsed_) {
      throw Error("SplitLikelihood: every shard is quarantined; last error: " +
                      lastFailure_,
                  lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
    }
    // Last resort: rebuild shard 0 as a plain host-CPU instance carrying
    // the whole alignment. Precision requirements are preserved; the
    // failing framework/vector/threading demands are dropped.
    const long precisionMask =
        BGL_FLAG_PRECISION_SINGLE | BGL_FLAG_PRECISION_DOUBLE;
    const LikelihoodOptions& orig = shardOptions_[0];
    LikelihoodOptions fallback;
    fallback.categories = orig.categories;
    fallback.alpha = orig.alpha;
    fallback.useScaling = orig.useScaling;
    fallback.requirementFlags =
        BGL_FLAG_FRAMEWORK_CPU | (orig.requirementFlags & precisionMask);
    fallback.preferenceFlags = orig.preferenceFlags & precisionMask;
    fallback.resources = {0};
    shardOptions_[0] = fallback;
    quarantined_[0] = 0;
    shardErrors_[0].clear();
    cpuFallbackUsed_ = true;
    active_ = {0};
    obs::Journal::instance().append(
        obs::JournalKind::kCpuFallback, 0, /*instance=*/-1, /*resource=*/0,
        /*shard=*/0,
        "every shard quarantined; host-CPU fallback carries the full "
        "alignment");
  }

  std::vector<double> speeds;
  speeds.reserve(active_.size());
  for (int i : active_) {
    const double s = i < static_cast<int>(currentSpeeds_.size())
                         ? currentSpeeds_[static_cast<std::size_t>(i)]
                         : 1.0;
    speeds.push_back(s > 0.0 ? s : 1.0);
  }
  // The balancer must be rebuilt over the survivors only: feeding the old
  // full-size balancer would let sanitizeSpeeds resurrect dead shards.
  if (split_.mode == SplitMode::Adaptive) {
    sched::LoadBalancer::Options options;
    options.ewmaAlpha = split_.ewmaAlpha;
    options.imbalanceThreshold = split_.imbalanceThreshold;
    options.minShare = split_.minPatternsPerShard;
    options.settleRounds = split_.settleRounds;
    balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
  }
  const auto activeShares =
      sched::proportionalShares(data_.patterns, speeds, split_.minPatternsPerShard);
  std::vector<int> shares(shardOptions_.size(), 0);
  for (std::size_t j = 0; j < active_.size(); ++j) {
    shares[static_cast<std::size_t>(active_[j])] = activeShares[j];
  }
  obs::Journal::instance().append(
      obs::JournalKind::kReapportion, 0, /*instance=*/-1, /*resource=*/-1,
      /*shard=*/-1,
      std::to_string(data_.patterns) + " patterns re-apportioned across " +
          std::to_string(active_.size()) + " surviving shard(s)");
  return shares;
}

double SplitLikelihood::evaluateShard(std::size_t shard, const Tree& tree) {
  if (shards_[shard] == nullptr) {
    shardSeconds_[shard] = 0.0;
    return 0.0;
  }
  // Failures are captured into roundErrorCode_/roundErrorMessage_ instead
  // of thrown: shards run inside futures, and a raw exception would lose
  // the shard identity the failover path needs.
  try {
    const int instance = shards_[shard]->instance();
    const bool timeline = bglResetTimeline(instance) == BGL_SUCCESS;
    const auto start = Clock::now();
    const double logL = shards_[shard]->logLikelihood(tree);
    double seconds = elapsedSeconds(start);
    if (timeline) {
      // Prefer the obs-layer timeline: on simulated accelerator profiles the
      // roofline-modeled time is the honest per-device time base, and it is
      // immune to host-side oversubscription when shards run concurrently.
      BglTimeline tl{};
      if (bglGetTimeline(instance, &tl) == BGL_SUCCESS && tl.modeledSeconds > 0.0) {
        seconds = tl.modeledSeconds;
      }
    }
    if (shard < split_.debugSlowdown.size() && split_.debugSlowdown[shard] > 0.0) {
      seconds *= split_.debugSlowdown[shard];
    }
    shardSeconds_[shard] = seconds;
    return logL;
  } catch (const Error& e) {
    roundErrorCode_[shard] = e.code() != 0 ? e.code() : kErrGeneral;
    roundErrorMessage_[shard] = e.what();
  } catch (const std::bad_alloc&) {
    roundErrorCode_[shard] = kErrOutOfMemory;
    roundErrorMessage_[shard] = "out of host memory evaluating shard";
  } catch (const std::exception& e) {
    roundErrorCode_[shard] = kErrGeneral;
    roundErrorMessage_[shard] = e.what();
  }
  shardSeconds_[shard] = 0.0;
  return 0.0;
}

double SplitLikelihood::evaluateRound(const Tree& tree) {
  double total = 0.0;
  if (!split_.concurrent || shards_.size() == 1) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      total += evaluateShard(i, tree);
    }
  } else {
    std::vector<std::future<double>> futures;
    futures.reserve(shards_.size() - 1);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      futures.push_back(std::async(std::launch::async, [this, i, &tree] {
        return evaluateShard(i, tree);
      }));
    }
    total = evaluateShard(0, tree);
    for (auto& f : futures) total += f.get();
  }
  return total;
}

double SplitLikelihood::logLikelihood(const Tree& tree) {
  const int maxAttempts = static_cast<int>(shardOptions_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    roundErrorCode_.assign(shards_.size(), 0);
    roundErrorMessage_.assign(shards_.size(), std::string());
    const double total = evaluateRound(tree);

    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (roundErrorCode_[i] == 0) continue;
      if (!isHardError(roundErrorCode_[i])) {
        // Programming error: reproduces on any shard, never failed over.
        throw Error(roundErrorMessage_[i], roundErrorCode_[i]);
      }
      failed.push_back(i);
    }

    if (failed.empty()) {
      if (balancer_ != nullptr) {
        // The balancer is indexed over active_ (the non-quarantined
        // shards); translate between balancer slots and shard indices.
        for (std::size_t j = 0; j < active_.size(); ++j) {
          const auto i = static_cast<std::size_t>(active_[j]);
          if (shardPatterns_[i] > 0 && shardSeconds_[i] > 0.0) {
            balancer_->observe(static_cast<int>(j), shardPatterns_[i],
                               shardSeconds_[i]);
          }
        }
        const auto& observed = balancer_->speeds();
        for (std::size_t j = 0; j < active_.size() && j < observed.size(); ++j) {
          currentSpeeds_[static_cast<std::size_t>(active_[j])] = observed[j];
        }
        std::vector<int> activeShares(active_.size());
        for (std::size_t j = 0; j < active_.size(); ++j) {
          activeShares[j] = shardPatterns_[static_cast<std::size_t>(active_[j])];
        }
        const auto newActive = balancer_->rebalance(data_.patterns, activeShares);
        if (!newActive.empty()) {
          std::vector<int> newShares(shards_.size(), 0);
          for (std::size_t j = 0; j < active_.size(); ++j) {
            newShares[static_cast<std::size_t>(active_[j])] = newActive[j];
          }
          const int migrated = sched::migratedItems(shardPatterns_, newShares);
          sched::noteRebalance(static_cast<std::uint64_t>(migrated));
          obs::Journal::instance().append(
              obs::JournalKind::kRebalance, 0, /*instance=*/-1,
              /*resource=*/-1, /*shard=*/-1,
              "adaptive re-split migrated " + std::to_string(migrated) +
                  " patterns across " + std::to_string(active_.size()) +
                  " shard(s)");
          obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                               "sched.rebalance");
          build(tree, newShares);
          ++rebalances_;
        }
      }
      return total;
    }

    if (!split_.failover) {
      throw Error(roundErrorMessage_[failed.front()],
                  roundErrorCode_[failed.front()]);
    }
    for (std::size_t i : failed) {
      quarantine(i, roundErrorMessage_[i], roundErrorCode_[i]);
    }
    ++failovers_;
    sched::noteFailover(static_cast<std::uint64_t>(failed.size()));
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    build(tree, sharesAfterQuarantine());
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "shard set rebuilt after " + std::to_string(failed.size()) +
            " shard failure(s); retrying the evaluation");
  }
  throw Error("SplitLikelihood: evaluation still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

const std::string& SplitLikelihood::implName(int shard) const {
  static const std::string kIdle = "(idle)";
  const auto& ptr = shards_[static_cast<std::size_t>(shard)];
  return ptr == nullptr ? kIdle : ptr->implName();
}

std::vector<int> SplitLikelihood::quarantinedShards() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (quarantined_[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<double> SplitLikelihood::shardSpeeds() const {
  if (balancer_ == nullptr) return calibratedSpeeds_;
  // Balancer slots map to active_ shard indices; quarantined shards
  // report speed 0.
  std::vector<double> out(shards_.size(), 0.0);
  const auto& observed = balancer_->speeds();
  for (std::size_t j = 0; j < active_.size() && j < observed.size(); ++j) {
    out[static_cast<std::size_t>(active_[j])] = observed[j];
  }
  return out;
}

}  // namespace bgl::phylo
