#include "core/model.h"

#include <cmath>
#include <cstdlib>

#include "core/genetic_code.h"
#include "core/rng.h"

namespace bgl {

std::vector<double> SubstitutionModel::rateMatrix() const {
  const int n = states();
  std::vector<double> q(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double rate = exchangeability(i, j) * freqs_[j];
      q[static_cast<std::size_t>(i) * n + j] = rate;
      rowSum += rate;
    }
    q[static_cast<std::size_t>(i) * n + i] = -rowSum;
  }
  // Normalize to one expected substitution per unit time.
  double mu = 0.0;
  for (int i = 0; i < n; ++i) mu -= freqs_[i] * q[static_cast<std::size_t>(i) * n + i];
  if (!(mu > 0.0)) throw Error("SubstitutionModel: degenerate rate matrix");
  for (auto& v : q) v /= mu;
  return q;
}

EigenSystem SubstitutionModel::eigenSystem() const {
  const auto q = rateMatrix();
  return decomposeReversible(q.data(), freqs_.data(), states());
}

JC69Model::JC69Model() { freqs_.assign(kNucleotideStates, 0.25); }

namespace {

void checkFrequencies(const std::vector<double>& f, int n, const char* who) {
  if (static_cast<int>(f.size()) != n) throw Error(std::string(who) + ": bad frequency count");
  double sum = 0.0;
  for (double v : f) {
    if (!(v > 0.0)) throw Error(std::string(who) + ": frequencies must be positive");
    sum += v;
  }
  if (std::abs(sum - 1.0) > 1e-6) throw Error(std::string(who) + ": frequencies must sum to 1");
}

}  // namespace

HKY85Model::HKY85Model(double kappa, const std::vector<double>& frequencies)
    : kappa_(kappa) {
  checkFrequencies(frequencies, kNucleotideStates, "HKY85Model");
  if (!(kappa > 0.0)) throw Error("HKY85Model: kappa must be positive");
  freqs_ = frequencies;
}

double HKY85Model::exchangeability(int i, int j) const {
  // Nucleotide order A=0, C=1, G=2, T=3; transitions are A<->G and C<->T.
  const bool transition = (i + j == 2 && i != j) || (i + j == 4 && i != j);
  return transition ? kappa_ : 1.0;
}

GTRModel::GTRModel(const std::vector<double>& rates, const std::vector<double>& frequencies)
    : rates_(rates) {
  if (rates_.size() != 6) throw Error("GTRModel: expected 6 exchangeabilities");
  for (double r : rates_)
    if (!(r > 0.0)) throw Error("GTRModel: exchangeabilities must be positive");
  checkFrequencies(frequencies, kNucleotideStates, "GTRModel");
  freqs_ = frequencies;
}

double GTRModel::exchangeability(int i, int j) const {
  if (i > j) std::swap(i, j);
  // (i,j) pairs in order: AC AG AT CG CT GT for A,C,G,T = 0..3
  static constexpr int kIndex[4][4] = {
      {-1, 0, 1, 2}, {0, -1, 3, 4}, {1, 3, -1, 5}, {2, 4, 5, -1}};
  return rates_[kIndex[i][j]];
}

AminoAcidModel::AminoAcidModel(std::vector<double> exchangeabilities,
                               const std::vector<double>& frequencies)
    : exch_(std::move(exchangeabilities)) {
  const std::size_t n = kAminoAcidStates;
  if (exch_.size() != n * n) throw Error("AminoAcidModel: expected 20x20 exchangeabilities");
  checkFrequencies(frequencies, kAminoAcidStates, "AminoAcidModel");
  freqs_ = frequencies;
}

AminoAcidModel AminoAcidModel::poisson() {
  std::vector<double> exch(kAminoAcidStates * kAminoAcidStates, 1.0);
  std::vector<double> freqs(kAminoAcidStates, 1.0 / kAminoAcidStates);
  return AminoAcidModel(std::move(exch), freqs);
}

AminoAcidModel AminoAcidModel::random(std::uint64_t seed) {
  Rng rng(seed);
  const int n = kAminoAcidStates;
  std::vector<double> exch(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double r = rng.gamma(0.5) + 0.01;  // heavy-tailed, like empirical tables
      exch[static_cast<std::size_t>(i) * n + j] = r;
      exch[static_cast<std::size_t>(j) * n + i] = r;
    }
  std::vector<double> freqs(n);
  rng.dirichlet(5.0, n, freqs.data());
  // dirichlet() normalizes but guard against tiny frequencies.
  for (auto& f : freqs) f = std::max(f, 1e-4);
  double sum = 0.0;
  for (double f : freqs) sum += f;
  for (auto& f : freqs) f /= sum;
  return AminoAcidModel(std::move(exch), freqs);
}

double AminoAcidModel::exchangeability(int i, int j) const {
  return exch_[static_cast<std::size_t>(i) * kAminoAcidStates + j];
}

GY94CodonModel::GY94CodonModel(double kappa, double omega,
                               const std::vector<double>& codonFrequencies)
    : kappa_(kappa), omega_(omega) {
  if (!(kappa > 0.0) || !(omega > 0.0)) throw Error("GY94CodonModel: bad parameters");
  checkFrequencies(codonFrequencies, kCodonStates, "GY94CodonModel");
  freqs_ = codonFrequencies;
}

GY94CodonModel GY94CodonModel::equalFrequencies(double kappa, double omega) {
  std::vector<double> f(kCodonStates, 1.0 / kCodonStates);
  return GY94CodonModel(kappa, omega, f);
}

double GY94CodonModel::exchangeability(int i, int j) const {
  const auto& code = GeneticCode::universal();
  const int ci = code.codon64(i);
  const int cj = code.codon64(j);
  int diffPos = -1;
  for (int p = 0; p < 3; ++p) {
    if (GeneticCode::nucleotideAt(ci, p) != GeneticCode::nucleotideAt(cj, p)) {
      if (diffPos >= 0) return 0.0;  // multi-nucleotide change disallowed
      diffPos = p;
    }
  }
  if (diffPos < 0) return 0.0;  // same codon (diagonal handled by caller)
  double rate = 1.0;
  if (GeneticCode::isTransition(GeneticCode::nucleotideAt(ci, diffPos),
                                GeneticCode::nucleotideAt(cj, diffPos))) {
    rate *= kappa_;
  }
  if (code.aminoAcid(ci) != code.aminoAcid(cj)) rate *= omega_;
  return rate;
}

K80Model::K80Model(double kappa) : kappa_(kappa) {
  if (!(kappa > 0.0)) throw Error("K80Model: kappa must be positive");
  freqs_.assign(kNucleotideStates, 0.25);
}

double K80Model::exchangeability(int i, int j) const {
  const bool transition = (i + j == 2 && i != j) || (i + j == 4 && i != j);
  return transition ? kappa_ : 1.0;
}

TN93Model::TN93Model(double kappaR, double kappaY,
                     const std::vector<double>& frequencies)
    : kappaR_(kappaR), kappaY_(kappaY) {
  if (!(kappaR > 0.0) || !(kappaY > 0.0)) throw Error("TN93Model: bad kappas");
  checkFrequencies(frequencies, kNucleotideStates, "TN93Model");
  freqs_ = frequencies;
}

double TN93Model::exchangeability(int i, int j) const {
  // A=0, C=1, G=2, T=3: A<->G purine transition, C<->T pyrimidine.
  if ((i == 0 && j == 2) || (i == 2 && j == 0)) return kappaR_;
  if ((i == 1 && j == 3) || (i == 3 && j == 1)) return kappaY_;
  return 1.0;
}

namespace {

/// Nucleotide A,C,G,T index for the TCAG-digit `tcag` used by GeneticCode.
int acgtFromTcag(int tcag) {
  static constexpr int kMap[4] = {3, 1, 0, 2};  // T,C,A,G -> index in A,C,G,T
  return kMap[tcag];
}

}  // namespace

std::vector<double> codonFrequenciesF1x4(const std::vector<double>& nucFreqs) {
  if (nucFreqs.size() != 4) throw Error("codonFrequenciesF1x4: need 4 frequencies");
  std::vector<double> expanded(12);
  for (int pos = 0; pos < 3; ++pos) {
    for (int n = 0; n < 4; ++n) expanded[pos * 4 + n] = nucFreqs[n];
  }
  return codonFrequenciesF3x4(expanded);
}

std::vector<double> codonFrequenciesF3x4(const std::vector<double>& nucFreqs) {
  if (nucFreqs.size() != 12) {
    throw Error("codonFrequenciesF3x4: need 12 (3x4) frequencies");
  }
  const auto& code = GeneticCode::universal();
  std::vector<double> out(kCodonStates);
  double sum = 0.0;
  for (int s = 0; s < kCodonStates; ++s) {
    const int c64 = code.codon64(s);
    double p = 1.0;
    for (int pos = 0; pos < 3; ++pos) {
      p *= nucFreqs[pos * 4 + acgtFromTcag(GeneticCode::nucleotideAt(c64, pos))];
    }
    out[s] = p;
    sum += p;
  }
  if (!(sum > 0.0)) throw Error("codonFrequenciesF3x4: degenerate frequencies");
  for (auto& v : out) v /= sum;
  return out;
}

std::vector<double> positionalNucleotideFrequencies(
    const std::vector<int>& codonStates) {
  const auto& code = GeneticCode::universal();
  std::vector<double> counts(12, 1.0);  // +1 pseudocount avoids zeros
  for (int s : codonStates) {
    if (s < 0 || s >= kCodonStates) continue;
    const int c64 = code.codon64(s);
    for (int pos = 0; pos < 3; ++pos) {
      counts[pos * 4 + acgtFromTcag(GeneticCode::nucleotideAt(c64, pos))] += 1.0;
    }
  }
  for (int pos = 0; pos < 3; ++pos) {
    double total = 0.0;
    for (int n = 0; n < 4; ++n) total += counts[pos * 4 + n];
    for (int n = 0; n < 4; ++n) counts[pos * 4 + n] /= total;
  }
  return counts;
}

MG94CodonModel::MG94CodonModel(double kappa, double omega,
                               const std::vector<double>& nucFreqs)
    : kappa_(kappa), omega_(omega), nucFreqs_(nucFreqs) {
  if (!(kappa > 0.0) || !(omega > 0.0)) throw Error("MG94CodonModel: bad parameters");
  checkFrequencies(nucFreqs_, kNucleotideStates, "MG94CodonModel");
  // Stationary distribution of MG94 rates is the F1x4 codon distribution.
  freqs_ = codonFrequenciesF1x4(nucFreqs_);
}

double MG94CodonModel::exchangeability(int i, int j) const {
  // Q_ij = kappa^[ts] * omega^[nonsyn] * pi_nt(target). Our base class
  // builds Q_ij = r_ij * pi_codon(j), so divide out the unchanged
  // positions' nucleotide frequencies (the Z normalizer cancels in the
  // overall rate normalization).
  const auto& code = GeneticCode::universal();
  const int ci = code.codon64(i);
  const int cj = code.codon64(j);
  int diffPos = -1;
  for (int p = 0; p < 3; ++p) {
    if (GeneticCode::nucleotideAt(ci, p) != GeneticCode::nucleotideAt(cj, p)) {
      if (diffPos >= 0) return 0.0;
      diffPos = p;
    }
  }
  if (diffPos < 0) return 0.0;
  double rate = 1.0;
  if (GeneticCode::isTransition(GeneticCode::nucleotideAt(ci, diffPos),
                                GeneticCode::nucleotideAt(cj, diffPos))) {
    rate *= kappa_;
  }
  if (code.aminoAcid(ci) != code.aminoAcid(cj)) rate *= omega_;
  for (int p = 0; p < 3; ++p) {
    if (p == diffPos) continue;
    rate /= nucFreqs_[acgtFromTcag(GeneticCode::nucleotideAt(cj, p))];
  }
  return rate;
}

AminoAcidModel aminoAcidModelFromPamlText(const std::string& text) {
  // Strip '*'-comments, then read 190 lower-triangle values + 20 freqs.
  std::string clean;
  clean.reserve(text.size());
  bool inComment = false;
  for (char c : text) {
    if (c == '*') inComment = true;
    if (c == '\n') inComment = false;
    if (!inComment) clean += c;
  }
  std::vector<double> values;
  values.reserve(210);
  const char* p = clean.c_str();
  char* end = nullptr;
  for (;;) {
    const double v = std::strtod(p, &end);
    if (end == p) break;
    values.push_back(v);
    p = end;
  }
  if (values.size() != 210) {
    throw Error("aminoAcidModelFromPamlText: expected 190 rates + 20 frequencies, "
                "got " + std::to_string(values.size()) + " numbers");
  }
  const int n = kAminoAcidStates;
  std::vector<double> exch(static_cast<std::size_t>(n) * n, 0.0);
  std::size_t idx = 0;
  for (int i = 1; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      exch[static_cast<std::size_t>(i) * n + j] = values[idx];
      exch[static_cast<std::size_t>(j) * n + i] = values[idx];
      ++idx;
    }
  }
  std::vector<double> freqs(values.begin() + 190, values.end());
  double sum = 0.0;
  for (double f : freqs) sum += f;
  if (!(sum > 0.0)) throw Error("aminoAcidModelFromPamlText: bad frequencies");
  for (auto& f : freqs) f /= sum;
  return AminoAcidModel(std::move(exch), freqs);
}

std::unique_ptr<SubstitutionModel> defaultModelForStates(int states, std::uint64_t seed) {
  switch (states) {
    case kNucleotideStates: {
      Rng rng(seed);
      std::vector<double> f(4);
      rng.dirichlet(20.0, 4, f.data());
      return std::make_unique<HKY85Model>(2.0 + rng.uniform(), f);
    }
    case kAminoAcidStates:
      return std::make_unique<AminoAcidModel>(AminoAcidModel::random(seed));
    case kCodonStates: {
      Rng rng(seed);
      std::vector<double> f(kCodonStates);
      rng.dirichlet(10.0, kCodonStates, f.data());
      return std::make_unique<GY94CodonModel>(2.0, 0.5, f);
    }
    default:
      throw Error("defaultModelForStates: unsupported state count " +
                  std::to_string(states));
  }
}

}  // namespace bgl
