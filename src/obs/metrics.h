// Process-wide metrics registry and live-metrics service.
//
// PR 1's TraceRecorder is per-instance and one-shot: counters accumulate
// inside one instance and the stats/trace files are written at finalize.
// A long-lived multi-tenant process (many instances created and destroyed
// over hours) needs the complement:
//
//   * ProcessRegistry — every instance the C API creates registers here
//     (weak reference + recorder pointer + metadata). aggregate() folds the
//     counters, duration histograms and gauges of all *live* instances
//     together with the final totals of every *retired* one, keyed by
//     (instance, resource), backing bglGetProcessStatistics.
//   * a background snapshot thread (bglSetMetricsFile / BGL_METRICS) that
//     appends one JSON-lines record per period: cumulative process
//     counters, per-period deltas, p50/p95/p99 per span category derived
//     from the log2 histograms, queue-depth gauges, and the journal
//     records appended since the previous line. `genomictest --watch` and
//     `phylomc3 --watch` stream these during a run.
//   * snapshotInstanceFiles — periodically (and on every error the C API
//     surfaces) rewrites the per-instance bglSetStatsFile/bglSetTraceFile
//     outputs, so the last periodic snapshot survives an instance that
//     dies via shard failover or a latched stream error instead of a
//     clean finalize.
//
// Layering: obs knows nothing about api::Implementation — the C API hands
// over an opaque owner (weak_ptr<void>) whose lifetime pins the recorder.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace.h"

namespace bgl::obs {

/// Aggregate over every instance the process has created: live instances
/// contribute their current recorder state, retired instances the totals
/// they held at finalize. Monotone as long as bglResetStatistics is not
/// used mid-flight (reset re-baselines the live contribution; see
/// docs/OBSERVABILITY.md, "Reset semantics").
struct ProcessAggregate {
  std::uint64_t counters[static_cast<int>(Counter::kCount)] = {};
  DurationHistogram histograms[static_cast<int>(Category::kCount)];
  std::uint64_t gaugeLevels[static_cast<int>(Gauge::kCount)] = {}; ///< sum, live only
  std::uint64_t gaugeMax[static_cast<int>(Gauge::kCount)] = {};    ///< high-water, all
  int liveInstances = 0;
  std::uint64_t instancesCreated = 0;
  std::uint64_t instancesRetired = 0;
};

/// Serving-layer statistics snapshot for the metrics stream (schema 2's
/// "serve" object). obs stays ignorant of the serve module's types: serve
/// registers a plain-function provider at startup and obs polls it per
/// snapshot line. Field meanings match BglPoolStatistics (api/bgl.h).
struct ServeStats {
  int liveSessions = 0;
  int pooledInstances = 0;
  int freeInstances = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejectedQuota = 0;
  std::uint64_t rejectedBackpressure = 0;
  std::uint64_t rejectedLoad = 0;
  std::uint64_t instancesCreated = 0;
  std::uint64_t instancesRecycled = 0;
  std::uint64_t reinitGrows = 0;
  std::uint64_t evictions = 0;
  double estimatedLoadSeconds = 0.0;
};

/// Provider fills `*out` and returns true; returning false (or having no
/// provider registered) omits the "serve" object from snapshot lines.
using ServeStatsProvider = bool (*)(ServeStats* out);

/// Register (or clear, with nullptr) the process-wide serve-stats
/// provider. Thread-safe; the metrics thread picks the change up on its
/// next snapshot line.
void setServeStatsProvider(ServeStatsProvider provider);

/// The currently registered provider (nullptr when none).
ServeStatsProvider serveStatsProvider();

class ProcessRegistry {
 public:
  static ProcessRegistry& instance();

  /// Register a live instance. `owner` pins `recorder`'s storage while
  /// locked; `recorder` must stay valid for as long as owner can be locked.
  void add(int id, std::weak_ptr<void> owner, TraceRecorder* recorder,
           std::string implName, std::string resourceName, int resource);

  /// Update the instance's export destinations (empty = none). The metrics
  /// thread and the error-triggered snapshot path rewrite these files.
  void setFiles(int id, std::string traceFile, std::string statsFile);

  /// Retire an instance: fold its final recorder state into the retired
  /// totals and drop the registration. Call while the instance is still
  /// alive (the C API does this inside bglFinalizeInstance).
  void remove(int id);

  ProcessAggregate aggregate() const;

  /// Rewrite the stats/trace files of instance `id` (every registered
  /// instance when id < 0) from current recorder state. Best-effort: write
  /// failures are reported on stderr once per path, never thrown.
  void snapshotInstanceFiles(int id = -1);

  /// Start (or retarget) the background metrics thread: append one
  /// JSON-lines snapshot to `path` every `periodMs` milliseconds and
  /// refresh per-instance files. An empty path stops the thread after one
  /// final snapshot line. Enables span timing on all live and future
  /// instances so the quantile fields are populated. Returns false when
  /// the file cannot be opened.
  bool setMetricsFile(const std::string& path, int periodMs);

  /// True while the metrics thread is running (used by tests).
  bool metricsActive() const;

  ProcessRegistry(const ProcessRegistry&) = delete;
  ProcessRegistry& operator=(const ProcessRegistry&) = delete;

  struct Impl;  ///< opaque state (metrics.cpp)

 private:
  ProcessRegistry();
  ~ProcessRegistry();

  std::unique_ptr<Impl> impl_;
};

}  // namespace bgl::obs
