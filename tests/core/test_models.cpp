#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/genetic_code.h"

namespace bgl {
namespace {

void expectValidGenerator(const SubstitutionModel& model) {
  const int n = model.states();
  const auto q = model.rateMatrix();
  const auto& f = model.frequencies();

  // Rows sum to zero; off-diagonals non-negative.
  for (int i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (int j = 0; j < n; ++j) {
      rowSum += q[static_cast<std::size_t>(i) * n + j];
      if (i != j) {
        EXPECT_GE(q[static_cast<std::size_t>(i) * n + j], 0.0);
      }
    }
    EXPECT_NEAR(rowSum, 0.0, 1e-10);
  }
  // Normalization: expected rate 1.
  double mu = 0.0;
  for (int i = 0; i < n; ++i) mu -= f[i] * q[static_cast<std::size_t>(i) * n + i];
  EXPECT_NEAR(mu, 1.0, 1e-10);
  // Detailed balance: pi_i q_ij == pi_j q_ji.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(f[i] * q[static_cast<std::size_t>(i) * n + j],
                  f[j] * q[static_cast<std::size_t>(j) * n + i], 1e-10);
    }
  }
}

TEST(Models, Jc69IsValid) { expectValidGenerator(JC69Model()); }

TEST(Models, Hky85IsValid) {
  expectValidGenerator(HKY85Model(3.0, {0.3, 0.25, 0.2, 0.25}));
}

TEST(Models, GtrIsValid) {
  expectValidGenerator(GTRModel({1.1, 2.2, 0.6, 0.9, 3.7, 1.0},
                                {0.28, 0.22, 0.24, 0.26}));
}

TEST(Models, AminoPoissonIsValid) { expectValidGenerator(AminoAcidModel::poisson()); }

TEST(Models, AminoRandomIsValid) {
  expectValidGenerator(AminoAcidModel::random(123));
}

TEST(Models, Gy94IsValid) {
  expectValidGenerator(GY94CodonModel::equalFrequencies(2.0, 0.5));
}

TEST(Models, Hky85EqualFreqKappaOneIsJc) {
  // With kappa=1 and equal frequencies, HKY collapses to JC69.
  HKY85Model hky(1.0, {0.25, 0.25, 0.25, 0.25});
  JC69Model jc;
  const auto q1 = hky.rateMatrix();
  const auto q2 = jc.rateMatrix();
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(q1[i], q2[i], 1e-12);
}

TEST(Models, Hky85TransitionsScaleWithKappa) {
  HKY85Model model(5.0, {0.25, 0.25, 0.25, 0.25});
  const auto q = model.rateMatrix();
  // A->G (transition) vs A->C (transversion) with equal frequencies.
  EXPECT_NEAR(q[0 * 4 + 2] / q[0 * 4 + 1], 5.0, 1e-10);
}

TEST(Models, Gy94ForbidsMultiNucleotideChanges) {
  GY94CodonModel model = GY94CodonModel::equalFrequencies(2.0, 0.5);
  const auto q = model.rateMatrix();
  const auto& code = GeneticCode::universal();
  int zeros = 0, nonzeros = 0;
  for (int i = 0; i < kCodonStates; ++i) {
    for (int j = 0; j < kCodonStates; ++j) {
      if (i == j) continue;
      const int ci = code.codon64(i);
      const int cj = code.codon64(j);
      int diffs = 0;
      for (int p = 0; p < 3; ++p) {
        if (GeneticCode::nucleotideAt(ci, p) != GeneticCode::nucleotideAt(cj, p)) {
          ++diffs;
        }
      }
      const double rate = q[static_cast<std::size_t>(i) * kCodonStates + j];
      if (diffs > 1) {
        EXPECT_DOUBLE_EQ(rate, 0.0);
        ++zeros;
      } else {
        EXPECT_GT(rate, 0.0);
        ++nonzeros;
      }
    }
  }
  EXPECT_GT(zeros, 0);
  EXPECT_GT(nonzeros, 0);
}

TEST(Models, Gy94OmegaSuppressesNonsynonymous) {
  // omega < 1: nonsynonymous rates scale down relative to synonymous.
  GY94CodonModel neutral = GY94CodonModel::equalFrequencies(2.0, 1.0);
  GY94CodonModel purifying = GY94CodonModel::equalFrequencies(2.0, 0.1);
  const auto& code = GeneticCode::universal();
  const auto qn = neutral.rateMatrix();
  const auto qp = purifying.rateMatrix();

  // Find a synonymous and a nonsynonymous single-step pair.
  int synI = -1, synJ = -1, nonI = -1, nonJ = -1;
  for (int i = 0; i < kCodonStates && (synI < 0 || nonI < 0); ++i) {
    for (int j = 0; j < kCodonStates; ++j) {
      if (i == j || qn[static_cast<std::size_t>(i) * kCodonStates + j] == 0.0) continue;
      const bool sameAmino =
          code.aminoAcid(code.codon64(i)) == code.aminoAcid(code.codon64(j));
      if (sameAmino && synI < 0) {
        synI = i;
        synJ = j;
      }
      if (!sameAmino && nonI < 0) {
        nonI = i;
        nonJ = j;
      }
    }
  }
  ASSERT_GE(synI, 0);
  ASSERT_GE(nonI, 0);
  // Ratio of (nonsyn / syn) drops by the omega factor (up to normalization).
  const double rn = qn[static_cast<std::size_t>(nonI) * kCodonStates + nonJ] /
                    qn[static_cast<std::size_t>(synI) * kCodonStates + synJ];
  const double rp = qp[static_cast<std::size_t>(nonI) * kCodonStates + nonJ] /
                    qp[static_cast<std::size_t>(synI) * kCodonStates + synJ];
  EXPECT_NEAR(rp / rn, 0.1, 1e-9);
}

TEST(Models, RejectsBadParameters) {
  EXPECT_THROW(HKY85Model(-1.0, {0.25, 0.25, 0.25, 0.25}), Error);
  EXPECT_THROW(HKY85Model(2.0, {0.5, 0.5, 0.0, 0.0}), Error);
  EXPECT_THROW(HKY85Model(2.0, {0.3, 0.3, 0.3, 0.3}), Error);  // sum != 1
  EXPECT_THROW(GTRModel({1, 2, 3}, {0.25, 0.25, 0.25, 0.25}), Error);
  EXPECT_THROW(GY94CodonModel(2.0, -0.5, std::vector<double>(61, 1.0 / 61)), Error);
}

TEST(Models, DefaultModelFactory) {
  EXPECT_EQ(defaultModelForStates(4)->states(), 4);
  EXPECT_EQ(defaultModelForStates(20)->states(), 20);
  EXPECT_EQ(defaultModelForStates(61)->states(), 61);
  EXPECT_THROW(defaultModelForStates(7), Error);
}

TEST(Models, DefaultModelsAreValidGenerators) {
  for (int states : {4, 20, 61}) {
    expectValidGenerator(*defaultModelForStates(states));
  }
}

}  // namespace
}  // namespace bgl
