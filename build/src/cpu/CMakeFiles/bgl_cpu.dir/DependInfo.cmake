
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/avx_kernels.cpp" "src/cpu/CMakeFiles/bgl_cpu.dir/avx_kernels.cpp.o" "gcc" "src/cpu/CMakeFiles/bgl_cpu.dir/avx_kernels.cpp.o.d"
  "/root/repo/src/cpu/cpu_factories.cpp" "src/cpu/CMakeFiles/bgl_cpu.dir/cpu_factories.cpp.o" "gcc" "src/cpu/CMakeFiles/bgl_cpu.dir/cpu_factories.cpp.o.d"
  "/root/repo/src/cpu/cpuid.cpp" "src/cpu/CMakeFiles/bgl_cpu.dir/cpuid.cpp.o" "gcc" "src/cpu/CMakeFiles/bgl_cpu.dir/cpuid.cpp.o.d"
  "/root/repo/src/cpu/sse_kernels.cpp" "src/cpu/CMakeFiles/bgl_cpu.dir/sse_kernels.cpp.o" "gcc" "src/cpu/CMakeFiles/bgl_cpu.dir/sse_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/bgl_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
