// Property tests on the shared kernels, executed directly (no API layer):
// every (precision, variant, state-count, child-kind) combination must
// match an independently computed reference on random inputs, and the two
// framework runtimes must produce byte-identical outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clsim/cl_runtime.h"
#include "core/rng.h"
#include "cudasim/cuda_device.h"
#include "kernels/kernels.h"
#include "perfmodel/device_profiles.h"

namespace bgl {
namespace {

using hal::KernelArgs;
using hal::KernelId;
using hal::KernelSpec;
using hal::KernelVariant;
using hal::WorkGroupCtx;

struct Problem {
  int patterns;
  int categories;
  int states;
  std::vector<double> p1, p2, m1, m2;
  std::vector<std::int32_t> s1, s2;

  Problem(int patterns, int categories, int states, unsigned seed)
      : patterns(patterns), categories(categories), states(states) {
    Rng rng(seed);
    const std::size_t psz =
        static_cast<std::size_t>(categories) * patterns * states;
    const std::size_t msz =
        static_cast<std::size_t>(categories) * states * states;
    p1.resize(psz);
    p2.resize(psz);
    m1.resize(msz);
    m2.resize(msz);
    for (auto& v : p1) v = rng.uniform(0.0, 1.0);
    for (auto& v : p2) v = rng.uniform(0.0, 1.0);
    for (auto& v : m1) v = rng.uniform(0.0, 0.5);
    for (auto& v : m2) v = rng.uniform(0.0, 0.5);
    s1.resize(patterns);
    s2.resize(patterns);
    for (auto& v : s1) v = rng.belowInt(states + 1);  // includes ambiguity
    for (auto& v : s2) v = rng.belowInt(states + 1);
  }
};

/// Independent reference for dest[c,k,i] with either child kind.
std::vector<double> referencePartials(const Problem& f, bool child1States,
                                      bool child2States) {
  std::vector<double> dest(f.p1.size(), 0.0);
  for (int c = 0; c < f.categories; ++c) {
    for (int k = 0; k < f.patterns; ++k) {
      for (int i = 0; i < f.states; ++i) {
        const std::size_t row =
            (static_cast<std::size_t>(c) * f.patterns + k) * f.states;
        const std::size_t mrow =
            (static_cast<std::size_t>(c) * f.states + i) * f.states;
        double sum1, sum2;
        if (child1States) {
          sum1 = f.s1[k] < f.states ? f.m1[mrow + f.s1[k]] : 1.0;
        } else {
          sum1 = 0.0;
          for (int j = 0; j < f.states; ++j) sum1 += f.m1[mrow + j] * f.p1[row + j];
        }
        if (child2States) {
          sum2 = f.s2[k] < f.states ? f.m2[mrow + f.s2[k]] : 1.0;
        } else {
          sum2 = 0.0;
          for (int j = 0; j < f.states; ++j) sum2 += f.m2[mrow + j] * f.p2[row + j];
        }
        dest[row + i] = sum1 * sum2;
      }
    }
  }
  return dest;
}

std::vector<double> runKernel(const Problem& f, KernelVariant variant, bool useFma,
                              KernelId id) {
  KernelSpec spec;
  spec.id = id;
  spec.states = f.states;
  spec.variant = variant;
  spec.useFma = useFma;
  const hal::KernelFn fn = kernels::lookupKernel(spec);

  const bool child1States =
      id == KernelId::StatesPartials || id == KernelId::StatesStates;
  const bool child2States = id == KernelId::StatesStates;

  std::vector<double> dest(f.p1.size(), -1.0);
  const int ppg = variant == KernelVariant::X86Style ? 64 : std::max(1, 256 / f.states);
  const int blocks = (f.patterns + ppg - 1) / ppg;

  // KernelArgs carries untyped device pointers; const-ness is a host-side
  // concept the launch interface does not model.
  KernelArgs args;
  args.buffers[0] = dest.data();
  args.buffers[1] = child1States
                        ? static_cast<void*>(const_cast<std::int32_t*>(f.s1.data()))
                        : static_cast<void*>(const_cast<double*>(f.p1.data()));
  args.buffers[2] = const_cast<double*>(f.m1.data());
  args.buffers[3] = child2States
                        ? static_cast<void*>(const_cast<std::int32_t*>(f.s2.data()))
                        : static_cast<void*>(const_cast<double*>(f.p2.data()));
  args.buffers[4] = const_cast<double*>(f.m2.data());
  args.ints[0] = f.patterns;
  args.ints[1] = f.categories;
  args.ints[2] = f.states;
  args.ints[3] = ppg;

  const std::size_t localBytes =
      kernels::gpuStyleLocalMemBytes(f.states, false) +
      2ull * ppg * f.states * sizeof(double);
  std::vector<std::byte> localMem(localBytes);
  WorkGroupCtx ctx;
  ctx.localMem = localMem.data();
  ctx.localMemBytes = localBytes;
  ctx.numGroups = blocks * f.categories;
  ctx.groupSize = ppg;
  for (int g = 0; g < ctx.numGroups; ++g) {
    ctx.groupId = g;
    fn(ctx, args);
  }
  return dest;
}

class KernelProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(KernelProperty, MatchesReferenceForAllChildKinds) {
  const auto [states, variantIdx, fmaIdx, patterns] = GetParam();
  const auto variant =
      variantIdx == 0 ? KernelVariant::GpuStyle : KernelVariant::X86Style;
  const bool useFma = fmaIdx == 1;

  Problem f(patterns, 3, states, 1000u + states + patterns);
  struct Case {
    KernelId id;
    bool c1s, c2s;
  };
  for (const Case c : {Case{KernelId::PartialsPartials, false, false},
                       Case{KernelId::StatesPartials, true, false},
                       Case{KernelId::StatesStates, true, true}}) {
    const auto expected = referencePartials(f, c.c1s, c.c2s);
    const auto actual = runKernel(f, variant, useFma, c.id);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(actual[i], expected[i], 1e-12)
          << "kernel " << static_cast<int>(c.id) << " entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelProperty,
    ::testing::Combine(::testing::Values(4, 7, 20, 61),  // incl. odd count
                       ::testing::Values(0, 1),          // variant
                       ::testing::Values(0, 1),          // fma
                       ::testing::Values(33, 257)));     // non-divisible sizes

TEST(KernelProperty, VariantsAgreeBitForBit) {
  // GPU-style and x86-style execute different code paths but identical
  // arithmetic: outputs must agree exactly in the FMA-off configuration
  // (FMA-on may round differently between staging orders — still equal
  // here since the arithmetic per entry is identical, but don't rely on it).
  Problem f(101, 4, 4, 5);
  const auto gpu = runKernel(f, KernelVariant::GpuStyle, false,
                             KernelId::PartialsPartials);
  const auto x86 = runKernel(f, KernelVariant::X86Style, false,
                             KernelId::PartialsPartials);
  EXPECT_EQ(gpu, x86);
}

TEST(KernelProperty, FrameworksExecuteIdenticalKernels) {
  // Launch the same spec through the CUDA and OpenCL runtimes on the host
  // device; results must be byte-identical (single shared kernel set).
  Problem f(64, 2, 4, 9);
  auto run = [&](hal::Device& dev) {
    KernelSpec spec;
    spec.id = KernelId::PartialsPartials;
    spec.states = 4;
    spec.variant = KernelVariant::X86Style;
    auto* kernel = dev.getKernel(spec);

    const std::size_t psz = f.p1.size() * sizeof(double);
    const std::size_t msz = f.m1.size() * sizeof(double);
    auto dest = dev.alloc(psz);
    auto p1 = dev.alloc(psz), p2 = dev.alloc(psz);
    auto m1 = dev.alloc(msz), m2 = dev.alloc(msz);
    dev.copyToDevice(*p1, 0, f.p1.data(), psz);
    dev.copyToDevice(*p2, 0, f.p2.data(), psz);
    dev.copyToDevice(*m1, 0, f.m1.data(), msz);
    dev.copyToDevice(*m2, 0, f.m2.data(), msz);

    KernelArgs args;
    args.buffers[0] = dest->data();
    args.buffers[1] = p1->data();
    args.buffers[2] = m1->data();
    args.buffers[3] = p2->data();
    args.buffers[4] = m2->data();
    args.ints[0] = f.patterns;
    args.ints[1] = f.categories;
    args.ints[2] = 4;
    args.ints[3] = 64;
    dev.launch(*kernel, {f.categories, 64, 0}, args, {});
    std::vector<double> out(f.p1.size());
    dev.copyToHost(out.data(), *dest, 0, psz);
    return out;
  };

  auto cuda = cudasim::createDevice(perf::kHostCpu);
  auto opencl = clsim::createDeviceByProfile(perf::kHostCpu);
  EXPECT_EQ(run(*cuda), run(*opencl));
}

}  // namespace
}  // namespace bgl
