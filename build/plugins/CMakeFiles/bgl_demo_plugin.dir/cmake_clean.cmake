file(REMOVE_RECURSE
  "CMakeFiles/bgl_demo_plugin.dir/demo_plugin.cpp.o"
  "CMakeFiles/bgl_demo_plugin.dir/demo_plugin.cpp.o.d"
  "bgl_demo_plugin.pdb"
  "bgl_demo_plugin.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_demo_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
