// Shared kernel implementations (see kernels.h for the slot layout).
//
// These templates are the "single set of kernels" both framework runtimes
// execute. Work-groups map onto the problem as a 1-D grid:
//   partials kernels:  group = (pattern block, category)
//   integrate kernels: group = pattern block (categories looped inside)
//   matrix kernels:    group = category
// A kernel function runs one whole work-group; phases that would be
// separated by barriers on a GPU appear as consecutive loops.
#pragma once

#include <cmath>
#include <cstring>

#include "hal/hal.h"

namespace bgl::kernels::detail {

using hal::KernelArgs;
using hal::KernelVariant;
using hal::WorkGroupCtx;

/// Fused or split multiply-add, matching the FP_FAST_FMA toggle the paper
/// flips for AMD devices (Section VII-B1). The non-FMA path inserts an
/// optimization barrier between the multiply and the add: with
/// -ffp-contract the compiler would otherwise fuse them anyway, making the
/// toggle a no-op on FMA-capable hosts.
template <typename Real, bool UseFma>
inline Real madd(Real a, Real b, Real c) {
  if constexpr (UseFma) {
    return a * b + c;  // contraction allowed: compiles to one FMA
  } else {
    Real product = a * b;
#if defined(__x86_64__) || defined(_M_X64)
    asm volatile("" : "+x"(product));
#else
    asm volatile("" : "+r"(product));
#endif
    return product + c;
  }
}

template <int StatesT>
inline int stateCount(const KernelArgs& args) {
  if constexpr (StatesT > 0) {
    return StatesT;
  } else {
    return static_cast<int>(args.ints[2]);
  }
}

// ---------------------------------------------------------------------------
// Partials kernels (the Eq. 1 core).
// ---------------------------------------------------------------------------

enum class ChildKind { Partials, States };

template <typename Real, int StatesT, KernelVariant Variant, bool UseFma,
          ChildKind Child1, ChildKind Child2>
void partialsKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const int states = stateCount<StatesT>(args);
  const int ppg = static_cast<int>(args.ints[3]);
  const int patternBlocks = (patterns + ppg - 1) / ppg;

  // Fused level launch (ints[4] = operation count): groups come in spans of
  // patternBlocks * categories, one span per operation, with each op's five
  // buffer pointers in the table at buffers[5]. Each group then computes
  // exactly what it would in a standalone launch for its operation, so a
  // fused level is bit-identical to the per-op sequence.
  const int batchOps = static_cast<int>(args.ints[4]);
  const int gid = wg.groupId;
  Real* BGL_RESTRICT dest;
  const void* child1;
  const Real* BGL_RESTRICT gm1;
  const void* child2;
  const Real* BGL_RESTRICT gm2;
  int pb, c, kBegin, kEnd;
  if (batchOps > 0) {
    const int categories = static_cast<int>(args.ints[1]);
    int op, local;
    if (args.ints[5] != 0) {
      // Partitioned fused launch: each op covers its own pattern range
      // [begin, end) of the concatenated axis, so ops contribute a
      // VARIABLE number of groups. buffers[6] holds int32[4] per op:
      // {rangeBegin, rangeEnd, groupOffset, patternBlocks}; the group id
      // is decoded by binary search over the monotone groupOffset column.
      // Every group still computes exactly what a standalone ranged
      // launch for its op would, so the fusion stays bit-identical.
      const auto* ranges = static_cast<const std::int32_t*>(args.buffers[6]);
      int lo = 0, hi = batchOps - 1;
      while (lo < hi) {
        const int mid = (lo + hi + 1) / 2;
        if (static_cast<int>(ranges[4 * mid + 2]) <= gid) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      op = lo;
      local = gid - static_cast<int>(ranges[4 * op + 2]);
      const int opBlocks = static_cast<int>(ranges[4 * op + 3]);
      if (local < 0 || local >= opBlocks * categories) return;
      pb = local % opBlocks;
      c = local / opBlocks;
      kBegin = static_cast<int>(ranges[4 * op]) + pb * ppg;
      kEnd = std::min(static_cast<int>(ranges[4 * op + 1]), kBegin + ppg);
    } else {
      const int blocksPerOp = patternBlocks * categories;
      op = gid / blocksPerOp;
      if (op >= batchOps) return;
      local = gid - op * blocksPerOp;
      pb = local % patternBlocks;
      c = local / patternBlocks;
      kBegin = pb * ppg;
      kEnd = std::min(patterns, kBegin + ppg);
    }
    const void* const* tbl = static_cast<const void* const*>(args.buffers[5]) +
                             static_cast<std::size_t>(op) * 5;
    dest = static_cast<Real*>(const_cast<void*>(tbl[0]));
    child1 = tbl[1];
    gm1 = static_cast<const Real*>(tbl[2]);
    child2 = tbl[3];
    gm2 = static_cast<const Real*>(tbl[4]);
  } else {
    dest = static_cast<Real*>(args.buffers[0]);
    child1 = args.buffers[1];
    gm1 = static_cast<const Real*>(args.buffers[2]);
    child2 = args.buffers[3];
    gm2 = static_cast<const Real*>(args.buffers[4]);
    pb = gid % patternBlocks;
    c = gid / patternBlocks;
    kBegin = pb * ppg;
    kEnd = std::min(patterns, kBegin + ppg);
  }

  const std::size_t matStride = static_cast<std::size_t>(states) * states;
  const Real* m1 = gm1 + static_cast<std::size_t>(c) * matStride;
  const Real* m2 = gm2 + static_cast<std::size_t>(c) * matStride;

  const std::size_t planeOffset =
      static_cast<std::size_t>(c) * patterns * states;

  if constexpr (Variant == KernelVariant::GpuStyle) {
    // GPU-style execution: one work-item per (pattern, state), the exact
    // structure of the GPU kernel, with barriers lowered to phase
    // boundaries. Child partials are staged into local memory element by
    // element by the items that will consume them, and — when it fits —
    // the transition matrices are staged cooperatively too. On a CPU this
    // item-level structure (index decode per item, local-memory round
    // trips, light work per item) is exactly what makes the GPU variant a
    // poor fit, which Table V quantifies.
    auto* lm = reinterpret_cast<Real*>(wg.localMem);
    const int items = ppg * states;
    const std::size_t partialsStage =
        (Child1 == ChildKind::Partials ? static_cast<std::size_t>(ppg) * states : 0) +
        (Child2 == ChildKind::Partials ? static_cast<std::size_t>(ppg) * states : 0);
    const bool stageMatrices =
        wg.localMemBytes >= (2 * matStride + partialsStage) * sizeof(Real);

    Real* lmMat = lm;
    Real* lmP1 = lm + (stageMatrices ? 2 * matStride : 0);
    Real* lmP2 = lmP1 + (Child1 == ChildKind::Partials
                             ? static_cast<std::size_t>(ppg) * states
                             : 0);

    // Phase A (cooperative): stage both matrices, strided by item id.
    if (stageMatrices) {
      for (int item = 0; item < items; ++item) {
        for (std::size_t idx = item; idx < 2 * matStride;
             idx += static_cast<std::size_t>(items)) {
          lmMat[idx] = idx < matStride ? m1[idx] : m2[idx - matStride];
        }
      }
      m1 = lmMat;
      m2 = lmMat + matStride;
    }

    // Phase B: each item copies its own child-partials element.
    for (int item = 0; item < items; ++item) {
      const int kk = item / states;
      const int i = item % states;
      const int k = kBegin + kk;
      if (k >= kEnd) continue;
      const std::size_t row = planeOffset + static_cast<std::size_t>(k) * states;
      if constexpr (Child1 == ChildKind::Partials) {
        lmP1[static_cast<std::size_t>(kk) * states + i] =
            static_cast<const Real*>(child1)[row + i];
      }
      if constexpr (Child2 == ChildKind::Partials) {
        lmP2[static_cast<std::size_t>(kk) * states + i] =
            static_cast<const Real*>(child2)[row + i];
      }
    }

    // Phase C: compute, one (pattern, state) entry per item.
    for (int item = 0; item < items; ++item) {
      const int kk = item / states;
      const int i = item % states;
      const int k = kBegin + kk;
      if (k >= kEnd) continue;
      const std::size_t row = planeOffset + static_cast<std::size_t>(k) * states;
      Real sum1, sum2;
      if constexpr (Child1 == ChildKind::Partials) {
        sum1 = Real(0);
        const Real* mrow = m1 + static_cast<std::size_t>(i) * states;
        const Real* p1 = lmP1 + static_cast<std::size_t>(kk) * states;
        for (int j = 0; j < states; ++j) {
          sum1 = madd<Real, UseFma>(mrow[j], p1[j], sum1);
        }
      } else {
        const int s1 = static_cast<const std::int32_t*>(child1)[k];
        sum1 = (s1 < states) ? m1[static_cast<std::size_t>(i) * states + s1] : Real(1);
      }
      if constexpr (Child2 == ChildKind::Partials) {
        sum2 = Real(0);
        const Real* mrow = m2 + static_cast<std::size_t>(i) * states;
        const Real* p2 = lmP2 + static_cast<std::size_t>(kk) * states;
        for (int j = 0; j < states; ++j) {
          sum2 = madd<Real, UseFma>(mrow[j], p2[j], sum2);
        }
      } else {
        const int s2 = static_cast<const std::int32_t*>(child2)[k];
        sum2 = (s2 < states) ? m2[static_cast<std::size_t>(i) * states + s2] : Real(1);
      }
      dest[row + i] = sum1 * sum2;
    }
    return;
  }

  // x86-style execution: one work-item per pattern, looping over the state
  // space with no explicit local memory (Section VII-B2's key change: more
  // work per item, let the cache hierarchy serve reuse).
  for (int k = kBegin; k < kEnd; ++k) {
    const std::size_t row = planeOffset + static_cast<std::size_t>(k) * states;
    const Real* p1 = nullptr;
    const Real* p2 = nullptr;
    int s1 = 0, s2 = 0;
    if constexpr (Child1 == ChildKind::Partials) {
      p1 = static_cast<const Real*>(child1) + row;
    } else {
      s1 = static_cast<const std::int32_t*>(child1)[k];
    }
    if constexpr (Child2 == ChildKind::Partials) {
      p2 = static_cast<const Real*>(child2) + row;
    } else {
      s2 = static_cast<const std::int32_t*>(child2)[k];
    }
    for (int i = 0; i < states; ++i) {
      Real sum1, sum2;
      if constexpr (Child1 == ChildKind::Partials) {
        sum1 = Real(0);
        const Real* mrow = m1 + static_cast<std::size_t>(i) * states;
        for (int j = 0; j < states; ++j) sum1 = madd<Real, UseFma>(mrow[j], p1[j], sum1);
      } else {
        sum1 = (s1 < states) ? m1[static_cast<std::size_t>(i) * states + s1] : Real(1);
      }
      if constexpr (Child2 == ChildKind::Partials) {
        sum2 = Real(0);
        const Real* mrow = m2 + static_cast<std::size_t>(i) * states;
        for (int j = 0; j < states; ++j) sum2 = madd<Real, UseFma>(mrow[j], p2[j], sum2);
      } else {
        sum2 = (s2 < states) ? m2[static_cast<std::size_t>(i) * states + s2] : Real(1);
      }
      dest[row + i] = sum1 * sum2;
    }
  }
}

// ---------------------------------------------------------------------------
// Transition-probability kernels: P(t) from the precomputed Cijk tensor.
// ---------------------------------------------------------------------------

template <typename Real, int StatesT, bool UseFma, bool WithDerivs>
void transitionMatrixKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  // This kernel's slot layout carries the state count in ints[1]. The
  // non-derivative form is batched: one launch covers `count` edges
  // (ints[2] > 0), with per-edge lengths in buffers[6] and destination
  // matrix-buffer indices in buffers[7] (stride ints[3] reals) — a single
  // kernel launch per updateTransitionMatrices call, which keeps
  // launch-overhead-dominated devices viable.
  const int states = (StatesT > 0) ? StatesT : static_cast<int>(args.ints[1]);
  const int categories = static_cast<int>(args.ints[0]);
  const int batchCount = static_cast<int>(args.ints[2]);

  int c = wg.groupId;
  double t = args.reals[0];
  Real* BGL_RESTRICT dest = static_cast<Real*>(args.buffers[0]);
  Real* d1base = nullptr;
  Real* d2base = nullptr;
  if constexpr (WithDerivs) {
    d1base = static_cast<Real*>(args.buffers[4]);
    d2base = static_cast<Real*>(args.buffers[5]);
  }
  if (batchCount > 0) {
    const int edge = wg.groupId / categories;
    if (edge >= batchCount) return;
    c = wg.groupId % categories;
    const auto* lengths = static_cast<const Real*>(args.buffers[6]);
    const auto* indices = static_cast<const std::int32_t*>(args.buffers[7]);
    t = static_cast<double>(lengths[edge]);
    const std::size_t stride = static_cast<std::size_t>(args.ints[3]);
    if constexpr (WithDerivs) {
      // Derivative batch: indices carries three count-long sections —
      // probability, d1 and d2 matrix-buffer indices — all offsets into
      // the matrix pool at buffers[0].
      d1base = dest + static_cast<std::size_t>(indices[batchCount + edge]) * stride;
      d2base = dest + static_cast<std::size_t>(indices[2 * batchCount + edge]) * stride;
    }
    dest += static_cast<std::size_t>(indices[edge]) * stride;
  }

  const Real* BGL_RESTRICT cijk = static_cast<const Real*>(args.buffers[1]);
  const Real* BGL_RESTRICT eval = static_cast<const Real*>(args.buffers[2]);
  const Real* BGL_RESTRICT rates = static_cast<const Real*>(args.buffers[3]);

  const std::size_t matStride = static_cast<std::size_t>(states) * states;
  Real* p = dest + static_cast<std::size_t>(c) * matStride;

  Real* d1 = nullptr;
  Real* d2 = nullptr;
  if constexpr (WithDerivs) {
    d1 = d1base + static_cast<std::size_t>(c) * matStride;
    d2 = d2base + static_cast<std::size_t>(c) * matStride;
  }

  // exp(lambda_k * r_c * t) per eigenvalue, staged on the stack (the GPU
  // kernel stages this in local memory). The association must be
  // exp((lambda_k * r_c) * t), matching the host-CPU implementations: any
  // other grouping rounds differently for some (eigenvalue, rate, length)
  // triples and breaks the cross-implementation bitwise-logL contract.
  constexpr int kMaxStates = 64;
  Real expl[kMaxStates];
  Real lam1[kMaxStates];
  Real lam2[kMaxStates];
  for (int k = 0; k < states; ++k) {
    const double lam = static_cast<double>(eval[k]) * static_cast<double>(rates[c]);
    expl[k] = static_cast<Real>(std::exp(lam * t));
    if constexpr (WithDerivs) {
      lam1[k] = static_cast<Real>(lam);
      lam2[k] = static_cast<Real>(lam * lam);
    }
  }
  (void)lam1;
  (void)lam2;

  for (int i = 0; i < states; ++i) {
    for (int j = 0; j < states; ++j) {
      const Real* ck = cijk + (static_cast<std::size_t>(i) * states + j) * states;
      // The P(t) dot product is accumulated with the NON-fused madd
      // regardless of the UseFma toggle: the host-CPU reference computes
      // `v = ck*expl; sum += v` with `v` reused for the derivative sums,
      // which no compiler contracts into an FMA. Fusing here would put
      // every accelerator matrix one ulp away from the reference and break
      // the cross-implementation bitwise-logL contract.
      Real sum = Real(0);
      for (int k = 0; k < states; ++k) sum = madd<Real, false>(ck[k], expl[k], sum);
      // Tiny negative values from round-off would poison log() later.
      p[static_cast<std::size_t>(i) * states + j] = sum > Real(0) ? sum : Real(0);
      if constexpr (WithDerivs) {
        Real sum1 = Real(0), sum2 = Real(0);
        for (int k = 0; k < states; ++k) {
          const Real e = ck[k] * expl[k];
          sum1 = madd<Real, false>(e, lam1[k], sum1);
          sum2 = madd<Real, false>(e, lam2[k], sum2);
        }
        d1[static_cast<std::size_t>(i) * states + j] = sum1;
        d2[static_cast<std::size_t>(i) * states + j] = sum2;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Root-likelihood integration.
// ---------------------------------------------------------------------------

template <typename Real, int StatesT, bool UseFma>
void rootLikelihoodKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const int categories = static_cast<int>(args.ints[1]);
  const int states = stateCount<StatesT>(args);
  const int ppg = static_cast<int>(args.ints[3]);

  const Real* BGL_RESTRICT partials = static_cast<const Real*>(args.buffers[0]);
  const Real* BGL_RESTRICT freqs = static_cast<const Real*>(args.buffers[1]);
  const Real* BGL_RESTRICT weights = static_cast<const Real*>(args.buffers[2]);
  Real* BGL_RESTRICT siteOut = static_cast<Real*>(args.buffers[3]);
  const Real* BGL_RESTRICT cumScale = static_cast<const Real*>(args.buffers[4]);

  // Ranged mode (ints[5] = range end > 0): integrate only the pattern
  // range [ints[4], ints[5]) — one partition of a concatenated axis. The
  // per-pattern math is position-independent, so a ranged launch matches
  // a whole-buffer launch bit for bit on the shared patterns.
  const int rangeBegin = static_cast<int>(args.ints[4]);
  const int rangeEnd = static_cast<int>(args.ints[5]);
  const int kBegin = (rangeEnd > 0 ? rangeBegin : 0) + wg.groupId * ppg;
  const int kEnd = std::min(rangeEnd > 0 ? rangeEnd : patterns, kBegin + ppg);

  for (int k = kBegin; k < kEnd; ++k) {
    Real lik = Real(0);
    for (int c = 0; c < categories; ++c) {
      const Real* row = partials +
          (static_cast<std::size_t>(c) * patterns + k) * states;
      Real sum = Real(0);
      for (int s = 0; s < states; ++s) sum = madd<Real, UseFma>(freqs[s], row[s], sum);
      lik = madd<Real, UseFma>(weights[c], sum, lik);
    }
    Real logL = std::log(lik);
    if (cumScale != nullptr) logL += cumScale[k];
    siteOut[k] = logL;
  }
}

// ---------------------------------------------------------------------------
// Edge-likelihood integration (optionally with derivatives).
// ---------------------------------------------------------------------------

template <typename Real, int StatesT, bool UseFma, bool WithDerivs>
void edgeLikelihoodKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const int categories = static_cast<int>(args.ints[1]);
  const int states = stateCount<StatesT>(args);
  const int ppg = static_cast<int>(args.ints[3]);
  const bool childIsStates = args.ints[4] != 0;

  const Real* BGL_RESTRICT parent = static_cast<const Real*>(args.buffers[0]);
  const void* child = args.buffers[1];
  const Real* BGL_RESTRICT pmat = static_cast<const Real*>(args.buffers[2]);
  const Real* BGL_RESTRICT freqs = static_cast<const Real*>(args.buffers[3]);
  const Real* BGL_RESTRICT weights = static_cast<const Real*>(args.buffers[4]);
  Real* BGL_RESTRICT siteOut = static_cast<Real*>(args.buffers[5]);
  Real* BGL_RESTRICT siteD1 = static_cast<Real*>(args.buffers[6]);
  Real* BGL_RESTRICT siteD2 = static_cast<Real*>(args.buffers[7]);
  const Real* BGL_RESTRICT mat1 = static_cast<const Real*>(args.buffers[8]);
  const Real* BGL_RESTRICT mat2 = static_cast<const Real*>(args.buffers[9]);
  const Real* BGL_RESTRICT cumScale = static_cast<const Real*>(args.buffers[10]);

  const std::size_t matStride = static_cast<std::size_t>(states) * states;
  const int kBegin = wg.groupId * ppg;
  const int kEnd = std::min(patterns, kBegin + ppg);

  for (int k = kBegin; k < kEnd; ++k) {
    Real lik = Real(0), num1 = Real(0), num2 = Real(0);
    for (int c = 0; c < categories; ++c) {
      const std::size_t row = (static_cast<std::size_t>(c) * patterns + k) *
                              static_cast<std::size_t>(states);
      const Real* prow = parent + row;
      const Real* m = pmat + static_cast<std::size_t>(c) * matStride;
      const Real* childRow = nullptr;
      int cs = 0;
      if (childIsStates) {
        cs = static_cast<const std::int32_t*>(child)[k];
      } else {
        childRow = static_cast<const Real*>(child) + row;
      }
      Real catSum = Real(0), catSum1 = Real(0), catSum2 = Real(0);
      for (int i = 0; i < states; ++i) {
        Real inner;
        if (childIsStates) {
          inner = (cs < states) ? m[static_cast<std::size_t>(i) * states + cs] : Real(1);
        } else {
          inner = Real(0);
          const Real* mrow = m + static_cast<std::size_t>(i) * states;
          for (int j = 0; j < states; ++j)
            inner = madd<Real, UseFma>(mrow[j], childRow[j], inner);
        }
        const Real pf = freqs[i] * prow[i];
        catSum = madd<Real, UseFma>(pf, inner, catSum);
        if constexpr (WithDerivs) {
          const Real* m1c = mat1 + static_cast<std::size_t>(c) * matStride;
          const Real* m2c = mat2 + static_cast<std::size_t>(c) * matStride;
          Real inner1, inner2;
          if (childIsStates) {
            inner1 = (cs < states) ? m1c[static_cast<std::size_t>(i) * states + cs] : Real(0);
            inner2 = (cs < states) ? m2c[static_cast<std::size_t>(i) * states + cs] : Real(0);
          } else {
            inner1 = Real(0);
            inner2 = Real(0);
            const Real* m1row = m1c + static_cast<std::size_t>(i) * states;
            const Real* m2row = m2c + static_cast<std::size_t>(i) * states;
            for (int j = 0; j < states; ++j) {
              inner1 = madd<Real, UseFma>(m1row[j], childRow[j], inner1);
              inner2 = madd<Real, UseFma>(m2row[j], childRow[j], inner2);
            }
          }
          catSum1 = madd<Real, UseFma>(pf, inner1, catSum1);
          catSum2 = madd<Real, UseFma>(pf, inner2, catSum2);
        }
      }
      lik = madd<Real, UseFma>(weights[c], catSum, lik);
      if constexpr (WithDerivs) {
        num1 = madd<Real, UseFma>(weights[c], catSum1, num1);
        num2 = madd<Real, UseFma>(weights[c], catSum2, num2);
      }
    }
    Real logL = std::log(lik);
    if (cumScale != nullptr) logL += cumScale[k];
    siteOut[k] = logL;
    if constexpr (WithDerivs) {
      // d/dt log L and d2/dt2 log L for this site.
      siteD1[k] = num1 / lik;
      siteD2[k] = (num2 * lik - num1 * num1) / (lik * lik);
    }
  }
}

// ---------------------------------------------------------------------------
// Scaling kernels.
// ---------------------------------------------------------------------------

template <typename Real, int StatesT>
void rescalePartialsKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const int categories = static_cast<int>(args.ints[1]);
  const int states = stateCount<StatesT>(args);
  const int ppg = static_cast<int>(args.ints[3]);

  Real* BGL_RESTRICT partials = static_cast<Real*>(args.buffers[0]);
  Real* BGL_RESTRICT scale = static_cast<Real*>(args.buffers[1]);

  // Ranged mode (ints[5] = range end > 0): rescale one partition's
  // pattern range [ints[4], ints[5]) only.
  const int rangeBegin = static_cast<int>(args.ints[4]);
  const int rangeEnd = static_cast<int>(args.ints[5]);
  const int kBegin = (rangeEnd > 0 ? rangeBegin : 0) + wg.groupId * ppg;
  const int kEnd = std::min(rangeEnd > 0 ? rangeEnd : patterns, kBegin + ppg);

  for (int k = kBegin; k < kEnd; ++k) {
    Real maxv = Real(0);
    for (int c = 0; c < categories; ++c) {
      const Real* row = partials +
          (static_cast<std::size_t>(c) * patterns + k) * states;
      for (int s = 0; s < states; ++s) maxv = std::max(maxv, row[s]);
    }
    if (maxv > Real(0)) {
      const Real inv = Real(1) / maxv;
      for (int c = 0; c < categories; ++c) {
        Real* row = partials + (static_cast<std::size_t>(c) * patterns + k) * states;
        for (int s = 0; s < states; ++s) row[s] *= inv;
      }
      scale[k] = std::log(maxv);
    } else {
      scale[k] = Real(0);
    }
  }
}

template <typename Real>
void accumulateScaleKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const Real sign = static_cast<Real>(args.ints[1]);
  Real* BGL_RESTRICT cum = static_cast<Real*>(args.buffers[0]);

  // Batched multi-group mode (ints[2] = source count): buffers[1] is the
  // scale pool base, buffers[2] an int32 array of `count` scale-buffer
  // indices (stride ints[3] reals), grid = pattern blocks of ints[4]
  // patterns. Each pattern accumulates its sources in array order — the
  // same per-element FP sequence as `count` serial single-source launches,
  // so the result is bit-identical.
  const int count = static_cast<int>(args.ints[2]);
  if (count > 0) {
    const Real* BGL_RESTRICT pool = static_cast<const Real*>(args.buffers[1]);
    const auto* BGL_RESTRICT idx = static_cast<const std::int32_t*>(args.buffers[2]);
    const std::size_t stride = static_cast<std::size_t>(args.ints[3]);
    const int ppg = static_cast<int>(args.ints[4]);
    // Ranged mode (ints[6] = range end > 0): accumulate only the pattern
    // range [ints[5], ints[6]) — one partition's slice of the shared
    // cumulative buffer.
    const int rangeBegin = static_cast<int>(args.ints[5]);
    const int rangeEnd = static_cast<int>(args.ints[6]);
    const int kBegin = (rangeEnd > 0 ? rangeBegin : 0) + wg.groupId * ppg;
    const int kEnd = std::min(rangeEnd > 0 ? rangeEnd : patterns, kBegin + ppg);
    for (int k = kBegin; k < kEnd; ++k) {
      Real acc = cum[k];
      for (int i = 0; i < count; ++i) {
        acc += sign * pool[static_cast<std::size_t>(idx[i]) * stride + k];
      }
      cum[k] = acc;
    }
    return;
  }

  const Real* BGL_RESTRICT src = static_cast<const Real*>(args.buffers[1]);
  if (wg.groupId != 0) return;
  for (int k = 0; k < patterns; ++k) cum[k] += sign * src[k];
}

template <typename Real>
void resetScaleKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  Real* BGL_RESTRICT cum = static_cast<Real*>(args.buffers[0]);
  // Multi-group mode (ints[1] = patterns per group); legacy single-group
  // launches (ints[1] == 0) zero the whole buffer from group 0.
  const int ppg = static_cast<int>(args.ints[1]);
  if (ppg > 0) {
    const int kBegin = wg.groupId * ppg;
    const int kEnd = std::min(patterns, kBegin + ppg);
    for (int k = kBegin; k < kEnd; ++k) cum[k] = Real(0);
    return;
  }
  if (wg.groupId != 0) return;
  for (int k = 0; k < patterns; ++k) cum[k] = Real(0);
}

template <typename Real>
void sumSiteLikelihoodsKernel(const WorkGroupCtx& wg, const KernelArgs& args) {
  const int patterns = static_cast<int>(args.ints[0]);
  const Real* BGL_RESTRICT site = static_cast<const Real*>(args.buffers[0]);
  const Real* BGL_RESTRICT weights = static_cast<const Real*>(args.buffers[1]);
  double* BGL_RESTRICT out = static_cast<double*>(args.buffers[2]);

  // Two-phase multi-group reduction. Phase 1 (ints[1] = block size > 0):
  // group g writes the partial sum of its pattern block to out[g]. Phase 2
  // (ints[2] = block count > 0): group 0 combines the partials at
  // buffers[0] in ascending block order. The block size is a fixed
  // function of the pattern count, so every implementation and both
  // sync/async paths produce the identical bracketing.
  const int blockSize = static_cast<int>(args.ints[1]);
  if (blockSize > 0) {
    // Ranged mode (ints[4] = range end > 0): phase-1 blocks are laid out
    // relative to the range start [ints[3], ints[4]), so block b of a
    // partition's range sums exactly the patterns that block b of a
    // standalone per-partition buffer would — the phase-2 combine then
    // reproduces the per-instance bracketing bit for bit.
    const int rangeBegin = static_cast<int>(args.ints[3]);
    const int rangeEnd = static_cast<int>(args.ints[4]);
    const int kBegin = (rangeEnd > 0 ? rangeBegin : 0) + wg.groupId * blockSize;
    const int kEnd = std::min(rangeEnd > 0 ? rangeEnd : patterns,
                              kBegin + blockSize);
    if (kBegin >= kEnd) return;
    double sum = 0.0;
    for (int k = kBegin; k < kEnd; ++k)
      sum += static_cast<double>(weights[k]) * static_cast<double>(site[k]);
    out[wg.groupId] = sum;
    return;
  }
  const int blockCount = static_cast<int>(args.ints[2]);
  if (blockCount > 0) {
    if (wg.groupId != 0) return;
    const double* BGL_RESTRICT partial = static_cast<const double*>(args.buffers[0]);
    double sum = 0.0;
    for (int b = 0; b < blockCount; ++b) sum += partial[b];
    out[0] = sum;
    return;
  }

  if (wg.groupId != 0) return;
  double sum = 0.0;
  for (int k = 0; k < patterns; ++k)
    sum += static_cast<double>(weights[k]) * static_cast<double>(site[k]);
  out[0] = sum;
}

}  // namespace bgl::kernels::detail
