// Device profiles and the calibrated roofline performance model.
//
// The paper benchmarks three discrete GPUs (Table II), a Xeon Phi 7210 and
// dual Xeon E5-2680v4 CPUs. None of that hardware exists here, so the
// accelerator frameworks execute kernels functionally on the host while a
// roofline model — parameterized by each device's published specifications
// plus calibrated efficiency/overhead constants — supplies modeled wall
// times. The host CPU profile is marked `hostMeasured`, meaning launches on
// it report real measured time instead of modeled time.
#pragma once

#include <string>
#include <vector>

namespace bgl::perf {

enum class DeviceClass { HostCpu, Gpu, ManyCore };

struct DeviceProfile {
  std::string name;
  std::string vendor;
  DeviceClass deviceClass = DeviceClass::Gpu;
  bool hostMeasured = false;  ///< true: wall time is real, not modeled

  // Published specifications (Table II of the paper for the GPUs).
  int computeUnits = 0;         ///< cores (GPU "cores" / CPU hardware threads)
  double memoryGb = 0.0;        ///< device global memory
  double bandwidthGBs = 0.0;    ///< global memory bandwidth, GB/s
  double spGflops = 0.0;        ///< theoretical single-precision peak
  double dpRatio = 0.5;         ///< DP throughput as a fraction of SP
  double localMemKb = 48.0;     ///< local/shared memory per work-group
  bool fastFma = true;          ///< FP_FAST_FMA(F) available

  // Calibrated model constants.
  double launchOverheadUsCuda = 5.0;    ///< per-kernel-launch cost (CUDA)
  double launchOverheadUsOpenCl = 14.0; ///< per-kernel-launch cost (OpenCL)
  double computeEfficiency = 0.16;      ///< achievable fraction of peak FLOPS
  double bandwidthEfficiency = 0.70;    ///< achievable fraction of peak BW
  double pcieGBs = 12.0;                ///< host<->device copy bandwidth
  double pcieLatencyUs = 10.0;          ///< host<->device copy latency

  // CPU-class devices stream from cache when the working set fits, which is
  // what makes the paper's dual-Xeon throughput non-monotonic in pattern
  // count (peak at ~2e4 patterns, decline at 1e5+).
  double llcMb = 0.0;                   ///< last-level cache (0: no cache model)
  double llcBandwidthGBs = 0.0;         ///< effective bandwidth when resident

  /// Per-work-group scheduling cost (drives the Table V work-group-size
  /// sweep: many small groups cost more on CPU-class devices).
  double perGroupNs = 5.0;
};

/// Work descriptor for one kernel launch, used by the roofline model.
struct LaunchWork {
  double flops = 0.0;      ///< useful floating-point operations
  double bytes = 0.0;      ///< global-memory traffic
  double workingSetBytes = 0.0;  ///< resident data (cache model input)
  bool fmaFriendly = false;///< dominated by mul+add pairs fusable into FMA
  bool doublePrecision = false;
  bool useFma = true;      ///< kernel compiled with FMA enabled
  int numGroups = 0;       ///< work-groups launched (scheduling cost input)
  /// Efficiency multiplier for a kernel variant mismatched to the device
  /// class (e.g. the GPU-style kernel on a CPU: Table V measures ~0.16x).
  double variantEfficiency = 1.0;
};

/// Calibrated efficiency of running GPU-style kernels on CPU-class devices
/// (fits the Table V dual-Xeon GPU-style row of 15.75 GFLOPS).
inline constexpr double kGpuStyleOnCpuEfficiency = 0.032;

/// Modeled execution time (seconds) of one kernel launch on `device` when
/// submitted through framework `openCl ? OpenCL : CUDA`.
double modeledKernelSeconds(const DeviceProfile& device, const LaunchWork& work,
                            bool openCl);

/// Modeled host<->device copy time (seconds).
double modeledCopySeconds(const DeviceProfile& device, double bytes);

/// The registry of known devices: index 0 is always the host CPU; the
/// remainder are the paper's accelerator profiles.
const std::vector<DeviceProfile>& deviceRegistry();

/// Profiles by well-known index into deviceRegistry().
enum WellKnownDevice {
  kHostCpu = 0,
  kQuadroP5000 = 1,
  kRadeonR9Nano = 2,
  kFireProS9170 = 3,
  kXeonPhi7210 = 4,
  kDualXeonE5 = 5,
};

}  // namespace bgl::perf
