file(REMOVE_RECURSE
  "CMakeFiles/bgl_cpu.dir/avx_kernels.cpp.o"
  "CMakeFiles/bgl_cpu.dir/avx_kernels.cpp.o.d"
  "CMakeFiles/bgl_cpu.dir/cpu_factories.cpp.o"
  "CMakeFiles/bgl_cpu.dir/cpu_factories.cpp.o.d"
  "CMakeFiles/bgl_cpu.dir/cpuid.cpp.o"
  "CMakeFiles/bgl_cpu.dir/cpuid.cpp.o.d"
  "CMakeFiles/bgl_cpu.dir/sse_kernels.cpp.o"
  "CMakeFiles/bgl_cpu.dir/sse_kernels.cpp.o.d"
  "libbgl_cpu.a"
  "libbgl_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
