# Empty compiler generated dependencies file for unit_phylo.
# This may be replaced when dependencies are built.
