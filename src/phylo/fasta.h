// FASTA I/O for nucleotide and amino-acid data, plus codon encoding.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bgl::phylo {

struct FastaRecord {
  std::string name;
  std::string sequence;
};

/// Parse FASTA text into records. Throws bgl::Error on malformed input.
std::vector<FastaRecord> parseFasta(std::istream& in);
std::vector<FastaRecord> parseFastaString(const std::string& text);

/// Serialize records to FASTA with 70-column wrapping.
std::string writeFasta(const std::vector<FastaRecord>& records);

/// Nucleotide character -> state (A=0, C=1, G=2, T/U=3; anything else,
/// including IUPAC ambiguity codes and gaps, maps to -1 = fully ambiguous).
int nucleotideState(char c);
char nucleotideChar(int state);

/// Amino-acid character -> state (alphabetical one-letter order), -1 for
/// unknown/gap.
int aminoAcidState(char c);
char aminoAcidChar(int state);

/// Encode aligned sequences of equal length into a taxa x sites state
/// matrix using the given per-character mapper.
std::vector<int> encodeAlignment(const std::vector<FastaRecord>& records,
                                 int (*mapper)(char), int* outSites);

/// Encode nucleotide records as sense-codon states (sites = length/3);
/// codons containing ambiguity or encoding a stop map to -1.
std::vector<int> encodeCodonAlignment(const std::vector<FastaRecord>& records,
                                      int* outSites);

/// Decode a state row back into sequence text (nucleotide alphabet).
std::string decodeNucleotides(const int* states, int sites);

/// IUPAC nucleotide ambiguity code -> per-state tip partials (1.0 for each
/// compatible base, order A,C,G,T). Gaps, '?' and unknown characters yield
/// full ambiguity. Use with bglSetTipPartials for data with partial
/// ambiguity codes (R, Y, S, W, K, M, B, D, H, V, N), which compact state
/// codes cannot represent.
void iupacPartials(char c, double out[4]);

/// Pattern-major tip partials (length 4 x sequence length) for a sequence.
std::vector<double> iupacTipPartials(const std::string& sequence);

}  // namespace bgl::phylo
