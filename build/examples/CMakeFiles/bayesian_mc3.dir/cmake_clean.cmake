file(REMOVE_RECURSE
  "CMakeFiles/bayesian_mc3.dir/bayesian_mc3.cpp.o"
  "CMakeFiles/bayesian_mc3.dir/bayesian_mc3.cpp.o.d"
  "bayesian_mc3"
  "bayesian_mc3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayesian_mc3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
