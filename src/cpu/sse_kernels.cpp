// SSE2 kernels: 4-state nucleotide model, double precision (2 lanes).
#include <emmintrin.h>

#include "cpu/simd_kernels.h"

namespace bgl::cpu {
namespace {

// Horizontal sum of a __m128d (SSE2-only, no hadd).
inline double hsum(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

// sum_j m[i*4+j] * v[j] for one row i.
inline double rowDot(const double* row, __m128d vLo, __m128d vHi) {
  const __m128d a = _mm_mul_pd(_mm_load_pd(row), vLo);
  const __m128d b = _mm_mul_pd(_mm_load_pd(row + 2), vHi);
  return hsum(_mm_add_pd(a, b));
}

}  // namespace

void partialsPartials4Sse(double* dest, const double* p1, const double* m1,
                          const double* p2, const double* m2, int patterns,
                          int categories, int kBegin, int kEnd) {
  for (int c = 0; c < categories; ++c) {
    const double* mc1 = m1 + static_cast<std::size_t>(c) * 16;
    const double* mc2 = m2 + static_cast<std::size_t>(c) * 16;
    const std::size_t plane = static_cast<std::size_t>(c) * patterns * 4;
    for (int k = kBegin; k < kEnd; ++k) {
      const std::size_t row = plane + static_cast<std::size_t>(k) * 4;
      const __m128d v1Lo = _mm_loadu_pd(p1 + row);
      const __m128d v1Hi = _mm_loadu_pd(p1 + row + 2);
      const __m128d v2Lo = _mm_loadu_pd(p2 + row);
      const __m128d v2Hi = _mm_loadu_pd(p2 + row + 2);
      for (int i = 0; i < 4; ++i) {
        const double s1 = rowDot(mc1 + i * 4, v1Lo, v1Hi);
        const double s2 = rowDot(mc2 + i * 4, v2Lo, v2Hi);
        dest[row + i] = s1 * s2;
      }
    }
  }
}

void statesPartials4Sse(double* dest, const std::int32_t* s1, const double* m1,
                        const double* p2, const double* m2, int patterns,
                        int categories, int kBegin, int kEnd) {
  for (int c = 0; c < categories; ++c) {
    const double* mc1 = m1 + static_cast<std::size_t>(c) * 16;
    const double* mc2 = m2 + static_cast<std::size_t>(c) * 16;
    const std::size_t plane = static_cast<std::size_t>(c) * patterns * 4;
    for (int k = kBegin; k < kEnd; ++k) {
      const std::size_t row = plane + static_cast<std::size_t>(k) * 4;
      const int code = s1[k];
      const __m128d v2Lo = _mm_loadu_pd(p2 + row);
      const __m128d v2Hi = _mm_loadu_pd(p2 + row + 2);
      for (int i = 0; i < 4; ++i) {
        const double a = (code < 4) ? mc1[i * 4 + code] : 1.0;
        dest[row + i] = a * rowDot(mc2 + i * 4, v2Lo, v2Hi);
      }
    }
  }
}

void statesStates4Sse(double* dest, const std::int32_t* s1, const double* m1,
                      const std::int32_t* s2, const double* m2, int patterns,
                      int categories, int kBegin, int kEnd) {
  for (int c = 0; c < categories; ++c) {
    const double* mc1 = m1 + static_cast<std::size_t>(c) * 16;
    const double* mc2 = m2 + static_cast<std::size_t>(c) * 16;
    const std::size_t plane = static_cast<std::size_t>(c) * patterns * 4;
    for (int k = kBegin; k < kEnd; ++k) {
      const std::size_t row = plane + static_cast<std::size_t>(k) * 4;
      const int c1 = s1[k];
      const int c2 = s2[k];
      for (int i = 0; i < 4; ++i) {
        const double a = (c1 < 4) ? mc1[i * 4 + c1] : 1.0;
        const double b = (c2 < 4) ? mc2[i * 4 + c2] : 1.0;
        dest[row + i] = a * b;
      }
    }
  }
}

}  // namespace bgl::cpu
