# Empty dependencies file for unit_plugin.
# This may be replaced when dependencies are built.
