// Figure 4: partial-likelihoods kernel throughput vs unique site patterns,
// nucleotide and codon models, across devices and implementations.
//
// Paper shape targets (single precision):
//  * nucleotide throughput scales strongly with pattern count for every
//    accelerator, with OpenCL overhead hurting small problems;
//  * saturation by ~1e5 patterns; best overall = AMD R9 Nano at 444.92
//    GFLOPS (475,081 patterns), ~58x over the serial baseline and ~5.1x
//    over the fastest CPU configuration at that size;
//  * dual-Xeon CPU throughput is non-monotonic: strong between ~3e3 and
//    5e4 patterns (peak 328.78 GFLOPS at 20,092), declining beyond L3;
//  * codon throughput is much less sensitive to pattern count, all GPUs
//    cluster together, peak 1324.19 GFLOPS (R9 Nano, 28,419 patterns),
//    ~253x over serial and ~2x over OpenCL-x86 on the dual Xeon.
//
// Host rows are real measurements; the paper's devices are roofline-
// modeled profiles (kernels still execute functionally). Run with
// --list-devices to print the Table II device registry.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/genomictest.h"
#include "kernels/workload.h"
#include "perfmodel/device_profiles.h"

namespace {

struct Config {
  const char* label;
  int resource;
  long flags;
};

// The paper's "C++ threads: 2x Xeon E5-2680v4" curve (peak 328.78 GFLOPS
// at 20,092 patterns, declining to ~87 at 475k), modeled analytically: the
// threaded model pays no OpenCL driver overhead, only a small per-call
// fork/join barrier.
double modeledDualXeonThreadsGflops(int patterns, int states, int tips) {
  using namespace bgl;
  perf::DeviceProfile d = perf::deviceRegistry()[perf::kDualXeonE5];
  d.launchOverheadUsOpenCl = 3.0;  // thread-pool barrier, not a driver call
  d.perGroupNs = 0.0;
  perf::LaunchWork w;
  w.flops = kernels::partialsFlops(patterns, 4, states);
  w.bytes = kernels::partialsBytes(patterns, 4, states, 4);
  w.workingSetBytes = kernels::partialsWorkingSet(patterns, 4, states, 4);
  w.fmaFriendly = true;
  const double perOp = perf::modeledKernelSeconds(d, w, true);
  return (tips - 1) * w.flops / ((tips - 1) * perOp) / 1e9;
}

void runModel(const char* title, int states, int tips,
              const std::vector<int>& sizes, const std::vector<Config>& configs,
              bgl::bench::JsonReport& report) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-44s", "implementation: device");
  for (int p : sizes) std::printf(" %9d", p);
  std::printf("\n");

  std::vector<double> serialRow(sizes.size(), 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::printf("%-44s", configs[c].label);
    std::fflush(stdout);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      bgl::harness::ProblemSpec spec;
      spec.tips = tips;
      spec.patterns = sizes[i];
      spec.states = states;
      spec.categories = 4;
      spec.singlePrecision = true;
      spec.resource = configs[c].resource;
      spec.requirementFlags = configs[c].flags;
      spec.reps = sizes[i] <= 10000 ? 3 : 1;
      try {
        const auto result = bgl::harness::runThroughput(spec);
        std::printf(" %9.2f", result.gflops);
        if (c == 0) serialRow[i] = result.gflops;
        report.row()
            .field("implementation", configs[c].label)
            .field("states", states)
            .field("tips", tips)
            .field("patterns", sizes[i])
            .field("gflops", result.gflops)
            .field("seconds", result.seconds)
            .field("modeled", result.modeled ? 1 : 0);
      } catch (const std::exception&) {
        std::printf(" %9s", "-");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("%-44s", "C++ threads: 2x Xeon E5-2680v4 (modeled)");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double gflops = modeledDualXeonThreadsGflops(sizes[i], states, tips);
    std::printf(" %9.2f", gflops);
    report.row()
        .field("implementation", "C++ threads: 2x Xeon E5-2680v4 (modeled)")
        .field("states", states)
        .field("tips", tips)
        .field("patterns", sizes[i])
        .field("gflops", gflops)
        .field("modeled", 1);
  }
  std::printf("\n");
  (void)serialRow;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgl;
  if (argc > 1 && std::strcmp(argv[1], "--list-devices") == 0) {
    bench::printHeader("Table II: GPU specifications (device registry)",
                       "Ayres & Cummings 2017, Table II");
    std::printf("%-26s %8s %8s %12s %12s %9s\n", "device", "cores", "mem(GB)",
                "BW(GB/s)", "SP GFLOPS", "modeled");
    for (const auto& d : perf::deviceRegistry()) {
      std::printf("%-26s %8d %8.0f %12.0f %12.0f %9s\n", d.name.c_str(),
                  d.computeUnits, d.memoryGb, d.bandwidthGBs, d.spGflops,
                  d.hostMeasured ? "no" : "yes");
    }
    return 0;
  }

  bench::printHeader("Figure 4: kernel throughput vs unique site patterns",
                     "Ayres & Cummings 2017, Fig. 4 (Section VIII-A)");
  bench::printNote(
      "single precision, 4 rate categories, effective GFLOPS of the "
      "partials kernel; host rows measured, device rows roofline-modeled");

  const std::vector<Config> configs = {
      {"C++ serial: Host CPU (measured)", 0,
       BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE},
      {"C++ threads: Host CPU (measured)", 0, BGL_FLAG_THREADING_THREAD_POOL},
      {"OpenCL-x86: Host CPU (measured)", 0,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE},
      {"OpenCL-x86: 2x Xeon E5-2680v4 (modeled)", perf::kDualXeonE5,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE},
      {"C++ threads: Xeon Phi 7210 (modeled)", perf::kXeonPhi7210,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE},
      {"CUDA: NVIDIA Quadro P5000 (modeled)", perf::kQuadroP5000,
       BGL_FLAG_FRAMEWORK_CUDA},
      {"OpenCL-GPU: NVIDIA Quadro P5000 (modeled)", perf::kQuadroP5000,
       BGL_FLAG_FRAMEWORK_OPENCL},
      {"OpenCL-GPU: AMD FirePro S9170 (modeled)", perf::kFireProS9170,
       BGL_FLAG_FRAMEWORK_OPENCL},
      {"OpenCL-GPU: AMD Radeon R9 Nano (modeled)", perf::kRadeonR9Nano,
       BGL_FLAG_FRAMEWORK_OPENCL},
  };

  bench::JsonReport report(
      "fig4", "Figure 4: kernel throughput vs unique site patterns",
      "Ayres & Cummings 2017, Fig. 4 (Section VIII-A)");
  report.note(
      "single precision, 4 rate categories, effective GFLOPS; host rows "
      "measured, device rows roofline-modeled");

  runModel("nucleotide model (4 states)", 4, 8,
           {128, 512, 2048, 8192, 20092, 131072, 475081}, configs, report);
  std::printf(
      "paper: R9 Nano 444.92 GFLOPS @475,081; dual Xeon (threads) peak "
      "328.78 @20,092; saturation by 1e5 patterns; OpenCL weak at small "
      "sizes due to launch overhead\n");

  runModel("codon model (61 states)", 61, 4, {128, 1024, 6080, 28419}, configs,
           report);
  std::printf(
      "paper: R9 Nano 1324.19 GFLOPS @28,419 (~253x serial, ~2x the "
      "dual-Xeon OpenCL-x86); all GPUs cluster; weak pattern-count "
      "sensitivity\n");
  return 0;
}
