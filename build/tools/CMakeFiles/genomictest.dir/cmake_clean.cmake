file(REMOVE_RECURSE
  "CMakeFiles/genomictest.dir/genomictest.cpp.o"
  "CMakeFiles/genomictest.dir/genomictest.cpp.o.d"
  "genomictest"
  "genomictest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomictest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
