#include "sched/balancer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/defs.h"

namespace bgl::sched {
namespace {

/// Replace non-finite / non-positive speeds with a small positive fraction
/// of the fastest valid speed so they still receive (little) work.
std::vector<double> sanitizeSpeeds(const std::vector<double>& speeds) {
  double maxSpeed = 0.0;
  for (double s : speeds) {
    if (std::isfinite(s) && s > 0.0) maxSpeed = std::max(maxSpeed, s);
  }
  if (maxSpeed <= 0.0) maxSpeed = 1.0;
  std::vector<double> out(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    out[i] = (std::isfinite(speeds[i]) && speeds[i] > 0.0) ? speeds[i]
                                                           : maxSpeed * 1e-6;
  }
  return out;
}

}  // namespace

std::vector<int> proportionalShares(int total, const std::vector<double>& speeds,
                                    int minShare) {
  const int n = static_cast<int>(speeds.size());
  if (n == 0) throw Error("proportionalShares: no shards");
  if (minShare < 0) minShare = 0;
  std::vector<int> shares(n, 0);
  if (total <= 0) return shares;

  const std::vector<double> s = sanitizeSpeeds(speeds);

  if (total < static_cast<long long>(n) * std::max(minShare, 1)) {
    // Too few items for every shard to reach the minimum: hand items to
    // the fastest shards one at a time (round-robin in speed order) until
    // the items run out, so shares differ by at most one.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return s[a] > s[b]; });
    for (int i = 0; i < total; ++i) ++shares[order[i % n]];
    return shares;
  }

  // Largest-remainder apportionment.
  const double sum = std::accumulate(s.begin(), s.end(), 0.0);
  std::vector<double> remainder(n);
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    const double exact = total * (s[i] / sum);
    shares[i] = static_cast<int>(exact);
    remainder[i] = exact - shares[i];
    assigned += shares[i];
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return remainder[a] > remainder[b]; });
  for (int i = 0; assigned < total; ++i) {
    ++shares[order[i % n]];
    ++assigned;
  }

  // Enforce the minimum by taking from the largest shares.
  for (int i = 0; i < n; ++i) {
    while (shares[i] < minShare) {
      const int donor = static_cast<int>(
          std::max_element(shares.begin(), shares.end()) - shares.begin());
      if (shares[donor] <= minShare) return shares;  // infeasible; best effort
      --shares[donor];
      ++shares[i];
    }
  }
  return shares;
}

int migratedItems(const std::vector<int>& before, const std::vector<int>& after) {
  int moved = 0;
  const std::size_t n = std::min(before.size(), after.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (after[i] < before[i]) moved += before[i] - after[i];
  }
  return moved;
}

LoadBalancer::LoadBalancer(std::vector<double> initialSpeeds, Options options)
    : options_(options),
      speeds_(sanitizeSpeeds(initialSpeeds)),
      observed_(initialSpeeds.size(), false),
      fresh_(initialSpeeds.size(), false) {
  if (speeds_.empty()) throw Error("LoadBalancer: no shards");
}

void LoadBalancer::observe(int shard, int patterns, double seconds) {
  if (shard < 0 || shard >= shardCount()) return;
  if (patterns <= 0 || !(seconds > 0.0) || !std::isfinite(seconds)) return;
  const double speed = patterns / seconds;
  fresh_[shard] = true;
  if (!observed_[shard]) {
    // First real measurement replaces the calibration/model seed outright.
    speeds_[shard] = speed;
    observed_[shard] = true;
  } else {
    speeds_[shard] =
        options_.ewmaAlpha * speed + (1.0 - options_.ewmaAlpha) * speeds_[shard];
  }
}

double LoadBalancer::predictedSeconds(int shard, int share) const {
  if (shard < 0 || shard >= shardCount() || share <= 0) return 0.0;
  return share / speeds_[shard];
}

bool LoadBalancer::imbalanced(const std::vector<int>& shares) const {
  double slowest = 0.0;
  double fastest = 0.0;
  bool any = false;
  for (int i = 0; i < shardCount() && i < static_cast<int>(shares.size()); ++i) {
    if (shares[i] <= 0) continue;
    const double t = predictedSeconds(i, shares[i]);
    if (!any) {
      slowest = fastest = t;
      any = true;
    } else {
      slowest = std::max(slowest, t);
      fastest = std::min(fastest, t);
    }
  }
  // A shard idling at zero patterns while others work is itself imbalance
  // once its estimated speed would earn it at least minShare patterns.
  if (any) {
    const auto ideal = proportionalShares(
        std::accumulate(shares.begin(), shares.end(), 0), speeds_,
        options_.minShare);
    for (std::size_t i = 0; i < shares.size() && i < ideal.size(); ++i) {
      if (shares[i] == 0 && ideal[i] > 0) return true;
    }
  }
  if (!any || fastest <= 0.0) return false;
  return slowest / fastest > options_.imbalanceThreshold;
}

std::vector<int> LoadBalancer::rebalance(int total,
                                         const std::vector<int>& currentShares) {
  // Judge a division only on measurements taken under it: every active
  // shard must have reported in since the last re-split.
  for (int i = 0; i < shardCount() && i < static_cast<int>(currentShares.size());
       ++i) {
    if (currentShares[i] > 0 && !fresh_[i]) return {};
  }
  if (!imbalanced(currentShares)) {
    imbalancedStreak_ = 0;
    return {};
  }
  // Require the imbalance to persist: one noisy round on a contended host
  // must not trigger an instance-rebuilding migration.
  if (++imbalancedStreak_ < std::max(1, options_.settleRounds)) return {};
  auto shares = proportionalShares(total, speeds_, options_.minShare);
  if (shares == currentShares) {
    imbalancedStreak_ = 0;
    return {};
  }
  ++rebalances_;
  imbalancedStreak_ = 0;
  std::fill(fresh_.begin(), fresh_.end(), false);
  return shares;
}

std::vector<int> apportionWeightedItems(const std::vector<double>& weights,
                                        const std::vector<double>& speeds) {
  if (speeds.empty()) return {};
  const std::vector<double> s = sanitizeSpeeds(speeds);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double wa = std::isfinite(weights[a]) && weights[a] > 0.0 ? weights[a] : 0.0;
    const double wb = std::isfinite(weights[b]) && weights[b] > 0.0 ? weights[b] : 0.0;
    return wa > wb;
  });
  std::vector<double> load(s.size(), 0.0);
  std::vector<int> assignment(weights.size(), 0);
  for (std::size_t item : order) {
    const double w =
        std::isfinite(weights[item]) && weights[item] > 0.0 ? weights[item] : 0.0;
    std::size_t best = 0;
    double bestFinish = 0.0;
    for (std::size_t j = 0; j < s.size(); ++j) {
      const double finish = (load[j] + w) / s[j];
      if (j == 0 || finish < bestFinish) {
        best = j;
        bestFinish = finish;
      }
    }
    assignment[item] = static_cast<int>(best);
    load[best] += w;
  }
  return assignment;
}

}  // namespace bgl::sched
