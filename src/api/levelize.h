// Dependency levelization for batches of partials operations.
//
// An updatePartials batch is a post-order slice of the tree: operation i
// depends on an earlier operation j when j's destination feeds i (as a
// child) or i re-uses the same destination buffer. Grouping operations by
// dependency depth turns a batch of N per-node dispatches into one fused
// dispatch per level — O(tree depth) launches for a whole-tree update —
// while operations inside a level remain topology-independent and can run
// concurrently. The accelerator path (accel/accel_impl.h) and the threaded
// CPU implementations (cpu/threaded_impl.h) share this analysis.
#pragma once

#include <algorithm>
#include <vector>

#include "api/bgl.h"

namespace bgl {

/// Assign each operation its dependency level (0 = no dependencies inside
/// the batch). `level` is resized to `count`. Returns the maximum level.
/// O(count^2), which is negligible against the kernel work even for
/// thousand-operation batches.
inline int levelizeOperations(const BglOperation* ops, int count,
                              std::vector<int>& level) {
  level.assign(static_cast<std::size_t>(count > 0 ? count : 0), 0);
  int maxLevel = 0;
  for (int i = 0; i < count; ++i) {
    for (int j = 0; j < i; ++j) {
      if (ops[j].destinationPartials == ops[i].child1Partials ||
          ops[j].destinationPartials == ops[i].child2Partials ||
          ops[j].destinationPartials == ops[i].destinationPartials) {
        level[i] = std::max(level[i], level[j] + 1);
      }
    }
    maxLevel = std::max(maxLevel, level[i]);
  }
  return maxLevel;
}

/// True when no scale buffer is written by more than one operation in the
/// batch. Level-order execution defers the cumulative scale accumulation
/// to the end of the batch (in original operation order, preserving the
/// exact FP sequence of the per-op path); a repeated scale target would
/// have lost its earlier value by then, so such batches take the serial
/// fallback instead.
inline bool scaleWritesUnique(const BglOperation* ops, int count) {
  std::vector<int> writes;
  for (int i = 0; i < count; ++i) {
    if (ops[i].destinationScaleWrite != BGL_OP_NONE) {
      writes.push_back(ops[i].destinationScaleWrite);
    }
  }
  std::sort(writes.begin(), writes.end());
  return std::adjacent_find(writes.begin(), writes.end()) == writes.end();
}

}  // namespace bgl
