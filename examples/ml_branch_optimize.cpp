// Maximum-likelihood branch-length optimization with analytic derivatives.
//
// The library computes first and second derivatives of the log-likelihood
// with respect to an edge length (bglCalculateEdgeLogLikelihoods), which
// ML programs such as GARLI and PhyML use for Newton-Raphson branch
// optimization. This example simulates data on a known tree, perturbs the
// root branch, and recovers the ML length by Newton iteration — then
// verifies the optimum against a grid scan.
#include <cmath>
#include <cstdio>

#include "core/model.h"
#include "phylo/likelihood.h"
#include "phylo/seqsim.h"

int main() {
  using namespace bgl;

  Rng rng(2024);
  phylo::Tree tree = phylo::Tree::random(10, rng, 0.12);
  const HKY85Model model(2.5, {0.3, 0.25, 0.2, 0.25});
  const auto data = phylo::simulatePatterns(tree, model, 2000, rng);
  std::printf("simulated %d sites -> %d unique patterns on %d taxa\n",
              data.originalSites, data.patterns, data.taxa);

  phylo::LikelihoodOptions opts;
  opts.categories = 4;
  phylo::TreeLikelihood like(tree, model, data, opts);
  std::printf("implementation: %s\n", like.implName().c_str());
  std::printf("logL at simulation tree: %.4f\n\n", like.logLikelihood());

  // The "root branch": the path between the two root children. Its true
  // length is the sum of the two child branch lengths.
  const auto& t = like.tree();
  const double truth = t.node(t.node(t.root()).left).length +
                       t.node(t.node(t.root()).right).length;

  // Newton-Raphson from a deliberately bad start.
  double x = 1.5;
  std::printf("Newton-Raphson on the root branch (truth: %.5f)\n", truth);
  std::printf("%4s %12s %14s %14s\n", "iter", "t", "logL", "dlogL/dt");
  for (int iter = 0; iter < 20; ++iter) {
    double d1 = 0.0, d2 = 0.0;
    const double f = like.rootEdgeLogLikelihood(x, &d1, &d2);
    std::printf("%4d %12.6f %14.6f %14.6f\n", iter, x, f, d1);
    if (std::abs(d1) < 1e-8) break;
    double step = (d2 < 0.0) ? d1 / d2 : -d1;  // fall back to gradient ascent
    if (x - step <= 0.0) step = x / 2.0;       // stay in the feasible region
    x -= step;
    if (std::abs(step) < 1e-10) break;
  }
  std::printf("\nML estimate: %.6f (truth %.6f)\n", x, truth);

  // Independent check: coarse grid scan around the optimum.
  double bestT = 0.0, bestL = -1e300;
  for (double g = 0.2 * x; g <= 3.0 * x; g += 0.02 * x) {
    const double f = like.rootEdgeLogLikelihood(g, nullptr, nullptr);
    if (f > bestL) {
      bestL = f;
      bestT = g;
    }
  }
  std::printf("grid-scan optimum: %.6f (logL %.6f)\n", bestT, bestL);
  const double newtonL = like.rootEdgeLogLikelihood(x, nullptr, nullptr);
  std::printf("Newton logL %.6f %s grid optimum\n", newtonL,
              newtonL >= bestL - 1e-6 ? ">= (confirmed)" : "< (PROBLEM)");
  return newtonL >= bestL - 1e-6 ? 0 : 1;
}
