// Flight-recorder journal (src/obs/journal.*): C-API round trip, the
// most-recent-window contract of bglGetJournal, ring wraparound, the
// bglResetStatistics "never clears the journal" guarantee, and — the reason
// the seqlock design exists — concurrent writers from many threads with no
// torn records. The concurrency test is the TSan target for this subsystem.
//
// The journal is process-wide and other suites in this binary append to it,
// so every test baselines on totalAppended() and filters fetched records by
// a unique message marker instead of assuming an empty journal.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/bgl.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace bgl {
namespace {

using obs::Journal;
using obs::JournalKind;
using obs::JournalRecord;

/// Fetch every retained record through the C API.
std::vector<BglJournalRecord> fetchAll() {
  int total = 0;
  EXPECT_EQ(bglGetJournal(nullptr, 0, &total), BGL_SUCCESS);
  std::vector<BglJournalRecord> records(static_cast<std::size_t>(total) + 8);
  int count = 0;
  EXPECT_EQ(bglGetJournal(records.data(), static_cast<int>(records.size()),
                          &count),
            BGL_SUCCESS);
  records.resize(static_cast<std::size_t>(count));
  return records;
}

TEST(ObsJournal, AppendRoundTripsThroughCApi) {
  const std::string marker = "roundtrip-marker-7141";
  Journal::instance().append(JournalKind::kShardQuarantine,
                             BGL_ERROR_HARDWARE, /*instance=*/3,
                             /*resource=*/1, /*shard=*/2, marker);
  const auto records = fetchAll();
  const BglJournalRecord* found = nullptr;
  for (const auto& r : records) {
    if (marker == r.message) found = &r;
  }
  ASSERT_NE(found, nullptr) << "appended record not retained";
  EXPECT_EQ(found->kind, BGL_JOURNAL_SHARD_QUARANTINE);
  EXPECT_EQ(found->code, BGL_ERROR_HARDWARE);
  EXPECT_EQ(found->instance, 3);
  EXPECT_EQ(found->resource, 1);
  EXPECT_EQ(found->shard, 2);
  EXPECT_LT(found->sequence, Journal::instance().totalAppended());
}

TEST(ObsJournal, LongMessagesAreTruncatedNulTerminated) {
  const std::string prefix = "truncation-marker-9313-";
  const std::string message = prefix + std::string(300, 'x');
  Journal::instance().append(JournalKind::kError, 0, -1, -1, -1, message);
  bool found = false;
  for (const auto& r : fetchAll()) {
    if (std::strncmp(r.message, prefix.c_str(), prefix.size()) != 0) continue;
    found = true;
    const std::size_t len = std::strlen(r.message);
    EXPECT_EQ(len, static_cast<std::size_t>(JournalRecord::kMessageBytes) - 1);
    EXPECT_EQ(std::string(r.message),
              message.substr(0, JournalRecord::kMessageBytes - 1));
  }
  EXPECT_TRUE(found);
}

TEST(ObsJournal, SmallCapacityFetchKeepsMostRecentRecords) {
  const std::uint64_t before = Journal::instance().totalAppended();
  for (int i = 0; i < 8; ++i) {
    Journal::instance().append(JournalKind::kRebalance, 0, -1, -1, i,
                               "window-marker-" + std::to_string(i));
  }
  BglJournalRecord records[3];
  int count = 0;
  ASSERT_EQ(bglGetJournal(records, 3, &count), BGL_SUCCESS);
  ASSERT_EQ(count, 3);
  // A too-small buffer keeps the MOST RECENT window, oldest first within it.
  const std::uint64_t last = Journal::instance().totalAppended() - 1;
  EXPECT_GE(records[0].sequence, before + 5);
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(records[i].sequence, last - static_cast<std::uint64_t>(2 - i));
  }
}

TEST(ObsJournal, WraparoundKeepsLastCapacityRecords) {
  Journal& journal = Journal::instance();
  const int extra = 50;
  const std::uint64_t before = journal.totalAppended();
  for (std::size_t i = 0; i < Journal::kCapacity + extra; ++i) {
    journal.append(JournalKind::kRetry, 0, -1, -1, -1,
                   "wrap-" + std::to_string(i));
  }
  EXPECT_EQ(journal.totalAppended(), before + Journal::kCapacity + extra);

  const auto records = journal.snapshot();
  ASSERT_LE(records.size(), Journal::kCapacity);
  // Everything retained is from the most recent kCapacity appends, in
  // strictly increasing sequence order ending at the newest append.
  const std::uint64_t total = journal.totalAppended();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_GE(records[i].sequence, total - Journal::kCapacity);
    EXPECT_LT(records[i].sequence, total);
    if (i > 0) {
      EXPECT_GT(records[i].sequence, records[i - 1].sequence);
    }
  }
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().sequence, total - 1);
}

TEST(ObsJournal, MasterSwitchGatesAppends) {
  Journal& journal = Journal::instance();
  const std::uint64_t before = journal.totalAppended();
  obs::setEnabled(false);
  journal.append(JournalKind::kError, 0, -1, -1, -1, "dropped");
  obs::setEnabled(true);
  EXPECT_EQ(journal.totalAppended(), before);
  journal.append(JournalKind::kError, 0, -1, -1, -1, "kept");
  EXPECT_EQ(journal.totalAppended(), before + 1);
}

TEST(ObsJournal, ResetStatisticsDoesNotClearJournal) {
  const int resource = 0;
  const int inst = bglCreateInstance(
      /*tips=*/4, /*partials=*/3, /*compact=*/4, /*states=*/4, /*patterns=*/16,
      /*eigen=*/1, /*matrices=*/6, /*categories=*/2, /*scale=*/0, &resource, 1,
      0, BGL_FLAG_THREADING_NONE | BGL_FLAG_PRECISION_DOUBLE, nullptr);
  ASSERT_GE(inst, 0);

  const std::string marker = "survives-reset-5521";
  Journal::instance().append(JournalKind::kCpuFallback, 0, inst, 0, -1, marker);
  const std::uint64_t before = Journal::instance().totalAppended();

  ASSERT_EQ(bglResetStatistics(inst), BGL_SUCCESS);

  // Reset re-baselines metrics; the flight recorder must keep its history.
  EXPECT_EQ(Journal::instance().totalAppended(), before);
  bool found = false;
  for (const auto& r : fetchAll()) {
    if (marker == r.message) found = true;
  }
  EXPECT_TRUE(found) << "bglResetStatistics cleared the journal";

  BglStatistics stats{};
  ASSERT_EQ(bglGetStatistics(inst, &stats), BGL_SUCCESS);
  EXPECT_EQ(stats.partialsOperations, 0u);
  EXPECT_EQ(bglFinalizeInstance(inst), BGL_SUCCESS);
}

// The seqlock contract under contention: many threads appending at once,
// with enough records to wrap the ring several times, must never produce a
// torn record — every field of every retained record is internally
// consistent with the thread/iteration that wrote it. Run under TSan this
// also proves the ring is race-free, not merely "usually fine".
TEST(ObsJournal, ConcurrentWritersProduceNoTornRecords) {
  Journal& journal = Journal::instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;  // 3200 appends: > 3x ring capacity
  const std::uint64_t before = journal.totalAppended();

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        journal.append(JournalKind::kStreamError, /*code=*/1000 * t + i,
                       /*instance=*/i, /*resource=*/t, /*shard=*/t,
                       "torn-check t" + std::to_string(t) + " i" +
                           std::to_string(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  EXPECT_EQ(journal.totalAppended(),
            before + static_cast<std::uint64_t>(kThreads) * kPerThread);

  const auto records = journal.snapshot();
  ASSERT_FALSE(records.empty());
  int checked = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(records[i].sequence, records[i - 1].sequence);
    }
    const JournalRecord& r = records[i];
    int t = -1, it = -1;
    if (std::sscanf(r.message, "torn-check t%d i%d", &t, &it) != 2) continue;
    ++checked;
    // Every field must agree with the (thread, iteration) in the message —
    // any mix proves a torn read or a torn write.
    EXPECT_EQ(r.kind, JournalKind::kStreamError);
    EXPECT_EQ(r.code, 1000 * t + it);
    EXPECT_EQ(r.instance, it);
    EXPECT_EQ(r.resource, t);
    EXPECT_EQ(r.shard, t);
  }
  // The ring holds kCapacity slots and we appended far more than that, so
  // nearly everything retained should be ours (a handful of slots can be
  // skipped if the snapshot raced a straggling writer).
  EXPECT_GT(checked, static_cast<int>(Journal::kCapacity) / 2);
}

}  // namespace
}  // namespace bgl
