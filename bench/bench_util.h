// Shared output helpers for the reproduction benchmarks. Each bench binary
// regenerates one table or figure of the paper and prints the paper's
// reported values alongside for comparison (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bgl::bench {

inline void printHeader(const std::string& title, const std::string& paperRef) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paperRef.c_str());
  std::printf("=============================================================\n");
}

inline void printNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Geometric label for throughput columns.
inline std::string fmt(double v, int width = 9, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
  return buf;
}

}  // namespace bgl::bench
