// Partitioned and multi-device analyses.
//
// Part 1 (Section IV-F of the paper): a dataset with two subsets — a
// nucleotide partition and a codon partition — each evaluated by its own
// library instance, concurrently.
//
// Part 2 (the paper's conclusion / future work): a single large alignment
// split by site patterns across several hardware resources, one instance
// per device, with the shard log-likelihoods summing exactly to the
// single-instance value.
#include <cmath>
#include <cstdio>

#include "core/model.h"
#include "perfmodel/device_profiles.h"
#include "phylo/partition.h"
#include "phylo/seqsim.h"

int main() {
  using namespace bgl;

  Rng rng(77);
  phylo::Tree tree = phylo::Tree::random(10, rng, 0.1);

  // ---- Part 1: model-partitioned analysis ----
  const HKY85Model nucModel(2.0, {0.3, 0.25, 0.2, 0.25});
  const GY94CodonModel codonModel = GY94CodonModel::equalFrequencies(2.0, 0.4);
  const auto nucData = phylo::simulatePatterns(tree, nucModel, 3000, rng);
  const auto codonData = phylo::simulatePatterns(tree, codonModel, 400, rng);

  std::vector<phylo::PartitionSpec> specs(2);
  specs[0].data = nucData;
  specs[0].model = &nucModel;
  specs[0].options.categories = 4;
  specs[1].data = codonData;
  specs[1].model = &codonModel;
  specs[1].options.categories = 1;
  specs[1].options.useScaling = true;

  phylo::PartitionedLikelihood partitioned(tree, specs);
  std::printf("partitioned analysis: %d partitions\n",
              partitioned.partitionCount());
  std::printf("  partition 0 (nucleotide, %d patterns) on %s\n", nucData.patterns,
              partitioned.implName(0).c_str());
  std::printf("  partition 1 (codon, %d patterns) on %s\n", codonData.patterns,
              partitioned.implName(1).c_str());
  std::printf("  joint logL = %.4f\n\n", partitioned.logLikelihood(tree));

  // ---- Part 2: one alignment split across heterogeneous devices ----
  phylo::LikelihoodOptions base;
  base.categories = 4;
  std::vector<phylo::LikelihoodOptions> shards(3, base);
  shards[0].requirementFlags = BGL_FLAG_FRAMEWORK_CPU;
  shards[1].requirementFlags = BGL_FLAG_FRAMEWORK_CUDA;
  shards[1].resources = {perf::kQuadroP5000};
  shards[2].requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL;
  shards[2].resources = {perf::kRadeonR9Nano};

  phylo::TreeLikelihood whole(tree, nucModel, nucData, base);
  phylo::SplitLikelihood split(tree, nucModel, nucData, shards);

  std::printf("multi-device split of the nucleotide alignment:\n");
  for (int s = 0; s < split.shardCount(); ++s) {
    std::printf("  shard %d: %4d patterns on %s\n", s, split.shardPatterns(s),
                split.implName(s).c_str());
  }
  const double reference = whole.logLikelihood();
  const double combined = split.logLikelihood(tree);
  std::printf("  single instance logL = %.6f\n", reference);
  std::printf("  sum of shard logLs   = %.6f\n", combined);
  const bool match = std::abs(combined - reference) < std::abs(reference) * 1e-9;
  std::printf("  exact agreement: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
