# Empty dependencies file for bgl_harness.
# This may be replaced when dependencies are built.
