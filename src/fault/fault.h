// Deterministic fault injection for the simulated device runtimes.
//
// Hardened failure paths are only trustworthy if they are exercised, and
// real accelerator failures (lost contexts, exhausted device memory,
// failed transfers) cannot be scheduled in a unit test. This module makes
// them schedulable: a process-wide injector, configured from a spec
// string (bglSetFaultSpec or the BGL_FAULT environment variable), arms
// countdown triggers that the cudasim/clsim device runtimes consult on
// every kernel launch, memcpy, and device allocation. When a trigger
// fires, the runtime throws bgl::Error with a structured code, which the
// C API surfaces as BGL_ERROR_HARDWARE / BGL_ERROR_OUT_OF_MEMORY plus a
// thread-local message — exactly the path a real device failure would
// take.
//
// Spec grammar (comma-separated directives):
//   [framework:]kind:value
//     kind = launch | memcpy | alloc
//     framework = cuda | opencl | host  (optional; default: both device
//                                        runtimes — never the host site)
//   launch:N  — the Nth kernel launch after configuration fails (one-shot)
//   memcpy:N  — the Nth device copy (either direction) fails (one-shot)
//   alloc:B   — device allocations beyond a cumulative budget of B bytes
//               fail (persistent: once exhausted, every later allocation
//               fails too)
//   host:alloc:N — the Nth host-allocation checkpoint fails (one-shot,
//               event-counted rather than byte-budgeted). The serving
//               layer's instance pool consults this site before every
//               pooled instance creation — including grow-on-demand
//               reinits — so pool growth failure paths are
//               deterministically testable. `host` supports only `alloc`.
//
// Examples: "launch:2", "cuda:launch:1,opencl:memcpy:3", "alloc:1048576",
// "host:alloc:2".
//
// The disabled fast path is one relaxed atomic load; instrumented
// runtimes pay nothing when no spec is armed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bgl::fault {

/// What a directive intercepts.
enum class Kind { Launch, Memcpy, Alloc };

/// Snapshot of the injector's activity since the last configure().
struct Counters {
  std::uint64_t launches = 0;   ///< launch events observed
  std::uint64_t memcpys = 0;    ///< memcpy events observed
  std::uint64_t allocBytes = 0; ///< cumulative allocation bytes observed
  int fired = 0;                ///< directives that have fired
};

/// Process-wide deterministic fault injector.
class Injector {
 public:
  /// The singleton. First access reads BGL_FAULT from the environment.
  static Injector& instance();

  /// Arm the injector from a spec string (see grammar above). An empty
  /// string disarms. Counters restart from zero. Returns false and sets
  /// `*error` (when non-null) on a malformed spec, leaving the previous
  /// configuration in place.
  bool configure(const std::string& spec, std::string* error = nullptr);

  /// Disarm all directives.
  void disable();

  /// True when at least one directive is armed.
  bool enabled() const {
    return state_.load(std::memory_order_acquire) != nullptr;
  }

  /// Event hooks, called by the device runtimes. `framework` is the
  /// runtime's lowercase spec name ("cuda" / "opencl"). A hook throws
  /// bgl::Error (code kErrHardware, or kErrOutOfMemory for an exhausted
  /// allocation budget) when a matching directive fires; otherwise it
  /// returns normally.
  void onLaunch(const char* framework);
  void onMemcpy(const char* framework, std::size_t bytes);
  void onAlloc(const char* framework, std::size_t bytes);

  /// Host-allocation checkpoint (serving-layer instance pool). Counts
  /// events, not bytes: a `host:alloc:N` directive makes the Nth
  /// checkpoint after arming throw bgl::Error(kErrOutOfMemory). `what`
  /// names the allocation for the error message and journal record.
  void onHostAlloc(const char* what, std::size_t bytes);

  Counters counters() const;

 private:
  Injector();

  struct Directive {
    Kind kind = Kind::Launch;
    std::string framework;               ///< empty = any runtime
    long long value = 0;                 ///< N (events) or B (bytes)
    std::atomic<long long> remaining{0}; ///< countdown / budget left
    std::atomic<bool> fired{false};
  };

  struct State {
    std::vector<std::unique_ptr<Directive>> directives;
    std::atomic<std::uint64_t> launches{0};
    std::atomic<std::uint64_t> memcpys{0};
    std::atomic<std::uint64_t> allocBytes{0};
  };

  /// Armed configuration; null when disabled. Hooks read it lock-free.
  /// Superseded states are retired (kept alive, never reused) so a hook
  /// holding the old pointer across a concurrent reconfigure stays safe.
  std::atomic<State*> state_{nullptr};
  std::mutex configMutex_;                         ///< serializes configure()
  std::vector<std::unique_ptr<State>> retired_;    ///< all states ever armed
};

}  // namespace bgl::fault
