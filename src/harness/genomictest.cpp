#include "harness/genomictest.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "core/defs.h"
#include "core/gamma.h"
#include "core/model.h"
#include "core/rng.h"
#include "kernels/workload.h"
#include "phylo/seqsim.h"

namespace bgl::harness {
namespace {

using Clock = std::chrono::steady_clock;

double now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

/// Append the thread-local API error detail (when any) to `message`.
std::string withLastError(std::string message) {
  if (const char* detail = bglGetLastErrorMessage();
      detail != nullptr && *detail != '\0') {
    message += ": ";
    message += detail;
  }
  return message;
}

}  // namespace

double evaluationFlops(const ProblemSpec& spec) {
  return (spec.tips - 1) *
         kernels::partialsFlops(spec.patterns, spec.categories, spec.states);
}

int findResource(const std::string& nameFragment) {
  BglResourceList* list = bglGetResourceList();
  for (int i = 0; i < list->length; ++i) {
    if (std::string(list->list[i].name).find(nameFragment) != std::string::npos) {
      return i;
    }
  }
  return -1;
}

RunResult runThroughput(const ProblemSpec& spec) {
  if (spec.tips < 2) throw Error("runThroughput: need >= 2 tips");

  const int matPool = std::min(2 * (spec.tips - 1), 32);

  // Prefer one buffer per internal node (balanced-topology evaluation);
  // fall back to a bounded rotating pool when that would not fit memory.
  const std::size_t realBytes = spec.singlePrecision ? 4 : 8;
  const double bufferBytes = static_cast<double>(spec.categories) * spec.patterns *
                             spec.states * realBytes;
  int pool = spec.tips - 1;
  if (!spec.balancedTopology || bufferBytes * (pool + 1) > 3.0e9) {
    pool = std::max(2, std::min(spec.internalBufferPool, spec.tips - 1));
  }

  // Refuse problem sizes that cannot fit in this machine's memory.
  if (bufferBytes * (pool + 1) > 4.0e9) {
    throw Error("runThroughput: problem would need >4 GB of partials buffers");
  }

  const long precisionFlag =
      spec.singlePrecision ? BGL_FLAG_PRECISION_SINGLE : BGL_FLAG_PRECISION_DOUBLE;

  BglInstanceDetails details{};
  const int resource = spec.resource;
  const int instance = bglCreateInstance(
      spec.tips, pool, spec.tips, spec.states, spec.patterns,
      /*eigenBufferCount=*/1, matPool, spec.categories, /*scaleBufferCount=*/0,
      &resource, 1, spec.preferenceFlags,
      spec.requirementFlags | precisionFlag, &details);
  if (instance < 0) {
    throw Error(withLastError("runThroughput: no implementation (code " +
                              std::to_string(instance) + ")"),
                instance);
  }

  RunResult result;
  result.implName = details.implName;
  result.resourceName = details.resourceName;

  try {
    if (!spec.traceFile.empty()) bglSetTraceFile(instance, spec.traceFile.c_str());
    if (!spec.statsFile.empty()) bglSetStatsFile(instance, spec.statsFile.c_str());
    if (spec.threadCount > 0) bglSetThreadCount(instance, spec.threadCount);
    if (spec.workGroupSize > 0) bglSetWorkGroupSize(instance, spec.workGroupSize);

    // Model + data setup (untimed, as in genomictest).
    Rng rng(spec.seed);
    const auto model = defaultModelForStates(spec.states, spec.seed);
    const auto es = model->eigenSystem();
    int rc = bglSetEigenDecomposition(instance, 0, es.evec.data(), es.ivec.data(),
                                      es.eval.data());
    if (rc != BGL_SUCCESS) throw Error(withLastError("setEigenDecomposition failed"), rc);
    bglSetStateFrequencies(instance, 0, model->frequencies().data());
    const std::vector<double> weights(spec.categories, 1.0 / spec.categories);
    bglSetCategoryWeights(instance, 0, weights.data());
    const auto rates = spec.categories > 1
                           ? discreteGammaRates(0.5, spec.categories)
                           : std::vector<double>{1.0};
    bglSetCategoryRates(instance, rates.data());
    const std::vector<double> patternWeights(spec.patterns, 1.0);
    bglSetPatternWeights(instance, patternWeights.data());

    const auto tipData =
        phylo::randomStates(spec.tips, spec.patterns, spec.states, rng);
    std::vector<int> tipBuf(spec.patterns);
    for (int t = 0; t < spec.tips; ++t) {
      std::memcpy(tipBuf.data(), tipData.data() + static_cast<std::size_t>(t) * spec.patterns,
                  sizeof(int) * spec.patterns);
      rc = bglSetTipStates(instance, t, tipBuf.data());
      if (rc != BGL_SUCCESS) throw Error(withLastError("setTipStates failed"), rc);
    }

    std::vector<int> matrixIndices(matPool);
    std::vector<double> edgeLengths(matPool);
    for (int m = 0; m < matPool; ++m) {
      matrixIndices[m] = m;
      edgeLengths[m] = rng.uniform(0.01, 0.5);
    }
    rc = bglUpdateTransitionMatrices(instance, 0, matrixIndices.data(), nullptr,
                                     nullptr, edgeLengths.data(), matPool);
    if (rc != BGL_SUCCESS) throw Error(withLastError("updateTransitionMatrices failed"), rc);

    // Evaluation topology. When memory permits, a balanced reduction over
    // the tips (pairwise joins level by level): this is what a random tree
    // evaluation looks like and gives the futures implementation its
    // topology-independent operations. Otherwise fall back to a
    // caterpillar chain whose destinations rotate through a bounded buffer
    // pool (same FLOPs, no independent operations).
    std::vector<BglOperation> ops;
    ops.reserve(spec.tips - 1);
    int rootBuffer;
    if (pool >= spec.tips - 1) {
      std::vector<int> level(spec.tips);
      for (int t = 0; t < spec.tips; ++t) level[t] = t;
      int nextInternal = spec.tips;
      int opIndex = 0;
      while (level.size() > 1) {
        std::vector<int> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          BglOperation op;
          op.destinationPartials = nextInternal;
          op.destinationScaleWrite = BGL_OP_NONE;
          op.destinationScaleRead = BGL_OP_NONE;
          op.child1Partials = level[i];
          op.child1TransitionMatrix = (2 * opIndex) % matPool;
          op.child2Partials = level[i + 1];
          op.child2TransitionMatrix = (2 * opIndex + 1) % matPool;
          ops.push_back(op);
          next.push_back(nextInternal);
          ++nextInternal;
          ++opIndex;
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
      }
      rootBuffer = level[0];
    } else {
      for (int i = 0; i < spec.tips - 1; ++i) {
        BglOperation op;
        op.destinationPartials = spec.tips + (i % pool);
        op.destinationScaleWrite = BGL_OP_NONE;
        op.destinationScaleRead = BGL_OP_NONE;
        op.child1Partials = (i == 0) ? 0 : spec.tips + ((i - 1) % pool);
        op.child1TransitionMatrix = (2 * i) % matPool;
        op.child2Partials = (i == 0) ? 1 : i + 1;
        op.child2TransitionMatrix = (2 * i + 1) % matPool;
        ops.push_back(op);
      }
      rootBuffer = spec.tips + ((spec.tips - 2) % pool);
    }

    for (int w = 0; w < spec.warmupReps; ++w) {
      rc = bglUpdatePartials(instance, ops.data(), static_cast<int>(ops.size()),
                             BGL_OP_NONE);
      if (rc != BGL_SUCCESS) throw Error(withLastError("updatePartials failed"), rc);
    }
    bglWaitForComputation(instance);

    // Best-of-reps timing: the minimum over repetitions rejects scheduler
    // noise (this host shares cores with other tenants).
    const bool hasTimeline = bglResetTimeline(instance) == BGL_SUCCESS;
    double bestSeconds = 1e300;
    double bestWall = 1e300;
    for (int r = 0; r < spec.reps; ++r) {
      if (hasTimeline) bglResetTimeline(instance);
      const double t0 = now();
      rc = bglUpdatePartials(instance, ops.data(), static_cast<int>(ops.size()),
                             BGL_OP_NONE);
      if (rc != BGL_SUCCESS) throw Error(withLastError("updatePartials failed"), rc);
      bglWaitForComputation(instance);
      const double wall = now() - t0;
      bestWall = std::min(bestWall, wall);
      double repSeconds = wall;
      if (hasTimeline) {
        BglTimeline timeline{};
        bglGetTimeline(instance, &timeline);
        repSeconds = timeline.modeledSeconds;
        result.modeled = timeline.modeledSeconds != timeline.measuredSeconds;
      }
      bestSeconds = std::min(bestSeconds, repSeconds);
    }

    result.measuredSeconds = bestWall;
    result.seconds = bestSeconds;
    result.flops = evaluationFlops(spec);
    result.gflops = result.flops / result.seconds / 1e9;

    // Untimed root evaluation: validates the pipeline end to end.
    const int zero = 0;
    rc = bglCalculateRootLogLikelihoods(instance, &rootBuffer, &zero, &zero, nullptr,
                                        1, &result.logL);
    if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
      throw Error(withLastError("calculateRootLogLikelihoods failed"), rc);
    }
  } catch (...) {
    bglFinalizeInstance(instance);
    throw;
  }
  bglFinalizeInstance(instance);
  return result;
}

PipelinedRunResult runPipelinedThroughput(const ProblemSpec& spec, int rounds) {
  if (spec.tips < 2) throw Error("runPipelinedThroughput: need >= 2 tips");
  if (rounds < 1) throw Error("runPipelinedThroughput: need >= 1 round");

  // Two disjoint matrix-pool halves: round r derives into half r % 2, so
  // deriving round r+1's matrices never writes a buffer round r reads.
  const int halfPool = std::min(2 * (spec.tips - 1), 16);
  const int matPool = 2 * halfPool;

  const std::size_t realBytes = spec.singlePrecision ? 4 : 8;
  const double bufferBytes = static_cast<double>(spec.categories) * spec.patterns *
                             spec.states * realBytes;
  int pool = spec.tips - 1;
  if (!spec.balancedTopology || bufferBytes * (pool + 1) > 3.0e9) {
    pool = std::max(2, std::min(spec.internalBufferPool, spec.tips - 1));
  }
  if (bufferBytes * (pool + 1) > 4.0e9) {
    throw Error("runPipelinedThroughput: problem would need >4 GB of partials buffers");
  }

  const long precisionFlag =
      spec.singlePrecision ? BGL_FLAG_PRECISION_SINGLE : BGL_FLAG_PRECISION_DOUBLE;

  BglInstanceDetails details{};
  const int resource = spec.resource;
  const int instance = bglCreateInstance(
      spec.tips, pool, spec.tips, spec.states, spec.patterns,
      /*eigenBufferCount=*/1, matPool, spec.categories, /*scaleBufferCount=*/0,
      &resource, 1, spec.preferenceFlags,
      spec.requirementFlags | precisionFlag, &details);
  if (instance < 0) {
    throw Error(withLastError("runPipelinedThroughput: no implementation (code " +
                              std::to_string(instance) + ")"),
                instance);
  }

  PipelinedRunResult result;
  result.implName = details.implName;
  result.resourceName = details.resourceName;

  try {
    if (!spec.traceFile.empty()) bglSetTraceFile(instance, spec.traceFile.c_str());
    if (!spec.statsFile.empty()) bglSetStatsFile(instance, spec.statsFile.c_str());
    if (spec.threadCount > 0) bglSetThreadCount(instance, spec.threadCount);
    if (spec.workGroupSize > 0) bglSetWorkGroupSize(instance, spec.workGroupSize);

    Rng rng(spec.seed);
    const auto model = defaultModelForStates(spec.states, spec.seed);
    const auto es = model->eigenSystem();
    int rc = bglSetEigenDecomposition(instance, 0, es.evec.data(), es.ivec.data(),
                                      es.eval.data());
    if (rc != BGL_SUCCESS) throw Error(withLastError("setEigenDecomposition failed"), rc);
    bglSetStateFrequencies(instance, 0, model->frequencies().data());
    const std::vector<double> weights(spec.categories, 1.0 / spec.categories);
    bglSetCategoryWeights(instance, 0, weights.data());
    const auto rates = spec.categories > 1
                           ? discreteGammaRates(0.5, spec.categories)
                           : std::vector<double>{1.0};
    bglSetCategoryRates(instance, rates.data());
    const std::vector<double> patternWeights(spec.patterns, 1.0);
    bglSetPatternWeights(instance, patternWeights.data());

    const auto tipData =
        phylo::randomStates(spec.tips, spec.patterns, spec.states, rng);
    std::vector<int> tipBuf(spec.patterns);
    for (int t = 0; t < spec.tips; ++t) {
      std::memcpy(tipBuf.data(), tipData.data() + static_cast<std::size_t>(t) * spec.patterns,
                  sizeof(int) * spec.patterns);
      rc = bglSetTipStates(instance, t, tipBuf.data());
      if (rc != BGL_SUCCESS) throw Error(withLastError("setTipStates failed"), rc);
    }

    // Base branch lengths; round r rescales them all, the way an optimizer
    // iteration re-derives every matrix from a new length proposal.
    std::vector<double> baseLengths(halfPool);
    for (int m = 0; m < halfPool; ++m) baseLengths[m] = rng.uniform(0.01, 0.5);

    // Evaluation topology, matrix indices kept within [0, halfPool): the
    // same balanced reduction / bounded chain as runThroughput.
    std::vector<BglOperation> ops;
    ops.reserve(spec.tips - 1);
    int rootBuffer;
    if (pool >= spec.tips - 1) {
      std::vector<int> level(spec.tips);
      for (int t = 0; t < spec.tips; ++t) level[t] = t;
      int nextInternal = spec.tips;
      int opIndex = 0;
      while (level.size() > 1) {
        std::vector<int> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          BglOperation op;
          op.destinationPartials = nextInternal;
          op.destinationScaleWrite = BGL_OP_NONE;
          op.destinationScaleRead = BGL_OP_NONE;
          op.child1Partials = level[i];
          op.child1TransitionMatrix = (2 * opIndex) % halfPool;
          op.child2Partials = level[i + 1];
          op.child2TransitionMatrix = (2 * opIndex + 1) % halfPool;
          ops.push_back(op);
          next.push_back(nextInternal);
          ++nextInternal;
          ++opIndex;
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
      }
      rootBuffer = level[0];
    } else {
      for (int i = 0; i < spec.tips - 1; ++i) {
        BglOperation op;
        op.destinationPartials = spec.tips + (i % pool);
        op.destinationScaleWrite = BGL_OP_NONE;
        op.destinationScaleRead = BGL_OP_NONE;
        op.child1Partials = (i == 0) ? 0 : spec.tips + ((i - 1) % pool);
        op.child1TransitionMatrix = (2 * i) % halfPool;
        op.child2Partials = (i == 0) ? 1 : i + 1;
        op.child2TransitionMatrix = (2 * i + 1) % halfPool;
        ops.push_back(op);
      }
      rootBuffer = spec.tips + ((spec.tips - 2) % pool);
    }

    // Per-parity operation lists: half h shifts matrix indices by h*halfPool.
    std::vector<BglOperation> opsByParity[2];
    for (int h = 0; h < 2; ++h) {
      opsByParity[h] = ops;
      for (auto& op : opsByParity[h]) {
        op.child1TransitionMatrix += h * halfPool;
        op.child2TransitionMatrix += h * halfPool;
      }
    }

    std::vector<int> roundIndices(halfPool);
    std::vector<double> roundLengths(halfPool);
    const auto deriveMatrices = [&](int round) {
      const int base = (round % 2) * halfPool;
      const double scale = 1.0 + 0.05 * round;
      for (int m = 0; m < halfPool; ++m) {
        roundIndices[m] = base + m;
        roundLengths[m] = baseLengths[m] * scale;
      }
      const int rc2 = bglUpdateTransitionMatrices(instance, 0, roundIndices.data(),
                                                  nullptr, nullptr,
                                                  roundLengths.data(), halfPool);
      if (rc2 != BGL_SUCCESS) {
        throw Error(withLastError("updateTransitionMatrices failed"), rc2);
      }
    };

    result.roundLogL.assign(static_cast<std::size_t>(rounds), 0.0);
    const int zero = 0;
    const auto runSequence = [&]() {
      // Round cadence: matrices for round r+1 are derived while round r's
      // partials are still in flight (a pipelined instance overlaps them on
      // separate streams; everyone else just runs them in this order).
      deriveMatrices(0);
      for (int r = 0; r < rounds; ++r) {
        const auto& roundOps = opsByParity[r % 2];
        int rc2 = bglUpdatePartials(instance, roundOps.data(),
                                    static_cast<int>(roundOps.size()), BGL_OP_NONE);
        if (rc2 != BGL_SUCCESS) throw Error(withLastError("updatePartials failed"), rc2);
        if (r + 1 < rounds) deriveMatrices(r + 1);
        rc2 = bglCalculateRootLogLikelihoods(instance, &rootBuffer, &zero, &zero,
                                             nullptr, 1, &result.roundLogL[r]);
        if (rc2 != BGL_SUCCESS && rc2 != BGL_ERROR_FLOATING_POINT) {
          throw Error(withLastError("calculateRootLogLikelihoods failed"), rc2);
        }
      }
      bglWaitForComputation(instance);
    };

    for (int w = 0; w < spec.warmupReps; ++w) runSequence();

    const bool hasTimeline = bglResetTimeline(instance) == BGL_SUCCESS;
    double bestSeconds = 1e300;
    double bestWall = 1e300;
    for (int r = 0; r < spec.reps; ++r) {
      if (hasTimeline) bglResetTimeline(instance);
      const double t0 = now();
      runSequence();
      const double wall = now() - t0;
      bestWall = std::min(bestWall, wall);
      double repSeconds = wall;
      if (hasTimeline) {
        BglTimeline timeline{};
        bglGetTimeline(instance, &timeline);
        repSeconds = timeline.modeledSeconds;
        result.modeled = timeline.modeledSeconds != timeline.measuredSeconds;
      }
      bestSeconds = std::min(bestSeconds, repSeconds);
    }

    result.measuredSeconds = bestWall;
    result.seconds = bestSeconds;
    result.flops = evaluationFlops(spec) * rounds;
    result.gflops = result.flops / result.seconds / 1e9;
  } catch (...) {
    bglFinalizeInstance(instance);
    throw;
  }
  bglFinalizeInstance(instance);
  return result;
}

SplitRunResult runSplitThroughput(const ProblemSpec& spec,
                                  const std::vector<phylo::LikelihoodOptions>& shardOptions,
                                  const phylo::SplitOptions& split) {
  if (spec.tips < 2) throw Error("runSplitThroughput: need >= 2 tips");
  if (shardOptions.empty()) throw Error("runSplitThroughput: no shards");

  Rng rng(spec.seed);
  const auto model = defaultModelForStates(spec.states, spec.seed);
  const phylo::Tree tree = phylo::Tree::random(spec.tips, rng);

  // Uniform random states with unit weights: the genomictest dataset shape
  // (pattern content does not affect kernel cost).
  PatternSet data;
  data.taxa = spec.tips;
  data.patterns = spec.patterns;
  data.states = phylo::randomStates(spec.tips, spec.patterns, spec.states, rng);
  data.weights.assign(static_cast<std::size_t>(spec.patterns), 1.0);
  data.originalSites = spec.patterns;

  phylo::SplitLikelihood like(tree, *model, data, shardOptions, split);

  SplitRunResult result;
  for (int w = 0; w < spec.warmupReps; ++w) result.logL = like.logLikelihood(tree);

  double best = 1e300;
  for (int r = 0; r < spec.reps; ++r) {
    const double t0 = now();
    result.logL = like.logLikelihood(tree);
    best = std::min(best, now() - t0);
  }

  result.seconds = best;
  result.gflops = evaluationFlops(spec) / best / 1e9;
  result.rebalances = like.rebalanceCount();
  result.failovers = like.failoverCount();
  result.cpuFallback = like.usedCpuFallback();
  result.quarantined = like.quarantinedShards();
  result.shardPatterns = like.shardPatternCounts();
  result.implNames.reserve(static_cast<std::size_t>(like.shardCount()));
  result.shardErrors.reserve(static_cast<std::size_t>(like.shardCount()));
  for (int s = 0; s < like.shardCount(); ++s) {
    result.implNames.push_back(like.implName(s));
    result.shardErrors.push_back(like.shardError(s));
  }

  if (spec.validateSplitReference) {
    // Serial host-CPU single-instance reference over the same (tree, model,
    // data). When a single shard survived a failover it holds every pattern
    // in original index order, so the split result must match bitwise.
    phylo::LikelihoodOptions ref = shardOptions.front();
    ref.resources = {0};
    ref.preferenceFlags = 0;
    ref.requirementFlags =
        BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE |
        (spec.singlePrecision ? BGL_FLAG_PRECISION_SINGLE
                              : BGL_FLAG_PRECISION_DOUBLE);
    ref.traceFile.clear();
    ref.statsFile.clear();
    phylo::TreeLikelihood reference(tree, *model, data, ref);
    result.referenceLogL = reference.logLikelihood(tree);
    result.referenceComputed = true;
    result.referenceExact = result.logL == result.referenceLogL;
  }
  return result;
}

PartitionedRunResult runPartitionedThroughput(const ProblemSpec& spec, int partitions,
                                              const phylo::PartitionOptions& options,
                                              bool validateReference) {
  if (spec.tips < 3) throw Error("runPartitionedThroughput: need >= 3 tips");
  if (partitions < 1) throw Error("runPartitionedThroughput: need >= 1 partition");
  if (spec.patterns < partitions) {
    throw Error("runPartitionedThroughput: need >= 1 pattern per partition");
  }

  Rng rng(spec.seed);
  const phylo::Tree tree = phylo::Tree::random(spec.tips, rng);
  const long precisionFlag =
      spec.singlePrecision ? BGL_FLAG_PRECISION_SINGLE : BGL_FLAG_PRECISION_DOUBLE;

  // One synthetic gene per partition: its own substitution model (distinct
  // parameter seed) over its own slice of the pattern budget, all sharing
  // the one tree — the phylogenomic dataset shape of a partitioned analysis.
  std::vector<std::unique_ptr<SubstitutionModel>> models;
  models.reserve(static_cast<std::size_t>(partitions));
  std::vector<phylo::PartitionSpec> specs(static_cast<std::size_t>(partitions));
  for (int q = 0; q < partitions; ++q) {
    const int begin = static_cast<int>(
        static_cast<long long>(q) * spec.patterns / partitions);
    const int end = static_cast<int>(
        static_cast<long long>(q + 1) * spec.patterns / partitions);
    const int patterns = end - begin;
    auto& part = specs[static_cast<std::size_t>(q)];
    part.data.taxa = spec.tips;
    part.data.patterns = patterns;
    part.data.states =
        phylo::randomStates(spec.tips, patterns, spec.states, rng);
    part.data.weights.assign(static_cast<std::size_t>(patterns), 1.0);
    part.data.originalSites = patterns;
    models.push_back(defaultModelForStates(spec.states, spec.seed + q));
    part.model = models.back().get();
    part.options.categories = spec.categories;
    part.options.resources = {spec.resource};
    part.options.preferenceFlags = spec.preferenceFlags;
    part.options.requirementFlags = spec.requirementFlags | precisionFlag;
  }

  phylo::PartitionedLikelihood like(tree, specs, options);

  PartitionedRunResult result;
  result.partitions = partitions;
  for (int w = 0; w < spec.warmupReps; ++w) result.logL = like.logLikelihood(tree);

  double bestSeconds = 1e300;
  double bestWall = 1e300;
  for (int r = 0; r < spec.reps; ++r) {
    const double t0 = now();
    result.logL = like.logLikelihood(tree);
    const double wall = now() - t0;
    bestWall = std::min(bestWall, wall);
    // lastModeledSeconds() sums per-instance device time (roofline-modeled
    // on simulated profiles) — the honest time base when instances run
    // concurrently on distinct (or shared simulated) devices.
    const double modeled = like.lastModeledSeconds();
    bestSeconds = std::min(bestSeconds, modeled > 0.0 ? modeled : wall);
  }

  result.seconds = bestSeconds;
  result.measuredSeconds = bestWall;
  for (int q = 0; q < partitions; ++q) {
    result.flops += (spec.tips - 1) *
                    kernels::partialsFlops(specs[static_cast<std::size_t>(q)].data.patterns,
                                           spec.categories, spec.states);
  }
  result.gflops = result.flops / result.seconds / 1e9;
  result.partitionLogL = like.partitionLogLikelihoods();
  result.instances = like.instanceCount();
  result.peakConcurrency = like.peakConcurrency();
  result.kernelLaunches = like.lastKernelLaunches();
  result.failovers = like.failoverCount();
  result.rebalances = like.rebalanceCount();
  result.implNames.reserve(static_cast<std::size_t>(partitions));
  for (int q = 0; q < partitions; ++q) result.implNames.push_back(like.implName(q));

  if (validateReference) {
    // Per-instance reference: one single-partition instance per slice with
    // the SAME options (resource, flags) the partitions used. Concatenating
    // partitions onto one pattern axis must not change any partition's log
    // likelihood, so the comparison is bitwise — within one implementation
    // family, not across families (cross-family agreement is only ~1e-9).
    result.referenceComputed = true;
    result.referenceExact = true;
    for (int q = 0; q < partitions; ++q) {
      const auto& part = specs[static_cast<std::size_t>(q)];
      phylo::TreeLikelihood reference(tree, *part.model, part.data, part.options);
      const double refLogL = reference.logLikelihood(tree);
      result.referenceLogL += refLogL;
      if (refLogL != result.partitionLogL[static_cast<std::size_t>(q)]) {
        result.referenceExact = false;
      }
    }
  }
  return result;
}

}  // namespace bgl::harness
