file(REMOVE_RECURSE
  "libbgl_cudasim.a"
)
