// Google-benchmark microbenchmarks of the innermost compute kernels,
// independent of the API layer: scalar vs SSE vs AVX partials, shared
// GPU-style vs x86-style kernel functions, and the transition-matrix
// kernel. Useful for regression-tracking the kernels themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/aligned.h"
#include "cpu/cpu_kernels.h"
#include "cpu/simd_kernels.h"
#include "hal/hal.h"
#include "kernels/kernels.h"

namespace {

using namespace bgl;

struct PartialsFixture {
  int patterns;
  int categories = 4;
  int states;
  AlignedVector<double> dest, p1, p2, m1, m2;

  PartialsFixture(int patterns, int states) : patterns(patterns), states(states) {
    const std::size_t psz =
        static_cast<std::size_t>(categories) * patterns * states;
    const std::size_t msz =
        static_cast<std::size_t>(categories) * states * states;
    dest.assign(psz, 0.0);
    p1.assign(psz, 0.25);
    p2.assign(psz, 0.5);
    m1.assign(msz, 1.0 / states);
    m2.assign(msz, 1.0 / states);
  }
};

void BM_PartialsScalar4(benchmark::State& state) {
  PartialsFixture f(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    cpu::partialsPartialsScalar<double>(f.dest.data(), f.p1.data(), f.m1.data(),
                                        f.p2.data(), f.m2.data(), f.patterns,
                                        f.categories, 4, 0, f.patterns);
    benchmark::DoNotOptimize(f.dest.data());
  }
  state.SetItemsProcessed(state.iterations() * f.patterns * f.categories);
}
BENCHMARK(BM_PartialsScalar4)->Arg(1024)->Arg(8192);

void BM_PartialsSse4(benchmark::State& state) {
  if (!cpu::cpuSupportsSse2()) {
    state.SkipWithError("SSE2 unavailable");
    return;
  }
  PartialsFixture f(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    cpu::partialsPartials4Sse(f.dest.data(), f.p1.data(), f.m1.data(), f.p2.data(),
                              f.m2.data(), f.patterns, f.categories, 0, f.patterns);
    benchmark::DoNotOptimize(f.dest.data());
  }
  state.SetItemsProcessed(state.iterations() * f.patterns * f.categories);
}
BENCHMARK(BM_PartialsSse4)->Arg(1024)->Arg(8192);

void BM_PartialsAvx4(benchmark::State& state) {
  if (!cpu::cpuSupportsAvx2Fma()) {
    state.SkipWithError("AVX2+FMA unavailable");
    return;
  }
  PartialsFixture f(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    cpu::partialsPartials4Avx(f.dest.data(), f.p1.data(), f.m1.data(), f.p2.data(),
                              f.m2.data(), f.patterns, f.categories, 0, f.patterns);
    benchmark::DoNotOptimize(f.dest.data());
  }
  state.SetItemsProcessed(state.iterations() * f.patterns * f.categories);
}
BENCHMARK(BM_PartialsAvx4)->Arg(1024)->Arg(8192);

void BM_PartialsScalarCodon(benchmark::State& state) {
  PartialsFixture f(static_cast<int>(state.range(0)), 61);
  for (auto _ : state) {
    cpu::partialsPartialsScalar<double>(f.dest.data(), f.p1.data(), f.m1.data(),
                                        f.p2.data(), f.m2.data(), f.patterns,
                                        f.categories, 61, 0, f.patterns);
    benchmark::DoNotOptimize(f.dest.data());
  }
  state.SetItemsProcessed(state.iterations() * f.patterns * f.categories);
}
BENCHMARK(BM_PartialsScalarCodon)->Arg(256)->Arg(1024);

void runSharedKernel(benchmark::State& state, hal::KernelVariant variant,
                     int patterns) {
  PartialsFixture f(patterns, 4);
  hal::KernelSpec spec;
  spec.id = hal::KernelId::PartialsPartials;
  spec.states = 4;
  spec.variant = variant;
  const hal::KernelFn fn = kernels::lookupKernel(spec);

  const int ppg = variant == hal::KernelVariant::X86Style ? 256 : 64;
  const int patternBlocks = (patterns + ppg - 1) / ppg;
  hal::KernelArgs args;
  args.buffers[0] = f.dest.data();
  args.buffers[1] = f.p1.data();
  args.buffers[2] = f.m1.data();
  args.buffers[3] = f.p2.data();
  args.buffers[4] = f.m2.data();
  args.ints[0] = patterns;
  args.ints[1] = f.categories;
  args.ints[2] = 4;
  args.ints[3] = ppg;

  // GPU-style groups stage matrices plus a 2 x ppg x states partials block.
  std::vector<std::byte> localMem(kernels::gpuStyleLocalMemBytes(4, false) +
                                  2ull * ppg * 4 * sizeof(double));
  hal::WorkGroupCtx ctx;
  ctx.localMem = localMem.data();
  ctx.localMemBytes = localMem.size();
  ctx.numGroups = patternBlocks * f.categories;

  for (auto _ : state) {
    for (int g = 0; g < ctx.numGroups; ++g) {
      ctx.groupId = g;
      fn(ctx, args);
    }
    benchmark::DoNotOptimize(f.dest.data());
  }
  state.SetItemsProcessed(state.iterations() * patterns * f.categories);
}

void BM_SharedKernelGpuStyle(benchmark::State& state) {
  runSharedKernel(state, hal::KernelVariant::GpuStyle,
                  static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SharedKernelGpuStyle)->Arg(8192);

void BM_SharedKernelX86Style(benchmark::State& state) {
  runSharedKernel(state, hal::KernelVariant::X86Style,
                  static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SharedKernelX86Style)->Arg(8192);

void BM_TransitionMatrixKernel(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  const int categories = 4;
  AlignedVector<double> dest(static_cast<std::size_t>(categories) * s * s);
  AlignedVector<double> cijk(static_cast<std::size_t>(s) * s * s, 0.01);
  AlignedVector<double> eval(s, -1.0);
  AlignedVector<double> rates(categories, 1.0);

  hal::KernelSpec spec;
  spec.id = hal::KernelId::TransitionMatrices;
  spec.states = s;
  const hal::KernelFn fn = kernels::lookupKernel(spec);

  hal::KernelArgs args;
  args.buffers[0] = dest.data();
  args.buffers[1] = cijk.data();
  args.buffers[2] = eval.data();
  args.buffers[3] = rates.data();
  args.ints[0] = categories;
  args.ints[1] = s;
  args.reals[0] = 0.1;

  hal::WorkGroupCtx ctx;
  ctx.numGroups = categories;
  for (auto _ : state) {
    for (int g = 0; g < categories; ++g) {
      ctx.groupId = g;
      fn(ctx, args);
    }
    benchmark::DoNotOptimize(dest.data());
  }
}
BENCHMARK(BM_TransitionMatrixKernel)->Arg(4)->Arg(20)->Arg(61);

}  // namespace

BENCHMARK_MAIN();
