// Substitution models: reversible CTMCs over nucleotide, amino-acid and
// codon state spaces. A model yields a normalized rate matrix Q (mean rate
// of 1 substitution per unit time at stationarity) plus stationary
// frequencies; decomposeReversible() turns that into the EigenSystem the
// library consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/defs.h"
#include "core/eigen.h"

namespace bgl {

/// Abstract reversible substitution model.
class SubstitutionModel {
 public:
  virtual ~SubstitutionModel() = default;

  virtual int states() const = 0;
  virtual std::string name() const = 0;

  /// Stationary frequencies (length states()).
  const std::vector<double>& frequencies() const { return freqs_; }

  /// Normalized rate matrix, row-major states() x states(); rows sum to 0,
  /// and -sum_i pi_i * Q_ii == 1.
  std::vector<double> rateMatrix() const;

  /// Eigendecomposition of the normalized rate matrix.
  EigenSystem eigenSystem() const;

 protected:
  /// Symmetric exchangeabilities r_ij (i<j flattened, or full matrix hook).
  /// Default rateMatrix() builds Q_ij = r_ij * pi_j from this.
  virtual double exchangeability(int i, int j) const = 0;

  std::vector<double> freqs_;
};

/// Jukes-Cantor 1969: equal frequencies, equal exchangeabilities.
class JC69Model final : public SubstitutionModel {
 public:
  JC69Model();
  int states() const override { return kNucleotideStates; }
  std::string name() const override { return "JC69"; }

 protected:
  double exchangeability(int, int) const override { return 1.0; }
};

/// Hasegawa-Kishino-Yano 1985: transition/transversion ratio kappa plus
/// arbitrary base frequencies. K80 is the equal-frequency special case.
class HKY85Model final : public SubstitutionModel {
 public:
  HKY85Model(double kappa, const std::vector<double>& frequencies);
  int states() const override { return kNucleotideStates; }
  std::string name() const override { return "HKY85"; }
  double kappa() const { return kappa_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  double kappa_;
};

/// Kimura 1980 two-parameter model: HKY85 with equal base frequencies.
class K80Model final : public SubstitutionModel {
 public:
  explicit K80Model(double kappa);
  int states() const override { return kNucleotideStates; }
  std::string name() const override { return "K80"; }
  double kappa() const { return kappa_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  double kappa_;
};

/// Tamura-Nei 1993: distinct purine (A<->G) and pyrimidine (C<->T)
/// transition rates plus arbitrary base frequencies.
class TN93Model final : public SubstitutionModel {
 public:
  TN93Model(double kappaR, double kappaY, const std::vector<double>& frequencies);
  int states() const override { return kNucleotideStates; }
  std::string name() const override { return "TN93"; }
  double kappaR() const { return kappaR_; }
  double kappaY() const { return kappaY_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  double kappaR_;  // A<->G
  double kappaY_;  // C<->T
};

/// General time-reversible nucleotide model: six exchangeabilities in the
/// order AC, AG, AT, CG, CT, GT with nucleotide order A,C,G,T.
class GTRModel final : public SubstitutionModel {
 public:
  GTRModel(const std::vector<double>& rates, const std::vector<double>& frequencies);
  int states() const override { return kNucleotideStates; }
  std::string name() const override { return "GTR"; }
  const std::vector<double>& rates() const { return rates_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  std::vector<double> rates_;  // upper triangle, 6 values
};

/// Amino-acid model with explicit 20x20 exchangeabilities. `poisson()`
/// gives the flat (Felsenstein-81-like) model; `random(seed)` produces a
/// reproducible synthetic empirical-style matrix for benchmarking (we do
/// not embed WAG/LG numeric tables; see DESIGN.md).
class AminoAcidModel final : public SubstitutionModel {
 public:
  AminoAcidModel(std::vector<double> exchangeabilities,
                 const std::vector<double>& frequencies);
  static AminoAcidModel poisson();
  static AminoAcidModel random(std::uint64_t seed);

  int states() const override { return kAminoAcidStates; }
  std::string name() const override { return "AminoAcid"; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  std::vector<double> exch_;  // full 20x20 row-major symmetric
};

/// Goldman-Yang 1994 codon model over 61 sense codons: kappa scales
/// transitions, omega scales nonsynonymous changes, multi-nucleotide
/// changes are disallowed.
class GY94CodonModel final : public SubstitutionModel {
 public:
  GY94CodonModel(double kappa, double omega, const std::vector<double>& codonFrequencies);
  /// Equal sense-codon frequencies convenience constructor.
  static GY94CodonModel equalFrequencies(double kappa, double omega);

  int states() const override { return kCodonStates; }
  std::string name() const override { return "GY94"; }
  double kappa() const { return kappa_; }
  double omega() const { return omega_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  double kappa_;
  double omega_;
};

/// Codon equilibrium frequencies from nucleotide composition.
/// F1x4: pi(codon) ~ prod of one shared nucleotide distribution;
/// F3x4: position-specific nucleotide distributions (nucleotide order
/// A,C,G,T; `nucFreqs` is 4 values for F1x4 or 12 (3 positions x 4) for
/// F3x4). Stop codons are excluded and the result renormalized.
std::vector<double> codonFrequenciesF1x4(const std::vector<double>& nucFreqs);
std::vector<double> codonFrequenciesF3x4(const std::vector<double>& nucFreqs);

/// Empirical nucleotide composition of coding sequence data, position
/// aware (12 values, for F3x4). `codonStates` are sense-codon indices;
/// negative codes are skipped.
std::vector<double> positionalNucleotideFrequencies(
    const std::vector<int>& codonStates);

/// Muse-Gaut 1994 codon model: like GY94 but the target-codon factor is
/// the frequency of the *replaced nucleotide* rather than of the whole
/// codon (rates are proportional to pi_nucleotide, not pi_codon).
class MG94CodonModel final : public SubstitutionModel {
 public:
  MG94CodonModel(double kappa, double omega, const std::vector<double>& nucFreqs);
  int states() const override { return kCodonStates; }
  std::string name() const override { return "MG94"; }
  double kappa() const { return kappa_; }
  double omega() const { return omega_; }

 protected:
  double exchangeability(int i, int j) const override;

 private:
  double kappa_;
  double omega_;
  std::vector<double> nucFreqs_;  // A,C,G,T
};

/// Parse a PAML-format empirical amino-acid rate file: 190 lower-triangle
/// exchangeabilities followed by 20 frequencies (whitespace separated,
/// `*`-to-end-of-line comments allowed). This is the distribution format
/// of WAG/LG/JTT matrices.
AminoAcidModel aminoAcidModelFromPamlText(const std::string& text);

/// Factory: build the default benchmarking model for a state count
/// (4 -> HKY85, 20 -> random amino, 61 -> GY94), as genomictest does with
/// synthetic parameters.
std::unique_ptr<SubstitutionModel> defaultModelForStates(int states,
                                                         std::uint64_t seed = 42);

}  // namespace bgl
