// C API surface of the serving layer (bglPool* / bglSession*). Lives in
// the serve library for the same reason sched_c_api.cpp lives in sched:
// the serving layer drives instance creation through the public C API, so
// bgl_api must not link back into it.
#include <new>
#include <string>

#include "api/bgl.h"
#include "api/last_error.h"
#include "core/defs.h"
#include "serve/service.h"

namespace {

/// Map an Error's embedded code to a BglReturnCode (mirrors the clamp in
/// c_api.cpp: unknown codes degrade to BGL_ERROR_GENERAL).
int returnCodeFor(const bgl::Error& error) {
  const int code = error.code();
  return (code <= BGL_SUCCESS && code >= BGL_ERROR_REJECTED) ? code
                                                             : BGL_ERROR_GENERAL;
}

/// Run a serving-layer entry point, translating exceptions into return
/// codes with bglGetLastErrorMessage detail.
template <typename F>
int guarded(F&& fn) {
  bgl::api::clearThreadLastError();
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    bgl::api::setThreadLastError("allocation failed");
    return BGL_ERROR_OUT_OF_MEMORY;
  } catch (const bgl::Error& e) {
    bgl::api::setThreadLastError(e.what());
    return returnCodeFor(e);
  } catch (const std::exception& e) {
    bgl::api::setThreadLastError(e.what());
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  } catch (...) {
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  }
}

}  // namespace

extern "C" {

int bglPoolConfigure(const BglPoolConfig* config) {
  return guarded([&] {
    if (config == nullptr) {
      bgl::serve::Service::instance().configureDefaults();
      return BGL_SUCCESS;
    }
    bgl::serve::AdmissionConfig admission;
    if (config->maxSessions > 0) admission.maxSessions = config->maxSessions;
    if (config->maxSessionsPerTenant > 0) {
      admission.maxSessionsPerTenant = config->maxSessionsPerTenant;
    }
    if (config->maxPendingDepth > 0) {
      admission.maxPendingDepth = config->maxPendingDepth;
    }
    if (config->maxEstimatedLoad > 0.0) {
      admission.maxEstimatedLoad = config->maxEstimatedLoad;
    }
    const int idleEvictMs =
        config->idleEvictMs > 0 ? config->idleEvictMs : 30000;
    bgl::serve::Service::instance().configure(admission, idleEvictMs);
    return BGL_SUCCESS;
  });
}

int bglPoolGetStatistics(BglPoolStatistics* outStatistics) {
  if (outStatistics == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return guarded([&] {
    const bgl::serve::ServiceStats stats =
        bgl::serve::Service::instance().stats();
    *outStatistics = BglPoolStatistics{};
    outStatistics->liveSessions = stats.liveSessions;
    outStatistics->pooledInstances = stats.pooledInstances;
    outStatistics->freeInstances = stats.freeInstances;
    outStatistics->admitted = stats.admission.admitted;
    outStatistics->rejectedQuota = stats.admission.rejectedQuota;
    outStatistics->rejectedBackpressure = stats.admission.rejectedBackpressure;
    outStatistics->rejectedLoad = stats.admission.rejectedLoad;
    outStatistics->instancesCreated = stats.pool.created;
    outStatistics->instancesRecycled = stats.pool.recycled;
    outStatistics->reinitGrows = stats.pool.grows;
    outStatistics->evictions = stats.pool.evictions;
    outStatistics->estimatedLoadSeconds = stats.estimatedLoadSeconds;
    return BGL_SUCCESS;
  });
}

int bglPoolTrim(int idleMs) {
  return guarded([&] {
    return bgl::serve::InstancePool::instance().trim(idleMs < 0 ? 0 : idleMs);
  });
}

int bglSessionOpen(const char* tenant, int stateCount, int patternCount,
                   int categoryCount, int resource, long preferenceFlags,
                   long requirementFlags) {
  return guarded([&] {
    return bgl::serve::Service::instance().open(
        tenant == nullptr ? "" : tenant, stateCount, patternCount,
        categoryCount, resource, preferenceFlags, requirementFlags);
  });
}

int bglSessionClose(int session) {
  return guarded([&] {
    bgl::serve::Service::instance().close(session);
    return BGL_SUCCESS;
  });
}

int bglSessionSetModel(int session, const double* inEigenVectors,
                       const double* inInverseEigenVectors,
                       const double* inEigenValues, const double* inFrequencies,
                       const double* inCategoryWeights,
                       const double* inCategoryRates,
                       const double* inPatternWeights) {
  return guarded([&] {
    bgl::serve::Service::instance().withSession(
        session, [&](bgl::serve::Session& s) {
          s.setModel(inEigenVectors, inInverseEigenVectors, inEigenValues,
                     inFrequencies, inCategoryWeights, inCategoryRates,
                     inPatternWeights);
          return 0;
        });
    return BGL_SUCCESS;
  });
}

int bglSessionAddTaxon(int session, const int* inStates, int attachNode,
                       double distalLength, double pendantLength) {
  return guarded([&] {
    return bgl::serve::Service::instance().withSession(
        session, [&](bgl::serve::Session& s) {
          return s.addTaxon(inStates, attachNode, distalLength, pendantLength);
        });
  });
}

int bglSessionSetBranch(int session, int node, double length) {
  return guarded([&] {
    bgl::serve::Service::instance().withSession(
        session, [&](bgl::serve::Session& s) {
          s.setBranch(node, length);
          return 0;
        });
    return BGL_SUCCESS;
  });
}

int bglSessionLogLikelihood(int session, double* outLogLikelihood) {
  if (outLogLikelihood == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return guarded([&] {
    *outLogLikelihood = bgl::serve::Service::instance().withSession(
        session, [](bgl::serve::Session& s) { return s.logLikelihood(); });
    return BGL_SUCCESS;
  });
}

int bglSessionFullLogLikelihood(int session, double* outLogLikelihood) {
  if (outLogLikelihood == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return guarded([&] {
    *outLogLikelihood = bgl::serve::Service::instance().withSession(
        session, [](bgl::serve::Session& s) { return s.fullLogLikelihood(); });
    return BGL_SUCCESS;
  });
}

int bglSessionGetDetails(int session, BglSessionDetails* outDetails) {
  if (outDetails == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return guarded([&] {
    // The implName pointer must outlive the session lock; a thread-local
    // copy matches the documented lifetime ("valid until the session's
    // next library call").
    thread_local std::string implName;
    bgl::serve::Service::instance().withSession(
        session, [&](bgl::serve::Session& s) {
          outDetails->instance = s.instanceId();
          outDetails->taxa = s.taxa();
          outDetails->nodes = s.nodeCount();
          outDetails->root = s.root();
          outDetails->tipCapacity = s.tipCapacity();
          implName = s.implName();
          return 0;
        });
    outDetails->implName = implName.c_str();
    return BGL_SUCCESS;
  });
}

}  // extern "C"
