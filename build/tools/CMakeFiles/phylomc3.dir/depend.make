# Empty dependencies file for phylomc3.
# This may be replaced when dependencies are built.
