file(REMOVE_RECURSE
  "CMakeFiles/ml_branch_optimize.dir/ml_branch_optimize.cpp.o"
  "CMakeFiles/ml_branch_optimize.dir/ml_branch_optimize.cpp.o.d"
  "ml_branch_optimize"
  "ml_branch_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_branch_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
