// Maximum-likelihood tree search: a GARLI-class hill climber (the paper's
// Section III-A profiles GARLI to motivate the library). Alternates
// branch-length optimization sweeps with NNI topology moves, accepting
// improvements only; every likelihood evaluation goes through the library.
#pragma once

#include "core/model.h"
#include "core/patterns.h"
#include "core/rng.h"
#include "phylo/likelihood.h"
#include "phylo/tree.h"

namespace bgl::phylo {

struct MlSearchOptions {
  int maxRounds = 25;           ///< NNI improvement rounds
  int branchSweeps = 2;         ///< branch-optimization sweeps per round
  double branchStep = 1.3;      ///< multiplicative step of the line search
  unsigned seed = 1;
  LikelihoodOptions likelihood; ///< backend selection
};

struct MlSearchResult {
  Tree tree;
  double logL = 0.0;
  int nniAccepted = 0;
  int nniTried = 0;
  int rounds = 0;
  long evaluations = 0;
};

/// Hill-climb from `start`. Deterministic for a given seed.
MlSearchResult mlSearch(const Tree& start, const SubstitutionModel& model,
                        const PatternSet& data, const MlSearchOptions& options = {});

}  // namespace bgl::phylo
