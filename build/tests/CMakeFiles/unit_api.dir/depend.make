# Empty dependencies file for unit_api.
# This may be replaced when dependencies are built.
