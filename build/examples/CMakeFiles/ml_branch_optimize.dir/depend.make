# Empty dependencies file for ml_branch_optimize.
# This may be replaced when dependencies are built.
