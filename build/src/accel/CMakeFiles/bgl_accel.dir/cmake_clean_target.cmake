file(REMOVE_RECURSE
  "libbgl_accel.a"
)
