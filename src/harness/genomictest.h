// genomictest-equivalent workload harness (Section V-A).
//
// Generates random synthetic datasets of arbitrary size, runs the core
// partial-likelihoods computation repeatedly through the public API, and
// reports throughput as effective GFLOPS (p * c * s * (4s-1) FLOPs per
// operation), which is the measure used by every table and figure in the
// paper. On simulated device profiles the time base is the roofline-model
// timeline; on the host it is measured wall time.
#pragma once

#include <string>
#include <vector>

#include "api/bgl.h"
#include "phylo/partition.h"

namespace bgl::harness {

struct ProblemSpec {
  int tips = 16;
  int patterns = 10000;
  int states = 4;
  int categories = 4;
  bool singlePrecision = false;
  long preferenceFlags = 0;
  long requirementFlags = 0;
  int resource = 0;          ///< perf-registry resource id
  int reps = 3;              ///< full-traversal repetitions to time
  int warmupReps = 1;
  unsigned seed = 1234;
  int threadCount = 0;       ///< 0 = implementation default
  int workGroupSize = 0;     ///< 0 = implementation default (x86 kernels)
  /// Cap on concurrently live internal partials buffers when the balanced
  /// topology would not fit memory (or balancedTopology is off):
  /// operations then rotate through a bounded pool (same FLOPs, same
  /// kernel shapes, but a chain has no independent operations).
  int internalBufferPool = 8;
  /// Balanced pairwise-join topology (default; one buffer per internal
  /// node, gives the futures implementation concurrency). false forces the
  /// bounded-memory caterpillar chain.
  bool balancedTopology = true;
  /// Split runs only: also evaluate the same (tree, model, data) problem on
  /// one serial host-CPU instance and compare. Any pattern division
  /// preserves per-pattern weights and summation order within a shard, so
  /// the split log likelihood must be bit-identical whenever a single
  /// shard survives (failover/CPU-fallback acceptance check).
  bool validateSplitReference = false;
  std::string traceFile;     ///< non-empty: write a Chrome trace on finalize
  std::string statsFile;     ///< non-empty: write a stats JSON on finalize
};

struct RunResult {
  double seconds = 0.0;       ///< time base used for throughput
  double measuredSeconds = 0.0;
  double gflops = 0.0;
  double flops = 0.0;
  double logL = 0.0;
  bool modeled = false;       ///< true if `seconds` came from the perf model
  std::string implName;
  std::string resourceName;
};

/// Effective FLOPs of one full evaluation (tips-1 partials operations).
double evaluationFlops(const ProblemSpec& spec);

/// Run the throughput benchmark for one problem specification.
/// Throws bgl::Error if no implementation satisfies the spec.
RunResult runThroughput(const ProblemSpec& spec);

/// Resource id whose name contains `nameFragment` (case-sensitive), or -1.
int findResource(const std::string& nameFragment);

/// Result of a multi-round (pipelined-style) evaluation run.
struct PipelinedRunResult {
  double seconds = 0.0;       ///< best-of-reps time for all rounds
  double measuredSeconds = 0.0;
  double gflops = 0.0;
  double flops = 0.0;         ///< partials FLOPs summed over rounds
  bool modeled = false;       ///< true if `seconds` came from the perf model
  std::vector<double> roundLogL;  ///< per-round root log likelihoods
  std::string implName;
  std::string resourceName;
};

/// Run `rounds` full evaluations back to back, re-deriving every transition
/// matrix before each round from rescaled branch lengths — the call pattern
/// of an optimizer iterating over branch-length proposals. Rounds alternate
/// between two disjoint matrix-buffer halves, so an instance created with
/// BGL_FLAG_COMPUTATION_PIPELINE can derive round r+1's matrices on its
/// matrix stream while round r's partials drain on the compute stream. The
/// exact same call order is valid synchronously, so the per-round log
/// likelihoods must be bitwise identical across sync / async / pipelined
/// instances — that is the acceptance check pipelined mode has to pass.
PipelinedRunResult runPipelinedThroughput(const ProblemSpec& spec, int rounds);

/// Result of a multi-instance split-likelihood run.
struct SplitRunResult {
  double seconds = 0.0;    ///< best-of-reps wall time of one evaluation round
  double gflops = 0.0;     ///< evaluationFlops(spec) / seconds
  double logL = 0.0;       ///< full-alignment log likelihood (shard sum)
  int rebalances = 0;      ///< adaptive re-splits applied during the run
  int failovers = 0;       ///< shard failovers applied during the run
  bool cpuFallback = false;        ///< all-shards-failed CPU fallback engaged
  std::vector<int> quarantined;    ///< shards quarantined by failover
  std::vector<std::string> shardErrors;  ///< per-shard quarantine reasons ("")
  double referenceLogL = 0.0;      ///< serial host-CPU single-instance logL
  bool referenceComputed = false;  ///< true when validateSplitReference ran
  bool referenceExact = false;     ///< logL bitwise-equal to referenceLogL
  std::vector<int> shardPatterns;       ///< final per-shard pattern counts
  std::vector<std::string> implNames;   ///< final per-shard implementations
};

/// Split one synthetic genomictest-style problem across several instances
/// (one per entry of `shardOptions`) under the given split policy, and
/// time the combined evaluation. Warmup rounds run first, so Adaptive mode
/// can converge before the timed repetitions.
SplitRunResult runSplitThroughput(const ProblemSpec& spec,
                                  const std::vector<phylo::LikelihoodOptions>& shardOptions,
                                  const phylo::SplitOptions& split);

/// Result of a multi-partition (phylogenomic) evaluation run.
struct PartitionedRunResult {
  double seconds = 0.0;       ///< best-of-reps time base for throughput
  double measuredSeconds = 0.0;
  double gflops = 0.0;
  double flops = 0.0;         ///< partials FLOPs summed over partitions
  double logL = 0.0;          ///< sum of per-partition log likelihoods
  int partitions = 0;
  int instances = 0;          ///< library instances serving the partitions
  int peakConcurrency = 0;
  std::uint64_t kernelLaunches = 0;  ///< launches issued by the last round
  int failovers = 0;
  int rebalances = 0;
  std::vector<double> partitionLogL;    ///< per partition, original order
  std::vector<std::string> implNames;   ///< per partition
  double referenceLogL = 0.0;      ///< serial host-CPU per-instance logL sum
  bool referenceComputed = false;
  bool referenceExact = false;     ///< every partition bitwise-equal
};

/// Evaluate `partitions` synthetic gene partitions — each with its own
/// substitution model (distinct parameter seed) and its own slice of
/// `spec.patterns` — over one shared random tree. PartitionOptions picks
/// the layout: batched (one multi-partition instance per resource, the
/// fused level-order launch path) or the legacy one instance per
/// partition. When `validateReference` is set the per-partition log
/// likelihoods are checked bitwise against serial host-CPU single-
/// partition instances.
PartitionedRunResult runPartitionedThroughput(const ProblemSpec& spec, int partitions,
                                              const phylo::PartitionOptions& options,
                                              bool validateReference = false);

}  // namespace bgl::harness
