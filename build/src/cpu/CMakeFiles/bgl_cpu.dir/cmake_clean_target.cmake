file(REMOVE_RECURSE
  "libbgl_cpu.a"
)
