# Empty dependencies file for bench_table3_threading.
# This may be replaced when dependencies are built.
