// Partitioned and multi-device analyses.
//
// Section IV-F: "application programs running partitioned analyses can
// invoke multiple library instances, one for each data subset" — each
// partition gets its own model, its own instance, and (optionally) its own
// hardware resource; instance evaluations run concurrently.
//
// The paper's conclusion sketches the complementary feature: splitting a
// single data subset across multiple devices by site patterns, with one
// instance per device. SplitLikelihood implements that — and, through the
// scheduler (src/sched/), closes the loop the conclusion leaves open:
// shards can be sized proportionally to calibrated per-resource speeds,
// and rebalanced between evaluation rounds from observed per-shard times.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/patterns.h"
#include "phylo/likelihood.h"
#include "phylo/tree.h"
#include "sched/balancer.h"

namespace bgl::phylo {

/// One data subset of a partitioned analysis.
struct PartitionSpec {
  PatternSet data;
  const SubstitutionModel* model = nullptr;  ///< borrowed, must outlive
  LikelihoodOptions options;
};

/// Policy knobs for PartitionedLikelihood.
struct PartitionOptions {
  /// Batch partitions into ONE multi-partition instance per resource
  /// (bglSetPatternPartitions + the ByPartition calls): partitions of a
  /// compatible shape share a concatenated pattern axis, and the level
  /// batcher fuses all of their per-level work into the same grid
  /// launches — launch count stays O(tree depth), not O(depth x
  /// partitions). false: the legacy one-instance-per-partition layout.
  bool batched = true;
  /// Evaluate instances concurrently (per-resource groups when batched,
  /// per-partition instances otherwise).
  bool concurrent = true;
  /// Concurrency cap for the instance evaluations. 0 = the hardware
  /// concurrency of the host. Never more threads than instances.
  int maxConcurrency = 0;
  /// Batched mode: when an instance fails hard (device fault, exhausted
  /// memory, lost implementation), quarantine its resource and re-home
  /// its partitions onto the surviving resources, then retry the round.
  bool failover = true;
  /// Last resort when every resource is quarantined: one host-CPU
  /// instance carries all partitions.
  bool cpuFallback = true;
  /// Batched mode: feed observed per-resource round times to the EWMA
  /// balancer and re-home whole partitions across resources when the
  /// predicted imbalance persists.
  bool adaptive = false;
  double ewmaAlpha = 0.4;           ///< weight of the newest observation
  double imbalanceThreshold = 1.15; ///< max/min round-time ratio gate
  int settleRounds = 2;             ///< imbalanced rounds before re-homing
};

/// Multiple (model, data) subsets sharing one tree: the partitioned-
/// analysis pattern of Section IV-F, upgraded from one instance per
/// partition to one multi-partition instance per *resource*.
///
/// Batched mode groups partitions of compatible shape (resource, state
/// count, categories, scaling, flags) into one instance whose pattern
/// axis is the concatenation of the group's partitions. Each partition
/// keeps its own substitution model (per-partition eigen / frequency /
/// weight / rate slots), its own transition matrices (slot q*(2*tips-2) +
/// edge) and its own pattern range of the shared partials and scale
/// buffers. One evaluation issues one fused launch set per tree level for
/// ALL partitions and returns every per-partition log-likelihood in a
/// single readback.
class PartitionedLikelihood {
 public:
  PartitionedLikelihood(const Tree& tree, const std::vector<PartitionSpec>& specs,
                        bool concurrent = true);
  PartitionedLikelihood(const Tree& tree, const std::vector<PartitionSpec>& specs,
                        const PartitionOptions& options);
  ~PartitionedLikelihood();

  PartitionedLikelihood(const PartitionedLikelihood&) = delete;
  PartitionedLikelihood& operator=(const PartitionedLikelihood&) = delete;

  /// Sum of per-partition log likelihoods for `tree`.
  double logLikelihood(const Tree& tree);

  int partitionCount() const { return static_cast<int>(specs_.size()); }
  const std::string& implName(int partition) const;
  /// Per-partition log likelihoods from the last logLikelihood() call
  /// (original partition order).
  const std::vector<double>& partitionLogLikelihoods() const {
    return partitionLogL_;
  }
  /// Library instances currently serving the partitions (batched: one per
  /// resource group; legacy: one per partition).
  int instanceCount() const;
  /// Group index serving `partition` (batched mode; partition index in
  /// legacy mode).
  int groupOf(int partition) const;
  /// Highest number of instance evaluations that ran at the same time in
  /// any round so far (bounded by PartitionOptions::maxConcurrency).
  int peakConcurrency() const { return peakConcurrency_; }
  int failoverCount() const { return failovers_; }
  int rebalanceCount() const { return rebalances_; }
  bool usedCpuFallback() const { return cpuFallbackUsed_; }
  /// Per-instance seconds of the last round (modeled timeline when the
  /// implementation provides one, wall time otherwise), instance order.
  const std::vector<double>& lastInstanceSeconds() const {
    return lastInstanceSeconds_;
  }
  /// Sum of lastInstanceSeconds(): the device-time cost of the last round.
  double lastModeledSeconds() const;
  /// Kernel launches issued by the last round across all instances.
  std::uint64_t lastKernelLaunches() const { return lastKernelLaunches_; }

 private:
  struct Group {
    int resource = -1;
    int states = 0;
    int categories = 0;
    bool useScaling = false;
    long preferenceFlags = 0;
    long requirementFlags = 0;
    std::vector<int> members;  ///< partition indices, concatenation order
    int instance = -1;
    std::string implName;
    int patterns = 0;
    double seconds = 0.0;          ///< last round
    std::uint64_t launches = 0;    ///< last round
    int errorCode = 0;             ///< last round; 0 = succeeded
    std::string errorMessage;
  };

  void destroyGroups();
  void buildGroupInstance(Group& group);
  void buildGroupsWithFailover();
  bool tryBuildGroups();
  void quarantineResource(int resource, const std::string& reason, int code);
  void rehomeQuarantined();
  void rebuildBalancer();
  void evaluateGroup(Group& group, const Tree& tree);
  double evaluateLegacy(const Tree& tree);
  double evaluateBatched(const Tree& tree);
  void maybeRebalance();

  Tree tree_;
  std::vector<PartitionSpec> specs_;  ///< models borrowed, must outlive
  PartitionOptions options_;

  // Legacy one-instance-per-partition layout.
  std::vector<std::unique_ptr<TreeLikelihood>> parts_;

  // Batched per-resource layout. partitionResource_ is the single source
  // of truth; groups_ is derived from it on every (re)build.
  std::vector<Group> groups_;
  std::vector<int> partitionResource_;
  std::vector<int> partitionGroup_;
  std::vector<int> resourceIds_;        ///< distinct resources, stable order
  std::vector<char> resourceQuarantined_;
  std::unique_ptr<sched::LoadBalancer> balancer_;  ///< over active resources
  std::vector<int> balancerResources_;

  std::vector<double> partitionLogL_;
  std::vector<double> lastInstanceSeconds_;
  std::uint64_t lastKernelLaunches_ = 0;
  int peakConcurrency_ = 0;
  int failovers_ = 0;
  int rebalances_ = 0;
  bool cpuFallbackUsed_ = false;
  std::string lastFailure_;
  int lastFailureCode_ = 0;
};

/// Assign each partition a preferred resource using the scheduler's
/// throughput estimates: partitions are ranked by predicted evaluation
/// cost (sched::estimateEvaluationSeconds over patterns, states AND rate
/// categories — a short codon partition can far outweigh a long
/// nucleotide one) and the heaviest subsets get the fastest resources
/// (round-robin over the distinct resources when there are more
/// partitions than resources). `benchmark` false seeds speeds from the
/// perf model instead of calibrating.
void autoAssignResources(std::vector<PartitionSpec>& specs, bool benchmark = true);

/// How SplitLikelihood divides patterns across shards.
enum class SplitMode {
  Equal,         ///< equal shares regardless of shard speed
  Proportional,  ///< shares proportional to calibrated/model speeds
  Adaptive       ///< proportional, plus between-round rebalancing from
                 ///< observed per-shard times
};

/// Split policy derived from BGL_FLAG_LOADBALANCE_* bits (NONE -> Equal,
/// BENCHMARK/MODEL -> Proportional, ADAPTIVE -> Adaptive; default Equal).
SplitMode splitModeFromFlags(long flags);

/// Scheduling options for SplitLikelihood.
struct SplitOptions {
  SplitMode mode = SplitMode::Equal;
  /// Per-shard speed estimates (patterns/second). Empty under
  /// Proportional/Adaptive: the scheduler calibrates each shard's
  /// (resource, flags) combination instead.
  std::vector<double> speeds;
  bool benchmark = true;       ///< false: perf-model seeds, no calibration run
  double imbalanceThreshold = 1.15;  ///< predicted max/min round-time ratio
  double ewmaAlpha = 0.4;      ///< weight of newest per-shard observation
  int settleRounds = 2;        ///< imbalanced rounds required before a re-split
  int minPatternsPerShard = 1; ///< floor for non-degenerate shards
  unsigned calibrationSeed = 0;///< 0 = BGL_SCHED_SEED / default
  bool concurrent = true;      ///< evaluate shards concurrently
  /// Failover policy: when a shard's instance fails hard (device fault,
  /// exhausted memory, lost implementation), quarantine that shard,
  /// re-apportion its patterns across the surviving shards, and retry
  /// the evaluation round. false: the error propagates to the caller.
  bool failover = true;
  /// Last resort when every shard is quarantined: rebuild shard 0 as a
  /// plain host-CPU instance carrying the full alignment. false: an
  /// all-shards failure propagates instead.
  bool cpuFallback = true;
  /// Test hook: multiply shard i's observed seconds by debugSlowdown[i]
  /// before feeding the balancer (artificially skews a homogeneous setup).
  std::vector<double> debugSlowdown;
};

/// One alignment split across several resources by site patterns
/// (multi-device execution; the conclusion's planned extension). Any
/// division preserves per-pattern weights, so the shard log likelihoods
/// add up to exactly the single-instance value in every mode.
///
/// Failure handling (SplitOptions::failover): a shard whose instance
/// fails hard — BGL_ERROR_HARDWARE, _OUT_OF_MEMORY, _GENERAL,
/// _UNIDENTIFIED_EXCEPTION, _NO_RESOURCE or _NO_IMPLEMENTATION, at
/// construction or during an evaluation round — is quarantined: its
/// instance is destroyed, its patterns are re-apportioned across the
/// surviving shards (proportionally to the current speed estimates), the
/// adaptive balancer is rebuilt over the survivors, and the round is
/// retried. When every shard is quarantined, a host-CPU fallback instance
/// takes the whole alignment (SplitOptions::cpuFallback). Programming
/// errors (BGL_ERROR_OUT_OF_RANGE and friends) are never failed over;
/// they propagate. Every failover is recorded in the scheduler counters
/// (sched::counters().failovers / .quarantinedShards) and as a
/// `sched.failover` span on sched::recorder().
class SplitLikelihood {
 public:
  /// Equal round-robin split (the original static policy).
  /// `shardOptions[i]` selects the resource/implementation of shard i.
  SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                  const PatternSet& data,
                  const std::vector<LikelihoodOptions>& shardOptions,
                  bool concurrent = true);

  /// Scheduler-driven split. Shards may receive zero patterns (no instance
  /// is created for them); the model must outlive this object when
  /// rebalancing can occur (Adaptive mode rebuilds shard instances).
  SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                  const PatternSet& data,
                  const std::vector<LikelihoodOptions>& shardOptions,
                  const SplitOptions& split);

  double logLikelihood(const Tree& tree);

  int shardCount() const { return static_cast<int>(shards_.size()); }
  int shardPatterns(int shard) const { return shardPatterns_[shard]; }
  const std::vector<int>& shardPatternCounts() const { return shardPatterns_; }
  const std::string& implName(int shard) const;
  /// Observed seconds of shard `shard` in the last evaluation round
  /// (obs-layer timeline when available, wall time otherwise).
  double shardSeconds(int shard) const { return shardSeconds_[shard]; }
  /// Adaptive re-splits applied so far.
  int rebalanceCount() const { return rebalances_; }
  /// Failovers applied so far (each may quarantine several shards).
  int failoverCount() const { return failovers_; }
  /// Indices of shards currently quarantined by failover.
  std::vector<int> quarantinedShards() const;
  /// Error message that quarantined `shard` ("" when not quarantined).
  const std::string& shardError(int shard) const {
    return shardErrors_[static_cast<std::size_t>(shard)];
  }
  /// True once the all-shards-failed CPU fallback has been engaged.
  bool usedCpuFallback() const { return cpuFallbackUsed_; }
  /// Current per-shard speed estimates (patterns/second); empty unless
  /// Proportional/Adaptive.
  std::vector<double> shardSpeeds() const;

 private:
  void build(const Tree& tree, const std::vector<int>& shares);
  bool tryBuild(const Tree& tree, const std::vector<int>& shares);
  double evaluateShard(std::size_t shard, const Tree& tree);
  double evaluateRound(const Tree& tree);
  void quarantine(std::size_t shard, const std::string& reason, int code);
  std::vector<int> sharesAfterQuarantine();

  const SubstitutionModel* model_ = nullptr;  ///< borrowed, must outlive
  PatternSet data_;
  std::vector<LikelihoodOptions> shardOptions_;
  SplitOptions split_;
  std::vector<double> calibratedSpeeds_;  ///< empty under Equal
  std::unique_ptr<sched::LoadBalancer> balancer_;

  std::vector<std::unique_ptr<TreeLikelihood>> shards_;  ///< null = idle shard
  std::vector<int> shardPatterns_;
  std::vector<double> shardSeconds_;
  int rebalances_ = 0;

  // Failover state. `active_` lists the non-quarantined shard indices;
  // the balancer (when present) is always sized to `active_`, so
  // quarantined shards can never be handed work again.
  std::vector<char> quarantined_;
  std::vector<int> active_;
  std::vector<double> currentSpeeds_;   ///< full-size, observation-refreshed
  std::vector<std::string> shardErrors_;
  std::vector<int> roundErrorCode_;     ///< per-round: 0 = shard succeeded
  std::vector<std::string> roundErrorMessage_;
  std::string lastFailure_;
  int lastFailureCode_ = 0;
  int failovers_ = 0;
  bool cpuFallbackUsed_ = false;
};

/// Deal `data`'s patterns round-robin into `shards` subsets (weights kept).
std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards);

/// Divide `data`'s patterns into len(shares) subsets of the given sizes
/// (sum of shares must equal data.patterns; shares may be zero). Patterns
/// are dealt in index order, strided across the non-empty shards to keep
/// per-shard pattern composition statistically similar.
std::vector<PatternSet> splitPatternsByShares(const PatternSet& data,
                                              const std::vector<int>& shares);

}  // namespace bgl::phylo
