file(REMOVE_RECURSE
  "libbgl_api.a"
)
