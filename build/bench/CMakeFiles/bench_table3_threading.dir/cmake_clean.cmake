file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_threading.dir/bench_table3_threading.cpp.o"
  "CMakeFiles/bench_table3_threading.dir/bench_table3_threading.cpp.o.d"
  "bench_table3_threading"
  "bench_table3_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
