# Empty compiler generated dependencies file for bgl_accel.
# This may be replaced when dependencies are built.
