file(REMOVE_RECURSE
  "CMakeFiles/bgl_hal.dir/workgroup_executor.cpp.o"
  "CMakeFiles/bgl_hal.dir/workgroup_executor.cpp.o.d"
  "libbgl_hal.a"
  "libbgl_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
