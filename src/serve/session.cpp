#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "api/bgl.h"
#include "core/defs.h"
#include "sched/sched.h"

namespace bgl::serve {
namespace {

/// Append the thread-local API error detail (when any) to `message`.
std::string withLastError(std::string message) {
  if (const char* detail = bglGetLastErrorMessage();
      detail != nullptr && *detail != '\0') {
    message += ": ";
    message += detail;
  }
  return message;
}

void check(int rc, const char* what) {
  if (rc != BGL_SUCCESS) {
    throw Error(withLastError(std::string("serve: ") + what + " failed (code " +
                              std::to_string(rc) + ")"),
                rc);
  }
}

}  // namespace

Session::Session(std::string tenant, int states, int patterns, int categories,
                 int resource, long preferenceFlags, long requirementFlags)
    : tenant_(std::move(tenant)),
      states_(states),
      patterns_(patterns),
      categories_(categories),
      resource_(resource),
      preferenceFlags_(preferenceFlags),
      requirementFlags_(requirementFlags) {
  if (states_ < 2 || patterns_ < 1 || categories_ < 1) {
    throw Error("serve: session shape must have >= 2 states, >= 1 pattern "
                "and >= 1 category",
                kErrOutOfRange);
  }
  estimatedSeconds_ =
      sched::estimateEvaluationSeconds(resource_, patterns_, states_, categories_);
  if (estimatedSeconds_ < 0.0) {
    throw Error("serve: resource " + std::to_string(resource_) +
                    " is not in the resource registry",
                kErrOutOfRange);
  }
  lease_ = InstancePool::instance().acquire(resource_, states_, patterns_,
                                            categories_, preferenceFlags_,
                                            requirementFlags_, kMinTipCapacity);
}

Session::~Session() {
  if (lease_.valid()) InstancePool::instance().release(std::move(lease_));
}

void Session::setModel(const double* eigenVectors,
                       const double* inverseEigenVectors,
                       const double* eigenValues, const double* frequencies,
                       const double* categoryWeights,
                       const double* categoryRates,
                       const double* patternWeights) {
  if (eigenVectors == nullptr || inverseEigenVectors == nullptr ||
      eigenValues == nullptr || frequencies == nullptr ||
      categoryWeights == nullptr || categoryRates == nullptr) {
    throw Error("serve: setModel requires every parameter except "
                "patternWeights",
                kErrOutOfRange);
  }
  const std::size_t s = static_cast<std::size_t>(states_);
  const std::size_t c = static_cast<std::size_t>(categories_);
  model_.eigenVectors.assign(eigenVectors, eigenVectors + s * s);
  model_.inverseEigenVectors.assign(inverseEigenVectors,
                                    inverseEigenVectors + s * s);
  model_.eigenValues.assign(eigenValues, eigenValues + s);
  model_.frequencies.assign(frequencies, frequencies + s);
  model_.categoryWeights.assign(categoryWeights, categoryWeights + c);
  model_.categoryRates.assign(categoryRates, categoryRates + c);
  if (patternWeights != nullptr) {
    model_.patternWeights.assign(patternWeights,
                                 patternWeights + patterns_);
  } else {
    model_.patternWeights.assign(static_cast<std::size_t>(patterns_), 1.0);
  }
  modelSet_ = true;

  check(bglSetEigenDecomposition(lease_.instance, 0,
                                 model_.eigenVectors.data(),
                                 model_.inverseEigenVectors.data(),
                                 model_.eigenValues.data()),
        "setEigenDecomposition");
  check(bglSetStateFrequencies(lease_.instance, 0, model_.frequencies.data()),
        "setStateFrequencies");
  check(bglSetCategoryWeights(lease_.instance, 0,
                              model_.categoryWeights.data()),
        "setCategoryWeights");
  check(bglSetCategoryRates(lease_.instance, model_.categoryRates.data()),
        "setCategoryRates");
  check(bglSetPatternWeights(lease_.instance, model_.patternWeights.data()),
        "setPatternWeights");

  // A model swap invalidates every matrix and every internal buffer.
  markAllDirty();
}

int Session::newInternalNode() {
  Node node;
  node.isTip = false;
  node.dirtyPartials = true;
  // Internal partials buffers live above the tip slots of the current
  // lease; replayIntoLease() renumbers them after a grow.
  node.partialsBuffer = lease_.key.tipCapacity + nextInternal_++;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

void Session::markPathDirty(int node) {
  for (int n = node; n != -1; n = nodes_[static_cast<std::size_t>(n)].parent) {
    Node& ref = nodes_[static_cast<std::size_t>(n)];
    if (!ref.isTip) ref.dirtyPartials = true;
  }
}

void Session::markAllDirty() {
  for (Node& node : nodes_) {
    if (!node.isTip) node.dirtyPartials = true;
    if (node.matrixIndex >= 0) node.dirtyMatrix = true;
  }
}

void Session::ensureMatrix(int node) {
  Node& ref = nodes_[static_cast<std::size_t>(node)];
  if (ref.matrixIndex < 0) ref.matrixIndex = nextMatrix_++;
  ref.dirtyMatrix = true;
}

void Session::replayIntoLease() {
  // Internal partials buffers live above the tip slots, so their ids are
  // a function of the lease's tip capacity — renumber after every grow.
  const int base = lease_.key.tipCapacity;
  nextInternal_ = 0;
  for (Node& node : nodes_) {
    if (node.isTip) {
      node.partialsBuffer = node.tipIndex;
    } else {
      node.partialsBuffer = base + nextInternal_++;
    }
  }
  for (std::size_t t = 0; t < tipStates_.size(); ++t) {
    check(bglSetTipStates(lease_.instance, static_cast<int>(t),
                          tipStates_[t].data()),
          "setTipStates");
  }
  if (modelSet_) {
    check(bglSetEigenDecomposition(lease_.instance, 0,
                                   model_.eigenVectors.data(),
                                   model_.inverseEigenVectors.data(),
                                   model_.eigenValues.data()),
          "setEigenDecomposition");
    check(bglSetStateFrequencies(lease_.instance, 0,
                                 model_.frequencies.data()),
          "setStateFrequencies");
    check(bglSetCategoryWeights(lease_.instance, 0,
                                model_.categoryWeights.data()),
          "setCategoryWeights");
    check(bglSetCategoryRates(lease_.instance, model_.categoryRates.data()),
          "setCategoryRates");
    check(bglSetPatternWeights(lease_.instance, model_.patternWeights.data()),
          "setPatternWeights");
  }
  markAllDirty();
}

int Session::addTaxon(const int* tipStates, int attachNode, double distalLength,
                      double pendantLength) {
  if (tipStates == nullptr) {
    throw Error("serve: addTaxon requires tip state data", kErrOutOfRange);
  }
  const int taxon = taxa();
  if (taxon >= 2) {
    if (attachNode < 0 || attachNode >= nodeCount()) {
      throw Error("serve: attach node " + std::to_string(attachNode) +
                      " is not a live node id",
                  kErrOutOfRange);
    }
  }
  if (distalLength < 0.0 || pendantLength < 0.0) {
    throw Error("serve: branch lengths must be non-negative", kErrOutOfRange);
  }

  // Outgrowing the lease triggers the pool's grow-on-demand reinit (the
  // sts OnlineCalculator would throw "ran out of slots" here).
  if (taxon + 1 > lease_.key.tipCapacity) {
    Lease old = std::move(lease_);
    // A moved-from Lease keeps its instance id (int member); invalidate it
    // so a failed grow leaves this session lease-less instead of releasing
    // the already-finalized old instance back to the pool.
    lease_.instance = -1;
    lease_ = InstancePool::instance().grow(std::move(old), taxon + 1);
    replayIntoLease();
  }

  tipStates_.emplace_back(tipStates, tipStates + patterns_);
  check(bglSetTipStates(lease_.instance, taxon, tipStates_.back().data()),
        "setTipStates");

  Node tip;
  tip.isTip = true;
  tip.tipIndex = taxon;
  tip.partialsBuffer = taxon;
  nodes_.push_back(tip);
  const int tipNode = static_cast<int>(nodes_.size()) - 1;

  if (taxon == 0) {
    // A single-tip tree: no partials, no matrices, nothing to evaluate.
    root_ = tipNode;
    return tipNode;
  }

  if (taxon == 1) {
    // Second taxon: join both tips under a new root.
    const int join = newInternalNode();
    Node& j = nodes_[static_cast<std::size_t>(join)];
    j.child[0] = root_;
    j.child[1] = tipNode;
    nodes_[static_cast<std::size_t>(root_)].parent = join;
    nodes_[static_cast<std::size_t>(root_)].branch = distalLength;
    nodes_[static_cast<std::size_t>(tipNode)].parent = join;
    nodes_[static_cast<std::size_t>(tipNode)].branch = pendantLength;
    ensureMatrix(root_);
    ensureMatrix(tipNode);
    root_ = join;
    markPathDirty(join);
    return tipNode;
  }

  const int attach = attachNode;
  const int join = newInternalNode();
  Node& j = nodes_[static_cast<std::size_t>(join)];
  Node& a = nodes_[static_cast<std::size_t>(attach)];
  if (attach == root_) {
    // Grow a new root above the old one.
    j.child[0] = attach;
    j.child[1] = tipNode;
    a.parent = join;
    a.branch = distalLength;
    root_ = join;
  } else {
    // Split the edge above the attach node: the attach node keeps
    // `distalLength` below the new internal node, which inherits the
    // remainder of the original edge.
    const int parent = a.parent;
    Node& p = nodes_[static_cast<std::size_t>(parent)];
    const double original = a.branch;
    j.parent = parent;
    j.branch = std::max(original - distalLength, 0.0);
    j.child[0] = attach;
    j.child[1] = tipNode;
    (p.child[0] == attach ? p.child[0] : p.child[1]) = join;
    a.parent = join;
    a.branch = distalLength;
  }
  nodes_[static_cast<std::size_t>(tipNode)].parent = join;
  nodes_[static_cast<std::size_t>(tipNode)].branch = pendantLength;
  ensureMatrix(attach);
  ensureMatrix(tipNode);
  if (nodes_[static_cast<std::size_t>(join)].parent != -1) ensureMatrix(join);
  markPathDirty(join);
  return tipNode;
}

void Session::setBranch(int node, double length) {
  if (node < 0 || node >= nodeCount()) {
    throw Error("serve: node " + std::to_string(node) +
                    " is not a live node id",
                kErrOutOfRange);
  }
  if (length < 0.0) {
    throw Error("serve: branch lengths must be non-negative", kErrOutOfRange);
  }
  Node& ref = nodes_[static_cast<std::size_t>(node)];
  if (ref.parent == -1) {
    throw Error("serve: the root has no branch above it", kErrOutOfRange);
  }
  ref.branch = length;
  ref.dirtyMatrix = true;
  // The partials of every ancestor consume this matrix's output.
  markPathDirty(ref.parent);
}

double Session::evaluate() {
  if (taxa() < 2) {
    throw Error("serve: need at least two taxa to evaluate", kErrOutOfRange);
  }
  if (!modelSet_) {
    throw Error("serve: no model set (bglSessionSetModel)", kErrOutOfRange);
  }

  // One batched matrix update over every dirty edge.
  std::vector<int> matrixIndices;
  std::vector<double> edgeLengths;
  for (const Node& node : nodes_) {
    if (node.dirtyMatrix && node.matrixIndex >= 0) {
      matrixIndices.push_back(node.matrixIndex);
      edgeLengths.push_back(node.branch);
    }
  }
  if (!matrixIndices.empty()) {
    check(bglUpdateTransitionMatrices(lease_.instance, 0, matrixIndices.data(),
                                      nullptr, nullptr, edgeLengths.data(),
                                      static_cast<int>(matrixIndices.size())),
          "updateTransitionMatrices");
  }

  // Post-order emission of the dirty partials operations. Dirty sets are
  // upward-closed (every marking walks to the root), so a child's
  // operation always precedes its parent's in the batch and the level
  // batcher sees a well-ordered dependency chain.
  std::vector<BglOperation> ops;
  std::vector<int> stack = {root_};
  std::vector<int> postorder;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.isTip || !node.dirtyPartials) continue;
    postorder.push_back(n);
    stack.push_back(node.child[0]);
    stack.push_back(node.child[1]);
  }
  std::reverse(postorder.begin(), postorder.end());
  ops.reserve(postorder.size());
  for (const int n : postorder) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    const Node& c0 = nodes_[static_cast<std::size_t>(node.child[0])];
    const Node& c1 = nodes_[static_cast<std::size_t>(node.child[1])];
    BglOperation op;
    op.destinationPartials = node.partialsBuffer;
    op.destinationScaleWrite = BGL_OP_NONE;
    op.destinationScaleRead = BGL_OP_NONE;
    op.child1Partials = c0.partialsBuffer;
    op.child1TransitionMatrix = c0.matrixIndex;
    op.child2Partials = c1.partialsBuffer;
    op.child2TransitionMatrix = c1.matrixIndex;
    ops.push_back(op);
  }
  if (!ops.empty()) {
    check(bglUpdatePartials(lease_.instance, ops.data(),
                            static_cast<int>(ops.size()), BGL_OP_NONE),
          "updatePartials");
  }

  const int rootBuffer = nodes_[static_cast<std::size_t>(root_)].partialsBuffer;
  const int zero = 0;
  double logL = 0.0;
  const int rc = bglCalculateRootLogLikelihoods(lease_.instance, &rootBuffer,
                                                &zero, &zero, nullptr, 1,
                                                &logL);
  if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
    check(rc, "calculateRootLogLikelihoods");
  }

  for (Node& node : nodes_) {
    node.dirtyMatrix = false;
    node.dirtyPartials = false;
  }
  return logL;
}

double Session::logLikelihood() { return evaluate(); }

double Session::fullLogLikelihood() {
  markAllDirty();
  return evaluate();
}

}  // namespace bgl::serve
