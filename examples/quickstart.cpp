// Quickstart: compute the log-likelihood of a small fixed tree directly
// through the C API — the minimal end-to-end usage of the library.
//
//   tree:  ((human:0.1, chimp:0.12):0.05, gorilla:0.2);
//   model: HKY85, kappa = 2.0, 1 rate category
//   data:  5 alignment columns (already unique patterns)
//
// The client owns the tree: buffers 0..2 hold the three tips, buffer 3 the
// single internal node, buffer 4 the root; transition matrix i lives on
// the branch above node i.
#include <cstdio>
#include <vector>

#include "api/bgl.h"
#include "core/model.h"

int main() {
  std::printf("library version %s\n%s\n\n", bglGetVersion(), bglGetCitation());

  // Alignment columns (A=0, C=1, G=2, T=3): human, chimp, gorilla.
  const std::vector<int> human = {0, 1, 2, 3, 0};
  const std::vector<int> chimp = {0, 1, 2, 3, 1};
  const std::vector<int> gorilla = {0, 1, 1, 3, 0};
  const int patterns = 5;

  BglInstanceDetails details{};
  const int instance = bglCreateInstance(
      /*tips=*/3, /*partialsBuffers=*/2, /*compactBuffers=*/3, /*states=*/4,
      patterns, /*eigenBuffers=*/1, /*matrixBuffers=*/4, /*categories=*/1,
      /*scaleBuffers=*/0, /*resourceList=*/nullptr, 0, /*preferences=*/0,
      /*requirements=*/0, &details);
  if (instance < 0) {
    std::fprintf(stderr, "bglCreateInstance failed: %d\n", instance);
    return 1;
  }
  std::printf("instance on '%s' using implementation '%s'\n", details.resourceName,
              details.implName);

  bglSetTipStates(instance, 0, human.data());
  bglSetTipStates(instance, 1, chimp.data());
  bglSetTipStates(instance, 2, gorilla.data());

  // HKY85 eigendecomposition from the model library.
  const bgl::HKY85Model model(2.0, {0.3, 0.25, 0.2, 0.25});
  const auto es = model.eigenSystem();
  bglSetEigenDecomposition(instance, 0, es.evec.data(), es.ivec.data(),
                           es.eval.data());
  bglSetStateFrequencies(instance, 0, model.frequencies().data());
  const double weight = 1.0;
  const double rate = 1.0;
  bglSetCategoryWeights(instance, 0, &weight);
  bglSetCategoryRates(instance, &rate);
  const std::vector<double> patternWeights(patterns, 1.0);
  bglSetPatternWeights(instance, patternWeights.data());

  // Branch lengths: above tips 0,1,2 and internal node 3.
  const int matrixIndices[4] = {0, 1, 2, 3};
  const double lengths[4] = {0.1, 0.12, 0.2, 0.05};
  bglUpdateTransitionMatrices(instance, 0, matrixIndices, nullptr, nullptr, lengths,
                              4);

  // Post-order: node 3 = f(tip0, tip1); node 4 (root) = f(node 3, tip 2).
  BglOperation ops[2];
  ops[0] = {3, BGL_OP_NONE, BGL_OP_NONE, 0, 0, 1, 1};
  ops[1] = {4, BGL_OP_NONE, BGL_OP_NONE, 3, 3, 2, 2};
  bglUpdatePartials(instance, ops, 2, BGL_OP_NONE);

  const int root = 4, zero = 0;
  double logL = 0.0;
  bglCalculateRootLogLikelihoods(instance, &root, &zero, &zero, nullptr, 1, &logL);
  std::printf("log likelihood = %.6f\n", logL);

  std::vector<double> site(patterns);
  bglGetSiteLogLikelihoods(instance, site.data());
  for (int k = 0; k < patterns; ++k) {
    std::printf("  site %d: %.6f\n", k, site[k]);
  }

  bglFinalizeInstance(instance);
  return 0;
}
