// Process-wide flight recorder: a lock-free ring buffer of structured
// operational events (the "black box" a days-long analysis is reconstructed
// from after the fact).
//
// The journal records *why the system changed state*, not per-operation
// telemetry: errors surfaced through the C API, fault-injector firings,
// command-stream error latches, shard quarantines, failover re-apportioning,
// host-CPU fallbacks, adaptive rebalances and calibration fallbacks. It is
// always on, fixed-capacity (last kCapacity records survive, older ones are
// overwritten), and writable from any thread without taking a lock — an
// append from a device worker thread or a failing shard future never blocks
// behind a reader.
//
// Concurrency design (seqlock ring, TSan-clean by construction):
//   * every field of a slot is a std::atomic word, so concurrent access is
//     never a data race — torn *records* are instead detected and discarded
//     via a per-slot stamp;
//   * a writer claims a global sequence number with fetch_add, marks the
//     slot's stamp odd (2*seq+1), publishes the payload words with relaxed
//     stores behind a release fence, then marks the stamp complete
//     (2*seq+2, release);
//   * a reader loads the stamp (acquire), copies the payload words
//     (relaxed), issues an acquire fence, and re-reads the stamp: any
//     mismatch means a writer was mid-overwrite and the copy is discarded.
//
// The journal is deliberately NOT cleared by bglResetStatistics: reset
// re-baselines *metrics*, but a postmortem must still see what happened
// before the reset (see docs/OBSERVABILITY.md, "Reset semantics").
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bgl::obs {

/// What a journal record describes. Values are part of the C ABI
/// (BglJournalKind in api/bgl.h mirrors them; keep in lockstep).
enum class JournalKind : int {
  kError = 1,               ///< error surfaced through a C API entry point
  kFaultInjected = 2,       ///< deterministic fault-injector directive fired
  kStreamError = 3,         ///< async command stream latched a worker error
  kShardQuarantine = 4,     ///< split-likelihood shard taken out of service
  kReapportion = 5,         ///< surviving shards re-apportioned after failover
  kRetry = 6,               ///< shard set rebuilt and the evaluation retried
  kCpuFallback = 7,         ///< last-resort host-CPU fallback engaged
  kRebalance = 8,           ///< adaptive load balancer applied a re-split
  kCalibrationFallback = 9, ///< calibration run errored; perf-model seed used
  kAdmissionReject = 10,    ///< serving layer refused a session open
  kPoolEvict = 11,          ///< idle pooled instance finalized
  kPoolReinit = 12,         ///< pooled instance re-created larger (grow)
};
const char* journalKindName(JournalKind kind);

/// One decoded journal record. `message` is NUL-terminated (truncated to
/// fit); ids that do not apply are -1.
struct JournalRecord {
  static constexpr int kMessageBytes = 112;

  std::uint64_t sequence = 0;  ///< global append index (monotone, 0-based)
  std::uint64_t timeNs = 0;    ///< monotonic nanoseconds since journal start
  JournalKind kind = JournalKind::kError;
  int code = 0;                ///< BglReturnCode when error-like, else 0
  int instance = -1;           ///< C API instance id, -1 unknown/process-wide
  int resource = -1;           ///< resource id, -1 unknown
  int shard = -1;              ///< split-likelihood shard index, -1 n/a
  char message[kMessageBytes] = {};
};

/// The process-wide journal singleton.
class Journal {
 public:
  static constexpr std::size_t kCapacity = 1024;

  static Journal& instance();

  /// Append one record (lock-free, any thread). `message` is truncated to
  /// JournalRecord::kMessageBytes - 1 characters. No-op while the obs
  /// master switch (obs::setEnabled) is off.
  void append(JournalKind kind, int code, int instance, int resource, int shard,
              std::string_view message);

  /// Copy out the retained records, oldest first. Records a concurrent
  /// writer is mid-overwrite on are omitted (each is retried a few times
  /// first), so the result can briefly be shorter than expected — never
  /// torn.
  std::vector<JournalRecord> snapshot() const;

  /// Records ever appended (monotone; exceeds kCapacity once wrapped).
  std::uint64_t totalAppended() const {
    return next_.load(std::memory_order_acquire);
  }

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

 private:
  Journal();

  // Payload packed into whole 64-bit words so every slot byte is covered
  // by an atomic object (no mixed-size access, no non-atomic race).
  static constexpr std::size_t kHeaderWords = 5;  // sequence, timeNs, 3 id pairs
  static constexpr std::size_t kMessageWords = JournalRecord::kMessageBytes / 8;
  static constexpr std::size_t kPayloadWords = kHeaderWords + kMessageWords;

  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 = empty, odd = writing, even = done
    std::atomic<std::uint64_t> words[kPayloadWords] = {};
  };

  std::uint64_t nowNs() const;

  std::atomic<std::uint64_t> next_{0};
  std::int64_t epochNs_ = 0;
  Slot slots_[kCapacity];
};

}  // namespace bgl::obs
