// Behavioural tests for the CPU implementation family: dependency handling
// in the futures scheduler, the pattern-count threading threshold, thread
// count control, direct transition-matrix usage (no eigendecomposition),
// multi-subset root evaluation, and scale-factor arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "api/bglxx.h"
#include "harness/genomictest.h"
#include "phylo/likelihood.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

TEST(FuturesScheduler, DiamondDependenciesComputeCorrectly) {
  // Balanced trees give the futures implementation several operations per
  // level; the result must match the serial implementation exactly even
  // when operations race within a level.
  auto problem = test::makeNucleotideProblem(32, 700, 1234);
  phylo::LikelihoodOptions serial, futures;
  serial.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  futures.requirementFlags = BGL_FLAG_THREADING_FUTURES;
  phylo::TreeLikelihood a(problem.tree, *problem.model, problem.data, serial);
  phylo::TreeLikelihood b(problem.tree, *problem.model, problem.data, futures);
  for (int round = 0; round < 3; ++round) {
    // Re-evaluate repeatedly: scheduling differs between rounds.
    EXPECT_DOUBLE_EQ(a.logLikelihood(), b.logLikelihood());
  }
}

TEST(FuturesScheduler, ChainedOperationsRespectOrder) {
  // A caterpillar chain has strictly dependent operations: the futures
  // level analysis must serialize them (wrong ordering would corrupt
  // results deterministically).
  harness::ProblemSpec spec;
  spec.tips = 12;
  spec.patterns = 800;
  spec.requirementFlags = BGL_FLAG_THREADING_FUTURES;
  spec.balancedTopology = false;  // force the dependent chain
  spec.internalBufferPool = 3;
  const auto futures = harness::runThroughput(spec);

  spec.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  const auto serial = harness::runThroughput(spec);
  EXPECT_NEAR(futures.logL, serial.logL, std::abs(serial.logL) * 1e-12);
}

TEST(ThreadingThreshold, SmallProblemsUseSerialPathButStayCorrect) {
  // Below the 512-pattern threshold (Section VI-B) the threaded
  // implementations fall back to in-place execution.
  auto problem = test::makeNucleotideProblem(6, 160, 77);
  ASSERT_LT(problem.data.patterns, 512);
  phylo::LikelihoodOptions serial, pool, create;
  serial.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  pool.requirementFlags = BGL_FLAG_THREADING_THREAD_POOL | BGL_FLAG_VECTOR_NONE;
  create.requirementFlags = BGL_FLAG_THREADING_THREAD_CREATE;
  phylo::TreeLikelihood a(problem.tree, *problem.model, problem.data, serial);
  phylo::TreeLikelihood b(problem.tree, *problem.model, problem.data, pool);
  phylo::TreeLikelihood c(problem.tree, *problem.model, problem.data, create);
  EXPECT_DOUBLE_EQ(a.logLikelihood(), b.logLikelihood());
  EXPECT_DOUBLE_EQ(a.logLikelihood(), c.logLikelihood());
}

TEST(ThreadingThreshold, LargeProblemsSplitAcrossThreadsCorrectly) {
  Rng rng(5);
  auto tree = phylo::Tree::random(14, rng, 0.4);
  HKY85Model model(2.0, {0.25, 0.25, 0.25, 0.25});
  auto data = phylo::simulatePatterns(tree, model, 4000, rng);
  ASSERT_GT(data.patterns, 512);

  phylo::LikelihoodOptions serial, pool;
  serial.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  pool.requirementFlags = BGL_FLAG_THREADING_THREAD_POOL | BGL_FLAG_VECTOR_NONE;
  phylo::TreeLikelihood a(tree, model, data, serial);
  phylo::TreeLikelihood b(tree, model, data, pool);
  for (int threads : {1, 2, 3, 7}) {
    ASSERT_EQ(bglSetThreadCount(b.instance(), threads), BGL_SUCCESS);
    EXPECT_DOUBLE_EQ(a.logLikelihood(), b.logLikelihood()) << threads << " threads";
  }
}

TEST(DirectMatrices, LikelihoodWithoutEigendecomposition) {
  // Client programs may compute transition matrices themselves and push
  // them with bglSetTransitionMatrix: no eigen slot involvement.
  const JC69Model model;
  const auto es = model.eigenSystem();
  const int patterns = 4;
  bgl::xx::Instance inst(2, 1, 2, 4, patterns, 1, 2, 1, 0);
  inst.setTipStates(0, {0, 1, 2, 3});
  inst.setTipStates(1, {0, 1, 2, 0});
  inst.setStateFrequencies(0, model.frequencies());
  inst.setCategoryWeights(0, {1.0});
  inst.setCategoryRates({1.0});
  inst.setPatternWeights(std::vector<double>(patterns, 1.0));

  // Reference path: library computes P(t).
  inst.setEigenDecomposition(0, es.evec, es.ivec, es.eval);
  inst.updateTransitionMatrices(0, {0, 1}, {0.1, 0.2});
  inst.updatePartials({BglOperation{2, BGL_OP_NONE, BGL_OP_NONE, 0, 0, 1, 1}});
  const double viaEigen = inst.rootLogLikelihood(2);

  // Direct path: host-computed matrices.
  const auto p0 = transitionMatrix(es, 0.1);
  const auto p1 = transitionMatrix(es, 0.2);
  ASSERT_EQ(bglSetTransitionMatrix(inst.id(), 0, p0.data(), 1.0), BGL_SUCCESS);
  ASSERT_EQ(bglSetTransitionMatrix(inst.id(), 1, p1.data(), 1.0), BGL_SUCCESS);
  inst.updatePartials({BglOperation{2, BGL_OP_NONE, BGL_OP_NONE, 0, 0, 1, 1}});
  const double viaDirect = inst.rootLogLikelihood(2);
  EXPECT_NEAR(viaDirect, viaEigen, std::abs(viaEigen) * 1e-12);
}

class MultiSubsetRoot : public ::testing::TestWithParam<long> {};

TEST_P(MultiSubsetRoot, CountTwoSumsBothSubsets) {
  // calculateRootLogLikelihoods with count=2: two root buffers with
  // different frequency/weight slots; the result is the sum.
  auto problem = test::makeNucleotideProblem(4, 100, 3);
  const int resource = 0;
  phylo::LikelihoodOptions opts;
  opts.categories = 2;
  opts.requirementFlags = GetParam();
  opts.resources = {resource};
  phylo::TreeLikelihood like(problem.tree, *problem.model, problem.data, opts);
  const double single = like.logLikelihood();

  const int roots[2] = {like.tree().root(), like.tree().root()};
  const int zeros[2] = {0, 0};
  double combined = 0.0;
  ASSERT_EQ(bglCalculateRootLogLikelihoods(like.instance(), roots, zeros, zeros,
                                           nullptr, 2, &combined),
            BGL_SUCCESS);
  EXPECT_NEAR(combined, 2.0 * single, std::abs(single) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Implementations, MultiSubsetRoot,
                         ::testing::Values(BGL_FLAG_THREADING_NONE,
                                           BGL_FLAG_FRAMEWORK_CUDA,
                                           BGL_FLAG_FRAMEWORK_OPENCL));

class ScaleArithmetic : public ::testing::TestWithParam<long> {};

TEST_P(ScaleArithmetic, RemoveUndoesAccumulate) {
  // Drive real factors through rescaling operations, then verify
  // accumulate followed by remove restores the original cumulative buffer
  // (observable through the root log-likelihood).
  Rng rng(8);
  auto tree = phylo::Tree::random(8, rng, 0.3);
  HKY85Model model(2.0, {0.25, 0.25, 0.25, 0.25});
  auto data = phylo::simulatePatterns(tree, model, 150, rng);

  phylo::LikelihoodOptions opts;
  opts.useScaling = true;
  opts.requirementFlags = GetParam();
  opts.resources = {0};
  phylo::TreeLikelihood like(tree, model, data, opts);
  const double base = like.logLikelihood();

  // Accumulate node 0's factors a second time, then remove them: logL via
  // the cumulative index must return to its original value.
  const int cumIndex = tree.tipCount() - 1;
  const int nodeScale = 0;
  const int root = tree.root();
  const int zero = 0;
  double doubled = 0.0, restored = 0.0;
  ASSERT_EQ(bglAccumulateScaleFactors(like.instance(), &nodeScale, 1, cumIndex),
            BGL_SUCCESS);
  ASSERT_EQ(bglCalculateRootLogLikelihoods(like.instance(), &root, &zero, &zero,
                                           &cumIndex, 1, &doubled),
            BGL_SUCCESS);
  ASSERT_EQ(bglRemoveScaleFactors(like.instance(), &nodeScale, 1, cumIndex),
            BGL_SUCCESS);
  ASSERT_EQ(bglCalculateRootLogLikelihoods(like.instance(), &root, &zero, &zero,
                                           &cumIndex, 1, &restored),
            BGL_SUCCESS);
  EXPECT_NEAR(restored, base, std::abs(base) * 1e-10);
  // The doubled accumulation must actually have changed something (the
  // tree is long-branched enough that node 0's factors are non-zero).
  EXPECT_NE(doubled, base);
}

INSTANTIATE_TEST_SUITE_P(Implementations, ScaleArithmetic,
                         ::testing::Values(BGL_FLAG_THREADING_NONE,
                                           BGL_FLAG_FRAMEWORK_OPENCL));

TEST(GammaRates, MoreCategoriesChangesLikelihood) {
  // Discrete-gamma heterogeneity must have an effect on real data, and the
  // effect must agree between CPU and accelerator paths.
  auto problem = test::makeNucleotideProblem(8, 400, 12);
  double values[2];
  for (int i = 0; i < 2; ++i) {
    phylo::LikelihoodOptions opts;
    opts.categories = i == 0 ? 1 : 8;
    opts.alpha = 0.3;
    phylo::TreeLikelihood like(problem.tree, *problem.model, problem.data, opts);
    values[i] = like.logLikelihood();
  }
  EXPECT_NE(values[0], values[1]);
}

TEST(Harness, CaterpillarAndBalancedTopologiesBothRun) {
  for (bool balanced : {true, false}) {
    harness::ProblemSpec spec;
    spec.tips = 10;
    spec.patterns = 300;
    spec.balancedTopology = balanced;
    spec.internalBufferPool = 2;
    spec.reps = 1;
    const auto result = harness::runThroughput(spec);
    EXPECT_GT(result.gflops, 0.0);
    EXPECT_TRUE(std::isfinite(result.logL));
  }
}

}  // namespace
}  // namespace bgl
