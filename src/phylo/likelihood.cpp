#include "phylo/likelihood.h"

#include <utility>

#include "core/defs.h"
#include "core/gamma.h"

namespace bgl::phylo {
namespace {

/// Throw an Error carrying the failed call's return code plus whatever
/// detail the library attached to the thread-local last-error message, so
/// failover layers (SplitLikelihood) can classify the failure.
[[noreturn]] void throwApiError(const std::string& what, int rc) {
  std::string message = what + " failed with code " + std::to_string(rc);
  if (const char* detail = bglGetLastErrorMessage(); detail != nullptr && *detail) {
    message += ": ";
    message += detail;
  }
  throw Error(message, rc);
}

}  // namespace

TreeLikelihood::TreeLikelihood(const Tree& tree, const SubstitutionModel& model,
                               const PatternSet& data,
                               const LikelihoodOptions& options)
    : tree_(tree),
      patterns_(data.patterns),
      useScaling_(options.useScaling) {
  if (data.taxa != tree.tipCount()) {
    throw Error("TreeLikelihood: tree/data taxon count mismatch");
  }
  const int tips = tree.tipCount();
  const int states = model.states();
  const int categories = options.categories;
  const int scaleBuffers = useScaling_ ? tips : 0;  // tips-1 per-node + 1 cum
  cumulativeScaleIndex_ = useScaling_ ? tips - 1 : BGL_OP_NONE;

  BglInstanceDetails details{};
  instance_ = bglCreateInstance(
      tips, /*partialsBufferCount=*/tips - 1, /*compactBufferCount=*/tips, states,
      data.patterns, /*eigenBufferCount=*/1, /*matrixBufferCount=*/2 * tips - 2,
      categories, scaleBuffers,
      options.resources.empty() ? nullptr : options.resources.data(),
      static_cast<int>(options.resources.size()), options.preferenceFlags,
      options.requirementFlags, &details);
  if (instance_ < 0) {
    throwApiError("TreeLikelihood: bglCreateInstance", instance_);
  }
  implName_ = details.implName;
  resource_ = details.resourceNumber;
  if (!options.traceFile.empty()) {
    bglSetTraceFile(instance_, options.traceFile.c_str());
  }
  if (!options.statsFile.empty()) {
    bglSetStatsFile(instance_, options.statsFile.c_str());
  }

  const auto es = model.eigenSystem();
  int rc = bglSetEigenDecomposition(instance_, 0, es.evec.data(), es.ivec.data(),
                                    es.eval.data());
  if (rc == BGL_SUCCESS) {
    rc = bglSetStateFrequencies(instance_, 0, model.frequencies().data());
  }
  if (rc == BGL_SUCCESS) {
    const std::vector<double> weights(categories, 1.0 / categories);
    rc = bglSetCategoryWeights(instance_, 0, weights.data());
  }
  if (rc == BGL_SUCCESS) {
    const auto rates = categories > 1 ? discreteGammaRates(options.alpha, categories)
                                      : std::vector<double>{1.0};
    rc = bglSetCategoryRates(instance_, rates.data());
  }
  if (rc == BGL_SUCCESS) {
    rc = bglSetPatternWeights(instance_, data.weights.data());
  }
  for (int t = 0; rc == BGL_SUCCESS && t < tips; ++t) {
    std::vector<int> tipStates(data.patterns);
    for (int k = 0; k < data.patterns; ++k) tipStates[k] = data.at(t, k);
    rc = bglSetTipStates(instance_, t, tipStates.data());
  }
  if (rc != BGL_SUCCESS) {
    // Preserve the failing call's message across the cleanup call.
    const std::string detail = bglGetLastErrorMessage();
    bglFinalizeInstance(instance_);
    instance_ = -1;
    std::string message =
        "TreeLikelihood: instance setup failed with code " + std::to_string(rc);
    if (!detail.empty()) message += ": " + detail;
    throw Error(message, rc);
  }
}

TreeLikelihood::~TreeLikelihood() {
  if (instance_ >= 0) bglFinalizeInstance(instance_);
}

double TreeLikelihood::logLikelihood(const Tree& tree) {
  if (tree.tipCount() != tree_.tipCount()) {
    throw Error("TreeLikelihood: taxon count changed");
  }
  tree_ = tree;

  std::vector<int> matrixNodes;
  std::vector<double> lengths;
  tree_.matrixUpdates(matrixNodes, lengths);
  int rc = bglUpdateTransitionMatrices(instance_, 0, matrixNodes.data(), nullptr,
                                       nullptr, lengths.data(),
                                       static_cast<int>(matrixNodes.size()));
  if (rc != BGL_SUCCESS) throwApiError("updateTransitionMatrices", rc);

  if (useScaling_) {
    rc = bglResetScaleFactors(instance_, cumulativeScaleIndex_);
    if (rc != BGL_SUCCESS) throwApiError("resetScaleFactors", rc);
  }
  const auto ops = tree_.operations(useScaling_);
  rc = bglUpdatePartials(instance_, ops.data(), static_cast<int>(ops.size()),
                         cumulativeScaleIndex_);
  if (rc != BGL_SUCCESS) throwApiError("updatePartials", rc);

  const int rootIndex = tree_.root();
  const int zero = 0;
  const int cum = cumulativeScaleIndex_;
  double logL = 0.0;
  rc = bglCalculateRootLogLikelihoods(instance_, &rootIndex, &zero, &zero,
                                      useScaling_ ? &cum : nullptr, 1, &logL);
  if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
    throwApiError("calculateRootLogLikelihoods", rc);
  }
  return logL;
}

double TreeLikelihood::rootEdgeLogLikelihood(double t, double* outD1, double* outD2) {
  if (useScaling_) {
    // The cumulative buffer also holds the root node's factor, which the
    // edge-based evaluation (over the two root-child subtrees) must not
    // include; restrict this helper to unscaled instances.
    throw Error("rootEdgeLogLikelihood: not supported with scaling enabled");
  }
  int left = tree_.node(tree_.root()).left;
  int right = tree_.node(tree_.root()).right;
  // The parent side must hold partials (not compact tip states); for a
  // reversible model the edge likelihood is symmetric in its endpoints, so
  // orient the internal child as the parent.
  if (tree_.isTip(left)) std::swap(left, right);
  if (tree_.isTip(left)) {
    throw Error("rootEdgeLogLikelihood: needs at least 3 taxa");
  }
  // Reuse the matrix slots of the root children for P(t), P'(t), P''(t):
  // they are refreshed by the next logLikelihood() call anyway. The third
  // scratch slot is the smallest index not already in use.
  const int probIndex = left;
  const int d1Index = right;
  int d2Index = 0;
  while (d2Index == left || d2Index == right) ++d2Index;
  int rc = bglUpdateTransitionMatrices(instance_, 0, &probIndex, &d1Index, &d2Index,
                                       &t, 1);
  if (rc != BGL_SUCCESS) throwApiError("updateTransitionMatrices(derivs)", rc);

  const int zero = 0;
  const int cum = cumulativeScaleIndex_;
  double logL = 0.0, d1 = 0.0, d2 = 0.0;
  rc = bglCalculateEdgeLogLikelihoods(instance_, &left, &right, &probIndex, &d1Index,
                                      &d2Index, &zero, &zero,
                                      useScaling_ ? &cum : nullptr, 1, &logL, &d1, &d2);
  if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
    throwApiError("calculateEdgeLogLikelihoods", rc);
  }
  if (outD1 != nullptr) *outD1 = d1;
  if (outD2 != nullptr) *outD2 = d2;
  return logL;
}

}  // namespace bgl::phylo
