
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/c_api.cpp" "src/api/CMakeFiles/bgl_api.dir/c_api.cpp.o" "gcc" "src/api/CMakeFiles/bgl_api.dir/c_api.cpp.o.d"
  "/root/repo/src/api/plugin.cpp" "src/api/CMakeFiles/bgl_api.dir/plugin.cpp.o" "gcc" "src/api/CMakeFiles/bgl_api.dir/plugin.cpp.o.d"
  "/root/repo/src/api/registry.cpp" "src/api/CMakeFiles/bgl_api.dir/registry.cpp.o" "gcc" "src/api/CMakeFiles/bgl_api.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/bgl_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/bgl_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/bgl_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/bgl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/bgl_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bgl_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/bgl_hal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
