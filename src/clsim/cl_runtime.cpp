#include "clsim/cl_runtime.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "fault/fault.h"
#include "hal/command_stream.h"
#include "hal/workgroup_executor.h"
#include "kernels/kernels.h"
#include "obs/trace.h"

namespace bgl::clsim {
namespace {

using Clock = std::chrono::steady_clock;

class ClBuffer final : public hal::Buffer {
 public:
  explicit ClBuffer(std::size_t bytes)
      : storage_(new std::byte[bytes]), data_(storage_.get()), size_(bytes) {}

  /// Sub-buffer object: references the parent region, enforcing the
  /// origin-alignment rule real OpenCL devices impose.
  ClBuffer(std::shared_ptr<hal::Buffer> parent, std::size_t offset, std::size_t bytes)
      : parent_(std::move(parent)),
        data_(static_cast<std::byte*>(parent_->data()) + offset),
        size_(bytes) {}

  bool isSubBuffer() const { return parent_ != nullptr; }
  std::size_t size() const override { return size_; }
  void* data() override { return data_; }
  const void* data() const override { return data_; }

 private:
  std::shared_ptr<hal::Buffer> parent_;
  std::unique_ptr<std::byte[]> storage_;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class ClKernel final : public hal::Kernel {
 public:
  ClKernel(const hal::KernelSpec& spec, hal::KernelFn fn) : spec_(spec), fn_(fn) {}
  const hal::KernelSpec& spec() const override { return spec_; }
  hal::KernelFn fn() const { return fn_; }

 private:
  hal::KernelSpec spec_;
  hal::KernelFn fn_;
};

class ClDevice final : public hal::Device {
 public:
  ClDevice(const Platform& platform, int profileIndex)
      : platform_(platform), profile_(perf::deviceRegistry().at(profileIndex)) {
    // Non-vendor drivers (Section VII-B3): reduced performance surfaces as
    // inflated launch overhead and reduced achievable efficiency.
    profile_.launchOverheadUsOpenCl *= platform_.overheadMultiplier;
    profile_.computeEfficiency /= platform_.overheadMultiplier;
    profile_.bandwidthEfficiency /= platform_.overheadMultiplier;
  }

  const perf::DeviceProfile& profile() const override { return profile_; }
  std::string frameworkName() const override { return "OpenCL"; }
  const Platform& platform() const { return platform_; }

  hal::BufferPtr alloc(std::size_t bytes) override {
    fault::Injector::instance().onAlloc("opencl", bytes);
    return std::make_shared<ClBuffer>(bytes);
  }

  hal::BufferPtr subBuffer(const hal::BufferPtr& parent, std::size_t offset,
                           std::size_t bytes) override {
    if (offset + bytes > parent->size()) {
      throw Error("clsim: CL_INVALID_VALUE (sub-buffer out of bounds)", kErrOutOfRange);
    }
    if (offset % kSubBufferAlign != 0) {
      throw Error("clsim: CL_MISALIGNED_SUB_BUFFER_OFFSET", kErrOutOfRange);
    }
    if (static_cast<const ClBuffer*>(parent.get())->isSubBuffer()) {
      throw Error("clsim: CL_INVALID_MEM_OBJECT (sub-buffer of sub-buffer)", kErrOutOfRange);
    }
    return std::make_shared<ClBuffer>(parent, offset, bytes);
  }

  void copyToDevice(hal::Buffer& dst, std::size_t dstOffset, const void* src,
                    std::size_t bytes) override {
    if (dstOffset + bytes > dst.size()) {
      throw Error("clsim: write out of bounds", kErrOutOfRange);
    }
    syncStream();  // in-order queue: queued launches complete before the copy
    fault::Injector::instance().onMemcpy("opencl", bytes);
    const auto t0 = Clock::now();
    std::memcpy(static_cast<std::byte*>(dst.data()) + dstOffset, src, bytes);
    accountCopy(perf::modeledCopySeconds(profile_, static_cast<double>(bytes)),
                bytes);
    if (recorder_ != nullptr) {
      recorder_->count(obs::Counter::kBytesIn, bytes);
      recordCopy("HtoD", t0, bytes);
    }
  }

  void copyToHost(void* dst, const hal::Buffer& src, std::size_t srcOffset,
                  std::size_t bytes) override {
    if (srcOffset + bytes > src.size()) {
      throw Error("clsim: read out of bounds", kErrOutOfRange);
    }
    syncStream();  // in-order queue: queued launches complete before the copy
    fault::Injector::instance().onMemcpy("opencl", bytes);
    const auto t0 = Clock::now();
    std::memcpy(dst, static_cast<const std::byte*>(src.data()) + srcOffset, bytes);
    accountCopy(perf::modeledCopySeconds(profile_, static_cast<double>(bytes)),
                bytes);
    if (recorder_ != nullptr) {
      recorder_->count(obs::Counter::kBytesOut, bytes);
      recordCopy("DtoH", t0, bytes);
    }
  }

  void copyToHostFromStream(void* dst, const hal::Buffer& src,
                            std::size_t srcOffset, std::size_t bytes,
                            int stream) override {
    if (streams_.size() < 2) {
      copyToHost(dst, src, srcOffset, bytes);
      return;
    }
    if (srcOffset + bytes > src.size()) {
      throw Error("clsim: read out of bounds", kErrOutOfRange);
    }
    const int idx = clampStream(stream);
    streams_[idx].stream->flush();  // drain only the owning queue
    fault::Injector::instance().onMemcpy("opencl", bytes);
    const auto t0 = Clock::now();
    std::memcpy(dst, static_cast<const std::byte*>(src.data()) + srcOffset, bytes);
    {
      std::lock_guard lock(timelineMutex_);
      timeline_.bytesCopied += bytes;
      if (!profile_.hostMeasured) {
        auto& slot = streams_[idx];
        slot.clock +=
            perf::modeledCopySeconds(profile_, static_cast<double>(bytes));
        timeline_.modeledSeconds =
            std::max(timeline_.modeledSeconds, slot.clock);
      }
    }
    if (recorder_ != nullptr) {
      recorder_->count(obs::Counter::kBytesOut, bytes);
      recordCopy("DtoH", t0, bytes, 1 + idx);
    }
  }

  hal::Kernel* getKernel(const hal::KernelSpec& spec) override {
    std::lock_guard lock(mutex_);
    for (auto& k : kernels_) {
      if (k->spec() == spec) return k.get();
    }
    kernels_.push_back(std::make_unique<ClKernel>(spec, kernels::lookupKernel(spec)));
    return kernels_.back().get();
  }

  void launch(hal::Kernel& kernel, const hal::LaunchDims& dims,
              const hal::KernelArgs& args, const perf::LaunchWork& work,
              const hal::LaunchOptions& opts = {}) override {
    // clEnqueueNDRangeKernel validates resources at enqueue in both modes.
    if (dims.localMemBytes > profile_.localMemKb * 1024.0) {
      throw Error("clsim: CL_OUT_OF_RESOURCES (local memory request of " +
                  std::to_string(dims.localMemBytes) + " bytes exceeds " +
                  std::to_string(static_cast<int>(profile_.localMemKb)) +
                  " KB local memory)",
                  kErrOutOfMemory);
    }
    // Fault hook fires at enqueue time in both modes; injected launch
    // failures surface at the enqueuing API call (docs/ROBUSTNESS.md).
    fault::Injector::instance().onLaunch("opencl");
    auto& k = static_cast<ClKernel&>(kernel);
    if (!streams_.empty()) {
      const int idx = clampStream(opts.stream);
      hal::LaunchRecord rec;
      rec.fn = k.fn();
      rec.spec = k.spec();
      rec.dims = dims;
      rec.args = args;
      rec.work = work;
      rec.keepAlive = opts.keepAlive;
      rec.concurrentWithPrevious = opts.concurrentWithPrevious;
      const bool timing = recorder_ != nullptr && recorder_->timingEnabled();
      const char* kernelName = hal::kernelIdName(k.spec().id);
      std::uint64_t groups = static_cast<std::uint64_t>(dims.numGroups);
      std::uint64_t enqueueBeginNs = 0;
      if (timing) {
        rec.enqueueNs = recorder_->nowNs();
        rec.flowId = obs::nextFlowId();
        enqueueBeginNs = rec.enqueueNs;
      }
      const std::uint64_t flowId = rec.flowId;
      if (recorder_ != nullptr) {
        recorder_->count(obs::Counter::kKernelLaunches);
        recorder_->count(obs::Counter::kStreamedLaunches);
      }
      streams_[idx].stream->enqueue(std::move(rec));
      if (recorder_ != nullptr) {
        // Exported gauge: queue depth the API thread observed right after
        // this enqueue, summed across queues (high-water kept by the
        // recorder).
        recorder_->setGauge(obs::Gauge::kPendingDepth, totalPendingDepth());
        if (timing) {
          obs::TraceEvent ev;
          ev.category = obs::Category::kEnqueue;
          ev.name = kernelName;
          ev.beginNs = enqueueBeginNs;
          ev.durNs = recorder_->nowNs() - enqueueBeginNs;
          ev.tid = 0;  // API thread
          ev.stream = 1 + idx;
          ev.groups = groups;
          ev.device = profile_.name;
          ev.framework = "OpenCL";
          ev.flowId = flowId;
          ev.flowPhase = 1;  // flow starts at the enqueue span
          recorder_->recordEvent(std::move(ev));
        }
      }
      return;
    }
    const auto t0 = Clock::now();
    hal::executeGrid(k.fn(), dims, args, fission_);
    const auto t1 = Clock::now();
    const double measured = std::chrono::duration<double>(t1 - t0).count();
    timeline_.measuredSeconds += measured;
    timeline_.modeledSeconds +=
        profile_.hostMeasured
            ? measured
            : perf::modeledKernelSeconds(profile_, work, /*openCl=*/true);
    ++timeline_.kernelLaunches;
    if (recorder_ != nullptr) {
      recorder_->count(obs::Counter::kKernelLaunches);
      if (recorder_->timingEnabled()) {
        obs::TraceEvent ev;
        ev.category = obs::Category::kKernel;
        ev.name = hal::kernelIdName(k.spec().id);
        ev.beginNs = recorder_->sinceEpochNs(t0);
        ev.durNs = recorder_->sinceEpochNs(t1) - ev.beginNs;
        ev.stream = 0;  // one in-order command queue in the simulation
        ev.groups = static_cast<std::uint64_t>(dims.numGroups);
        ev.device = profile_.name;
        ev.framework = "OpenCL";
        recorder_->recordEvent(std::move(ev));
      }
    }
  }

  void fillZero(const hal::BufferPtr& buf, std::size_t offset,
                std::size_t bytes) override {
    if (offset + bytes > buf->size()) {
      throw Error("clsim: fill out of bounds", kErrOutOfRange);
    }
    if (!streams_.empty()) {
      // Fills always land on queue 0 (the compute queue); every fill target
      // in the accel layer is compute-queue-ordered state.
      hal::LaunchRecord rec;
      rec.kind = hal::LaunchRecord::Kind::Fill;
      rec.fillBuf = buf;
      rec.fillOffset = offset;
      rec.fillBytes = bytes;
      streams_[0].stream->enqueue(std::move(rec));
      return;
    }
    std::memset(static_cast<std::byte*>(buf->data()) + offset, 0, bytes);
  }

  void finish() override {
    if (streams_.empty()) return;  // synchronous mode: nothing queued, ever
    if (recorder_ != nullptr) {
      obs::ScopedSpan span(*recorder_, obs::Category::kStreamFlush, "stream.flush");
      syncAll();
    } else {
      syncAll();
    }
  }

  void setAsync(bool enabled) override {
    if (enabled && streams_.empty()) {
      for (int i = 0; i < streamCount_; ++i) addStream();
    } else if (!enabled && !streams_.empty()) {
      syncAll();
      streams_.clear();
    }
  }
  bool asyncEnabled() const override { return !streams_.empty(); }

  int streamCount() const override { return static_cast<int>(streams_.size()); }

  void setStreamCount(int n) override {
    n = std::min(std::max(n, 1), kMaxStreams);
    streamCount_ = n;
    if (streams_.empty()) return;  // applied on the next setAsync(true)
    if (static_cast<int>(streams_.size()) == n) return;
    syncAll();  // a global sync point; no queued record may be orphaned
    while (static_cast<int>(streams_.size()) > n) streams_.pop_back();
    while (static_cast<int>(streams_.size()) < n) addStream();
  }

  hal::StreamEventPtr recordEvent(int stream) override {
    if (streams_.empty()) return nullptr;
    const int idx = clampStream(stream);
    auto event = std::make_shared<hal::StreamEvent>();
    if (recorder_ != nullptr && recorder_->timingEnabled()) {
      event->flowId = obs::nextFlowId();
    }
    hal::LaunchRecord rec;
    rec.kind = hal::LaunchRecord::Kind::Signal;
    rec.event = event;
    streams_[idx].stream->enqueue(std::move(rec));
    return event;
  }

  void waitEvent(int stream, const hal::StreamEventPtr& event) override {
    if (streams_.empty() || !event) return;
    const int idx = clampStream(stream);
    hal::LaunchRecord rec;
    rec.kind = hal::LaunchRecord::Kind::Wait;
    rec.event = event;
    streams_[idx].stream->enqueue(std::move(rec));
  }

  void resetTimeline() override {
    std::lock_guard lock(timelineMutex_);
    timeline_.reset();
    for (auto& slot : streams_) slot.clock = 0.0;
  }

  void setFission(unsigned n) override { fission_ = n; }

 private:
  static constexpr int kMaxStreams = 8;

  /// One in-order command queue plus its modeled clock; see the CUDA
  /// runtime for the critical-path timeline model the clocks implement.
  struct StreamSlot {
    std::unique_ptr<hal::CommandStream> stream;
    double clock = 0.0;
  };

  int clampStream(int s) const {
    const int last = static_cast<int>(streams_.size()) - 1;
    return std::min(std::max(s, 0), last);
  }

  void addStream() {
    const std::size_t idx = streams_.size();
    StreamSlot slot;
    slot.clock = timeline_.modeledSeconds;
    slot.stream = std::make_unique<hal::CommandStream>(
        [this, idx](const hal::LaunchRecord* recs, std::size_t n) {
          executeRun(idx, recs, n);
        });
    streams_.push_back(std::move(slot));
  }

  void syncAll() {
    std::exception_ptr first;
    for (auto& slot : streams_) {
      try {
        slot.stream->flush();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  std::size_t totalPendingDepth() const {
    std::size_t total = 0;
    for (const auto& slot : streams_) total += slot.stream->pendingDepth();
    return total;
  }

  /// Full-flush copy: a global sync point — every queue clock advances to
  /// the common barrier plus the copy time.
  void accountCopy(double seconds, std::size_t bytes) {
    std::lock_guard lock(timelineMutex_);
    timeline_.bytesCopied += bytes;
    if (profile_.hostMeasured) return;
    if (streams_.empty()) {
      timeline_.modeledSeconds += seconds;
      return;
    }
    double maxClock = timeline_.modeledSeconds;
    for (const auto& slot : streams_) maxClock = std::max(maxClock, slot.clock);
    for (auto& slot : streams_) slot.clock = maxClock + seconds;
    timeline_.modeledSeconds = maxClock + seconds;
  }

  void executeRun(std::size_t streamIdx, const hal::LaunchRecord* recs,
                  std::size_t n) {
    if (recs[0].kind == hal::LaunchRecord::Kind::Signal ||
        recs[0].kind == hal::LaunchRecord::Kind::Wait) {
      executeSync(streamIdx, recs[0]);
      return;
    }
    if (recorder_ != nullptr) {
      recorder_->setGauge(obs::Gauge::kInFlight, n);
    }
    const auto t0 = Clock::now();
    if (n == 1 && recs[0].kind == hal::LaunchRecord::Kind::Fill) {
      std::memset(static_cast<std::byte*>(recs[0].fillBuf->data()) +
                      recs[0].fillOffset,
                  0, recs[0].fillBytes);
      return;
    }
    std::vector<hal::GridBatchItem> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      items[i] = {recs[i].fn, recs[i].dims, &recs[i].args};
    }
    hal::executeGridBatch(items.data(), n, fission_);
    const auto t1 = Clock::now();
    const double measured = std::chrono::duration<double>(t1 - t0).count();
    double runModeled = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      runModeled += profile_.hostMeasured
                        ? measured / static_cast<double>(n)
                        : perf::modeledKernelSeconds(profile_, recs[i].work,
                                                     /*openCl=*/true);
    }
    {
      std::lock_guard lock(timelineMutex_);
      timeline_.measuredSeconds += measured;
      timeline_.kernelLaunches += n;
      auto& slot = streams_[streamIdx];
      slot.clock += runModeled;
      timeline_.modeledSeconds = std::max(timeline_.modeledSeconds, slot.clock);
    }
    if (recorder_ != nullptr && recorder_->timingEnabled()) {
      for (std::size_t i = 0; i < n; ++i) {
        obs::TraceEvent ev;
        ev.category = obs::Category::kKernel;
        ev.name = hal::kernelIdName(recs[i].spec.id);
        ev.beginNs = recorder_->sinceEpochNs(t0);
        ev.durNs = recorder_->sinceEpochNs(t1) - ev.beginNs;
        ev.tid = 1 + static_cast<int>(streamIdx);  // per-queue worker
        ev.stream = 1 + static_cast<int>(streamIdx);
        ev.groups = static_cast<std::uint64_t>(recs[i].dims.numGroups);
        ev.device = profile_.name;
        ev.framework = "OpenCL";
        if (recs[i].flowId != 0) {
          ev.flowId = recs[i].flowId;
          ev.flowPhase = 2;  // flow lands on the execution span
          if (ev.beginNs > recs[i].enqueueNs) {
            ev.queuedNs = ev.beginNs - recs[i].enqueueNs;
          }
        }
        recorder_->recordEvent(std::move(ev));
      }
    }
    if (recorder_ != nullptr) {
      recorder_->setGauge(obs::Gauge::kInFlight, 0);
    }
  }

  /// Signal/Wait accounting; see the CUDA runtime twin for the contract.
  void executeSync(std::size_t streamIdx, const hal::LaunchRecord& rec) {
    const auto t0 = Clock::now();
    const bool isSignal = rec.kind == hal::LaunchRecord::Kind::Signal;
    {
      std::lock_guard lock(timelineMutex_);
      auto& slot = streams_[streamIdx];
      if (isSignal) {
        if (rec.event) rec.event->stampModeled(slot.clock);
      } else if (rec.event) {
        slot.clock = std::max(slot.clock, rec.event->modeledAt());
        timeline_.modeledSeconds =
            std::max(timeline_.modeledSeconds, slot.clock);
      }
    }
    if (recorder_ != nullptr && recorder_->timingEnabled() && rec.event) {
      obs::TraceEvent ev;
      ev.category = obs::Category::kStreamSync;
      ev.name = isSignal ? "EventSignal" : "EventWait";
      ev.beginNs = recorder_->sinceEpochNs(t0);
      ev.durNs = recorder_->nowNs() - ev.beginNs;
      ev.tid = 1 + static_cast<int>(streamIdx);
      ev.stream = 1 + static_cast<int>(streamIdx);
      ev.device = profile_.name;
      ev.framework = "OpenCL";
      if (rec.event->flowId != 0) {
        ev.flowId = rec.event->flowId;
        ev.flowPhase = isSignal ? 1 : 2;  // flow: signal span -> wait span
      }
      recorder_->recordEvent(std::move(ev));
    }
  }

  void syncStream() { syncAll(); }

  void recordCopy(const char* name, Clock::time_point t0, std::size_t bytes,
                  int stream = 0) {
    if (!recorder_->timingEnabled()) return;
    obs::TraceEvent ev;
    ev.category = obs::Category::kMemcpy;
    ev.name = name;
    ev.beginNs = recorder_->sinceEpochNs(t0);
    ev.durNs = recorder_->nowNs() - ev.beginNs;
    ev.stream = stream;
    ev.bytes = bytes;
    ev.device = profile_.name;
    ev.framework = "OpenCL";
    recorder_->recordEvent(std::move(ev));
  }

  Platform platform_;
  perf::DeviceProfile profile_;
  unsigned fission_ = 0;  // 0 = all compute units
  std::mutex mutex_;
  std::mutex timelineMutex_;  // orders queue workers on timeline_/clocks
  std::vector<std::unique_ptr<ClKernel>> kernels_;
  std::vector<StreamSlot> streams_;
  int streamCount_ = 1;  // queues to create on the next setAsync(true)
};

}  // namespace

const std::vector<Platform>& platforms() {
  static const std::vector<Platform> list = [] {
    std::vector<Platform> v;
    // Vendor drivers: best performance, one per vendor (Table I lists the
    // NVIDIA, AMD and Intel OpenCL drivers of the paper's systems).
    v.push_back({"NVIDIA OpenCL (vendor driver)", "NVIDIA Corporation", 1.0,
                 {perf::kQuadroP5000}});
    v.push_back({"AMD APP (vendor driver)", "Advanced Micro Devices", 1.0,
                 {perf::kRadeonR9Nano, perf::kFireProS9170}});
    v.push_back({"Intel OpenCL CPU Runtime (vendor driver)", "Intel Corporation",
                 1.0,
                 {perf::kHostCpu, perf::kXeonPhi7210, perf::kDualXeonE5}});
    // A generic (macOS-style) driver for the same hardware: demonstrates
    // ICD-based driver selection with reduced performance.
    v.push_back({"Generic OpenCL (portable driver)", "Portable Computing", 1.35,
                 {perf::kHostCpu, perf::kQuadroP5000, perf::kRadeonR9Nano,
                  perf::kFireProS9170}});
    return v;
  }();
  return list;
}

hal::DevicePtr createDevice(const Platform& platform, int profileIndex) {
  bool ok = false;
  for (int v : platform.deviceProfiles) ok = ok || v == profileIndex;
  if (!ok) {
    throw Error("clsim: device not exposed by platform " + platform.name,
                kErrOutOfRange);
  }
  return std::make_shared<ClDevice>(platform, profileIndex);
}

hal::DevicePtr createDeviceByProfile(int profileIndex) {
  // Prefer vendor drivers (lowest overhead multiplier).
  const Platform* best = nullptr;
  for (const auto& p : platforms()) {
    for (int v : p.deviceProfiles) {
      if (v == profileIndex &&
          (best == nullptr || p.overheadMultiplier < best->overheadMultiplier)) {
        best = &p;
      }
    }
  }
  if (best == nullptr) {
    throw Error("clsim: no platform exposes requested device", kErrOutOfRange);
  }
  return createDevice(*best, profileIndex);
}

}  // namespace bgl::clsim
