// Vectorized CPU implementations, layered as mixins so the SIMD kernels
// compose with the threading strategies ("combine the added parallelism
// with the existing, low-level, SSE vectorization" — Section VI).
//
// Vector kernels exist for the 4-state nucleotide model in double
// precision, as in the library release the paper describes; other state
// counts fall back to the scalar path of the base class.
#pragma once

#include "cpu/cpu_impl.h"
#include "cpu/simd_kernels.h"
#include "cpu/threaded_impl.h"

namespace bgl::cpu {

template <typename Base>
class SseMixin : public Base {
 public:
  using Base::Base;
  std::string implName() const override { return Base::implName() + "+SSE"; }

 protected:
  const char* kernelLabel() const override { return "sse"; }

  void partialsPartials(double* dest, const double* p1, const double* m1,
                        const double* p2, const double* m2, int p, int c, int s,
                        int kBegin, int kEnd) override {
    if (s == 4) {
      partialsPartials4Sse(dest, p1, m1, p2, m2, p, c, kBegin, kEnd);
    } else {
      Base::partialsPartials(dest, p1, m1, p2, m2, p, c, s, kBegin, kEnd);
    }
  }

  void statesPartials(double* dest, const std::int32_t* s1, const double* m1,
                      const double* p2, const double* m2, int p, int c, int s,
                      int kBegin, int kEnd) override {
    if (s == 4) {
      statesPartials4Sse(dest, s1, m1, p2, m2, p, c, kBegin, kEnd);
    } else {
      Base::statesPartials(dest, s1, m1, p2, m2, p, c, s, kBegin, kEnd);
    }
  }

  void statesStates(double* dest, const std::int32_t* s1, const double* m1,
                    const std::int32_t* s2, const double* m2, int p, int c, int s,
                    int kBegin, int kEnd) override {
    if (s == 4) {
      statesStates4Sse(dest, s1, m1, s2, m2, p, c, kBegin, kEnd);
    } else {
      Base::statesStates(dest, s1, m1, s2, m2, p, c, s, kBegin, kEnd);
    }
  }
};

template <typename Base>
class AvxMixin : public Base {
 public:
  using Base::Base;
  std::string implName() const override { return Base::implName() + "+AVX"; }

 protected:
  const char* kernelLabel() const override { return "avx"; }

  void partialsPartials(double* dest, const double* p1, const double* m1,
                        const double* p2, const double* m2, int p, int c, int s,
                        int kBegin, int kEnd) override {
    if (s == 4) {
      partialsPartials4Avx(dest, p1, m1, p2, m2, p, c, kBegin, kEnd);
    } else {
      Base::partialsPartials(dest, p1, m1, p2, m2, p, c, s, kBegin, kEnd);
    }
  }

  void statesPartials(double* dest, const std::int32_t* s1, const double* m1,
                      const double* p2, const double* m2, int p, int c, int s,
                      int kBegin, int kEnd) override {
    if (s == 4) {
      statesPartials4Avx(dest, s1, m1, p2, m2, p, c, kBegin, kEnd);
    } else {
      Base::statesPartials(dest, s1, m1, p2, m2, p, c, s, kBegin, kEnd);
    }
  }

  void statesStates(double* dest, const std::int32_t* s1, const double* m1,
                    const std::int32_t* s2, const double* m2, int p, int c, int s,
                    int kBegin, int kEnd) override {
    if (s == 4) {
      statesStates4Avx(dest, s1, m1, s2, m2, p, c, kBegin, kEnd);
    } else {
      Base::statesStates(dest, s1, m1, s2, m2, p, c, s, kBegin, kEnd);
    }
  }
};

using SseImpl = SseMixin<CpuImpl<double>>;
using SseThreadPoolImpl = SseMixin<ThreadPoolImpl<double>>;
using AvxImpl = AvxMixin<CpuImpl<double>>;
using AvxThreadPoolImpl = AvxMixin<ThreadPoolImpl<double>>;

}  // namespace bgl::cpu
