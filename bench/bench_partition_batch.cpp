// PR 10 perf smoke: single-instance multi-partition evaluation.
//
// A phylogenomic workload — hundreds of small gene partitions, each with
// its own substitution model, over one shared tree — evaluated two ways on
// the simulated accelerator profiles:
//  * legacy: one library instance per partition (one launch set per
//    partition per tree level),
//  * batched: ONE multi-partition instance whose pattern axis concatenates
//    every partition (bglSetPatternPartitions); the level batcher fuses all
//    partitions' per-level operations into the same grid launches, so the
//    launch count stays O(tree depth) instead of O(depth x partitions),
//    and the per-partition log likelihoods come back in a single readback.
//
// This is a smoke test, not just a report: it exits non-zero unless
//  * every batched per-partition log likelihood is BIT-IDENTICAL to the
//    legacy per-instance value (and, on the gated rows, to a fresh
//    same-options single-partition instance via the harness reference),
//  * the batched layout is >= 2x faster than per-instance on both
//    simulated frameworks (modeled device seconds), at 120 partitions and
//    at the 1000-partition scale point,
//  * the batched layout serves each workload from ONE instance.
//
// Results land in BENCH_pr10.json (set BGL_BENCH_DIR to redirect).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/genomictest.h"

namespace {

constexpr double kMinSpeedup = 2.0;
constexpr int kPatternsPerPartition = 16;  // launch-bound small genes

struct Config {
  const char* label;
  const char* resourceFragment;  // perf-registry resource to run on
  long flags;
  bool gated;  // simulated profile: subject to the 2x speedup gate
};

bgl::harness::PartitionedRunResult runLayout(const Config& config, int resource,
                                             int partitions, bool batched,
                                             bool validate) {
  bgl::harness::ProblemSpec spec;
  spec.tips = 8;
  spec.patterns = partitions * kPatternsPerPartition;
  spec.states = 4;
  spec.categories = 4;
  spec.singlePrecision = false;
  spec.resource = resource;
  spec.requirementFlags = config.flags;
  spec.reps = 2;
  spec.warmupReps = 1;
  bgl::phylo::PartitionOptions options;
  options.batched = batched;
  return bgl::harness::runPartitionedThroughput(spec, partitions, options,
                                                validate);
}

bool partitionsBitIdentical(const std::vector<double>& a,
                            const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace bgl;
  bench::printHeader(
      "PR 10 perf smoke: single-instance multi-partition evaluation",
      "Section IV-F partitioned analyses, batched into one level-order "
      "launch set per resource");
  bench::printNote(
      "8 tips, 16 patterns/partition, 4 states, 4 categories, double "
      "precision, one model per partition; legacy = one instance per "
      "partition, batched = one multi-partition instance; simulated device "
      "profiles (modeled seconds), host row reported unguarded");

  bench::JsonReport report(
      "pr10", "PR 10 perf smoke: single-instance multi-partition evaluation",
      "Section IV-F partitioned analyses (phylogenomic gene partitions)");
  report.note(
      "speedup = legacySeconds / batchedSeconds per framework and scale; "
      "gates: batched per-partition logLs bitwise-equal to per-instance "
      "(and to fresh same-options references at 120 partitions), one "
      "batched instance per workload, speedup >= 2 on both simulated "
      "frameworks at 120 and 1000 partitions");

  const std::vector<Config> configs = {
      {"cuda", "Quadro", BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_COMPUTATION_ASYNCH,
       true},
      {"opencl", "Radeon",
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_COMPUTATION_ASYNCH, true},
      {"cpu-serial", "",
       BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE,
       false},
  };
  const std::vector<int> scales = {120, 1000};

  int failures = 0;
  try {
    std::printf("\n%-12s %6s %12s %12s %9s %9s %7s %22s\n", "framework",
                "parts", "legacy(s)", "batched(s)", "speedup", "launches",
                "bitEq", "logL");
    for (const auto& config : configs) {
      int resource = 0;
      if (*config.resourceFragment != '\0') {
        resource = harness::findResource(config.resourceFragment);
        if (resource < 0) {
          std::fprintf(stderr, "FAIL %s: no resource matching '%s'\n",
                       config.label, config.resourceFragment);
          ++failures;
          continue;
        }
      }
      for (int partitions : scales) {
        // Fresh same-options per-partition references are themselves a
        // 1000-instance build; run them at the 120-partition scale only.
        const bool validate = partitions == scales.front();
        const auto legacy =
            runLayout(config, resource, partitions, /*batched=*/false, false);
        const auto batched =
            runLayout(config, resource, partitions, /*batched=*/true, validate);
        const double speedup = legacy.seconds / batched.seconds;
        const bool instancesExact =
            partitionsBitIdentical(batched.partitionLogL, legacy.partitionLogL);
        const bool referenceExact = !validate || batched.referenceExact;
        const double launchRatio =
            batched.kernelLaunches > 0
                ? static_cast<double>(legacy.kernelLaunches) /
                      static_cast<double>(batched.kernelLaunches)
                : 0.0;
        std::printf("%-12s %6d %12.4f %12.4f %9.2f %9.1f %7s %22.12f\n",
                    config.label, partitions, legacy.seconds, batched.seconds,
                    speedup, launchRatio,
                    instancesExact && referenceExact ? "yes" : "NO",
                    batched.logL);

        for (const auto* layout : {"legacy", "batched"}) {
          const auto& r = *layout == 'l' ? legacy : batched;
          report.row()
              .field("framework", config.label)
              .field("partitions", partitions)
              .field("layout", layout)
              .field("seconds", r.seconds)
              .field("gflops", r.gflops)
              .field("instances", r.instances)
              .field("kernelLaunches", static_cast<double>(r.kernelLaunches))
              .field("logL", r.logL);
        }
        report.row()
            .field("framework", config.label)
            .field("partitions", partitions)
            .field("layout", "summary")
            .field("speedup", speedup)
            .field("launchRatio", launchRatio)
            .field("perInstanceBitIdentical", instancesExact ? 1 : 0)
            .field("referenceBitIdentical",
                   validate ? (batched.referenceExact ? 1 : 0) : -1);

        if (batched.instances != 1) {
          std::fprintf(stderr,
                       "FAIL %s/%d: batched layout used %d instances, not 1\n",
                       config.label, partitions, batched.instances);
          ++failures;
        }
        if (legacy.instances != partitions) {
          std::fprintf(stderr,
                       "FAIL %s/%d: legacy layout used %d instances, not %d\n",
                       config.label, partitions, legacy.instances, partitions);
          ++failures;
        }
        if (!instancesExact) {
          std::fprintf(stderr,
                       "FAIL %s/%d: batched per-partition logLs differ from "
                       "the per-instance layout\n",
                       config.label, partitions);
          ++failures;
        }
        if (validate && !batched.referenceExact) {
          std::fprintf(stderr,
                       "FAIL %s/%d: batched per-partition logLs differ from "
                       "fresh same-options references\n",
                       config.label, partitions);
          ++failures;
        }
        if (!std::isfinite(batched.logL)) {
          std::fprintf(stderr, "FAIL %s/%d: batched logL %.17g not finite\n",
                       config.label, partitions, batched.logL);
          ++failures;
        }
        if (config.gated && speedup < kMinSpeedup) {
          std::fprintf(stderr,
                       "FAIL %s/%d: batched speedup %.3f < required %.2f\n",
                       config.label, partitions, speedup, kMinSpeedup);
          ++failures;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    return 1;
  }

  if (failures > 0) {
    std::fprintf(stderr, "partition perf smoke failed: %d violation(s)\n",
                 failures);
    return 1;
  }
  std::printf(
      "partition perf smoke passed: batched >= %.1fx over per-instance on "
      "both frameworks at every scale, all per-partition log likelihoods "
      "bit-identical\n",
      kMinSpeedup);
  return 0;
}
