# Empty dependencies file for bench_fig6_application.
# This may be replaced when dependencies are built.
