// phylomc3 — Bayesian phylogenetic inference from the command line (the
// MrBayes-role application of the paper's Fig. 6 benchmark).
//
// Input: a NEXUS file (DATA block; optional TREES block for the starting
// tree), a FASTA file, or --simulate for a synthetic run. The likelihood
// backend is selected exactly as in genomictest.
//
// Examples:
//   phylomc3 --simulate 12x2000 --generations 500
//   phylomc3 --nexus primates.nex --chains 4 --generations 1000
//   phylomc3 --fasta aln.fa --framework opencl --resource 2
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/model.h"
#include "mc3/mc3.h"
#include "phylo/fasta.h"
#include "phylo/mlsearch.h"
#include "phylo/nexus.h"
#include "phylo/seqsim.h"
#include "tools/argparse.h"
#include "tools/watch.h"

namespace {

using namespace bgl;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: %s [--nexus FILE | --fasta FILE | --simulate TAXAxSITES]\n"
        "  --chains N --generations N --swap-interval N --seed N\n"
        "  --kappa X --alpha X --categories N\n"
        "  --framework cpu|cuda|opencl --resource N --threading pool|...\n"
        "  --native           use the built-in (non-library) evaluator\n"
        "  --auto-resource    calibrate resources, run on the fastest\n"
        "  --model-estimate   with --auto-resource: rank by perf model\n"
        "  --serial-chains    disable chain-level concurrency\n"
        "  --ml               maximum-likelihood hill-climb instead of MCMC\n"
        "  --trace FILE       Chrome trace JSON per instance (chains get\n"
        "                     unique .iN suffixes)\n"
        "  --stats-json FILE  per-operation counters/timings as JSON\n"
        "  --watch MS         print live process statistics every MS ms and\n"
        "                     a journal summary at exit\n"
        "  --metrics-file F   stream periodic JSON-lines metrics snapshots\n"
        "                     to F (period from --watch, default 500 ms)\n",
        args.program().c_str());
    return 0;
  }

  tools::StatsWatch watch(args.getInt("watch", 0), args.get("metrics-file"));

  try {
    // ---- data ----
    PatternSet data;
    if (args.has("nexus")) {
      const auto nexus = phylo::parseNexus(readFile(args.get("nexus")));
      if (nexus.dataType != phylo::NexusDataType::Dna) {
        throw Error("phylomc3: only DNA NEXUS data supported");
      }
      data = compressPatterns(nexus.encodeStates(), nexus.taxa, nexus.characters);
      std::printf("read %d taxa x %d characters from %s (%d unique patterns)\n",
                  nexus.taxa, nexus.characters, args.get("nexus").c_str(),
                  data.patterns);
    } else if (args.has("fasta")) {
      const auto records = phylo::parseFastaString(readFile(args.get("fasta")));
      int sites = 0;
      const auto states =
          phylo::encodeAlignment(records, phylo::nucleotideState, &sites);
      data = compressPatterns(states, static_cast<int>(records.size()), sites);
      std::printf("read %zu taxa x %d sites from %s (%d unique patterns)\n",
                  records.size(), sites, args.get("fasta").c_str(), data.patterns);
    } else {
      const std::string sim = args.get("simulate", "10x1000");
      const auto x = sim.find('x');
      const int taxa = std::stoi(sim.substr(0, x));
      const int sites = std::stoi(sim.substr(x + 1));
      Rng rng(static_cast<unsigned>(args.getInt("seed", 42)));
      const auto truth = phylo::Tree::random(taxa, rng, 0.1);
      HKY85Model model(args.getDouble("kappa", 2.0), {0.3, 0.25, 0.2, 0.25});
      data = phylo::simulatePatterns(truth, model, sites, rng);
      std::printf("simulated %d taxa x %d sites (%d unique patterns)\n", taxa,
                  sites, data.patterns);
      std::printf("true tree: %s\n", truth.toNewick().c_str());
    }

    // ---- model & sampler ----
    HKY85Model model(args.getDouble("kappa", 2.0), {0.3, 0.25, 0.2, 0.25});

    if (args.has("ml")) {
      // GARLI-role mode: hill-climb to the maximum-likelihood tree.
      Rng rng(static_cast<unsigned>(args.getInt("seed", 42)));
      phylo::MlSearchOptions mlOpts;
      mlOpts.seed = static_cast<unsigned>(args.getInt("seed", 42));
      mlOpts.likelihood.categories = args.getInt("categories", 4);
      if (args.get("framework") == "cuda") {
        mlOpts.likelihood.requirementFlags |= BGL_FLAG_FRAMEWORK_CUDA;
      }
      if (args.get("framework") == "opencl") {
        mlOpts.likelihood.requirementFlags |= BGL_FLAG_FRAMEWORK_OPENCL;
      }
      if (args.has("resource")) {
        mlOpts.likelihood.resources = {args.getInt("resource", 0)};
      }
      mlOpts.likelihood.traceFile = args.get("trace");
      mlOpts.likelihood.statsFile = args.get("stats-json");
      const auto start = phylo::Tree::random(data.taxa, rng, 0.1);
      const auto result = phylo::mlSearch(start, model, data, mlOpts);
      std::printf("\nML search: %d rounds, %d/%d NNIs accepted, %ld evaluations\n",
                  result.rounds, result.nniAccepted, result.nniTried,
                  result.evaluations);
      std::printf("final logL: %.4f\nML tree: %s\n", result.logL,
                  result.tree.toNewick().c_str());
      return 0;
    }
    mc3::Mc3Options opts;
    opts.chains = args.getInt("chains", 4);
    opts.generations = args.getInt("generations", 200);
    opts.swapInterval = args.getInt("swap-interval", 10);
    opts.seed = static_cast<unsigned>(args.getInt("seed", 42));
    opts.parallelChains = !args.has("serial-chains");

    mc3::EvaluatorFactory factory;
    if (args.has("native")) {
      factory = mc3::makeNativeFactory(args.has("single"),
                                       args.getInt("categories", 4));
    } else {
      phylo::LikelihoodOptions lo;
      lo.categories = args.getInt("categories", 4);
      lo.alpha = args.getDouble("alpha", 0.5);
      const std::string framework = args.get("framework");
      if (framework == "cuda") lo.requirementFlags |= BGL_FLAG_FRAMEWORK_CUDA;
      if (framework == "opencl") lo.requirementFlags |= BGL_FLAG_FRAMEWORK_OPENCL;
      if (framework == "cpu") lo.requirementFlags |= BGL_FLAG_FRAMEWORK_CPU;
      if (args.get("threading") == "pool") {
        lo.requirementFlags |= BGL_FLAG_THREADING_THREAD_POOL;
      }
      if (args.has("single")) lo.requirementFlags |= BGL_FLAG_PRECISION_SINGLE;
      if (args.has("resource")) lo.resources = {args.getInt("resource", 0)};
      lo.traceFile = args.get("trace");
      lo.statsFile = args.get("stats-json");
      if (args.has("auto-resource")) {
        factory = mc3::makeAutoBglFactory(lo, !args.has("model-estimate"));
      } else {
        factory = mc3::makeBglFactory(lo);
      }
    }

    mc3::Mc3Sampler sampler(data, model, opts, factory);
    const auto result = sampler.run();

    std::printf("\nevaluator: %s\n", result.evaluatorName.c_str());
    std::printf("%d generations x %d chains in %.2f s\n", opts.generations,
                opts.chains, result.seconds);
    std::printf("acceptance: %.1f%%, swaps %ld/%ld\n",
                100.0 * result.accepted / result.proposed, result.swapsAccepted,
                result.swapsProposed);
    std::printf("final cold logL: %.4f (best %.4f)\n", result.coldLogL,
                result.bestLogL);
    std::printf("MAP tree: %s\n", result.mapTree.toNewick().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    watch.stop();
    return 1;
  }
  watch.stop();
  return 0;
}
