// Application substrate (MC3 Bayesian engine) and workload harness tests.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/genomictest.h"
#include "mc3/mc3.h"
#include "perfmodel/device_profiles.h"
#include "phylo/seqsim.h"

namespace bgl {
namespace {

mc3::Mc3Options quickOptions() {
  mc3::Mc3Options opts;
  opts.chains = 2;
  opts.generations = 60;
  opts.swapInterval = 5;
  opts.seed = 11;
  opts.parallelChains = false;
  return opts;
}

struct Mc3Problem {
  PatternSet data;
  std::unique_ptr<SubstitutionModel> model;
};

Mc3Problem makeMc3Problem(int taxa, int sites, unsigned seed) {
  Mc3Problem p;
  Rng rng(seed);
  auto tree = phylo::Tree::random(taxa, rng, 0.1);
  std::vector<double> f = {0.3, 0.25, 0.2, 0.25};
  p.model = std::make_unique<HKY85Model>(2.0, f);
  p.data = phylo::simulatePatterns(tree, *p.model, sites, rng);
  return p;
}

TEST(Mc3, RunsAndImprovesLikelihood) {
  auto problem = makeMc3Problem(6, 300, 3);
  mc3::Mc3Sampler sampler(problem.data, *problem.model, quickOptions(),
                          mc3::makeNativeFactory(false));
  const auto result = sampler.run();
  ASSERT_EQ(result.coldTrace.size(), 60u);
  // MCMC from a random start must improve markedly on simulated data.
  EXPECT_GT(result.coldTrace.back(), result.coldTrace.front());
  EXPECT_GE(result.bestLogL, result.coldTrace.front());
  EXPECT_GT(result.accepted, 0);
  EXPECT_LT(result.accepted, result.proposed);
  EXPECT_TRUE(std::isfinite(result.coldLogL));
}

TEST(Mc3, DeterministicForSeed) {
  auto problem = makeMc3Problem(5, 200, 4);
  mc3::Mc3Sampler a(problem.data, *problem.model, quickOptions(),
                    mc3::makeNativeFactory(false));
  mc3::Mc3Sampler b(problem.data, *problem.model, quickOptions(),
                    mc3::makeNativeFactory(false));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.coldTrace, rb.coldTrace);
  EXPECT_EQ(ra.accepted, rb.accepted);
}

TEST(Mc3, ParallelChainsMatchSerialChains) {
  // MPI-style per-chain threads must not change the sampled trajectory
  // (chains only interact at the swap barrier).
  auto problem = makeMc3Problem(5, 200, 5);
  auto serialOpts = quickOptions();
  auto parallelOpts = quickOptions();
  parallelOpts.parallelChains = true;
  mc3::Mc3Sampler a(problem.data, *problem.model, serialOpts,
                    mc3::makeNativeFactory(false));
  mc3::Mc3Sampler b(problem.data, *problem.model, parallelOpts,
                    mc3::makeNativeFactory(false));
  EXPECT_EQ(a.run().coldTrace, b.run().coldTrace);
}

TEST(Mc3, LibraryAndNativeEvaluatorsAgreeOnTrajectory) {
  // Same seeds + numerically equal likelihoods => identical accept/reject
  // decisions and identical traces (double precision).
  auto problem = makeMc3Problem(5, 150, 6);
  phylo::LikelihoodOptions libOpts;
  libOpts.categories = 4;
  libOpts.requirementFlags = BGL_FLAG_THREADING_NONE;
  libOpts.resources = {perf::kHostCpu};

  mc3::Mc3Sampler native(problem.data, *problem.model, quickOptions(),
                         mc3::makeNativeFactory(false));
  mc3::Mc3Sampler lib(problem.data, *problem.model, quickOptions(),
                      mc3::makeBglFactory(libOpts));
  const auto rn = native.run();
  const auto rl = lib.run();
  ASSERT_EQ(rn.coldTrace.size(), rl.coldTrace.size());
  for (std::size_t i = 0; i < rn.coldTrace.size(); ++i) {
    EXPECT_NEAR(rn.coldTrace[i], rl.coldTrace[i], std::abs(rn.coldTrace[i]) * 1e-8);
  }
}

TEST(Mc3, SwapsOccurBetweenHeatedChains) {
  auto problem = makeMc3Problem(6, 200, 7);
  auto opts = quickOptions();
  opts.chains = 4;
  opts.generations = 120;
  opts.heatDelta = 0.3;
  mc3::Mc3Sampler sampler(problem.data, *problem.model, opts,
                          mc3::makeNativeFactory(false));
  const auto result = sampler.run();
  EXPECT_GT(result.swapsProposed, 0);
  EXPECT_GT(result.swapsAccepted, 0);
}

TEST(Mc3, SinglePrecisionNativeStaysFinite) {
  auto problem = makeMc3Problem(10, 400, 8);
  auto opts = quickOptions();
  opts.generations = 30;
  mc3::Mc3Sampler sampler(problem.data, *problem.model, opts,
                          mc3::makeNativeFactory(true));
  const auto result = sampler.run();
  for (double v : result.coldTrace) EXPECT_TRUE(std::isfinite(v));
}

TEST(Mc3, EvaluatorTimelineExposedForLibraryBackend) {
  auto problem = makeMc3Problem(5, 150, 9);
  phylo::LikelihoodOptions libOpts;
  libOpts.requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL;
  libOpts.resources = {perf::kHostCpu};
  auto evaluator = mc3::makeBglFactory(libOpts)(problem.data, *problem.model);
  Rng rng(10);
  auto tree = phylo::Tree::random(problem.data.taxa, rng);
  evaluator->logLikelihood(tree);
  double measured = 0.0, modeled = 0.0;
  EXPECT_TRUE(evaluator->timeline(&measured, &modeled));
  EXPECT_GT(measured, 0.0);
}

// --- Harness -----------------------------------------------------------------

TEST(Harness, FlopAccountingFormula) {
  harness::ProblemSpec spec;
  spec.tips = 5;
  spec.patterns = 100;
  spec.states = 4;
  spec.categories = 2;
  // (tips-1) * p * c * s * (4s-1) = 4 * 100 * 2 * 4 * 15
  EXPECT_DOUBLE_EQ(harness::evaluationFlops(spec), 4.0 * 100 * 2 * 4 * 15);
}

TEST(Harness, FindResourceByName) {
  EXPECT_EQ(harness::findResource("Host CPU"), 0);
  EXPECT_EQ(harness::findResource("R9 Nano"), perf::kRadeonR9Nano);
  EXPECT_EQ(harness::findResource("no-such-device"), -1);
}

class HarnessRun : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(HarnessRun, ProducesPositiveThroughput) {
  const auto [states, accel] = GetParam();
  harness::ProblemSpec spec;
  spec.tips = 6;
  spec.patterns = 600;
  spec.states = states;
  spec.categories = 2;
  spec.reps = 2;
  spec.warmupReps = 1;
  spec.requirementFlags = accel ? BGL_FLAG_FRAMEWORK_OPENCL : BGL_FLAG_FRAMEWORK_CPU;
  const auto result = harness::runThroughput(spec);
  EXPECT_GT(result.gflops, 0.0);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_TRUE(std::isfinite(result.logL));
  EXPECT_LT(result.logL, 0.0);
  EXPECT_FALSE(result.implName.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HarnessRun,
                         ::testing::Combine(::testing::Values(4, 61),
                                            ::testing::Values(false, true)));

TEST(Harness, ModeledDeviceReportsModeledTime) {
  harness::ProblemSpec spec;
  spec.tips = 4;
  spec.patterns = 2000;
  spec.reps = 1;
  spec.resource = perf::kRadeonR9Nano;
  spec.requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL;
  const auto result = harness::runThroughput(spec);
  EXPECT_TRUE(result.modeled);
  EXPECT_GT(result.gflops, 0.0);
}

TEST(Harness, RefusesOversizedProblems) {
  harness::ProblemSpec spec;
  spec.tips = 64;
  spec.patterns = 100000000;  // would exceed the memory guard
  spec.states = 61;
  EXPECT_THROW(harness::runThroughput(spec), Error);
}

TEST(Harness, SingleAndDoublePrecisionBothRun) {
  for (bool single : {false, true}) {
    harness::ProblemSpec spec;
    spec.tips = 4;
    spec.patterns = 400;
    spec.singlePrecision = single;
    spec.reps = 1;
    const auto result = harness::runThroughput(spec);
    EXPECT_GT(result.gflops, 0.0) << "single=" << single;
  }
}

}  // namespace
}  // namespace bgl
