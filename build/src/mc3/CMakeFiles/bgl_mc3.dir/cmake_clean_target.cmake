file(REMOVE_RECURSE
  "libbgl_mc3.a"
)
