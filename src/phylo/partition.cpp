#include "phylo/partition.h"

#include <future>

#include "core/defs.h"

namespace bgl::phylo {

PartitionedLikelihood::PartitionedLikelihood(const Tree& tree,
                                             const std::vector<PartitionSpec>& specs,
                                             bool concurrent)
    : concurrent_(concurrent) {
  if (specs.empty()) throw Error("PartitionedLikelihood: no partitions");
  parts_.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.model == nullptr) throw Error("PartitionedLikelihood: null model");
    parts_.push_back(std::make_unique<TreeLikelihood>(tree, *spec.model, spec.data,
                                                      spec.options));
  }
}

double PartitionedLikelihood::logLikelihood(const Tree& tree) {
  if (!concurrent_ || parts_.size() == 1) {
    double total = 0.0;
    for (auto& part : parts_) total += part->logLikelihood(tree);
    return total;
  }
  // One async evaluation per instance: instances are fully independent
  // (this is the concurrency model client programs use per Section IV-F).
  std::vector<std::future<double>> futures;
  futures.reserve(parts_.size() - 1);
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [this, i, &tree] {
      return parts_[i]->logLikelihood(tree);
    }));
  }
  double total = parts_[0]->logLikelihood(tree);
  for (auto& f : futures) total += f.get();
  return total;
}

std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards) {
  if (shards < 1) throw Error("splitPatterns: need >= 1 shard");
  if (shards > data.patterns) shards = data.patterns;
  std::vector<PatternSet> out(shards);
  for (int s = 0; s < shards; ++s) {
    out[s].taxa = data.taxa;
    out[s].originalSites = 0;
  }
  // Round-robin deal, preserving weights.
  std::vector<std::vector<int>> columns(shards);
  for (int k = 0; k < data.patterns; ++k) columns[k % shards].push_back(k);
  for (int s = 0; s < shards; ++s) {
    auto& shard = out[s];
    shard.patterns = static_cast<int>(columns[s].size());
    shard.states.resize(static_cast<std::size_t>(data.taxa) * shard.patterns);
    shard.weights.reserve(shard.patterns);
    for (int j = 0; j < shard.patterns; ++j) {
      const int k = columns[s][j];
      shard.weights.push_back(data.weights[k]);
      shard.originalSites += static_cast<int>(data.weights[k]);
      for (int t = 0; t < data.taxa; ++t) {
        shard.states[static_cast<std::size_t>(t) * shard.patterns + j] =
            data.at(t, k);
      }
    }
  }
  return out;
}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 bool concurrent)
    : concurrent_(concurrent) {
  if (shardOptions.empty()) throw Error("SplitLikelihood: no shards");
  const auto shardData = splitPatterns(data, static_cast<int>(shardOptions.size()));
  shards_.reserve(shardData.size());
  for (std::size_t s = 0; s < shardData.size(); ++s) {
    shardPatterns_.push_back(shardData[s].patterns);
    shards_.push_back(std::make_unique<TreeLikelihood>(tree, model, shardData[s],
                                                       shardOptions[s]));
  }
}

double SplitLikelihood::logLikelihood(const Tree& tree) {
  if (!concurrent_ || shards_.size() == 1) {
    double total = 0.0;
    for (auto& shard : shards_) total += shard->logLikelihood(tree);
    return total;
  }
  std::vector<std::future<double>> futures;
  futures.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [this, i, &tree] {
      return shards_[i]->logLikelihood(tree);
    }));
  }
  double total = shards_[0]->logLikelihood(tree);
  for (auto& f : futures) total += f.get();
  return total;
}

}  // namespace bgl::phylo
