// Minimal argument parsing for the command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace bgl::tools {

class Args {
 public:
  Args(int argc, char** argv) {
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[arg.substr(2)] = argv[++i];
        } else {
          values_[arg.substr(2)] = "1";  // boolean flag
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int getInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  double getDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bgl::tools
