# Empty dependencies file for bgl_cudasim.
# This may be replaced when dependencies are built.
