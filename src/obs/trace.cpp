#include "obs/trace.h"

#include <bit>

namespace bgl::obs {

const char* counterName(Counter c) {
  switch (c) {
    case Counter::kPartialsOperations: return "partialsOperations";
    case Counter::kTransitionMatrices: return "transitionMatrices";
    case Counter::kRootEvaluations: return "rootEvaluations";
    case Counter::kEdgeEvaluations: return "edgeEvaluations";
    case Counter::kRescaleEvents: return "rescaleEvents";
    case Counter::kScaleAccumulations: return "scaleAccumulations";
    case Counter::kKernelLaunches: return "kernelLaunches";
    case Counter::kBytesIn: return "bytesCopiedIn";
    case Counter::kBytesOut: return "bytesCopiedOut";
    case Counter::kStreamedLaunches: return "streamedLaunches";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* categoryName(Category c) {
  switch (c) {
    case Category::kUpdatePartials: return "updatePartials";
    case Category::kUpdateTransitionMatrices: return "updateTransitionMatrices";
    case Category::kRootLogLikelihoods: return "rootLogLikelihoods";
    case Category::kEdgeLogLikelihoods: return "edgeLogLikelihoods";
    case Category::kOperation: return "operation";
    case Category::kRescale: return "rescale";
    case Category::kScaling: return "scaling";
    case Category::kKernel: return "kernel";
    case Category::kMemcpy: return "memcpy";
    case Category::kWorker: return "worker";
    case Category::kStreamFlush: return "stream.flush";
    case Category::kCount: break;
  }
  return "unknown";
}

bool isTimelineCategory(Category c) {
  switch (c) {
    case Category::kUpdatePartials:
    case Category::kUpdateTransitionMatrices:
    case Category::kRootLogLikelihoods:
    case Category::kEdgeLogLikelihoods:
      return true;
    default:
      return false;
  }
}

void DurationHistogram::record(std::uint64_t ns) {
  if (count == 0 || ns < minNs) minNs = ns;
  if (ns > maxNs) maxNs = ns;
  ++count;
  totalNs += ns;
  const int bucket =
      ns == 0 ? 0 : std::min(kBuckets - 1, static_cast<int>(std::bit_width(ns)) - 1);
  ++buckets[bucket];
}

void TraceRecorder::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  for (auto& h : hist_) h = DurationHistogram{};
  events_.clear();
  dropped_ = 0;
}

void TraceRecorder::recordSpan(Category cat, const char* name,
                               std::uint64_t beginNs, std::uint64_t endNs,
                               int tid) {
  TraceEvent ev;
  ev.category = cat;
  ev.name = name;
  ev.beginNs = beginNs;
  ev.durNs = endNs > beginNs ? endNs - beginNs : 0;
  ev.tid = tid;
  recordEvent(std::move(ev));
}

void TraceRecorder::recordEvent(TraceEvent ev) {
  if (!timingEnabled()) return;
  std::lock_guard lock(mutex_);
  hist_[static_cast<int>(ev.category)].record(ev.durNs);
  if (!eventsEnabled()) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::uint64_t TraceRecorder::categoryCount(Category cat) const {
  std::lock_guard lock(mutex_);
  return hist_[static_cast<int>(cat)].count;
}

double TraceRecorder::categorySeconds(Category cat) const {
  std::lock_guard lock(mutex_);
  return hist_[static_cast<int>(cat)].totalNs * 1e-9;
}

double TraceRecorder::timelineSeconds() const {
  std::lock_guard lock(mutex_);
  std::uint64_t totalNs = 0;
  for (int c = 0; c < static_cast<int>(Category::kCount); ++c) {
    if (isTimelineCategory(static_cast<Category>(c))) {
      totalNs += hist_[c].totalNs;
    }
  }
  return totalNs * 1e-9;
}

DurationHistogram TraceRecorder::histogram(Category cat) const {
  std::lock_guard lock(mutex_);
  return hist_[static_cast<int>(cat)];
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceRecorder::droppedEvents() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

}  // namespace bgl::obs
