// Admission control for the serving layer.
//
// A multi-tenant likelihood service degrades for everyone when any one
// tenant can open unbounded sessions or the async pipelines back up. The
// controller gates every session open with four checks, in order:
//
//   1. global session quota       (maxSessions)
//   2. per-tenant session quota   (maxSessionsPerTenant)
//   3. queue-depth backpressure   (process async pending depth, the
//                                  kPendingDepth gauge the command streams
//                                  export, vs maxPendingDepth)
//   4. load shedding              (summed scheduler-calibrated seconds per
//                                  evaluation of live sessions plus the
//                                  candidate, vs maxEstimatedLoad)
//
// A refusal journals kAdmissionReject (the flight recorder shows who was
// turned away and why) and surfaces BGL_ERROR_REJECTED through the C API.
// Check 4 is what ties the serving layer to src/sched/: the cost of a
// candidate session is sched::estimateEvaluationSeconds — calibration
// cache when warm, perf-model seed otherwise — so shedding decisions use
// the same estimates that drive resource selection and sharding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace bgl::serve {

/// Resolved serving limits (BglPoolConfig with defaults applied).
struct AdmissionConfig {
  int maxSessions = 64;
  int maxSessionsPerTenant = 8;
  long long maxPendingDepth = 4096;
  double maxEstimatedLoad = 0.0;  ///< <= 0: unlimited
};

/// Admission decision counters (monotone).
struct AdmissionCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejectedQuota = 0;
  std::uint64_t rejectedBackpressure = 0;
  std::uint64_t rejectedLoad = 0;
};

/// Tracks live sessions per tenant and applies the checks above.
/// Thread-safe.
class AdmissionController {
 public:
  void setConfig(const AdmissionConfig& config);
  AdmissionConfig config() const;

  /// Gate one session open. `estimatedSeconds` is the candidate's
  /// scheduler-estimated cost per evaluation. On admission the tenant's
  /// live count and the load sum are charged and true is returned; on
  /// refusal the matching rejection counter is bumped, kAdmissionReject
  /// is journaled, `*reason` is set, and false is returned.
  bool admit(const std::string& tenant, double estimatedSeconds,
             std::string* reason);

  /// Release one admitted session's charge (tenant count and load sum).
  void releaseSession(const std::string& tenant, double estimatedSeconds);

  AdmissionCounters counters() const;
  int liveSessions() const;
  double estimatedLoadSeconds() const;

  /// Number of tenants currently holding at least one live session. Bounded
  /// by liveSessions(): the quota check never inserts entries for rejected
  /// tenants, and releaseSession erases a tenant's entry at zero.
  std::size_t trackedTenants() const;

 private:
  mutable std::mutex mutex_;
  AdmissionConfig config_;
  AdmissionCounters counters_;
  std::map<std::string, int> tenantSessions_;
  int liveSessions_ = 0;
  double loadSeconds_ = 0.0;
};

}  // namespace bgl::serve
