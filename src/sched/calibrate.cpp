// Resource calibration: run a short synthetic partials+root workload on a
// resource through the public C API and cache the resulting throughput
// estimate; seed from the perfmodel device profile when calibration is
// skipped or impossible.
#include "sched/sched.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "api/bgl.h"
#include "core/defs.h"
#include "core/gamma.h"
#include "core/model.h"
#include "core/rng.h"
#include "obs/journal.h"
#include "kernels/workload.h"
#include "perfmodel/device_profiles.h"

namespace bgl::sched {
namespace {

struct GlobalCounters {
  std::atomic<std::uint64_t> calibrations{0};
  std::atomic<std::uint64_t> modelEstimates{0};
  std::atomic<std::uint64_t> cacheHits{0};
  std::atomic<std::uint64_t> rebalances{0};
  std::atomic<std::uint64_t> migratedPatterns{0};
  std::atomic<std::uint64_t> failovers{0};
  std::atomic<std::uint64_t> quarantinedShards{0};
  std::atomic<std::uint64_t> calibrationFailures{0};
};

GlobalCounters& globalCounters() {
  static GlobalCounters counters;
  return counters;
}

/// Cache key: every spec field that changes the workload or the viable
/// implementation set.
using CacheKey = std::tuple<int, int, int, int, int, bool, long, long, unsigned>;

CacheKey makeKey(int resource, const CalibrationSpec& spec) {
  return {resource,          spec.tips,
          spec.patterns,     spec.states,
          spec.categories,   spec.singlePrecision,
          spec.preferenceFlags, spec.requirementFlags,
          resolveSeed(spec.seed)};
}

std::mutex& cacheMutex() {
  static std::mutex m;
  return m;
}

std::map<CacheKey, ResourceEstimate>& cache() {
  static std::map<CacheKey, ResourceEstimate> c;
  return c;
}

double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Build the balanced pairwise-join operation batch over `tips` leaves
/// (one buffer per internal node, destinations from `tips` upward).
std::vector<BglOperation> balancedOps(int tips, int matPool, int* rootBuffer) {
  std::vector<BglOperation> ops;
  ops.reserve(tips - 1);
  std::vector<int> level(tips);
  for (int t = 0; t < tips; ++t) level[t] = t;
  int nextInternal = tips;
  int opIndex = 0;
  while (level.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      BglOperation op;
      op.destinationPartials = nextInternal;
      op.destinationScaleWrite = BGL_OP_NONE;
      op.destinationScaleRead = BGL_OP_NONE;
      op.child1Partials = level[i];
      op.child1TransitionMatrix = (2 * opIndex) % matPool;
      op.child2Partials = level[i + 1];
      op.child2TransitionMatrix = (2 * opIndex + 1) % matPool;
      ops.push_back(op);
      next.push_back(nextInternal);
      ++nextInternal;
      ++opIndex;
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  *rootBuffer = level[0];
  return ops;
}

}  // namespace

unsigned resolveSeed(unsigned seed) {
  if (seed != 0) return seed;
  if (const char* env = std::getenv("BGL_SCHED_SEED"); env != nullptr && *env) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v != 0) return static_cast<unsigned>(v);
  }
  return kDefaultSeed;
}

bool resolveSinglePrecision(long preferenceFlags, long requirementFlags) {
  return (requirementFlags & BGL_FLAG_PRECISION_SINGLE) != 0 ||
         ((requirementFlags & BGL_FLAG_PRECISION_DOUBLE) == 0 &&
          (preferenceFlags & BGL_FLAG_PRECISION_SINGLE) != 0);
}

obs::TraceRecorder& recorder() {
  static obs::TraceRecorder rec;
  return rec;
}

Counters counters() {
  auto& g = globalCounters();
  Counters c;
  c.calibrations = g.calibrations.load(std::memory_order_relaxed);
  c.modelEstimates = g.modelEstimates.load(std::memory_order_relaxed);
  c.cacheHits = g.cacheHits.load(std::memory_order_relaxed);
  c.rebalances = g.rebalances.load(std::memory_order_relaxed);
  c.migratedPatterns = g.migratedPatterns.load(std::memory_order_relaxed);
  c.failovers = g.failovers.load(std::memory_order_relaxed);
  c.quarantinedShards = g.quarantinedShards.load(std::memory_order_relaxed);
  c.calibrationFailures =
      g.calibrationFailures.load(std::memory_order_relaxed);
  return c;
}

void noteRebalance(std::uint64_t migratedPatterns) {
  auto& g = globalCounters();
  g.rebalances.fetch_add(1, std::memory_order_relaxed);
  g.migratedPatterns.fetch_add(migratedPatterns, std::memory_order_relaxed);
}

void noteFailover(std::uint64_t quarantined) {
  auto& g = globalCounters();
  g.failovers.fetch_add(1, std::memory_order_relaxed);
  g.quarantinedShards.fetch_add(quarantined, std::memory_order_relaxed);
}

std::optional<ResourceEstimate> benchmarkResource(int resource,
                                                  const CalibrationSpec& spec) {
  if (spec.tips < 2 || spec.patterns < 1) {
    throw Error("benchmarkResource: need >= 2 tips and >= 1 pattern");
  }
  obs::ScopedSpan span(recorder(), obs::Category::kOperation, "sched.calibrate");

  const unsigned seed = resolveSeed(spec.seed);
  const int matPool = std::min(2 * (spec.tips - 1), 16);
  const long precisionFlag = spec.singlePrecision ? BGL_FLAG_PRECISION_SINGLE
                                                  : BGL_FLAG_PRECISION_DOUBLE;

  BglInstanceDetails details{};
  const int instance = bglCreateInstance(
      spec.tips, spec.tips - 1, spec.tips, spec.states, spec.patterns,
      /*eigenBufferCount=*/1, matPool, spec.categories, /*scaleBufferCount=*/0,
      &resource, 1, spec.preferenceFlags, spec.requirementFlags | precisionFlag,
      &details);
  if (instance < 0) return std::nullopt;

  ResourceEstimate estimate;
  estimate.resource = resource;
  estimate.measured = true;
  estimate.implName = details.implName;

  try {
    // Deterministic synthetic model + data (the BGL_SCHED_SEED contract).
    Rng rng(seed);
    const auto model = defaultModelForStates(spec.states, seed);
    const auto es = model->eigenSystem();
    if (bglSetEigenDecomposition(instance, 0, es.evec.data(), es.ivec.data(),
                                 es.eval.data()) != BGL_SUCCESS) {
      throw Error("sched.calibrate: setEigenDecomposition failed");
    }
    bglSetStateFrequencies(instance, 0, model->frequencies().data());
    const std::vector<double> catWeights(spec.categories, 1.0 / spec.categories);
    bglSetCategoryWeights(instance, 0, catWeights.data());
    const auto rates = spec.categories > 1
                           ? discreteGammaRates(0.5, spec.categories)
                           : std::vector<double>{1.0};
    bglSetCategoryRates(instance, rates.data());
    const std::vector<double> patternWeights(spec.patterns, 1.0);
    bglSetPatternWeights(instance, patternWeights.data());

    std::vector<int> tipBuf(spec.patterns);
    for (int t = 0; t < spec.tips; ++t) {
      for (int k = 0; k < spec.patterns; ++k) {
        tipBuf[k] = rng.belowInt(spec.states);
      }
      if (bglSetTipStates(instance, t, tipBuf.data()) != BGL_SUCCESS) {
        throw Error("sched.calibrate: setTipStates failed");
      }
    }

    std::vector<int> matrixIndices(matPool);
    std::vector<double> edgeLengths(matPool);
    for (int m = 0; m < matPool; ++m) {
      matrixIndices[m] = m;
      edgeLengths[m] = rng.uniform(0.01, 0.5);
    }
    if (bglUpdateTransitionMatrices(instance, 0, matrixIndices.data(), nullptr,
                                    nullptr, edgeLengths.data(),
                                    matPool) != BGL_SUCCESS) {
      throw Error("sched.calibrate: updateTransitionMatrices failed");
    }

    int rootBuffer = 0;
    const auto ops = balancedOps(spec.tips, matPool, &rootBuffer);

    // One warmup, then best-of-reps. Accelerator instances report the
    // roofline-modeled timeline; host instances report measured wall time
    // (bglResetTimeline enables span timing there).
    if (bglUpdatePartials(instance, ops.data(), static_cast<int>(ops.size()),
                          BGL_OP_NONE) != BGL_SUCCESS) {
      throw Error("sched.calibrate: updatePartials failed");
    }
    bglWaitForComputation(instance);

    const bool hasTimeline = bglResetTimeline(instance) == BGL_SUCCESS;
    double best = 1e300;
    for (int r = 0; r < std::max(1, spec.reps); ++r) {
      if (hasTimeline) bglResetTimeline(instance);
      const double t0 = wallNow();
      if (bglUpdatePartials(instance, ops.data(), static_cast<int>(ops.size()),
                            BGL_OP_NONE) != BGL_SUCCESS) {
        throw Error("sched.calibrate: updatePartials failed");
      }
      bglWaitForComputation(instance);
      double seconds = wallNow() - t0;
      if (hasTimeline) {
        BglTimeline timeline{};
        if (bglGetTimeline(instance, &timeline) == BGL_SUCCESS &&
            timeline.modeledSeconds > 0.0) {
          seconds = timeline.modeledSeconds;
        }
      }
      best = std::min(best, seconds);
    }

    const int zero = 0;
    const int rc = bglCalculateRootLogLikelihoods(instance, &rootBuffer, &zero,
                                                  &zero, nullptr, 1,
                                                  &estimate.logL);
    if (rc != BGL_SUCCESS && rc != BGL_ERROR_FLOATING_POINT) {
      throw Error("sched.calibrate: calculateRootLogLikelihoods failed");
    }

    estimate.seconds = std::max(best, 1e-12);
    estimate.patternsPerSecond = spec.patterns / estimate.seconds;
    estimate.gflops =
        (spec.tips - 1) *
        kernels::partialsFlops(spec.patterns, spec.categories, spec.states) /
        estimate.seconds / 1e9;
  } catch (...) {
    bglFinalizeInstance(instance);
    throw;
  }
  bglFinalizeInstance(instance);
  globalCounters().calibrations.fetch_add(1, std::memory_order_relaxed);
  return estimate;
}

ResourceEstimate modelEstimate(int resource, const CalibrationSpec& spec) {
  const auto& registry = perf::deviceRegistry();
  if (resource < 0 || resource >= static_cast<int>(registry.size())) {
    throw Error("modelEstimate: resource out of range");
  }
  obs::ScopedSpan span(recorder(), obs::Category::kOperation,
                       "sched.model_estimate");
  const perf::DeviceProfile& device = registry[resource];
  const std::size_t realBytes = spec.singlePrecision ? 4 : 8;

  perf::LaunchWork work;
  work.flops = kernels::partialsFlops(spec.patterns, spec.categories, spec.states);
  work.bytes =
      kernels::partialsBytes(spec.patterns, spec.categories, spec.states, realBytes);
  work.workingSetBytes = kernels::partialsWorkingSet(spec.patterns, spec.categories,
                                                     spec.states, realBytes);
  work.fmaFriendly = true;
  work.useFma = true;
  work.doublePrecision = !spec.singlePrecision;
  work.numGroups = std::max(1, spec.patterns / 256);

  // Framework choice mirrors the accelerator factories: CUDA on NVIDIA,
  // OpenCL elsewhere (including the CPU-class profiles).
  const bool openCl = device.vendor.find("NVIDIA") == std::string::npos;
  const double perOp = perf::modeledKernelSeconds(device, work, openCl);

  ResourceEstimate estimate;
  estimate.resource = resource;
  estimate.measured = false;
  estimate.implName = "perfmodel:" + device.name;
  estimate.seconds = std::max(perOp * (spec.tips - 1), 1e-12);
  estimate.patternsPerSecond = spec.patterns / estimate.seconds;
  estimate.gflops = (spec.tips - 1) * work.flops / estimate.seconds / 1e9;
  globalCounters().modelEstimates.fetch_add(1, std::memory_order_relaxed);
  return estimate;
}

ResourceEstimate resourceEstimate(int resource, const CalibrationSpec& spec,
                                  bool benchmark) {
  const CacheKey key = makeKey(resource, spec);
  {
    std::lock_guard lock(cacheMutex());
    const auto it = cache().find(key);
    // A cached measurement satisfies both request kinds; a cached model
    // seed only satisfies a model request (a benchmark request upgrades it).
    if (it != cache().end() && (it->second.measured || !benchmark)) {
      globalCounters().cacheHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  ResourceEstimate estimate;
  if (benchmark) {
    try {
      if (auto measured = benchmarkResource(resource, spec)) {
        estimate = *measured;
      } else {
        estimate = modelEstimate(resource, spec);
      }
    } catch (const Error& e) {
      // A calibration run that dies mid-workload (device fault, injected
      // or real) must not take the scheduler down with it: fall back to
      // the perf-model seed and keep scheduling.
      globalCounters().calibrationFailures.fetch_add(1,
                                                     std::memory_order_relaxed);
      obs::Journal::instance().append(
          obs::JournalKind::kCalibrationFallback, e.code(), /*instance=*/-1,
          resource, /*shard=*/-1,
          std::string("calibration failed, perf-model seed used: ") + e.what());
      estimate = modelEstimate(resource, spec);
    }
  } else {
    estimate = modelEstimate(resource, spec);
  }

  std::lock_guard lock(cacheMutex());
  cache()[key] = estimate;
  return estimate;
}

std::vector<ResourceEstimate> resourceEstimates(const std::vector<int>& resources,
                                                const CalibrationSpec& spec,
                                                bool benchmark) {
  std::vector<int> ids = resources;
  if (ids.empty()) {
    const int count = static_cast<int>(perf::deviceRegistry().size());
    for (int r = 0; r < count; ++r) ids.push_back(r);
  }
  std::vector<ResourceEstimate> out;
  out.reserve(ids.size());
  for (int r : ids) out.push_back(resourceEstimate(r, spec, benchmark));
  return out;
}

double resourcePerformance(int resource) {
  const auto& registry = perf::deviceRegistry();
  if (resource < 0 || resource >= static_cast<int>(registry.size())) return -1.0;
  double best = -1.0;
  bool haveMeasured = false;
  {
    std::lock_guard lock(cacheMutex());
    for (const auto& [key, estimate] : cache()) {
      if (std::get<0>(key) != resource) continue;
      // Measured estimates outrank model seeds regardless of magnitude.
      if (estimate.measured && !haveMeasured) {
        haveMeasured = true;
        best = estimate.gflops;
      } else if (estimate.measured == haveMeasured) {
        best = std::max(best, estimate.gflops);
      }
    }
  }
  if (best >= 0.0) return best;
  return modelEstimate(resource, CalibrationSpec{}).gflops;
}

int fastestResource(const std::vector<int>& candidates,
                    const CalibrationSpec& spec, bool benchmark) {
  const auto estimates = resourceEstimates(candidates, spec, benchmark);
  int bestResource = -1;
  double bestPerf = -1.0;
  for (const auto& e : estimates) {
    if (e.gflops > bestPerf) {
      bestPerf = e.gflops;
      bestResource = e.resource;
    }
  }
  return bestResource;
}

double estimateEvaluationSeconds(int resource, int patterns, int states,
                                 int categories) {
  const auto& registry = perf::deviceRegistry();
  if (resource < 0 || resource >= static_cast<int>(registry.size())) {
    return -1.0;
  }
  CalibrationSpec spec;
  spec.patterns = patterns > 0 ? patterns : 1;
  spec.states = states > 1 ? states : 4;
  spec.categories = categories > 0 ? categories : 1;
  return resourceEstimate(resource, spec, /*benchmark=*/false).seconds;
}

void clearCache() {
  std::lock_guard lock(cacheMutex());
  cache().clear();
}

}  // namespace bgl::sched
