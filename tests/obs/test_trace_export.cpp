// Exporter tests: the Chrome-trace file must be valid JSON with balanced
// begin/end events per thread, and the stats JSON must reproduce the
// counter values the instance accumulated.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/bgl.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "perfmodel/device_profiles.h"
#include "phylo/likelihood.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader. Only what the tests need: validate
// syntax and surface objects/arrays/strings/numbers as a generic tree.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> fields; // kObject

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skipWs();
    if (!parseValue(out)) return false;
    skipWs();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': out->kind = JsonValue::kString; return parseString(&out->text);
      case 't': out->kind = JsonValue::kBool; out->boolean = true; return literal("true");
      case 'f': out->kind = JsonValue::kBool; out->boolean = false; return literal("false");
      case 'n': out->kind = JsonValue::kNull; return literal("null");
      default: return parseNumber(out);
    }
  }

  bool parseString(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) return false;
            }
            pos_ += 4;
            out->push_back('?');  // tests never inspect escaped chars
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->kind = JsonValue::kNumber;
    return true;
  }

  bool parseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(&key)) return false;
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skipWs();
      JsonValue v;
      if (!parseValue(&v)) return false;
      out->fields.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      JsonValue v;
      if (!parseValue(&v)) return false;
      out->items.push_back(std::move(v));
      skipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tempPath(const char* stem) {
  return ::testing::TempDir() + "/" + stem;
}

/// Parses a Chrome trace file and checks the trace-event invariants:
/// every "B" has a matching later "E" on the same tid (properly nested),
/// timestamps are monotone per tid, and the categories set is returned.
void checkChromeTrace(const std::string& path, std::map<std::string, int>* categories) {
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << path;
  JsonValue root;
  ASSERT_TRUE(JsonReader(text).parse(&root)) << "invalid JSON in " << path;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  std::map<double, std::vector<std::string>> stacks;  // tid -> open span names
  std::map<double, double> lastTs;
  std::map<double, int> flowStarts;  // flow id -> "s" events seen
  int begins = 0, ends = 0;
  for (const auto& ev : events->items) {
    ASSERT_EQ(ev.kind, JsonValue::kObject);
    const JsonValue* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->text == "M") continue;  // metadata (process_name)
    if (ph->text == "s" || ph->text == "f") {
      // Chrome flow events tying the enqueue span to the execution span:
      // every flow opens ("s") before it lands ("f"), keyed by id.
      const JsonValue* id = ev.get("id");
      ASSERT_NE(id, nullptr) << "flow event without id";
      if (ph->text == "s") {
        ++flowStarts[id->number];
      } else {
        EXPECT_GT(flowStarts[id->number], 0)
            << "flow finish without a start, id " << id->number;
      }
      continue;
    }
    const JsonValue* name = ev.get("name");
    const JsonValue* ts = ev.get("ts");
    const JsonValue* tid = ev.get("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(tid, nullptr);
    double& last = lastTs[tid->number];
    EXPECT_GE(ts->number, last) << "timestamps must be monotone per tid";
    last = ts->number;
    auto& stack = stacks[tid->number];
    if (ph->text == "B") {
      ++begins;
      stack.push_back(name->text);
      if (const JsonValue* args = ev.get("args")) {
        if (const JsonValue* cat = args->get("category")) ++(*categories)[cat->text];
      }
    } else {
      ASSERT_EQ(ph->text, "E") << "unexpected phase";
      ++ends;
      ASSERT_FALSE(stack.empty()) << "E without open B on tid " << tid->number;
      EXPECT_EQ(stack.back(), name->text) << "E must close the innermost B";
      stack.pop_back();
    }
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed spans on tid " << tid;
  }
}

TEST(ObsTraceExport, CpuTraceIsValidAndBalanced) {
  const std::string path = tempPath("bgl_cpu_trace.json");
  std::remove(path.c_str());
  {
    auto p = test::makeNucleotideProblem(8, 60, 601);
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = BGL_FLAG_THREADING_THREAD_POOL;
    opts.resources = {perf::kHostCpu};
    phylo::TreeLikelihood like(p.tree, *p.model, p.data, opts);
    ASSERT_EQ(bglSetTraceFile(like.instance(), path.c_str()), BGL_SUCCESS);
    like.logLikelihood();
    like.logLikelihood();
  }  // destructor finalizes the instance, which writes the trace

  std::map<std::string, int> categories;
  checkChromeTrace(path, &categories);
  EXPECT_GT(categories["updatePartials"], 0);
  EXPECT_GT(categories["updateTransitionMatrices"], 0);
  EXPECT_GT(categories["rootLogLikelihoods"], 0);
  std::remove(path.c_str());
}

TEST(ObsTraceExport, AcceleratorTraceHasKernelAndMemcpySpans) {
  const std::string path = tempPath("bgl_accel_trace.json");
  std::remove(path.c_str());
  {
    auto p = test::makeNucleotideProblem(8, 60, 602);
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = BGL_FLAG_FRAMEWORK_CUDA;
    opts.resources = {perf::kQuadroP5000};
    phylo::TreeLikelihood like(p.tree, *p.model, p.data, opts);
    ASSERT_EQ(bglSetTraceFile(like.instance(), path.c_str()), BGL_SUCCESS);
    like.logLikelihood();
  }

  std::map<std::string, int> categories;
  checkChromeTrace(path, &categories);
  EXPECT_GT(categories["kernel"], 0);
  EXPECT_GT(categories["memcpy"], 0);
  EXPECT_GT(categories["updatePartials"], 0);
  std::remove(path.c_str());
}

TEST(ObsTraceExport, StatsJsonMatchesCounters) {
  const std::string path = tempPath("bgl_stats.json");
  std::remove(path.c_str());
  unsigned long long wantOps = 0;
  {
    auto p = test::makeNucleotideProblem(6, 40, 603);
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
    opts.resources = {perf::kHostCpu};
    phylo::TreeLikelihood like(p.tree, *p.model, p.data, opts);
    ASSERT_EQ(bglSetStatsFile(like.instance(), path.c_str()), BGL_SUCCESS);
    like.logLikelihood();
    BglStatistics stats{};
    ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
    wantOps = stats.partialsOperations;
    EXPECT_GT(wantOps, 0u);
  }

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << path;
  JsonValue root;
  ASSERT_TRUE(JsonReader(text).parse(&root)) << "invalid JSON in " << path;
  const JsonValue* counters = root.get("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* ops = counters->get("partialsOperations");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(static_cast<unsigned long long>(ops->number), wantOps);
  // Stats mode enables span timing, so category timings must be present.
  const JsonValue* catObj = root.get("categories");
  ASSERT_NE(catObj, nullptr);
  EXPECT_NE(catObj->get("updatePartials"), nullptr);
  const JsonValue* impl = root.get("implementation");
  ASSERT_NE(impl, nullptr);
  EXPECT_FALSE(impl->text.empty());
  std::remove(path.c_str());
}

TEST(ObsTraceExport, DuplicateTracePathsAreUniquified) {
  const std::string path = tempPath("bgl_dup_trace.json");
  std::remove(path.c_str());
  auto p = test::makeNucleotideProblem(6, 30, 604);
  phylo::LikelihoodOptions opts;
  opts.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  opts.resources = {perf::kHostCpu};

  auto a = std::make_unique<phylo::TreeLikelihood>(p.tree, *p.model, p.data, opts);
  auto b = std::make_unique<phylo::TreeLikelihood>(p.tree, *p.model, p.data, opts);
  ASSERT_EQ(bglSetTraceFile(a->instance(), path.c_str()), BGL_SUCCESS);
  ASSERT_EQ(bglSetTraceFile(b->instance(), path.c_str()), BGL_SUCCESS);
  const std::string uniquified = path + ".i" + std::to_string(b->instance());
  a->logLikelihood();
  b->logLikelihood();
  a.reset();
  b.reset();

  EXPECT_FALSE(slurp(path).empty());
  EXPECT_FALSE(slurp(uniquified).empty()) << uniquified;
  std::remove(path.c_str());
  std::remove(uniquified.c_str());
}

TEST(ObsTraceExport, UnsetCancelsExport) {
  const std::string path = tempPath("bgl_cancelled_trace.json");
  std::remove(path.c_str());
  {
    auto p = test::makeNucleotideProblem(6, 30, 605);
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
    opts.resources = {perf::kHostCpu};
    phylo::TreeLikelihood like(p.tree, *p.model, p.data, opts);
    ASSERT_EQ(bglSetTraceFile(like.instance(), path.c_str()), BGL_SUCCESS);
    like.logLikelihood();
    ASSERT_EQ(bglSetTraceFile(like.instance(), nullptr), BGL_SUCCESS);
  }
  EXPECT_TRUE(slurp(path).empty()) << "cancelled trace must not be written";
}

// Direct exporter test without the C API: empty recorder still produces a
// valid (if boring) document, and the JsonWriter escapes control characters.
TEST(ObsTraceExport, EmptyRecorderStillValid) {
  obs::TraceRecorder recorder;
  std::ostringstream trace;
  obs::writeChromeTrace(trace, recorder, "empty \"proc\"\n");
  JsonValue root;
  std::string text = trace.str();
  ASSERT_TRUE(JsonReader(text).parse(&root)) << text;

  std::ostringstream stats;
  obs::writeStatsJson(stats, recorder, "none", "none");
  text = stats.str();
  ASSERT_TRUE(JsonReader(text).parse(&root)) << text;
}

}  // namespace
}  // namespace bgl
