// Instance pool for the serving layer: leases of live library instances
// keyed by (resource, shape class).
//
// A long-lived likelihood service churns through short analyses; paying
// bglCreateInstance + calibration + bglFinalizeInstance per request is
// the dominant cost at high request rates (the motivation in ISSUE 8 and
// the OnlineCalculator pattern in sts). The pool keeps finalized-would-be
// instances on a free list instead: an acquire with a matching shape
// class recycles one (counters say how often), a release parks it with an
// idle timestamp, and a sweep finalizes instances idle past the
// configured horizon.
//
// Shape class: (resource, states, patterns, categories, flags) must match
// exactly — a partials buffer is shaped by all of them — plus a tip
// capacity bucket quantized to powers of two, so trees that grow online
// re-lease from a small number of buckets instead of fragmenting the pool
// per taxon count. Outgrowing a lease is handled by grow(): the old
// instance is finalized and a larger one created in its place (the
// "grow-on-demand reinit" the sts exemplar resolves with a hard throw).
//
// Failure injection: every instance creation — first acquire and grow
// alike — passes a fault::Injector host-allocation checkpoint, so
// `BGL_FAULT=host:alloc:N` makes the Nth pooled creation fail
// deterministically (docs/ROBUSTNESS.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace bgl::serve {

/// Shape class a pooled instance serves. Two leases are interchangeable
/// exactly when their keys compare equal.
struct PoolKey {
  int resource = 0;
  int states = 4;
  int patterns = 0;
  int categories = 1;
  long preferenceFlags = 0;
  long requirementFlags = 0;
  int tipCapacity = 0;  ///< quantized (power of two, >= kMinTipCapacity)

  friend bool operator<(const PoolKey& a, const PoolKey& b) {
    return std::tie(a.resource, a.states, a.patterns, a.categories,
                    a.preferenceFlags, a.requirementFlags, a.tipCapacity) <
           std::tie(b.resource, b.states, b.patterns, b.categories,
                    b.preferenceFlags, b.requirementFlags, b.tipCapacity);
  }
  friend bool operator==(const PoolKey& a, const PoolKey& b) {
    return !(a < b) && !(b < a);
  }
};

/// Smallest tip capacity the pool provisions; smaller requests round up.
inline constexpr int kMinTipCapacity = 8;

/// Tip capacity bucket for `tips` taxa: the smallest power of two >= tips
/// and >= kMinTipCapacity.
int quantizeTipCapacity(int tips);

/// A leased instance. Movable value; release() returns it to the pool.
struct Lease {
  int instance = -1;          ///< live C API instance id
  PoolKey key;                ///< free-list bucket identity
  std::string implName;      ///< implementation serving the lease
  std::string resourceName;
  bool valid() const { return instance >= 0; }
};

/// Pool activity counters (monotone since process start).
struct PoolCounters {
  std::uint64_t created = 0;   ///< instances created (first leases + grows)
  std::uint64_t recycled = 0;  ///< acquisitions served from the free list
  std::uint64_t grows = 0;     ///< grow-on-demand reinits applied
  std::uint64_t evictions = 0; ///< idle instances finalized
};

/// Pool occupancy snapshot.
struct PoolStats {
  int pooled = 0;  ///< instances the pool owns (leased + free)
  int free_ = 0;   ///< instances parked on the free list
  PoolCounters counters;
};

/// Process-wide instance pool. All methods are thread-safe; instance
/// creation and finalization run outside the pool lock.
class InstancePool {
 public:
  static InstancePool& instance();

  /// Lease an instance for the given shape and at least `minTips` taxa.
  /// Recycles a free instance when the bucket has one, otherwise creates
  /// (host-alloc fault checkpoint, then bglCreateInstance). Throws
  /// bgl::Error when creation fails.
  Lease acquire(int resource, int states, int patterns, int categories,
                long preferenceFlags, long requirementFlags, int minTips);

  /// Replace `lease` with a larger-capacity instance of the same shape
  /// (capacity bucket for `minTips`). The old instance is finalized, the
  /// reinit is journaled (kPoolReinit), and the new lease returned. On
  /// failure the old instance is already gone — the caller's session is
  /// dead either way — and bgl::Error is thrown.
  Lease grow(Lease lease, int minTips);

  /// Return a lease to the free list (idle clock starts now), then sweep
  /// with the configured idle horizon.
  void release(Lease lease);

  /// Set the idle horizon used by opportunistic sweeps (milliseconds).
  void setIdleEvictMs(int idleEvictMs);

  /// Finalize free instances idle for at least `idleMs` milliseconds
  /// (0 = every free instance). Returns how many were evicted.
  int trim(int idleMs);

  PoolStats stats() const;

  InstancePool(const InstancePool&) = delete;
  InstancePool& operator=(const InstancePool&) = delete;

 private:
  InstancePool() = default;

  struct FreeEntry {
    Lease lease;
    std::chrono::steady_clock::time_point idleSince;
  };

  /// Create a fresh instance for `key` (called without the lock held):
  /// host-alloc fault checkpoint, then bglCreateInstance. Throws
  /// bgl::Error on failure.
  Lease create(const PoolKey& key);

  mutable std::mutex mutex_;
  std::map<PoolKey, std::vector<FreeEntry>> free_;
  int leased_ = 0;  ///< leases currently out
  int idleEvictMs_ = 30000;
  PoolCounters counters_;
};

}  // namespace bgl::serve
