// The framework-independent accelerator implementation (Fig. 3's
// "accelerator model"). It speaks only to the HAL Device interface, so the
// identical code drives the CUDA-style and OpenCL-style runtimes; all
// framework- and hardware-specific behaviour lives below the interface.
//
// Minimizing host<->device traffic shapes this class, as it shaped BEAGLE:
// transition matrices, partials, scaling, root/edge integration and the
// final site-likelihood reduction all execute on the device; only scalar
// results and explicitly requested buffers cross back.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "api/implementation.h"
#include "hal/hal.h"
#include "kernels/kernels.h"
#include "kernels/workload.h"

namespace bgl::accel {

template <RealScalar Real>
class AccelImpl : public Implementation {
 public:
  AccelImpl(const InstanceConfig& cfg, hal::DevicePtr device)
      : device_(std::move(device)) {
    config_ = cfg;
    // The runtime emits kernel-launch and memcpy events (with device and
    // framework metadata) into this instance's recorder.
    device_->setRecorder(&recorder_);
    variant_ = (cfg.flags & BGL_FLAG_KERNEL_X86_STYLE)
                   ? hal::KernelVariant::X86Style
                   : (cfg.flags & BGL_FLAG_KERNEL_GPU_STYLE)
                         ? hal::KernelVariant::GpuStyle
                         : defaultVariant();
    useFma_ = (cfg.flags & BGL_FLAG_FMA_OFF) == 0 && device_->profile().fastFma;

    const auto& c = config_;
    partials_.resize(c.bufferCount());
    tipStates_.resize(c.bufferCount());

    // One allocation per buffer family, addressed through sub-regions —
    // pointer arithmetic under CUDA, sub-buffer objects under OpenCL.
    matrixStride_ = alignUp(matrixSize() * sizeof(Real));
    matrixAlloc_ = device_->alloc(matrixStride_ * c.matrixBufferCount);
    matrices_.reserve(c.matrixBufferCount);
    for (int i = 0; i < c.matrixBufferCount; ++i) {
      matrices_.push_back(
          device_->subBuffer(matrixAlloc_, matrixStride_ * i, matrixSize() * sizeof(Real)));
    }

    if (c.scaleBufferCount > 0) {
      scaleStride_ = alignUp(static_cast<std::size_t>(c.patternCount) * sizeof(Real));
      scaleAlloc_ = device_->alloc(scaleStride_ * c.scaleBufferCount);
      scale_.reserve(c.scaleBufferCount);
      for (int i = 0; i < c.scaleBufferCount; ++i) {
        scale_.push_back(device_->subBuffer(
            scaleAlloc_, scaleStride_ * i,
            static_cast<std::size_t>(c.patternCount) * sizeof(Real)));
        zeroBuffer(*scale_.back());
      }
    }

    cijk_.resize(c.eigenBufferCount);
    eval_.resize(c.eigenBufferCount);
    freqs_.resize(c.eigenBufferCount);
    weights_.resize(c.eigenBufferCount);
    for (int i = 0; i < c.eigenBufferCount; ++i) {
      freqs_[i] = device_->alloc(static_cast<std::size_t>(c.stateCount) * sizeof(Real));
      weights_[i] = device_->alloc(static_cast<std::size_t>(c.categoryCount) * sizeof(Real));
    }
    rates_ = device_->alloc(static_cast<std::size_t>(c.categoryCount) * sizeof(Real));
    {
      std::vector<Real> ones(c.categoryCount, Real(1));
      device_->copyToDevice(*rates_, 0, ones.data(), ones.size() * sizeof(Real));
    }
    patternWeights_ = device_->alloc(static_cast<std::size_t>(c.patternCount) * sizeof(Real));
    {
      std::vector<Real> ones(c.patternCount, Real(1));
      device_->copyToDevice(*patternWeights_, 0, ones.data(), ones.size() * sizeof(Real));
    }
    siteLogL_ = device_->alloc(static_cast<std::size_t>(c.patternCount) * sizeof(Real));
    siteD1_ = device_->alloc(static_cast<std::size_t>(c.patternCount) * sizeof(Real));
    siteD2_ = device_->alloc(static_cast<std::size_t>(c.patternCount) * sizeof(Real));
    result_ = device_->alloc(sizeof(double));
  }

  std::string implName() const override {
    return device_->frameworkName() + "-" +
           (variant_ == hal::KernelVariant::X86Style ? "x86" : "GPU") + ":" +
           device_->profile().name;
  }

  hal::Device& device() { return *device_; }

  // ------------------------------------------------------------------

  int setTipStates(int tipIndex, const int* inStates) override {
    if (tipIndex < 0 || tipIndex >= config_.tipCount) return BGL_ERROR_OUT_OF_RANGE;
    auto& buf = tipStates_[tipIndex];
    if (buf == nullptr) {
      if (compactUsed_ >= config_.compactBufferCount) return BGL_ERROR_OUT_OF_RANGE;
      ++compactUsed_;
      buf = device_->alloc(static_cast<std::size_t>(config_.patternCount) *
                           sizeof(std::int32_t));
    }
    std::vector<std::int32_t> staged(config_.patternCount);
    for (int k = 0; k < config_.patternCount; ++k) {
      const int s = inStates[k];
      staged[k] = (s < 0 || s >= config_.stateCount) ? config_.stateCount : s;
    }
    device_->copyToDevice(*buf, 0, staged.data(), staged.size() * sizeof(std::int32_t));
    return BGL_SUCCESS;
  }

  int setTipPartials(int tipIndex, const double* inPartials) override {
    if (tipIndex < 0 || tipIndex >= config_.tipCount) return BGL_ERROR_OUT_OF_RANGE;
    ensurePartials(tipIndex);
    const int p = config_.patternCount;
    const int s = config_.stateCount;
    std::vector<Real> staged(partialsSize());
    for (int c = 0; c < config_.categoryCount; ++c) {
      Real* plane = staged.data() + static_cast<std::size_t>(c) * p * s;
      for (std::size_t i = 0; i < static_cast<std::size_t>(p) * s; ++i) {
        plane[i] = static_cast<Real>(inPartials[i]);
      }
    }
    device_->copyToDevice(*partials_[tipIndex], 0, staged.data(),
                          staged.size() * sizeof(Real));
    return BGL_SUCCESS;
  }

  int setPartials(int bufferIndex, const double* inPartials) override {
    if (bufferIndex < 0 || bufferIndex >= config_.bufferCount()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    ensurePartials(bufferIndex);
    std::vector<Real> staged(partialsSize());
    for (std::size_t i = 0; i < staged.size(); ++i) {
      staged[i] = static_cast<Real>(inPartials[i]);
    }
    device_->copyToDevice(*partials_[bufferIndex], 0, staged.data(),
                          staged.size() * sizeof(Real));
    return BGL_SUCCESS;
  }

  int getPartials(int bufferIndex, double* outPartials) override {
    if (bufferIndex < 0 || bufferIndex >= config_.bufferCount() ||
        partials_[bufferIndex] == nullptr) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    std::vector<Real> staged(partialsSize());
    device_->copyToHost(staged.data(), *partials_[bufferIndex], 0,
                        staged.size() * sizeof(Real));
    for (std::size_t i = 0; i < staged.size(); ++i) {
      outPartials[i] = static_cast<double>(staged[i]);
    }
    return BGL_SUCCESS;
  }

  int setStateFrequencies(int index, const double* inFreqs) override {
    if (index < 0 || index >= config_.eigenBufferCount) return BGL_ERROR_OUT_OF_RANGE;
    copyConverted(*freqs_[index], inFreqs, config_.stateCount);
    return BGL_SUCCESS;
  }

  int setCategoryWeights(int index, const double* inWeights) override {
    if (index < 0 || index >= config_.eigenBufferCount) return BGL_ERROR_OUT_OF_RANGE;
    copyConverted(*weights_[index], inWeights, config_.categoryCount);
    return BGL_SUCCESS;
  }

  int setCategoryRates(const double* inRates) override {
    copyConverted(*rates_, inRates, config_.categoryCount);
    return BGL_SUCCESS;
  }

  int setPatternWeights(const double* inWeights) override {
    copyConverted(*patternWeights_, inWeights, config_.patternCount);
    return BGL_SUCCESS;
  }

  int setEigenDecomposition(int eigenIndex, const double* evec, const double* ivec,
                            const double* eval) override {
    if (eigenIndex < 0 || eigenIndex >= config_.eigenBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    const int s = config_.stateCount;
    std::vector<Real> cijk(static_cast<std::size_t>(s) * s * s);
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        Real* out = cijk.data() + (static_cast<std::size_t>(i) * s + j) * s;
        for (int k = 0; k < s; ++k) {
          out[k] = static_cast<Real>(evec[static_cast<std::size_t>(i) * s + k] *
                                     ivec[static_cast<std::size_t>(k) * s + j]);
        }
      }
    }
    if (cijk_[eigenIndex] == nullptr) {
      cijk_[eigenIndex] = device_->alloc(cijk.size() * sizeof(Real));
      eval_[eigenIndex] = device_->alloc(static_cast<std::size_t>(s) * sizeof(Real));
    }
    device_->copyToDevice(*cijk_[eigenIndex], 0, cijk.data(), cijk.size() * sizeof(Real));
    copyConverted(*eval_[eigenIndex], eval, s);
    return BGL_SUCCESS;
  }

  int updateTransitionMatrices(int eigenIndex, const int* probIndices,
                               const int* d1Indices, const int* d2Indices,
                               const double* edgeLengths, int count) override {
    if (eigenIndex < 0 || eigenIndex >= config_.eigenBufferCount ||
        cijk_[eigenIndex] == nullptr) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    if ((d1Indices == nullptr) != (d2Indices == nullptr)) {
      return BGL_ERROR_UNIMPLEMENTED;
    }
    obs::ScopedSpan span(recorder_, obs::Category::kUpdateTransitionMatrices,
                         "updateTransitionMatrices");
    recorder_.count(obs::Counter::kTransitionMatrices,
                    static_cast<std::uint64_t>(count));
    const bool derivs = d1Indices != nullptr;
    const int s = config_.stateCount;
    const int c = config_.categoryCount;

    hal::KernelSpec spec;
    spec.id = derivs ? hal::KernelId::TransitionMatricesDerivs
                     : hal::KernelId::TransitionMatrices;
    spec.states = s;
    spec.singlePrecision = std::is_same_v<Real, float>;
    spec.variant = variant_;
    spec.useFma = useFma_;
    hal::Kernel* kernel = device_->getKernel(spec);

    if (!derivs) {
      // Batched path: ONE launch computes all edges' matrices. One launch
      // per edge would make launch overhead dominate whole-tree updates on
      // high-overhead devices.
      for (int e = 0; e < count; ++e) {
        if (probIndices[e] < 0 || probIndices[e] >= config_.matrixBufferCount) {
          return BGL_ERROR_OUT_OF_RANGE;
        }
      }
      if (edgeScratch_ == nullptr) {
        edgeScratch_ = device_->alloc(
            static_cast<std::size_t>(config_.matrixBufferCount) * sizeof(Real));
        indexScratch_ = device_->alloc(
            static_cast<std::size_t>(config_.matrixBufferCount) * sizeof(std::int32_t));
      }
      std::vector<Real> lengths(count);
      std::vector<std::int32_t> indices(count);
      for (int e = 0; e < count; ++e) {
        lengths[e] = static_cast<Real>(edgeLengths[e]);
        indices[e] = probIndices[e];
      }
      device_->copyToDevice(*edgeScratch_, 0, lengths.data(),
                            lengths.size() * sizeof(Real));
      device_->copyToDevice(*indexScratch_, 0, indices.data(),
                            indices.size() * sizeof(std::int32_t));

      hal::KernelArgs args;
      args.buffers[0] = matrixAlloc_->data();
      args.buffers[1] = cijk_[eigenIndex]->data();
      args.buffers[2] = eval_[eigenIndex]->data();
      args.buffers[3] = rates_->data();
      args.buffers[6] = edgeScratch_->data();
      args.buffers[7] = indexScratch_->data();
      args.ints[0] = c;
      args.ints[1] = s;
      args.ints[2] = count;
      args.ints[3] = static_cast<std::int64_t>(matrixStride_ / sizeof(Real));

      hal::LaunchDims dims;
      dims.numGroups = count * c;
      dims.groupSize = s * s;

      perf::LaunchWork work;
      work.flops = count * kernels::matrixFlops(c, s, false);
      work.bytes = count * kernels::matrixBytes(c, s, sizeof(Real), false);
      work.fmaFriendly = true;
      work.doublePrecision = !spec.singlePrecision;
      work.useFma = useFma_;
      work.numGroups = dims.numGroups;
      device_->launch(*kernel, dims, args, work);
      return BGL_SUCCESS;
    }

    for (int e = 0; e < count; ++e) {
      if (probIndices[e] < 0 || probIndices[e] >= config_.matrixBufferCount) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      hal::KernelArgs args;
      args.buffers[0] = matrices_[probIndices[e]]->data();
      args.buffers[1] = cijk_[eigenIndex]->data();
      args.buffers[2] = eval_[eigenIndex]->data();
      args.buffers[3] = rates_->data();
      if (derivs) {
        if (d1Indices[e] < 0 || d1Indices[e] >= config_.matrixBufferCount ||
            d2Indices[e] < 0 || d2Indices[e] >= config_.matrixBufferCount) {
          return BGL_ERROR_OUT_OF_RANGE;
        }
        args.buffers[4] = matrices_[d1Indices[e]]->data();
        args.buffers[5] = matrices_[d2Indices[e]]->data();
      }
      args.ints[0] = c;
      args.ints[1] = s;
      args.reals[0] = edgeLengths[e];

      hal::LaunchDims dims;
      dims.numGroups = c;
      dims.groupSize = s * s;

      perf::LaunchWork work;
      work.flops = kernels::matrixFlops(c, s, derivs);
      work.bytes = kernels::matrixBytes(c, s, sizeof(Real), derivs);
      work.fmaFriendly = true;
      work.doublePrecision = !spec.singlePrecision;
      work.useFma = useFma_;
      device_->launch(*kernel, dims, args, work);
    }
    return BGL_SUCCESS;
  }

  int setTransitionMatrix(int matrixIndex, const double* inMatrix,
                          double /*paddedValue*/) override {
    if (matrixIndex < 0 || matrixIndex >= config_.matrixBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    copyConverted(*matrices_[matrixIndex], inMatrix, static_cast<int>(matrixSize()));
    return BGL_SUCCESS;
  }

  int getTransitionMatrix(int matrixIndex, double* outMatrix) override {
    if (matrixIndex < 0 || matrixIndex >= config_.matrixBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    std::vector<Real> staged(matrixSize());
    device_->copyToHost(staged.data(), *matrices_[matrixIndex], 0,
                        staged.size() * sizeof(Real));
    for (std::size_t i = 0; i < staged.size(); ++i) {
      outMatrix[i] = static_cast<double>(staged[i]);
    }
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------

  int updatePartials(const BglOperation* operations, int count,
                     int cumulativeScaleIndex) override {
    // SCALING_ALWAYS: see the flag's documentation — the library assigns
    // per-operation scale buffers and maintains the final buffer as the
    // cumulative one across each batch.
    std::vector<BglOperation> rewritten;
    if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) && config_.scaleBufferCount > 0) {
      rewritten.assign(operations, operations + count);
      for (auto& op : rewritten) {
        if (op.destinationScaleWrite == BGL_OP_NONE) {
          op.destinationScaleWrite = op.destinationPartials - config_.tipCount;
        }
      }
      operations = rewritten.data();
      cumulativeScaleIndex = autoCumulativeIndex();
      const int rc = resetScaleFactors(cumulativeScaleIndex);
      if (rc != BGL_SUCCESS) return rc;
    }
    if (cumulativeScaleIndex != BGL_OP_NONE && !validScale(cumulativeScaleIndex)) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    obs::ScopedSpan span(recorder_, obs::Category::kUpdatePartials,
                         "updatePartials");
    recorder_.count(obs::Counter::kPartialsOperations,
                    static_cast<std::uint64_t>(count));
    for (int i = 0; i < count; ++i) {
      const int rc = executeOperation(operations[i], cumulativeScaleIndex);
      if (rc != BGL_SUCCESS) return rc;
    }
    return BGL_SUCCESS;
  }

  int accumulateScaleFactors(const int* scaleIndices, int count,
                             int cumulativeScaleIndex) override {
    obs::ScopedSpan span(recorder_, obs::Category::kScaling, "accumulateScaleFactors");
    recorder_.count(obs::Counter::kScaleAccumulations,
                    static_cast<std::uint64_t>(count));
    return scaleOp(scaleIndices, count, cumulativeScaleIndex, +1);
  }

  int removeScaleFactors(const int* scaleIndices, int count,
                         int cumulativeScaleIndex) override {
    obs::ScopedSpan span(recorder_, obs::Category::kScaling, "removeScaleFactors");
    recorder_.count(obs::Counter::kScaleAccumulations,
                    static_cast<std::uint64_t>(count));
    return scaleOp(scaleIndices, count, cumulativeScaleIndex, -1);
  }

  int resetScaleFactors(int cumulativeScaleIndex) override {
    if (!validScale(cumulativeScaleIndex)) return BGL_ERROR_OUT_OF_RANGE;
    hal::KernelSpec spec = baseSpec(hal::KernelId::ResetScale);
    hal::KernelArgs args;
    args.buffers[0] = scale_[cumulativeScaleIndex]->data();
    args.ints[0] = config_.patternCount;
    device_->launch(*device_->getKernel(spec), {1, 1, 0}, args,
                    scaleWork(/*buffers=*/1));
    return BGL_SUCCESS;
  }

  int calculateRootLogLikelihoods(const int* bufferIndices, const int* weightIndices,
                                  const int* freqIndices, const int* scaleIndices,
                                  int count, double* outSumLogLikelihood) override {
    obs::ScopedSpan span(recorder_, obs::Category::kRootLogLikelihoods,
                         "rootLogLikelihoods");
    recorder_.count(obs::Counter::kRootEvaluations,
                    static_cast<std::uint64_t>(count));
    double total = 0.0;
    for (int n = 0; n < count; ++n) {
      const int b = bufferIndices[n];
      if (b < 0 || b >= config_.bufferCount() || partials_[b] == nullptr) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (!validEigenSlot(weightIndices[n]) || !validEigenSlot(freqIndices[n])) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      void* cum = nullptr;
      if (scaleIndices != nullptr && scaleIndices[n] != BGL_OP_NONE) {
        if (!validScale(scaleIndices[n])) return BGL_ERROR_OUT_OF_RANGE;
        cum = scale_[scaleIndices[n]]->data();
      } else if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) &&
                 config_.scaleBufferCount > 0) {
        cum = scale_[autoCumulativeIndex()]->data();
      }

      hal::KernelSpec spec = baseSpec(hal::KernelId::RootLikelihood);
      hal::KernelArgs args;
      args.buffers[0] = partials_[b]->data();
      args.buffers[1] = freqs_[freqIndices[n]]->data();
      args.buffers[2] = weights_[weightIndices[n]]->data();
      args.buffers[3] = siteLogL_->data();
      args.buffers[4] = cum;
      const int ppg = integratePpg();
      args.ints[0] = config_.patternCount;
      args.ints[1] = config_.categoryCount;
      args.ints[2] = config_.stateCount;
      args.ints[3] = ppg;

      hal::LaunchDims dims;
      dims.numGroups = (config_.patternCount + ppg - 1) / ppg;
      dims.groupSize = ppg;

      perf::LaunchWork work;
      work.flops = kernels::rootFlops(config_.patternCount, config_.categoryCount,
                                      config_.stateCount);
      work.bytes = kernels::rootBytes(config_.patternCount, config_.categoryCount,
                                      config_.stateCount, sizeof(Real));
      work.fmaFriendly = true;
      work.doublePrecision = !spec.singlePrecision;
      work.useFma = useFma_;
      device_->launch(*device_->getKernel(spec), dims, args, work);

      total += reduceSites(*siteLogL_);
    }
    *outSumLogLikelihood = total;
    return std::isfinite(total) ? BGL_SUCCESS : BGL_ERROR_FLOATING_POINT;
  }

  int calculateEdgeLogLikelihoods(const int* parentIndices, const int* childIndices,
                                  const int* probIndices, const int* d1Indices,
                                  const int* d2Indices, const int* weightIndices,
                                  const int* freqIndices, const int* scaleIndices,
                                  int count, double* outSumLogLikelihood,
                                  double* outSumFirstDerivative,
                                  double* outSumSecondDerivative) override {
    obs::ScopedSpan span(recorder_, obs::Category::kEdgeLogLikelihoods,
                         "edgeLogLikelihoods");
    recorder_.count(obs::Counter::kEdgeEvaluations,
                    static_cast<std::uint64_t>(count));
    const bool derivs = d1Indices != nullptr && d2Indices != nullptr &&
                        outSumFirstDerivative != nullptr &&
                        outSumSecondDerivative != nullptr;
    double total = 0.0, totalD1 = 0.0, totalD2 = 0.0;
    for (int n = 0; n < count; ++n) {
      const int pb = parentIndices[n];
      const int cb = childIndices[n];
      if (pb < 0 || pb >= config_.bufferCount() || partials_[pb] == nullptr) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (cb < 0 || cb >= config_.bufferCount()) return BGL_ERROR_OUT_OF_RANGE;
      if (probIndices[n] < 0 || probIndices[n] >= config_.matrixBufferCount) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (!validEigenSlot(weightIndices[n]) || !validEigenSlot(freqIndices[n])) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const bool childStates = tipStates_[cb] != nullptr;
      if (!childStates && partials_[cb] == nullptr) return BGL_ERROR_OUT_OF_RANGE;

      hal::KernelSpec spec = baseSpec(derivs ? hal::KernelId::EdgeLikelihoodDerivs
                                             : hal::KernelId::EdgeLikelihood);
      hal::KernelArgs args;
      args.buffers[0] = partials_[pb]->data();
      args.buffers[1] = childStates ? tipStates_[cb]->data() : partials_[cb]->data();
      args.buffers[2] = matrices_[probIndices[n]]->data();
      args.buffers[3] = freqs_[freqIndices[n]]->data();
      args.buffers[4] = weights_[weightIndices[n]]->data();
      args.buffers[5] = siteLogL_->data();
      if (derivs) {
        if (d1Indices[n] < 0 || d1Indices[n] >= config_.matrixBufferCount ||
            d2Indices[n] < 0 || d2Indices[n] >= config_.matrixBufferCount) {
          return BGL_ERROR_OUT_OF_RANGE;
        }
        args.buffers[6] = siteD1_->data();
        args.buffers[7] = siteD2_->data();
        args.buffers[8] = matrices_[d1Indices[n]]->data();
        args.buffers[9] = matrices_[d2Indices[n]]->data();
      }
      if (scaleIndices != nullptr && scaleIndices[n] != BGL_OP_NONE) {
        if (!validScale(scaleIndices[n])) return BGL_ERROR_OUT_OF_RANGE;
        args.buffers[10] = scale_[scaleIndices[n]]->data();
      }
      const int ppg = integratePpg();
      args.ints[0] = config_.patternCount;
      args.ints[1] = config_.categoryCount;
      args.ints[2] = config_.stateCount;
      args.ints[3] = ppg;
      args.ints[4] = childStates ? 1 : 0;

      hal::LaunchDims dims;
      dims.numGroups = (config_.patternCount + ppg - 1) / ppg;
      dims.groupSize = ppg;

      perf::LaunchWork work;
      work.flops = kernels::partialsFlops(config_.patternCount, config_.categoryCount,
                                          config_.stateCount) *
                   (derivs ? 1.5 : 0.5);
      work.bytes = kernels::partialsBytes(config_.patternCount, config_.categoryCount,
                                          config_.stateCount, sizeof(Real));
      work.fmaFriendly = true;
      work.doublePrecision = !spec.singlePrecision;
      work.useFma = useFma_;
      device_->launch(*device_->getKernel(spec), dims, args, work);

      total += reduceSites(*siteLogL_);
      if (derivs) {
        totalD1 += reduceSites(*siteD1_);
        totalD2 += reduceSites(*siteD2_);
      }
    }
    *outSumLogLikelihood = total;
    if (derivs) {
      *outSumFirstDerivative = totalD1;
      *outSumSecondDerivative = totalD2;
    }
    return std::isfinite(total) ? BGL_SUCCESS : BGL_ERROR_FLOATING_POINT;
  }

  int getSiteLogLikelihoods(double* outLogLikelihoods) override {
    std::vector<Real> staged(config_.patternCount);
    device_->copyToHost(staged.data(), *siteLogL_, 0, staged.size() * sizeof(Real));
    for (int k = 0; k < config_.patternCount; ++k) {
      outLogLikelihoods[k] = static_cast<double>(staged[k]);
    }
    return BGL_SUCCESS;
  }

  int waitForComputation() override {
    device_->finish();
    return BGL_SUCCESS;
  }

  int setThreadCount(int threads) override {
    if (threads < 1) return BGL_ERROR_OUT_OF_RANGE;
    device_->setFission(static_cast<unsigned>(threads));
    return BGL_SUCCESS;
  }

  int getTimeline(BglTimeline* out) override {
    const auto& t = device_->timeline();
    out->modeledSeconds = t.modeledSeconds;
    out->measuredSeconds = t.measuredSeconds;
    out->kernelLaunches = t.kernelLaunches;
    out->bytesCopied = t.bytesCopied;
    return BGL_SUCCESS;
  }

  int resetTimeline() override {
    device_->timeline().reset();
    return BGL_SUCCESS;
  }

  int setWorkGroupSize(int patterns) override {
    if (patterns < 1 || patterns > 16384) return BGL_ERROR_OUT_OF_RANGE;
    workGroupPatterns_ = patterns;
    return BGL_SUCCESS;
  }

 private:
  hal::KernelVariant defaultVariant() const {
    return device_->profile().deviceClass == perf::DeviceClass::Gpu
               ? hal::KernelVariant::GpuStyle
               : hal::KernelVariant::X86Style;
  }

  static std::size_t alignUp(std::size_t bytes) {
    constexpr std::size_t kAlign = 128;
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }

  std::size_t partialsSize() const {
    return static_cast<std::size_t>(config_.categoryCount) * config_.patternCount *
           config_.stateCount;
  }
  std::size_t matrixSize() const {
    return static_cast<std::size_t>(config_.categoryCount) * config_.stateCount *
           config_.stateCount;
  }

  void ensurePartials(int bufferIndex) {
    if (partials_[bufferIndex] == nullptr) {
      partials_[bufferIndex] = device_->alloc(partialsSize() * sizeof(Real));
    }
  }

  bool validScale(int index) const {
    return index >= 0 && index < config_.scaleBufferCount;
  }
  bool validEigenSlot(int index) const {
    return index >= 0 && index < config_.eigenBufferCount;
  }
  int autoCumulativeIndex() const { return config_.scaleBufferCount - 1; }

  void copyConverted(hal::Buffer& dst, const double* src, int n) {
    std::vector<Real> staged(n);
    for (int i = 0; i < n; ++i) staged[i] = static_cast<Real>(src[i]);
    device_->copyToDevice(dst, 0, staged.data(), staged.size() * sizeof(Real));
  }

  void zeroBuffer(hal::Buffer& buf) {
    std::vector<std::byte> zeros(buf.size());
    device_->copyToDevice(buf, 0, zeros.data(), zeros.size());
  }

  hal::KernelSpec baseSpec(hal::KernelId id) const {
    hal::KernelSpec spec;
    spec.id = id;
    spec.states = config_.stateCount;
    spec.singlePrecision = std::is_same_v<Real, float>;
    spec.variant = variant_;
    spec.useFma = useFma_;
    return spec;
  }

  int integratePpg() const { return 128; }

  perf::LaunchWork scaleWork(int buffers) const {
    perf::LaunchWork work;
    work.flops = static_cast<double>(config_.patternCount);
    work.bytes = static_cast<double>(buffers) * config_.patternCount * sizeof(Real);
    work.doublePrecision = !std::is_same_v<Real, float>;
    return work;
  }

  /// Patterns per work-group for the partials kernels. GPU-style geometry
  /// targets states*ppg ~ 256 work-items and must respect the device's
  /// local-memory limit when staging (the AMD codon constraint of
  /// Section VII-B1); x86-style uses the Table V tuned block size.
  struct PartialsGeometry {
    int ppg;
    std::size_t localMemBytes;
  };
  PartialsGeometry partialsGeometry() const {
    const int s = config_.stateCount;
    if (variant_ == hal::KernelVariant::X86Style) {
      return {workGroupPatterns_, 0};
    }
    // GPU-style groups stage both matrices plus a block of child partials
    // in local memory (2*s^2 + 2*ppg*s reals). Devices with small local
    // memories force fewer patterns per group for high state counts, and
    // for codon models in double precision the matrices cannot be staged
    // at all on 32 KB parts (Section VII-B1).
    const std::size_t real = sizeof(Real);
    const std::size_t limit =
        static_cast<std::size_t>(device_->profile().localMemKb * 1024.0);
    const std::size_t matBytes = kernels::gpuStyleLocalMemBytes(
        s, std::is_same_v<Real, float>);
    const std::size_t perPattern = 2 * static_cast<std::size_t>(s) * real;
    int ppg = std::max(1, 256 / s);
    if (matBytes + static_cast<std::size_t>(ppg) * perPattern <= limit) {
      return {ppg, matBytes + static_cast<std::size_t>(ppg) * perPattern};
    }
    if (matBytes + perPattern <= limit) {
      ppg = static_cast<int>((limit - matBytes) / perPattern);
      return {ppg, matBytes + static_cast<std::size_t>(ppg) * perPattern};
    }
    // Matrices do not fit: partials-only staging with a reduced block.
    ppg = std::max<int>(1, static_cast<int>(std::min<std::size_t>(
                               static_cast<std::size_t>(ppg), limit / perPattern)));
    return {ppg, static_cast<std::size_t>(ppg) * perPattern};
  }

  int executeOperation(const BglOperation& op, int cumulativeScaleIndex) {
    const auto& c = config_;
    if (op.destinationPartials < c.tipCount ||
        op.destinationPartials >= c.bufferCount()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    for (int m : {op.child1TransitionMatrix, op.child2TransitionMatrix}) {
      if (m < 0 || m >= c.matrixBufferCount) return BGL_ERROR_OUT_OF_RANGE;
    }
    for (int child : {op.child1Partials, op.child2Partials}) {
      if (child < 0 || child >= c.bufferCount()) return BGL_ERROR_OUT_OF_RANGE;
      if (tipStates_[child] == nullptr && partials_[child] == nullptr) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
    }
    if (op.destinationScaleWrite != BGL_OP_NONE && !validScale(op.destinationScaleWrite)) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    ensurePartials(op.destinationPartials);

    const bool tip1 = tipStates_[op.child1Partials] != nullptr;
    const bool tip2 = tipStates_[op.child2Partials] != nullptr;

    hal::KernelSpec spec = baseSpec(
        tip1 && tip2 ? hal::KernelId::StatesStates
                     : (tip1 || tip2) ? hal::KernelId::StatesPartials
                                      : hal::KernelId::PartialsPartials);

    hal::KernelArgs args;
    args.buffers[0] = partials_[op.destinationPartials]->data();
    // Convention: the states child (if any) occupies the first child slot.
    int c1 = op.child1Partials, m1 = op.child1TransitionMatrix;
    int c2 = op.child2Partials, m2 = op.child2TransitionMatrix;
    if (!tip1 && tip2) {
      std::swap(c1, c2);
      std::swap(m1, m2);
    }
    args.buffers[1] = (tip1 || tip2) ? tipStates_[c1]->data() : partials_[c1]->data();
    args.buffers[2] = matrices_[m1]->data();
    args.buffers[3] = (tip1 && tip2) ? tipStates_[c2]->data() : partials_[c2]->data();
    args.buffers[4] = matrices_[m2]->data();

    const auto geom = partialsGeometry();
    args.ints[0] = c.patternCount;
    args.ints[1] = c.categoryCount;
    args.ints[2] = c.stateCount;
    args.ints[3] = geom.ppg;

    hal::LaunchDims dims;
    const int patternBlocks = (c.patternCount + geom.ppg - 1) / geom.ppg;
    dims.numGroups = patternBlocks * c.categoryCount;
    dims.groupSize = variant_ == hal::KernelVariant::X86Style
                         ? geom.ppg
                         : geom.ppg * c.stateCount;
    dims.localMemBytes = geom.localMemBytes;

    perf::LaunchWork work;
    work.flops = kernels::partialsFlops(c.patternCount, c.categoryCount, c.stateCount);
    work.bytes = kernels::partialsBytes(c.patternCount, c.categoryCount, c.stateCount,
                                        sizeof(Real));
    work.workingSetBytes =
        kernels::partialsWorkingSet(c.patternCount, c.categoryCount, c.stateCount,
                                    sizeof(Real));
    work.fmaFriendly = true;
    work.doublePrecision = !spec.singlePrecision;
    work.useFma = useFma_;
    work.numGroups = dims.numGroups;
    if (variant_ == hal::KernelVariant::GpuStyle &&
        device_->profile().deviceClass != perf::DeviceClass::Gpu) {
      // Table V: the GPU-style kernel is a poor fit on CPU-class devices.
      work.variantEfficiency = perf::kGpuStyleOnCpuEfficiency;
    }
    device_->launch(*device_->getKernel(spec), dims, args, work);

    if (op.destinationScaleWrite != BGL_OP_NONE) {
      recorder_.count(obs::Counter::kRescaleEvents);
      hal::KernelSpec rspec = baseSpec(hal::KernelId::RescalePartials);
      hal::KernelArgs rargs;
      rargs.buffers[0] = partials_[op.destinationPartials]->data();
      rargs.buffers[1] = scale_[op.destinationScaleWrite]->data();
      const int ppg = integratePpg();
      rargs.ints[0] = c.patternCount;
      rargs.ints[1] = c.categoryCount;
      rargs.ints[2] = c.stateCount;
      rargs.ints[3] = ppg;
      hal::LaunchDims rdims;
      rdims.numGroups = (c.patternCount + ppg - 1) / ppg;
      rdims.groupSize = ppg;
      perf::LaunchWork rwork;
      rwork.flops = static_cast<double>(c.patternCount) * c.categoryCount * c.stateCount;
      rwork.bytes = 2.0 * c.patternCount * c.categoryCount * c.stateCount * sizeof(Real);
      rwork.doublePrecision = !spec.singlePrecision;
      device_->launch(*device_->getKernel(rspec), rdims, rargs, rwork);

      if (cumulativeScaleIndex != BGL_OP_NONE) {
        const int idx = op.destinationScaleWrite;
        const int rc = scaleOp(&idx, 1, cumulativeScaleIndex, +1);
        if (rc != BGL_SUCCESS) return rc;
      }
    }
    return BGL_SUCCESS;
  }

  int scaleOp(const int* scaleIndices, int count, int cumulativeScaleIndex, int sign) {
    if (!validScale(cumulativeScaleIndex)) return BGL_ERROR_OUT_OF_RANGE;
    hal::KernelSpec spec = baseSpec(hal::KernelId::AccumulateScale);
    for (int i = 0; i < count; ++i) {
      if (!validScale(scaleIndices[i])) return BGL_ERROR_OUT_OF_RANGE;
      hal::KernelArgs args;
      args.buffers[0] = scale_[cumulativeScaleIndex]->data();
      args.buffers[1] = scale_[scaleIndices[i]]->data();
      args.ints[0] = config_.patternCount;
      args.ints[1] = sign;
      device_->launch(*device_->getKernel(spec), {1, 1, 0}, args, scaleWork(2));
    }
    return BGL_SUCCESS;
  }

  double reduceSites(hal::Buffer& site) {
    hal::KernelSpec spec = baseSpec(hal::KernelId::SumSiteLikelihoods);
    hal::KernelArgs args;
    args.buffers[0] = site.data();
    args.buffers[1] = patternWeights_->data();
    args.buffers[2] = result_->data();
    args.ints[0] = config_.patternCount;
    perf::LaunchWork work;
    work.flops = 2.0 * config_.patternCount;
    work.bytes = 2.0 * config_.patternCount * sizeof(Real);
    work.doublePrecision = true;
    device_->launch(*device_->getKernel(spec), {1, 1, 0}, args, work);
    double out = 0.0;
    device_->copyToHost(&out, *result_, 0, sizeof(double));
    return out;
  }

  hal::DevicePtr device_;
  hal::KernelVariant variant_;
  bool useFma_ = true;
  int workGroupPatterns_ = 256;  // Table V default
  int compactUsed_ = 0;

  hal::BufferPtr matrixAlloc_, scaleAlloc_;
  hal::BufferPtr edgeScratch_, indexScratch_;  // batched matrix updates
  std::size_t matrixStride_ = 0, scaleStride_ = 0;
  std::vector<hal::BufferPtr> partials_, tipStates_, matrices_, scale_;
  std::vector<hal::BufferPtr> cijk_, eval_, freqs_, weights_;
  hal::BufferPtr rates_, patternWeights_, siteLogL_, siteD1_, siteD2_, result_;
};

}  // namespace bgl::accel
