# Empty dependencies file for bgl_perfmodel.
# This may be replaced when dependencies are built.
