file(REMOVE_RECURSE
  "CMakeFiles/codon_selection.dir/codon_selection.cpp.o"
  "CMakeFiles/codon_selection.dir/codon_selection.cpp.o.d"
  "codon_selection"
  "codon_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codon_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
