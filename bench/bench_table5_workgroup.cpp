// Table V: OpenCL-x86 work-group size tuning.
//
// Paper setup: dual Xeon E5-2680v4, nucleotide model, 10,000 patterns; the
// OpenCL-GPU-style kernel as shipped vs the x86-style kernel at increasing
// work-group sizes (patterns per group). Paper values (GFLOPS):
//   OpenCL-GPU kernel, wg 64:           15.75
//   OpenCL-x86 kernel, wg 64..1024:     79.65 / 85.51 / 98.36 / 98.09 / 96.51
//   => ~5-6.3x speedup for the x86 variant; peak at wg >= 256.
// Both kernel variants run for real on the host CPU here (this table is a
// genuine measurement in this reproduction, not a model output).
#include <cstdio>

#include "bench/bench_util.h"
#include "harness/genomictest.h"
#include "perfmodel/device_profiles.h"

int main() {
  using namespace bgl;
  bench::printHeader("Table V: OpenCL-x86 work-group size optimization",
                     "Ayres & Cummings 2017, Table V (Section VII-B2)");
  bench::printNote(
      "both kernel variants measured on the host CPU through the OpenCL "
      "runtime (paper: 2x Xeon E5-2680v4)");

  auto run = [&](int resource, long variantFlag, int workGroup) {
    harness::ProblemSpec spec;
    spec.tips = 8;
    spec.patterns = 10000;
    spec.states = 4;
    spec.categories = 4;
    spec.singlePrecision = true;
    spec.resource = resource;
    spec.requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL | variantFlag;
    spec.workGroupSize = workGroup;
    spec.reps = 3;
    return harness::runThroughput(spec).gflops;
  };

  bench::JsonReport report("table5",
                           "Table V: OpenCL-x86 work-group size optimization",
                           "Ayres & Cummings 2017, Table V (Section VII-B2)");
  for (int resource : {0, static_cast<int>(perf::kDualXeonE5)}) {
    const char* deviceName = resource == 0
                                 ? "Host CPU (measured)"
                                 : "2x Xeon E5-2680v4 (modeled, paper's system)";
    std::printf("\n[%s]\n", deviceName);
    std::printf("%-14s %18s %12s %22s\n", "solution", "work-group (pat.)",
                "GFLOPS", "speedup (x GPU-style)");

    const double gpuStyle = run(resource, BGL_FLAG_KERNEL_GPU_STYLE, 0);
    std::printf("%-14s %18d %12.2f %22s\n", "OpenCL-GPU", 64, gpuStyle, "1.00");
    report.row()
        .field("device", deviceName)
        .field("kernel", "gpu-style")
        .field("workGroup", 64)
        .field("gflops", gpuStyle);

    for (int wg : {64, 128, 256, 512, 1024}) {
      const double x86 = run(resource, BGL_FLAG_KERNEL_X86_STYLE, wg);
      std::printf("%-14s %18d %12.2f %21.2fx\n", "OpenCL-x86", wg, x86,
                  x86 / gpuStyle);
      report.row()
          .field("device", deviceName)
          .field("kernel", "x86-style")
          .field("workGroup", wg)
          .field("gflops", x86);
    }
  }

  std::printf(
      "\npaper (dual E5-2680v4): GPU-style 15.75; x86-style 79.65/85.51/"
      "98.36/98.09/96.51 for wg 64/128/256/512/1024 (5.06-6.25x)\n");
  return 0;
}
