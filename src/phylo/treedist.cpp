#include "phylo/treedist.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/defs.h"

namespace bgl::phylo {
namespace {

/// Non-trivial bipartitions of the (implicitly unrooted) tree as
/// canonicalized tip bitsets: each internal edge splits the taxa; the set
/// not containing tip 0 is the canonical representative.
std::set<std::vector<bool>> bipartitions(const Tree& tree) {
  const int tips = tree.tipCount();
  std::vector<std::vector<bool>> below(tree.nodeCount(),
                                       std::vector<bool>(tips, false));
  for (int n : tree.postOrder()) {
    if (tree.isTip(n)) {
      below[n][n] = true;
    } else {
      for (int t = 0; t < tips; ++t) {
        below[n][t] = below[tree.node(n).left][t] || below[tree.node(n).right][t];
      }
    }
  }

  std::set<std::vector<bool>> out;
  for (int n = tree.tipCount(); n < tree.nodeCount(); ++n) {
    if (n == tree.root()) continue;  // root edge is not a real edge unrooted
    std::vector<bool> side = below[n];
    int count = static_cast<int>(std::count(side.begin(), side.end(), true));
    if (count <= 1 || count >= tips - 1) continue;  // trivial split
    if (side[0]) side.flip();                       // canonical orientation
    out.insert(std::move(side));
  }
  return out;
}

}  // namespace

int robinsonFouldsDistance(const Tree& a, const Tree& b) {
  if (a.tipCount() != b.tipCount()) {
    throw Error("robinsonFouldsDistance: different taxon sets");
  }
  const auto bipA = bipartitions(a);
  const auto bipB = bipartitions(b);
  int shared = 0;
  for (const auto& split : bipA) shared += bipB.count(split);
  return static_cast<int>(bipA.size()) + static_cast<int>(bipB.size()) - 2 * shared;
}

}  // namespace bgl::phylo
