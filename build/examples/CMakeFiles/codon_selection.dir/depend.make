# Empty dependencies file for codon_selection.
# This may be replaced when dependencies are built.
