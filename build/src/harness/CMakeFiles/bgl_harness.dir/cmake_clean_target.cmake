file(REMOVE_RECURSE
  "libbgl_harness.a"
)
