# Empty compiler generated dependencies file for unit_hal.
# This may be replaced when dependencies are built.
