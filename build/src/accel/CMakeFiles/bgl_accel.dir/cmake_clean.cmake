file(REMOVE_RECURSE
  "CMakeFiles/bgl_accel.dir/accel_factories.cpp.o"
  "CMakeFiles/bgl_accel.dir/accel_factories.cpp.o.d"
  "libbgl_accel.a"
  "libbgl_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
