# Empty compiler generated dependencies file for unit_core.
# This may be replaced when dependencies are built.
