// C API shim: argument checking lives in the implementations; this layer
// owns the instance table and translates exceptions into return codes.
#include "api/bgl.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/implementation.h"
#include "api/last_error.h"
#include "api/registry.h"
#include "core/defs.h"
#include "fault/fault.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"

// The Error::code() constants in core/defs.h mirror BglReturnCode so the
// layers below the C API can attach structured codes without including
// the public header; keep the two in lockstep.
static_assert(bgl::kErrGeneral == BGL_ERROR_GENERAL);
static_assert(bgl::kErrOutOfMemory == BGL_ERROR_OUT_OF_MEMORY);
static_assert(bgl::kErrOutOfRange == BGL_ERROR_OUT_OF_RANGE);
static_assert(bgl::kErrHardware == BGL_ERROR_HARDWARE);
static_assert(bgl::kErrRejected == BGL_ERROR_REJECTED);

// BglJournalKind mirrors obs::JournalKind; keep the two in lockstep.
static_assert(BGL_JOURNAL_ERROR ==
              static_cast<int>(bgl::obs::JournalKind::kError));
static_assert(BGL_JOURNAL_FAULT_INJECTED ==
              static_cast<int>(bgl::obs::JournalKind::kFaultInjected));
static_assert(BGL_JOURNAL_STREAM_ERROR ==
              static_cast<int>(bgl::obs::JournalKind::kStreamError));
static_assert(BGL_JOURNAL_SHARD_QUARANTINE ==
              static_cast<int>(bgl::obs::JournalKind::kShardQuarantine));
static_assert(BGL_JOURNAL_REAPPORTION ==
              static_cast<int>(bgl::obs::JournalKind::kReapportion));
static_assert(BGL_JOURNAL_RETRY == static_cast<int>(bgl::obs::JournalKind::kRetry));
static_assert(BGL_JOURNAL_CPU_FALLBACK ==
              static_cast<int>(bgl::obs::JournalKind::kCpuFallback));
static_assert(BGL_JOURNAL_REBALANCE ==
              static_cast<int>(bgl::obs::JournalKind::kRebalance));
static_assert(BGL_JOURNAL_CALIBRATION_FALLBACK ==
              static_cast<int>(bgl::obs::JournalKind::kCalibrationFallback));
static_assert(BGL_JOURNAL_ADMISSION_REJECT ==
              static_cast<int>(bgl::obs::JournalKind::kAdmissionReject));
static_assert(BGL_JOURNAL_POOL_EVICT ==
              static_cast<int>(bgl::obs::JournalKind::kPoolEvict));
static_assert(BGL_JOURNAL_POOL_REINIT ==
              static_cast<int>(bgl::obs::JournalKind::kPoolReinit));
static_assert(sizeof(BglJournalRecord{}.message) ==
              bgl::obs::JournalRecord::kMessageBytes);

namespace {

struct InstanceSlot {
  /// shared_ptr so in-flight operations pin the implementation: a
  /// concurrent bglFinalizeInstance clears the slot, and destruction
  /// happens when the last operation drops its reference — never under
  /// an operation's feet.
  std::shared_ptr<bgl::Implementation> impl;
  std::string implName;
  std::string resourceName;
  int resource = -1;
  long flags = 0;
  std::string traceFile;  ///< Chrome-trace output path, written at finalize
  std::string statsFile;  ///< stats-JSON output path, written at finalize
};

std::mutex g_mutex;
std::vector<InstanceSlot> g_instances;

/// Detail for the most recent failed call on this thread (bglGetLastErrorMessage).
thread_local std::string t_lastError;

void setLastError(std::string message) { t_lastError = std::move(message); }

/// Map an Error's embedded code to a BglReturnCode (anything outside the
/// known range degrades to BGL_ERROR_GENERAL rather than leaking
/// arbitrary integers through the C ABI).
int returnCodeFor(const bgl::Error& error) {
  const int code = error.code();
  return (code <= BGL_SUCCESS && code >= BGL_ERROR_REJECTED) ? code
                                                             : BGL_ERROR_GENERAL;
}

/// Output paths claimed by live instances, so several instances created
/// with the same BGL_TRACE/BGL_STATS value don't clobber one file.
std::set<std::string> g_claimedPaths;

/// Claim `path` for instance `id`, uniquifying with an ".i<id>" suffix if
/// another live instance already owns it. Caller holds g_mutex.
std::string claimPathLocked(const std::string& path, int id) {
  if (path.empty()) return path;
  std::string chosen = path;
  if (g_claimedPaths.count(chosen) != 0) {
    chosen = path + ".i" + std::to_string(id);
  }
  g_claimedPaths.insert(chosen);
  return chosen;
}

void releasePathLocked(const std::string& path) {
  if (!path.empty()) g_claimedPaths.erase(path);
}

/// Pin the instance: the returned shared_ptr keeps the implementation
/// alive even if another thread finalizes the slot mid-operation.
std::shared_ptr<bgl::Implementation> lookup(int instance) {
  std::lock_guard lock(g_mutex);
  if (instance < 0 || instance >= static_cast<int>(g_instances.size())) {
    return nullptr;
  }
  return g_instances[instance].impl;
}

/// Flight-record an error the C API is about to surface, then flush the
/// instance's stats/trace files so the failure context survives even if
/// the process never reaches a clean bglFinalizeInstance.
void journalError(int instance, int code, const std::string& message) {
  bgl::obs::Journal::instance().append(bgl::obs::JournalKind::kError, code,
                                       instance, /*resource=*/-1, /*shard=*/-1,
                                       message);
  bgl::obs::ProcessRegistry::instance().snapshotInstanceFiles(instance);
}

/// Run `fn` on the instance, translating exceptions to error codes and
/// capturing their messages for bglGetLastErrorMessage.
template <typename F>
int withInstance(int instance, F&& fn) {
  t_lastError.clear();
  const std::shared_ptr<bgl::Implementation> impl = lookup(instance);
  if (impl == nullptr) {
    setLastError("instance " + std::to_string(instance) +
                 " is not a live instance id");
    return BGL_ERROR_OUT_OF_RANGE;
  }
  try {
    return fn(*impl);
  } catch (const std::bad_alloc&) {
    setLastError("allocation failed");
    journalError(instance, BGL_ERROR_OUT_OF_MEMORY, t_lastError);
    return BGL_ERROR_OUT_OF_MEMORY;
  } catch (const bgl::Error& e) {
    setLastError(e.what());
    const int code = returnCodeFor(e);
    journalError(instance, code, t_lastError);
    return code;
  } catch (const std::exception& e) {
    setLastError(e.what());
    journalError(instance, BGL_ERROR_UNIDENTIFIED_EXCEPTION, t_lastError);
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  } catch (...) {
    journalError(instance, BGL_ERROR_UNIDENTIFIED_EXCEPTION,
                 "unidentified exception");
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  }
}

/// First-use hookup of the live-metrics service from the environment
/// (BGL_METRICS = path, BGL_METRICS_MS = period), mirroring how BGL_TRACE
/// and BGL_STATS are read at instance creation.
void startMetricsFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("BGL_METRICS");
    if (path == nullptr || *path == '\0') return;
    int periodMs = 0;
    if (const char* ms = std::getenv("BGL_METRICS_MS"); ms != nullptr && *ms) {
      periodMs = std::atoi(ms);
    }
    bgl::obs::ProcessRegistry::instance().setMetricsFile(path, periodMs);
  });
}

}  // namespace

namespace bgl::api {

void setThreadLastError(std::string message) {
  setLastError(std::move(message));
}

void clearThreadLastError() { t_lastError.clear(); }

}  // namespace bgl::api

extern "C" {

const char* bglGetVersion(void) { return "1.0.0"; }

const char* bglGetCitation(void) {
  return "Reimplementation of: Ayres DL, Cummings MP (2017) Heterogeneous "
         "Hardware Support in BEAGLE, a High-Performance Computing Library "
         "for Statistical Phylogenetics. ICPP Workshops 2017.";
}

BglResourceList* bglGetResourceList(void) {
  // Per-thread snapshot: stable storage for the caller, immune to plugin
  // registration rewriting the registry's own list. Valid until this
  // thread's next call.
  thread_local bgl::Registry::ResourceSnapshot snapshot;
  bgl::Registry::instance().snapshotResources(snapshot);
  return &snapshot.list;
}

const char* bglGetLastErrorMessage(void) { return t_lastError.c_str(); }

int bglSetFaultSpec(const char* spec) {
  t_lastError.clear();
  std::string error;
  if (!bgl::fault::Injector::instance().configure(
          spec == nullptr ? "" : spec, &error)) {
    setLastError(error);
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return BGL_SUCCESS;
}

int bglCreateInstance(int tipCount, int partialsBufferCount, int compactBufferCount,
                      int stateCount, int patternCount, int eigenBufferCount,
                      int matrixBufferCount, int categoryCount, int scaleBufferCount,
                      const int* resourceList, int resourceCount,
                      long preferenceFlags, long requirementFlags,
                      BglInstanceDetails* returnInfo) {
  t_lastError.clear();
  if (tipCount < 0 || partialsBufferCount < 0 || compactBufferCount < 0 ||
      stateCount < 2 || patternCount < 1 || eigenBufferCount < 1 ||
      matrixBufferCount < 1 || categoryCount < 1 || scaleBufferCount < 0 ||
      partialsBufferCount + compactBufferCount < tipCount) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  bgl::InstanceConfig cfg;
  cfg.tipCount = tipCount;
  cfg.partialsBufferCount = partialsBufferCount;
  cfg.compactBufferCount = compactBufferCount;
  cfg.stateCount = stateCount;
  cfg.patternCount = patternCount;
  cfg.eigenBufferCount = eigenBufferCount;
  cfg.matrixBufferCount = matrixBufferCount;
  cfg.categoryCount = categoryCount;
  cfg.scaleBufferCount = scaleBufferCount;

  startMetricsFromEnvOnce();

  int error = BGL_SUCCESS;
  try {
    auto result = bgl::Registry::instance().create(cfg, resourceList, resourceCount,
                                                   preferenceFlags, requirementFlags,
                                                   &error);
    if (result.impl == nullptr) {
      if (error != BGL_SUCCESS) {
        bgl::obs::Journal::instance().append(bgl::obs::JournalKind::kError, error,
                                             /*instance=*/-1, /*resource=*/-1,
                                             /*shard=*/-1, t_lastError);
      }
      return error;
    }

    int id = -1;
    std::string traceFile, statsFile;
    {
      std::lock_guard lock(g_mutex);
      for (int i = 0; i < static_cast<int>(g_instances.size()); ++i) {
        if (g_instances[i].impl == nullptr) {
          id = i;
          break;
        }
      }
      if (id < 0) {
        id = static_cast<int>(g_instances.size());
        g_instances.emplace_back();
      }
      auto& slot = g_instances[id];
      slot.impl = std::move(result.impl);
      slot.implName = result.implName;
      slot.resourceName = result.resourceName;
      slot.resource = result.resource;
      slot.flags = result.flags;
      if (const char* trace = std::getenv("BGL_TRACE"); trace != nullptr && *trace) {
        slot.traceFile = claimPathLocked(trace, id);
        slot.impl->recorder().enableEvents();
      }
      if (const char* stats = std::getenv("BGL_STATS"); stats != nullptr && *stats) {
        slot.statsFile = claimPathLocked(stats, id);
        slot.impl->recorder().enableTiming();
      }
      if (returnInfo != nullptr) {
        returnInfo->resourceNumber = slot.resource;
        returnInfo->resourceName = slot.resourceName.c_str();
        returnInfo->implName = slot.implName.c_str();
        returnInfo->flags = slot.flags;
      }
      auto& registry = bgl::obs::ProcessRegistry::instance();
      registry.add(id, std::weak_ptr<void>(slot.impl), &slot.impl->recorder(),
                   slot.implName, slot.resourceName, slot.resource);
      traceFile = slot.traceFile;
      statsFile = slot.statsFile;
    }
    bgl::obs::ProcessRegistry::instance().setFiles(id, traceFile, statsFile);
    return id;
  } catch (const std::bad_alloc&) {
    setLastError("allocation failed while creating the instance");
    journalError(-1, BGL_ERROR_OUT_OF_MEMORY, t_lastError);
    return BGL_ERROR_OUT_OF_MEMORY;
  } catch (const bgl::Error& e) {
    setLastError(e.what());
    const int code = returnCodeFor(e);
    journalError(-1, code, t_lastError);
    return code;
  } catch (const std::exception& e) {
    setLastError(e.what());
    journalError(-1, BGL_ERROR_UNIDENTIFIED_EXCEPTION, t_lastError);
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  } catch (...) {
    journalError(-1, BGL_ERROR_UNIDENTIFIED_EXCEPTION, "unidentified exception");
    return BGL_ERROR_UNIDENTIFIED_EXCEPTION;
  }
}

int bglFinalizeInstance(int instance) {
  t_lastError.clear();
  // Detach the slot under the lock, then export and destroy outside it:
  // trace/stats writing does file I/O, and the implementation itself may
  // only be destroyed once every in-flight operation has dropped its
  // pinning reference (which can be after this function returns — the
  // shared_ptr handles that).
  InstanceSlot slot;
  {
    std::lock_guard lock(g_mutex);
    if (instance < 0 || instance >= static_cast<int>(g_instances.size()) ||
        g_instances[instance].impl == nullptr) {
      setLastError("instance " + std::to_string(instance) +
                   " is not a live instance id");
      return BGL_ERROR_OUT_OF_RANGE;
    }
    slot = std::move(g_instances[instance]);
    g_instances[instance] = InstanceSlot{};
    releasePathLocked(slot.traceFile);
    releasePathLocked(slot.statsFile);
  }
  // Retire from the process registry first — the metrics thread must stop
  // rewriting this instance's files before the final export below — while
  // `slot.impl` still pins the recorder so the final totals fold in.
  bgl::obs::ProcessRegistry::instance().remove(instance);
  const std::string process = slot.implName + " @ " + slot.resourceName;
  if (!slot.traceFile.empty()) {
    if (!bgl::obs::writeChromeTraceFile(slot.traceFile, slot.impl->recorder(),
                                        process)) {
      std::fprintf(stderr, "bgl: could not write trace file '%s'\n",
                   slot.traceFile.c_str());
    }
  }
  if (!slot.statsFile.empty()) {
    if (!bgl::obs::writeStatsJsonFile(slot.statsFile, slot.impl->recorder(),
                                      slot.implName, slot.resourceName)) {
      std::fprintf(stderr, "bgl: could not write stats file '%s'\n",
                   slot.statsFile.c_str());
    }
  }
  return BGL_SUCCESS;
}

int bglSetTipStates(int instance, int tipIndex, const int* inStates) {
  if (inStates == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance,
                      [&](auto& impl) { return impl.setTipStates(tipIndex, inStates); });
}

int bglSetTipPartials(int instance, int tipIndex, const double* inPartials) {
  if (inPartials == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(
      instance, [&](auto& impl) { return impl.setTipPartials(tipIndex, inPartials); });
}

int bglSetPartials(int instance, int bufferIndex, const double* inPartials) {
  if (inPartials == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(
      instance, [&](auto& impl) { return impl.setPartials(bufferIndex, inPartials); });
}

int bglGetPartials(int instance, int bufferIndex, double* outPartials) {
  if (outPartials == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(
      instance, [&](auto& impl) { return impl.getPartials(bufferIndex, outPartials); });
}

int bglSetStateFrequencies(int instance, int stateFrequenciesIndex,
                           const double* inStateFrequencies) {
  if (inStateFrequencies == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.setStateFrequencies(stateFrequenciesIndex, inStateFrequencies);
  });
}

int bglSetCategoryWeights(int instance, int categoryWeightsIndex,
                          const double* inCategoryWeights) {
  if (inCategoryWeights == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.setCategoryWeights(categoryWeightsIndex, inCategoryWeights);
  });
}

int bglSetCategoryRates(int instance, const double* inCategoryRates) {
  if (inCategoryRates == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(
      instance, [&](auto& impl) { return impl.setCategoryRates(inCategoryRates); });
}

int bglSetCategoryRatesWithIndex(int instance, int categoryRatesIndex,
                                 const double* inCategoryRates) {
  if (inCategoryRates == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) -> int {
    if (categoryRatesIndex < 0 ||
        categoryRatesIndex >= impl.config().eigenBufferCount) {
      bgl::api::setThreadLastError("category-rates index " +
                                   std::to_string(categoryRatesIndex) +
                                   " outside [0, eigenBufferCount)");
      return BGL_ERROR_OUT_OF_RANGE;
    }
    return impl.setCategoryRatesWithIndex(categoryRatesIndex, inCategoryRates);
  });
}

int bglSetPatternWeights(int instance, const double* inPatternWeights) {
  if (inPatternWeights == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(
      instance, [&](auto& impl) { return impl.setPatternWeights(inPatternWeights); });
}

int bglSetEigenDecomposition(int instance, int eigenIndex, const double* inEigenVectors,
                             const double* inInverseEigenVectors,
                             const double* inEigenValues) {
  if (inEigenVectors == nullptr || inInverseEigenVectors == nullptr ||
      inEigenValues == nullptr) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.setEigenDecomposition(eigenIndex, inEigenVectors,
                                      inInverseEigenVectors, inEigenValues);
  });
}

int bglUpdateTransitionMatrices(int instance, int eigenIndex,
                                const int* probabilityIndices,
                                const int* firstDerivativeIndices,
                                const int* secondDerivativeIndices,
                                const double* edgeLengths, int count) {
  if (probabilityIndices == nullptr || edgeLengths == nullptr || count < 0) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.updateTransitionMatrices(eigenIndex, probabilityIndices,
                                         firstDerivativeIndices,
                                         secondDerivativeIndices, edgeLengths, count);
  });
}

int bglUpdateTransitionMatricesWithModels(int instance, const int* eigenIndices,
                                          const int* categoryRatesIndices,
                                          const int* probabilityIndices,
                                          const double* edgeLengths, int count) {
  if (eigenIndices == nullptr || probabilityIndices == nullptr ||
      edgeLengths == nullptr || count < 0) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.updateTransitionMatricesWithModels(
        eigenIndices, categoryRatesIndices, probabilityIndices, edgeLengths, count);
  });
}

int bglSetTransitionMatrix(int instance, int matrixIndex, const double* inMatrix,
                           double paddedValue) {
  if (inMatrix == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.setTransitionMatrix(matrixIndex, inMatrix, paddedValue);
  });
}

int bglGetTransitionMatrix(int instance, int matrixIndex, double* outMatrix) {
  if (outMatrix == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.getTransitionMatrix(matrixIndex, outMatrix);
  });
}

int bglUpdatePartials(int instance, const BglOperation* operations, int operationCount,
                      int cumulativeScaleIndex) {
  if (operations == nullptr || operationCount < 0) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.updatePartials(operations, operationCount, cumulativeScaleIndex);
  });
}

int bglSetPatternPartitions(int instance, int partitionCount,
                            const int* inPatternPartitions) {
  if (partitionCount < 1) return BGL_ERROR_OUT_OF_RANGE;
  if (partitionCount > 1 && inPatternPartitions == nullptr) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) -> int {
    // Validate the map here so every implementation receives a
    // well-formed one: non-decreasing partition ids forming a
    // contiguous cover of [0, partitionCount) over all patterns.
    if (partitionCount > 1) {
      const int patterns = impl.config().patternCount;
      int previous = -1;
      for (int s = 0; s < patterns; ++s) {
        const int q = inPatternPartitions[s];
        if (q < 0 || q >= partitionCount || q < previous || q > previous + 1) {
          bgl::api::setThreadLastError(
              "pattern-partition map must be a non-decreasing contiguous "
              "cover of [0, partitionCount); bad id " +
              std::to_string(q) + " at pattern " + std::to_string(s));
          return BGL_ERROR_OUT_OF_RANGE;
        }
        previous = q;
      }
      if (previous != partitionCount - 1) {
        bgl::api::setThreadLastError(
            "pattern-partition map covers only partitions [0, " +
            std::to_string(previous + 1) + ") of " +
            std::to_string(partitionCount));
        return BGL_ERROR_OUT_OF_RANGE;
      }
    }
    return impl.setPatternPartitions(partitionCount, inPatternPartitions);
  });
}

int bglUpdatePartialsByPartition(int instance,
                                 const BglOperationByPartition* operations,
                                 int operationCount, int cumulativeScaleIndex) {
  if (operations == nullptr || operationCount < 0) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.updatePartialsByPartition(operations, operationCount,
                                          cumulativeScaleIndex);
  });
}

int bglAccumulateScaleFactors(int instance, const int* scaleIndices, int count,
                              int cumulativeScaleIndex) {
  if (scaleIndices == nullptr || count < 0) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.accumulateScaleFactors(scaleIndices, count, cumulativeScaleIndex);
  });
}

int bglRemoveScaleFactors(int instance, const int* scaleIndices, int count,
                          int cumulativeScaleIndex) {
  if (scaleIndices == nullptr || count < 0) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.removeScaleFactors(scaleIndices, count, cumulativeScaleIndex);
  });
}

int bglResetScaleFactors(int instance, int cumulativeScaleIndex) {
  return withInstance(instance, [&](auto& impl) {
    return impl.resetScaleFactors(cumulativeScaleIndex);
  });
}

int bglCalculateRootLogLikelihoods(int instance, const int* bufferIndices,
                                   const int* categoryWeightsIndices,
                                   const int* stateFrequenciesIndices,
                                   const int* cumulativeScaleIndices, int count,
                                   double* outSumLogLikelihood) {
  if (bufferIndices == nullptr || categoryWeightsIndices == nullptr ||
      stateFrequenciesIndices == nullptr || outSumLogLikelihood == nullptr ||
      count < 1) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.calculateRootLogLikelihoods(bufferIndices, categoryWeightsIndices,
                                            stateFrequenciesIndices,
                                            cumulativeScaleIndices, count,
                                            outSumLogLikelihood);
  });
}

int bglCalculateRootLogLikelihoodsByPartition(
    int instance, const int* bufferIndices, const int* categoryWeightsIndices,
    const int* stateFrequenciesIndices, const int* cumulativeScaleIndices,
    const int* partitionIndices, int count,
    double* outSumLogLikelihoodByPartition, double* outSumLogLikelihood) {
  if (bufferIndices == nullptr || categoryWeightsIndices == nullptr ||
      stateFrequenciesIndices == nullptr || partitionIndices == nullptr ||
      outSumLogLikelihoodByPartition == nullptr || count < 1) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.calculateRootLogLikelihoodsByPartition(
        bufferIndices, categoryWeightsIndices, stateFrequenciesIndices,
        cumulativeScaleIndices, partitionIndices, count,
        outSumLogLikelihoodByPartition, outSumLogLikelihood);
  });
}

int bglCalculateEdgeLogLikelihoods(
    int instance, const int* parentBufferIndices, const int* childBufferIndices,
    const int* probabilityIndices, const int* firstDerivativeIndices,
    const int* secondDerivativeIndices, const int* categoryWeightsIndices,
    const int* stateFrequenciesIndices, const int* cumulativeScaleIndices, int count,
    double* outSumLogLikelihood, double* outSumFirstDerivative,
    double* outSumSecondDerivative) {
  if (parentBufferIndices == nullptr || childBufferIndices == nullptr ||
      probabilityIndices == nullptr || categoryWeightsIndices == nullptr ||
      stateFrequenciesIndices == nullptr || outSumLogLikelihood == nullptr ||
      count < 1) {
    return BGL_ERROR_OUT_OF_RANGE;
  }
  return withInstance(instance, [&](auto& impl) {
    return impl.calculateEdgeLogLikelihoods(
        parentBufferIndices, childBufferIndices, probabilityIndices,
        firstDerivativeIndices, secondDerivativeIndices, categoryWeightsIndices,
        stateFrequenciesIndices, cumulativeScaleIndices, count, outSumLogLikelihood,
        outSumFirstDerivative, outSumSecondDerivative);
  });
}

int bglGetSiteLogLikelihoods(int instance, double* outLogLikelihoods) {
  if (outLogLikelihoods == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    return impl.getSiteLogLikelihoods(outLogLikelihoods);
  });
}

int bglWaitForComputation(int instance) {
  return withInstance(instance, [&](auto& impl) { return impl.waitForComputation(); });
}

int bglSetThreadCount(int instance, int threadCount) {
  return withInstance(instance,
                      [&](auto& impl) { return impl.setThreadCount(threadCount); });
}

int bglGetTimeline(int instance, BglTimeline* outTimeline) {
  if (outTimeline == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance,
                      [&](auto& impl) { return impl.getTimeline(outTimeline); });
}

int bglResetTimeline(int instance) {
  return withInstance(instance, [&](auto& impl) { return impl.resetTimeline(); });
}

int bglGetStatistics(int instance, BglStatistics* outStatistics) {
  if (outStatistics == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  return withInstance(instance, [&](auto& impl) {
    using bgl::obs::Category;
    using bgl::obs::Counter;
    const auto& rec = impl.recorder();
    outStatistics->partialsOperations = rec.counter(Counter::kPartialsOperations);
    outStatistics->transitionMatrices = rec.counter(Counter::kTransitionMatrices);
    outStatistics->rootEvaluations = rec.counter(Counter::kRootEvaluations);
    outStatistics->edgeEvaluations = rec.counter(Counter::kEdgeEvaluations);
    outStatistics->rescaleEvents = rec.counter(Counter::kRescaleEvents);
    outStatistics->scaleAccumulations = rec.counter(Counter::kScaleAccumulations);
    outStatistics->kernelLaunches = rec.counter(Counter::kKernelLaunches);
    outStatistics->bytesCopiedIn = rec.counter(Counter::kBytesIn);
    outStatistics->bytesCopiedOut = rec.counter(Counter::kBytesOut);
    outStatistics->updatePartialsSeconds =
        rec.categorySeconds(Category::kUpdatePartials);
    outStatistics->updateTransitionMatricesSeconds =
        rec.categorySeconds(Category::kUpdateTransitionMatrices);
    outStatistics->rootLogLikelihoodsSeconds =
        rec.categorySeconds(Category::kRootLogLikelihoods);
    outStatistics->edgeLogLikelihoodsSeconds =
        rec.categorySeconds(Category::kEdgeLogLikelihoods);
    outStatistics->streamedLaunches = rec.counter(Counter::kStreamedLaunches);
    return BGL_SUCCESS;
  });
}

int bglResetStatistics(int instance) {
  return withInstance(instance, [&](auto& impl) {
    impl.recorder().reset();
    return BGL_SUCCESS;
  });
}

int bglSetTraceFile(int instance, const char* path) {
  std::string traceFile, statsFile;
  {
    std::lock_guard lock(g_mutex);
    if (instance < 0 || instance >= static_cast<int>(g_instances.size()) ||
        g_instances[instance].impl == nullptr) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    auto& slot = g_instances[instance];
    releasePathLocked(slot.traceFile);
    slot.traceFile.clear();
    if (path != nullptr && *path) {
      slot.traceFile = claimPathLocked(path, instance);
      slot.impl->recorder().enableEvents();
    }
    traceFile = slot.traceFile;
    statsFile = slot.statsFile;
  }
  bgl::obs::ProcessRegistry::instance().setFiles(instance, traceFile, statsFile);
  return BGL_SUCCESS;
}

int bglSetStatsFile(int instance, const char* path) {
  std::string traceFile, statsFile;
  {
    std::lock_guard lock(g_mutex);
    if (instance < 0 || instance >= static_cast<int>(g_instances.size()) ||
        g_instances[instance].impl == nullptr) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    auto& slot = g_instances[instance];
    releasePathLocked(slot.statsFile);
    slot.statsFile.clear();
    if (path != nullptr && *path) {
      slot.statsFile = claimPathLocked(path, instance);
      slot.impl->recorder().enableTiming();
    }
    traceFile = slot.traceFile;
    statsFile = slot.statsFile;
  }
  bgl::obs::ProcessRegistry::instance().setFiles(instance, traceFile, statsFile);
  return BGL_SUCCESS;
}

int bglSetWorkGroupSize(int instance, int patternsPerWorkGroup) {
  return withInstance(instance, [&](auto& impl) {
    return impl.setWorkGroupSize(patternsPerWorkGroup);
  });
}

int bglGetJournal(BglJournalRecord* outRecords, int capacity, int* outCount) {
  if (outCount == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  t_lastError.clear();
  const std::vector<bgl::obs::JournalRecord> records =
      bgl::obs::Journal::instance().snapshot();
  if (outRecords == nullptr || capacity <= 0) {
    *outCount = static_cast<int>(records.size());
    return BGL_SUCCESS;
  }
  // When the caller's buffer is smaller than the retained window, keep the
  // most recent records — the useful end of a flight recording.
  const std::size_t n = std::min<std::size_t>(records.size(), capacity);
  const std::size_t first = records.size() - n;
  for (std::size_t i = 0; i < n; ++i) {
    const bgl::obs::JournalRecord& src = records[first + i];
    BglJournalRecord& dst = outRecords[i];
    dst.sequence = src.sequence;
    dst.timeNs = src.timeNs;
    dst.kind = static_cast<int>(src.kind);
    dst.code = src.code;
    dst.instance = src.instance;
    dst.resource = src.resource;
    dst.shard = src.shard;
    std::memcpy(dst.message, src.message, sizeof(dst.message));
  }
  *outCount = static_cast<int>(n);
  return BGL_SUCCESS;
}

int bglGetProcessStatistics(BglProcessStatistics* outStatistics) {
  if (outStatistics == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  t_lastError.clear();
  using bgl::obs::Category;
  using bgl::obs::Counter;
  using bgl::obs::Gauge;
  const bgl::obs::ProcessAggregate agg =
      bgl::obs::ProcessRegistry::instance().aggregate();
  const auto counter = [&](Counter c) { return agg.counters[static_cast<int>(c)]; };
  const auto seconds = [&](Category c) {
    return agg.histograms[static_cast<int>(c)].totalNs * 1e-9;
  };
  *outStatistics = BglProcessStatistics{};
  outStatistics->liveInstances = agg.liveInstances;
  outStatistics->instancesCreated = agg.instancesCreated;
  outStatistics->instancesRetired = agg.instancesRetired;
  outStatistics->totals.partialsOperations = counter(Counter::kPartialsOperations);
  outStatistics->totals.transitionMatrices = counter(Counter::kTransitionMatrices);
  outStatistics->totals.rootEvaluations = counter(Counter::kRootEvaluations);
  outStatistics->totals.edgeEvaluations = counter(Counter::kEdgeEvaluations);
  outStatistics->totals.rescaleEvents = counter(Counter::kRescaleEvents);
  outStatistics->totals.scaleAccumulations = counter(Counter::kScaleAccumulations);
  outStatistics->totals.kernelLaunches = counter(Counter::kKernelLaunches);
  outStatistics->totals.bytesCopiedIn = counter(Counter::kBytesIn);
  outStatistics->totals.bytesCopiedOut = counter(Counter::kBytesOut);
  outStatistics->totals.streamedLaunches = counter(Counter::kStreamedLaunches);
  outStatistics->totals.updatePartialsSeconds = seconds(Category::kUpdatePartials);
  outStatistics->totals.updateTransitionMatricesSeconds =
      seconds(Category::kUpdateTransitionMatrices);
  outStatistics->totals.rootLogLikelihoodsSeconds =
      seconds(Category::kRootLogLikelihoods);
  outStatistics->totals.edgeLogLikelihoodsSeconds =
      seconds(Category::kEdgeLogLikelihoods);
  outStatistics->pendingDepth =
      agg.gaugeLevels[static_cast<int>(Gauge::kPendingDepth)];
  outStatistics->pendingDepthMax =
      agg.gaugeMax[static_cast<int>(Gauge::kPendingDepth)];
  outStatistics->journalRecords = bgl::obs::Journal::instance().totalAppended();
  return BGL_SUCCESS;
}

int bglSetMetricsFile(const char* path, int periodMs) {
  t_lastError.clear();
  const std::string target = path == nullptr ? "" : path;
  if (!bgl::obs::ProcessRegistry::instance().setMetricsFile(target, periodMs)) {
    setLastError("could not open metrics file '" + target + "'");
    return BGL_ERROR_GENERAL;
  }
  return BGL_SUCCESS;
}

}  // extern "C"
