// Mixed-client trace replay for the serving layer (genomictest --serve).
//
// A trace file is a deterministic script of serving-layer traffic: many
// tenants opening sessions, growing trees online, evaluating, and
// closing, interleaved the way a real multi-client process would see
// them. Replaying one exercises the whole serve stack — pool recycling,
// admission control, grow-on-demand reinits, dirty-path evaluation —
// through the public C API, with every random choice derived from seeds
// in the file so two replays are identical.
//
// Line grammar (one command per line, '#' starts a comment):
//   <tenant> open <states> <patterns> <categories> [resource]
//   <tenant> model <seed>          install a default model for the shape
//   <tenant> taxa <count> <seed>   add `count` random taxa (random
//                                  attachment points and branch lengths)
//   <tenant> add <seed>            add one random taxon
//   <tenant> branch <seed>         perturb one random branch length
//   <tenant> eval                  online (dirty-path) log likelihood
//   <tenant> full                  full-recompute log likelihood; when an
//                                  eval on the same tenant precedes it,
//                                  the two must agree bitwise
//   <tenant> close                 close the tenant's session
//
// A rejected open (BGL_ERROR_REJECTED) is counted, not fatal: traces are
// allowed to push past the configured quotas on purpose. Commands for a
// tenant whose open was rejected (or that never opened) are skipped and
// counted, the way a real client backs off after a rejection. Any other
// error fails the replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace bgl::harness {

struct ReplayOptions {
  bool verbose = false;  ///< print one line per command to stdout
};

struct ReplayStats {
  int commands = 0;
  int opens = 0;
  int rejected = 0;   ///< opens refused by admission control
  int skipped = 0;    ///< commands for tenants without an open session
  int taxaAdded = 0;
  int branchSets = 0;
  int evals = 0;
  int fulls = 0;
  int closes = 0;
  int mismatches = 0; ///< eval/full pairs that disagreed bitwise
  double lastLogL = 0.0;
};

/// Replay a trace from a stream. Throws bgl::Error on a malformed line or
/// a non-rejection API failure.
ReplayStats replayServeTrace(std::istream& in, const ReplayOptions& options);

/// Replay a trace file. Throws bgl::Error when the file cannot be opened.
ReplayStats replayServeTraceFile(const std::string& path,
                                 const ReplayOptions& options);

}  // namespace bgl::harness
