#include "phylo/tree.h"

#include <gtest/gtest.h>

#include <set>

#include "core/defs.h"

namespace bgl::phylo {
namespace {

TEST(Tree, RandomTreesAreStructurallyValid) {
  Rng rng(1);
  for (int tips : {2, 3, 4, 8, 17, 64}) {
    Tree tree = Tree::random(tips, rng);
    EXPECT_EQ(tree.tipCount(), tips);
    EXPECT_EQ(tree.nodeCount(), 2 * tips - 1);
    EXPECT_NO_THROW(tree.validate());
  }
}

TEST(Tree, PostOrderVisitsChildrenFirst) {
  Rng rng(2);
  Tree tree = Tree::random(20, rng);
  const auto order = tree.postOrder();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(tree.nodeCount()));
  std::set<int> seen;
  for (int n : order) {
    if (!tree.isTip(n)) {
      EXPECT_TRUE(seen.count(tree.node(n).left));
      EXPECT_TRUE(seen.count(tree.node(n).right));
    }
    seen.insert(n);
  }
  EXPECT_EQ(order.back(), tree.root());
}

TEST(Tree, InternalNodeIdsAreInPostOrder) {
  Rng rng(3);
  Tree tree = Tree::random(12, rng);
  int prev = -1;
  for (int n : tree.postOrder()) {
    if (tree.isTip(n)) continue;
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(Tree, OperationsMatchInternalNodes) {
  Rng rng(4);
  Tree tree = Tree::random(10, rng);
  const auto ops = tree.operations();
  EXPECT_EQ(ops.size(), 9u);
  std::set<int> dests;
  for (const auto& op : ops) {
    EXPECT_GE(op.destinationPartials, tree.tipCount());
    EXPECT_EQ(op.child1TransitionMatrix, op.child1Partials);
    EXPECT_EQ(op.child2TransitionMatrix, op.child2Partials);
    EXPECT_EQ(op.destinationScaleWrite, BGL_OP_NONE);
    dests.insert(op.destinationPartials);
  }
  EXPECT_EQ(dests.size(), ops.size());
}

TEST(Tree, OperationsWithScalingUseNodeOffsets) {
  Rng rng(5);
  Tree tree = Tree::random(6, rng);
  const auto ops = tree.operations(/*scaleWrite=*/true);
  for (const auto& op : ops) {
    EXPECT_EQ(op.destinationScaleWrite, op.destinationPartials - tree.tipCount());
  }
}

TEST(Tree, MatrixUpdatesCoverAllNonRootNodes) {
  Rng rng(6);
  Tree tree = Tree::random(9, rng);
  std::vector<int> nodes;
  std::vector<double> lengths;
  tree.matrixUpdates(nodes, lengths);
  EXPECT_EQ(nodes.size(), static_cast<std::size_t>(tree.nodeCount() - 1));
  EXPECT_EQ(nodes.size(), lengths.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NE(nodes[i], tree.root());
    EXPECT_DOUBLE_EQ(lengths[i], tree.node(nodes[i]).length);
  }
}

TEST(Tree, NewickRoundTripPreservesStructure) {
  Rng rng(7);
  for (int tips : {3, 5, 11}) {
    Tree tree = Tree::random(tips, rng);
    Tree back = Tree::fromNewick(tree.toNewick());
    EXPECT_EQ(back.tipCount(), tips);
    EXPECT_NO_THROW(back.validate());
    // Serialization is canonical under the node renumbering, so a second
    // round trip must be a fixed point.
    EXPECT_EQ(back.toNewick(), Tree::fromNewick(back.toNewick()).toNewick());
    EXPECT_NEAR(back.totalLength(), tree.totalLength(), 1e-9);
  }
}

TEST(Tree, ParsesHandWrittenNewick) {
  Tree tree = Tree::fromNewick("((t0:0.1,t1:0.2):0.05,t2:0.3);");
  EXPECT_EQ(tree.tipCount(), 3);
  EXPECT_DOUBLE_EQ(tree.node(0).length, 0.1);
  EXPECT_DOUBLE_EQ(tree.node(1).length, 0.2);
  EXPECT_DOUBLE_EQ(tree.node(2).length, 0.3);
  const int inner = tree.node(tree.root()).left == 2 ? tree.node(tree.root()).right
                                                     : tree.node(tree.root()).left;
  EXPECT_DOUBLE_EQ(tree.node(inner).length, 0.05);
}

TEST(Tree, RejectsMalformedNewick) {
  EXPECT_THROW(Tree::fromNewick("(t0:0.1,t1"), Error);
  EXPECT_THROW(Tree::fromNewick("(alpha,beta);"), Error);
  EXPECT_THROW(Tree::fromNewick(""), Error);
}

TEST(Tree, NniPreservesValidityAndTipSet) {
  Rng rng(8);
  Tree tree = Tree::random(12, rng);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.nni(rng));
    EXPECT_NO_THROW(tree.validate());
    EXPECT_EQ(tree.tipCount(), 12);
  }
}

TEST(Tree, NniEventuallyChangesTopology) {
  Rng rng(9);
  Tree tree = Tree::random(8, rng);
  const std::string before = tree.toNewick();
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    tree.nni(rng);
    changed = tree.toNewick() != before;
  }
  EXPECT_TRUE(changed);
}

TEST(Tree, NniRefusesTinyTrees) {
  Rng rng(10);
  Tree tree = Tree::random(3, rng);
  EXPECT_FALSE(tree.nni(rng));
}

TEST(Tree, TotalLengthSumsBranches) {
  Tree tree = Tree::fromNewick("((t0:1,t1:2):4,t2:8);");
  EXPECT_DOUBLE_EQ(tree.totalLength(), 15.0);
}

TEST(Tree, RandomRejectsDegenerateInput) {
  Rng rng(11);
  EXPECT_THROW(Tree::random(1, rng), Error);
}

TEST(Tree, BranchLengthsArePositive) {
  Rng rng(12);
  Tree tree = Tree::random(30, rng, 0.25);
  for (int n = 0; n < tree.nodeCount(); ++n) {
    if (n != tree.root()) {
      EXPECT_GT(tree.node(n).length, 0.0);
    }
  }
}

}  // namespace
}  // namespace bgl::phylo
