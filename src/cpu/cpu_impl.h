// Host (CPU) implementation of the Implementation interface.
//
// This is the serial "implementation base-code" of the paper's Fig. 1:
// straightforward scalar loops, with whatever auto-vectorization the
// compiler applies — the benchmarks' comparison baseline. Vectorized
// (simd_impl.h) and threaded (threaded_impl.h) implementations derive
// from this class and override the compute hooks only.
#pragma once

#include <cmath>
#include <cstring>
#include <vector>

#include "api/implementation.h"
#include "core/aligned.h"
#include "core/defs.h"
#include "cpu/cpu_kernels.h"

namespace bgl::cpu {

template <RealScalar Real>
class CpuImpl : public Implementation {
 public:
  explicit CpuImpl(const InstanceConfig& cfg) {
    config_ = cfg;
    const auto& c = config_;
    partials_.resize(c.bufferCount());
    tipStates_.resize(c.bufferCount());
    matrices_.assign(c.matrixBufferCount,
                     AlignedVector<Real>(matrixSize(), Real(0)));
    eigenCijk_.assign(c.eigenBufferCount, {});
    eigenValues_.assign(c.eigenBufferCount, {});
    freqs_.assign(c.eigenBufferCount, AlignedVector<Real>(c.stateCount, Real(0)));
    weights_.assign(c.eigenBufferCount,
                    AlignedVector<Real>(c.categoryCount, Real(0)));
    // One rates slot per eigen slot (multi-partition mode pairs eigen
    // slot q with rates slot q); slot 0 is the legacy setCategoryRates
    // target.
    rates_.assign(c.eigenBufferCount, std::vector<double>(c.categoryCount, 1.0));
    patternWeights_.assign(c.patternCount, 1.0);
    scale_.assign(c.scaleBufferCount,
                  AlignedVector<Real>(c.patternCount, Real(0)));
    siteLogL_.assign(c.patternCount, Real(0));
    siteD1_.assign(c.patternCount, Real(0));
    siteD2_.assign(c.patternCount, Real(0));
    partEnd_.assign(1, c.patternCount);
  }

  std::string implName() const override { return "CPU-serial"; }

  // ------------------------------------------------------------------
  // Data movement
  // ------------------------------------------------------------------

  int setTipStates(int tipIndex, const int* inStates) override {
    if (tipIndex < 0 || tipIndex >= config_.tipCount) return BGL_ERROR_OUT_OF_RANGE;
    if (compactUsed_ >= config_.compactBufferCount &&
        tipStates_[tipIndex].empty()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    if (tipStates_[tipIndex].empty()) ++compactUsed_;
    auto& buf = tipStates_[tipIndex];
    buf.resize(config_.patternCount);
    for (int k = 0; k < config_.patternCount; ++k) {
      const int s = inStates[k];
      buf[k] = (s < 0 || s >= config_.stateCount)
                   ? config_.stateCount  // any out-of-range code = ambiguity
                   : s;
    }
    recorder_.count(obs::Counter::kBytesIn,
                    static_cast<std::uint64_t>(config_.patternCount) * sizeof(int));
    return BGL_SUCCESS;
  }

  int setTipPartials(int tipIndex, const double* inPartials) override {
    if (tipIndex < 0 || tipIndex >= config_.tipCount) return BGL_ERROR_OUT_OF_RANGE;
    // Tip partials arrive pattern-major (patterns x states) and are
    // replicated across rate categories.
    auto& buf = ensurePartials(tipIndex);
    if (buf.empty()) return BGL_ERROR_OUT_OF_RANGE;
    const int p = config_.patternCount;
    const int s = config_.stateCount;
    for (int c = 0; c < config_.categoryCount; ++c) {
      Real* plane = buf.data() + static_cast<std::size_t>(c) * p * s;
      for (std::size_t i = 0; i < static_cast<std::size_t>(p) * s; ++i) {
        plane[i] = static_cast<Real>(inPartials[i]);
      }
    }
    recorder_.count(obs::Counter::kBytesIn,
                    static_cast<std::uint64_t>(p) * s * sizeof(double));
    return BGL_SUCCESS;
  }

  int setPartials(int bufferIndex, const double* inPartials) override {
    if (bufferIndex < 0 || bufferIndex >= config_.bufferCount()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    auto& buf = ensurePartials(bufferIndex);
    if (buf.empty()) return BGL_ERROR_OUT_OF_RANGE;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<Real>(inPartials[i]);
    }
    recorder_.count(obs::Counter::kBytesIn, buf.size() * sizeof(double));
    return BGL_SUCCESS;
  }

  int getPartials(int bufferIndex, double* outPartials) override {
    if (bufferIndex < 0 || bufferIndex >= config_.bufferCount() ||
        partials_[bufferIndex].empty()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    const auto& buf = partials_[bufferIndex];
    for (std::size_t i = 0; i < buf.size(); ++i) {
      outPartials[i] = static_cast<double>(buf[i]);
    }
    recorder_.count(obs::Counter::kBytesOut, buf.size() * sizeof(double));
    return BGL_SUCCESS;
  }

  int setStateFrequencies(int index, const double* inFreqs) override {
    if (index < 0 || index >= config_.eigenBufferCount) return BGL_ERROR_OUT_OF_RANGE;
    for (int s = 0; s < config_.stateCount; ++s) {
      freqs_[index][s] = static_cast<Real>(inFreqs[s]);
    }
    return BGL_SUCCESS;
  }

  int setCategoryWeights(int index, const double* inWeights) override {
    if (index < 0 || index >= config_.eigenBufferCount) return BGL_ERROR_OUT_OF_RANGE;
    for (int c = 0; c < config_.categoryCount; ++c) {
      weights_[index][c] = static_cast<Real>(inWeights[c]);
    }
    return BGL_SUCCESS;
  }

  int setCategoryRates(const double* inRates) override {
    for (int c = 0; c < config_.categoryCount; ++c) rates_[0][c] = inRates[c];
    return BGL_SUCCESS;
  }

  int setCategoryRatesWithIndex(int ratesIndex, const double* inRates) override {
    if (!validEigenSlot(ratesIndex)) return BGL_ERROR_OUT_OF_RANGE;
    for (int c = 0; c < config_.categoryCount; ++c) {
      rates_[ratesIndex][c] = inRates[c];
    }
    return BGL_SUCCESS;
  }

  int setPatternWeights(const double* inWeights) override {
    for (int k = 0; k < config_.patternCount; ++k) patternWeights_[k] = inWeights[k];
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------
  // Transition matrices
  // ------------------------------------------------------------------

  int setEigenDecomposition(int eigenIndex, const double* evec, const double* ivec,
                            const double* eval) override {
    if (eigenIndex < 0 || eigenIndex >= config_.eigenBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    const int s = config_.stateCount;
    // Precompute Cijk = evec[i][k] * ivec[k][j]; P(t) then reduces to a
    // dot product against exp(lambda_k * r * t) per matrix entry.
    auto& cijk = eigenCijk_[eigenIndex];
    cijk.resize(static_cast<std::size_t>(s) * s * s);
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        double* out = cijk.data() + (static_cast<std::size_t>(i) * s + j) * s;
        for (int k = 0; k < s; ++k) {
          out[k] = evec[static_cast<std::size_t>(i) * s + k] *
                   ivec[static_cast<std::size_t>(k) * s + j];
        }
      }
    }
    eigenValues_[eigenIndex].assign(eval, eval + s);
    return BGL_SUCCESS;
  }

  int updateTransitionMatrices(int eigenIndex, const int* probIndices,
                               const int* d1Indices, const int* d2Indices,
                               const double* edgeLengths, int count) override {
    if (eigenIndex < 0 || eigenIndex >= config_.eigenBufferCount ||
        eigenCijk_[eigenIndex].empty()) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    if ((d1Indices == nullptr) != (d2Indices == nullptr)) {
      return BGL_ERROR_UNIMPLEMENTED;  // derivatives come in pairs
    }
    obs::ScopedSpan span(recorder_, obs::Category::kUpdateTransitionMatrices,
                         "updateTransitionMatrices");
    recorder_.count(obs::Counter::kTransitionMatrices,
                    static_cast<std::uint64_t>(count));
    const int s = config_.stateCount;
    const auto& cijk = eigenCijk_[eigenIndex];
    const auto& eval = eigenValues_[eigenIndex];
    std::vector<double> expl(s), lam1(s), lam2(s);

    for (int e = 0; e < count; ++e) {
      const int pi = probIndices[e];
      if (pi < 0 || pi >= config_.matrixBufferCount) return BGL_ERROR_OUT_OF_RANGE;
      Real* pd = matrices_[pi].data();
      Real* d1 = nullptr;
      Real* d2 = nullptr;
      if (d1Indices != nullptr) {
        if (d1Indices[e] < 0 || d1Indices[e] >= config_.matrixBufferCount ||
            d2Indices[e] < 0 || d2Indices[e] >= config_.matrixBufferCount) {
          return BGL_ERROR_OUT_OF_RANGE;
        }
        d1 = matrices_[d1Indices[e]].data();
        d2 = matrices_[d2Indices[e]].data();
      }
      const double t = edgeLengths[e];
      for (int c = 0; c < config_.categoryCount; ++c) {
        const double r = rates_[0][c];
        for (int k = 0; k < s; ++k) {
          const double lam = eval[k] * r;
          expl[k] = std::exp(lam * t);
          lam1[k] = lam;
          lam2[k] = lam * lam;
        }
        const std::size_t plane = static_cast<std::size_t>(c) * s * s;
        for (int i = 0; i < s; ++i) {
          for (int j = 0; j < s; ++j) {
            const double* ck = cijk.data() + (static_cast<std::size_t>(i) * s + j) * s;
            double sum = 0.0, sum1 = 0.0, sum2 = 0.0;
            for (int k = 0; k < s; ++k) {
              const double v = ck[k] * expl[k];
              sum += v;
              sum1 += v * lam1[k];
              sum2 += v * lam2[k];
            }
            const std::size_t idx = plane + static_cast<std::size_t>(i) * s + j;
            pd[idx] = static_cast<Real>(sum > 0.0 ? sum : 0.0);
            if (d1 != nullptr) {
              d1[idx] = static_cast<Real>(sum1);
              d2[idx] = static_cast<Real>(sum2);
            }
          }
        }
      }
    }
    return BGL_SUCCESS;
  }

  int updateTransitionMatricesWithModels(const int* eigenIndices,
                                         const int* ratesIndices,
                                         const int* probIndices,
                                         const double* edgeLengths,
                                         int count) override {
    obs::ScopedSpan span(recorder_, obs::Category::kUpdateTransitionMatrices,
                         "updateTransitionMatricesWithModels");
    recorder_.count(obs::Counter::kTransitionMatrices,
                    static_cast<std::uint64_t>(count));
    const int s = config_.stateCount;
    std::vector<double> expl(s);
    for (int e = 0; e < count; ++e) {
      const int ei = eigenIndices[e];
      const int ri = ratesIndices != nullptr ? ratesIndices[e] : 0;
      const int pi = probIndices[e];
      if (!validEigenSlot(ei) || eigenCijk_[ei].empty() || !validEigenSlot(ri) ||
          pi < 0 || pi >= config_.matrixBufferCount) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const auto& cijk = eigenCijk_[ei];
      const auto& eval = eigenValues_[ei];
      const auto& rates = rates_[ri];
      Real* pd = matrices_[pi].data();
      const double t = edgeLengths[e];
      for (int c = 0; c < config_.categoryCount; ++c) {
        const double r = rates[c];
        for (int k = 0; k < s; ++k) expl[k] = std::exp((eval[k] * r) * t);
        const std::size_t plane = static_cast<std::size_t>(c) * s * s;
        for (int i = 0; i < s; ++i) {
          for (int j = 0; j < s; ++j) {
            const double* ck =
                cijk.data() + (static_cast<std::size_t>(i) * s + j) * s;
            double sum = 0.0;
            for (int k = 0; k < s; ++k) sum += ck[k] * expl[k];
            pd[plane + static_cast<std::size_t>(i) * s + j] =
                static_cast<Real>(sum > 0.0 ? sum : 0.0);
          }
        }
      }
    }
    return BGL_SUCCESS;
  }

  int setTransitionMatrix(int matrixIndex, const double* inMatrix,
                          double /*paddedValue*/) override {
    if (matrixIndex < 0 || matrixIndex >= config_.matrixBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    auto& m = matrices_[matrixIndex];
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<Real>(inMatrix[i]);
    recorder_.count(obs::Counter::kBytesIn, m.size() * sizeof(double));
    return BGL_SUCCESS;
  }

  int getTransitionMatrix(int matrixIndex, double* outMatrix) override {
    if (matrixIndex < 0 || matrixIndex >= config_.matrixBufferCount) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    const auto& m = matrices_[matrixIndex];
    for (std::size_t i = 0; i < m.size(); ++i) outMatrix[i] = static_cast<double>(m[i]);
    recorder_.count(obs::Counter::kBytesOut, m.size() * sizeof(double));
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------
  // Partials operations
  // ------------------------------------------------------------------

  int updatePartials(const BglOperation* operations, int count,
                     int cumulativeScaleIndex) override {
    // SCALING_ALWAYS: the library owns the scale bookkeeping. Each
    // operation rescales into buffer (dest - tipCount); the last scale
    // buffer is the cumulative one, reset per batch and picked up
    // automatically by root/edge calculations.
    std::vector<BglOperation> rewritten;
    if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) && config_.scaleBufferCount > 0) {
      rewritten.assign(operations, operations + count);
      for (auto& op : rewritten) {
        if (op.destinationScaleWrite == BGL_OP_NONE) {
          op.destinationScaleWrite = op.destinationPartials - config_.tipCount;
        }
      }
      operations = rewritten.data();
      cumulativeScaleIndex = autoCumulativeIndex();
      const int rc = resetScaleFactors(cumulativeScaleIndex);
      if (rc != BGL_SUCCESS) return rc;
    }
    const int rc = validateOperations(operations, count, cumulativeScaleIndex);
    if (rc != BGL_SUCCESS) return rc;
    obs::ScopedSpan span(recorder_, obs::Category::kUpdatePartials,
                         "updatePartials");
    recorder_.count(obs::Counter::kPartialsOperations,
                    static_cast<std::uint64_t>(count));
    executeOperations(operations, count, cumulativeScaleIndex);
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------
  // Multi-partition mode
  // ------------------------------------------------------------------

  int setPatternPartitions(int partitionCount,
                           const int* patternPartitions) override {
    if (partitionCount < 1) return BGL_ERROR_OUT_OF_RANGE;
    if (partitionCount == 1) {
      partitionCount_ = 1;
      partBegin_.assign(1, 0);
      partEnd_.assign(1, config_.patternCount);
      return BGL_SUCCESS;
    }
    // The C shim guarantees a non-decreasing contiguous cover; convert
    // the per-pattern map into [begin, end) ranges.
    partBegin_.assign(partitionCount, 0);
    partEnd_.assign(partitionCount, 0);
    for (int k = 0; k < config_.patternCount; ++k) {
      const int q = patternPartitions[k];
      if (q < 0 || q >= partitionCount) return BGL_ERROR_OUT_OF_RANGE;
      if (partEnd_[q] == 0) partBegin_[q] = k;
      partEnd_[q] = k + 1;
    }
    partitionCount_ = partitionCount;
    return BGL_SUCCESS;
  }

  int updatePartialsByPartition(const BglOperationByPartition* operations,
                                int count, int cumulativeScaleIndex) override {
    if (partitionCount_ < 1) return BGL_ERROR_OUT_OF_RANGE;
    std::vector<BglOperationByPartition> rewritten;
    if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) && config_.scaleBufferCount > 0) {
      rewritten.assign(operations, operations + count);
      for (auto& op : rewritten) {
        if (op.destinationScaleWrite == BGL_OP_NONE) {
          op.destinationScaleWrite = op.destinationPartials - config_.tipCount;
        }
      }
      operations = rewritten.data();
      cumulativeScaleIndex = autoCumulativeIndex();
      // One reset covers every partition: ranges are disjoint, and each
      // partition then accumulates only its own [begin, end) in op order
      // — the same FP sequence a per-partition instance would produce.
      const int rc = resetScaleFactors(cumulativeScaleIndex);
      if (rc != BGL_SUCCESS) return rc;
    }
    const int rc = validatePartitionedOperations(operations, count,
                                                 cumulativeScaleIndex);
    if (rc != BGL_SUCCESS) return rc;
    obs::ScopedSpan span(recorder_, obs::Category::kUpdatePartials,
                         "updatePartialsByPartition");
    recorder_.count(obs::Counter::kPartialsOperations,
                    static_cast<std::uint64_t>(count));
    executePartitionedOperations(operations, count, cumulativeScaleIndex);
    return BGL_SUCCESS;
  }

  int calculateRootLogLikelihoodsByPartition(
      const int* bufferIndices, const int* weightIndices, const int* freqIndices,
      const int* scaleIndices, const int* partitionIndices, int count,
      double* outByPartition, double* outTotal) override {
    if (partitionCount_ < 1) return BGL_ERROR_OUT_OF_RANGE;
    obs::ScopedSpan span(recorder_, obs::Category::kRootLogLikelihoods,
                         "rootLogLikelihoodsByPartition");
    recorder_.count(obs::Counter::kRootEvaluations,
                    static_cast<std::uint64_t>(count));
    double total = 0.0;
    bool finite = true;
    for (int n = 0; n < count; ++n) {
      const int q = partitionIndices[n];
      if (q < 0 || q >= partitionCount_) return BGL_ERROR_OUT_OF_RANGE;
      const int b = bufferIndices[n];
      if (b < 0 || b >= config_.bufferCount() || partials_[b].empty()) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (!validEigenSlot(weightIndices[n]) || !validEigenSlot(freqIndices[n])) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const Real* cum = nullptr;
      if (scaleIndices != nullptr && scaleIndices[n] != BGL_OP_NONE) {
        if (!validScale(scaleIndices[n])) return BGL_ERROR_OUT_OF_RANGE;
        cum = scale_[scaleIndices[n]].data();
      } else if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) &&
                 config_.scaleBufferCount > 0) {
        cum = scale_[autoCumulativeIndex()].data();
      }
      const int kBegin = partBegin_[q];
      const int kEnd = partEnd_[q];
      computeRootSitesRange(partials_[b].data(), freqs_[freqIndices[n]].data(),
                            weights_[weightIndices[n]].data(), cum, kBegin, kEnd);
      const double sum = weightedSiteSumRange(siteLogL_.data(), kBegin, kEnd);
      outByPartition[n] = sum;
      total += sum;
      finite = finite && std::isfinite(sum);
    }
    if (outTotal != nullptr) *outTotal = total;
    return finite ? BGL_SUCCESS : BGL_ERROR_FLOATING_POINT;
  }

  // ------------------------------------------------------------------
  // Scaling
  // ------------------------------------------------------------------

  int accumulateScaleFactors(const int* scaleIndices, int count,
                             int cumulativeScaleIndex) override {
    if (!validScale(cumulativeScaleIndex)) return BGL_ERROR_OUT_OF_RANGE;
    obs::ScopedSpan span(recorder_, obs::Category::kScaling, "accumulateScaleFactors");
    recorder_.count(obs::Counter::kScaleAccumulations,
                    static_cast<std::uint64_t>(count));
    for (int i = 0; i < count; ++i) {
      if (!validScale(scaleIndices[i])) return BGL_ERROR_OUT_OF_RANGE;
      auto& cum = scale_[cumulativeScaleIndex];
      const auto& src = scale_[scaleIndices[i]];
      for (int k = 0; k < config_.patternCount; ++k) cum[k] += src[k];
    }
    return BGL_SUCCESS;
  }

  int removeScaleFactors(const int* scaleIndices, int count,
                         int cumulativeScaleIndex) override {
    if (!validScale(cumulativeScaleIndex)) return BGL_ERROR_OUT_OF_RANGE;
    obs::ScopedSpan span(recorder_, obs::Category::kScaling, "removeScaleFactors");
    recorder_.count(obs::Counter::kScaleAccumulations,
                    static_cast<std::uint64_t>(count));
    for (int i = 0; i < count; ++i) {
      if (!validScale(scaleIndices[i])) return BGL_ERROR_OUT_OF_RANGE;
      auto& cum = scale_[cumulativeScaleIndex];
      const auto& src = scale_[scaleIndices[i]];
      for (int k = 0; k < config_.patternCount; ++k) cum[k] -= src[k];
    }
    return BGL_SUCCESS;
  }

  int resetScaleFactors(int cumulativeScaleIndex) override {
    if (!validScale(cumulativeScaleIndex)) return BGL_ERROR_OUT_OF_RANGE;
    std::fill(scale_[cumulativeScaleIndex].begin(),
              scale_[cumulativeScaleIndex].end(), Real(0));
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------
  // Likelihood integration
  // ------------------------------------------------------------------

  int calculateRootLogLikelihoods(const int* bufferIndices, const int* weightIndices,
                                  const int* freqIndices, const int* scaleIndices,
                                  int count, double* outSumLogLikelihood) override {
    obs::ScopedSpan span(recorder_, obs::Category::kRootLogLikelihoods,
                         "rootLogLikelihoods");
    recorder_.count(obs::Counter::kRootEvaluations,
                    static_cast<std::uint64_t>(count));
    double total = 0.0;
    for (int n = 0; n < count; ++n) {
      const int b = bufferIndices[n];
      if (b < 0 || b >= config_.bufferCount() || partials_[b].empty()) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (!validEigenSlot(weightIndices[n]) || !validEigenSlot(freqIndices[n])) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const Real* cum = nullptr;
      if (scaleIndices != nullptr && scaleIndices[n] != BGL_OP_NONE) {
        if (!validScale(scaleIndices[n])) return BGL_ERROR_OUT_OF_RANGE;
        cum = scale_[scaleIndices[n]].data();
      } else if ((config_.flags & BGL_FLAG_SCALING_ALWAYS) &&
                 config_.scaleBufferCount > 0) {
        cum = scale_[autoCumulativeIndex()].data();
      }
      computeRootSites(partials_[b].data(), freqs_[freqIndices[n]].data(),
                       weights_[weightIndices[n]].data(), cum);
      total += weightedSiteSum(siteLogL_.data());
    }
    if (!std::isfinite(total)) {
      *outSumLogLikelihood = total;
      return BGL_ERROR_FLOATING_POINT;
    }
    *outSumLogLikelihood = total;
    return BGL_SUCCESS;
  }

  int calculateEdgeLogLikelihoods(const int* parentIndices, const int* childIndices,
                                  const int* probIndices, const int* d1Indices,
                                  const int* d2Indices, const int* weightIndices,
                                  const int* freqIndices, const int* scaleIndices,
                                  int count, double* outSumLogLikelihood,
                                  double* outSumFirstDerivative,
                                  double* outSumSecondDerivative) override {
    obs::ScopedSpan span(recorder_, obs::Category::kEdgeLogLikelihoods,
                         "edgeLogLikelihoods");
    recorder_.count(obs::Counter::kEdgeEvaluations,
                    static_cast<std::uint64_t>(count));
    const bool derivs = d1Indices != nullptr && d2Indices != nullptr &&
                        outSumFirstDerivative != nullptr &&
                        outSumSecondDerivative != nullptr;
    double total = 0.0, totalD1 = 0.0, totalD2 = 0.0;
    for (int n = 0; n < count; ++n) {
      const int pb = parentIndices[n];
      const int cb = childIndices[n];
      if (pb < 0 || pb >= config_.bufferCount() || partials_[pb].empty()) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (cb < 0 || cb >= config_.bufferCount()) return BGL_ERROR_OUT_OF_RANGE;
      if (probIndices[n] < 0 || probIndices[n] >= config_.matrixBufferCount) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (!validEigenSlot(weightIndices[n]) || !validEigenSlot(freqIndices[n])) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const Real* child = nullptr;
      const std::int32_t* childStates = nullptr;
      if (!tipStates_[cb].empty()) {
        childStates = tipStates_[cb].data();
      } else if (!partials_[cb].empty()) {
        child = partials_[cb].data();
      } else {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      const Real* cum = nullptr;
      if (scaleIndices != nullptr && scaleIndices[n] != BGL_OP_NONE) {
        if (!validScale(scaleIndices[n])) return BGL_ERROR_OUT_OF_RANGE;
        cum = scale_[scaleIndices[n]].data();
      }
      const Real* d1m = derivs ? matrices_[d1Indices[n]].data() : nullptr;
      const Real* d2m = derivs ? matrices_[d2Indices[n]].data() : nullptr;
      edgeLikelihoodScalar<Real>(
          partials_[pb].data(), child, childStates, matrices_[probIndices[n]].data(),
          d1m, d2m, freqs_[freqIndices[n]].data(), weights_[weightIndices[n]].data(),
          cum, siteLogL_.data(), derivs ? siteD1_.data() : nullptr,
          derivs ? siteD2_.data() : nullptr, config_.patternCount,
          config_.categoryCount, config_.stateCount, 0, config_.patternCount);
      total += weightedSiteSum(siteLogL_.data());
      if (derivs) {
        totalD1 += weightedSiteSum(siteD1_.data());
        totalD2 += weightedSiteSum(siteD2_.data());
      }
    }
    *outSumLogLikelihood = total;
    if (derivs) {
      *outSumFirstDerivative = totalD1;
      *outSumSecondDerivative = totalD2;
    }
    return std::isfinite(total) ? BGL_SUCCESS : BGL_ERROR_FLOATING_POINT;
  }

  int getSiteLogLikelihoods(double* outLogLikelihoods) override {
    for (int k = 0; k < config_.patternCount; ++k) {
      outLogLikelihoods[k] = static_cast<double>(siteLogL_[k]);
    }
    recorder_.count(obs::Counter::kBytesOut,
                    static_cast<std::uint64_t>(config_.patternCount) * sizeof(double));
    return BGL_SUCCESS;
  }

  // ------------------------------------------------------------------
  // Timeline (see the bglGetTimeline contract in api/bgl.h)
  // ------------------------------------------------------------------

  int getTimeline(BglTimeline* out) override {
    if (!recorder_.timingEnabled()) return BGL_ERROR_UNIMPLEMENTED;
    const double secs = recorder_.timelineSeconds();
    // Host execution: modeled time is measured time.
    out->modeledSeconds = secs > timelineBaseSeconds_ ? secs - timelineBaseSeconds_ : 0.0;
    out->measuredSeconds = out->modeledSeconds;
    const auto ops = recorder_.counter(obs::Counter::kPartialsOperations);
    out->kernelLaunches = ops > timelineBaseOps_ ? ops - timelineBaseOps_ : 0;
    const auto bytes = recorder_.counter(obs::Counter::kBytesIn) +
                       recorder_.counter(obs::Counter::kBytesOut);
    out->bytesCopied = bytes > timelineBaseBytes_ ? bytes - timelineBaseBytes_ : 0;
    return BGL_SUCCESS;
  }

  int resetTimeline() override {
    recorder_.enableTiming();
    timelineBaseSeconds_ = recorder_.timelineSeconds();
    timelineBaseOps_ = recorder_.counter(obs::Counter::kPartialsOperations);
    timelineBaseBytes_ = recorder_.counter(obs::Counter::kBytesIn) +
                         recorder_.counter(obs::Counter::kBytesOut);
    return BGL_SUCCESS;
  }

 protected:
  // ----- hooks the vectorized / threaded subclasses override -----

  /// Kernel flavor used in trace span names ("serial", "sse", "avx", ...).
  virtual const char* kernelLabel() const { return "serial"; }

  /// Level-order batching applies unless the instance was created
  /// synchronous-only (BGL_FLAG_COMPUTATION_SYNCH without ASYNCH). The
  /// threaded subclasses fall back to the serial per-operation path in
  /// that case so --sync runs define the reference bit pattern.
  bool levelOrderEnabled() const {
    return (config_.flags & BGL_FLAG_COMPUTATION_ASYNCH) != 0 ||
           (config_.flags & BGL_FLAG_COMPUTATION_SYNCH) == 0;
  }

  /// Execute a batch of operations. The serial base runs them in order.
  virtual void executeOperations(const BglOperation* ops, int count,
                                 int cumulativeScaleIndex) {
    for (int i = 0; i < count; ++i) {
      obs::ScopedSpan span(recorder_, obs::Category::kOperation, kernelLabel());
      executeOperation(ops[i], 0, config_.patternCount);
      finishOperationScaling(ops[i], cumulativeScaleIndex);
    }
  }

  /// Strip the partition tag: the first seven fields of
  /// BglOperationByPartition are exactly a BglOperation.
  static BglOperation baseOp(const BglOperationByPartition& op) {
    return BglOperation{op.destinationPartials,    op.destinationScaleWrite,
                        op.destinationScaleRead,   op.child1Partials,
                        op.child1TransitionMatrix, op.child2Partials,
                        op.child2TransitionMatrix};
  }

  /// Execute a partitioned batch. The serial base runs operations in
  /// order, each restricted to its partition's pattern range — the
  /// reference FP sequence the level-order paths must reproduce.
  virtual void executePartitionedOperations(const BglOperationByPartition* ops,
                                            int count, int cumulativeScaleIndex) {
    for (int i = 0; i < count; ++i) {
      obs::ScopedSpan span(recorder_, obs::Category::kOperation, kernelLabel());
      const BglOperation op = baseOp(ops[i]);
      const int kBegin = partBegin_[ops[i].partition];
      const int kEnd = partEnd_[ops[i].partition];
      executeOperation(op, kBegin, kEnd);
      rescaleOperationRange(op, kBegin, kEnd);
      accumulateOperationScaleRange(op, cumulativeScaleIndex, kBegin, kEnd);
    }
  }

  /// Compute one operation over a pattern range (thread-splittable).
  void executeOperation(const BglOperation& op, int kBegin, int kEnd) {
    const int p = config_.patternCount;
    const int c = config_.categoryCount;
    const int s = config_.stateCount;
    Real* dest = ensurePartials(op.destinationPartials).data();
    const Real* m1 = matrices_[op.child1TransitionMatrix].data();
    const Real* m2 = matrices_[op.child2TransitionMatrix].data();

    const bool tip1 = !tipStates_[op.child1Partials].empty();
    const bool tip2 = !tipStates_[op.child2Partials].empty();
    if (tip1 && tip2) {
      statesStates(dest, tipStates_[op.child1Partials].data(), m1,
                   tipStates_[op.child2Partials].data(), m2, p, c, s, kBegin, kEnd);
    } else if (tip1) {
      statesPartials(dest, tipStates_[op.child1Partials].data(), m1,
                     partials_[op.child2Partials].data(), m2, p, c, s, kBegin, kEnd);
    } else if (tip2) {
      statesPartials(dest, tipStates_[op.child2Partials].data(), m2,
                     partials_[op.child1Partials].data(), m1, p, c, s, kBegin, kEnd);
    } else {
      partialsPartials(dest, partials_[op.child1Partials].data(), m1,
                       partials_[op.child2Partials].data(), m2, p, c, s, kBegin,
                       kEnd);
    }
  }

  /// Rescaling + cumulative accumulation after an operation completes.
  /// The level-order threaded paths split the two halves: rescales run at
  /// the end of each level, accumulations at the end of the whole batch in
  /// original operation order (the same FP sequence as this serial path —
  /// see api/levelize.h).
  void finishOperationScaling(const BglOperation& op, int cumulativeScaleIndex) {
    rescaleOperation(op);
    accumulateOperationScale(op, cumulativeScaleIndex);
  }

  void rescaleOperation(const BglOperation& op) {
    rescaleOperationRange(op, 0, config_.patternCount);
  }

  void rescaleOperationRange(const BglOperation& op, int kBegin, int kEnd) {
    if (op.destinationScaleWrite == BGL_OP_NONE) return;
    obs::ScopedSpan span(recorder_, obs::Category::kRescale, "rescale");
    recorder_.count(obs::Counter::kRescaleEvents);
    Real* dest = partials_[op.destinationPartials].data();
    Real* scale = scale_[op.destinationScaleWrite].data();
    rescaleScalar<Real>(dest, scale, config_.patternCount, config_.categoryCount,
                        config_.stateCount, kBegin, kEnd);
  }

  void accumulateOperationScale(const BglOperation& op, int cumulativeScaleIndex) {
    accumulateOperationScaleRange(op, cumulativeScaleIndex, 0,
                                  config_.patternCount);
  }

  void accumulateOperationScaleRange(const BglOperation& op,
                                     int cumulativeScaleIndex, int kBegin,
                                     int kEnd) {
    if (op.destinationScaleWrite == BGL_OP_NONE || cumulativeScaleIndex == BGL_OP_NONE) {
      return;
    }
    Real* cum = scale_[cumulativeScaleIndex].data();
    const Real* scale = scale_[op.destinationScaleWrite].data();
    for (int k = kBegin; k < kEnd; ++k) cum[k] += scale[k];
  }

  /// Root-site integration over all patterns (thread-pool overrides this —
  /// Section VI-C parallelizes the root likelihood too).
  virtual void computeRootSites(const Real* partials, const Real* freqs,
                                const Real* weights, const Real* cumScale) {
    rootLikelihoodScalar<Real>(partials, freqs, weights, cumScale, siteLogL_.data(),
                               config_.patternCount, config_.categoryCount,
                               config_.stateCount, 0, config_.patternCount);
  }

  /// Ranged root-site integration for one partition. Per-pattern math is
  /// position-independent, so the scalar kernel over [kBegin, kEnd)
  /// reproduces a per-partition instance's computeRootSites bit for bit.
  virtual void computeRootSitesRange(const Real* partials, const Real* freqs,
                                     const Real* weights, const Real* cumScale,
                                     int kBegin, int kEnd) {
    rootLikelihoodScalar<Real>(partials, freqs, weights, cumScale,
                               siteLogL_.data(), config_.patternCount,
                               config_.categoryCount, config_.stateCount, kBegin,
                               kEnd);
  }

  // ----- inner compute kernels (vectorized subclasses override) -----

  virtual void partialsPartials(Real* dest, const Real* p1, const Real* m1,
                                const Real* p2, const Real* m2, int p, int c, int s,
                                int kBegin, int kEnd) {
    partialsPartialsScalar<Real>(dest, p1, m1, p2, m2, p, c, s, kBegin, kEnd);
  }

  virtual void statesPartials(Real* dest, const std::int32_t* s1, const Real* m1,
                              const Real* p2, const Real* m2, int p, int c, int s,
                              int kBegin, int kEnd) {
    statesPartialsScalar<Real>(dest, s1, m1, p2, m2, p, c, s, kBegin, kEnd);
  }

  virtual void statesStates(Real* dest, const std::int32_t* s1, const Real* m1,
                            const std::int32_t* s2, const Real* m2, int p, int c,
                            int s, int kBegin, int kEnd) {
    statesStatesScalar<Real>(dest, s1, m1, s2, m2, p, c, s, kBegin, kEnd);
  }

  // ----- shared helpers -----

  std::size_t partialsSize() const {
    return static_cast<std::size_t>(config_.categoryCount) * config_.patternCount *
           config_.stateCount;
  }
  std::size_t matrixSize() const {
    return static_cast<std::size_t>(config_.categoryCount) * config_.stateCount *
           config_.stateCount;
  }

  AlignedVector<Real>& ensurePartials(int bufferIndex) {
    auto& buf = partials_[bufferIndex];
    if (buf.empty()) buf.assign(partialsSize(), Real(0));
    return buf;
  }

  bool validScale(int index) const {
    return index >= 0 && index < config_.scaleBufferCount;
  }
  bool validEigenSlot(int index) const {
    return index >= 0 && index < config_.eigenBufferCount;
  }
  int autoCumulativeIndex() const { return config_.scaleBufferCount - 1; }

  int validateOperations(const BglOperation* ops, int count,
                         int cumulativeScaleIndex) const {
    if (cumulativeScaleIndex != BGL_OP_NONE && !validScale(cumulativeScaleIndex)) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    for (int i = 0; i < count; ++i) {
      const auto& op = ops[i];
      if (op.destinationPartials < config_.tipCount ||
          op.destinationPartials >= config_.bufferCount()) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      for (int child : {op.child1Partials, op.child2Partials}) {
        if (child < 0 || child >= config_.bufferCount()) return BGL_ERROR_OUT_OF_RANGE;
        if (tipStates_[child].empty() && partials_[child].empty()) {
          // must have been produced by an earlier op in this batch
          bool produced = false;
          for (int j = 0; j < i; ++j) produced |= ops[j].destinationPartials == child;
          if (!produced) return BGL_ERROR_OUT_OF_RANGE;
        }
      }
      for (int m : {op.child1TransitionMatrix, op.child2TransitionMatrix}) {
        if (m < 0 || m >= config_.matrixBufferCount) return BGL_ERROR_OUT_OF_RANGE;
      }
      if (op.destinationScaleWrite != BGL_OP_NONE &&
          !validScale(op.destinationScaleWrite)) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
    }
    return BGL_SUCCESS;
  }

  double weightedSiteSum(const Real* site) const {
    return weightedSiteSumRange(site, 0, config_.patternCount);
  }

  /// Serial ascending weighted sum over a pattern range — the partition's
  /// patterns occupy [kBegin, kEnd) of the concatenated axis, so this is
  /// the same FP sequence as a per-partition instance's weightedSiteSum.
  double weightedSiteSumRange(const Real* site, int kBegin, int kEnd) const {
    double sum = 0.0;
    for (int k = kBegin; k < kEnd; ++k) {
      sum += patternWeights_[k] * static_cast<double>(site[k]);
    }
    return sum;
  }

  int validatePartitionedOperations(const BglOperationByPartition* ops, int count,
                                    int cumulativeScaleIndex) const {
    if (cumulativeScaleIndex != BGL_OP_NONE && !validScale(cumulativeScaleIndex)) {
      return BGL_ERROR_OUT_OF_RANGE;
    }
    for (int i = 0; i < count; ++i) {
      const auto& op = ops[i];
      if (op.partition < 0 || op.partition >= partitionCount_) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      if (op.destinationPartials < config_.tipCount ||
          op.destinationPartials >= config_.bufferCount()) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
      for (int child : {op.child1Partials, op.child2Partials}) {
        if (child < 0 || child >= config_.bufferCount()) return BGL_ERROR_OUT_OF_RANGE;
        if (tipStates_[child].empty() && partials_[child].empty()) {
          bool produced = false;
          for (int j = 0; j < i; ++j) produced |= ops[j].destinationPartials == child;
          if (!produced) return BGL_ERROR_OUT_OF_RANGE;
        }
      }
      for (int m : {op.child1TransitionMatrix, op.child2TransitionMatrix}) {
        if (m < 0 || m >= config_.matrixBufferCount) return BGL_ERROR_OUT_OF_RANGE;
      }
      if (op.destinationScaleWrite != BGL_OP_NONE &&
          !validScale(op.destinationScaleWrite)) {
        return BGL_ERROR_OUT_OF_RANGE;
      }
    }
    return BGL_SUCCESS;
  }

  // ----- storage -----
  std::vector<AlignedVector<Real>> partials_;       // by buffer index (lazy)
  std::vector<std::vector<std::int32_t>> tipStates_;// by buffer index (lazy)
  int compactUsed_ = 0;
  std::vector<AlignedVector<Real>> matrices_;
  std::vector<std::vector<double>> eigenCijk_;
  std::vector<std::vector<double>> eigenValues_;
  std::vector<AlignedVector<Real>> freqs_;
  std::vector<AlignedVector<Real>> weights_;
  std::vector<std::vector<double>> rates_;  // by eigen slot
  std::vector<double> patternWeights_;

  // Multi-partition state (setPatternPartitions): partition q covers
  // concatenated patterns [partBegin_[q], partEnd_[q]).
  int partitionCount_ = 1;
  std::vector<int> partBegin_{0};
  std::vector<int> partEnd_;
  std::vector<AlignedVector<Real>> scale_;
  AlignedVector<Real> siteLogL_, siteD1_, siteD2_;

  // Timeline baseline captured by resetTimeline().
  double timelineBaseSeconds_ = 0.0;
  std::uint64_t timelineBaseOps_ = 0;
  std::uint64_t timelineBaseBytes_ = 0;
};

}  // namespace bgl::cpu
