// Observability counters: bglGetStatistics totals must agree with the
// number of operations the client issued, on every implementation family,
// and the bglGetTimeline contract (UNIMPLEMENTED until something records)
// must hold.
#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "api/bgl.h"
#include "perfmodel/device_profiles.h"
#include "phylo/likelihood.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

constexpr int kTips = 8;
constexpr int kPatterns = 40;

struct ObsConfig {
  const char* label;
  long requirementFlags;
  int resource;
  bool accelerator;
};

const ObsConfig kObsConfigs[] = {
    {"serial", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE, perf::kHostCpu,
     false},
    {"sse", BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_NONE, perf::kHostCpu, false},
    {"futures", BGL_FLAG_THREADING_FUTURES, perf::kHostCpu, false},
    {"thread_create", BGL_FLAG_THREADING_THREAD_CREATE, perf::kHostCpu, false},
    {"thread_pool", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu, false},
    {"cuda_host", BGL_FLAG_FRAMEWORK_CUDA, perf::kHostCpu, true},
    {"opencl_p5000", BGL_FLAG_FRAMEWORK_OPENCL, perf::kQuadroP5000, true},
};

phylo::TreeLikelihood makeLikelihood(const ObsConfig& config, const phylo::Tree& tree,
                                     const SubstitutionModel& model,
                                     const PatternSet& data, bool scaling = false) {
  phylo::LikelihoodOptions opts;
  opts.categories = 2;
  opts.requirementFlags = config.requirementFlags;
  opts.resources = {config.resource};
  opts.useScaling = scaling;
  return phylo::TreeLikelihood(tree, model, data, opts);
}

class ObsCounters : public ::testing::TestWithParam<int> {};

TEST_P(ObsCounters, MatchIssuedOperationCounts) {
  const ObsConfig& config = kObsConfigs[GetParam()];
  Rng rng(501);
  auto tree = phylo::Tree::random(kTips, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, kPatterns, rng);
  auto like = makeLikelihood(config, tree, model, data);

  BglStatistics stats{};
  ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
  EXPECT_EQ(stats.partialsOperations, 0u) << config.label;
  EXPECT_EQ(stats.transitionMatrices, 0u) << config.label;
  EXPECT_EQ(stats.rootEvaluations, 0u) << config.label;

  const int evaluations = 3;
  for (int i = 0; i < evaluations; ++i) like.logLikelihood();

  // Per evaluation the client issues one matrix batch covering every branch
  // (2*tips - 2), one partials batch with one operation per internal node
  // (tips - 1), and one root integration.
  ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
  EXPECT_EQ(stats.partialsOperations,
            static_cast<unsigned long long>(evaluations * (kTips - 1)))
      << config.label;
  EXPECT_EQ(stats.transitionMatrices,
            static_cast<unsigned long long>(evaluations * (2 * kTips - 2)))
      << config.label;
  EXPECT_EQ(stats.rootEvaluations, static_cast<unsigned long long>(evaluations))
      << config.label;
  EXPECT_EQ(stats.edgeEvaluations, 0u) << config.label;
  EXPECT_EQ(stats.rescaleEvents, 0u) << config.label;

  if (config.accelerator) {
    EXPECT_GT(stats.kernelLaunches, 0u) << config.label;
    EXPECT_GT(stats.bytesCopiedIn, 0u) << config.label;
    EXPECT_GT(stats.bytesCopiedOut, 0u) << config.label;
  } else {
    EXPECT_EQ(stats.kernelLaunches, 0u) << config.label;
  }

  ASSERT_EQ(bglResetStatistics(like.instance()), BGL_SUCCESS);
  ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
  EXPECT_EQ(stats.partialsOperations, 0u) << config.label;
  EXPECT_EQ(stats.transitionMatrices, 0u) << config.label;
  EXPECT_EQ(stats.kernelLaunches, 0u) << config.label;
}

TEST_P(ObsCounters, EdgeAndRescaleCountersTrackUsage) {
  const ObsConfig& config = kObsConfigs[GetParam()];
  Rng rng(502);
  auto tree = phylo::Tree::random(kTips, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, kPatterns, rng);

  {
    auto like = makeLikelihood(config, tree, model, data, /*scaling=*/true);
    like.logLikelihood();
    BglStatistics stats{};
    ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
    // With scaling enabled every partials operation rescales its result.
    EXPECT_EQ(stats.rescaleEvents, static_cast<unsigned long long>(kTips - 1))
        << config.label;
  }

  auto like = makeLikelihood(config, tree, model, data);
  like.logLikelihood();
  like.rootEdgeLogLikelihood(0.05, nullptr, nullptr);
  BglStatistics stats{};
  ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
  EXPECT_EQ(stats.edgeEvaluations, 1u) << config.label;
}

TEST_P(ObsCounters, DisabledModeRecordsNoTiming) {
  const ObsConfig& config = kObsConfigs[GetParam()];
  Rng rng(503);
  auto tree = phylo::Tree::random(kTips, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, kPatterns, rng);
  auto like = makeLikelihood(config, tree, model, data);
  like.logLikelihood();

  // Counters are live, but no span timing was enabled: the seconds fields
  // must all stay exactly zero.
  BglStatistics stats{};
  ASSERT_EQ(bglGetStatistics(like.instance(), &stats), BGL_SUCCESS);
  EXPECT_GT(stats.partialsOperations, 0u);
  EXPECT_EQ(stats.updatePartialsSeconds, 0.0) << config.label;
  EXPECT_EQ(stats.updateTransitionMatricesSeconds, 0.0) << config.label;
  EXPECT_EQ(stats.rootLogLikelihoodsSeconds, 0.0) << config.label;
  EXPECT_EQ(stats.edgeLogLikelihoodsSeconds, 0.0) << config.label;
}

std::string obsConfigName(const ::testing::TestParamInfo<int>& info) {
  return kObsConfigs[info.param].label;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ObsCounters,
                         ::testing::Range(0, static_cast<int>(std::size(kObsConfigs))),
                         obsConfigName);

TEST(ObsTimeline, CpuRequiresResetBeforeGet) {
  Rng rng(504);
  auto tree = phylo::Tree::random(kTips, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, kPatterns, rng);
  phylo::LikelihoodOptions opts;
  opts.requirementFlags = BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE;
  opts.resources = {perf::kHostCpu};
  phylo::TreeLikelihood like(tree, model, data, opts);

  // Contract: a CPU instance that never enabled timing records nothing and
  // must say so instead of returning zeros.
  BglTimeline timeline{};
  EXPECT_EQ(bglGetTimeline(like.instance(), &timeline), BGL_ERROR_UNIMPLEMENTED);

  ASSERT_EQ(bglResetTimeline(like.instance()), BGL_SUCCESS);
  like.logLikelihood();
  ASSERT_EQ(bglGetTimeline(like.instance(), &timeline), BGL_SUCCESS);
  EXPECT_GT(timeline.measuredSeconds, 0.0);
  EXPECT_EQ(timeline.modeledSeconds, timeline.measuredSeconds);  // host: measured
  EXPECT_GT(timeline.kernelLaunches, 0u);  // one per partials operation

  // A second reset re-baselines: with no new work the timeline reads zero.
  ASSERT_EQ(bglResetTimeline(like.instance()), BGL_SUCCESS);
  ASSERT_EQ(bglGetTimeline(like.instance(), &timeline), BGL_SUCCESS);
  EXPECT_EQ(timeline.measuredSeconds, 0.0);
}

TEST(ObsTimeline, AcceleratorRecordsWithoutOptIn) {
  Rng rng(505);
  auto tree = phylo::Tree::random(kTips, rng, 0.1);
  JC69Model model;
  auto data = phylo::simulatePatterns(tree, model, kPatterns, rng);
  phylo::LikelihoodOptions opts;
  opts.requirementFlags = BGL_FLAG_FRAMEWORK_CUDA;
  opts.resources = {perf::kQuadroP5000};
  phylo::TreeLikelihood like(tree, model, data, opts);
  like.logLikelihood();

  BglTimeline timeline{};
  ASSERT_EQ(bglGetTimeline(like.instance(), &timeline), BGL_SUCCESS);
  EXPECT_GT(timeline.kernelLaunches, 0u);
  EXPECT_GT(timeline.modeledSeconds, 0.0);  // roofline-modeled device
  EXPECT_GT(timeline.bytesCopied, 0u);
}

TEST(ObsTimeline, InvalidInstanceRejected) {
  BglTimeline timeline{};
  EXPECT_EQ(bglGetTimeline(424242, &timeline), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetTimeline(0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  BglStatistics stats{};
  EXPECT_EQ(bglGetStatistics(424242, &stats), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetStatistics(0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetTraceFile(424242, "x.json"), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetStatsFile(424242, "x.json"), BGL_ERROR_OUT_OF_RANGE);
}

}  // namespace
}  // namespace bgl
