/**
 * @file bgl.h
 * @brief Public C API of the library: a uniform interface for computing
 * phylogenetic likelihoods on heterogeneous hardware.
 *
 * The API mirrors the BEAGLE design the paper describes: the library has no
 * tree data structure. Client programs own the tree; they drive the library
 * through flexibly indexed buffers of partial likelihoods, transition
 * matrices, eigendecompositions and scale factors, which lets one API serve
 * serial CPU, vectorized CPU, threaded CPU, and accelerator-framework
 * implementations without data-layout assumptions leaking into clients.
 *
 * All functions return BGL_SUCCESS (0) or a negative BglReturnCode.
 */
#ifndef BGL_H
#define BGL_H

#ifdef __cplusplus
extern "C" {
#endif

/** Error codes returned by all API functions. */
typedef enum BglReturnCode {
  BGL_SUCCESS = 0,
  BGL_ERROR_GENERAL = -1,
  BGL_ERROR_OUT_OF_MEMORY = -2,
  BGL_ERROR_UNIDENTIFIED_EXCEPTION = -3,
  BGL_ERROR_UNIMPLEMENTED = -4,
  BGL_ERROR_OUT_OF_RANGE = -5,
  BGL_ERROR_NO_RESOURCE = -6,
  BGL_ERROR_NO_IMPLEMENTATION = -7,
  BGL_ERROR_FLOATING_POINT = -8,
  BGL_ERROR_HARDWARE = -9,       /**< device/runtime failure (launch, transfer) */
  BGL_ERROR_REJECTED = -10       /**< admission control refused the request
                                      (quota, backpressure, or load shedding);
                                      retry later or against another pool */
} BglReturnCode;

/**
 * Capability / preference flags (bitwise-or'able). Used both to describe
 * resources and to request instance properties.
 */
typedef enum BglFlags {
  BGL_FLAG_PRECISION_SINGLE = 1L << 0,   /**< 32-bit floating point */
  BGL_FLAG_PRECISION_DOUBLE = 1L << 1,   /**< 64-bit floating point */

  BGL_FLAG_COMPUTATION_SYNCH = 1L << 2,  /**< synchronous computation */
  BGL_FLAG_COMPUTATION_ASYNCH = 1L << 3, /**< asynchronous computation */

  BGL_FLAG_VECTOR_NONE = 1L << 4,        /**< no explicit vectorization */
  BGL_FLAG_VECTOR_SSE = 1L << 5,         /**< SSE intrinsics */
  BGL_FLAG_VECTOR_AVX = 1L << 6,         /**< AVX intrinsics */

  BGL_FLAG_THREADING_NONE = 1L << 7,     /**< single host thread */
  BGL_FLAG_THREADING_CPP = 1L << 8,      /**< C++ std::thread parallelism */

  BGL_FLAG_PROCESSOR_CPU = 1L << 9,      /**< multicore CPU */
  BGL_FLAG_PROCESSOR_GPU = 1L << 10,     /**< GPU device */
  BGL_FLAG_PROCESSOR_PHI = 1L << 11,     /**< manycore (Phi-class) device */

  BGL_FLAG_FRAMEWORK_CPU = 1L << 12,     /**< native host code */
  BGL_FLAG_FRAMEWORK_CUDA = 1L << 13,    /**< CUDA-framework accelerator model */
  BGL_FLAG_FRAMEWORK_OPENCL = 1L << 14,  /**< OpenCL-framework accelerator model */

  BGL_FLAG_SCALING_MANUAL = 1L << 15,    /**< client-directed rescaling */
  /**
   * Rescale every partials operation automatically. The library assigns
   * scale buffer (destination - tipCount) to each operation, resets and
   * maintains the cumulative buffer (index scaleBufferCount - 1) across
   * each bglUpdatePartials batch, and applies it in root/edge
   * calculations when the caller passes no cumulative index. Requires
   * scaleBufferCount >= internal-node count + 1.
   */
  BGL_FLAG_SCALING_ALWAYS = 1L << 16,

  /* Threading-strategy ablation flags (Section VI / Table III). */
  BGL_FLAG_THREADING_FUTURES = 1L << 17,      /**< per-operation async futures */
  BGL_FLAG_THREADING_THREAD_CREATE = 1L << 18,/**< threads created per call */
  BGL_FLAG_THREADING_THREAD_POOL = 1L << 19,  /**< persistent thread pool */

  /* Kernel-variant selection for the accelerator model (Section VII-B). */
  BGL_FLAG_KERNEL_GPU_STYLE = 1L << 20,  /**< state-parallel work-items */
  BGL_FLAG_KERNEL_X86_STYLE = 1L << 21,  /**< state-loop per work-item */

  /* Disable fused-multiply-add kernel generation (FP_FAST_FMA ablation,
   * Table IV of the paper). */
  BGL_FLAG_FMA_OFF = 1L << 22,

  /* Load-balancing policy hints for the heterogeneous scheduler. These are
   * resolved by the implementation manager, not by any backend: they never
   * disqualify a factory, and they are carried through into the resolved
   * instance flags so multi-instance consumers (pattern splitting, resource
   * auto-selection) can read the requested policy back. */
  BGL_FLAG_LOADBALANCE_NONE = 1L << 23,      /**< equal round-robin sharding */
  BGL_FLAG_LOADBALANCE_BENCHMARK = 1L << 24, /**< calibrate resources by running
                                                  the benchmark workload */
  BGL_FLAG_LOADBALANCE_MODEL = 1L << 25,     /**< seed speed estimates from the
                                                  perf-model device profiles */
  BGL_FLAG_LOADBALANCE_ADAPTIVE = 1L << 26,  /**< proportional sharding plus
                                                  EWMA-driven rebalancing */

  BGL_FLAG_PROCESSOR_FPGA = 1L << 27,        /**< FPGA-class device (no built-in
                                                  backend; plugin capability) */

  BGL_FLAG_COMPUTATION_PIPELINE = 1L << 28   /**< cross-call pipelining: issue
                                                  transition matrices and
                                                  partials on separate device
                                                  streams with event-ordered
                                                  overlap (implies ASYNCH;
                                                  synchronous CPU families
                                                  accept it as a no-op) */
} BglFlags;

/** Description of a hardware resource usable by the library. */
typedef struct BglResource {
  const char* name;        /**< human-readable device name */
  const char* description; /**< vendor / capability summary */
  long supportFlags;       /**< flags the resource can satisfy */
  long requiredFlags;      /**< flags any instance on it will carry */
} BglResource;

/** List of available hardware resources. */
typedef struct BglResourceList {
  BglResource* list;
  int length;
} BglResourceList;

/** Details of a successfully created instance. */
typedef struct BglInstanceDetails {
  int resourceNumber;      /**< index into the resource list */
  const char* resourceName;
  const char* implName;    /**< name of the selected implementation */
  long flags;              /**< resolved instance flags */
} BglInstanceDetails;

/**
 * One partial-likelihoods operation: compute the partials of
 * destinationPartials from two children, each a (buffer, transition matrix)
 * pair. Scale indices are BGL_OP_NONE when unused.
 */
typedef struct BglOperation {
  int destinationPartials;
  int destinationScaleWrite;
  int destinationScaleRead;
  int child1Partials;
  int child1TransitionMatrix;
  int child2Partials;
  int child2TransitionMatrix;
} BglOperation;

#define BGL_OP_NONE (-1)
#define BGL_OP_COUNT 7

/**
 * One partial-likelihoods operation restricted to a data partition: the
 * BglOperation fields plus the partition the operation evaluates. The
 * operation touches only the partition's pattern range (set with
 * bglSetPatternPartitions); its transition-matrix indices normally point at
 * matrices derived from that partition's substitution model
 * (bglUpdateTransitionMatricesWithModels).
 */
typedef struct BglOperationByPartition {
  int destinationPartials;
  int destinationScaleWrite;
  int destinationScaleRead;
  int child1Partials;
  int child1TransitionMatrix;
  int child2Partials;
  int child2TransitionMatrix;
  int partition;              /**< partition index in [0, partitionCount) */
} BglOperationByPartition;

#define BGL_PARTOP_COUNT 8

/** Library version string. */
const char* bglGetVersion(void);

/** Citation blurb, as phylogenetics software conventionally prints. */
const char* bglGetCitation(void);

/**
 * Enumerate hardware resources (CPU plus every accelerator device the
 * framework runtimes expose). The returned pointer is owned by the library
 * and refers to a per-thread snapshot taken at the time of the call: it
 * stays valid (and immutable) until the calling thread's next
 * bglGetResourceList call, and it is safe to call concurrently with
 * plugin registration. Re-call after registering a plugin to observe the
 * refreshed per-resource supportFlags.
 */
BglResourceList* bglGetResourceList(void);

/**
 * Create a likelihood-computation instance.
 *
 * @param tipCount            number of tips (leaf taxa)
 * @param partialsBufferCount partials buffers to allocate (internal nodes
 *                            plus any tips supplied as partials)
 * @param compactBufferCount  compact state buffers (tips supplied as states)
 * @param stateCount          states per character (4, 20, 61, ...)
 * @param patternCount        unique site patterns
 * @param eigenBufferCount    eigendecomposition / frequency / weight slots
 * @param matrixBufferCount   transition probability matrix slots
 * @param categoryCount       rate categories
 * @param scaleBufferCount    scale-factor buffers (0 disables scaling)
 * @param resourceList        preferred resources (indices), or NULL for any
 * @param resourceCount       entries in resourceList
 * @param preferenceFlags     preferred BglFlags
 * @param requirementFlags    required BglFlags
 * @param returnInfo          optional out-param describing the instance
 * @return instance id (>= 0) or a negative BglReturnCode
 */
int bglCreateInstance(int tipCount, int partialsBufferCount, int compactBufferCount,
                      int stateCount, int patternCount, int eigenBufferCount,
                      int matrixBufferCount, int categoryCount, int scaleBufferCount,
                      const int* resourceList, int resourceCount,
                      long preferenceFlags, long requirementFlags,
                      BglInstanceDetails* returnInfo);

/** Destroy an instance and release its resources. */
int bglFinalizeInstance(int instance);

/** Supply tip data as compact integer states (stateCount = gap/ambiguity). */
int bglSetTipStates(int instance, int tipIndex, const int* inStates);

/** Supply tip data as per-state partial likelihoods (pattern-major). */
int bglSetTipPartials(int instance, int tipIndex, const double* inPartials);

/** Set a full partials buffer (patternCount x stateCount x categoryCount). */
int bglSetPartials(int instance, int bufferIndex, const double* inPartials);

/** Read back a partials buffer (category-major, as stored). */
int bglGetPartials(int instance, int bufferIndex, double* outPartials);

/** Set the state frequencies for slot `stateFrequenciesIndex`. */
int bglSetStateFrequencies(int instance, int stateFrequenciesIndex,
                           const double* inStateFrequencies);

/** Set rate-category weights for slot `categoryWeightsIndex`. */
int bglSetCategoryWeights(int instance, int categoryWeightsIndex,
                          const double* inCategoryWeights);

/** Set the (global) rate-category rates. Equivalent to
 * bglSetCategoryRatesWithIndex(instance, 0, inCategoryRates). */
int bglSetCategoryRates(int instance, const double* inCategoryRates);

/**
 * Set the rate-category rates for slot `categoryRatesIndex`. The library
 * holds one rates slot per eigen-buffer slot, so a multi-partition instance
 * can give every partition its own discrete-rate distribution: partition q
 * conventionally keeps its eigendecomposition, frequencies, weights and
 * rates all at slot q. Slot 0 aliases the legacy bglSetCategoryRates
 * buffer. Returns BGL_ERROR_OUT_OF_RANGE for an index outside
 * [0, eigenBufferCount).
 */
int bglSetCategoryRatesWithIndex(int instance, int categoryRatesIndex,
                                 const double* inCategoryRates);

/** Set per-pattern weights (pattern multiplicities). */
int bglSetPatternWeights(int instance, const double* inPatternWeights);

/**
 * Load an eigendecomposition: row-major eigenvectors, inverse eigenvectors,
 * and eigenvalues of the (normalized) rate matrix.
 */
int bglSetEigenDecomposition(int instance, int eigenIndex,
                             const double* inEigenVectors,
                             const double* inInverseEigenVectors,
                             const double* inEigenValues);

/**
 * Compute transition matrices P(t) = E exp(diag(eval) * rate_c * t) E^-1
 * for `count` edges, writing each to the indexed matrix buffer; optional
 * first/second derivative matrices (indices may be NULL).
 */
int bglUpdateTransitionMatrices(int instance, int eigenIndex,
                                const int* probabilityIndices,
                                const int* firstDerivativeIndices,
                                const int* secondDerivativeIndices,
                                const double* edgeLengths, int count);

/**
 * Compute transition matrices for `count` edges where each edge selects its
 * own substitution model: edge i derives from eigendecomposition slot
 * eigenIndices[i] and rate-category slot categoryRatesIndices[i] into
 * matrix buffer probabilityIndices[i]. This is the multi-partition form of
 * bglUpdateTransitionMatrices: one call (and on accelerator instances a
 * near-constant number of kernel launches) re-derives the matrices of
 * every partition, instead of one call per partition. Passing
 * categoryRatesIndices == NULL uses slot 0 (the legacy global rates) for
 * every edge.
 */
int bglUpdateTransitionMatricesWithModels(int instance, const int* eigenIndices,
                                          const int* categoryRatesIndices,
                                          const int* probabilityIndices,
                                          const double* edgeLengths, int count);

/** Set a transition matrix directly (stateCount^2 x categoryCount values). */
int bglSetTransitionMatrix(int instance, int matrixIndex, const double* inMatrix,
                           double paddedValue);

/** Read back a transition matrix. */
int bglGetTransitionMatrix(int instance, int matrixIndex, double* outMatrix);

/**
 * Execute a batch of partial-likelihoods operations (the computational core
 * of the library; Eq. 1 of the paper). Operations are processed in order,
 * except that implementations may execute topology-independent operations
 * concurrently. If `cumulativeScaleIndex` != BGL_OP_NONE, per-operation
 * scale factors are folded into that cumulative buffer.
 */
int bglUpdatePartials(int instance, const BglOperation* operations,
                      int operationCount, int cumulativeScaleIndex);

/**
 * Switch the instance into multi-partition mode (or replace the current
 * partition assignment): the pattern axis is divided into `partitionCount`
 * contiguous ranges by `inPatternPartitions`, an array of patternCount
 * per-pattern partition indices that must be non-decreasing and cover
 * every value in [0, partitionCount) (i.e. partitions are concatenated
 * along the pattern axis). Partition boundaries are derived from the map.
 *
 * After this call, bglUpdatePartialsByPartition evaluates operations over
 * individual partition ranges, bglUpdateTransitionMatricesWithModels
 * derives per-partition matrices, and
 * bglCalculateRootLogLikelihoodsByPartition returns one log likelihood per
 * partition. Partition-blind entry points (bglUpdatePartials,
 * bglCalculateRootLogLikelihoods, ...) still operate on the full pattern
 * axis. Passing partitionCount == 1 returns to single-partition behavior.
 *
 * The per-partition arithmetic is range-blocked, so every partition's
 * result is bitwise identical to a single-partition instance holding that
 * partition's patterns alone (see docs/PERFORMANCE.md, "Multi-partition
 * evaluation").
 *
 * Returns BGL_ERROR_OUT_OF_RANGE for a map that is not a non-decreasing
 * cover of [0, partitionCount), and BGL_ERROR_UNIMPLEMENTED on
 * implementations without multi-partition support.
 */
int bglSetPatternPartitions(int instance, int partitionCount,
                            const int* inPatternPartitions);

/**
 * Execute a batch of partition-restricted partials operations (the
 * multi-partition core). Each operation evaluates Eq. 1 over its
 * partition's pattern range only; operations from different partitions
 * with the same destination buffer are independent (disjoint ranges) and
 * batched implementations fuse all partitions' operations for a tree
 * level into the same per-level kernel launches, keeping launch count
 * O(tree depth) instead of O(depth x partitions). If
 * `cumulativeScaleIndex` != BGL_OP_NONE, per-operation scale factors are
 * folded into that cumulative buffer over each operation's range, in
 * operation order within every partition.
 */
int bglUpdatePartialsByPartition(int instance,
                                 const BglOperationByPartition* operations,
                                 int operationCount, int cumulativeScaleIndex);

/** Accumulate the given scale buffers into cumulative buffer `cumulativeScaleIndex`. */
int bglAccumulateScaleFactors(int instance, const int* scaleIndices, int count,
                              int cumulativeScaleIndex);

/** Remove previously accumulated scale buffers from a cumulative buffer. */
int bglRemoveScaleFactors(int instance, const int* scaleIndices, int count,
                          int cumulativeScaleIndex);

/** Reset a cumulative scale buffer to zero. */
int bglResetScaleFactors(int instance, int cumulativeScaleIndex);

/**
 * Integrate root partials against state frequencies and category weights,
 * producing the total log likelihood (sum over patterns of weighted log
 * site likelihoods). Supports `count` independent subsets.
 */
int bglCalculateRootLogLikelihoods(int instance, const int* bufferIndices,
                                   const int* categoryWeightsIndices,
                                   const int* stateFrequenciesIndices,
                                   const int* cumulativeScaleIndices, int count,
                                   double* outSumLogLikelihood);

/**
 * Integrate root partials per partition: entry i integrates partition
 * partitionIndices[i] of buffer bufferIndices[i] against frequency /
 * weight slots stateFrequenciesIndices[i] / categoryWeightsIndices[i]
 * (conventionally the partition's own slots), applying cumulative scale
 * buffer cumulativeScaleIndices[i] (BGL_OP_NONE: none) over the
 * partition's range. outSumLogLikelihoodByPartition[i] receives entry i's
 * log likelihood; *outSumLogLikelihood (ignored when NULL) the serial sum
 * over entries in order. Batched implementations evaluate every entry in
 * one set of launches and return the whole vector in a single readback.
 * Each per-partition value is bitwise identical to
 * bglCalculateRootLogLikelihoods on a single-partition instance holding
 * that partition alone. Returns BGL_ERROR_FLOATING_POINT when any entry
 * is non-finite (all entries are still written).
 */
int bglCalculateRootLogLikelihoodsByPartition(
    int instance, const int* bufferIndices, const int* categoryWeightsIndices,
    const int* stateFrequenciesIndices, const int* cumulativeScaleIndices,
    const int* partitionIndices, int count,
    double* outSumLogLikelihoodByPartition, double* outSumLogLikelihood);

/**
 * Compute the log likelihood across the edge (parent, child), optionally
 * with first/second derivatives with respect to the edge length (used by
 * maximum-likelihood branch-length optimization).
 */
int bglCalculateEdgeLogLikelihoods(
    int instance, const int* parentBufferIndices, const int* childBufferIndices,
    const int* probabilityIndices, const int* firstDerivativeIndices,
    const int* secondDerivativeIndices, const int* categoryWeightsIndices,
    const int* stateFrequenciesIndices, const int* cumulativeScaleIndices,
    int count, double* outSumLogLikelihood, double* outSumFirstDerivative,
    double* outSumSecondDerivative);

/** Per-pattern log likelihoods from the last root/edge calculation. */
int bglGetSiteLogLikelihoods(int instance, double* outLogLikelihoods);

/** Block until any asynchronous computation for the instance completes. */
int bglWaitForComputation(int instance);

/**
 * Restrict a threaded implementation (or an OpenCL CPU device, via device
 * fission) to `threadCount` host threads. Used by the multicore scaling
 * benchmarks; returns BGL_ERROR_UNIMPLEMENTED for implementations without
 * thread control.
 */
int bglSetThreadCount(int instance, int threadCount);

/** Execution record of an instance. On accelerator instances with a
 * simulated device profile `modeledSeconds` comes from the calibrated
 * roofline model; on CPU instances (and the accelerator host device) it
 * equals measured wall time spent inside API-level operations. */
typedef struct BglTimeline {
  double modeledSeconds;
  double measuredSeconds;
  unsigned long long kernelLaunches;
  unsigned long long bytesCopied;
} BglTimeline;

/**
 * Read the accumulated timeline of an instance.
 *
 * Contract: an instance only returns BGL_SUCCESS here if it has actually
 * been recording. Accelerator instances always record (the device runtime
 * keeps a timeline). CPU instances record span timing only after
 * bglResetTimeline (or trace/stats output) has enabled it; calling
 * bglGetTimeline before that returns BGL_ERROR_UNIMPLEMENTED rather than
 * silently succeeding with zeros.
 */
int bglGetTimeline(int instance, BglTimeline* outTimeline);

/**
 * Reset the accumulated timeline of an instance. On CPU instances this
 * also enables span timing, so `bglResetTimeline(i) == BGL_SUCCESS`
 * followed by computation and bglGetTimeline yields measured seconds on
 * every implementation family.
 */
int bglResetTimeline(int instance);

/**
 * Snapshot of an instance's always-on operation counters plus the time
 * (in seconds) spent inside each API-level entry point. The seconds
 * fields are zero until span timing is enabled (bglResetTimeline,
 * bglSetTraceFile / bglSetStatsFile, or the BGL_TRACE / BGL_STATS
 * environment variables); the counters are always live.
 */
typedef struct BglStatistics {
  unsigned long long partialsOperations;  /**< partials operations executed */
  unsigned long long transitionMatrices;  /**< transition matrices computed */
  unsigned long long rootEvaluations;     /**< root-likelihood subsets */
  unsigned long long edgeEvaluations;     /**< edge-likelihood subsets */
  unsigned long long rescaleEvents;       /**< per-operation rescale passes */
  unsigned long long scaleAccumulations;  /**< scale buffers accumulated/removed */
  unsigned long long kernelLaunches;      /**< device kernel launches */
  unsigned long long bytesCopiedIn;       /**< bytes staged into the instance */
  unsigned long long bytesCopiedOut;      /**< bytes read back out */
  double updatePartialsSeconds;
  double updateTransitionMatricesSeconds;
  double rootLogLikelihoodsSeconds;
  double edgeLogLikelihoodsSeconds;
  unsigned long long streamedLaunches;    /**< launches enqueued on an async
                                               command stream (subset of
                                               kernelLaunches) */
} BglStatistics;

/** Read the instance's operation counters and per-category timings. */
int bglGetStatistics(int instance, BglStatistics* outStatistics);

/**
 * Zero the instance's counters, timings, gauges and retained trace events.
 * The process-wide journal (bglGetJournal) is deliberately NOT cleared:
 * reset re-baselines metrics, but the flight recorder must still show what
 * happened before the reset.
 */
int bglResetStatistics(int instance);

/**
 * Arrange for a Chrome trace-event JSON timeline (loadable in
 * about:tracing or Perfetto) to be written to `path` when the instance is
 * finalized. Enables span timing and event retention immediately. Passing
 * NULL or "" cancels. Equivalent to setting BGL_TRACE in the environment
 * before bglCreateInstance; if several live instances resolve to the same
 * path, later instances write to `path` + ".i<instance>".
 */
int bglSetTraceFile(int instance, const char* path);

/**
 * Arrange for a flat stats-JSON summary (counters plus per-category
 * duration histograms) to be written to `path` at finalize. Enables span
 * timing immediately. Passing NULL or "" cancels. Equivalent to setting
 * BGL_STATS in the environment before bglCreateInstance.
 */
int bglSetStatsFile(int instance, const char* path);

/**
 * Set the number of site patterns computed per work-group for x86-style
 * accelerator kernels (the tuning dimension of Table V in the paper).
 */
int bglSetWorkGroupSize(int instance, int patternsPerWorkGroup);

/** One resource's calibrated (or model-estimated) throughput. */
typedef struct BglBenchmarkedResource {
  int resourceNumber;  /**< index into the resource list */
  double performance;  /**< effective GFLOPS on the calibration workload */
  double seconds;      /**< seconds per calibration evaluation */
  int measured;        /**< 1 = benchmark executed, 0 = perf-model estimate */
} BglBenchmarkedResource;

/**
 * Benchmark hardware resources on a short synthetic partials+root workload
 * (the beagleBenchmarkResources capability of BEAGLE 4.1) and cache the
 * resulting throughput estimates for later scheduling decisions.
 *
 * @param resourceList     resources to benchmark, or NULL for all
 * @param resourceCount    entries in resourceList (ignored when NULL)
 * @param stateCount       workload states per character (<= 0: default 4)
 * @param patternCount     workload site patterns (<= 0: default 1024)
 * @param categoryCount    workload rate categories (<= 0: default 4)
 * @param preferenceFlags  preferred BglFlags for the benchmark instances
 * @param requirementFlags required BglFlags; include
 *                         BGL_FLAG_LOADBALANCE_MODEL to skip execution and
 *                         return perf-model estimates instead
 * @param outBenchmarks    caller-allocated array with room for every
 *                         requested resource
 * @param outCount         number of entries written
 *
 * Resources that no implementation can serve under the given flags are
 * filled with perf-model estimates (measured = 0) rather than omitted.
 * The calibration dataset is deterministic; set BGL_SCHED_SEED to change
 * its seed.
 */
int bglBenchmarkResources(const int* resourceList, int resourceCount,
                          int stateCount, int patternCount, int categoryCount,
                          long preferenceFlags, long requirementFlags,
                          BglBenchmarkedResource* outBenchmarks, int* outCount);

/**
 * Best throughput estimate (effective GFLOPS) known for `resource`:
 * the cached benchmark result when one exists, else a perf-model
 * estimate. Never runs a benchmark itself.
 */
int bglGetResourcePerformance(int resource, double* outPerformance);

/**
 * Human-readable detail for the most recent failed library call on the
 * calling thread, or "" when the last call on this thread succeeded (or
 * carried no detail). The returned pointer is owned by the library and
 * valid until the thread's next library call. Never returns NULL.
 *
 * Populated whenever a layer below the C API can attach detail — device
 * runtime bounds checks, injected faults, instance-creation failures —
 * so a caller seeing BGL_ERROR_HARDWARE or BGL_ERROR_OUT_OF_RANGE can
 * report *which* transfer or index was at fault.
 */
const char* bglGetLastErrorMessage(void);

/**
 * Arm (or disarm) the deterministic fault injector of the simulated
 * device runtimes. `spec` is a comma-separated list of directives
 * `[framework:]kind:value` with kind one of:
 *   launch:N  — the Nth kernel launch after this call fails (one-shot)
 *   memcpy:N  — the Nth device transfer fails (one-shot)
 *   alloc:B   — device allocations beyond a cumulative budget of B bytes
 *               fail (persistent)
 * and framework optionally "cuda" or "opencl" to restrict the directive
 * to one runtime, or "host" for the host-allocation site consulted by the
 * serving layer's instance pool: `host:alloc:N` makes the Nth pooled
 * instance creation (including grow-on-demand reinits) after this call
 * fail with BGL_ERROR_OUT_OF_MEMORY (one-shot, event-counted rather than
 * byte-budgeted; `host` supports only `alloc`). Fired faults surface as
 * BGL_ERROR_HARDWARE (or BGL_ERROR_OUT_OF_MEMORY for the allocation
 * sites) with detail in bglGetLastErrorMessage. Passing NULL or ""
 * disarms. Equivalent to setting BGL_FAULT in the environment before the
 * first library call.
 *
 * Returns BGL_ERROR_OUT_OF_RANGE (with detail in the last-error
 * message) on a malformed spec, leaving the previous spec armed.
 */
int bglSetFaultSpec(const char* spec);

/**
 * What a journal record describes. The journal is the process-wide flight
 * recorder: a fixed-capacity ring of structured operational events (errors,
 * injected faults, stream error latches, shard quarantines, failover steps,
 * rebalances, calibration fallbacks) that is always on and survives
 * bglResetStatistics.
 */
typedef enum BglJournalKind {
  BGL_JOURNAL_ERROR = 1,                /**< error surfaced through the C API */
  BGL_JOURNAL_FAULT_INJECTED = 2,       /**< fault-injector directive fired */
  BGL_JOURNAL_STREAM_ERROR = 3,         /**< async command stream latched an error */
  BGL_JOURNAL_SHARD_QUARANTINE = 4,     /**< split-likelihood shard quarantined */
  BGL_JOURNAL_REAPPORTION = 5,          /**< surviving shards re-apportioned */
  BGL_JOURNAL_RETRY = 6,                /**< shard set rebuilt, evaluation retried */
  BGL_JOURNAL_CPU_FALLBACK = 7,         /**< last-resort host-CPU fallback engaged */
  BGL_JOURNAL_REBALANCE = 8,            /**< adaptive load balancer re-split */
  BGL_JOURNAL_CALIBRATION_FALLBACK = 9, /**< calibration errored; model seed used */
  BGL_JOURNAL_ADMISSION_REJECT = 10,    /**< serving layer refused a session */
  BGL_JOURNAL_POOL_EVICT = 11,          /**< idle pooled instance finalized */
  BGL_JOURNAL_POOL_REINIT = 12          /**< pooled instance re-created larger
                                             (grow-on-demand reinit) */
} BglJournalKind;

/** One journal record. Ids that do not apply are -1; `message` is always
 * NUL-terminated. */
typedef struct BglJournalRecord {
  unsigned long long sequence;  /**< global append index (monotone) */
  unsigned long long timeNs;    /**< monotonic ns since the journal started */
  int kind;                     /**< a BglJournalKind value */
  int code;                     /**< BglReturnCode when error-like, else 0 */
  int instance;                 /**< instance id, -1 unknown / process-wide */
  int resource;                 /**< resource id, -1 unknown */
  int shard;                    /**< split-likelihood shard index, -1 n/a */
  char message[112];            /**< human-readable detail (truncated) */
} BglJournalRecord;

/**
 * Copy the retained journal records, oldest first, into `outRecords`
 * (caller-allocated, room for `capacity` entries). `*outCount` receives the
 * number written. Pass outRecords == NULL (or capacity 0) to query the
 * retained count alone. Lock-free with respect to concurrent appends:
 * records a writer is mid-overwrite on are skipped, never torn.
 */
int bglGetJournal(BglJournalRecord* outRecords, int capacity, int* outCount);

/**
 * Aggregate statistics over every instance the process has created: live
 * instances contribute their current counters, finalized instances the
 * totals they held at finalize. `pendingDepth` sums the async command-stream
 * queue depth gauges of live instances; `pendingDepthMax` is the process
 * high-water mark.
 */
typedef struct BglProcessStatistics {
  int liveInstances;                    /**< currently registered instances */
  unsigned long long instancesCreated;  /**< ever created in this process */
  unsigned long long instancesRetired;  /**< finalized so far */
  BglStatistics totals;                 /**< summed counters and timings */
  unsigned long long pendingDepth;      /**< current queued+in-flight launches */
  unsigned long long pendingDepthMax;   /**< high-water pending depth */
  unsigned long long journalRecords;    /**< journal records ever appended */
} BglProcessStatistics;

/** Read the process-wide statistics aggregate. */
int bglGetProcessStatistics(BglProcessStatistics* outStatistics);

/**
 * Start (or retarget) the background live-metrics service: append one
 * JSON-lines snapshot to `path` every `periodMs` milliseconds (<= 0: 500)
 * — cumulative process counters, per-period deltas, p50/p95/p99 per span
 * category, queue-depth gauges, and journal records new since the previous
 * line — and periodically refresh per-instance bglSetTraceFile /
 * bglSetStatsFile outputs so the last snapshot survives an abnormal
 * teardown. A final line is written when the service stops. Passing NULL
 * or "" stops the service. Equivalent to setting BGL_METRICS (path) and
 * BGL_METRICS_MS (period) in the environment before the first
 * bglCreateInstance. Enables span timing on all live and future instances.
 */
int bglSetMetricsFile(const char* path, int periodMs);

/* ------------------------------------------------------------------ */
/* Likelihood-as-a-service: multi-tenant instance pool and sessions.  */
/*                                                                    */
/* A long-lived server process multiplexes many concurrent analyses   */
/* over a shared pool of recycled instances instead of paying full    */
/* create/calibrate/finalize per request. Sessions are admission-     */
/* controlled (per-tenant quotas, queue-depth backpressure, load      */
/* shedding driven by the scheduler's calibration data) and support   */
/* online tree updates: adding a taxon or changing a branch length    */
/* recomputes only the dirtied path to the root. See docs/SERVING.md. */
/* ------------------------------------------------------------------ */

/** Serving-layer limits. Zero/negative fields select the defaults. */
typedef struct BglPoolConfig {
  int maxSessions;            /**< concurrent sessions, all tenants (default 64) */
  int maxSessionsPerTenant;   /**< concurrent sessions per tenant (default 8) */
  long long maxPendingDepth;  /**< reject opens while the process async queue
                                   depth exceeds this (default 4096) */
  double maxEstimatedLoad;    /**< reject opens once the summed calibrated
                                   seconds-per-evaluation of live sessions
                                   exceeds this (default: unlimited) */
  int idleEvictMs;            /**< free pooled instances idle at least this
                                   long are finalized on the next pool sweep
                                   (default 30000; 0 keeps the default) */
} BglPoolConfig;

/**
 * Configure the process-wide serving layer. May be called at any time;
 * new limits apply to subsequent admissions and sweeps (already-admitted
 * sessions are never revoked). Passing NULL restores the defaults.
 */
int bglPoolConfigure(const BglPoolConfig* config);

/** Serving-layer occupancy gauges and admission counters. */
typedef struct BglPoolStatistics {
  int liveSessions;                      /**< sessions currently open */
  int pooledInstances;                   /**< instances the pool owns (leased + free) */
  int freeInstances;                     /**< instances on the free list */
  unsigned long long admitted;           /**< session opens admitted */
  unsigned long long rejectedQuota;      /**< opens rejected on a tenant/global quota */
  unsigned long long rejectedBackpressure; /**< opens rejected on queue depth */
  unsigned long long rejectedLoad;       /**< opens shed on calibrated load */
  unsigned long long instancesCreated;   /**< pool instances ever created */
  unsigned long long instancesRecycled;  /**< acquisitions served from the free list */
  unsigned long long reinitGrows;        /**< grow-on-demand reinits applied */
  unsigned long long evictions;          /**< idle instances finalized */
  double estimatedLoadSeconds;           /**< summed calibrated seconds/evaluation
                                              of live sessions */
} BglPoolStatistics;

/** Read the serving layer's statistics (zeros before first use). */
int bglPoolGetStatistics(BglPoolStatistics* outStatistics);

/**
 * Sweep the free list now, finalizing instances idle for at least
 * `idleMs` milliseconds (0: every free instance). Returns the number
 * evicted. Sweeps also run opportunistically on acquire/release.
 */
int bglPoolTrim(int idleMs);

/**
 * Open an admission-controlled analysis session for `tenant` (NULL or ""
 * reads as the anonymous tenant). The session leases a pooled instance
 * matched on (resource, shape class) — recycled when one is free, created
 * on demand otherwise — and releases it for reuse at bglSessionClose.
 *
 * @return session id (>= 0), BGL_ERROR_REJECTED when admission control
 * refuses (detail in bglGetLastErrorMessage), or another BglReturnCode.
 */
int bglSessionOpen(const char* tenant, int stateCount, int patternCount,
                   int categoryCount, int resource, long preferenceFlags,
                   long requirementFlags);

/** Close a session and return its instance to the pool's free list. */
int bglSessionClose(int session);

/**
 * Supply the session's substitution model: row-major eigenvectors,
 * inverse eigenvectors and eigenvalues, state frequencies, category
 * weights and rates, and per-pattern weights (NULL: unit weights). May be
 * called again to swap models; doing so dirties the whole tree.
 */
int bglSessionSetModel(int session, const double* inEigenVectors,
                       const double* inInverseEigenVectors,
                       const double* inEigenValues, const double* inFrequencies,
                       const double* inCategoryWeights,
                       const double* inCategoryRates,
                       const double* inPatternWeights);

/**
 * Online update: add one taxon (compact states, patternCount entries) to
 * the live tree. The first taxon creates a single-tip tree (attachNode
 * ignored); the second joins both tips under a new root. Later taxa split
 * the edge above `attachNode`: the attach node keeps `distalLength` below
 * the new internal node and the new tip hangs at `pendantLength`
 * (attaching at the root instead grows a new root above it, with the old
 * root at `distalLength`). Only the path from the
 * attachment point to the root is marked dirty, so the next
 * bglSessionLogLikelihood re-enqueues O(depth) operations rather than the
 * whole tree. Outgrowing the leased instance triggers a grow-on-demand
 * reinit from the pool (never a "ran out of slots" failure).
 *
 * @return the new tip's node id (>= 0) or a negative BglReturnCode.
 */
int bglSessionAddTaxon(int session, const int* inStates, int attachNode,
                       double distalLength, double pendantLength);

/** Online update: set the branch length above `node` (dirties its path). */
int bglSessionSetBranch(int session, int node, double length);

/**
 * Log likelihood of the live tree, recomputing only dirtied transition
 * matrices and the dirtied partials paths (bit-identical to a full
 * recompute). Needs >= 2 taxa and a model.
 */
int bglSessionLogLikelihood(int session, double* outLogLikelihood);

/** Reference path: mark everything dirty and recompute from the tips. */
int bglSessionFullLogLikelihood(int session, double* outLogLikelihood);

/** Shape and placement of a live session. */
typedef struct BglSessionDetails {
  int instance;        /**< leased instance id (valid until close/reinit) */
  int taxa;            /**< taxa in the live tree */
  int nodes;           /**< node ids in [0, nodes) are addressable */
  int root;            /**< current root node id (-1: empty tree) */
  int tipCapacity;     /**< taxa the leased instance can hold before reinit */
  const char* implName;/**< implementation serving the lease */
} BglSessionDetails;

/** Describe a live session (implName owned by the library, valid until
 * the session's next library call). */
int bglSessionGetDetails(int session, BglSessionDetails* outDetails);

#ifdef __cplusplus
}
#endif

#endif /* BGL_H */
