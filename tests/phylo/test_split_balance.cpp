// Scheduler-driven SplitLikelihood: every split mode must reproduce the
// single-instance log likelihood exactly (pattern weights are preserved,
// so the shard sum is the full sum), shares must track speeds, and
// adaptive mode must rebalance a skewed setup.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/defs.h"
#include "core/model.h"
#include "core/rng.h"
#include "phylo/partition.h"
#include "phylo/seqsim.h"
#include "phylo/tree.h"

namespace bgl::phylo {
namespace {

/// Synthetic dataset with an exact, controllable pattern count (prime
/// counts exercise the remainder paths of the apportionment) and
/// non-uniform weights.
struct BalanceFixture {
  explicit BalanceFixture(int patterns, int taxa = 6)
      : rng(2024), tree(Tree::random(taxa, rng)) {
    model = defaultModelForStates(4, 2024);
    data.taxa = taxa;
    data.patterns = patterns;
    data.states = randomStates(taxa, patterns, 4, rng);
    data.weights.reserve(patterns);
    data.originalSites = 0;
    for (int k = 0; k < patterns; ++k) {
      const double w = 1.0 + k % 3;  // weights 1,2,3 repeating
      data.weights.push_back(w);
      data.originalSites += static_cast<int>(w);
    }
  }

  double reference(const LikelihoodOptions& options = {}) {
    TreeLikelihood whole(tree, *model, data, options);
    return whole.logLikelihood();
  }

  Rng rng;
  Tree tree;
  std::unique_ptr<SubstitutionModel> model;
  PatternSet data;
};

TEST(SplitModeFromFlags, MapsLoadBalanceBits) {
  EXPECT_EQ(splitModeFromFlags(0), SplitMode::Equal);
  EXPECT_EQ(splitModeFromFlags(BGL_FLAG_LOADBALANCE_NONE), SplitMode::Equal);
  EXPECT_EQ(splitModeFromFlags(BGL_FLAG_LOADBALANCE_BENCHMARK),
            SplitMode::Proportional);
  EXPECT_EQ(splitModeFromFlags(BGL_FLAG_LOADBALANCE_MODEL),
            SplitMode::Proportional);
  EXPECT_EQ(splitModeFromFlags(BGL_FLAG_LOADBALANCE_ADAPTIVE),
            SplitMode::Adaptive);
  EXPECT_EQ(splitModeFromFlags(BGL_FLAG_LOADBALANCE_ADAPTIVE |
                               BGL_FLAG_LOADBALANCE_BENCHMARK),
            SplitMode::Adaptive);
}

TEST(SplitPatternsByShares, RejectsBadShareVectors) {
  BalanceFixture f(10);
  EXPECT_THROW(splitPatternsByShares(f.data, {}), Error);
  EXPECT_THROW(splitPatternsByShares(f.data, {5, 4}), Error);
  EXPECT_THROW(splitPatternsByShares(f.data, {12, -2}), Error);
}

TEST(SplitPatternsByShares, PreservesWeightsAcrossUnequalShares) {
  BalanceFixture f(101);
  const auto shards = splitPatternsByShares(f.data, {70, 0, 31});
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].patterns, 70);
  EXPECT_EQ(shards[1].patterns, 0);
  EXPECT_EQ(shards[2].patterns, 31);
  double weight = 0.0;
  int sites = 0;
  for (const auto& shard : shards) {
    for (double w : shard.weights) weight += w;
    sites += shard.originalSites;
  }
  double fullWeight = 0.0;
  for (double w : f.data.weights) fullWeight += w;
  EXPECT_DOUBLE_EQ(weight, fullWeight);
  EXPECT_EQ(sites, f.data.originalSites);
}

TEST(SplitBalance, AllModesReproduceSingleInstanceOnPrimePatternCounts) {
  for (int patterns : {97, 251}) {
    BalanceFixture f(patterns);
    const double reference = f.reference();
    const double tolerance =
        std::max(1e-10, std::abs(reference) * 1e-12);

    std::vector<LikelihoodOptions> shardOptions(3);
    for (SplitMode mode :
         {SplitMode::Equal, SplitMode::Proportional, SplitMode::Adaptive}) {
      SplitOptions split;
      split.mode = mode;
      // Provided speeds: no calibration cost, deliberately lopsided so
      // Proportional/Adaptive exercise unequal shares.
      split.speeds = {1.0, 2.0, 5.0};
      SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
      EXPECT_NEAR(like.logLikelihood(f.tree), reference, tolerance)
          << "patterns=" << patterns << " mode=" << static_cast<int>(mode);
      int total = 0;
      for (int s = 0; s < like.shardCount(); ++s) total += like.shardPatterns(s);
      EXPECT_EQ(total, patterns);
    }
  }
}

TEST(SplitBalance, ProportionalSharesMatchProvidedSpeeds) {
  BalanceFixture f(1000);
  std::vector<LikelihoodOptions> shardOptions(2);
  SplitOptions split;
  split.mode = SplitMode::Proportional;
  split.speeds = {1.0, 3.0};
  SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
  EXPECT_EQ(like.shardPatterns(0), 250);
  EXPECT_EQ(like.shardPatterns(1), 750);
  EXPECT_NEAR(like.logLikelihood(f.tree), f.reference(),
              std::abs(f.reference()) * 1e-12);
  const auto speeds = like.shardSpeeds();
  ASSERT_EQ(speeds.size(), 2u);
  EXPECT_DOUBLE_EQ(speeds[1] / speeds[0], 3.0);
}

TEST(SplitBalance, CalibratedProportionalSplitStillExact) {
  // No speeds provided: the scheduler model-estimates each shard (cheap,
  // deterministic) and the split must still sum exactly.
  BalanceFixture f(151);
  std::vector<LikelihoodOptions> shardOptions(2);
  shardOptions[0].resources = {0};
  shardOptions[1].resources = {1};  // simulated accelerator shard
  SplitOptions split;
  split.mode = SplitMode::Proportional;
  split.benchmark = false;
  SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
  const double reference = f.reference();
  EXPECT_NEAR(like.logLikelihood(f.tree), reference,
              std::max(1e-10, std::abs(reference) * 1e-12));
  // The accelerator profile is far faster than the host CPU, so its shard
  // must be the larger one.
  EXPECT_GT(like.shardPatterns(1), like.shardPatterns(0));
}

TEST(SplitBalance, MoreShardsThanPatternsLeavesIdleShards) {
  BalanceFixture f(3);
  std::vector<LikelihoodOptions> shardOptions(5);
  SplitOptions split;
  split.mode = SplitMode::Proportional;
  split.speeds = {1.0, 1.0, 1.0, 1.0, 1.0};
  SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
  EXPECT_EQ(like.shardCount(), 5);
  int total = 0, idle = 0;
  for (int s = 0; s < like.shardCount(); ++s) {
    total += like.shardPatterns(s);
    if (like.shardPatterns(s) == 0) {
      ++idle;
      EXPECT_EQ(like.implName(s), "(idle)");
    }
  }
  EXPECT_EQ(total, 3);
  EXPECT_EQ(idle, 2);
  const double reference = f.reference();
  EXPECT_NEAR(like.logLikelihood(f.tree), reference,
              std::max(1e-10, std::abs(reference) * 1e-12));
}

TEST(SplitBalance, SingleShardDegeneratesToWholeProblem) {
  BalanceFixture f(83);
  std::vector<LikelihoodOptions> shardOptions(1);
  SplitOptions split;
  split.mode = SplitMode::Adaptive;
  split.speeds = {1.0};
  SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
  EXPECT_EQ(like.shardPatterns(0), 83);
  const double reference = f.reference();
  EXPECT_NEAR(like.logLikelihood(f.tree), reference,
              std::max(1e-10, std::abs(reference) * 1e-12));
  EXPECT_EQ(like.rebalanceCount(), 0);
}

TEST(SplitBalance, AdaptiveRebalancesUnderArtificialSlowdown) {
  // Two identical host shards, but shard 0's observed times are multiplied
  // 6x (the debug hook): the balancer must shift patterns to shard 1 and
  // the log likelihood must stay put through every re-split.
  BalanceFixture f(601);
  const double reference = f.reference();
  const double tolerance = std::max(1e-10, std::abs(reference) * 1e-12);

  std::vector<LikelihoodOptions> shardOptions(2);
  SplitOptions split;
  split.mode = SplitMode::Adaptive;
  split.speeds = {1.0, 1.0};  // start from an equal split
  split.debugSlowdown = {6.0, 1.0};
  split.concurrent = false;  // deterministic observation order
  SplitLikelihood like(f.tree, *f.model, f.data, shardOptions, split);
  EXPECT_EQ(like.shardPatterns(0), 301);

  for (int round = 0; round < 8; ++round) {
    EXPECT_NEAR(like.logLikelihood(f.tree), reference, tolerance)
        << "round " << round;
  }
  EXPECT_GT(like.rebalanceCount(), 0);
  EXPECT_LT(like.shardPatterns(0), like.shardPatterns(1));
  int total = like.shardPatterns(0) + like.shardPatterns(1);
  EXPECT_EQ(total, 601);
}

TEST(AutoAssignResources, FastestResourceGetsLargestPartition) {
  BalanceFixture big(300);
  BalanceFixture small(50);
  std::vector<PartitionSpec> specs(2);
  specs[0].data = small.data;
  specs[0].model = small.model.get();
  specs[1].data = big.data;
  specs[1].model = big.model.get();
  autoAssignResources(specs, /*benchmark=*/false);
  ASSERT_EQ(specs[0].options.resources.size(), 1u);
  ASSERT_EQ(specs[1].options.resources.size(), 1u);
  // Model-estimated speeds rank every accelerator above the host CPU, so
  // the big partition must not land on the host while the small one gets
  // an accelerator.
  const int bigResource = specs[1].options.resources[0];
  const int smallResource = specs[0].options.resources[0];
  EXPECT_NE(bigResource, smallResource);
  EXPECT_NE(bigResource, 0);

  PartitionedLikelihood parts(big.tree, specs);
  const double sum = parts.logLikelihood(big.tree);
  TreeLikelihood wholeSmall(big.tree, *small.model, small.data, specs[0].options);
  TreeLikelihood wholeBig(big.tree, *big.model, big.data, specs[1].options);
  const double expected =
      wholeSmall.logLikelihood(big.tree) + wholeBig.logLikelihood(big.tree);
  EXPECT_NEAR(sum, expected, std::abs(expected) * 1e-12);
}

}  // namespace
}  // namespace bgl::phylo
