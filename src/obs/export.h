// Exporters for the tracing/metrics layer: Chrome trace-event JSON (load
// in about:tracing or https://ui.perfetto.dev) and a flat stats summary.
// JsonWriter is a dependency-free streaming JSON serializer also used by
// the benchmark harness for its BENCH_*.json trajectory records.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/trace.h"

namespace bgl::obs {

/// Minimal streaming JSON writer: tracks nesting and comma placement,
/// escapes strings. Misuse (value without key inside an object) is the
/// caller's bug; the writer emits whatever it is told.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  static std::string escape(const std::string& s);

 private:
  void separator();

  std::ostream& os_;
  std::vector<bool> needComma_;  // one entry per open container
  bool pendingKey_ = false;
};

/// Write the recorder's retained timeline as Chrome trace-event JSON with
/// balanced, per-(pid,tid) properly nested B/E event pairs. Events carrying
/// a flowId additionally emit Chrome flow events ("s"/"f" phases) tying the
/// API-thread enqueue span to the worker-thread execution span.
void writeChromeTrace(std::ostream& os, const TraceRecorder& recorder,
                      const std::string& processName);

/// Write counters plus per-category duration histograms as flat JSON
/// (schema 2: adds p50/p95/p99 per category, gauges, and the process
/// journal array — see docs/OBSERVABILITY.md for the full schema).
void writeStatsJson(std::ostream& os, const TraceRecorder& recorder,
                    const std::string& implName, const std::string& resourceName);

/// Serialize one journal record as a JSON object (shared by the stats
/// export and the metrics-file JSON-lines writer).
void writeJournalRecord(JsonWriter& w, const JournalRecord& rec);

/// File variants; return false if the file cannot be opened or written.
bool writeChromeTraceFile(const std::string& path, const TraceRecorder& recorder,
                          const std::string& processName);
bool writeStatsJsonFile(const std::string& path, const TraceRecorder& recorder,
                        const std::string& implName,
                        const std::string& resourceName);

}  // namespace bgl::obs
