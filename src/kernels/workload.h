// Effective-FLOP and memory-traffic accounting for kernel launches.
//
// The throughput measure used throughout the paper (Section V-A) counts
// effective floating-point operations of the partial-likelihoods function:
// per parent entry, two child dot products (s multiplies + s-1 adds each)
// plus one combining multiply => s * (4s - 1) FLOPs per (pattern, category).
#pragma once

#include <cstddef>

#include "perfmodel/device_profiles.h"

namespace bgl::kernels {

/// Effective FLOPs of one partials operation.
inline double partialsFlops(int patterns, int categories, int states) {
  return static_cast<double>(patterns) * categories * states *
         (4.0 * states - 1.0);
}

/// Global-memory traffic of one partials operation (2 child reads + 1
/// write per entry, plus the per-category matrices).
inline double partialsBytes(int patterns, int categories, int states,
                            std::size_t realBytes) {
  const double entries = static_cast<double>(patterns) * categories * states;
  const double matrices = 2.0 * categories * states * states;
  return (3.0 * entries + matrices) * static_cast<double>(realBytes);
}

/// Resident working set of one partials operation (cache-model input).
inline double partialsWorkingSet(int patterns, int categories, int states,
                                 std::size_t realBytes) {
  return 3.0 * patterns * categories * states * static_cast<double>(realBytes);
}

/// FLOPs of the root-integration kernel.
inline double rootFlops(int patterns, int categories, int states) {
  return static_cast<double>(patterns) * categories * (2.0 * states + 2.0);
}

inline double rootBytes(int patterns, int categories, int states,
                        std::size_t realBytes) {
  return (static_cast<double>(patterns) * categories * states +
          2.0 * patterns) *
         static_cast<double>(realBytes);
}

/// FLOPs of the transition-matrix kernel (Cijk contraction).
inline double matrixFlops(int categories, int states, bool derivs) {
  const double base = static_cast<double>(categories) * states * states *
                      (2.0 * states);
  return derivs ? 3.0 * base : base;
}

inline double matrixBytes(int categories, int states, std::size_t realBytes,
                          bool derivs) {
  const double cijk = static_cast<double>(states) * states * states;
  const double out = static_cast<double>(categories) * states * states;
  return (cijk + (derivs ? 3.0 : 1.0) * out) * static_cast<double>(realBytes);
}

}  // namespace bgl::kernels
