// CUDA-framework runtime (simulated).
//
// Structurally follows the CUDA Driver API model the paper's original GPU
// implementation used: an explicit context per device, flat device memory
// addressed by pointer arithmetic (sub-regions are plain offsets into the
// parent allocation), module/function handles fetched by name+parameters,
// and stream-ordered kernel launches. Kernels come from the shared kernel
// set (src/kernels) — identical code to what the OpenCL runtime executes.
//
// Execution is functional-on-host: results are real; wall time on non-host
// device profiles is supplied by the roofline model (see DESIGN.md).
#pragma once

#include <memory>
#include <vector>

#include "hal/hal.h"

namespace bgl::cudasim {

/// Enumerate devices visible to the CUDA framework (NVIDIA profiles only,
/// as in the paper's systems; the host CPU is exposed too so the runtime is
/// testable with measured timing).
std::vector<int> visibleDeviceProfiles();

/// Create a CUDA-framework hal::Device for a perf-registry profile index.
/// Throws bgl::Error if the profile is not CUDA-capable.
hal::DevicePtr createDevice(int profileIndex);

}  // namespace bgl::cudasim
