#include "core/genetic_code.h"

namespace bgl {
namespace {

// Standard genetic code in TCAG order (first base varies slowest);
// '*' denotes a stop codon.
constexpr char kUniversalCode[65] =
    "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG";

constexpr char kAminoAlphabet[21] = "ACDEFGHIKLMNPQRSTVWY";

int aminoIndex(char c) {
  for (int i = 0; i < 20; ++i)
    if (kAminoAlphabet[i] == c) return i;
  return -1;
}

}  // namespace

GeneticCode::GeneticCode() {
  int sense = 0;
  for (int c = 0; c < 64; ++c) {
    amino_[c] = aminoIndex(kUniversalCode[c]);
    if (amino_[c] >= 0) {
      sense_index_[c] = sense;
      codon64_[sense] = c;
      ++sense;
    } else {
      sense_index_[c] = -1;
    }
  }
  if (sense != kCodonStates) throw Error("GeneticCode: expected 61 sense codons");
}

const GeneticCode& GeneticCode::universal() {
  static const GeneticCode code;
  return code;
}

std::string GeneticCode::codonString(int codon64) {
  static constexpr char kNuc[5] = "TCAG";
  std::string s(3, ' ');
  for (int p = 0; p < 3; ++p) s[p] = kNuc[nucleotideAt(codon64, p)];
  return s;
}

}  // namespace bgl
