file(REMOVE_RECURSE
  "CMakeFiles/bgl_core.dir/eigen.cpp.o"
  "CMakeFiles/bgl_core.dir/eigen.cpp.o.d"
  "CMakeFiles/bgl_core.dir/gamma.cpp.o"
  "CMakeFiles/bgl_core.dir/gamma.cpp.o.d"
  "CMakeFiles/bgl_core.dir/genetic_code.cpp.o"
  "CMakeFiles/bgl_core.dir/genetic_code.cpp.o.d"
  "CMakeFiles/bgl_core.dir/model.cpp.o"
  "CMakeFiles/bgl_core.dir/model.cpp.o.d"
  "CMakeFiles/bgl_core.dir/patterns.cpp.o"
  "CMakeFiles/bgl_core.dir/patterns.cpp.o.d"
  "CMakeFiles/bgl_core.dir/thread_pool.cpp.o"
  "CMakeFiles/bgl_core.dir/thread_pool.cpp.o.d"
  "libbgl_core.a"
  "libbgl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
