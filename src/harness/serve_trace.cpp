#include "harness/serve_trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "api/bgl.h"
#include "core/defs.h"
#include "core/gamma.h"
#include "core/model.h"
#include "core/rng.h"
#include "phylo/seqsim.h"

namespace bgl::harness {
namespace {

/// Append the thread-local API error detail (when any) to `message`.
std::string withLastError(std::string message) {
  if (const char* detail = bglGetLastErrorMessage();
      detail != nullptr && *detail != '\0') {
    message += ": ";
    message += detail;
  }
  return message;
}

struct Tenant {
  int session = -1;
  int states = 4;
  int patterns = 0;
  int categories = 1;
  bool evaluated = false;
  double lastOnlineLogL = 0.0;
};

/// Add one random taxon to the tenant's session.
void addRandomTaxon(const std::string& name, Tenant& tenant, Rng& rng) {
  const std::vector<int> states =
      phylo::randomStates(1, tenant.patterns, tenant.states, rng);
  BglSessionDetails details{};
  int rc = bglSessionGetDetails(tenant.session, &details);
  if (rc != BGL_SUCCESS) {
    throw Error(withLastError("trace: getDetails failed for '" + name + "'"),
                rc);
  }
  const int attach = details.nodes > 0 ? rng.belowInt(details.nodes) : 0;
  const double distal = rng.uniform(0.01, 0.3);
  const double pendant = rng.uniform(0.01, 0.3);
  rc = bglSessionAddTaxon(tenant.session, states.data(), attach, distal,
                          pendant);
  if (rc < 0) {
    throw Error(withLastError("trace: addTaxon failed for '" + name + "'"), rc);
  }
}

}  // namespace

ReplayStats replayServeTrace(std::istream& in, const ReplayOptions& options) {
  ReplayStats stats;
  std::map<std::string, Tenant> tenants;
  std::string line;
  int lineNumber = 0;

  const auto fail = [&](const std::string& what) -> void {
    throw Error("trace line " + std::to_string(lineNumber) + ": " + what,
                kErrOutOfRange);
  };
  // nullptr when the tenant has no live session — its open was rejected by
  // admission control, it never opened, or it already closed. The caller
  // skips the command (a real client backs off after a rejection).
  const auto liveTenant = [&](const std::string& name) -> Tenant* {
    const auto it = tenants.find(name);
    if (it == tenants.end() || it->second.session < 0) return nullptr;
    return &it->second;
  };

  while (std::getline(in, line)) {
    ++lineNumber;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string name, verb;
    if (!(words >> name >> verb)) continue;  // blank or comment-only line
    ++stats.commands;
    if (options.verbose) {
      std::printf("trace:%d  %s %s\n", lineNumber, name.c_str(), verb.c_str());
    }

    if (verb == "open") {
      int states = 0, patterns = 0, categories = 0, resource = 0;
      if (!(words >> states >> patterns >> categories)) {
        fail("open needs <states> <patterns> <categories> [resource]");
      }
      words >> resource;  // optional, defaults to 0 (host)
      const int session = bglSessionOpen(name.c_str(), states, patterns,
                                         categories, resource, 0, 0);
      if (session == BGL_ERROR_REJECTED) {
        ++stats.rejected;
        continue;
      }
      if (session < 0) {
        fail(withLastError("open failed for '" + name + "' (code " +
                           std::to_string(session) + ")"));
      }
      ++stats.opens;
      Tenant tenant;
      tenant.session = session;
      tenant.states = states;
      tenant.patterns = patterns;
      tenant.categories = categories;
      tenants[name] = tenant;
    } else if (verb == "model") {
      unsigned long long seed = 0;
      if (!(words >> seed)) fail("model needs <seed>");
      Tenant* live = liveTenant(name);
      if (live == nullptr) {
        ++stats.skipped;
        continue;
      }
      Tenant& tenant = *live;
      const auto model =
          defaultModelForStates(tenant.states, static_cast<unsigned>(seed));
      const auto es = model->eigenSystem();
      const std::vector<double> weights(
          static_cast<std::size_t>(tenant.categories),
          1.0 / tenant.categories);
      const std::vector<double> rates =
          tenant.categories > 1 ? discreteGammaRates(0.5, tenant.categories)
                                : std::vector<double>{1.0};
      const int rc = bglSessionSetModel(
          tenant.session, es.evec.data(), es.ivec.data(), es.eval.data(),
          model->frequencies().data(), weights.data(), rates.data(), nullptr);
      if (rc != BGL_SUCCESS) {
        fail(withLastError("model failed for '" + name + "'"));
      }
      tenant.evaluated = false;
    } else if (verb == "taxa" || verb == "add") {
      int count = 1;
      unsigned long long seed = 0;
      if (verb == "taxa" && !(words >> count)) fail("taxa needs <count> <seed>");
      if (!(words >> seed)) fail(verb + " needs <seed>");
      Tenant* live = liveTenant(name);
      if (live == nullptr) {
        ++stats.skipped;
        continue;
      }
      Tenant& tenant = *live;
      Rng rng(seed);
      for (int i = 0; i < count; ++i) {
        addRandomTaxon(name, tenant, rng);
        ++stats.taxaAdded;
      }
      tenant.evaluated = false;  // the tree changed; eval/full can differ
    } else if (verb == "branch") {
      unsigned long long seed = 0;
      if (!(words >> seed)) fail("branch needs <seed>");
      Tenant* live = liveTenant(name);
      if (live == nullptr) {
        ++stats.skipped;
        continue;
      }
      Tenant& tenant = *live;
      Rng rng(seed);
      BglSessionDetails details{};
      bglSessionGetDetails(tenant.session, &details);
      if (details.nodes < 2) fail("branch needs a tree with >= 2 nodes");
      // Retry until a non-root node comes up (the root has no branch).
      for (;;) {
        const int node = rng.belowInt(details.nodes);
        if (node == details.root) continue;
        const int rc = bglSessionSetBranch(tenant.session, node,
                                           rng.uniform(0.01, 0.5));
        if (rc != BGL_SUCCESS) {
          fail(withLastError("branch failed for '" + name + "'"));
        }
        break;
      }
      ++stats.branchSets;
      tenant.evaluated = false;  // the tree changed; eval/full can differ
    } else if (verb == "eval" || verb == "full") {
      Tenant* live = liveTenant(name);
      if (live == nullptr) {
        ++stats.skipped;
        continue;
      }
      Tenant& tenant = *live;
      double logL = 0.0;
      const int rc = verb == "eval"
                         ? bglSessionLogLikelihood(tenant.session, &logL)
                         : bglSessionFullLogLikelihood(tenant.session, &logL);
      if (rc != BGL_SUCCESS) {
        fail(withLastError(verb + " failed for '" + name + "'"));
      }
      if (verb == "eval") {
        ++stats.evals;
        tenant.evaluated = true;
        tenant.lastOnlineLogL = logL;
      } else {
        ++stats.fulls;
        // An eval directly before a full sees the same tree, so the online
        // (dirty-path) result must match the full recompute bitwise.
        if (tenant.evaluated && logL != tenant.lastOnlineLogL) {
          ++stats.mismatches;
        }
        tenant.evaluated = false;
      }
      stats.lastLogL = logL;
    } else if (verb == "close") {
      Tenant* live = liveTenant(name);
      if (live == nullptr) {
        ++stats.skipped;
        continue;
      }
      Tenant& tenant = *live;
      const int rc = bglSessionClose(tenant.session);
      if (rc != BGL_SUCCESS) {
        fail(withLastError("close failed for '" + name + "'"));
      }
      tenant.session = -1;
      ++stats.closes;
    } else {
      fail("unknown trace verb '" + verb + "'");
    }
  }

  // Leave no sessions behind: a trace may end with tenants still open.
  for (auto& [name, tenant] : tenants) {
    if (tenant.session >= 0) {
      bglSessionClose(tenant.session);
      tenant.session = -1;
      ++stats.closes;
    }
  }
  return stats;
}

ReplayStats replayServeTraceFile(const std::string& path,
                                 const ReplayOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw Error("trace: could not open '" + path + "'", kErrOutOfRange);
  }
  return replayServeTrace(in, options);
}

}  // namespace bgl::harness
