file(REMOVE_RECURSE
  "CMakeFiles/partitioned_analysis.dir/partitioned_analysis.cpp.o"
  "CMakeFiles/partitioned_analysis.dir/partitioned_analysis.cpp.o.d"
  "partitioned_analysis"
  "partitioned_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
