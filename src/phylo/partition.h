// Partitioned and multi-device analyses.
//
// Section IV-F: "application programs running partitioned analyses can
// invoke multiple library instances, one for each data subset" — each
// partition gets its own model, its own instance, and (optionally) its own
// hardware resource; instance evaluations run concurrently.
//
// The paper's conclusion sketches the complementary feature: splitting a
// single data subset across multiple devices by site patterns, with one
// instance per device. SplitLikelihood implements that — and, through the
// scheduler (src/sched/), closes the loop the conclusion leaves open:
// shards can be sized proportionally to calibrated per-resource speeds,
// and rebalanced between evaluation rounds from observed per-shard times.
#pragma once

#include <memory>
#include <vector>

#include "core/model.h"
#include "core/patterns.h"
#include "phylo/likelihood.h"
#include "phylo/tree.h"
#include "sched/balancer.h"

namespace bgl::phylo {

/// One data subset of a partitioned analysis.
struct PartitionSpec {
  PatternSet data;
  const SubstitutionModel* model = nullptr;  ///< borrowed, must outlive
  LikelihoodOptions options;
};

/// Multiple (model, data, instance) triples sharing one tree: the
/// partitioned-analysis pattern of Section IV-F.
class PartitionedLikelihood {
 public:
  PartitionedLikelihood(const Tree& tree, const std::vector<PartitionSpec>& specs,
                        bool concurrent = true);

  /// Sum of per-partition log likelihoods for `tree`.
  double logLikelihood(const Tree& tree);

  int partitionCount() const { return static_cast<int>(parts_.size()); }
  const std::string& implName(int partition) const {
    return parts_[partition]->implName();
  }

 private:
  std::vector<std::unique_ptr<TreeLikelihood>> parts_;
  bool concurrent_;
};

/// Assign each partition a preferred resource using the scheduler's
/// throughput estimates: partitions are ranked by pattern count and the
/// largest ones get the fastest resources (round-robin over the distinct
/// resources when there are more partitions than resources). `benchmark`
/// false seeds speeds from the perf model instead of calibrating.
void autoAssignResources(std::vector<PartitionSpec>& specs, bool benchmark = true);

/// How SplitLikelihood divides patterns across shards.
enum class SplitMode {
  Equal,         ///< equal shares regardless of shard speed
  Proportional,  ///< shares proportional to calibrated/model speeds
  Adaptive       ///< proportional, plus between-round rebalancing from
                 ///< observed per-shard times
};

/// Split policy derived from BGL_FLAG_LOADBALANCE_* bits (NONE -> Equal,
/// BENCHMARK/MODEL -> Proportional, ADAPTIVE -> Adaptive; default Equal).
SplitMode splitModeFromFlags(long flags);

/// Scheduling options for SplitLikelihood.
struct SplitOptions {
  SplitMode mode = SplitMode::Equal;
  /// Per-shard speed estimates (patterns/second). Empty under
  /// Proportional/Adaptive: the scheduler calibrates each shard's
  /// (resource, flags) combination instead.
  std::vector<double> speeds;
  bool benchmark = true;       ///< false: perf-model seeds, no calibration run
  double imbalanceThreshold = 1.15;  ///< predicted max/min round-time ratio
  double ewmaAlpha = 0.4;      ///< weight of newest per-shard observation
  int settleRounds = 2;        ///< imbalanced rounds required before a re-split
  int minPatternsPerShard = 1; ///< floor for non-degenerate shards
  unsigned calibrationSeed = 0;///< 0 = BGL_SCHED_SEED / default
  bool concurrent = true;      ///< evaluate shards concurrently
  /// Failover policy: when a shard's instance fails hard (device fault,
  /// exhausted memory, lost implementation), quarantine that shard,
  /// re-apportion its patterns across the surviving shards, and retry
  /// the evaluation round. false: the error propagates to the caller.
  bool failover = true;
  /// Last resort when every shard is quarantined: rebuild shard 0 as a
  /// plain host-CPU instance carrying the full alignment. false: an
  /// all-shards failure propagates instead.
  bool cpuFallback = true;
  /// Test hook: multiply shard i's observed seconds by debugSlowdown[i]
  /// before feeding the balancer (artificially skews a homogeneous setup).
  std::vector<double> debugSlowdown;
};

/// One alignment split across several resources by site patterns
/// (multi-device execution; the conclusion's planned extension). Any
/// division preserves per-pattern weights, so the shard log likelihoods
/// add up to exactly the single-instance value in every mode.
///
/// Failure handling (SplitOptions::failover): a shard whose instance
/// fails hard — BGL_ERROR_HARDWARE, _OUT_OF_MEMORY, _GENERAL,
/// _UNIDENTIFIED_EXCEPTION, _NO_RESOURCE or _NO_IMPLEMENTATION, at
/// construction or during an evaluation round — is quarantined: its
/// instance is destroyed, its patterns are re-apportioned across the
/// surviving shards (proportionally to the current speed estimates), the
/// adaptive balancer is rebuilt over the survivors, and the round is
/// retried. When every shard is quarantined, a host-CPU fallback instance
/// takes the whole alignment (SplitOptions::cpuFallback). Programming
/// errors (BGL_ERROR_OUT_OF_RANGE and friends) are never failed over;
/// they propagate. Every failover is recorded in the scheduler counters
/// (sched::counters().failovers / .quarantinedShards) and as a
/// `sched.failover` span on sched::recorder().
class SplitLikelihood {
 public:
  /// Equal round-robin split (the original static policy).
  /// `shardOptions[i]` selects the resource/implementation of shard i.
  SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                  const PatternSet& data,
                  const std::vector<LikelihoodOptions>& shardOptions,
                  bool concurrent = true);

  /// Scheduler-driven split. Shards may receive zero patterns (no instance
  /// is created for them); the model must outlive this object when
  /// rebalancing can occur (Adaptive mode rebuilds shard instances).
  SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                  const PatternSet& data,
                  const std::vector<LikelihoodOptions>& shardOptions,
                  const SplitOptions& split);

  double logLikelihood(const Tree& tree);

  int shardCount() const { return static_cast<int>(shards_.size()); }
  int shardPatterns(int shard) const { return shardPatterns_[shard]; }
  const std::vector<int>& shardPatternCounts() const { return shardPatterns_; }
  const std::string& implName(int shard) const;
  /// Observed seconds of shard `shard` in the last evaluation round
  /// (obs-layer timeline when available, wall time otherwise).
  double shardSeconds(int shard) const { return shardSeconds_[shard]; }
  /// Adaptive re-splits applied so far.
  int rebalanceCount() const { return rebalances_; }
  /// Failovers applied so far (each may quarantine several shards).
  int failoverCount() const { return failovers_; }
  /// Indices of shards currently quarantined by failover.
  std::vector<int> quarantinedShards() const;
  /// Error message that quarantined `shard` ("" when not quarantined).
  const std::string& shardError(int shard) const {
    return shardErrors_[static_cast<std::size_t>(shard)];
  }
  /// True once the all-shards-failed CPU fallback has been engaged.
  bool usedCpuFallback() const { return cpuFallbackUsed_; }
  /// Current per-shard speed estimates (patterns/second); empty unless
  /// Proportional/Adaptive.
  std::vector<double> shardSpeeds() const;

 private:
  void build(const Tree& tree, const std::vector<int>& shares);
  bool tryBuild(const Tree& tree, const std::vector<int>& shares);
  double evaluateShard(std::size_t shard, const Tree& tree);
  double evaluateRound(const Tree& tree);
  void quarantine(std::size_t shard, const std::string& reason, int code);
  std::vector<int> sharesAfterQuarantine();

  const SubstitutionModel* model_ = nullptr;  ///< borrowed, must outlive
  PatternSet data_;
  std::vector<LikelihoodOptions> shardOptions_;
  SplitOptions split_;
  std::vector<double> calibratedSpeeds_;  ///< empty under Equal
  std::unique_ptr<sched::LoadBalancer> balancer_;

  std::vector<std::unique_ptr<TreeLikelihood>> shards_;  ///< null = idle shard
  std::vector<int> shardPatterns_;
  std::vector<double> shardSeconds_;
  int rebalances_ = 0;

  // Failover state. `active_` lists the non-quarantined shard indices;
  // the balancer (when present) is always sized to `active_`, so
  // quarantined shards can never be handed work again.
  std::vector<char> quarantined_;
  std::vector<int> active_;
  std::vector<double> currentSpeeds_;   ///< full-size, observation-refreshed
  std::vector<std::string> shardErrors_;
  std::vector<int> roundErrorCode_;     ///< per-round: 0 = shard succeeded
  std::vector<std::string> roundErrorMessage_;
  std::string lastFailure_;
  int lastFailureCode_ = 0;
  int failovers_ = 0;
  bool cpuFallbackUsed_ = false;
};

/// Deal `data`'s patterns round-robin into `shards` subsets (weights kept).
std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards);

/// Divide `data`'s patterns into len(shares) subsets of the given sizes
/// (sum of shares must equal data.patterns; shares may be zero). Patterns
/// are dealt in index order, strided across the non-empty shards to keep
/// per-shard pattern composition statistically similar.
std::vector<PatternSet> splitPatternsByShares(const PatternSet& data,
                                              const std::vector<int>& shares);

}  // namespace bgl::phylo
