// Regression for the instance-lifetime race: bglFinalizeInstance must not
// destroy an implementation while another thread is inside an operation on
// the same instance id. The fix pins the implementation with a shared_ptr
// for the duration of each call; before it, withInstance returned a raw
// pointer after releasing the global mutex, and this test is a
// use-after-free under TSan/ASan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/bgl.h"

namespace {

TEST(FinalizeRace, ConcurrentFinalizeAndOperations) {
  const int resource = 0;
  std::vector<int> states(64, 1);
  std::vector<double> partials(2ull * 64 * 4, 0.25);

  for (int iter = 0; iter < 50; ++iter) {
    const int inst = bglCreateInstance(
        /*tips=*/4, /*partials=*/3, /*compact=*/4, /*states=*/4,
        /*patterns=*/64, /*eigen=*/1, /*matrices=*/6, /*categories=*/2,
        /*scale=*/0, &resource, 1, 0,
        BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_PRECISION_DOUBLE, nullptr);
    ASSERT_GE(inst, 0);
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(bglSetTipStates(inst, t, states.data()), BGL_SUCCESS);
    }

    std::atomic<bool> started{false};
    std::thread worker([&] {
      started.store(true);
      for (int i = 0; i < 64; ++i) {
        // Once the main thread finalizes, the only acceptable outcome is a
        // clean OUT_OF_RANGE — never a crash or a sanitizer report.
        const int rc = bglSetPartials(inst, 4, partials.data());
        if (rc != BGL_SUCCESS) {
          EXPECT_EQ(rc, BGL_ERROR_OUT_OF_RANGE);
          break;
        }
      }
    });
    while (!started.load()) std::this_thread::yield();
    const int rc = bglFinalizeInstance(inst);
    EXPECT_TRUE(rc == BGL_SUCCESS || rc == BGL_ERROR_OUT_OF_RANGE);
    worker.join();
  }
}

}  // namespace
