// Framework-runtime semantics: the CUDA/OpenCL differences the shared-code
// design has to bridge (Section VII-A), device enumeration, work-group
// limits, device fission, and timelines.
#include <gtest/gtest.h>

#include <cstring>

#include "clsim/cl_runtime.h"
#include "cudasim/cuda_device.h"
#include "kernels/kernels.h"
#include "perfmodel/device_profiles.h"

namespace bgl {
namespace {

TEST(CudaRuntime, EnumeratesNvidiaAndHostOnly) {
  const auto visible = cudasim::visibleDeviceProfiles();
  const auto& reg = perf::deviceRegistry();
  for (int r : visible) {
    const bool nvidia = reg[r].vendor.find("NVIDIA") != std::string::npos;
    EXPECT_TRUE(nvidia || reg[r].hostMeasured) << reg[r].name;
  }
  // The AMD GPUs must not be CUDA-visible.
  for (int r : visible) {
    EXPECT_EQ(reg[r].vendor.find("Micro Devices"), std::string::npos);
  }
}

TEST(CudaRuntime, RejectsNonCudaDevice) {
  EXPECT_THROW(cudasim::createDevice(perf::kRadeonR9Nano), Error);
}

TEST(CudaRuntime, MemcpyRoundTrip) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  auto buf = dev->alloc(1024);
  std::vector<double> in(128), out(128);
  for (int i = 0; i < 128; ++i) in[i] = i * 0.5;
  dev->copyToDevice(*buf, 0, in.data(), 1024);
  dev->copyToHost(out.data(), *buf, 0, 1024);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 1024), 0);
}

TEST(CudaRuntime, SubRegionByPointerArithmeticAtAnyOffset) {
  // CUDA-style sub-addressing has no alignment rule.
  auto dev = cudasim::createDevice(perf::kHostCpu);
  auto buf = dev->alloc(256);
  auto view = dev->subBuffer(buf, 13, 100);  // arbitrary odd offset: fine
  EXPECT_EQ(view->size(), 100u);
  const char payload[4] = {'a', 'b', 'c', 'd'};
  dev->copyToDevice(*view, 0, payload, 4);
  char check[4];
  dev->copyToHost(check, *buf, 13, 4);
  EXPECT_EQ(std::memcmp(payload, check, 4), 0);
}

TEST(CudaRuntime, SubRegionOutOfBoundsThrows) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  auto buf = dev->alloc(64);
  EXPECT_THROW(dev->subBuffer(buf, 32, 64), Error);
}

TEST(OpenClRuntime, IcdLoaderExposesMultiplePlatforms) {
  const auto& platforms = clsim::platforms();
  EXPECT_GE(platforms.size(), 3u);
  // Same physical device reachable through more than one driver
  // (Section VII-B3: driver selection for the same hardware resource).
  int hostDrivers = 0;
  for (const auto& p : platforms) {
    for (int r : p.deviceProfiles) {
      if (r == perf::kHostCpu) ++hostDrivers;
    }
  }
  EXPECT_GE(hostDrivers, 2);
}

TEST(OpenClRuntime, VendorDriverPreferredOverGeneric) {
  auto dev = clsim::createDeviceByProfile(perf::kQuadroP5000);
  // The vendor driver has multiplier 1.0; the generic one would inflate
  // the launch overhead beyond the profile's base value.
  EXPECT_DOUBLE_EQ(dev->profile().launchOverheadUsOpenCl,
                   perf::deviceRegistry()[perf::kQuadroP5000].launchOverheadUsOpenCl);
}

TEST(OpenClRuntime, GenericDriverDegradesPerformanceModel) {
  const clsim::Platform* generic = nullptr;
  for (const auto& p : clsim::platforms()) {
    if (p.overheadMultiplier > 1.0) generic = &p;
  }
  ASSERT_NE(generic, nullptr);
  auto dev = clsim::createDevice(*generic, perf::kQuadroP5000);
  EXPECT_GT(dev->profile().launchOverheadUsOpenCl,
            perf::deviceRegistry()[perf::kQuadroP5000].launchOverheadUsOpenCl);
  EXPECT_LT(dev->profile().computeEfficiency,
            perf::deviceRegistry()[perf::kQuadroP5000].computeEfficiency);
}

TEST(OpenClRuntime, SubBufferRequiresAlignment) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  auto buf = dev->alloc(4096);
  EXPECT_NO_THROW(dev->subBuffer(buf, clsim::kSubBufferAlign, 128));
  EXPECT_THROW(dev->subBuffer(buf, 13, 128), Error);  // misaligned origin
}

TEST(OpenClRuntime, SubBufferOfSubBufferRejected) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  auto buf = dev->alloc(4096);
  auto sub = dev->subBuffer(buf, 0, 1024);
  EXPECT_THROW(dev->subBuffer(sub, 128, 128), Error);
}

TEST(OpenClRuntime, LocalMemoryLimitEnforced) {
  auto dev = clsim::createDeviceByProfile(perf::kRadeonR9Nano);  // 32 KB local
  hal::KernelSpec spec;
  spec.id = hal::KernelId::PartialsPartials;
  spec.states = 4;
  spec.variant = hal::KernelVariant::GpuStyle;
  auto* kernel = dev->getKernel(spec);
  hal::LaunchDims dims;
  dims.numGroups = 1;
  dims.groupSize = 64;
  dims.localMemBytes = 64 * 1024;  // over the 32 KB limit
  hal::KernelArgs args;
  EXPECT_THROW(dev->launch(*kernel, dims, args, {}), Error);
}

TEST(OpenClRuntime, KernelCacheReturnsSameObject) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* a = dev->getKernel(spec);
  auto* b = dev->getKernel(spec);
  EXPECT_EQ(a, b);
  spec.singlePrecision = true;
  EXPECT_NE(dev->getKernel(spec), a);
}

TEST(OpenClRuntime, TimelineAccumulatesLaunches) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev->getKernel(spec);
  auto buf = dev->alloc(128 * sizeof(double));
  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 128;
  EXPECT_EQ(dev->timeline().kernelLaunches, 0u);
  dev->launch(*kernel, {1, 1, 0}, args, {});
  dev->launch(*kernel, {1, 1, 0}, args, {});
  EXPECT_EQ(dev->timeline().kernelLaunches, 2u);
  EXPECT_GT(dev->timeline().measuredSeconds, 0.0);
  // Host device: modeled time mirrors measured time.
  EXPECT_DOUBLE_EQ(dev->timeline().modeledSeconds, dev->timeline().measuredSeconds);
  dev->timeline().reset();
  EXPECT_EQ(dev->timeline().kernelLaunches, 0u);
}

TEST(OpenClRuntime, ModeledDeviceUsesRoofline) {
  auto dev = clsim::createDeviceByProfile(perf::kRadeonR9Nano);
  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev->getKernel(spec);
  auto buf = dev->alloc(128 * sizeof(double));
  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 128;
  perf::LaunchWork work;
  work.flops = 1e9;  // would take ~0.75 ms at modeled codon efficiency
  work.bytes = 1e6;
  dev->launch(*kernel, {1, 1, 0}, args, work);
  // Modeled time reflects the roofline, not host execution of a tiny loop.
  EXPECT_GT(dev->timeline().modeledSeconds, 1e-4);
}

TEST(OpenClRuntime, DeviceFissionRestrictsWorkers) {
  // Functional check: fission must not change results.
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  dev->setFission(1);
  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev->getKernel(spec);
  std::vector<double> ones(64, 1.0);
  auto buf = dev->alloc(64 * sizeof(double));
  dev->copyToDevice(*buf, 0, ones.data(), 64 * sizeof(double));
  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 64;
  dev->launch(*kernel, {1, 1, 0}, args, {});
  std::vector<double> out(64, -1.0);
  dev->copyToHost(out.data(), *buf, 0, 64 * sizeof(double));
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Kernels, LookupRejectsBadStateCounts) {
  hal::KernelSpec spec;
  spec.id = hal::KernelId::PartialsPartials;
  spec.states = 1;
  EXPECT_THROW(kernels::lookupKernel(spec), Error);
  spec.states = 100;
  EXPECT_THROW(kernels::lookupKernel(spec), Error);
}

TEST(Kernels, SharedAcrossFrameworks) {
  // The two runtimes must resolve the identical kernel function for the
  // same spec — the "single set of kernels" property.
  hal::KernelSpec spec;
  spec.id = hal::KernelId::PartialsPartials;
  spec.states = 4;
  spec.variant = hal::KernelVariant::GpuStyle;
  EXPECT_EQ(kernels::lookupKernel(spec), kernels::lookupKernel(spec));
  // Variants and precisions are distinct compiled kernels.
  hal::KernelSpec x86 = spec;
  x86.variant = hal::KernelVariant::X86Style;
  EXPECT_NE(kernels::lookupKernel(spec), kernels::lookupKernel(x86));
}

TEST(Kernels, GpuLocalMemoryRequirement) {
  EXPECT_EQ(kernels::gpuStyleLocalMemBytes(4, false), 2u * 16 * 8);
  EXPECT_EQ(kernels::gpuStyleLocalMemBytes(61, true), 2u * 61 * 61 * 4);
  // Codon double precision exceeds the AMD 32 KB local memory.
  EXPECT_GT(kernels::gpuStyleLocalMemBytes(61, false), 32u * 1024);
}

}  // namespace
}  // namespace bgl
