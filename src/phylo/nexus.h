// NEXUS file support (the input format of MrBayes and much of the
// phylogenetics ecosystem). Implements the subset needed for likelihood
// analyses: the DATA/CHARACTERS block (DIMENSIONS, FORMAT with
// datatype=dna|protein, MATRIX with interleaved or sequential layouts) and
// the TREES block (TRANSLATE table plus TREE statements).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "phylo/fasta.h"
#include "phylo/tree.h"

namespace bgl::phylo {

enum class NexusDataType { Dna, Protein };

struct NexusData {
  NexusDataType dataType = NexusDataType::Dna;
  int taxa = 0;
  int characters = 0;
  char gapChar = '-';
  char missingChar = '?';
  std::vector<std::string> taxonNames;
  std::vector<std::string> sequences;  ///< aligned, one per taxon

  /// Trees from the TREES block, tips renumbered to the taxon order of the
  /// data block (or of the TRANSLATE table when no data block exists).
  std::vector<std::pair<std::string, Tree>> trees;

  /// Encode the matrix to state codes (taxa x characters, row-major);
  /// gap/missing/ambiguity map to -1.
  std::vector<int> encodeStates() const;
};

/// Parse NEXUS text. Throws bgl::Error on malformed input.
NexusData parseNexus(const std::string& text);

/// Serialize sequences + optional trees back to NEXUS.
std::string writeNexus(const NexusData& data);

}  // namespace bgl::phylo
