#include "api/plugin.h"

#include <dlfcn.h>

#include "api/registry.h"

namespace bgl {
namespace {

class RegistryHost final : public PluginHost {
 public:
  void addFactory(std::unique_ptr<ImplementationFactory> factory) override {
    Registry::instance().addFactory(std::move(factory));
    ++count;
  }
  int count = 0;
};

}  // namespace
}  // namespace bgl

extern "C" int bglLoadPlugin(const char* path) {
  if (path == nullptr) return BGL_ERROR_OUT_OF_RANGE;
  void* handle = dlopen(path, RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) return BGL_ERROR_NO_RESOURCE;
  auto fn = reinterpret_cast<bgl::PluginRegisterFn>(dlsym(handle, "bglPluginRegister"));
  if (fn == nullptr) {
    dlclose(handle);
    return BGL_ERROR_NO_IMPLEMENTATION;
  }
  bgl::RegistryHost host;
  const int declared = fn(&host);
  // The library must stay loaded: its factories/vtables live in it.
  return declared >= 0 ? host.count : BGL_ERROR_GENERAL;
}
