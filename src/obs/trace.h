// Library-wide tracing and metrics layer.
//
// Every Implementation owns one TraceRecorder. The recorder has three
// progressively more expensive levels:
//
//   counters  - always on: relaxed atomic adds, one per operation batch.
//   timing    - opt-in (bglResetTimeline / bglSetStatsFile / BGL_STATS):
//               spans stamp a monotonic clock and feed per-category
//               duration histograms.
//   events    - opt-in (bglSetTraceFile / BGL_TRACE): spans are also
//               retained as a timeline and exported as Chrome trace-event
//               JSON (about:tracing / Perfetto).
//
// When neither timing nor events is enabled a ScopedSpan is a single
// relaxed atomic load, so instrumentation can stay in release builds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bgl::obs {

namespace detail {
/// Master instrumentation switch (see enabled() below).
inline std::atomic<bool> g_obsEnabled{true};
}  // namespace detail

/// Process-wide master switch over the always-on instrumentation (counters,
/// gauges, journal appends). On by default; turning it off exists solely so
/// bench_obs_overhead can measure the cost of the always-on layer against a
/// faithful stand-in for compiling it out — one relaxed load replaces each
/// counter add. Not part of the public C API on purpose.
inline bool enabled() {
  return detail::g_obsEnabled.load(std::memory_order_relaxed);
}
void setEnabled(bool on);

/// Per-instance operation counters (always on).
enum class Counter : int {
  kPartialsOperations = 0,  ///< partial-likelihoods operations executed
  kTransitionMatrices,      ///< transition matrices computed
  kRootEvaluations,         ///< root-likelihood subsets integrated
  kEdgeEvaluations,         ///< edge-likelihood subsets integrated
  kRescaleEvents,           ///< per-operation rescale passes
  kScaleAccumulations,      ///< scale buffers accumulated into / removed from
  kKernelLaunches,          ///< device kernel launches (accelerator instances)
  kBytesIn,                 ///< bytes staged into the instance (host->device)
  kBytesOut,                ///< bytes read back out (device->host)
  kStreamedLaunches,        ///< launches enqueued on an async command stream
  kCount
};
const char* counterName(Counter c);

/// Span categories. The first four mirror the public API entry points and
/// define the CPU timeline's time base; the rest are nested detail.
enum class Category : int {
  kUpdatePartials = 0,
  kUpdateTransitionMatrices,
  kRootLogLikelihoods,
  kEdgeLogLikelihoods,
  kOperation,  ///< one partials operation (nested in kUpdatePartials)
  kRescale,    ///< rescale pass after an operation
  kScaling,    ///< scale-factor accumulate / remove / reset
  kKernel,     ///< device kernel execution (simulated runtimes)
  kMemcpy,     ///< host<->device transfer (simulated runtimes)
  kWorker,     ///< per-thread pattern block (threaded implementations)
  kStreamFlush,///< waiting for an async command stream to drain
  kEnqueue,    ///< API-thread enqueue of a streamed launch (flow start)
  kStreamSync, ///< cross-stream event signal/wait (multi-stream devices)
  kCount
};
const char* categoryName(Category c);

/// Instantaneous gauges (always on, like counters). setGauge overwrites
/// the level and tracks the high-water mark separately.
enum class Gauge : int {
  kPendingDepth = 0,  ///< command-stream records enqueued but not retired,
                      ///< sampled at enqueue time
  kInFlight,          ///< records the stream worker holds right now
  kCount
};
const char* gaugeName(Gauge g);

/// True for the API-level categories that make up the CPU timeline.
bool isTimelineCategory(Category c);

/// Log2-bucketed duration histogram (bucket i covers [2^i, 2^(i+1)) ns).
struct DurationHistogram {
  static constexpr int kBuckets = 40;
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t minNs = 0;
  std::uint64_t maxNs = 0;
  std::uint64_t buckets[kBuckets] = {};

  void record(std::uint64_t ns);

  /// Merge another histogram into this one (process-wide aggregation).
  void merge(const DurationHistogram& other);
};

/// Estimated duration (ns) at quantile `q` in [0, 1], by linear
/// interpolation inside the log2 bucket the target rank falls in. Bucket 0
/// spans [0, 2) ns; bucket i >= 1 spans [2^i, 2^(i+1)) ns. The result is
/// clamped to [minNs, maxNs] so boundary quantiles are exact. Returns 0 for
/// an empty histogram. See docs/OBSERVABILITY.md for the derivation.
double histogramQuantile(const DurationHistogram& h, double q);

/// One retained span. Device/framework/stream/bytes/groups are only set on
/// kernel-launch and memcpy events emitted by the simulated runtimes.
struct TraceEvent {
  Category category = Category::kOperation;
  std::string name;
  std::uint64_t beginNs = 0;
  std::uint64_t durNs = 0;
  int tid = 0;             ///< 0 = API thread, >0 = worker lane
  int stream = -1;         ///< device stream (-1 = not a device event)
  std::uint64_t bytes = 0;
  std::uint64_t groups = 0;
  std::string device;
  std::string framework;

  // Causal stream tracing: a nonzero flowId ties an API-thread enqueue span
  // (flowPhase 1, Chrome "s") to the worker-thread execution span it caused
  // (flowPhase 2, Chrome "f"). queuedNs is the enqueue-to-execute latency,
  // exported as an arg on the execution span.
  std::uint64_t flowId = 0;
  int flowPhase = 0;  ///< 0 = none, 1 = flow start, 2 = flow finish
  std::uint64_t queuedNs = 0;
};

/// Process-unique flow id for tying an enqueue span to its execution span.
std::uint64_t nextFlowId();

class TraceRecorder {
 public:
  /// Retained-event cap; beyond it spans still feed histograms but are
  /// dropped from the timeline (droppedEvents() reports how many).
  static constexpr std::size_t kMaxEvents = 1u << 20;

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  // ---- modes ----
  void enableTiming() { mode_.fetch_or(kTimingBit, std::memory_order_relaxed); }
  void enableEvents() {
    mode_.fetch_or(kTimingBit | kEventsBit, std::memory_order_relaxed);
  }
  bool timingEnabled() const {
    return (mode_.load(std::memory_order_relaxed) & kTimingBit) != 0;
  }
  bool eventsEnabled() const {
    return (mode_.load(std::memory_order_relaxed) & kEventsBit) != 0;
  }

  // ---- counters ----
  void count(Counter c, std::uint64_t n = 1) {
    if (!enabled()) return;
    counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  // ---- gauges ----
  void setGauge(Gauge g, std::uint64_t v) {
    if (!enabled()) return;
    const int i = static_cast<int>(g);
    gauges_[i].store(v, std::memory_order_relaxed);
    std::uint64_t prev = gaugeMax_[i].load(std::memory_order_relaxed);
    while (prev < v && !gaugeMax_[i].compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t gauge(Gauge g) const {
    return gauges_[static_cast<int>(g)].load(std::memory_order_relaxed);
  }
  std::uint64_t gaugeMax(Gauge g) const {
    return gaugeMax_[static_cast<int>(g)].load(std::memory_order_relaxed);
  }

  /// Zero counters, histograms and the retained timeline (modes persist).
  void reset();

  // ---- clock ----
  std::uint64_t nowNs() const {
    return sinceEpochNs(std::chrono::steady_clock::now());
  }
  std::uint64_t sinceEpochNs(std::chrono::steady_clock::time_point t) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_).count());
  }

  // ---- spans ----
  /// Record a completed span (histogram always, timeline when events on).
  void recordSpan(Category cat, const char* name, std::uint64_t beginNs,
                  std::uint64_t endNs, int tid = 0);
  /// Record a fully described event (device kernel / memcpy spans).
  void recordEvent(TraceEvent ev);

  std::uint64_t categoryCount(Category cat) const;
  double categorySeconds(Category cat) const;
  /// Sum of seconds over the API-level timeline categories.
  double timelineSeconds() const;
  DurationHistogram histogram(Category cat) const;

  // ---- retained timeline ----
  std::size_t eventCount() const;
  std::uint64_t droppedEvents() const;
  std::vector<TraceEvent> events() const;

 private:
  static constexpr unsigned kTimingBit = 1u;
  static constexpr unsigned kEventsBit = 2u;

  std::atomic<unsigned> mode_{0};
  std::atomic<std::uint64_t> counters_[static_cast<int>(Counter::kCount)] = {};
  std::atomic<std::uint64_t> gauges_[static_cast<int>(Gauge::kCount)] = {};
  std::atomic<std::uint64_t> gaugeMax_[static_cast<int>(Gauge::kCount)] = {};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  DurationHistogram hist_[static_cast<int>(Category::kCount)];
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII span. Construction and destruction are no-ops (one relaxed atomic
/// load) unless timing is enabled on the recorder.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder& recorder, Category cat, const char* name, int tid = 0)
      : recorder_(recorder),
        cat_(cat),
        name_(name),
        tid_(tid),
        active_(recorder.timingEnabled()) {
    if (active_) beginNs_ = recorder_.nowNs();
  }
  ~ScopedSpan() {
    if (active_) recorder_.recordSpan(cat_, name_, beginNs_, recorder_.nowNs(), tid_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder& recorder_;
  Category cat_;
  const char* name_;
  int tid_;
  bool active_;
  std::uint64_t beginNs_ = 0;
};

}  // namespace bgl::obs
