// Detecting positive selection with a codon model.
//
// The dN/dS ratio (omega) of the GY94 codon model measures selective
// pressure: omega < 1 purifying selection, omega = 1 neutral evolution,
// omega > 1 positive selection. This example simulates a protein-coding
// alignment under a known omega and recovers it by maximum likelihood
// (golden-section search over omega), the codon-model workload that gives
// the paper its largest accelerator speedups (61-state partials).
#include <cmath>
#include <cstdio>

#include "core/model.h"
#include "phylo/likelihood.h"
#include "phylo/seqsim.h"

namespace {

using namespace bgl;

double logLikelihoodAtOmega(const phylo::Tree& tree, const PatternSet& data,
                            double omega) {
  const GY94CodonModel model = GY94CodonModel::equalFrequencies(2.0, omega);
  phylo::LikelihoodOptions opts;
  opts.categories = 1;
  opts.useScaling = true;  // 61-state partials underflow without rescaling
  phylo::TreeLikelihood like(tree, model, data, opts);
  return like.logLikelihood();
}

}  // namespace

int main() {
  const double kTrueOmega = 0.35;

  Rng rng(613);
  phylo::Tree tree = phylo::Tree::random(8, rng, 0.08);
  const GY94CodonModel truth = GY94CodonModel::equalFrequencies(2.0, kTrueOmega);
  const auto data = phylo::simulatePatterns(tree, truth, 800, rng);
  std::printf("simulated %d codon sites (-> %d unique patterns) at omega=%.2f\n\n",
              data.originalSites, data.patterns, kTrueOmega);

  // Profile the likelihood over omega.
  std::printf("%8s %14s\n", "omega", "logL");
  for (double w : {0.05, 0.2, 0.35, 0.6, 1.0, 2.0}) {
    std::printf("%8.2f %14.4f\n", w, logLikelihoodAtOmega(tree, data, w));
  }

  // Golden-section search for the ML omega.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = 0.02, b = 3.0;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = logLikelihoodAtOmega(tree, data, c);
  double fd = logLikelihoodAtOmega(tree, data, d);
  for (int iter = 0; iter < 40 && (b - a) > 1e-3; ++iter) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = logLikelihoodAtOmega(tree, data, c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = logLikelihoodAtOmega(tree, data, d);
    }
  }
  const double mlOmega = (a + b) / 2.0;
  std::printf("\nML estimate of omega: %.4f (simulated with %.2f)\n", mlOmega,
              kTrueOmega);
  std::printf("interpretation: omega %s 1 => %s selection\n",
              mlOmega < 1.0 ? "<" : ">",
              mlOmega < 1.0 ? "purifying" : "positive");

  const bool recovered = std::abs(mlOmega - kTrueOmega) < 0.15;
  std::printf("recovered within +/-0.15: %s\n", recovered ? "yes" : "NO");
  return recovered ? 0 : 1;
}
