file(REMOVE_RECURSE
  "CMakeFiles/bgl_mc3.dir/evaluator.cpp.o"
  "CMakeFiles/bgl_mc3.dir/evaluator.cpp.o.d"
  "CMakeFiles/bgl_mc3.dir/mc3.cpp.o"
  "CMakeFiles/bgl_mc3.dir/mc3.cpp.o.d"
  "libbgl_mc3.a"
  "libbgl_mc3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_mc3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
