// Site-pattern compression.
//
// Phylogenetic likelihoods are identical for alignment columns with the same
// state assignment across taxa, so alignments are collapsed to unique
// "site patterns" with integer weights before computation — the problem
// sizes throughout the paper are counted in unique site patterns.
#pragma once

#include <vector>

namespace bgl {

/// One alignment compressed into unique patterns.
struct PatternSet {
  int taxa = 0;
  int patterns = 0;           ///< number of unique patterns
  std::vector<int> states;    ///< taxa x patterns, row-major per taxon
  std::vector<double> weights;///< per-pattern multiplicity
  int originalSites = 0;

  /// State code of taxon t at pattern k.
  int at(int taxon, int pattern) const {
    return states[static_cast<std::size_t>(taxon) * patterns + pattern];
  }
};

/// Compress a taxa x sites matrix of state codes (row-major per taxon,
/// codes 0..stateCount-1, or negative for ambiguity/gap) into unique
/// patterns with weights. Column order of first occurrence is preserved.
PatternSet compressPatterns(const std::vector<int>& siteStates, int taxa, int sites);

}  // namespace bgl
