// Heterogeneous scheduler: benchmark-driven resource calibration.
//
// BEAGLE 4.1 ships this capability as beagleBenchmarkResources: measure
// every resource on a short representative workload, then choose (or
// split) accordingly. This module is that measurement half. It closes the
// loop the repo previously left open: the resource registry enumerates
// devices, the perf model predicts them, the obs layer times them — and
// the scheduler turns those into throughput estimates that drive
// proportional pattern sharding (phylo::SplitLikelihood), resource
// auto-selection (mc3, genomictest --auto-resource) and the
// bglBenchmarkResources / bglGetResourcePerformance C API.
//
// Estimates come from two sources:
//   * benchmarkResource() — runs a short synthetic partials+root workload
//     through the public C API on the resource. On accelerator profiles
//     the roofline-modeled timeline is the time base (the same base every
//     benchmark in this repo uses); on the host it is measured wall time.
//   * modelEstimate() — no execution; seeds the estimate from the
//     perfmodel device profile (used when calibration is skipped).
//
// Results are cached process-wide per (resource, workload-shape, flags)
// key. The calibration dataset is deterministic under a fixed seed; the
// BGL_SCHED_SEED environment variable overrides the default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace bgl::sched {

/// Default calibration-dataset seed (overridable via BGL_SCHED_SEED).
inline constexpr unsigned kDefaultSeed = 1234;

/// `seed` if non-zero, else BGL_SCHED_SEED from the environment, else
/// kDefaultSeed.
unsigned resolveSeed(unsigned seed);

/// Precision resolution matching the registry (bglCreateInstance):
/// requirements beat preferences and double is the default, so the result
/// is single iff single is required, or preferred while double is not
/// required. Every CalibrationSpec built from instance flags must use
/// this so calibration measures the precision the instance will run at.
bool resolveSinglePrecision(long preferenceFlags, long requirementFlags);

/// Shape of the synthetic calibration workload. The defaults are small on
/// purpose: calibration should cost milliseconds, not the analysis it is
/// scheduling.
struct CalibrationSpec {
  int tips = 8;
  int patterns = 1024;
  int states = 4;
  int categories = 4;
  int reps = 3;              ///< timed repetitions, best-of
  bool singlePrecision = false;
  long preferenceFlags = 0;  ///< forwarded to bglCreateInstance
  long requirementFlags = 0; ///< forwarded to bglCreateInstance
  unsigned seed = 0;         ///< 0 = resolveSeed default
};

/// One resource's throughput estimate.
struct ResourceEstimate {
  int resource = -1;
  double patternsPerSecond = 0.0;  ///< calibration patterns / second / evaluation
  double gflops = 0.0;             ///< effective GFLOPS on the workload
  double seconds = 0.0;            ///< one full calibration evaluation
  double logL = 0.0;               ///< workload root log likelihood
                                   ///< (deterministic under the seed)
  bool measured = false;           ///< true: benchmarked; false: model-seeded
  std::string implName;            ///< implementation that served the benchmark
};

/// Benchmark one resource (uncached). Returns nullopt when no
/// implementation can serve (resource, spec flags).
std::optional<ResourceEstimate> benchmarkResource(int resource,
                                                  const CalibrationSpec& spec = {});

/// Perf-model-seeded estimate for one resource (uncached, no execution).
ResourceEstimate modelEstimate(int resource, const CalibrationSpec& spec = {});

/// Cached estimate: benchmark when `benchmark` is true (falling back to
/// the model when no implementation serves the request), else model-seed.
/// A cached measured estimate is preferred over re-deriving a model seed.
ResourceEstimate resourceEstimate(int resource, const CalibrationSpec& spec,
                                  bool benchmark);

/// Cached estimates for several resources (empty = every registry
/// resource), in the order given.
std::vector<ResourceEstimate> resourceEstimates(const std::vector<int>& resources,
                                                const CalibrationSpec& spec,
                                                bool benchmark);

/// Best cached-or-model effective GFLOPS known for `resource` (any cached
/// workload shape; falls back to a default-spec model estimate). Backs
/// bglGetResourcePerformance. Returns < 0 for an invalid resource.
double resourcePerformance(int resource);

/// Admission-control load estimate: predicted seconds for one full
/// evaluation of a (`patterns`, `states`, `categories`) workload on
/// `resource`. Never executes anything — served from the calibration
/// cache when a matching estimate exists (measured estimates included),
/// otherwise perf-model-seeded. The serving layer (src/serve/) sums these
/// across live sessions to shed load before it materializes. Returns < 0
/// for an invalid resource.
double estimateEvaluationSeconds(int resource, int patterns, int states,
                                 int categories);

/// Fastest resource among `candidates` (empty = all) by estimate; -1 when
/// none can be served.
int fastestResource(const std::vector<int>& candidates = {},
                    const CalibrationSpec& spec = {}, bool benchmark = true);

/// Drop every cached estimate (tests).
void clearCache();

/// Scheduler-wide counters (process-global, always on).
struct Counters {
  std::uint64_t calibrations = 0;    ///< benchmark workloads executed
  std::uint64_t modelEstimates = 0;  ///< model-seeded estimates derived
  std::uint64_t cacheHits = 0;       ///< estimate requests served from cache
  std::uint64_t rebalances = 0;      ///< adaptive re-splits applied
  std::uint64_t migratedPatterns = 0;///< patterns moved by re-splits
  std::uint64_t failovers = 0;       ///< shard failovers applied
  std::uint64_t quarantinedShards = 0;   ///< shards quarantined by failovers
  std::uint64_t calibrationFailures = 0; ///< benchmark runs that errored and
                                         ///< fell back to the perf model
};
Counters counters();

/// Record an applied adaptive re-split (called by consumers, e.g.
/// phylo::SplitLikelihood).
void noteRebalance(std::uint64_t migratedPatterns);

/// Record an applied shard failover: `quarantined` shards were taken out
/// of service and their patterns re-apportioned across the survivors
/// (called by consumers, e.g. phylo::SplitLikelihood).
void noteFailover(std::uint64_t quarantined);

/// Module-level trace recorder: `sched.calibrate`, `sched.model_estimate`,
/// `sched.rebalance` and `sched.failover` spans land here (enable
/// timing/events to collect them, same contract as per-instance
/// recorders).
obs::TraceRecorder& recorder();

}  // namespace bgl::sched
