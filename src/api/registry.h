// Implementation manager: resource enumeration, flag resolution, and
// factory selection (the "implementation manager" layer of Fig. 1).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/implementation.h"

namespace bgl {

class Registry {
 public:
  static Registry& instance();

  const std::vector<std::unique_ptr<ImplementationFactory>>& factories() const {
    return factories_;
  }

  /// Caller-owned copy of the resource list: the BglResource entries and
  /// the strings they point into both live in the snapshot, so reading it
  /// is safe no matter what addFactory() does to the registry afterwards.
  struct ResourceSnapshot {
    std::vector<BglResource> resources;
    std::vector<std::string> strings;  ///< stable name/description storage
    BglResourceList list{};            ///< points into `resources`
  };

  /// Fill `out` with a consistent copy of the current resource list
  /// (taken under the registry mutex, so it is safe concurrently with
  /// plugin registration). Backs bglGetResourceList.
  void snapshotResources(ResourceSnapshot& out) const;

  struct CreateResult {
    std::unique_ptr<Implementation> impl;
    int resource = -1;
    std::string implName;
    std::string resourceName;
    long flags = 0;
  };

  /// Resolve flags, pick a resource+factory, and build the implementation.
  /// Returns an empty `impl` with an error code in `error` on failure.
  CreateResult create(InstanceConfig cfg, const int* resourceList, int resourceCount,
                      long preferenceFlags, long requirementFlags, int* error);

  /// Register an additional factory (plugin loading); refreshes the
  /// per-resource capability flags. Factory and resource-list mutation is
  /// mutex-guarded, so this is safe concurrently with create() and with
  /// snapshotResources().
  void addFactory(std::unique_ptr<ImplementationFactory> factory);

 private:
  Registry();
  void refreshResourceFlagsLocked();

  mutable std::mutex mutex_;  ///< guards factories_ / resources_ mutation
  std::vector<std::unique_ptr<ImplementationFactory>> factories_;
  std::vector<BglResource> resources_;
  std::vector<std::string> resourceStrings_;  // stable name/description storage
};

}  // namespace bgl
