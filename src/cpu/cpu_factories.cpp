#include "cpu/cpu_factories.h"

#include "cpu/cpu_impl.h"
#include "cpu/simd_impl.h"
#include "cpu/threaded_impl.h"
#include "perfmodel/device_profiles.h"

namespace bgl::cpu {
namespace {

constexpr long kCommonFlags = BGL_FLAG_PROCESSOR_CPU | BGL_FLAG_FRAMEWORK_CPU |
                              BGL_FLAG_COMPUTATION_SYNCH | BGL_FLAG_COMPUTATION_ASYNCH |
                              BGL_FLAG_COMPUTATION_PIPELINE |  // async no-op on CPU
                              BGL_FLAG_SCALING_MANUAL | BGL_FLAG_SCALING_ALWAYS;

bool wantsSingle(const InstanceConfig& cfg) {
  return (cfg.flags & BGL_FLAG_PRECISION_SINGLE) != 0;
}

/// Generic CPU factory: instantiates `Maker` for the requested precision.
template <typename DoubleImpl, typename FloatImpl>
class CpuFactory final : public ImplementationFactory {
 public:
  CpuFactory(std::string name, int priority, long extraFlags, bool doubleOnly,
             bool nucleotideOnly, bool available = true)
      : name_(std::move(name)),
        priority_(priority),
        extraFlags_(extraFlags),
        doubleOnly_(doubleOnly),
        nucleotideOnly_(nucleotideOnly),
        available_(available) {}

  std::string name() const override { return name_; }
  int priority() const override { return priority_; }

  long supportFlags(int /*resource*/) const override {
    long flags = kCommonFlags | extraFlags_ | BGL_FLAG_PRECISION_DOUBLE;
    if (!doubleOnly_) flags |= BGL_FLAG_PRECISION_SINGLE;
    return flags;
  }

  bool servesResource(int resource) const override {
    // CPU implementations execute natively: host resource only.
    return available_ && resource == perf::kHostCpu;
  }

  std::unique_ptr<Implementation> create(const InstanceConfig& cfg) override {
    if (!available_) return nullptr;
    if (nucleotideOnly_ && cfg.stateCount != 4) return nullptr;
    if (wantsSingle(cfg)) {
      if (doubleOnly_) return nullptr;
      if constexpr (std::is_same_v<FloatImpl, void>) {
        return nullptr;
      } else {
        return std::make_unique<FloatImpl>(cfg);
      }
    }
    return std::make_unique<DoubleImpl>(cfg);
  }

 private:
  std::string name_;
  int priority_;
  long extraFlags_;
  bool doubleOnly_;
  bool nucleotideOnly_;
  bool available_;
};

}  // namespace

void appendCpuFactories(std::vector<std::unique_ptr<ImplementationFactory>>& out) {
  using Serial = CpuFactory<CpuImpl<double>, CpuImpl<float>>;
  using Futures = CpuFactory<FuturesImpl<double>, FuturesImpl<float>>;
  using Create = CpuFactory<ThreadCreateImpl<double>, ThreadCreateImpl<float>>;
  using Pool = CpuFactory<ThreadPoolImpl<double>, ThreadPoolImpl<float>>;
  using Sse = CpuFactory<SseImpl, void>;
  using Avx = CpuFactory<AvxImpl, void>;
  using SsePool = CpuFactory<SseThreadPoolImpl, void>;
  using AvxPool = CpuFactory<AvxThreadPoolImpl, void>;

  out.push_back(std::make_unique<Serial>("CPU-serial", 10,
                                         BGL_FLAG_VECTOR_NONE | BGL_FLAG_THREADING_NONE,
                                         false, false));
  out.push_back(std::make_unique<Futures>(
      "CPU-threaded-futures", 12,
      BGL_FLAG_VECTOR_NONE | BGL_FLAG_THREADING_CPP | BGL_FLAG_THREADING_FUTURES,
      false, false));
  out.push_back(std::make_unique<Create>(
      "CPU-threaded-create", 13,
      BGL_FLAG_VECTOR_NONE | BGL_FLAG_THREADING_CPP | BGL_FLAG_THREADING_THREAD_CREATE,
      false, false));
  out.push_back(std::make_unique<Pool>(
      "CPU-threaded-pool", 30,
      BGL_FLAG_VECTOR_NONE | BGL_FLAG_THREADING_CPP | BGL_FLAG_THREADING_THREAD_POOL,
      false, false));

  const bool sse = cpuSupportsSse2();
  const bool avx = cpuSupportsAvx2Fma();
  out.push_back(std::make_unique<Sse>("CPU-SSE", 20,
                                      BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_NONE,
                                      true, true, sse));
  out.push_back(std::make_unique<Avx>("CPU-AVX", 22,
                                      BGL_FLAG_VECTOR_AVX | BGL_FLAG_THREADING_NONE,
                                      true, true, avx));
  out.push_back(std::make_unique<SsePool>(
      "CPU-SSE-threaded-pool", 32,
      BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_CPP | BGL_FLAG_THREADING_THREAD_POOL,
      true, true, sse));
  out.push_back(std::make_unique<AvxPool>(
      "CPU-AVX-threaded-pool", 34,
      BGL_FLAG_VECTOR_AVX | BGL_FLAG_THREADING_CPP | BGL_FLAG_THREADING_THREAD_POOL,
      true, true, avx));
}

}  // namespace bgl::cpu
