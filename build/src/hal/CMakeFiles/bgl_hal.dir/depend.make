# Empty dependencies file for bgl_hal.
# This may be replaced when dependencies are built.
