// Process-wide serving facade: session table, admission, statistics.
//
// This is the layer the bglPool* / bglSession* C API talks to. It owns
// the session id space, routes opens through the AdmissionController,
// leases instances from the InstancePool via Session, and aggregates both
// into the BglPoolStatistics snapshot. On first use it registers itself
// as the obs metrics stream's serve-stats provider, so `--watch` and the
// JSON-lines snapshots show pool occupancy and admission gauges live
// (metrics schema 2, docs/OBSERVABILITY.md).
//
// Locking: the service mutex covers the session table and config only.
// Session operations run outside it under the per-session mutex, so slow
// evaluations on one tenant never serialize another tenant's opens.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/defs.h"
#include "serve/admission.h"
#include "serve/session.h"

namespace bgl::serve {

/// Aggregated serving-layer statistics (mirrors BglPoolStatistics).
struct ServiceStats {
  int liveSessions = 0;
  int pooledInstances = 0;
  int freeInstances = 0;
  AdmissionCounters admission;
  PoolCounters pool;
  double estimatedLoadSeconds = 0.0;
};

class Service {
 public:
  static Service& instance();

  /// Apply limits (zero/negative fields select defaults; see BglPoolConfig).
  void configure(const AdmissionConfig& admission, int idleEvictMs);
  void configureDefaults();

  /// Open a session for `tenant`. Returns the session id. Throws
  /// bgl::Error with kErrRejected when admission control refuses, or the
  /// underlying creation error.
  int open(const std::string& tenant, int states, int patterns, int categories,
           int resource, long preferenceFlags, long requirementFlags);

  /// Close a session and return its lease to the pool. Throws
  /// kErrOutOfRange for a dead id.
  void close(int sessionId);

  /// Run `fn(session)` under the session's own lock. Throws kErrOutOfRange
  /// for a dead id.
  template <typename F>
  auto withSession(int sessionId, F&& fn) {
    const std::shared_ptr<Entry> entry = find(sessionId);
    std::lock_guard lock(entry->mutex);
    if (entry->session == nullptr) {
      // Lost a race with close(): the entry left the table after find().
      throw Error("serve: session " + std::to_string(sessionId) +
                      " is not a live session id",
                  kErrOutOfRange);
    }
    return fn(*entry->session);
  }

  ServiceStats stats() const;

 private:
  Service();

  struct Entry {
    std::unique_ptr<Session> session;
    std::mutex mutex;
  };

  std::shared_ptr<Entry> find(int sessionId);

  mutable std::mutex mutex_;
  AdmissionController admission_;
  std::map<int, std::shared_ptr<Entry>> sessions_;
  int nextId_ = 0;
};

}  // namespace bgl::serve
