# Empty compiler generated dependencies file for heterogeneous_devices.
# This may be replaced when dependencies are built.
