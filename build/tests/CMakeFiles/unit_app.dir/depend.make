# Empty dependencies file for unit_app.
# This may be replaced when dependencies are built.
