// Table IV: OpenCL-GPU FMA optimization (FP_FAST_FMA / FP_FAST_FMAF).
//
// Paper setup: AMD Radeon R9 Nano, core partials kernel, 10,000 and
// 100,000 patterns, single and double precision. Paper values:
//   precision patterns  without-FMA  with-FMA   gain
//   single     10,000     213.02      216.87    1.81%
//   double     10,000     124.14      136.88   10.26%
//   single    100,000     408.63      411.43    0.69%
//   double    100,000     178.04      199.23   11.90%
// Here the R9 Nano timing comes from the calibrated roofline model (no
// such hardware present); kernels still execute functionally with and
// without fused operations, and the host-measured FMA effect is also
// reported for the OpenCL-x86 path.
#include <cstdio>

#include "bench/bench_util.h"
#include "harness/genomictest.h"
#include "perfmodel/device_profiles.h"

int main() {
  using namespace bgl;
  bench::printHeader("Table IV: OpenCL-GPU FMA optimizations",
                     "Ayres & Cummings 2017, Table IV (Section VII-B1)");
  bench::printNote(
      "AMD Radeon R9 Nano rows are roofline-modeled (device simulated); "
      "host rows are measured wall time");

  std::printf("\n%-22s %-9s %9s %14s %12s %7s\n", "device", "precision",
              "patterns", "without FMA", "with FMA", "gain");

  struct Row {
    bool single;
    int patterns;
  };
  const Row rows[] = {{true, 10000}, {false, 10000}, {true, 100000}, {false, 100000}};

  bench::JsonReport report("table4", "Table IV: OpenCL-GPU FMA optimizations",
                           "Ayres & Cummings 2017, Table IV (Section VII-B1)");
  for (int resource : {static_cast<int>(perf::kRadeonR9Nano), 0}) {
    const char* deviceName = resource == 0 ? "Host CPU (measured)" : "R9 Nano (modeled)";
    for (const Row& row : rows) {
      harness::ProblemSpec spec;
      spec.tips = 8;
      spec.patterns = row.patterns;
      spec.states = 4;
      spec.categories = 4;
      spec.singlePrecision = row.single;
      spec.resource = resource;
      spec.requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL;
      spec.reps = 2;

      harness::ProblemSpec noFma = spec;
      noFma.requirementFlags |= BGL_FLAG_FMA_OFF;

      const double with = harness::runThroughput(spec).gflops;
      const double without = harness::runThroughput(noFma).gflops;
      report.row()
          .field("device", deviceName)
          .field("precision", row.single ? "single" : "double")
          .field("patterns", row.patterns)
          .field("gflopsWithoutFma", without)
          .field("gflopsWithFma", with);
      std::printf("%-22s %-9s %9d %14.2f %12.2f %6.2f%%\n", deviceName,
                  row.single ? "single" : "double", row.patterns, without, with,
                  (with - without) / without * 100.0);
    }
  }

  std::printf(
      "\npaper (R9 Nano): single 10k 213.02->216.87 (+1.81%%), double 10k "
      "124.14->136.88 (+10.26%%), single 100k 408.63->411.43 (+0.69%%), "
      "double 100k 178.04->199.23 (+11.90%%)\n");
  return 0;
}
