
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clsim/cl_runtime.cpp" "src/clsim/CMakeFiles/bgl_clsim.dir/cl_runtime.cpp.o" "gcc" "src/clsim/CMakeFiles/bgl_clsim.dir/cl_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hal/CMakeFiles/bgl_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bgl_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/bgl_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bgl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
