// Figure 6: application-level MrBayes-style speedups.
//
// Paper setup: MrBayes 3.2.6 on the dual-Xeon system, 4 Metropolis-coupled
// chains; nucleotide dataset (16 taxa, 306,780 unique patterns) and codon
// dataset (15 taxa, 6,080 unique patterns); single and double precision;
// all speedups relative to MrBayes-MPI (native SSE) in double precision.
// Paper shape: every library implementation beats the native baseline;
// codon speedups are much larger than nucleotide (up to 39x on the CPU
// OpenCL-x86 path, 47x on the GPU); single precision adds ~2x for the
// native code and less for the library paths.
//
// Substitutions here (see DESIGN.md): MrBayes -> our mc3 engine; MPI ->
// per-chain evaluators stepped at a generation barrier (run serially so
// the 2-core host measures evaluator cost, not scheduler contention);
// datasets -> simulated with matched taxon counts and scaled-down pattern
// counts; GPU rows -> wall time with the measured likelihood seconds
// replaced by roofline-modeled seconds.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "mc3/mc3.h"
#include "perfmodel/device_profiles.h"
#include "phylo/seqsim.h"

namespace {

using namespace bgl;

struct Workload {
  const char* name;
  PatternSet data;
  std::unique_ptr<SubstitutionModel> model;
  int generations;
  int chains;
};

Workload makeNucleotideWorkload() {
  Workload w;
  w.name = "nucleotide (16 taxa, scaled from 306,780 patterns)";
  Rng rng(1001);
  auto tree = phylo::Tree::random(16, rng, 0.08);
  w.model = std::make_unique<HKY85Model>(
      2.5, std::vector<double>{0.3, 0.25, 0.2, 0.25});
  w.data = phylo::simulatePatterns(tree, *w.model, 6000, rng);
  w.generations = 30;
  w.chains = 4;
  return w;
}

Workload makeCodonWorkload() {
  Workload w;
  w.name = "codon (15 taxa, scaled from 6,080 patterns)";
  Rng rng(1002);
  auto tree = phylo::Tree::random(15, rng, 0.06);
  w.model = std::make_unique<GY94CodonModel>(GY94CodonModel::equalFrequencies(2.0, 0.3));
  w.data = phylo::simulatePatterns(tree, *w.model, 3000, rng);
  w.generations = 6;
  w.chains = 2;
  return w;
}

struct RowSpec {
  const char* label;
  bool native;      // native evaluator (the MrBayes stand-in)
  long flags;       // library flags for BglEvaluator rows
  int resource;
  bool modeled;     // substitute modeled likelihood seconds
};

double runSeconds(const Workload& w, const RowSpec& row, bool singlePrecision) {
  mc3::Mc3Options opts;
  opts.chains = w.chains;
  opts.generations = w.generations;
  opts.swapInterval = 5;
  opts.seed = 99;
  opts.parallelChains = false;  // isolate evaluator cost on this 2-core host

  mc3::EvaluatorFactory factory;
  if (row.native) {
    factory = mc3::makeNativeFactory(singlePrecision);
  } else {
    phylo::LikelihoodOptions lo;
    lo.categories = 4;
    lo.useScaling = w.model->states() > 4;
    lo.requirementFlags =
        row.flags | (singlePrecision ? BGL_FLAG_PRECISION_SINGLE
                                     : BGL_FLAG_PRECISION_DOUBLE);
    lo.resources = {row.resource};
    factory = mc3::makeBglFactory(lo);
  }

  mc3::Mc3Sampler sampler(w.data, *w.model, opts, factory);
  const auto result = sampler.run();
  double seconds = result.seconds;
  if (row.modeled) {
    seconds = result.seconds - result.likelihoodMeasuredSeconds +
              result.likelihoodModeledSeconds;
  }
  return seconds;
}

}  // namespace

int main() {
  bench::printHeader("Figure 6: application-level (MrBayes-style) speedups",
                     "Ayres & Cummings 2017, Fig. 6 (Section VIII-C)");
  bench::printNote(
      "MC3 Bayesian engine, per-chain evaluators; speedups relative to the "
      "native (MrBayes-stand-in) double-precision baseline; scaled-down "
      "synthetic datasets (see DESIGN.md)");

  const RowSpec rows[] = {
      {"native SSE-class (MrBayes-MPI stand-in)", true, 0, 0, false},
      {"C++ threads: Host CPU (measured)", false, BGL_FLAG_THREADING_THREAD_POOL,
       0, false},
      {"OpenCL-x86: Host CPU (measured)", false,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE, 0, false},
      {"OpenCL-x86: 2x E5-2680v4 (modeled)", false,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE, perf::kDualXeonE5,
       true},
      {"C++ threads-class: Xeon Phi 7210 (modeled)", false,
       BGL_FLAG_FRAMEWORK_OPENCL | BGL_FLAG_KERNEL_X86_STYLE, perf::kXeonPhi7210,
       true},
      {"OpenCL-GPU: AMD FirePro S9170 (modeled)", false, BGL_FLAG_FRAMEWORK_OPENCL,
       perf::kFireProS9170, true},
  };

  bench::JsonReport report(
      "fig6", "Figure 6: application-level (MrBayes-style) speedups",
      "Ayres & Cummings 2017, Fig. 6 (Section VIII-C)");
  for (auto makeWorkload : {makeNucleotideWorkload, makeCodonWorkload}) {
    const Workload w = makeWorkload();
    std::printf("\n--- %s: %d unique patterns, %d chains, %d generations ---\n",
                w.name, w.data.patterns, w.chains, w.generations);

    const double baseline = runSeconds(w, rows[0], /*singlePrecision=*/false);
    std::printf("%-46s %10s %10s %10s %10s\n", "implementation", "dbl (s)",
                "dbl spdup", "sgl (s)", "sgl spdup");
    for (const RowSpec& row : rows) {
      std::fflush(stdout);
      const double dbl =
          (&row == rows) ? baseline : runSeconds(w, row, /*singlePrecision=*/false);
      const double sgl = runSeconds(w, row, /*singlePrecision=*/true);
      std::printf("%-46s %10.2f %9.2fx %10.2f %9.2fx\n", row.label, dbl,
                  baseline / dbl, sgl, baseline / sgl);
      report.row()
          .field("workload", w.name)
          .field("implementation", row.label)
          .field("doubleSeconds", dbl)
          .field("doubleSpeedup", baseline / dbl)
          .field("singleSeconds", sgl)
          .field("singleSpeedup", baseline / sgl);
    }
  }

  std::printf(
      "\npaper (relative to MrBayes-MPI double): nucleotide up to ~8x "
      "(OpenCL-GPU), CPU paths ~5x; codon up to 47x (GPU) / 39x "
      "(OpenCL-x86 on dual Xeon) / 27x (C++ threads); Xeon Phi modest "
      "(1.7-5.5x); single precision roughly doubles the native baseline\n");
  return 0;
}
