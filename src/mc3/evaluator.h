// Likelihood evaluators for the MC3 engine.
//
// Two families, mirroring the paper's Fig. 6 application benchmark:
//  * NativeEvaluator — a from-scratch in-process likelihood computation
//    independent of the library API, standing in for MrBayes' built-in
//    (MPI + SSE) implementation: one evaluator per chain, no shared state.
//  * BglEvaluator — the library-backed path, configured by flags to select
//    any implementation (threaded CPU, OpenCL-x86, OpenCL-GPU, CUDA, ...).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "api/bgl.h"
#include "core/model.h"
#include "core/patterns.h"
#include "phylo/likelihood.h"
#include "phylo/tree.h"

namespace bgl::mc3 {

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual double logLikelihood(const phylo::Tree& tree) = 0;
  virtual std::string name() const = 0;
  /// Accumulated (measured, modeled) likelihood seconds, if tracked.
  virtual bool timeline(double* measured, double* modeled) {
    (void)measured;
    (void)modeled;
    return false;
  }
  /// Zero the timeline (called by the sampler before timed runs).
  virtual void resetTimeline() {}
};

using EvaluatorFactory = std::function<std::unique_ptr<Evaluator>(
    const PatternSet&, const SubstitutionModel&)>;

/// Library-backed evaluator.
class BglEvaluator final : public Evaluator {
 public:
  BglEvaluator(const PatternSet& data, const SubstitutionModel& model,
               const phylo::LikelihoodOptions& options);
  double logLikelihood(const phylo::Tree& tree) override;
  std::string name() const override;
  bool timeline(double* measured, double* modeled) override;
  void resetTimeline() override;

 private:
  std::unique_ptr<phylo::TreeLikelihood> like_;
};

/// Factory helper for BglEvaluator with fixed options.
EvaluatorFactory makeBglFactory(phylo::LikelihoodOptions options);

/// Like makeBglFactory, but the resource is chosen by the scheduler: the
/// fastest among `options.resources` (or all resources when empty) by
/// calibrated throughput — the --auto-resource path. `benchmark` false
/// ranks by perf-model estimates instead of running calibrations.
EvaluatorFactory makeAutoBglFactory(phylo::LikelihoodOptions options,
                                    bool benchmark = true);

/// Self-contained native evaluator (no library): scalar loops with
/// per-node rescaling, templated on precision. Stands in for the MrBayes
/// built-in SSE implementation as the application baseline.
template <typename Real>
class NativeEvaluator final : public Evaluator {
 public:
  NativeEvaluator(const PatternSet& data, const SubstitutionModel& model,
                  int categories = 4, double alpha = 0.5);
  ~NativeEvaluator() override;
  double logLikelihood(const phylo::Tree& tree) override;
  std::string name() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

EvaluatorFactory makeNativeFactory(bool singlePrecision, int categories = 4);

}  // namespace bgl::mc3
