file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_devices.dir/heterogeneous_devices.cpp.o"
  "CMakeFiles/heterogeneous_devices.dir/heterogeneous_devices.cpp.o.d"
  "heterogeneous_devices"
  "heterogeneous_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
