#include "cpu/simd_kernels.h"

namespace bgl::cpu {

bool cpuSupportsSse2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool cpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace bgl::cpu
