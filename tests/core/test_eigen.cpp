#include "core/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "core/rng.h"
#include "core/transition.h"

namespace bgl {
namespace {

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  const double m[9] = {3, 0, 0, 0, -1, 0, 0, 0, 7};
  std::vector<double> eval, evec;
  jacobiEigenSymmetric(m, 3, eval, evec);
  std::vector<double> sorted = eval;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[0], -1.0, 1e-12);
  EXPECT_NEAR(sorted[1], 3.0, 1e-12);
  EXPECT_NEAR(sorted[2], 7.0, 1e-12);
}

TEST(JacobiEigen, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const double m[4] = {2, 1, 1, 2};
  std::vector<double> eval, evec;
  jacobiEigenSymmetric(m, 2, eval, evec);
  std::sort(eval.begin(), eval.end());
  EXPECT_NEAR(eval[0], 1.0, 1e-12);
  EXPECT_NEAR(eval[1], 3.0, 1e-12);
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  Rng rng(11);
  const int n = 8;
  std::vector<double> m(n * n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.uniform(-1.0, 1.0);
    }
  }
  std::vector<double> eval, v;
  jacobiEigenSymmetric(m.data(), n, eval, v);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += v[i * n + a] * v[i * n + b];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(JacobiEigen, ReconstructsOriginalMatrix) {
  Rng rng(5);
  const int n = 6;
  std::vector<double> m(n * n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.uniform(-2.0, 2.0);
    }
  }
  std::vector<double> eval, v;
  jacobiEigenSymmetric(m.data(), n, eval, v);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += v[i * n + k] * eval[k] * v[j * n + k];
      EXPECT_NEAR(sum, m[i * n + j], 1e-9);
    }
  }
}

TEST(DecomposeReversible, ReconstructsRateMatrix) {
  std::vector<double> f = {0.1, 0.2, 0.3, 0.4};
  GTRModel model({1.0, 2.0, 0.5, 0.8, 3.0, 1.2}, f);
  const auto q = model.rateMatrix();
  const auto es = decomposeReversible(q.data(), f.data(), 4);
  const auto back = reconstructRateMatrix(es);
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(back[i], q[i], 1e-9) << "entry " << i;
}

TEST(DecomposeReversible, InverseIsActuallyInverse) {
  std::vector<double> f = {0.25, 0.25, 0.25, 0.25};
  JC69Model model;
  const auto es = model.eigenSystem();
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += es.evec[i * n + k] * es.ivec[k * n + j];
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(DecomposeReversible, RejectsNonPositiveFrequencies) {
  const double q[4] = {-1, 1, 1, -1};
  const double f[2] = {1.0, 0.0};
  EXPECT_THROW(decomposeReversible(q, f, 2), Error);
}

TEST(DecomposeReversible, ZeroEigenvalueExists) {
  // Every CTMC generator has eigenvalue 0 (stationarity).
  const auto es = GY94CodonModel::equalFrequencies(2.0, 0.5).eigenSystem();
  double closest = 1e9;
  for (double ev : es.eval) closest = std::min(closest, std::abs(ev));
  EXPECT_LT(closest, 1e-9);
}

TEST(TransitionMatrix, RowsSumToOne) {
  std::vector<double> f = {0.3, 0.25, 0.2, 0.25};
  HKY85Model model(2.0, f);
  const auto es = model.eigenSystem();
  for (double t : {0.0, 0.01, 0.1, 1.0, 10.0}) {
    const auto p = transitionMatrix(es, t);
    for (int i = 0; i < 4; ++i) {
      double rowSum = 0.0;
      for (int j = 0; j < 4; ++j) {
        rowSum += p[i * 4 + j];
        EXPECT_GE(p[i * 4 + j], 0.0);
        EXPECT_LE(p[i * 4 + j], 1.0 + 1e-12);
      }
      EXPECT_NEAR(rowSum, 1.0, 1e-10) << "t=" << t << " row " << i;
    }
  }
}

TEST(TransitionMatrix, IdentityAtZero) {
  const auto es = JC69Model().eigenSystem();
  const auto p = transitionMatrix(es, 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[i * 4 + j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(TransitionMatrix, ConvergesToStationaryDistribution) {
  std::vector<double> f = {0.4, 0.3, 0.2, 0.1};
  HKY85Model model(3.0, f);
  const auto p = transitionMatrix(model.eigenSystem(), 100.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[i * 4 + j], f[j], 1e-8);
    }
  }
}

TEST(TransitionMatrix, ChapmanKolmogorov) {
  // P(t1 + t2) == P(t1) * P(t2).
  std::vector<double> f = {0.3, 0.25, 0.2, 0.25};
  GTRModel model({1.5, 2.0, 0.7, 1.1, 4.0, 1.0}, f);
  const auto es = model.eigenSystem();
  const auto p1 = transitionMatrix(es, 0.13);
  const auto p2 = transitionMatrix(es, 0.29);
  const auto p12 = transitionMatrix(es, 0.42);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) sum += p1[i * 4 + k] * p2[k * 4 + j];
      EXPECT_NEAR(sum, p12[i * 4 + j], 1e-10);
    }
  }
}

TEST(TransitionMatrix, DetailedBalance) {
  // pi_i P_ij == pi_j P_ji for reversible models.
  std::vector<double> f = {0.35, 0.15, 0.3, 0.2};
  HKY85Model model(4.0, f);
  const auto p = transitionMatrix(model.eigenSystem(), 0.2);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(f[i] * p[i * 4 + j], f[j] * p[j * 4 + i], 1e-10);
    }
  }
}

TEST(TransitionMatrix, JukesCantorClosedForm) {
  // JC69 has the closed form P_ii = 1/4 + 3/4 e^{-4t/3}.
  const auto es = JC69Model().eigenSystem();
  for (double t : {0.05, 0.2, 0.7}) {
    const auto p = transitionMatrix(es, t);
    const double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
    const double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(p[i * 4 + j], i == j ? same : diff, 1e-10) << "t=" << t;
      }
    }
  }
}

TEST(TransitionMatrix, CodonModelRowsSumToOne) {
  const auto es = GY94CodonModel::equalFrequencies(2.5, 0.3).eigenSystem();
  const auto p = transitionMatrix(es, 0.4);
  for (int i = 0; i < kCodonStates; ++i) {
    double rowSum = 0.0;
    for (int j = 0; j < kCodonStates; ++j) rowSum += p[i * kCodonStates + j];
    EXPECT_NEAR(rowSum, 1.0, 1e-8);
  }
}

}  // namespace
}  // namespace bgl
