# Empty compiler generated dependencies file for bgl_clsim.
# This may be replaced when dependencies are built.
