file(REMOVE_RECURSE
  "CMakeFiles/bgl_api.dir/c_api.cpp.o"
  "CMakeFiles/bgl_api.dir/c_api.cpp.o.d"
  "CMakeFiles/bgl_api.dir/plugin.cpp.o"
  "CMakeFiles/bgl_api.dir/plugin.cpp.o.d"
  "CMakeFiles/bgl_api.dir/registry.cpp.o"
  "CMakeFiles/bgl_api.dir/registry.cpp.o.d"
  "libbgl_api.a"
  "libbgl_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
