file(REMOVE_RECURSE
  "libbgl_hal.a"
)
