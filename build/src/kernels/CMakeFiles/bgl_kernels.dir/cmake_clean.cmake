file(REMOVE_RECURSE
  "CMakeFiles/bgl_kernels.dir/registry.cpp.o"
  "CMakeFiles/bgl_kernels.dir/registry.cpp.o.d"
  "libbgl_kernels.a"
  "libbgl_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
