// Cross-implementation error-path parity: the same invalid call must
// produce the same structured return code on every implementation — the
// serial CPU baseline, the vectorized and threaded variants, and both
// simulated accelerator runtimes. Client error handling written against
// one backend must keep working on all of them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/bgl.h"

namespace {

struct Config {
  const char* name;
  long requirementFlags;
};

class ErrorParity : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const int resource = 0;
    instance_ = bglCreateInstance(
        /*tips=*/4, /*partials=*/3, /*compact=*/4, /*states=*/4,
        /*patterns=*/16, /*eigen=*/1, /*matrices=*/6, /*categories=*/2,
        /*scale=*/0, &resource, 1, 0,
        GetParam().requirementFlags | BGL_FLAG_PRECISION_DOUBLE, nullptr);
    if (instance_ < 0) {
      GTEST_SKIP() << GetParam().name << " not available on this host (code "
                   << instance_ << ")";
    }
  }
  void TearDown() override {
    if (instance_ >= 0) bglFinalizeInstance(instance_);
  }
  int instance_ = -1;
};

TEST_P(ErrorParity, InvalidIndicesAreOutOfRange) {
  std::vector<int> states(16, 0);
  EXPECT_EQ(bglSetTipStates(instance_, 99, states.data()),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetTipStates(instance_, -1, states.data()),
            BGL_ERROR_OUT_OF_RANGE);
  std::vector<double> freqs(4, 0.25);
  EXPECT_EQ(bglSetStateFrequencies(instance_, 7, freqs.data()),
            BGL_ERROR_OUT_OF_RANGE);
  std::vector<double> matrix(2 * 16, 0.0);
  EXPECT_EQ(bglSetTransitionMatrix(instance_, 42, matrix.data(), 1.0),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetTransitionMatrix(instance_, 42, matrix.data()),
            BGL_ERROR_OUT_OF_RANGE);
  std::vector<double> partials(2 * 16 * 4, 0.0);
  EXPECT_EQ(bglSetPartials(instance_, 99, partials.data()),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetPartials(instance_, 99, partials.data()),
            BGL_ERROR_OUT_OF_RANGE);
}

TEST_P(ErrorParity, NullPointersAreOutOfRange) {
  EXPECT_EQ(bglSetTipStates(instance_, 0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetPartials(instance_, 0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetCategoryRates(instance_, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetPatternWeights(instance_, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglUpdatePartials(instance_, nullptr, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetSiteLogLikelihoods(instance_, nullptr),
            BGL_ERROR_OUT_OF_RANGE);
}

TEST_P(ErrorParity, BadEigenIndexIsOutOfRange) {
  const int index = 1;
  const double length = 0.1;
  EXPECT_EQ(bglUpdateTransitionMatrices(instance_, /*eigenIndex=*/5, &index,
                                        nullptr, nullptr, &length, 1),
            BGL_ERROR_OUT_OF_RANGE);
}

TEST_P(ErrorParity, UnknownInstanceIdsAreOutOfRange) {
  double buf[64] = {};
  EXPECT_EQ(bglSetCategoryRates(123456, buf), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglWaitForComputation(-2), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("instance"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Implementations, ErrorParity,
    ::testing::Values(
        Config{"cpu_serial", BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_NONE |
                                 BGL_FLAG_VECTOR_NONE},
        Config{"cpu_sse", BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_VECTOR_SSE},
        Config{"cpu_avx", BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_VECTOR_AVX},
        Config{"cpu_pool",
               BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_THREADING_THREAD_POOL},
        Config{"cudasim", BGL_FLAG_FRAMEWORK_CUDA},
        Config{"clsim", BGL_FLAG_FRAMEWORK_OPENCL}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return std::string(info.param.name);
    });

}  // namespace
