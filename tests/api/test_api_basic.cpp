// C API surface: resource enumeration, instance lifecycle, argument
// validation, and implementation selection by flags.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "api/bgl.h"
#include "perfmodel/device_profiles.h"

namespace {

int makeSmallInstance(long pref = 0, long req = 0, BglInstanceDetails* info = nullptr,
                      const int* resources = nullptr, int resourceCount = 0) {
  return bglCreateInstance(/*tips=*/4, /*partials=*/3, /*compact=*/4, /*states=*/4,
                           /*patterns=*/16, /*eigen=*/1, /*matrices=*/6,
                           /*categories=*/2, /*scale=*/0, resources, resourceCount,
                           pref, req, info);
}

TEST(CApi, VersionAndCitation) {
  EXPECT_STREQ(bglGetVersion(), "1.0.0");
  EXPECT_NE(std::string(bglGetCitation()).find("BEAGLE"), std::string::npos);
}

TEST(CApi, ResourceListMatchesDeviceRegistry) {
  BglResourceList* list = bglGetResourceList();
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->length,
            static_cast<int>(bgl::perf::deviceRegistry().size()));
  EXPECT_STREQ(list->list[0].name, "Host CPU");
  for (int i = 0; i < list->length; ++i) {
    EXPECT_NE(list->list[i].supportFlags, 0) << list->list[i].name;
  }
}

TEST(CApi, HostResourceSupportsCpuAndBothFrameworks) {
  const long flags = bglGetResourceList()->list[0].supportFlags;
  EXPECT_TRUE(flags & BGL_FLAG_FRAMEWORK_CPU);
  EXPECT_TRUE(flags & BGL_FLAG_FRAMEWORK_CUDA);
  EXPECT_TRUE(flags & BGL_FLAG_FRAMEWORK_OPENCL);
  EXPECT_TRUE(flags & BGL_FLAG_PRECISION_SINGLE);
  EXPECT_TRUE(flags & BGL_FLAG_PRECISION_DOUBLE);
}

TEST(CApi, GpuResourceNotServedByCpuImplementations) {
  const long flags =
      bglGetResourceList()->list[bgl::perf::kRadeonR9Nano].supportFlags;
  EXPECT_FALSE(flags & BGL_FLAG_FRAMEWORK_CPU);
  EXPECT_TRUE(flags & BGL_FLAG_FRAMEWORK_OPENCL);
  EXPECT_FALSE(flags & BGL_FLAG_FRAMEWORK_CUDA);  // AMD device
}

TEST(CApi, CreateAndFinalizeInstance) {
  BglInstanceDetails info{};
  const int inst = makeSmallInstance(0, 0, &info);
  ASSERT_GE(inst, 0);
  EXPECT_NE(info.implName, nullptr);
  EXPECT_NE(info.resourceName, nullptr);
  EXPECT_EQ(bglFinalizeInstance(inst), BGL_SUCCESS);
  EXPECT_EQ(bglFinalizeInstance(inst), BGL_ERROR_OUT_OF_RANGE);  // double free
}

TEST(CApi, InstanceIdsAreRecycled) {
  const int a = makeSmallInstance();
  ASSERT_GE(a, 0);
  bglFinalizeInstance(a);
  const int b = makeSmallInstance();
  EXPECT_EQ(a, b);
  bglFinalizeInstance(b);
}

TEST(CApi, RejectsInvalidCreateArguments) {
  EXPECT_EQ(bglCreateInstance(-1, 3, 4, 4, 16, 1, 6, 2, 0, nullptr, 0, 0, 0, nullptr),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglCreateInstance(4, 3, 4, 1, 16, 1, 6, 2, 0, nullptr, 0, 0, 0, nullptr),
            BGL_ERROR_OUT_OF_RANGE);  // states < 2
  EXPECT_EQ(bglCreateInstance(4, 3, 4, 4, 0, 1, 6, 2, 0, nullptr, 0, 0, 0, nullptr),
            BGL_ERROR_OUT_OF_RANGE);  // no patterns
  EXPECT_EQ(bglCreateInstance(8, 3, 4, 4, 16, 1, 6, 2, 0, nullptr, 0, 0, 0, nullptr),
            BGL_ERROR_OUT_OF_RANGE);  // buffers < tips
}

TEST(CApi, InvalidResourceIdRejected) {
  const int bad = 999;
  EXPECT_EQ(makeSmallInstance(0, 0, nullptr, &bad, 1), BGL_ERROR_OUT_OF_RANGE);
}

TEST(CApi, UnsatisfiableRequirementsRejected) {
  // SSE is double-precision only in this library (as in the paper).
  const int rc = makeSmallInstance(
      0, BGL_FLAG_VECTOR_SSE | BGL_FLAG_PRECISION_SINGLE | BGL_FLAG_THREADING_NONE);
  EXPECT_EQ(rc, BGL_ERROR_NO_IMPLEMENTATION);
}

TEST(CApi, OperationsOnUnknownInstanceFail) {
  double buf[64] = {};
  EXPECT_EQ(bglSetCategoryRates(12345, buf), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglGetSiteLogLikelihoods(-1, buf), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglWaitForComputation(9999), BGL_ERROR_OUT_OF_RANGE);
}

TEST(CApi, NullPointersRejected) {
  const int inst = makeSmallInstance();
  ASSERT_GE(inst, 0);
  EXPECT_EQ(bglSetTipStates(inst, 0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetPartials(inst, 0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglUpdatePartials(inst, nullptr, 1, BGL_OP_NONE), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(inst);
}

TEST(CApi, IndexValidationOnBuffers) {
  const int inst = makeSmallInstance();
  ASSERT_GE(inst, 0);
  std::vector<int> states(16, 0);
  EXPECT_EQ(bglSetTipStates(inst, 7, states.data()), BGL_ERROR_OUT_OF_RANGE);
  std::vector<double> freqs(4, 0.25);
  EXPECT_EQ(bglSetStateFrequencies(inst, 3, freqs.data()), BGL_ERROR_OUT_OF_RANGE);
  std::vector<double> m(2 * 16, 0.0);
  EXPECT_EQ(bglSetTransitionMatrix(inst, 17, m.data(), 1.0), BGL_ERROR_OUT_OF_RANGE);
  double out[1024];
  EXPECT_EQ(bglGetPartials(inst, 99, out), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(inst);
}

TEST(CApi, UpdatePartialsValidatesOperations) {
  const int inst = makeSmallInstance();
  ASSERT_GE(inst, 0);
  std::vector<int> states(16, 1);
  for (int t = 0; t < 4; ++t) bglSetTipStates(inst, t, states.data());

  BglOperation op{};
  op.destinationPartials = 2;  // a tip: invalid destination
  op.destinationScaleWrite = BGL_OP_NONE;
  op.destinationScaleRead = BGL_OP_NONE;
  op.child1Partials = 0;
  op.child1TransitionMatrix = 0;
  op.child2Partials = 1;
  op.child2TransitionMatrix = 1;
  EXPECT_EQ(bglUpdatePartials(inst, &op, 1, BGL_OP_NONE), BGL_ERROR_OUT_OF_RANGE);

  op.destinationPartials = 4;
  op.child1TransitionMatrix = 42;  // matrix out of range
  EXPECT_EQ(bglUpdatePartials(inst, &op, 1, BGL_OP_NONE), BGL_ERROR_OUT_OF_RANGE);

  op.child1TransitionMatrix = 0;
  op.child1Partials = 5;  // uninitialized internal buffer as child
  EXPECT_EQ(bglUpdatePartials(inst, &op, 1, BGL_OP_NONE), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(inst);
}

TEST(CApi, ScalingIndicesValidated) {
  const int inst = bglCreateInstance(4, 3, 4, 4, 16, 1, 6, 2, /*scale=*/2, nullptr, 0,
                                     0, 0, nullptr);
  ASSERT_GE(inst, 0);
  const int good = 0;
  EXPECT_EQ(bglResetScaleFactors(inst, 1), BGL_SUCCESS);
  EXPECT_EQ(bglResetScaleFactors(inst, 5), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglAccumulateScaleFactors(inst, &good, 1, 9), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(inst);
}

TEST(CApi, FlagSelectionRoutesToRequestedImplementation) {
  struct Case {
    long req;
    const char* expectSubstring;
  };
  const Case cases[] = {
      {BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE, "CPU-serial"},
      {BGL_FLAG_THREADING_FUTURES, "futures"},
      {BGL_FLAG_THREADING_THREAD_CREATE, "create"},
      {BGL_FLAG_THREADING_THREAD_POOL | BGL_FLAG_VECTOR_NONE, "pool"},
      {BGL_FLAG_FRAMEWORK_CUDA, "CUDA"},
      {BGL_FLAG_FRAMEWORK_OPENCL, "OpenCL"},
  };
  for (const auto& c : cases) {
    BglInstanceDetails info{};
    const int host = 0;
    const int inst = makeSmallInstance(0, c.req, &info, &host, 1);
    ASSERT_GE(inst, 0) << c.expectSubstring;
    EXPECT_NE(std::string(info.implName).find(c.expectSubstring), std::string::npos)
        << "got " << info.implName;
    bglFinalizeInstance(inst);
  }
}

TEST(CApi, PreferenceFlagsAreSoft) {
  // Preferring SSE with a codon model silently falls back (codon has no
  // vector kernels), while requiring it fails.
  BglInstanceDetails info{};
  const int inst =
      bglCreateInstance(4, 3, 4, 61, 16, 1, 6, 1, 0, nullptr, 0,
                        /*pref=*/BGL_FLAG_VECTOR_SSE, /*req=*/0, &info);
  ASSERT_GE(inst, 0);
  bglFinalizeInstance(inst);
}

TEST(CApi, ThreadCountControl) {
  const int host = 0;
  const int inst = makeSmallInstance(0, BGL_FLAG_THREADING_THREAD_POOL, nullptr,
                                     &host, 1);
  ASSERT_GE(inst, 0);
  EXPECT_EQ(bglSetThreadCount(inst, 2), BGL_SUCCESS);
  EXPECT_EQ(bglSetThreadCount(inst, 0), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(inst);

  const int serial = makeSmallInstance(0, BGL_FLAG_THREADING_NONE |
                                              BGL_FLAG_VECTOR_NONE);
  ASSERT_GE(serial, 0);
  EXPECT_EQ(bglSetThreadCount(serial, 2), BGL_ERROR_UNIMPLEMENTED);
  bglFinalizeInstance(serial);
}

TEST(CApi, TimelineOnlyOnAcceleratorInstances) {
  BglTimeline t{};
  const int host = 0;
  const int accel = makeSmallInstance(0, BGL_FLAG_FRAMEWORK_OPENCL, nullptr, &host, 1);
  ASSERT_GE(accel, 0);
  EXPECT_EQ(bglGetTimeline(accel, &t), BGL_SUCCESS);
  EXPECT_EQ(bglResetTimeline(accel), BGL_SUCCESS);
  bglFinalizeInstance(accel);

  const int cpu = makeSmallInstance(0, BGL_FLAG_THREADING_NONE);
  ASSERT_GE(cpu, 0);
  EXPECT_EQ(bglGetTimeline(cpu, &t), BGL_ERROR_UNIMPLEMENTED);
  bglFinalizeInstance(cpu);
}

TEST(CApi, SetGetTransitionMatrixRoundTrip) {
  const int inst = makeSmallInstance();
  ASSERT_GE(inst, 0);
  std::vector<double> m(2 * 16);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = 0.01 * static_cast<double>(i);
  ASSERT_EQ(bglSetTransitionMatrix(inst, 3, m.data(), 1.0), BGL_SUCCESS);
  std::vector<double> out(2 * 16, -1.0);
  ASSERT_EQ(bglGetTransitionMatrix(inst, 3, out.data()), BGL_SUCCESS);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(out[i], m[i]);
  bglFinalizeInstance(inst);
}

TEST(CApi, WorkGroupSizeControl) {
  const int host = 0;
  const int accel = makeSmallInstance(0, BGL_FLAG_FRAMEWORK_OPENCL, nullptr, &host, 1);
  ASSERT_GE(accel, 0);
  EXPECT_EQ(bglSetWorkGroupSize(accel, 128), BGL_SUCCESS);
  EXPECT_EQ(bglSetWorkGroupSize(accel, 0), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetWorkGroupSize(accel, 1 << 20), BGL_ERROR_OUT_OF_RANGE);
  bglFinalizeInstance(accel);
}

}  // namespace
