// PR 6 perf smoke: the always-on observability layer (counters, gauges,
// journal, pending-depth sampling) must be effectively free.
//
// Runs the Fig. 4 deep-tree genomictest workload (balanced 384-tip
// nucleotide tree, 32 patterns, 4 rate categories, double precision — the
// launch-overhead-bound regime of Section VIII-A, i.e. the regime where
// per-operation instrumentation overhead is MOST visible) with the obs
// master switch on (production default) and off (every count/gauge/journal
// call site reduces to one relaxed atomic load), alternating rounds and
// taking the best of each mode so scheduler noise cancels.
//
// Gates (non-zero exit on violation):
//  * instrumented runtime <= 3% over uninstrumented, per implementation,
//  * log likelihoods bit-identical between the two modes (instrumentation
//    must never perturb results).
//
// Results land in BENCH_pr6.json (set BGL_BENCH_DIR to redirect).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/genomictest.h"
#include "obs/trace.h"

namespace {

constexpr double kMaxOverhead = 0.03;  // 3%
// One evaluation of this workload is ~0.4 ms, well inside scheduler-jitter
// territory, so a single best-of-7 is noisy to several percent. Alternating
// rounds × many reps gives the minimum hundreds of samples per mode; the
// floor it converges to is stable to well under the 3% gate.
constexpr int kRounds = 7;  // alternating on/off rounds per config

bgl::harness::RunResult runOnce(long flags) {
  bgl::harness::ProblemSpec spec;
  spec.tips = 384;      // deep balanced tree: 383 ops over 9 levels
  spec.patterns = 32;   // launch-bound: per-op overhead dominates
  spec.states = 4;
  spec.categories = 4;
  spec.singlePrecision = false;
  spec.resource = 0;    // host profile: measured wall time
  spec.requirementFlags = flags;
  spec.reps = 50;
  spec.warmupReps = 5;
  return bgl::harness::runThroughput(spec);
}

struct Config {
  const char* label;
  long flags;
};

}  // namespace

int main() {
  using namespace bgl;
  bench::printHeader(
      "PR 6 perf smoke: observability overhead gate",
      "Ayres & Cummings 2017, Fig. 4 workload (Section VIII-A)");
  bench::printNote(
      "384 tips, 32 patterns, 4 states, 4 categories, double precision; "
      "obs on = counters+gauges+journal live, obs off = master switch "
      "(one relaxed load per site); gate: on <= 1.03x off, logL bit-equal");

  bench::JsonReport report("pr6",
                           "PR 6 perf smoke: observability overhead gate",
                           "Ayres & Cummings 2017, Fig. 4 workload");
  report.note("overhead = onSeconds / offSeconds - 1, best of " +
              std::to_string(kRounds) +
              " alternating rounds per mode; gate: overhead <= 3% and "
              "bit-identical log likelihoods");

  // The serial path measures pure counter overhead; the streamed CUDA path
  // additionally exercises the enqueue-time gauge sampling and flow-id
  // allocation added by the causal tracer.
  const std::vector<Config> configs = {
      {"cpu-serial", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE},
      {"cuda-async", BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_COMPUTATION_ASYNCH},
  };

  int failures = 0;
  std::printf("\n%-12s %12s %12s %10s %8s\n", "impl", "off(s)", "on(s)",
              "overhead", "bitEq");
  try {
    for (const auto& config : configs) {
      double bestOff = 0.0, bestOn = 0.0;
      double logLOff = 0.0, logLOn = 0.0;
      for (int round = 0; round < kRounds; ++round) {
        obs::setEnabled(false);
        const auto off = runOnce(config.flags);
        obs::setEnabled(true);
        const auto on = runOnce(config.flags);
        if (round == 0 || off.seconds < bestOff) bestOff = off.seconds;
        if (round == 0 || on.seconds < bestOn) bestOn = on.seconds;
        logLOff = off.logL;
        logLOn = on.logL;
      }
      const double overhead = bestOn / bestOff - 1.0;
      const bool bitEq = logLOff == logLOn;
      std::printf("%-12s %12.6f %12.6f %9.2f%% %8s\n", config.label, bestOff,
                  bestOn, overhead * 100.0, bitEq ? "yes" : "NO");
      report.row()
          .field("implementation", config.label)
          .field("offSeconds", bestOff)
          .field("onSeconds", bestOn)
          .field("overhead", overhead)
          .field("logL", logLOn)
          .field("bitIdentical", bitEq ? 1 : 0);

      if (!bitEq) {
        std::fprintf(stderr,
                     "FAIL %s: instrumented logL %.17g != uninstrumented "
                     "%.17g\n",
                     config.label, logLOn, logLOff);
        ++failures;
      }
      if (overhead > kMaxOverhead) {
        std::fprintf(stderr,
                     "FAIL %s: observability overhead %.2f%% exceeds the "
                     "%.0f%% budget\n",
                     config.label, overhead * 100.0, kMaxOverhead * 100.0);
        ++failures;
      }
    }
  } catch (const std::exception& e) {
    obs::setEnabled(true);
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    return 1;
  }
  obs::setEnabled(true);

  if (failures > 0) {
    std::fprintf(stderr, "perf smoke failed: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("perf smoke passed: observability overhead <= %.0f%% on every "
              "implementation, results bit-identical\n",
              kMaxOverhead * 100.0);
  return 0;
}
