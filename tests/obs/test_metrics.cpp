// Process-wide metrics registry (src/obs/metrics.*): log2-histogram
// quantile estimation at bucket boundaries, bglGetProcessStatistics parity
// against the sum of per-instance bglGetStatistics across every
// implementation family, the background JSON-lines metrics service, and the
// abnormal-teardown guarantee that an error flushes the instance stats file
// (journal included) before anyone calls bglFinalizeInstance.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/bgl.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "perfmodel/device_profiles.h"
#include "phylo/likelihood.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

// ---------------------------------------------------------------- quantiles

TEST(ObsHistogramQuantile, EmptyHistogramIsZero) {
  obs::DurationHistogram h;
  EXPECT_EQ(obs::histogramQuantile(h, 0.0), 0.0);
  EXPECT_EQ(obs::histogramQuantile(h, 0.5), 0.0);
  EXPECT_EQ(obs::histogramQuantile(h, 1.0), 0.0);
}

TEST(ObsHistogramQuantile, SingleValueClampsEveryQuantile) {
  obs::DurationHistogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  // All mass in one bucket with min == max == 100: interpolation inside the
  // [64, 128) bucket must clamp to the observed extremes at every q.
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, q), 100.0) << "q=" << q;
  }
}

TEST(ObsHistogramQuantile, ZeroDurationLandsInBucketZero) {
  obs::DurationHistogram h;
  h.record(0);
  h.record(1);  // bucket 0 spans [0, 2)
  EXPECT_GE(obs::histogramQuantile(h, 0.5), 0.0);
  EXPECT_LE(obs::histogramQuantile(h, 0.5), 1.0);  // clamped to max
  EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, 1.0), 1.0);
}

TEST(ObsHistogramQuantile, BimodalBucketBoundaries) {
  obs::DurationHistogram h;
  // 100 samples at 2 ns (bucket 1: [2, 4)) and 100 at 1024 ns (bucket 10:
  // [1024, 2048)).
  for (int i = 0; i < 100; ++i) h.record(2);
  for (int i = 0; i < 100; ++i) h.record(1024);
  const double p25 = obs::histogramQuantile(h, 0.25);
  const double p50 = obs::histogramQuantile(h, 0.50);
  const double p95 = obs::histogramQuantile(h, 0.95);
  // Low quantiles interpolate inside the low bucket...
  EXPECT_GE(p25, 2.0);
  EXPECT_LT(p25, 4.0);
  // ...high quantiles land in the high bucket, clamped to the observed max.
  EXPECT_DOUBLE_EQ(p95, 1024.0);
  // Monotone in q.
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p95);
}

TEST(ObsHistogramQuantile, MergePreservesCountsAndExtremes) {
  obs::DurationHistogram a, b;
  for (int i = 0; i < 50; ++i) a.record(8);
  for (int i = 0; i < 50; ++i) b.record(4096);
  a.merge(b);
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.minNs, 8u);
  EXPECT_EQ(a.maxNs, 4096u);
  EXPECT_EQ(a.totalNs, 50u * 8 + 50u * 4096);
  EXPECT_DOUBLE_EQ(obs::histogramQuantile(a, 0.99), 4096.0);
  EXPECT_GE(obs::histogramQuantile(a, 0.25), 8.0);
  EXPECT_LT(obs::histogramQuantile(a, 0.25), 16.0);
}

// ----------------------------------------------- process-statistics parity

struct FamilyConfig {
  const char* label;
  long requirementFlags;
  int resource;
};

// One instance per implementation family, same roster the counter suite
// exercises: serial, SSE, futures, thread-create, thread-pool, CUDA, OpenCL.
const FamilyConfig kFamilies[] = {
    {"serial", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE, perf::kHostCpu},
    {"sse", BGL_FLAG_VECTOR_SSE | BGL_FLAG_THREADING_NONE, perf::kHostCpu},
    {"futures", BGL_FLAG_THREADING_FUTURES, perf::kHostCpu},
    {"thread_create", BGL_FLAG_THREADING_THREAD_CREATE, perf::kHostCpu},
    {"thread_pool", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu},
    {"cuda_host", BGL_FLAG_FRAMEWORK_CUDA, perf::kHostCpu},
    {"opencl_p5000", BGL_FLAG_FRAMEWORK_OPENCL, perf::kQuadroP5000},
};

TEST(ObsProcessStatistics, AggregateMatchesSumOfInstancesAcrossFamilies) {
  // The registry is process-wide (it has seen every instance this binary
  // created), so everything is measured as a delta from a baseline.
  BglProcessStatistics base{};
  ASSERT_EQ(bglGetProcessStatistics(&base), BGL_SUCCESS);

  auto problem = test::makeNucleotideProblem(/*taxa=*/8, /*sites=*/40, 811);
  std::vector<std::unique_ptr<phylo::TreeLikelihood>> likes;
  for (const FamilyConfig& family : kFamilies) {
    phylo::LikelihoodOptions opts;
    opts.categories = 2;
    opts.requirementFlags = family.requirementFlags;
    opts.resources = {family.resource};
    likes.push_back(std::make_unique<phylo::TreeLikelihood>(
        problem.tree, *problem.model, problem.data, opts));
  }
  for (auto& like : likes) {
    like->logLikelihood();
    like->logLikelihood();
  }

  BglStatistics sum{};
  for (auto& like : likes) {
    BglStatistics s{};
    ASSERT_EQ(bglGetStatistics(like->instance(), &s), BGL_SUCCESS);
    sum.partialsOperations += s.partialsOperations;
    sum.transitionMatrices += s.transitionMatrices;
    sum.rootEvaluations += s.rootEvaluations;
    sum.edgeEvaluations += s.edgeEvaluations;
    sum.rescaleEvents += s.rescaleEvents;
    sum.scaleAccumulations += s.scaleAccumulations;
    sum.kernelLaunches += s.kernelLaunches;
    sum.bytesCopiedIn += s.bytesCopiedIn;
    sum.bytesCopiedOut += s.bytesCopiedOut;
    sum.streamedLaunches += s.streamedLaunches;
    sum.updatePartialsSeconds += s.updatePartialsSeconds;
  }
  EXPECT_GT(sum.partialsOperations, 0u);
  EXPECT_GT(sum.kernelLaunches, 0u);  // the two accelerator families

  BglProcessStatistics now{};
  ASSERT_EQ(bglGetProcessStatistics(&now), BGL_SUCCESS);
  EXPECT_EQ(now.liveInstances - base.liveInstances,
            static_cast<int>(std::size(kFamilies)));
  EXPECT_EQ(now.instancesCreated - base.instancesCreated, std::size(kFamilies));
  EXPECT_EQ(now.instancesRetired, base.instancesRetired);

  const auto delta = [&](auto field) {
    return now.totals.*field - base.totals.*field;
  };
  EXPECT_EQ(delta(&BglStatistics::partialsOperations), sum.partialsOperations);
  EXPECT_EQ(delta(&BglStatistics::transitionMatrices), sum.transitionMatrices);
  EXPECT_EQ(delta(&BglStatistics::rootEvaluations), sum.rootEvaluations);
  EXPECT_EQ(delta(&BglStatistics::edgeEvaluations), sum.edgeEvaluations);
  EXPECT_EQ(delta(&BglStatistics::rescaleEvents), sum.rescaleEvents);
  EXPECT_EQ(delta(&BglStatistics::scaleAccumulations), sum.scaleAccumulations);
  EXPECT_EQ(delta(&BglStatistics::kernelLaunches), sum.kernelLaunches);
  EXPECT_EQ(delta(&BglStatistics::bytesCopiedIn), sum.bytesCopiedIn);
  EXPECT_EQ(delta(&BglStatistics::bytesCopiedOut), sum.bytesCopiedOut);
  EXPECT_EQ(delta(&BglStatistics::streamedLaunches), sum.streamedLaunches);
  EXPECT_NEAR(now.totals.updatePartialsSeconds - base.totals.updatePartialsSeconds,
              sum.updatePartialsSeconds, 1e-9);

  // Retiring the instances folds their totals into the retired aggregate:
  // the process view must not shrink.
  const unsigned long long createdBefore = now.instancesCreated;
  likes.clear();
  ASSERT_EQ(bglGetProcessStatistics(&now), BGL_SUCCESS);
  EXPECT_EQ(now.liveInstances, base.liveInstances);
  EXPECT_EQ(now.instancesCreated, createdBefore);
  EXPECT_EQ(now.instancesRetired - base.instancesRetired, std::size(kFamilies));
  EXPECT_EQ(delta(&BglStatistics::partialsOperations), sum.partialsOperations);
  EXPECT_EQ(delta(&BglStatistics::kernelLaunches), sum.kernelLaunches);
}

// ------------------------------------------------- metrics service (JSONL)

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ObsMetricsService, WritesPeriodicJsonLinesSnapshots) {
  const std::string path =
      ::testing::TempDir() + "/bgl_metrics_service.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(bglSetMetricsFile(path.c_str(), 20), BGL_SUCCESS);

  {
    auto problem = test::makeNucleotideProblem(6, 24, 407);
    phylo::LikelihoodOptions opts;
    opts.requirementFlags = BGL_FLAG_THREADING_NONE;
    opts.resources = {perf::kHostCpu};
    phylo::TreeLikelihood like(problem.tree, *problem.model, problem.data,
                               opts);
    for (int i = 0; i < 4; ++i) {
      like.logLikelihood();
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  }
  // Disabling the service appends one final snapshot and stops the thread.
  ASSERT_EQ(bglSetMetricsFile(nullptr, 0), BGL_SUCCESS);

  const auto lines = readLines(path);
  ASSERT_GE(lines.size(), 2u) << "expected periodic snapshots plus the final";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"schema\":2"), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)),
              std::string::npos)
        << "snapshot sequence must be dense";
    EXPECT_NE(lines[i].find("\"counters\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"deltas\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"gauges\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"journalTotal\""), std::string::npos);
  }
  // The work above must be visible in the final snapshot's cumulative
  // counters (JSON numbers have no leading zeros, so a first digit of '0'
  // means the count is exactly zero).
  const std::string& last = lines.back();
  const std::string key = "\"partialsOperations\":";
  const auto cpos = last.find("\"counters\":{");
  ASSERT_NE(cpos, std::string::npos);
  const auto ppos = last.find(key, cpos);
  ASSERT_NE(ppos, std::string::npos);
  EXPECT_NE(last[ppos + key.size()], '0');
  std::remove(path.c_str());
}

// -------------------------------------------- abnormal-teardown regression

TEST(ObsMetricsService, ErrorFlushesStatsFileBeforeFinalize) {
  const std::string path = ::testing::TempDir() + "/bgl_abnormal_stats.json";
  std::remove(path.c_str());

  const int resource = 0;
  const int inst = bglCreateInstance(
      /*tips=*/4, /*partials=*/3, /*compact=*/4, /*states=*/4, /*patterns=*/16,
      /*eigen=*/1, /*matrices=*/6, /*categories=*/2, /*scale=*/0, &resource, 1,
      0, BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE, nullptr);
  ASSERT_GE(inst, 0);
  ASSERT_EQ(bglSetStatsFile(inst, path.c_str()), BGL_SUCCESS);

  std::vector<double> evec(16, 0.0), ivec(16, 0.0), eval(4, 0.0);
  for (int i = 0; i < 4; ++i) evec[i * 4 + i] = ivec[i * 4 + i] = 1.0;
  ASSERT_EQ(
      bglSetEigenDecomposition(inst, 0, evec.data(), ivec.data(), eval.data()),
      BGL_SUCCESS);

  ASSERT_EQ(bglSetFaultSpec("cuda:launch:1"), BGL_SUCCESS);
  const int index = 1;
  const double length = 0.1;
  EXPECT_EQ(bglUpdateTransitionMatrices(inst, 0, &index, nullptr, nullptr,
                                        &length, 1),
            BGL_ERROR_HARDWARE);
  ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);

  // The contract under test: the error itself flushed the stats file. A
  // client that crashes right now (never calling bglFinalizeInstance) still
  // has a snapshot on disk, journal included.
  std::ostringstream content;
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "stats file missing before finalize";
    content << in.rdbuf();
  }
  const std::string json = content.str();
  EXPECT_NE(json.find("\"schema\":2"), std::string::npos);
  EXPECT_NE(json.find("\"journal\""), std::string::npos);
  EXPECT_NE(json.find("faultInjected"), std::string::npos)
      << "fault firing must be in the flushed journal";
  EXPECT_NE(json.find("\"error\""), std::string::npos)
      << "API-surface error record must be in the flushed journal";

  EXPECT_EQ(bglFinalizeInstance(inst), BGL_SUCCESS);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgl
