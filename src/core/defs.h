// Common definitions shared across the library.
//
// The whole compute stack is templated on the floating-point representation
// (float or double); `RealScalar` constrains those templates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <concepts>
#include <stdexcept>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define BGL_RESTRICT __restrict__
#define BGL_LIKELY(x) __builtin_expect(!!(x), 1)
#define BGL_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define BGL_RESTRICT
#define BGL_LIKELY(x) (x)
#define BGL_UNLIKELY(x) (x)
#endif

namespace bgl {

template <typename T>
concept RealScalar = std::same_as<T, float> || std::same_as<T, double>;

/// Alignment (bytes) used for all numeric buffers; wide enough for AVX-512.
inline constexpr std::size_t kBufferAlignment = 64;

/// Error-code values carried by Error::code(). They mirror the public
/// BglReturnCode enum (api/bgl.h) so layers below the C API can attach a
/// structured code without including the public header; c_api.cpp
/// static_asserts the two stay in sync.
inline constexpr int kErrGeneral = -1;
inline constexpr int kErrOutOfMemory = -2;
inline constexpr int kErrOutOfRange = -5;
inline constexpr int kErrHardware = -9;
inline constexpr int kErrRejected = -10;

/// Thrown on unrecoverable internal errors (API-level errors return codes).
/// `code` classifies the failure for the C API shim: it becomes the
/// function's return code, so runtimes that know better than "general
/// error" (bounds checks, injected hardware faults) should say so.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, int code = kErrGeneral)
      : std::runtime_error(what), code_(code) {}

  int code() const { return code_; }

 private:
  int code_ = kErrGeneral;
};

/// Number of sense codons under the universal genetic code.
inline constexpr int kCodonStates = 61;
/// Canonical nucleotide and amino-acid state counts.
inline constexpr int kNucleotideStates = 4;
inline constexpr int kAminoAcidStates = 20;

}  // namespace bgl
