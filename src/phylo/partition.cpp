#include "phylo/partition.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <numeric>

#include "core/defs.h"
#include "sched/sched.h"

namespace bgl::phylo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsedSeconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Calibration spec matching one shard's (model, options) combination.
sched::CalibrationSpec shardSpec(const SubstitutionModel& model,
                                 const LikelihoodOptions& options,
                                 const SplitOptions& split) {
  sched::CalibrationSpec spec;
  spec.states = model.states();
  spec.categories = options.categories;
  spec.singlePrecision = sched::resolveSinglePrecision(options.preferenceFlags,
                                                       options.requirementFlags);
  spec.preferenceFlags = options.preferenceFlags;
  spec.requirementFlags = options.requirementFlags;
  spec.seed = split.calibrationSeed;
  return spec;
}

int shardResource(const LikelihoodOptions& options) {
  return options.resources.empty() ? 0 : options.resources.front();
}

}  // namespace

PartitionedLikelihood::PartitionedLikelihood(const Tree& tree,
                                             const std::vector<PartitionSpec>& specs,
                                             bool concurrent)
    : concurrent_(concurrent) {
  if (specs.empty()) throw Error("PartitionedLikelihood: no partitions");
  parts_.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.model == nullptr) throw Error("PartitionedLikelihood: null model");
    parts_.push_back(std::make_unique<TreeLikelihood>(tree, *spec.model, spec.data,
                                                      spec.options));
  }
}

double PartitionedLikelihood::logLikelihood(const Tree& tree) {
  if (!concurrent_ || parts_.size() == 1) {
    double total = 0.0;
    for (auto& part : parts_) total += part->logLikelihood(tree);
    return total;
  }
  // One async evaluation per instance: instances are fully independent
  // (this is the concurrency model client programs use per Section IV-F).
  std::vector<std::future<double>> futures;
  futures.reserve(parts_.size() - 1);
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [this, i, &tree] {
      return parts_[i]->logLikelihood(tree);
    }));
  }
  double total = parts_[0]->logLikelihood(tree);
  for (auto& f : futures) total += f.get();
  return total;
}

void autoAssignResources(std::vector<PartitionSpec>& specs, bool benchmark) {
  if (specs.empty()) return;
  const auto estimates = sched::resourceEstimates({}, {}, benchmark);
  if (estimates.empty()) return;
  // Fastest resources first.
  std::vector<const sched::ResourceEstimate*> ranked;
  ranked.reserve(estimates.size());
  for (const auto& e : estimates) ranked.push_back(&e);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const sched::ResourceEstimate* a,
                      const sched::ResourceEstimate* b) {
                     return a->patternsPerSecond > b->patternsPerSecond;
                   });
  // Largest partitions first, so the heaviest subsets land on the fastest
  // resources; wrap around when partitions outnumber resources.
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return specs[a].data.patterns > specs[b].data.patterns;
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto* pick = ranked[i % ranked.size()];
    specs[order[i]].options.resources = {pick->resource};
  }
}

SplitMode splitModeFromFlags(long flags) {
  if (flags & BGL_FLAG_LOADBALANCE_ADAPTIVE) return SplitMode::Adaptive;
  if (flags & (BGL_FLAG_LOADBALANCE_BENCHMARK | BGL_FLAG_LOADBALANCE_MODEL)) {
    return SplitMode::Proportional;
  }
  return SplitMode::Equal;
}

std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards) {
  if (shards < 1) throw Error("splitPatterns: need >= 1 shard");
  if (shards > data.patterns) shards = data.patterns;
  std::vector<int> shares(static_cast<std::size_t>(shards));
  for (int k = 0; k < data.patterns; ++k) ++shares[static_cast<std::size_t>(k % shards)];
  return splitPatternsByShares(data, shares);
}

std::vector<PatternSet> splitPatternsByShares(const PatternSet& data,
                                              const std::vector<int>& shares) {
  if (shares.empty()) throw Error("splitPatternsByShares: need >= 1 shard");
  int total = 0;
  for (int s : shares) {
    if (s < 0) throw Error("splitPatternsByShares: negative share");
    total += s;
  }
  if (total != data.patterns) {
    throw Error("splitPatternsByShares: shares sum to " + std::to_string(total) +
                ", expected " + std::to_string(data.patterns));
  }
  const int n = static_cast<int>(shares.size());
  std::vector<PatternSet> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[s].taxa = data.taxa;
    out[s].originalSites = 0;
  }
  // Deal pattern columns in index order, strided across the shards that
  // still have capacity: shard composition stays statistically similar to
  // the full set even when shares are very unequal.
  std::vector<std::vector<int>> columns(static_cast<std::size_t>(n));
  std::vector<int> remaining = shares;
  int cursor = 0;
  for (int k = 0; k < data.patterns; ++k) {
    int probed = 0;
    while (remaining[static_cast<std::size_t>(cursor)] == 0 && probed < n) {
      cursor = (cursor + 1) % n;
      ++probed;
    }
    columns[static_cast<std::size_t>(cursor)].push_back(k);
    --remaining[static_cast<std::size_t>(cursor)];
    cursor = (cursor + 1) % n;
  }
  for (int s = 0; s < n; ++s) {
    auto& shard = out[s];
    shard.patterns = static_cast<int>(columns[s].size());
    shard.states.resize(static_cast<std::size_t>(data.taxa) * shard.patterns);
    shard.weights.reserve(shard.patterns);
    for (int j = 0; j < shard.patterns; ++j) {
      const int k = columns[s][j];
      shard.weights.push_back(data.weights[k]);
      shard.originalSites += static_cast<int>(data.weights[k]);
      for (int t = 0; t < data.taxa; ++t) {
        shard.states[static_cast<std::size_t>(t) * shard.patterns + j] =
            data.at(t, k);
      }
    }
  }
  return out;
}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 bool concurrent)
    : SplitLikelihood(tree, model, data, shardOptions, [&] {
        SplitOptions split;
        split.mode = SplitMode::Equal;
        split.concurrent = concurrent;
        return split;
      }()) {}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 const SplitOptions& split)
    : model_(&model), data_(data), shardOptions_(shardOptions), split_(split) {
  if (shardOptions_.empty()) throw Error("SplitLikelihood: no shards");
  if (data_.patterns < 1) throw Error("SplitLikelihood: no patterns");
  const int n = static_cast<int>(shardOptions_.size());

  std::vector<double> speeds;
  if (split_.mode == SplitMode::Equal) {
    speeds.assign(static_cast<std::size_t>(n), 1.0);
  } else if (!split_.speeds.empty()) {
    if (static_cast<int>(split_.speeds.size()) != n) {
      throw Error("SplitLikelihood: speeds/shardOptions size mismatch");
    }
    speeds = split_.speeds;
    calibratedSpeeds_ = speeds;
  } else {
    // Calibrate each shard's (resource, flags) combination through the
    // scheduler; estimates are cached process-wide, so identical shard
    // configurations cost one calibration run between them.
    speeds.reserve(static_cast<std::size_t>(n));
    for (const auto& options : shardOptions_) {
      const auto estimate = sched::resourceEstimate(
          shardResource(options), shardSpec(model, options, split_),
          split_.benchmark);
      speeds.push_back(estimate.patternsPerSecond);
    }
    calibratedSpeeds_ = speeds;
  }

  const auto shares =
      sched::proportionalShares(data_.patterns, speeds, split_.minPatternsPerShard);
  if (split_.mode == SplitMode::Adaptive) {
    sched::LoadBalancer::Options options;
    options.ewmaAlpha = split_.ewmaAlpha;
    options.imbalanceThreshold = split_.imbalanceThreshold;
    options.minShare = split_.minPatternsPerShard;
    options.settleRounds = split_.settleRounds;
    balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
  }
  build(tree, shares);
}

void SplitLikelihood::build(const Tree& tree, const std::vector<int>& shares) {
  shards_.clear();
  shards_.resize(shares.size());
  shardPatterns_ = shares;
  shardSeconds_.assign(shares.size(), 0.0);
  const auto shardData = splitPatternsByShares(data_, shares);
  for (std::size_t s = 0; s < shares.size(); ++s) {
    if (shares[s] <= 0) continue;  // idle shard: no instance
    shards_[s] = std::make_unique<TreeLikelihood>(tree, *model_, shardData[s],
                                                  shardOptions_[s]);
  }
}

double SplitLikelihood::evaluateShard(std::size_t shard, const Tree& tree) {
  if (shards_[shard] == nullptr) {
    shardSeconds_[shard] = 0.0;
    return 0.0;
  }
  const int instance = shards_[shard]->instance();
  const bool timeline = bglResetTimeline(instance) == BGL_SUCCESS;
  const auto start = Clock::now();
  const double logL = shards_[shard]->logLikelihood(tree);
  double seconds = elapsedSeconds(start);
  if (timeline) {
    // Prefer the obs-layer timeline: on simulated accelerator profiles the
    // roofline-modeled time is the honest per-device time base, and it is
    // immune to host-side oversubscription when shards run concurrently.
    BglTimeline tl{};
    if (bglGetTimeline(instance, &tl) == BGL_SUCCESS && tl.modeledSeconds > 0.0) {
      seconds = tl.modeledSeconds;
    }
  }
  if (shard < split_.debugSlowdown.size() && split_.debugSlowdown[shard] > 0.0) {
    seconds *= split_.debugSlowdown[shard];
  }
  shardSeconds_[shard] = seconds;
  return logL;
}

double SplitLikelihood::logLikelihood(const Tree& tree) {
  double total = 0.0;
  if (!split_.concurrent || shards_.size() == 1) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      total += evaluateShard(i, tree);
    }
  } else {
    std::vector<std::future<double>> futures;
    futures.reserve(shards_.size() - 1);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      futures.push_back(std::async(std::launch::async, [this, i, &tree] {
        return evaluateShard(i, tree);
      }));
    }
    total = evaluateShard(0, tree);
    for (auto& f : futures) total += f.get();
  }

  if (balancer_ != nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shardPatterns_[i] > 0 && shardSeconds_[i] > 0.0) {
        balancer_->observe(static_cast<int>(i), shardPatterns_[i],
                           shardSeconds_[i]);
      }
    }
    const auto newShares = balancer_->rebalance(data_.patterns, shardPatterns_);
    if (!newShares.empty()) {
      const int migrated = sched::migratedItems(shardPatterns_, newShares);
      sched::noteRebalance(static_cast<std::uint64_t>(migrated));
      obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                           "sched.rebalance");
      build(tree, newShares);
      ++rebalances_;
    }
  }
  return total;
}

const std::string& SplitLikelihood::implName(int shard) const {
  static const std::string kIdle = "(idle)";
  const auto& ptr = shards_[static_cast<std::size_t>(shard)];
  return ptr == nullptr ? kIdle : ptr->implName();
}

std::vector<double> SplitLikelihood::shardSpeeds() const {
  if (balancer_ != nullptr) return balancer_->speeds();
  return calibratedSpeeds_;
}

}  // namespace bgl::phylo
