#include "core/genetic_code.h"

#include <gtest/gtest.h>

namespace bgl {
namespace {

TEST(GeneticCode, SixtyOneSenseCodons) {
  const auto& code = GeneticCode::universal();
  EXPECT_EQ(code.senseCodonCount(), 61);
  int sense = 0, stops = 0;
  for (int c = 0; c < 64; ++c) {
    if (code.isStop(c)) {
      ++stops;
      EXPECT_EQ(code.senseIndex(c), -1);
    } else {
      ++sense;
    }
  }
  EXPECT_EQ(sense, 61);
  EXPECT_EQ(stops, 3);
}

TEST(GeneticCode, StopCodonsAreTaaTagTga) {
  const auto& code = GeneticCode::universal();
  // TCAG order: T=0, C=1, A=2, G=3.
  const int taa = 16 * 0 + 4 * 2 + 2;
  const int tag = 16 * 0 + 4 * 2 + 3;
  const int tga = 16 * 0 + 4 * 3 + 2;
  EXPECT_TRUE(code.isStop(taa));
  EXPECT_TRUE(code.isStop(tag));
  EXPECT_TRUE(code.isStop(tga));
  EXPECT_EQ(GeneticCode::codonString(taa), "TAA");
  EXPECT_EQ(GeneticCode::codonString(tag), "TAG");
  EXPECT_EQ(GeneticCode::codonString(tga), "TGA");
}

TEST(GeneticCode, AtgIsMethionine) {
  const auto& code = GeneticCode::universal();
  const int atg = 16 * 2 + 4 * 0 + 3;  // A, T, G in TCAG digits
  EXPECT_EQ(GeneticCode::codonString(atg), "ATG");
  EXPECT_EQ(code.aminoAcid(atg), 10);  // 'M' in ACDEFGHIKLMNPQRSTVWY
}

TEST(GeneticCode, TggIsTryptophan) {
  const auto& code = GeneticCode::universal();
  const int tgg = 16 * 0 + 4 * 3 + 3;
  EXPECT_EQ(GeneticCode::codonString(tgg), "TGG");
  EXPECT_EQ(code.aminoAcid(tgg), 18);  // 'W'
}

TEST(GeneticCode, SenseIndexRoundTrip) {
  const auto& code = GeneticCode::universal();
  for (int i = 0; i < 61; ++i) {
    const int c64 = code.codon64(i);
    EXPECT_EQ(code.senseIndex(c64), i);
    EXPECT_FALSE(code.isStop(c64));
  }
}

TEST(GeneticCode, SenseIndicesAreAscending) {
  const auto& code = GeneticCode::universal();
  for (int i = 1; i < 61; ++i) {
    EXPECT_GT(code.codon64(i), code.codon64(i - 1));
  }
}

TEST(GeneticCode, NucleotideAtDecodesPositions) {
  const int codon = 16 * 1 + 4 * 2 + 3;  // C, A, G
  EXPECT_EQ(GeneticCode::nucleotideAt(codon, 0), 1);
  EXPECT_EQ(GeneticCode::nucleotideAt(codon, 1), 2);
  EXPECT_EQ(GeneticCode::nucleotideAt(codon, 2), 3);
}

TEST(GeneticCode, TransitionClassification) {
  // T<->C and A<->G are transitions, everything else a transversion.
  EXPECT_TRUE(GeneticCode::isTransition(0, 1));
  EXPECT_TRUE(GeneticCode::isTransition(1, 0));
  EXPECT_TRUE(GeneticCode::isTransition(2, 3));
  EXPECT_TRUE(GeneticCode::isTransition(3, 2));
  EXPECT_FALSE(GeneticCode::isTransition(0, 2));
  EXPECT_FALSE(GeneticCode::isTransition(0, 3));
  EXPECT_FALSE(GeneticCode::isTransition(1, 2));
  EXPECT_FALSE(GeneticCode::isTransition(1, 3));
  EXPECT_FALSE(GeneticCode::isTransition(2, 2));
}

TEST(GeneticCode, SerineHasSixCodons) {
  const auto& code = GeneticCode::universal();
  int count = 0;
  for (int c = 0; c < 64; ++c) {
    if (code.aminoAcid(c) == 15) ++count;  // 'S'
  }
  EXPECT_EQ(count, 6);
}

TEST(GeneticCode, LeucineHasSixCodons) {
  const auto& code = GeneticCode::universal();
  int count = 0;
  for (int c = 0; c < 64; ++c) {
    if (code.aminoAcid(c) == 9) ++count;  // 'L'
  }
  EXPECT_EQ(count, 6);
}

}  // namespace
}  // namespace bgl
