# Empty compiler generated dependencies file for bgl_phylo.
# This may be replaced when dependencies are built.
