// Semantics of the asynchronous in-order command stream (the PR's launch
// model): enqueue order is execution order, maximal concurrent runs fuse
// into one dispatch, flush() drains and surfaces deferred errors, and the
// device-level async mode defers work until finish()/readback.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "clsim/cl_runtime.h"
#include "cudasim/cuda_device.h"
#include "hal/command_stream.h"
#include "perfmodel/device_profiles.h"

namespace bgl {
namespace {

hal::LaunchRecord kernelRecord(int id, bool concurrent) {
  hal::LaunchRecord rec;
  rec.kind = hal::LaunchRecord::Kind::Kernel;
  rec.args.ints[0] = id;
  rec.concurrentWithPrevious = concurrent;
  return rec;
}

/// Collects the (id, run-length) structure the worker delivers. A `gate`
/// promise lets tests hold the worker inside the first run so subsequent
/// enqueues deterministically pile up behind it.
struct RunLog {
  std::vector<std::vector<int>> runs;
  std::promise<void> gate;

  hal::CommandStream::RunExecutor executor() {
    return [this](const hal::LaunchRecord* recs, std::size_t n) {
      std::vector<int> run;
      for (std::size_t i = 0; i < n; ++i) {
        run.push_back(static_cast<int>(recs[i].args.ints[0]));
      }
      if (!run.empty() && run.front() == -1) gate.get_future().wait();
      runs.push_back(std::move(run));
    };
  }
};

TEST(CommandStream, ExecutesInEnqueueOrder) {
  RunLog log;
  {
    hal::CommandStream stream(log.executor());
    for (int i = 0; i < 16; ++i) stream.enqueue(kernelRecord(i, false));
    stream.flush();
  }
  std::vector<int> flat;
  for (const auto& run : log.runs) flat.insert(flat.end(), run.begin(), run.end());
  ASSERT_EQ(flat.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(flat[static_cast<std::size_t>(i)], i);
}

TEST(CommandStream, ConcurrentRunsCoalesceIntoOneDispatch) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  // Hold the worker in the gate record so the level below queues up whole.
  stream.enqueue(kernelRecord(-1, false));
  stream.enqueue(kernelRecord(0, false));
  stream.enqueue(kernelRecord(1, true));
  stream.enqueue(kernelRecord(2, true));
  stream.enqueue(kernelRecord(3, false));  // new run: not concurrent
  stream.enqueue(kernelRecord(4, true));
  log.gate.set_value();
  stream.flush();
  ASSERT_EQ(log.runs.size(), 3u);
  EXPECT_EQ(log.runs[0], std::vector<int>({-1}));
  EXPECT_EQ(log.runs[1], std::vector<int>({0, 1, 2}));
  EXPECT_EQ(log.runs[2], std::vector<int>({3, 4}));
}

TEST(CommandStream, FillRecordsNeverFuse) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  stream.enqueue(kernelRecord(-1, false));
  stream.enqueue(kernelRecord(0, false));
  hal::LaunchRecord fill;
  fill.kind = hal::LaunchRecord::Kind::Fill;
  fill.args.ints[0] = 100;
  fill.concurrentWithPrevious = true;  // must be ignored for fills
  stream.enqueue(fill);
  stream.enqueue(kernelRecord(1, true));  // cannot fuse across the fill
  log.gate.set_value();
  stream.flush();
  ASSERT_EQ(log.runs.size(), 4u);
  EXPECT_EQ(log.runs[1], std::vector<int>({0}));
  EXPECT_EQ(log.runs[2], std::vector<int>({100}));
  EXPECT_EQ(log.runs[3], std::vector<int>({1}));
}

TEST(CommandStream, TracksQueueDepthHighWaterMark) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  stream.enqueue(kernelRecord(-1, false));
  for (int i = 0; i < 8; ++i) stream.enqueue(kernelRecord(i, false));
  EXPECT_GE(stream.pendingDepth(), 8u);
  log.gate.set_value();
  stream.flush();
  EXPECT_EQ(stream.pendingDepth(), 0u);
  EXPECT_GE(stream.maxDepth(), 8u);
}

TEST(CommandStream, FlushRethrowsDeferredErrorAndDropsLaterRecords) {
  std::vector<int> executed;
  hal::CommandStream stream([&executed](const hal::LaunchRecord* recs,
                                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const int id = static_cast<int>(recs[i].args.ints[0]);
      if (id == 13) throw std::runtime_error("injected worker failure");
      executed.push_back(id);
    }
  });
  stream.enqueue(kernelRecord(1, false));
  stream.enqueue(kernelRecord(13, false));
  stream.enqueue(kernelRecord(2, false));  // enqueued after the failure: dropped
  EXPECT_THROW(stream.flush(), std::runtime_error);
  // The error is cleared: the stream remains usable afterwards.
  stream.enqueue(kernelRecord(3, false));
  EXPECT_NO_THROW(stream.flush());
  EXPECT_EQ(executed, std::vector<int>({1, 3}));
}

TEST(CommandStream, DestructorDrainsWithoutFlush) {
  std::vector<int> executed;
  {
    hal::CommandStream stream(
        [&executed](const hal::LaunchRecord* recs, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) {
            executed.push_back(static_cast<int>(recs[i].args.ints[0]));
          }
        });
    stream.enqueue(kernelRecord(7, false));
    stream.enqueue(kernelRecord(8, true));
  }
  EXPECT_EQ(executed, std::vector<int>({7, 8}));
}

// ---------------------------------------------------------------------
// Device-level async mode: both simulated frameworks defer launches onto
// the stream and drain at finish() / host readback, with identical results
// and the same launch accounting as the synchronous mode.
// ---------------------------------------------------------------------

void exerciseAsyncDevice(hal::Device& dev) {
  dev.setAsync(true);
  EXPECT_TRUE(dev.asyncEnabled());

  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev.getKernel(spec);

  std::vector<double> ones(256, 1.0);
  auto buf = dev.alloc(256 * sizeof(double));
  dev.copyToDevice(*buf, 0, ones.data(), 256 * sizeof(double));

  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 256;
  dev.launch(*kernel, {1, 1, 0}, args, {});
  dev.launch(*kernel, {1, 1, 0}, args, {});
  dev.finish();
  EXPECT_EQ(dev.timeline().kernelLaunches, 2u);

  // Readback drains the stream implicitly: the data is the kernel's output.
  std::vector<double> out(256, -1.0);
  dev.copyToHost(out.data(), *buf, 0, 256 * sizeof(double));
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);

  // fillZero is a stream record too, ordered after the launches.
  dev.copyToDevice(*buf, 0, ones.data(), 256 * sizeof(double));
  dev.fillZero(buf, 0, 128 * sizeof(double));
  dev.copyToHost(out.data(), *buf, 0, 256 * sizeof(double));
  for (int i = 0; i < 128; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 0.0);
  for (int i = 128; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 1.0);
  }
}

TEST(AsyncDevice, CudaRuntimeDefersAndDrains) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  exerciseAsyncDevice(*dev);
}

TEST(AsyncDevice, OpenClRuntimeDefersAndDrains) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  exerciseAsyncDevice(*dev);
}

TEST(AsyncDevice, SynchronousRemainsTheDefault) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  EXPECT_FALSE(dev->asyncEnabled());
}

}  // namespace
}  // namespace bgl
