// The universal (standard) genetic code and the 61 sense-codon state space
// used by codon substitution models.
#pragma once

#include <array>
#include <string>

#include "core/defs.h"

namespace bgl {

/// Universal genetic code utilities. Codons are indexed 0..63 by
/// 16*n1 + 4*n2 + n3 with nucleotide order T, C, A, G (the convention used
/// by codon-model literature); the 61 sense codons (stops excluded) are the
/// model's state space, indexed 0..60 in ascending 64-codon order.
class GeneticCode {
 public:
  static const GeneticCode& universal();

  /// Amino acid (0..19, alphabetical by one-letter code) for 64-codon index,
  /// or -1 for a stop codon.
  int aminoAcid(int codon64) const { return amino_[codon64]; }

  bool isStop(int codon64) const { return amino_[codon64] < 0; }

  int senseCodonCount() const { return kCodonStates; }

  /// Map 64-codon index -> sense index 0..60, or -1 for stops.
  int senseIndex(int codon64) const { return sense_index_[codon64]; }

  /// Map sense index 0..60 -> 64-codon index.
  int codon64(int senseIndex) const { return codon64_[senseIndex]; }

  /// Nucleotide (0..3, order T,C,A,G) at position `pos` (0..2) of codon64.
  static int nucleotideAt(int codon64, int pos) {
    switch (pos) {
      case 0: return (codon64 >> 4) & 3;
      case 1: return (codon64 >> 2) & 3;
      default: return codon64 & 3;
    }
  }

  /// True if nucleotides a and b differ by a transition (purine<->purine or
  /// pyrimidine<->pyrimidine). Order T=0, C=1, A=2, G=3.
  static bool isTransition(int a, int b) {
    // T<->C (0,1) and A<->G (2,3) are transitions.
    return (a != b) && ((a <= 1 && b <= 1) || (a >= 2 && b >= 2));
  }

  /// Three-letter string for a 64-codon index, e.g. "ATG".
  static std::string codonString(int codon64);

 private:
  GeneticCode();
  std::array<int, 64> amino_{};
  std::array<int, 64> sense_index_{};
  std::array<int, kCodonStates> codon64_{};
};

}  // namespace bgl
