file(REMOVE_RECURSE
  "libbgl_clsim.a"
)
