file(REMOVE_RECURSE
  "CMakeFiles/bgl_perfmodel.dir/device_profiles.cpp.o"
  "CMakeFiles/bgl_perfmodel.dir/device_profiles.cpp.o.d"
  "libbgl_perfmodel.a"
  "libbgl_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
