// Accelerator-implementation-specific paths: multiple eigen/frequency
// slots, partials round trips through device memory, matrix buffer
// round trips, and batched vs per-edge matrix updates.
#include <gtest/gtest.h>

#include <cmath>

#include "api/bglxx.h"
#include "core/model.h"
#include "core/transition.h"
#include "perfmodel/device_profiles.h"
#include "tests/test_util.h"

namespace bgl {
namespace {

class AccelPaths : public ::testing::TestWithParam<long> {};

TEST_P(AccelPaths, MultipleEigenSlotsSelectIndependentModels) {
  // Slot 0: JC69; slot 1: strongly skewed HKY85. Root evaluation against
  // slot 1's frequencies/weights must differ from slot 0's and match a
  // single-slot instance configured with the skewed model.
  Rng rng(404);
  auto tree = phylo::Tree::random(5, rng, 0.1);
  HKY85Model skewed(5.0, {0.7, 0.1, 0.1, 0.1});
  JC69Model jc;
  auto data = phylo::simulatePatterns(tree, skewed, 60, rng);

  auto evaluate = [&](const SubstitutionModel& matrixModel,
                      const SubstitutionModel& rootModel, int matrixSlot,
                      int rootSlot, int eigenBuffers) -> double {
    bgl::xx::Instance inst(5, 4, 5, 4, data.patterns, eigenBuffers,
                           2 * 5 - 2, 1, 0, {}, 0, GetParam());
    for (int t = 0; t < 5; ++t) {
      std::vector<int> states(data.patterns);
      for (int k = 0; k < data.patterns; ++k) states[k] = data.at(t, k);
      inst.setTipStates(t, states);
    }
    for (int slot = 0; slot < eigenBuffers; ++slot) {
      const SubstitutionModel& m = slot == matrixSlot ? matrixModel : rootModel;
      const auto es = m.eigenSystem();
      inst.setEigenDecomposition(slot, es.evec, es.ivec, es.eval);
      inst.setStateFrequencies(slot, m.frequencies());
      inst.setCategoryWeights(slot, {1.0});
    }
    // Always fill the root slot with rootModel's frequencies.
    inst.setStateFrequencies(rootSlot, rootModel.frequencies());
    inst.setCategoryRates({1.0});
    inst.setPatternWeights(std::vector<double>(data.patterns, 1.0));

    std::vector<int> nodes;
    std::vector<double> lengths;
    tree.matrixUpdates(nodes, lengths);
    EXPECT_EQ(bglUpdateTransitionMatrices(inst.id(), matrixSlot, nodes.data(),
                                          nullptr, nullptr, lengths.data(),
                                          static_cast<int>(nodes.size())),
              BGL_SUCCESS)
        << "matrix update failed";
    inst.updatePartials(tree.operations());
    return inst.rootLogLikelihood(tree.root(), rootSlot, rootSlot);
  };

  const double viaSlot1 = evaluate(skewed, skewed, 0, 1, 2);
  const double viaSingleSlot = evaluate(skewed, skewed, 0, 0, 1);
  EXPECT_NEAR(viaSlot1, viaSingleSlot, std::abs(viaSingleSlot) * 1e-9);

  const double jcRoot = evaluate(skewed, jc, 0, 1, 2);  // JC root frequencies
  EXPECT_NE(viaSlot1, jcRoot);
}

TEST_P(AccelPaths, PartialsRoundTripThroughDeviceMemory) {
  const int patterns = 6, categories = 3;
  bgl::xx::Instance inst(2, 2, 2, 4, patterns, 1, 2, categories, 0, {}, 0,
                         GetParam());
  std::vector<double> in(static_cast<std::size_t>(categories) * patterns * 4);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = 0.001 * static_cast<double>(i);
  inst.setPartials(2, in);
  const auto out = inst.getPartials(2, in.size());
  EXPECT_EQ(out, in);
}

TEST_P(AccelPaths, TransitionMatricesMatchHostReference) {
  HKY85Model model(2.5, {0.3, 0.25, 0.2, 0.25});
  const auto es = model.eigenSystem();
  const int categories = 2;
  bgl::xx::Instance inst(2, 2, 2, 4, 4, 1, 4, categories, 0, {}, 0, GetParam());
  inst.setEigenDecomposition(0, es.evec, es.ivec, es.eval);
  const std::vector<double> rates = {0.5, 1.5};
  inst.setCategoryRates(rates);

  const double t = 0.37;
  inst.updateTransitionMatrices(0, {1}, {t});
  std::vector<double> out(categories * 16);
  ASSERT_EQ(bglGetTransitionMatrix(inst.id(), 1, out.data()), BGL_SUCCESS);
  for (int c = 0; c < categories; ++c) {
    const auto ref = transitionMatrix(es, t, rates[c]);
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(out[c * 16 + i], ref[i], 1e-10) << "cat " << c << " entry " << i;
    }
  }
}

TEST_P(AccelPaths, BatchedMatrixUpdateMatchesIndividualUpdates) {
  HKY85Model model(2.0, {0.25, 0.25, 0.25, 0.25});
  const auto es = model.eigenSystem();
  bgl::xx::Instance inst(2, 2, 2, 4, 4, 1, 8, 1, 0, {}, 0, GetParam());
  inst.setEigenDecomposition(0, es.evec, es.ivec, es.eval);
  inst.setCategoryRates({1.0});

  const std::vector<int> indices = {5, 2, 7};
  const std::vector<double> lengths = {0.1, 0.33, 0.71};
  inst.updateTransitionMatrices(0, indices, lengths);  // one batched call
  for (std::size_t e = 0; e < indices.size(); ++e) {
    std::vector<double> batched(16);
    ASSERT_EQ(bglGetTransitionMatrix(inst.id(), indices[e], batched.data()),
              BGL_SUCCESS);
    const int one = indices[e];
    const double len = lengths[e];
    inst.updateTransitionMatrices(0, {one}, {len});  // count=1 call
    std::vector<double> single(16);
    ASSERT_EQ(bglGetTransitionMatrix(inst.id(), one, single.data()), BGL_SUCCESS);
    EXPECT_EQ(batched, single);
  }
}

INSTANTIATE_TEST_SUITE_P(Frameworks, AccelPaths,
                         ::testing::Values(BGL_FLAG_FRAMEWORK_CUDA,
                                           BGL_FLAG_FRAMEWORK_OPENCL,
                                           BGL_FLAG_THREADING_NONE));

// Level-order batching collapses a whole-tree updatePartials from one
// kernel launch per node to one fused launch per dependency level: a
// balanced 16-tip tree is 15 operations but only 4 levels.
class AsyncBatching : public ::testing::TestWithParam<long> {};

TEST_P(AsyncBatching, LaunchCountIsTreeDepthNotNodeCount) {
  auto runTree = [&](long mode, BglTimeline& timeline, BglStatistics& stats) {
    const int tips = 16, patterns = 64;
    bgl::xx::Instance inst(tips, 15, tips, 4, patterns, 1, 31, 1, 0, {}, 0,
                           GetParam() | mode);
    for (int t = 0; t < tips; ++t) {
      std::vector<int> states(patterns);
      for (int k = 0; k < patterns; ++k) states[k] = (t + k) % 4;
      inst.setTipStates(t, states);
    }
    const JC69Model model;
    const auto es = model.eigenSystem();
    inst.setEigenDecomposition(0, es.evec, es.ivec, es.eval);
    inst.setStateFrequencies(0, model.frequencies());
    inst.setCategoryWeights(0, {1.0});
    inst.setCategoryRates({1.0});
    inst.setPatternWeights(std::vector<double>(patterns, 1.0));
    std::vector<int> nodes(30);
    std::vector<double> lengths(30, 0.1);
    for (int i = 0; i < 30; ++i) nodes[i] = i;
    EXPECT_EQ(bglUpdateTransitionMatrices(inst.id(), 0, nodes.data(), nullptr,
                                          nullptr, lengths.data(), 30),
              BGL_SUCCESS);

    // Balanced post-order batch: 8 cherries, then 4, 2, 1 internal joins.
    std::vector<BglOperation> ops;
    int next = tips;
    std::vector<int> prev(tips);
    for (int t = 0; t < tips; ++t) prev[t] = t;
    while (prev.size() > 1) {
      std::vector<int> cur;
      for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
        const int dest = next++;
        ops.push_back(BglOperation{dest, BGL_OP_NONE, BGL_OP_NONE, prev[i],
                                   prev[i], prev[i + 1], prev[i + 1]});
        cur.push_back(dest);
      }
      prev = cur;
    }
    EXPECT_EQ(ops.size(), 15u);

    EXPECT_EQ(bglResetTimeline(inst.id()), BGL_SUCCESS);
    inst.updatePartials(ops);
    EXPECT_EQ(bglGetTimeline(inst.id(), &timeline), BGL_SUCCESS);
    EXPECT_EQ(bglGetStatistics(inst.id(), &stats), BGL_SUCCESS);
    const double logL = inst.rootLogLikelihood(30);
    EXPECT_TRUE(std::isfinite(logL));
    return logL;
  };

  BglTimeline syncTl{}, asyncTl{};
  BglStatistics syncStats{}, asyncStats{};
  const double syncL = runTree(BGL_FLAG_COMPUTATION_SYNCH, syncTl, syncStats);
  const double asyncL = runTree(BGL_FLAG_COMPUTATION_ASYNCH, asyncTl, asyncStats);

  EXPECT_EQ(syncL, asyncL);  // bit-identical results
  EXPECT_EQ(syncTl.kernelLaunches, 15u);   // one launch per node
  EXPECT_EQ(asyncTl.kernelLaunches, 4u);   // one launch per level
  EXPECT_EQ(syncStats.streamedLaunches, 0u);
  EXPECT_GE(asyncStats.streamedLaunches, 4u);
}

INSTANTIATE_TEST_SUITE_P(Frameworks, AsyncBatching,
                         ::testing::Values(BGL_FLAG_FRAMEWORK_CUDA,
                                           BGL_FLAG_FRAMEWORK_OPENCL));

}  // namespace
}  // namespace bgl
