file(REMOVE_RECURSE
  "CMakeFiles/bgl_cudasim.dir/cuda_device.cpp.o"
  "CMakeFiles/bgl_cudasim.dir/cuda_device.cpp.o.d"
  "libbgl_cudasim.a"
  "libbgl_cudasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
