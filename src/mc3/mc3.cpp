#include "mc3/mc3.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "core/defs.h"

namespace bgl::mc3 {

struct Mc3Sampler::Chain {
  phylo::Tree tree;
  double logL = 0.0;
  double logPrior = 0.0;
  double beta = 1.0;
  std::unique_ptr<Evaluator> evaluator;
  Rng rng;
  long proposed = 0;
  long accepted = 0;
};

namespace {

double branchLogPrior(const phylo::Tree& tree, double mean) {
  // Independent exponential priors on every branch.
  double sum = 0.0;
  const double rate = 1.0 / mean;
  for (int n = 0; n < tree.nodeCount(); ++n) {
    if (n == tree.root()) continue;
    sum += std::log(rate) - rate * tree.node(n).length;
  }
  return sum;
}

}  // namespace

Mc3Sampler::Mc3Sampler(const PatternSet& data, const SubstitutionModel& model,
                       const Mc3Options& options, EvaluatorFactory factory)
    : data_(data), options_(options), rng_(options.seed) {
  if (options_.chains < 1) throw Error("Mc3Sampler: need >= 1 chain");
  for (int i = 0; i < options_.chains; ++i) {
    auto chain = std::make_unique<Chain>();
    chain->tree = phylo::Tree::random(data.taxa, rng_, options_.branchPriorMean);
    chain->beta = 1.0 / (1.0 + options_.heatDelta * i);
    chain->evaluator = factory(data, model);
    chain->rng.reseed(options_.seed * 1000003u + i + 1);
    chain->logL = chain->evaluator->logLikelihood(chain->tree);
    chain->logPrior = branchLogPrior(chain->tree, options_.branchPriorMean);
    chains_.push_back(std::move(chain));
  }
}

Mc3Sampler::~Mc3Sampler() = default;

void Mc3Sampler::step(Chain& chain) {
  phylo::Tree proposal = chain.tree;
  double logHastings = 0.0;

  if (chain.rng.uniform() < options_.topologyMoveWeight && data_.taxa >= 4) {
    // NNI: symmetric proposal on topologies.
    proposal.nni(chain.rng);
  } else {
    // Branch-length multiplier on a random non-root branch.
    int node = chain.rng.belowInt(proposal.nodeCount() - 1);
    const double m =
        std::exp(options_.branchMoveLambda * (chain.rng.uniform() - 0.5));
    proposal.node(node).length *= m;
    logHastings = std::log(m);  // Jacobian of the multiplier move
  }

  const double logL = chain.evaluator->logLikelihood(proposal);
  const double logPrior = branchLogPrior(proposal, options_.branchPriorMean);
  const double logRatio =
      chain.beta * ((logL + logPrior) - (chain.logL + chain.logPrior)) + logHastings;

  ++chain.proposed;
  if (std::log(chain.rng.uniform()) < logRatio) {
    chain.tree = std::move(proposal);
    chain.logL = logL;
    chain.logPrior = logPrior;
    ++chain.accepted;
  }
}

Mc3Result Mc3Sampler::run() {
  using Clock = std::chrono::steady_clock;
  Mc3Result result;
  result.evaluatorName = chains_[0]->evaluator->name();
  result.bestLogL = chains_[0]->logL;
  result.mapTree = chains_[0]->tree;
  result.coldTrace.reserve(options_.generations);

  for (auto& chain : chains_) chain->evaluator->resetTimeline();
  const auto t0 = Clock::now();
  for (int gen = 0; gen < options_.generations; ++gen) {
    if (options_.parallelChains && chains_.size() > 1) {
      // MPI-style: one worker per chain, join at the generation barrier.
      std::vector<std::thread> workers;
      workers.reserve(chains_.size());
      for (auto& chain : chains_) {
        workers.emplace_back([this, &chain] { step(*chain); });
      }
      for (auto& w : workers) w.join();
    } else {
      for (auto& chain : chains_) step(*chain);
    }

    if ((gen + 1) % options_.swapInterval == 0 && chains_.size() > 1) {
      // Attempt one swap between a random adjacent temperature pair;
      // exchange chain states so chain 0 stays cold.
      const int i = rng_.belowInt(static_cast<int>(chains_.size()) - 1);
      Chain& a = *chains_[i];
      Chain& b = *chains_[i + 1];
      const double logRatio = (a.beta - b.beta) * ((b.logL + b.logPrior) -
                                                   (a.logL + a.logPrior));
      ++result.swapsProposed;
      if (std::log(rng_.uniform()) < logRatio) {
        std::swap(a.tree, b.tree);
        std::swap(a.logL, b.logL);
        std::swap(a.logPrior, b.logPrior);
        ++result.swapsAccepted;
      }
    }

    result.coldTrace.push_back(chains_[0]->logL);
    if (chains_[0]->logL > result.bestLogL) {
      result.bestLogL = chains_[0]->logL;
      result.mapTree = chains_[0]->tree;
    }
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  result.coldLogL = chains_[0]->logL;
  for (auto& chain : chains_) {
    result.proposed += chain->proposed;
    result.accepted += chain->accepted;
    double measured = 0.0, modeled = 0.0;
    if (chain->evaluator->timeline(&measured, &modeled)) {
      result.likelihoodMeasuredSeconds += measured;
      result.likelihoodModeledSeconds += modeled;
    }
  }
  return result;
}

}  // namespace bgl::mc3
