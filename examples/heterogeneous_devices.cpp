// Heterogeneous hardware tour: enumerate every resource the library
// exposes, run the identical likelihood computation on each through
// whichever frameworks serve it, and show that (a) results agree across
// all implementations and (b) throughput characteristics differ — the
// core value proposition of the paper.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/model.h"
#include "harness/genomictest.h"
#include "phylo/likelihood.h"
#include "phylo/seqsim.h"

int main() {
  using namespace bgl;

  BglResourceList* resources = bglGetResourceList();
  std::printf("available hardware resources:\n");
  for (int r = 0; r < resources->length; ++r) {
    std::printf("  [%d] %-26s %s\n", r, resources->list[r].name,
                resources->list[r].description);
  }

  // One shared problem.
  Rng rng(31);
  phylo::Tree tree = phylo::Tree::random(12, rng, 0.1);
  const HKY85Model model(2.0, {0.28, 0.24, 0.22, 0.26});
  const auto data = phylo::simulatePatterns(tree, model, 4000, rng);
  std::printf("\nproblem: %d taxa, %d unique patterns, HKY85 + gamma(4)\n\n",
              data.taxa, data.patterns);

  struct Attempt {
    const char* framework;
    long flags;
  };
  const Attempt attempts[] = {
      {"native CPU", BGL_FLAG_FRAMEWORK_CPU},
      {"CUDA", BGL_FLAG_FRAMEWORK_CUDA},
      {"OpenCL", BGL_FLAG_FRAMEWORK_OPENCL},
  };

  std::printf("%-26s %-11s %-32s %16s %12s\n", "resource", "framework",
              "implementation", "logL", "GFLOPS");

  double reference = 0.0;
  bool haveReference = false;
  int disagreements = 0;

  for (int r = 0; r < resources->length; ++r) {
    for (const Attempt& attempt : attempts) {
      phylo::LikelihoodOptions opts;
      opts.categories = 4;
      opts.requirementFlags = attempt.flags;
      opts.resources = {r};
      double logL = 0.0;
      std::string implName;
      try {
        phylo::TreeLikelihood like(tree, model, data, opts);
        logL = like.logLikelihood();
        implName = like.implName();
      } catch (const std::exception&) {
        continue;  // this framework does not serve this resource
      }

      // Throughput of the core kernel on the same (resource, framework).
      harness::ProblemSpec spec;
      spec.tips = 12;
      spec.patterns = 4000;
      spec.categories = 4;
      spec.resource = r;
      spec.requirementFlags = attempt.flags;
      spec.reps = 2;
      const auto perf = harness::runThroughput(spec);

      std::printf("%-26s %-11s %-32s %16.6f %12.2f%s\n", resources->list[r].name,
                  attempt.framework, implName.c_str(), logL, perf.gflops,
                  perf.modeled ? " (modeled)" : "");

      if (!haveReference) {
        reference = logL;
        haveReference = true;
      } else if (std::abs(logL - reference) > std::abs(reference) * 1e-8) {
        ++disagreements;
        std::printf("  ^^^ DISAGREES with reference %.6f\n", reference);
      }
    }
  }

  std::printf("\nall implementations agree: %s\n",
              disagreements == 0 ? "yes" : "NO");
  return disagreements == 0 ? 0 : 1;
}
