// HAL: the single internal hardware interface of the accelerator model.
//
// This layer corresponds to the "hardware interface" box in Fig. 3 of the
// paper: the framework-independent accelerator implementation talks only to
// this interface, and one concrete Device exists per (framework, device)
// pair — cudasim provides the CUDA-style one, clsim the OpenCL-style one.
// The interface covers kernel loading/compilation keyed by analysis
// parameters (state count, precision, hardware variant), kernel execution,
// data movement, and device characteristics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include "core/defs.h"
#include "perfmodel/device_profiles.h"

namespace bgl::obs {
class TraceRecorder;
}

namespace bgl::hal {

/// Identifiers for the shared kernel set (one source set, both frameworks).
enum class KernelId : int {
  PartialsPartials = 0,   ///< two partials children (Eq. 1 core)
  StatesPartials,         ///< one compact-state child, one partials child
  StatesStates,           ///< two compact-state children
  TransitionMatrices,     ///< P(t) from eigendecomposition
  TransitionMatricesDerivs,///< P(t), P'(t), P''(t)
  RootLikelihood,         ///< integrate root partials -> site log-likelihoods
  EdgeLikelihood,         ///< edge likelihood
  EdgeLikelihoodDerivs,   ///< edge likelihood with 1st/2nd derivatives
  RescalePartials,        ///< find per-pattern max and rescale
  AccumulateScale,        ///< add log scale factors into cumulative buffer
  ResetScale,             ///< zero a cumulative scale buffer
  SumSiteLikelihoods,     ///< weighted reduction of site log-likelihoods
  kCount
};

/// Stable kernel names used in trace output.
inline const char* kernelIdName(KernelId id) {
  switch (id) {
    case KernelId::PartialsPartials: return "PartialsPartials";
    case KernelId::StatesPartials: return "StatesPartials";
    case KernelId::StatesStates: return "StatesStates";
    case KernelId::TransitionMatrices: return "TransitionMatrices";
    case KernelId::TransitionMatricesDerivs: return "TransitionMatricesDerivs";
    case KernelId::RootLikelihood: return "RootLikelihood";
    case KernelId::EdgeLikelihood: return "EdgeLikelihood";
    case KernelId::EdgeLikelihoodDerivs: return "EdgeLikelihoodDerivs";
    case KernelId::RescalePartials: return "RescalePartials";
    case KernelId::AccumulateScale: return "AccumulateScale";
    case KernelId::ResetScale: return "ResetScale";
    case KernelId::SumSiteLikelihoods: return "SumSiteLikelihoods";
    case KernelId::kCount: break;
  }
  return "Unknown";
}

/// Hardware-specific kernel variants (Section VII-B): GPU-style kernels
/// parallelize across (pattern, state) with local-memory staging; x86-style
/// kernels loop over states inside each work-item and avoid explicit local
/// memory, with much larger work-groups.
enum class KernelVariant : int { GpuStyle = 0, X86Style = 1 };

/// Key under which compiled kernels are cached.
struct KernelSpec {
  KernelId id = KernelId::PartialsPartials;
  int states = 4;
  bool singlePrecision = false;
  KernelVariant variant = KernelVariant::GpuStyle;
  bool useFma = true;

  bool operator==(const KernelSpec&) const = default;
};

/// Execution geometry of one launch: 1-D grid of work-groups.
struct LaunchDims {
  int numGroups = 1;
  int groupSize = 1;          ///< work-items per group
  std::size_t localMemBytes = 0;
};

/// Untyped argument pack; each kernel documents its slot layout.
struct KernelArgs {
  static constexpr int kMaxBuffers = 12;
  static constexpr int kMaxInts = 12;
  static constexpr int kMaxReals = 4;
  void* buffers[kMaxBuffers] = {};
  std::int64_t ints[kMaxInts] = {};
  double reals[kMaxReals] = {};
};

/// Work-group context handed to kernel functions by the executing runtime.
struct WorkGroupCtx {
  int groupId = 0;
  int groupSize = 1;
  int numGroups = 1;
  std::byte* localMem = nullptr;
  std::size_t localMemBytes = 0;
};

/// A kernel is a host function executed once per work-group; it loops over
/// its work-items internally (barriers are phase boundaries, the standard
/// loop-fission lowering CPU OpenCL drivers use).
using KernelFn = void (*)(const WorkGroupCtx&, const KernelArgs&);

/// Per-launch options for command-stream execution.
struct LaunchOptions {
  /// Host-side storage referenced by the KernelArgs (index tables, pointer
  /// tables). The stream keeps it alive until the launch has executed.
  std::shared_ptr<const void> keepAlive;
  /// When true, this launch writes no memory the *immediately preceding*
  /// launch reads or writes, so an async stream may fuse the two into one
  /// grid dispatch. Ignored by synchronous devices.
  bool concurrentWithPrevious = false;
  /// Which of the device's in-order command streams receives the launch.
  /// Out-of-range indices clamp to the last stream; synchronous devices
  /// (and devices with a single stream) ignore this.
  int stream = 0;
};

/// Cross-stream synchronization point. Recorded (enqueued) on a producer
/// stream via Device::recordEvent and waited on by a consumer stream via
/// Device::waitEvent: the consumer's worker blocks until every record the
/// producer enqueued before the event has executed — a happens-before edge
/// between two in-order streams without a full flush. Events are single-use
/// and sticky: once signaled they stay signaled, so a late waiter never
/// blocks. `modeledAt` carries the producer stream's modeled clock at
/// signal time so the device timeline can account cross-stream critical
/// paths (see docs/PERFORMANCE.md, "Cross-call pipelining").
class StreamEvent {
 public:
  /// Stamp the producer's modeled clock; called by the device executor just
  /// before signal(). Not synchronized on its own — the signal publishes it.
  void stampModeled(double seconds) { modeledAt_ = seconds; }

  void signal() {
    {
      std::lock_guard lock(mutex_);
      signaled_ = true;
    }
    cv_.notify_all();
  }

  void wait() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return signaled_; });
  }

  bool signaled() const {
    std::lock_guard lock(mutex_);
    return signaled_;
  }

  /// Valid after wait()/signaled(); 0.0 if the producer dropped the signal
  /// record on an error path (the signal itself still fires — see
  /// command_stream.cpp — so waiters never deadlock on a failed stream).
  double modeledAt() const { return modeledAt_; }

  /// Chrome-trace flow id linking the signal span to its wait spans; set by
  /// the recording device when span timing is enabled.
  std::uint64_t flowId = 0;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool signaled_ = false;
  double modeledAt_ = 0.0;
};
using StreamEventPtr = std::shared_ptr<StreamEvent>;

/// Device memory allocation handle.
class Buffer {
 public:
  virtual ~Buffer() = default;
  virtual std::size_t size() const = 0;
  /// Host-visible backing storage (the runtimes execute on the host).
  virtual void* data() = 0;
  virtual const void* data() const = 0;
};
using BufferPtr = std::shared_ptr<Buffer>;

/// Compiled kernel handle.
class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual const KernelSpec& spec() const = 0;
};

/// Accumulated execution record for a device. `modeledSeconds` comes from
/// the roofline model (or equals measured time on host-measured devices);
/// `measuredSeconds` is always the real host wall time.
struct Timeline {
  double modeledSeconds = 0.0;
  double measuredSeconds = 0.0;
  std::uint64_t kernelLaunches = 0;
  std::uint64_t bytesCopied = 0;

  void reset() { *this = Timeline{}; }
};

/// The hardware interface. One instance per (framework, physical device).
class Device {
 public:
  virtual ~Device() = default;

  virtual const perf::DeviceProfile& profile() const = 0;
  virtual std::string frameworkName() const = 0;  ///< "CUDA" or "OpenCL"

  virtual BufferPtr alloc(std::size_t bytes) = 0;

  /// Sub-region addressing. The OpenCL runtime implements this with
  /// sub-buffer objects (clCreateSubBuffer semantics: alignment-checked,
  /// parent-owning); the CUDA runtime with plain pointer arithmetic —
  /// the exact distinction Section VII-A had to bridge.
  virtual BufferPtr subBuffer(const BufferPtr& parent, std::size_t offset,
                              std::size_t bytes) = 0;

  virtual void copyToDevice(Buffer& dst, std::size_t dstOffset, const void* src,
                            std::size_t bytes) = 0;
  virtual void copyToHost(void* dst, const Buffer& src, std::size_t srcOffset,
                          std::size_t bytes) = 0;

  /// Stream-scoped readback: drains only `stream` before copying, so other
  /// streams keep executing (the double-buffered root-result readback path).
  /// The caller guarantees no other stream has outstanding writes to the
  /// source region. Default: full-flush copyToHost (synchronous devices and
  /// single-stream devices lose nothing).
  virtual void copyToHostFromStream(void* dst, const Buffer& src,
                                    std::size_t srcOffset, std::size_t bytes,
                                    int /*stream*/) {
    copyToHost(dst, src, srcOffset, bytes);
  }

  /// Fetch (compiling and caching on first use) the kernel for `spec`.
  virtual Kernel* getKernel(const KernelSpec& spec) = 0;

  /// Launch a kernel. `work` feeds the device performance model. In the
  /// default synchronous mode the kernel has completed when this returns;
  /// with async mode enabled (setAsync) it is an enqueue onto the device's
  /// in-order command stream and errors may surface at a later launch,
  /// copy, or finish().
  virtual void launch(Kernel& kernel, const LaunchDims& dims,
                      const KernelArgs& args, const perf::LaunchWork& work,
                      const LaunchOptions& opts = {}) = 0;

  /// Zero `bytes` bytes of `buf` starting at `offset` on the device, without
  /// staging a host-side source. Default: direct memset of backing storage.
  /// Async devices may defer the fill; the shared_ptr pins the allocation.
  virtual void fillZero(const BufferPtr& buf, std::size_t offset,
                        std::size_t bytes) {
    std::memset(static_cast<std::byte*>(buf->data()) + offset, 0, bytes);
  }

  /// Block until all queued work completes.
  virtual void finish() = 0;

  /// Switch the device into (or out of) asynchronous command-stream mode.
  /// Devices without stream support ignore this and stay synchronous.
  virtual void setAsync(bool /*enabled*/) {}
  virtual bool asyncEnabled() const { return false; }

  /// Number of in-order command streams currently live (0 when synchronous).
  virtual int streamCount() const { return asyncEnabled() ? 1 : 0; }

  /// Request `n` in-order streams (clamped to the device's supported range).
  /// Only meaningful in async mode; existing queued work is drained first.
  /// Devices without multi-stream support keep a single stream.
  virtual void setStreamCount(int /*n*/) {}

  /// Enqueue a signal record on `stream` and return the event. Every record
  /// enqueued on `stream` before this call happens-before the signal.
  /// Returns null on synchronous devices (no cross-stream ordering needed).
  virtual StreamEventPtr recordEvent(int /*stream*/) { return nullptr; }

  /// Enqueue a wait record on `stream`: records enqueued on `stream` after
  /// this call execute only once `event` has signaled. Null events and
  /// synchronous devices are no-ops. Callers must only wait on events whose
  /// signal record is already enqueued, which keeps the cross-stream
  /// wait-for graph acyclic (edges point backward in global enqueue order).
  virtual void waitEvent(int /*stream*/, const StreamEventPtr& /*event*/) {}

  /// Restrict execution to `n` host workers (OpenCL device fission;
  /// ignored by devices that do not support it).
  virtual void setFission(unsigned /*n*/) {}

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// Zero the timeline. Multi-stream devices also reset their per-stream
  /// modeled clocks, which a plain `timeline().reset()` cannot reach.
  virtual void resetTimeline() { timeline_.reset(); }

  /// Attach the owning instance's trace recorder; the runtimes then emit
  /// kernel-launch and memcpy events (with device/framework/stream
  /// metadata) into it. Null detaches.
  void setRecorder(obs::TraceRecorder* recorder) { recorder_ = recorder; }
  obs::TraceRecorder* recorder() const { return recorder_; }

 protected:
  Timeline timeline_;
  obs::TraceRecorder* recorder_ = nullptr;
};

using DevicePtr = std::shared_ptr<Device>;

}  // namespace bgl::hal
