#include "core/gamma.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/defs.h"

namespace bgl {
namespace {

TEST(IncompleteGamma, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(incompleteGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(incompleteGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(IncompleteGamma, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(incompleteGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(incompleteGammaP(3.0, 100.0), 1.0, 1e-12);
  EXPECT_THROW(incompleteGammaP(-1.0, 1.0), Error);
  EXPECT_THROW(incompleteGammaP(1.0, -1.0), Error);
}

TEST(IncompleteGamma, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    const double v = incompleteGammaP(2.3, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ChiSquareQuantile, InverseOfCdf) {
  for (double v : {1.0, 2.0, 4.0, 10.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const double x = chiSquareQuantile(p, v);
      EXPECT_NEAR(incompleteGammaP(v / 2.0, x / 2.0), p, 1e-8)
          << "p=" << p << " v=" << v;
    }
  }
}

TEST(ChiSquareQuantile, KnownMedian) {
  // Median of chi2(2) is 2 ln 2.
  EXPECT_NEAR(chiSquareQuantile(0.5, 2.0), 2.0 * std::log(2.0), 1e-8);
}

TEST(ChiSquareQuantile, RejectsBadArguments) {
  EXPECT_THROW(chiSquareQuantile(0.0, 2.0), Error);
  EXPECT_THROW(chiSquareQuantile(1.0, 2.0), Error);
  EXPECT_THROW(chiSquareQuantile(0.5, -1.0), Error);
}

class DiscreteGammaParam : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DiscreteGammaParam, MeanIsOneAndRatesIncrease) {
  const auto [alpha, cats] = GetParam();
  const auto rates = discreteGammaRates(alpha, cats);
  ASSERT_EQ(static_cast<int>(rates.size()), cats);
  const double mean = std::accumulate(rates.begin(), rates.end(), 0.0) / cats;
  EXPECT_NEAR(mean, 1.0, 1e-6);
  for (int i = 1; i < cats; ++i) EXPECT_GT(rates[i], rates[i - 1]);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiscreteGammaParam,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0),
                       ::testing::Values(2, 4, 8, 16)));

TEST(DiscreteGamma, SingleCategoryIsRateOne) {
  const auto rates = discreteGammaRates(0.5, 1);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
}

TEST(DiscreteGamma, MedianRuleAlsoNormalized) {
  const auto rates = discreteGammaRates(0.7, 4, /*useMedian=*/true);
  const double mean = std::accumulate(rates.begin(), rates.end(), 0.0) / 4.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
}

TEST(DiscreteGamma, HighAlphaApproachesEqualRates) {
  const auto rates = discreteGammaRates(1000.0, 4);
  for (double r : rates) EXPECT_NEAR(r, 1.0, 0.05);
}

TEST(DiscreteGamma, LowAlphaIsStronglySkewed) {
  const auto rates = discreteGammaRates(0.1, 4);
  EXPECT_LT(rates[0], 0.01);
  EXPECT_GT(rates[3], 2.0);
}

TEST(DiscreteGamma, RejectsInvalidArguments) {
  EXPECT_THROW(discreteGammaRates(-1.0, 4), Error);
  EXPECT_THROW(discreteGammaRates(0.5, 0), Error);
}

}  // namespace
}  // namespace bgl
