// Eigendecomposition of time-reversible rate matrices.
//
// For a reversible CTMC generator Q with stationary distribution pi,
// B = D^{1/2} Q D^{-1/2} (D = diag(pi)) is symmetric, so Q can be
// diagonalized with a cyclic Jacobi sweep on B. The resulting system
// Q = E diag(lambda) E^{-1} drives transition-probability computation:
// P(t) = E diag(exp(lambda * t)) E^{-1}.
#pragma once

#include <vector>

#include "core/defs.h"

namespace bgl {

/// Dense eigendecomposition of a rate matrix: Q = evec * diag(eval) * ivec.
/// Row-major `evec`/`ivec` of dimension n x n; `eval` of length n.
struct EigenSystem {
  int states = 0;
  std::vector<double> evec;  ///< right eigenvectors (columns), row-major
  std::vector<double> ivec;  ///< inverse of evec, row-major
  std::vector<double> eval;  ///< eigenvalues
};

/// Jacobi eigenvalue iteration for a symmetric matrix (row-major, n x n).
/// Fills `eigenvalues` (length n) and `eigenvectors` (n x n, columns are
/// eigenvectors). Throws bgl::Error if convergence fails.
void jacobiEigenSymmetric(const double* matrix, int n,
                          std::vector<double>& eigenvalues,
                          std::vector<double>& eigenvectors);

/// Decompose a reversible rate matrix Q (row-major n x n) with stationary
/// frequencies pi (length n, strictly positive, summing to 1).
EigenSystem decomposeReversible(const double* q, const double* pi, int n);

/// General real decomposition check helper: reconstructs Q from an
/// EigenSystem; used by tests. Returns row-major n x n matrix.
std::vector<double> reconstructRateMatrix(const EigenSystem& es);

}  // namespace bgl
