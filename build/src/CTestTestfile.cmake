# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("hal")
subdirs("perfmodel")
subdirs("kernels")
subdirs("cudasim")
subdirs("clsim")
subdirs("cpu")
subdirs("accel")
subdirs("api")
subdirs("phylo")
subdirs("mc3")
subdirs("harness")
