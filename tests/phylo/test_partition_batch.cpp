// Single-instance multi-partition evaluation (PR 10): partitions batched
// onto one concatenated pattern axis must reproduce every partition's log
// likelihood BIT-FOR-BIT against a single-partition instance with the same
// options — on every implementation family, in sync, async and pipelined
// modes, with scaling on. Plus: per-partition failover, bounded evaluation
// concurrency, and cost-weighted resource auto-assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/bgl.h"
#include "core/defs.h"
#include "core/model.h"
#include "core/rng.h"
#include "perfmodel/device_profiles.h"
#include "phylo/likelihood.h"
#include "phylo/partition.h"
#include "phylo/seqsim.h"
#include "phylo/tree.h"
#include "sched/sched.h"

namespace bgl::phylo {
namespace {

constexpr int kTips = 9;

struct Problem {
  Tree tree;
  std::vector<std::unique_ptr<SubstitutionModel>> models;
  std::vector<PartitionSpec> specs;
};

/// A small phylogenomic dataset: `patternCounts.size()` gene partitions,
/// each with its own substitution model, over one shared tree.
Problem makeProblem(const std::vector<int>& patternCounts, int states = 4) {
  Rng rng(7100);
  Problem p;
  p.tree = Tree::random(kTips, rng);
  for (std::size_t q = 0; q < patternCounts.size(); ++q) {
    p.models.push_back(defaultModelForStates(states, 7100 + static_cast<int>(q)));
    PartitionSpec spec;
    spec.model = p.models.back().get();
    spec.data = simulatePatterns(p.tree, *spec.model, patternCounts[q], rng);
    p.specs.push_back(std::move(spec));
  }
  return p;
}

struct FamilyConfig {
  const char* label;
  long requirementFlags;
  int resource;
};

// The six implementation families of the bitwise-parity contract
// (docs/PERFORMANCE.md): CPU serial, futures, thread-create, thread-pool,
// and the two accelerator runtimes on simulated device profiles.
const FamilyConfig kFamilies[] = {
    {"cpu-serial", BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE, perf::kHostCpu},
    {"cpu-futures", BGL_FLAG_THREADING_FUTURES, perf::kHostCpu},
    {"cpu-thread-create", BGL_FLAG_THREADING_THREAD_CREATE, perf::kHostCpu},
    {"cpu-thread-pool", BGL_FLAG_THREADING_THREAD_POOL, perf::kHostCpu},
    {"cuda", BGL_FLAG_FRAMEWORK_CUDA, perf::kQuadroP5000},
    {"opencl", BGL_FLAG_FRAMEWORK_OPENCL, perf::kRadeonR9Nano},
};

const long kModes[] = {
    BGL_FLAG_COMPUTATION_SYNCH,
    BGL_FLAG_COMPUTATION_ASYNCH,
    BGL_FLAG_COMPUTATION_ASYNCH | BGL_FLAG_COMPUTATION_PIPELINE,
};
const char* kModeNames[] = {"sync", "async", "pipelined"};

class PartitionedBitIdentity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionedBitIdentity, MatchesPerInstanceReference) {
  const auto [familyIndex, modeIndex] = GetParam();
  const FamilyConfig& family = kFamilies[familyIndex];

  Problem p = makeProblem({150, 91, 200, 64, 139});
  for (auto& spec : p.specs) {
    spec.options.categories = 4;
    spec.options.useScaling = true;  // exercise per-partition scale ranges
    spec.options.resources = {family.resource};
    spec.options.requirementFlags = family.requirementFlags |
                                    BGL_FLAG_PRECISION_DOUBLE |
                                    kModes[modeIndex];
  }

  PartitionedLikelihood like(p.tree, p.specs, PartitionOptions{});
  // Same resource, same shape: everything batches into ONE instance.
  ASSERT_EQ(like.instanceCount(), 1) << family.label;
  const double total = like.logLikelihood(p.tree);
  ASSERT_TRUE(std::isfinite(total)) << family.label;

  double referenceTotal = 0.0;
  const auto& byPartition = like.partitionLogLikelihoods();
  ASSERT_EQ(byPartition.size(), p.specs.size());
  for (std::size_t q = 0; q < p.specs.size(); ++q) {
    TreeLikelihood reference(p.tree, *p.specs[q].model, p.specs[q].data,
                             p.specs[q].options);
    const double expected = reference.logLikelihood(p.tree);
    EXPECT_EQ(byPartition[q], expected)  // bitwise, not NEAR
        << family.label << " mode=" << kModeNames[modeIndex] << " partition=" << q;
    referenceTotal += expected;
  }
  EXPECT_EQ(total, referenceTotal) << family.label;
}

std::string bitIdentityName(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto [familyIndex, modeIndex] = info.param;
  std::string name = kFamilies[familyIndex].label;
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + kModeNames[modeIndex];
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PartitionedBitIdentity,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kFamilies))),
                       ::testing::Range(0, static_cast<int>(std::size(kModes)))),
    bitIdentityName);

// Partitions whose shapes differ (here: state counts) cannot share one
// pattern axis; they split into per-shape groups that are still exact.
TEST(PartitionedBatch, MixedShapesSplitIntoGroups) {
  Rng rng(7200);
  const Tree tree = Tree::random(kTips, rng);
  auto nucModel = defaultModelForStates(4, 11);
  auto aaModel = defaultModelForStates(20, 12);
  std::vector<PartitionSpec> specs(3);
  specs[0].model = nucModel.get();
  specs[0].data = simulatePatterns(tree, *nucModel, 120, rng);
  specs[1].model = aaModel.get();
  specs[1].data = simulatePatterns(tree, *aaModel, 75, rng);
  specs[2].model = nucModel.get();
  specs[2].data = simulatePatterns(tree, *nucModel, 80, rng);
  for (auto& spec : specs) {
    spec.options.categories = 4;
    spec.options.resources = {perf::kHostCpu};
    spec.options.requirementFlags =
        BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE | BGL_FLAG_PRECISION_DOUBLE;
  }

  PartitionedLikelihood like(tree, specs, PartitionOptions{});
  EXPECT_EQ(like.instanceCount(), 2);
  EXPECT_EQ(like.groupOf(0), like.groupOf(2));  // both nucleotide partitions
  EXPECT_NE(like.groupOf(0), like.groupOf(1));
  like.logLikelihood(tree);
  for (std::size_t q = 0; q < specs.size(); ++q) {
    TreeLikelihood reference(tree, *specs[q].model, specs[q].data,
                             specs[q].options);
    EXPECT_EQ(like.partitionLogLikelihoods()[q], reference.logLikelihood(tree))
        << "partition " << q;
  }
}

// The point of the PR: launch count stays O(tree depth), not
// O(depth x partitions). On a simulated device the flight recorder counts
// the real grid launches of one round for both layouts.
TEST(PartitionedBatch, BatchedLaunchCountCollapses) {
  Problem p = makeProblem({64, 64, 64, 64, 64, 64, 64, 64});
  for (auto& spec : p.specs) {
    spec.options.categories = 4;
    spec.options.resources = {perf::kQuadroP5000};
    spec.options.requirementFlags =
        BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE |
        BGL_FLAG_COMPUTATION_ASYNCH;
  }

  PartitionOptions batched;
  PartitionedLikelihood one(p.tree, p.specs, batched);
  const double batchedLogL = one.logLikelihood(p.tree);

  PartitionOptions legacy;
  legacy.batched = false;
  PartitionedLikelihood many(p.tree, p.specs, legacy);
  const double legacyLogL = many.logLikelihood(p.tree);

  EXPECT_EQ(batchedLogL, legacyLogL);  // same family, bitwise
  ASSERT_GT(one.lastKernelLaunches(), 0u);
  ASSERT_GT(many.lastKernelLaunches(), 0u);
  // 8 partitions in one instance: well under half the per-partition count.
  EXPECT_LT(2 * one.lastKernelLaunches(), many.lastKernelLaunches());
}

class PartitionedFailover : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS); }
};

TEST_F(PartitionedFailover, DeadResourceRehomesItsPartitions) {
  Problem p = makeProblem({90, 110, 70});
  // Partitions 0 and 2 on the simulated CUDA device, partition 1 on the
  // serial host CPU. The injected launch fault kills the device group; its
  // partitions must re-home onto a surviving resource and stay exact.
  for (std::size_t q = 0; q < p.specs.size(); ++q) {
    p.specs[q].options.categories = 4;
    if (q == 1) {
      p.specs[q].options.resources = {perf::kHostCpu};
      p.specs[q].options.requirementFlags = BGL_FLAG_FRAMEWORK_CPU |
                                            BGL_FLAG_THREADING_NONE |
                                            BGL_FLAG_VECTOR_NONE |
                                            BGL_FLAG_PRECISION_DOUBLE;
    } else {
      p.specs[q].options.resources = {perf::kQuadroP5000};
      p.specs[q].options.requirementFlags =
          BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE;
    }
  }

  PartitionOptions options;
  options.concurrent = false;  // deterministic fault firing order
  const auto before = sched::counters();
  PartitionedLikelihood like(p.tree, p.specs, options);
  ASSERT_EQ(like.instanceCount(), 2);

  ASSERT_EQ(bglSetFaultSpec("launch:1"), BGL_SUCCESS);
  const double total = like.logLikelihood(p.tree);
  ASSERT_TRUE(std::isfinite(total));
  EXPECT_GE(like.failoverCount(), 1);
  EXPECT_GE(sched::counters().failovers, before.failovers + 1);

  // Re-homed partitions keep their own flags, so the rebuilt groups still
  // produce per-partition values that match same-options references.
  for (std::size_t q = 0; q < p.specs.size(); ++q) {
    TreeLikelihood reference(p.tree, *p.specs[q].model, p.specs[q].data,
                             p.specs[q].options);
    EXPECT_EQ(like.partitionLogLikelihoods()[q], reference.logLikelihood(p.tree))
        << "partition " << q;
  }

  // Quarantine is permanent; later rounds run clean.
  ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);
  EXPECT_EQ(like.logLikelihood(p.tree), total);
}

TEST_F(PartitionedFailover, AllResourcesDeadEngagesCpuFallback) {
  Problem p = makeProblem({90, 110});
  for (auto& spec : p.specs) {
    spec.options.categories = 4;
    spec.options.resources = {perf::kQuadroP5000};
    spec.options.requirementFlags =
        BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE;
  }
  PartitionOptions options;
  options.concurrent = false;
  PartitionedLikelihood like(p.tree, p.specs, options);
  ASSERT_EQ(like.instanceCount(), 1);

  ASSERT_EQ(bglSetFaultSpec("launch:1"), BGL_SUCCESS);
  const double total = like.logLikelihood(p.tree);
  EXPECT_TRUE(like.usedCpuFallback());
  EXPECT_GE(like.failoverCount(), 1);

  // The fallback dropped the CUDA requirement: compare against host-CPU
  // references with the preserved precision.
  double expected = 0.0;
  for (auto& spec : p.specs) {
    LikelihoodOptions ref;
    ref.categories = spec.options.categories;
    ref.resources = {0};
    ref.requirementFlags = BGL_FLAG_FRAMEWORK_CPU | BGL_FLAG_PRECISION_DOUBLE;
    TreeLikelihood reference(p.tree, *spec.model, spec.data, ref);
    expected += reference.logLikelihood(p.tree);
  }
  EXPECT_EQ(total, expected);
}

TEST_F(PartitionedFailover, FailoverDisabledPropagatesTheError) {
  Problem p = makeProblem({90, 110});
  for (auto& spec : p.specs) {
    spec.options.categories = 4;
    spec.options.resources = {perf::kQuadroP5000};
    spec.options.requirementFlags =
        BGL_FLAG_FRAMEWORK_CUDA | BGL_FLAG_PRECISION_DOUBLE;
  }
  PartitionOptions options;
  options.concurrent = false;
  options.failover = false;
  PartitionedLikelihood like(p.tree, p.specs, options);

  ASSERT_EQ(bglSetFaultSpec("launch:1"), BGL_SUCCESS);
  try {
    like.logLikelihood(p.tree);
    FAIL() << "expected the injected fault to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), kErrHardware);
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos);
  }
}

// Satellite 1: evaluation concurrency is bounded. The legacy layout used
// to spawn one std::async thread per partition; both layouts now run a
// bounded worker team and report the observed peak.
TEST(PartitionedConcurrency, PeakNeverExceedsTheCap) {
  Problem p = makeProblem({40, 40, 40, 40, 40, 40, 40, 40, 40, 40});
  for (auto& spec : p.specs) {
    spec.options.categories = 2;
    spec.options.resources = {perf::kHostCpu};
    spec.options.requirementFlags =
        BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE | BGL_FLAG_PRECISION_DOUBLE;
  }
  PartitionOptions options;
  options.batched = false;  // ten instances to schedule
  options.maxConcurrency = 2;
  PartitionedLikelihood like(p.tree, p.specs, options);
  const double total = like.logLikelihood(p.tree);
  ASSERT_TRUE(std::isfinite(total));
  EXPECT_EQ(like.instanceCount(), 10);
  EXPECT_GE(like.peakConcurrency(), 1);
  EXPECT_LE(like.peakConcurrency(), 2);

  double expected = 0.0;
  for (std::size_t q = 0; q < p.specs.size(); ++q) {
    TreeLikelihood reference(p.tree, *p.specs[q].model, p.specs[q].data,
                             p.specs[q].options);
    expected += reference.logLikelihood(p.tree);
  }
  EXPECT_EQ(total, expected);  // index-order summation preserved
}

// Satellite 2: autoAssignResources ranks partitions by the scheduler's
// full cost estimate (patterns x states x categories work), so a short
// codon partition outranks a much longer nucleotide one.
TEST(PartitionAutoAssign, RanksByCostNotPatternCount) {
  auto codon = defaultModelForStates(61, 21);
  auto nuc = defaultModelForStates(4, 22);
  std::vector<PartitionSpec> specs(2);
  specs[0].model = nuc.get();        // many patterns, tiny per-pattern work
  specs[0].data.patterns = 2000;
  specs[0].options.categories = 1;
  specs[1].model = codon.get();      // few patterns, huge per-pattern work
  specs[1].data.patterns = 200;
  specs[1].options.categories = 4;

  autoAssignResources(specs, /*benchmark=*/false);
  ASSERT_EQ(specs[0].options.resources.size(), 1u);
  ASSERT_EQ(specs[1].options.resources.size(), 1u);

  const auto estimates = sched::resourceEstimates({}, {}, /*benchmark=*/false);
  ASSERT_GE(estimates.size(), 2u);
  std::vector<const sched::ResourceEstimate*> ranked;
  for (const auto& e : estimates) ranked.push_back(&e);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const sched::ResourceEstimate* a,
                      const sched::ResourceEstimate* b) {
                     return a->patternsPerSecond > b->patternsPerSecond;
                   });
  // The codon partition is the costlier one: it gets the fastest resource.
  EXPECT_EQ(specs[1].options.resources[0], ranked[0]->resource);
  EXPECT_EQ(specs[0].options.resources[0], ranked[1]->resource);
}

}  // namespace
}  // namespace bgl::phylo
