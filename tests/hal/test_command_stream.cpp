// Semantics of the asynchronous in-order command stream (the PR's launch
// model): enqueue order is execution order, maximal concurrent runs fuse
// into one dispatch, flush() drains and surfaces deferred errors, and the
// device-level async mode defers work until finish()/readback.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "clsim/cl_runtime.h"
#include "cudasim/cuda_device.h"
#include "hal/command_stream.h"
#include "perfmodel/device_profiles.h"

namespace bgl {
namespace {

hal::LaunchRecord kernelRecord(int id, bool concurrent) {
  hal::LaunchRecord rec;
  rec.kind = hal::LaunchRecord::Kind::Kernel;
  rec.args.ints[0] = id;
  rec.concurrentWithPrevious = concurrent;
  return rec;
}

/// Collects the (id, run-length) structure the worker delivers. A `gate`
/// promise lets tests hold the worker inside the first run so subsequent
/// enqueues deterministically pile up behind it.
struct RunLog {
  std::vector<std::vector<int>> runs;
  std::promise<void> gate;

  hal::CommandStream::RunExecutor executor() {
    return [this](const hal::LaunchRecord* recs, std::size_t n) {
      std::vector<int> run;
      for (std::size_t i = 0; i < n; ++i) {
        run.push_back(static_cast<int>(recs[i].args.ints[0]));
      }
      if (!run.empty() && run.front() == -1) gate.get_future().wait();
      runs.push_back(std::move(run));
    };
  }
};

TEST(CommandStream, ExecutesInEnqueueOrder) {
  RunLog log;
  {
    hal::CommandStream stream(log.executor());
    for (int i = 0; i < 16; ++i) stream.enqueue(kernelRecord(i, false));
    stream.flush();
  }
  std::vector<int> flat;
  for (const auto& run : log.runs) flat.insert(flat.end(), run.begin(), run.end());
  ASSERT_EQ(flat.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(flat[static_cast<std::size_t>(i)], i);
}

TEST(CommandStream, ConcurrentRunsCoalesceIntoOneDispatch) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  // Hold the worker in the gate record so the level below queues up whole.
  stream.enqueue(kernelRecord(-1, false));
  stream.enqueue(kernelRecord(0, false));
  stream.enqueue(kernelRecord(1, true));
  stream.enqueue(kernelRecord(2, true));
  stream.enqueue(kernelRecord(3, false));  // new run: not concurrent
  stream.enqueue(kernelRecord(4, true));
  log.gate.set_value();
  stream.flush();
  ASSERT_EQ(log.runs.size(), 3u);
  EXPECT_EQ(log.runs[0], std::vector<int>({-1}));
  EXPECT_EQ(log.runs[1], std::vector<int>({0, 1, 2}));
  EXPECT_EQ(log.runs[2], std::vector<int>({3, 4}));
}

TEST(CommandStream, FillRecordsNeverFuse) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  stream.enqueue(kernelRecord(-1, false));
  stream.enqueue(kernelRecord(0, false));
  hal::LaunchRecord fill;
  fill.kind = hal::LaunchRecord::Kind::Fill;
  fill.args.ints[0] = 100;
  fill.concurrentWithPrevious = true;  // must be ignored for fills
  stream.enqueue(fill);
  stream.enqueue(kernelRecord(1, true));  // cannot fuse across the fill
  log.gate.set_value();
  stream.flush();
  ASSERT_EQ(log.runs.size(), 4u);
  EXPECT_EQ(log.runs[1], std::vector<int>({0}));
  EXPECT_EQ(log.runs[2], std::vector<int>({100}));
  EXPECT_EQ(log.runs[3], std::vector<int>({1}));
}

TEST(CommandStream, TracksQueueDepthHighWaterMark) {
  RunLog log;
  hal::CommandStream stream(log.executor());
  stream.enqueue(kernelRecord(-1, false));
  for (int i = 0; i < 8; ++i) stream.enqueue(kernelRecord(i, false));
  EXPECT_GE(stream.pendingDepth(), 8u);
  log.gate.set_value();
  stream.flush();
  EXPECT_EQ(stream.pendingDepth(), 0u);
  EXPECT_GE(stream.maxDepth(), 8u);
}

TEST(CommandStream, FlushRethrowsDeferredErrorAndDropsLaterRecords) {
  std::vector<int> executed;
  hal::CommandStream stream([&executed](const hal::LaunchRecord* recs,
                                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const int id = static_cast<int>(recs[i].args.ints[0]);
      if (id == 13) throw std::runtime_error("injected worker failure");
      executed.push_back(id);
    }
  });
  stream.enqueue(kernelRecord(1, false));
  stream.enqueue(kernelRecord(13, false));
  stream.enqueue(kernelRecord(2, false));  // enqueued after the failure: dropped
  EXPECT_THROW(stream.flush(), std::runtime_error);
  // The error is cleared: the stream remains usable afterwards.
  stream.enqueue(kernelRecord(3, false));
  EXPECT_NO_THROW(stream.flush());
  EXPECT_EQ(executed, std::vector<int>({1, 3}));
}

TEST(CommandStream, DestructorDrainsWithoutFlush) {
  std::vector<int> executed;
  {
    hal::CommandStream stream(
        [&executed](const hal::LaunchRecord* recs, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) {
            executed.push_back(static_cast<int>(recs[i].args.ints[0]));
          }
        });
    stream.enqueue(kernelRecord(7, false));
    stream.enqueue(kernelRecord(8, true));
  }
  EXPECT_EQ(executed, std::vector<int>({7, 8}));
}

// ---------------------------------------------------------------------
// failed_ error-latch thread-safety regression (the PR 9 bugfix): the
// worker thread polls the latch while another thread latches and clears
// it through flush(). Before failed_ became atomic this was a data race
// TSan flags (CI runs this suite under -fsanitize=thread).
// ---------------------------------------------------------------------

TEST(CommandStream, ErrorLatchIsThreadSafeUnderConcurrentFlush) {
  std::atomic<int> executed{0};
  hal::CommandStream stream(
      [&executed](const hal::LaunchRecord* recs, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
          if (recs[i].args.ints[0] < 0) throw std::runtime_error("injected");
          executed.fetch_add(1, std::memory_order_relaxed);
        }
      });
  std::atomic<bool> stop{false};
  // One thread flushes in a loop (clearing the latch each time an injected
  // failure surfaces) while this thread keeps enqueuing records that keep
  // re-latching it on the worker.
  std::thread flusher([&stream, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        stream.flush();
      } catch (const std::runtime_error&) {
      }
    }
  });
  for (int i = 0; i < 4000; ++i) {
    stream.enqueue(kernelRecord(i % 7 == 0 ? -1 : i, false));
  }
  stop.store(true, std::memory_order_relaxed);
  flusher.join();
  try {
    stream.flush();
  } catch (const std::runtime_error&) {
  }
  // flush() cleared whatever was latched: the stream must be usable again.
  const int before = executed.load();
  stream.enqueue(kernelRecord(1, false));
  EXPECT_NO_THROW(stream.flush());
  EXPECT_EQ(executed.load(), before + 1);
}

// ---------------------------------------------------------------------
// Cross-stream events: Signal/Wait records, their ordering guarantees,
// and the no-deadlock error-path contract.
// ---------------------------------------------------------------------

hal::LaunchRecord signalRecord(const hal::StreamEventPtr& event) {
  hal::LaunchRecord rec;
  rec.kind = hal::LaunchRecord::Kind::Signal;
  rec.event = event;
  return rec;
}

hal::LaunchRecord waitRecord(const hal::StreamEventPtr& event) {
  hal::LaunchRecord rec;
  rec.kind = hal::LaunchRecord::Kind::Wait;
  rec.event = event;
  return rec;
}

TEST(CommandStream, WaitOrdersWorkAfterSignalingStream) {
  const auto event = std::make_shared<hal::StreamEvent>();
  std::vector<int> order;
  std::mutex orderMutex;
  std::promise<void> gate;
  auto gateFuture = gate.get_future().share();
  const auto logger = [&order, &orderMutex, gateFuture](int tag) {
    return [&order, &orderMutex, gateFuture, tag](const hal::LaunchRecord* recs,
                                                  std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (recs[i].kind != hal::LaunchRecord::Kind::Kernel) continue;
        const int id = static_cast<int>(recs[i].args.ints[0]);
        if (id == -1) {
          gateFuture.wait();  // hold this worker until the test releases it
          continue;
        }
        std::lock_guard lock(orderMutex);
        order.push_back(tag * 100 + id);
      }
    };
  };

  hal::CommandStream producer(logger(1));
  hal::CommandStream consumer(logger(2));

  // Hold the producer in a gate so the Signal provably has not fired while
  // the consumer's Wait is already pending on its worker.
  producer.enqueue(kernelRecord(-1, false));
  producer.enqueue(kernelRecord(1, false));
  producer.enqueue(signalRecord(event));
  consumer.enqueue(waitRecord(event));
  consumer.enqueue(kernelRecord(2, false));

  EXPECT_FALSE(event->signaled());
  gate.set_value();
  producer.flush();
  consumer.flush();
  EXPECT_TRUE(event->signaled());

  std::lock_guard lock(orderMutex);
  ASSERT_EQ(order.size(), 2u);
  // Producer's payload kernel (101) retired before the consumer's (202).
  EXPECT_EQ(order[0], 101);
  EXPECT_EQ(order[1], 202);
}

TEST(CommandStream, SignalStillFiresWhenExecutorThrows) {
  const auto event = std::make_shared<hal::StreamEvent>();
  hal::CommandStream stream([](const hal::LaunchRecord*, std::size_t) {
    throw std::runtime_error("every record fails");
  });
  stream.enqueue(signalRecord(event));
  EXPECT_THROW(stream.flush(), std::runtime_error);
  // A dependent stream waiting on this event must not deadlock.
  EXPECT_TRUE(event->signaled());
}

TEST(CommandStream, SignalStillFiresOnErrorDropPath) {
  const auto event = std::make_shared<hal::StreamEvent>();
  hal::CommandStream stream([](const hal::LaunchRecord* recs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (recs[i].args.ints[0] == 13) throw std::runtime_error("injected");
    }
  });
  stream.enqueue(kernelRecord(13, false));
  // Enqueued after the failure latches: the record is dropped, but its
  // signal must still fire or a waiting stream would hang forever.
  stream.enqueue(signalRecord(event));
  EXPECT_THROW(stream.flush(), std::runtime_error);
  EXPECT_TRUE(event->signaled());
}

TEST(CommandStream, WaitsAreSkippedAfterErrorLatches) {
  // A Wait on a never-signaled event after the latch must not block the
  // worker: the error-drop path skips waits entirely.
  const auto neverSignaled = std::make_shared<hal::StreamEvent>();
  hal::CommandStream stream([](const hal::LaunchRecord* recs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (recs[i].args.ints[0] == 13) throw std::runtime_error("injected");
    }
  });
  stream.enqueue(kernelRecord(13, false));
  stream.enqueue(waitRecord(neverSignaled));
  stream.enqueue(kernelRecord(1, false));
  EXPECT_THROW(stream.flush(), std::runtime_error);  // returns: no deadlock
  EXPECT_FALSE(neverSignaled->signaled());
}

TEST(CommandStream, SignalAndWaitNeverFuseWithKernels) {
  RunLog log;
  const auto event = std::make_shared<hal::StreamEvent>();
  hal::CommandStream stream(log.executor());
  stream.enqueue(kernelRecord(-1, false));
  stream.enqueue(kernelRecord(0, false));
  auto sig = signalRecord(event);
  sig.concurrentWithPrevious = true;  // must be ignored for signals
  stream.enqueue(std::move(sig));
  stream.enqueue(kernelRecord(1, true));  // cannot fuse across the signal
  log.gate.set_value();
  stream.flush();
  ASSERT_EQ(log.runs.size(), 4u);
  EXPECT_EQ(log.runs[1], std::vector<int>({0}));
  EXPECT_EQ(log.runs[2].size(), 1u);  // the signal, alone
  EXPECT_EQ(log.runs[3], std::vector<int>({1}));
  EXPECT_TRUE(event->signaled());
}

// ---------------------------------------------------------------------
// Device-level async mode: both simulated frameworks defer launches onto
// the stream and drain at finish() / host readback, with identical results
// and the same launch accounting as the synchronous mode.
// ---------------------------------------------------------------------

void exerciseAsyncDevice(hal::Device& dev) {
  dev.setAsync(true);
  EXPECT_TRUE(dev.asyncEnabled());

  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev.getKernel(spec);

  std::vector<double> ones(256, 1.0);
  auto buf = dev.alloc(256 * sizeof(double));
  dev.copyToDevice(*buf, 0, ones.data(), 256 * sizeof(double));

  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 256;
  dev.launch(*kernel, {1, 1, 0}, args, {});
  dev.launch(*kernel, {1, 1, 0}, args, {});
  dev.finish();
  EXPECT_EQ(dev.timeline().kernelLaunches, 2u);

  // Readback drains the stream implicitly: the data is the kernel's output.
  std::vector<double> out(256, -1.0);
  dev.copyToHost(out.data(), *buf, 0, 256 * sizeof(double));
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);

  // fillZero is a stream record too, ordered after the launches.
  dev.copyToDevice(*buf, 0, ones.data(), 256 * sizeof(double));
  dev.fillZero(buf, 0, 128 * sizeof(double));
  dev.copyToHost(out.data(), *buf, 0, 256 * sizeof(double));
  for (int i = 0; i < 128; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 0.0);
  for (int i = 128; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 1.0);
  }
}

TEST(AsyncDevice, CudaRuntimeDefersAndDrains) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  exerciseAsyncDevice(*dev);
}

TEST(AsyncDevice, OpenClRuntimeDefersAndDrains) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  exerciseAsyncDevice(*dev);
}

TEST(AsyncDevice, SynchronousRemainsTheDefault) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  EXPECT_FALSE(dev->asyncEnabled());
}

// ---------------------------------------------------------------------
// Multi-stream device model: several in-order streams per device, event
// fences between them, stream-scoped readbacks, per-stream modeled clocks.
// ---------------------------------------------------------------------

void exerciseMultiStreamDevice(hal::Device& dev) {
  dev.setStreamCount(2);
  dev.setAsync(true);
  ASSERT_EQ(dev.streamCount(), 2);

  hal::KernelSpec spec;
  spec.id = hal::KernelId::ResetScale;
  spec.states = 4;
  auto* kernel = dev.getKernel(spec);

  std::vector<double> ones(256, 1.0);
  auto buf = dev.alloc(256 * sizeof(double));
  dev.copyToDevice(*buf, 0, ones.data(), 256 * sizeof(double));

  // Producer kernel on stream 1 zeroes the buffer; the consumer readback on
  // stream 0 is fenced behind it by an event. Correct data through the
  // stream-scoped readback proves the Wait ordered the cross-stream edge.
  hal::KernelArgs args;
  args.buffers[0] = buf->data();
  args.ints[0] = 256;
  hal::LaunchOptions opts;
  opts.stream = 1;
  dev.launch(*kernel, {1, 1, 0}, args, {}, opts);
  const auto ready = dev.recordEvent(1);
  ASSERT_NE(ready, nullptr);
  dev.waitEvent(0, ready);

  std::vector<double> out(256, -1.0);
  dev.copyToHostFromStream(out.data(), *buf, 0, 256 * sizeof(double), 0);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(ready->signaled());

  // Same-stream Signal-then-Wait retires in order: a pipelined caller on a
  // degraded 1-stream device must not deadlock.
  dev.setStreamCount(1);
  EXPECT_EQ(dev.streamCount(), 1);
  dev.waitEvent(0, dev.recordEvent(0));
  dev.finish();

  // Out-of-range stream indices clamp instead of crashing.
  opts.stream = 7;
  dev.launch(*kernel, {1, 1, 0}, args, {}, opts);
  dev.finish();

  // resetTimeline() zeroes the device timeline and every stream clock.
  dev.resetTimeline();
  EXPECT_EQ(dev.timeline().modeledSeconds, 0.0);
  EXPECT_EQ(dev.timeline().kernelLaunches, 0u);

  // Stream counts clamp to the supported range.
  dev.setStreamCount(64);
  EXPECT_LE(dev.streamCount(), 8);
  dev.setStreamCount(0);
  EXPECT_EQ(dev.streamCount(), 1);
}

TEST(MultiStreamDevice, CudaRuntimeFencesAcrossStreams) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  exerciseMultiStreamDevice(*dev);
}

TEST(MultiStreamDevice, OpenClRuntimeFencesAcrossStreams) {
  auto dev = clsim::createDeviceByProfile(perf::kHostCpu);
  exerciseMultiStreamDevice(*dev);
}

TEST(MultiStreamDevice, SynchronousDeviceHasNoStreamsOrEvents) {
  auto dev = cudasim::createDevice(perf::kHostCpu);
  EXPECT_EQ(dev->streamCount(), 0);
  EXPECT_EQ(dev->recordEvent(0), nullptr);
  // waitEvent on a sync device is a no-op, not a crash.
  dev->waitEvent(0, nullptr);
}

TEST(MultiStreamDevice, ModeledClocksTakeCriticalPathNotSum) {
  // On a simulated profile the timeline is the roofline model. Two streams
  // each running one identical kernel must advance the device's modeled
  // time by ~one kernel, not two: the clocks run concurrently and
  // modeledSeconds is their max (the critical path).
  auto serial = cudasim::createDevice(perf::kQuadroP5000);
  auto parallel = cudasim::createDevice(perf::kQuadroP5000);

  const auto runTwoKernels = [](hal::Device& dev, int secondStream) {
    dev.setStreamCount(2);
    dev.setAsync(true);
    hal::KernelSpec spec;
    spec.id = hal::KernelId::ResetScale;
    spec.states = 4;
    auto* kernel = dev.getKernel(spec);
    auto buf = dev.alloc(4096 * sizeof(double));
    hal::KernelArgs args;
    args.buffers[0] = buf->data();
    args.ints[0] = 4096;
    perf::LaunchWork work;
    work.flops = 1e7;
    work.bytes = 4096 * sizeof(double);
    work.numGroups = 8;
    hal::LaunchOptions opts;
    opts.stream = 0;
    dev.launch(*kernel, {8, 64, 0}, args, work, opts);
    opts.stream = secondStream;
    dev.launch(*kernel, {8, 64, 0}, args, work, opts);
    dev.finish();
    return dev.timeline().modeledSeconds;
  };

  const double sumSeconds = runTwoKernels(*serial, 0);       // same stream
  const double maxSeconds = runTwoKernels(*parallel, 1);     // split streams
  EXPECT_GT(sumSeconds, 0.0);
  // The split run models the two kernels as overlapped: it must cost about
  // half the serial run (allow slack for launch-overhead terms).
  EXPECT_LT(maxSeconds, 0.75 * sumSeconds);
}

}  // namespace
}  // namespace bgl
