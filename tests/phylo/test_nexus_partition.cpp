#include <gtest/gtest.h>

#include <cmath>

#include "core/defs.h"
#include "core/model.h"
#include "perfmodel/device_profiles.h"
#include "phylo/nexus.h"
#include "phylo/partition.h"
#include "phylo/seqsim.h"

namespace bgl::phylo {
namespace {

constexpr const char* kSmallNexus = R"(#NEXUS
[ comment at top ]
BEGIN DATA;
  DIMENSIONS NTAX=4 NCHAR=12;
  FORMAT DATATYPE=DNA GAP=- MISSING=?;
  MATRIX
    human    ACGTACGTACGT
    chimp    ACGTACGTACGA
    gorilla  ACGTACGAACGT
    orang    ACG-ACGAACG?
  ;
END;
BEGIN TREES;
  TRANSLATE 1 human, 2 chimp, 3 gorilla, 4 orang;
  TREE start = ((1:0.1,2:0.1):0.05,(3:0.2,4:0.25):0.03);
END;
)";

TEST(Nexus, ParsesDataBlock) {
  const auto nexus = parseNexus(kSmallNexus);
  EXPECT_EQ(nexus.taxa, 4);
  EXPECT_EQ(nexus.characters, 12);
  EXPECT_EQ(nexus.dataType, NexusDataType::Dna);
  ASSERT_EQ(nexus.taxonNames.size(), 4u);
  EXPECT_EQ(nexus.taxonNames[0], "human");
  EXPECT_EQ(nexus.sequences[3], "ACG-ACGAACG?");
}

TEST(Nexus, EncodesStatesWithGapsAndMissing) {
  const auto nexus = parseNexus(kSmallNexus);
  const auto states = nexus.encodeStates();
  ASSERT_EQ(states.size(), 48u);
  EXPECT_EQ(states[0], 0);                 // A
  EXPECT_EQ(states[1], 1);                 // C
  EXPECT_EQ(states[3 * 12 + 3], -1);       // gap in orang
  EXPECT_EQ(states[3 * 12 + 11], -1);      // missing in orang
}

TEST(Nexus, ParsesTreesWithTranslateTable) {
  const auto nexus = parseNexus(kSmallNexus);
  ASSERT_EQ(nexus.trees.size(), 1u);
  EXPECT_EQ(nexus.trees[0].first, "start");
  const Tree& tree = nexus.trees[0].second;
  EXPECT_EQ(tree.tipCount(), 4);
  EXPECT_NEAR(tree.totalLength(), 0.1 + 0.1 + 0.05 + 0.2 + 0.25 + 0.03, 1e-9);
}

TEST(Nexus, InterleavedMatrix) {
  const char* text = R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=8;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ACGT
    b TTTT
    a ACGT
    b CCCC
  ;
END;
)";
  const auto nexus = parseNexus(text);
  EXPECT_EQ(nexus.sequences[0], "ACGTACGT");
  EXPECT_EQ(nexus.sequences[1], "TTTTCCCC");
}

TEST(Nexus, ProteinDatatype) {
  const char* text = R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=4;
  FORMAT DATATYPE=PROTEIN;
  MATRIX
    a ACDE
    b WYVK
  ;
END;
)";
  const auto nexus = parseNexus(text);
  EXPECT_EQ(nexus.dataType, NexusDataType::Protein);
  const auto states = nexus.encodeStates();
  EXPECT_EQ(states[0], 0);   // A
  EXPECT_EQ(states[4], 18);  // W
}

TEST(Nexus, RoundTripThroughWriter) {
  const auto nexus = parseNexus(kSmallNexus);
  const auto back = parseNexus(writeNexus(nexus));
  EXPECT_EQ(back.taxa, nexus.taxa);
  EXPECT_EQ(back.sequences, nexus.sequences);
  ASSERT_EQ(back.trees.size(), 1u);
  EXPECT_EQ(back.trees[0].second.toNewick(), nexus.trees[0].second.toNewick());
}

TEST(Nexus, RejectsMalformedInput) {
  EXPECT_THROW(parseNexus("not nexus at all"), Error);
  EXPECT_THROW(parseNexus("#NEXUS BEGIN DATA; MATRIX a ACGT;END;"), Error);
  // Sequence length mismatch.
  EXPECT_THROW(parseNexus(R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=4;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ACGT
    b ACG
  ;
END;)"),
               Error);
}

TEST(Nexus, SkipsUnknownBlocks) {
  const char* text = R"(#NEXUS
BEGIN MRBAYES;
  set autoclose=yes;
  mcmc ngen=1000;
END;
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=4;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ACGT
    b ACGT
  ;
END;
)";
  const auto nexus = parseNexus(text);
  EXPECT_EQ(nexus.taxa, 2);
}

// --- Pattern splitting / partitioned analyses --------------------------------

struct SplitFixture {
  Tree tree;
  std::unique_ptr<SubstitutionModel> model;
  PatternSet data;

  SplitFixture() {
    Rng rng(512);
    tree = Tree::random(7, rng, 0.1);
    model = std::make_unique<HKY85Model>(2.0,
                                         std::vector<double>{0.3, 0.25, 0.2, 0.25});
    data = simulatePatterns(tree, *model, 600, rng);
  }
};

TEST(SplitPatterns, PreservesPatternsAndWeights) {
  SplitFixture f;
  const auto shards = splitPatterns(f.data, 3);
  ASSERT_EQ(shards.size(), 3u);
  int total = 0;
  double weight = 0.0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.taxa, f.data.taxa);
    total += shard.patterns;
    for (double w : shard.weights) weight += w;
  }
  EXPECT_EQ(total, f.data.patterns);
  double originalWeight = 0.0;
  for (double w : f.data.weights) originalWeight += w;
  EXPECT_DOUBLE_EQ(weight, originalWeight);
}

TEST(SplitPatterns, MoreShardsThanPatternsClamps) {
  SplitFixture f;
  PatternSet tiny = f.data;
  // keep only 2 patterns
  tiny.patterns = 2;
  tiny.weights = {1.0, 2.0};
  tiny.states.resize(static_cast<std::size_t>(tiny.taxa) * 2);
  const auto shards = splitPatterns(tiny, 5);
  EXPECT_EQ(shards.size(), 2u);
}

TEST(SplitLikelihood, ShardsSumToSingleInstanceValue) {
  SplitFixture f;
  LikelihoodOptions base;
  base.categories = 4;
  TreeLikelihood whole(f.tree, *f.model, f.data, base);
  const double reference = whole.logLikelihood();

  // Three shards across three different (framework, resource) combos —
  // the conclusion's multi-device execution.
  std::vector<LikelihoodOptions> shardOptions(3, base);
  shardOptions[0].requirementFlags = BGL_FLAG_FRAMEWORK_CPU;
  shardOptions[1].requirementFlags = BGL_FLAG_FRAMEWORK_CUDA;
  shardOptions[1].resources = {perf::kQuadroP5000};
  shardOptions[2].requirementFlags = BGL_FLAG_FRAMEWORK_OPENCL;
  shardOptions[2].resources = {perf::kRadeonR9Nano};

  SplitLikelihood split(f.tree, *f.model, f.data, shardOptions);
  EXPECT_EQ(split.shardCount(), 3);
  EXPECT_NEAR(split.logLikelihood(f.tree), reference, std::abs(reference) * 1e-9);
}

TEST(SplitLikelihood, ConcurrentAndSerialAgree) {
  SplitFixture f;
  std::vector<LikelihoodOptions> opts(4);
  SplitLikelihood serial(f.tree, *f.model, f.data, opts, /*concurrent=*/false);
  SplitLikelihood parallel(f.tree, *f.model, f.data, opts, /*concurrent=*/true);
  const double a = serial.logLikelihood(f.tree);
  const double b = parallel.logLikelihood(f.tree);
  EXPECT_NEAR(a, b, std::abs(a) * 1e-12);
}

TEST(PartitionedLikelihood, SumsPartitionLikelihoods) {
  SplitFixture f;
  Rng rng(99);
  // Second partition: codon data on the same tree.
  GY94CodonModel codon = GY94CodonModel::equalFrequencies(2.0, 0.5);
  auto codonData = simulatePatterns(f.tree, codon, 90, rng);

  LikelihoodOptions nucOpts;
  LikelihoodOptions codonOpts;
  codonOpts.categories = 1;
  codonOpts.useScaling = true;

  TreeLikelihood nucOnly(f.tree, *f.model, f.data, nucOpts);
  TreeLikelihood codonOnly(f.tree, codon, codonData, codonOpts);
  const double expected = nucOnly.logLikelihood() + codonOnly.logLikelihood();

  std::vector<PartitionSpec> specs(2);
  specs[0].data = f.data;
  specs[0].model = f.model.get();
  specs[0].options = nucOpts;
  specs[1].data = codonData;
  specs[1].model = &codon;
  specs[1].options = codonOpts;
  PartitionedLikelihood partitioned(f.tree, specs);
  EXPECT_EQ(partitioned.partitionCount(), 2);
  EXPECT_NEAR(partitioned.logLikelihood(f.tree), expected,
              std::abs(expected) * 1e-9);
}

TEST(PartitionedLikelihood, RejectsEmptyAndNull) {
  SplitFixture f;
  EXPECT_THROW(PartitionedLikelihood(f.tree, {}), Error);
  std::vector<PartitionSpec> specs(1);
  specs[0].data = f.data;
  specs[0].model = nullptr;
  EXPECT_THROW(PartitionedLikelihood(f.tree, specs), Error);
}

}  // namespace
}  // namespace bgl::phylo
