// Serving-layer pool and admission control (src/serve/): free-list
// recycling, grow-on-demand reinit, idle eviction, per-tenant quotas,
// backpressure and load shedding, and the host:alloc fault checkpoint.
// The pool is process-global and its counters are monotone, so every
// assertion below works on deltas taken inside the test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/pool.h"
#include "tests/serve/serve_test_util.h"

namespace bgl {
namespace {

using serve_test::addRandomTaxa;
using serve_test::resetServing;
using serve_test::setDefaultModel;

class ServePool : public ::testing::Test {
 protected:
  void SetUp() override { resetServing(); }
  void TearDown() override {
    ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);
    resetServing();
  }

  static BglPoolStatistics stats() {
    BglPoolStatistics s{};
    EXPECT_EQ(bglPoolGetStatistics(&s), BGL_SUCCESS);
    return s;
  }

  /// Journal records appended after `sinceSequence` with the given kind.
  static int journalCountSince(int kind, unsigned long long sinceSequence) {
    int total = 0;
    if (bglGetJournal(nullptr, 0, &total) != BGL_SUCCESS || total == 0) return 0;
    std::vector<BglJournalRecord> records(static_cast<std::size_t>(total));
    int count = 0;
    if (bglGetJournal(records.data(), total, &count) != BGL_SUCCESS) return 0;
    int matches = 0;
    for (int i = 0; i < count; ++i) {
      // Sequences are zero-based: with N records ever appended, the next
      // one gets sequence N.
      if (records[i].kind == kind && records[i].sequence >= sinceSequence) {
        ++matches;
      }
    }
    return matches;
  }

  static unsigned long long journalHead() {
    BglProcessStatistics process{};
    EXPECT_EQ(bglGetProcessStatistics(&process), BGL_SUCCESS);
    return process.journalRecords;
  }
};

TEST_F(ServePool, QuantizesTipCapacityToPowerOfTwoBuckets) {
  EXPECT_EQ(serve::quantizeTipCapacity(0), serve::kMinTipCapacity);
  EXPECT_EQ(serve::quantizeTipCapacity(1), 8);
  EXPECT_EQ(serve::quantizeTipCapacity(8), 8);
  EXPECT_EQ(serve::quantizeTipCapacity(9), 16);
  EXPECT_EQ(serve::quantizeTipCapacity(17), 32);
  EXPECT_EQ(serve::quantizeTipCapacity(33), 64);
}

TEST_F(ServePool, RecyclesFreedInstancesByShapeClass) {
  const auto before = stats();

  const int a = bglSessionOpen("alpha", 4, 64, 2, 0, 0, 0);
  ASSERT_GE(a, 0);
  BglSessionDetails details{};
  ASSERT_EQ(bglSessionGetDetails(a, &details), BGL_SUCCESS);
  const int firstInstance = details.instance;
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);

  // Same shape class: the freed instance is recycled (LIFO), not re-created.
  const int b = bglSessionOpen("beta", 4, 64, 2, 0, 0, 0);
  ASSERT_GE(b, 0);
  ASSERT_EQ(bglSessionGetDetails(b, &details), BGL_SUCCESS);
  EXPECT_EQ(details.instance, firstInstance);

  // A different shape class must NOT reuse it.
  const int c = bglSessionOpen("gamma", 4, 128, 2, 0, 0, 0);
  ASSERT_GE(c, 0);
  BglSessionDetails other{};
  ASSERT_EQ(bglSessionGetDetails(c, &other), BGL_SUCCESS);
  EXPECT_NE(other.instance, firstInstance);

  const auto after = stats();
  EXPECT_EQ(after.instancesRecycled - before.instancesRecycled, 1u);
  EXPECT_EQ(after.instancesCreated - before.instancesCreated, 2u);
  ASSERT_EQ(bglSessionClose(b), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(c), BGL_SUCCESS);
}

TEST_F(ServePool, GrowOnDemandReinitKeepsLikelihoodBitIdentical) {
  const auto before = stats();
  const unsigned long long journalBefore = journalHead();

  const int s = bglSessionOpen("grower", 4, 48, 2, 0, 0, 0);
  ASSERT_GE(s, 0);
  ASSERT_EQ(setDefaultModel(s, 4, 2, 5), BGL_SUCCESS);
  ASSERT_EQ(addRandomTaxa(s, 6, 48, 4, 77), BGL_SUCCESS);

  BglSessionDetails details{};
  ASSERT_EQ(bglSessionGetDetails(s, &details), BGL_SUCCESS);
  EXPECT_EQ(details.tipCapacity, serve::kMinTipCapacity);

  // Past the 8-tip bucket: the lease is re-created larger and the session
  // replays its state into the new instance. (The instance id itself may
  // repeat — the registry recycles ids after finalize — so the capacity
  // and the journal record are the observable evidence.)
  ASSERT_EQ(addRandomTaxa(s, 5, 48, 4, 78), BGL_SUCCESS);
  ASSERT_EQ(bglSessionGetDetails(s, &details), BGL_SUCCESS);
  EXPECT_EQ(details.taxa, 11);
  EXPECT_EQ(details.tipCapacity, 16);

  double online = 0.0, full = 0.0;
  ASSERT_EQ(bglSessionLogLikelihood(s, &online), BGL_SUCCESS);
  ASSERT_EQ(bglSessionFullLogLikelihood(s, &full), BGL_SUCCESS);
  EXPECT_TRUE(std::isfinite(online));
  EXPECT_EQ(online, full);  // bitwise

  const auto after = stats();
  EXPECT_EQ(after.reinitGrows - before.reinitGrows, 1u);
  EXPECT_EQ(journalCountSince(BGL_JOURNAL_POOL_REINIT, journalBefore), 1);
  ASSERT_EQ(bglSessionClose(s), BGL_SUCCESS);
}

TEST_F(ServePool, TrimEvictsIdleInstancesAndJournalsThem) {
  const auto before = stats();
  const unsigned long long journalBefore = journalHead();

  const int a = bglSessionOpen("alpha", 4, 80, 1, 0, 0, 0);
  const int b = bglSessionOpen("beta", 20, 40, 2, 0, 0, 0);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(b), BGL_SUCCESS);

  auto mid = stats();
  EXPECT_EQ(mid.freeInstances, 2);
  EXPECT_EQ(mid.liveSessions, 0);

  // idleMs 0 sweeps everything regardless of idle time.
  EXPECT_EQ(bglPoolTrim(0), 2);
  const auto after = stats();
  EXPECT_EQ(after.freeInstances, 0);
  EXPECT_EQ(after.pooledInstances, 0);
  EXPECT_EQ(after.evictions - before.evictions, 2u);
  EXPECT_EQ(journalCountSince(BGL_JOURNAL_POOL_EVICT, journalBefore), 2);
}

TEST_F(ServePool, GlobalSessionQuotaRejectsWithStructuredError) {
  BglPoolConfig config{};
  config.maxSessions = 2;
  ASSERT_EQ(bglPoolConfigure(&config), BGL_SUCCESS);
  const auto before = stats();
  const unsigned long long journalBefore = journalHead();

  const int a = bglSessionOpen("t1", 4, 32, 1, 0, 0, 0);
  const int b = bglSessionOpen("t2", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);

  const int c = bglSessionOpen("t3", 4, 32, 1, 0, 0, 0);
  EXPECT_EQ(c, BGL_ERROR_REJECTED);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("quota"),
            std::string::npos);

  const auto after = stats();
  EXPECT_EQ(after.rejectedQuota - before.rejectedQuota, 1u);
  EXPECT_EQ(after.admitted - before.admitted, 2u);
  EXPECT_EQ(journalCountSince(BGL_JOURNAL_ADMISSION_REJECT, journalBefore), 1);

  // Closing one frees a slot; the next open is admitted again.
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);
  const int d = bglSessionOpen("t3", 4, 32, 1, 0, 0, 0);
  EXPECT_GE(d, 0);
  ASSERT_EQ(bglSessionClose(b), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(d), BGL_SUCCESS);
}

TEST_F(ServePool, PerTenantQuotaIsIndependentAcrossTenants) {
  BglPoolConfig config{};
  config.maxSessionsPerTenant = 1;
  ASSERT_EQ(bglPoolConfigure(&config), BGL_SUCCESS);

  const int a = bglSessionOpen("alpha", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(a, 0);
  EXPECT_EQ(bglSessionOpen("alpha", 4, 32, 1, 0, 0, 0), BGL_ERROR_REJECTED);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("tenant"),
            std::string::npos);

  // A different tenant is not affected by alpha's quota.
  const int b = bglSessionOpen("beta", 4, 32, 1, 0, 0, 0);
  EXPECT_GE(b, 0);
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(b), BGL_SUCCESS);
}

TEST_F(ServePool, LoadSheddingUsesCalibratedEstimates) {
  // Learn this shape's calibrated load unit from a probe session, then set
  // the ceiling so exactly one such session fits.
  const int probe = bglSessionOpen("probe", 4, 512, 4, 0, 0, 0);
  ASSERT_GE(probe, 0);
  const double unit = stats().estimatedLoadSeconds;
  ASSERT_EQ(bglSessionClose(probe), BGL_SUCCESS);
  ASSERT_GT(unit, 0.0);

  BglPoolConfig config{};
  config.maxEstimatedLoad = unit * 1.5;
  ASSERT_EQ(bglPoolConfigure(&config), BGL_SUCCESS);
  const auto before = stats();

  const int a = bglSessionOpen("t", 4, 512, 4, 0, 0, 0);
  ASSERT_GE(a, 0);
  EXPECT_EQ(bglSessionOpen("t", 4, 512, 4, 0, 0, 0), BGL_ERROR_REJECTED);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("load"),
            std::string::npos);

  const auto after = stats();
  EXPECT_EQ(after.rejectedLoad - before.rejectedLoad, 1u);
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);
  // Closing releases the charged load again.
  EXPECT_LT(stats().estimatedLoadSeconds, unit * 0.5);
}

TEST_F(ServePool, BackpressureRejectionPath) {
  // The C API clamps non-positive maxPendingDepth to the default, so the
  // controller is exercised directly: any pending depth (including zero)
  // exceeds a negative limit.
  serve::AdmissionController controller;
  serve::AdmissionConfig config;
  config.maxPendingDepth = -1;
  controller.setConfig(config);

  std::string reason;
  EXPECT_FALSE(controller.admit("tenant", 0.0, &reason));
  EXPECT_NE(reason.find("backpressure"), std::string::npos);
  EXPECT_EQ(controller.counters().rejectedBackpressure, 1u);
  EXPECT_EQ(controller.liveSessions(), 0);
}

TEST_F(ServePool, RejectedTenantLeavesNoQuotaEntry) {
  // Regression: the per-tenant quota check used operator[] on the tenant
  // map, so a rejected never-admitted tenant left a permanent zero entry
  // behind — an unbounded-growth leak under a stream of unique rejected
  // tenant names. The check must be read-only on refusal.
  serve::AdmissionController controller;
  serve::AdmissionConfig config;
  config.maxSessions = 0;  // reject everyone at the global quota
  controller.setConfig(config);

  std::string reason;
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(controller.admit("drive-by-" + std::to_string(i), 0.0, &reason));
  }
  EXPECT_EQ(controller.trackedTenants(), 0u);
  EXPECT_EQ(controller.liveSessions(), 0);

  // Same for a per-tenant quota refusal: with maxSessionsPerTenant == 0
  // the tenant is refused before ever being tracked, and the refusal must
  // not start tracking it.
  config.maxSessions = 64;
  config.maxSessionsPerTenant = 0;
  controller.setConfig(config);
  EXPECT_FALSE(controller.admit("untracked", 0.0, &reason));
  EXPECT_NE(reason.find("quota"), std::string::npos);
  EXPECT_EQ(controller.trackedTenants(), 0u);

  // An admitted tenant is tracked, and release at zero erases the entry.
  config.maxSessionsPerTenant = 8;
  controller.setConfig(config);
  EXPECT_TRUE(controller.admit("real", 0.0, &reason));
  EXPECT_EQ(controller.trackedTenants(), 1u);
  controller.releaseSession("real", 0.0);
  EXPECT_EQ(controller.trackedTenants(), 0u);
}

TEST_F(ServePool, HostAllocFaultFailsPooledCreationOnce) {
  const unsigned long long journalBefore = journalHead();
  // The free list is empty (SetUp trims), so this open must create — and
  // the armed one-shot host allocation fault fails exactly that creation.
  ASSERT_EQ(bglSetFaultSpec("host:alloc:1"), BGL_SUCCESS);
  EXPECT_EQ(bglSessionOpen("faulty", 4, 32, 1, 0, 0, 0),
            BGL_ERROR_OUT_OF_MEMORY);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("fault"),
            std::string::npos);
  EXPECT_EQ(journalCountSince(BGL_JOURNAL_FAULT_INJECTED, journalBefore), 1);

  // One-shot: the retry creates successfully.
  const int s = bglSessionOpen("faulty", 4, 32, 1, 0, 0, 0);
  EXPECT_GE(s, 0);
  ASSERT_EQ(bglSessionClose(s), BGL_SUCCESS);
}

TEST_F(ServePool, HostAllocFaultFailsGrowReinit) {
  const int s = bglSessionOpen("grower", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(s, 0);
  ASSERT_EQ(setDefaultModel(s, 4, 1, 3), BGL_SUCCESS);
  ASSERT_EQ(addRandomTaxa(s, 8, 32, 4, 31), BGL_SUCCESS);

  // The 9th taxon needs a grow reinit; its creation is the next host
  // allocation checkpoint.
  ASSERT_EQ(bglSetFaultSpec("host:alloc:1"), BGL_SUCCESS);
  std::vector<int> tip(32, 0);
  EXPECT_EQ(bglSessionAddTaxon(s, tip.data(), 0, 0.1, 0.1),
            BGL_ERROR_OUT_OF_MEMORY);
  ASSERT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);
  // The grow path finalizes the old instance before creating the larger
  // one, so the session is dead after the failure; close still succeeds.
  EXPECT_EQ(bglSessionClose(s), BGL_SUCCESS);
}

TEST_F(ServePool, HostFaultGrammarOnlySupportsAlloc) {
  EXPECT_EQ(bglSetFaultSpec("host:alloc:2"), BGL_SUCCESS);
  EXPECT_EQ(bglSetFaultSpec(""), BGL_SUCCESS);
  EXPECT_EQ(bglSetFaultSpec("host:launch:1"), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("alloc"),
            std::string::npos);
  EXPECT_EQ(bglSetFaultSpec("host:memcpy:1"), BGL_ERROR_OUT_OF_RANGE);
  // Device-scoped directives must not fire at the host checkpoint: arm a
  // cuda alloc budget and create through the pool with a CPU-serial
  // requirement (flags 0 could select a simulated-accelerator impl whose
  // own device-alloc checkpoint would consume the budget).
  ASSERT_EQ(bglSetFaultSpec("cuda:alloc:1"), BGL_SUCCESS);
  const int s = bglSessionOpen("host", 4, 32, 1, 0, 0,
                               BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE);
  EXPECT_GE(s, 0) << bglGetLastErrorMessage();
  ASSERT_EQ(bglSessionClose(s), BGL_SUCCESS);
}

TEST_F(ServePool, PoolConfigureNullRestoresDefaults) {
  BglPoolConfig config{};
  config.maxSessions = 1;
  ASSERT_EQ(bglPoolConfigure(&config), BGL_SUCCESS);
  const int a = bglSessionOpen("t", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(a, 0);
  EXPECT_EQ(bglSessionOpen("t", 4, 32, 1, 0, 0, 0), BGL_ERROR_REJECTED);

  ASSERT_EQ(bglPoolConfigure(nullptr), BGL_SUCCESS);
  const int b = bglSessionOpen("t", 4, 32, 1, 0, 0, 0);
  EXPECT_GE(b, 0);
  ASSERT_EQ(bglSessionClose(a), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(b), BGL_SUCCESS);
}

TEST_F(ServePool, MetricsSnapshotsCarryTheServeObject) {
  // Metrics schema 2 (docs/OBSERVABILITY.md): once the serving layer has
  // been used, every JSON-lines snapshot carries a "serve" object with the
  // pool gauges and admission counters.
  const std::string path = ::testing::TempDir() + "/bgl_serve_metrics.jsonl";
  std::remove(path.c_str());

  const int s = bglSessionOpen("metrics", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(s, 0);
  ASSERT_EQ(bglSetMetricsFile(path.c_str(), 20), BGL_SUCCESS);
  ASSERT_EQ(bglSessionClose(s), BGL_SUCCESS);
  ASSERT_EQ(bglSetMetricsFile(nullptr, 0), BGL_SUCCESS);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  bool sawServe = false;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
    if (line.find("\"serve\":{") != std::string::npos) sawServe = true;
  }
  EXPECT_TRUE(sawServe) << last;
  EXPECT_NE(last.find("\"schema\":2"), std::string::npos) << last;
  EXPECT_NE(last.find("\"admitted\":"), std::string::npos) << last;
  EXPECT_NE(last.find("\"pooledInstances\":"), std::string::npos) << last;
  std::remove(path.c_str());
}

TEST_F(ServePool, SessionApiValidatesArguments) {
  EXPECT_EQ(bglSessionClose(12345), BGL_ERROR_OUT_OF_RANGE);
  double logL = 0.0;
  EXPECT_EQ(bglSessionLogLikelihood(9876, &logL), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSessionOpen("t", 1, 32, 1, 0, 0, 0), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSessionOpen("t", 4, 32, 1, 999, 0, 0), BGL_ERROR_OUT_OF_RANGE);

  const int s = bglSessionOpen("t", 4, 32, 1, 0, 0, 0);
  ASSERT_GE(s, 0);
  // Too few taxa / no model yet.
  EXPECT_EQ(bglSessionLogLikelihood(s, &logL), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSessionSetBranch(s, 0, 0.1), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSessionAddTaxon(s, nullptr, 0, 0.1, 0.1), BGL_ERROR_OUT_OF_RANGE);
  ASSERT_EQ(bglSessionClose(s), BGL_SUCCESS);
  // Double close: the id is dead.
  EXPECT_EQ(bglSessionClose(s), BGL_ERROR_OUT_OF_RANGE);
}

}  // namespace
}  // namespace bgl
