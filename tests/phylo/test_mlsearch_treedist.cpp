// ML tree search, Robinson-Foulds distances, and IUPAC ambiguity partials.
#include <gtest/gtest.h>

#include <cmath>

#include "api/bglxx.h"
#include "core/model.h"
#include "phylo/fasta.h"
#include "phylo/mlsearch.h"
#include "phylo/seqsim.h"
#include "phylo/treedist.h"

namespace bgl::phylo {
namespace {

// --- Robinson-Foulds ----------------------------------------------------------

TEST(RobinsonFoulds, IdenticalTreesAreDistanceZero) {
  Rng rng(1);
  for (int tips : {4, 8, 16}) {
    Tree tree = Tree::random(tips, rng);
    EXPECT_EQ(robinsonFouldsDistance(tree, tree), 0);
  }
}

TEST(RobinsonFoulds, BranchLengthsDoNotMatter) {
  Rng rng(2);
  Tree a = Tree::random(10, rng);
  Tree b = a;
  for (int n = 0; n < b.nodeCount(); ++n) {
    if (n != b.root()) b.node(n).length *= 3.7;
  }
  EXPECT_EQ(robinsonFouldsDistance(a, b), 0);
}

TEST(RobinsonFoulds, SingleNniMovesDistanceByTwo) {
  Rng rng(3);
  Tree a = Tree::random(12, rng);
  Tree b = a;
  // Keep applying single NNIs until the topology actually changes.
  do {
    b = a;
    ASSERT_TRUE(b.nni(rng));
  } while (robinsonFouldsDistance(a, b) == 0);
  // One NNI changes exactly one bipartition.
  EXPECT_EQ(robinsonFouldsDistance(a, b), 2);
}

TEST(RobinsonFoulds, SymmetricAndBounded) {
  Rng rng(4);
  Tree a = Tree::random(9, rng);
  Tree b = Tree::random(9, rng);
  const int ab = robinsonFouldsDistance(a, b);
  EXPECT_EQ(ab, robinsonFouldsDistance(b, a));
  EXPECT_GE(ab, 0);
  EXPECT_LE(ab, robinsonFouldsMax(9));
}

TEST(RobinsonFoulds, RejectsDifferentTaxonCounts) {
  Rng rng(5);
  Tree a = Tree::random(5, rng);
  Tree b = Tree::random(6, rng);
  EXPECT_THROW(robinsonFouldsDistance(a, b), Error);
}

TEST(RobinsonFoulds, TinyTreesHaveNoInternalSplits) {
  Rng rng(6);
  Tree a = Tree::random(3, rng);
  Tree b = Tree::random(3, rng);
  EXPECT_EQ(robinsonFouldsDistance(a, b), 0);
  EXPECT_EQ(robinsonFouldsMax(3), 0);
}

// --- ML search -----------------------------------------------------------------

TEST(MlSearch, ImprovesLikelihoodAndApproachesTruth) {
  Rng rng(42);
  const Tree truth = Tree::random(8, rng, 0.15);
  HKY85Model model(2.0, {0.3, 0.25, 0.2, 0.25});
  const auto data = simulatePatterns(truth, model, 2000, rng);

  // Start from a random tree far from the truth.
  Tree start = Tree::random(8, rng, 0.1);
  MlSearchOptions opts;
  opts.seed = 7;
  opts.likelihood.categories = 1;
  TreeLikelihood startLike(start, model, data, opts.likelihood);
  const double startLogL = startLike.logLikelihood();
  TreeLikelihood truthLike(truth, model, data, opts.likelihood);
  const double truthLogL = truthLike.logLikelihood();

  const auto result = mlSearch(start, model, data, opts);
  EXPECT_GT(result.logL, startLogL);
  // The search should reach (or beat, by optimizing branch lengths) the
  // generating tree's likelihood minus a small slack.
  EXPECT_GT(result.logL, truthLogL - 20.0);
  EXPECT_GT(result.evaluations, 0);
  // And the recovered topology should be closer to the truth than the
  // random start was.
  const int before = robinsonFouldsDistance(start, truth);
  const int after = robinsonFouldsDistance(result.tree, truth);
  EXPECT_LE(after, before);
}

TEST(MlSearch, DeterministicForSeed) {
  Rng rng(50);
  const Tree truth = Tree::random(6, rng, 0.1);
  HKY85Model model(2.0, {0.25, 0.25, 0.25, 0.25});
  const auto data = simulatePatterns(truth, model, 500, rng);
  Tree start = Tree::random(6, rng, 0.1);

  MlSearchOptions opts;
  opts.seed = 3;
  opts.maxRounds = 5;
  const auto a = mlSearch(start, model, data, opts);
  const auto b = mlSearch(start, model, data, opts);
  EXPECT_EQ(a.tree.toNewick(), b.tree.toNewick());
  EXPECT_DOUBLE_EQ(a.logL, b.logL);
}

TEST(MlSearch, BranchOnlyRoundsKeepTopology) {
  Rng rng(60);
  const Tree truth = Tree::random(5, rng, 0.1);
  HKY85Model model(2.0, {0.25, 0.25, 0.25, 0.25});
  const auto data = simulatePatterns(truth, model, 800, rng);

  MlSearchOptions opts;
  opts.seed = 1;
  opts.maxRounds = 1;
  const auto result = mlSearch(truth, model, data, opts);
  // Starting at the true topology with simulated data, NNIs should not
  // find a better topology (branch optimization only).
  EXPECT_EQ(robinsonFouldsDistance(result.tree, truth), 0);
}

// --- IUPAC ambiguity ------------------------------------------------------------

TEST(Iupac, CodesExpandToCorrectBaseSets) {
  double p[4];
  iupacPartials('A', p);
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{1, 0, 0, 0}));
  iupacPartials('r', p);  // case-insensitive: A/G
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{1, 0, 1, 0}));
  iupacPartials('Y', p);
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{0, 1, 0, 1}));
  iupacPartials('B', p);  // not A
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{0, 1, 1, 1}));
  iupacPartials('N', p);
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{1, 1, 1, 1}));
  iupacPartials('-', p);
  EXPECT_EQ(std::vector<double>(p, p + 4), (std::vector<double>{1, 1, 1, 1}));
}

TEST(Iupac, TipPartialsLikelihoodIsSumOverCompatibleStates) {
  // A two-taxon instance where one tip carries 'R' (A or G): the site
  // likelihood must equal the sum of the A-version and G-version
  // likelihoods computed with compact states.
  const JC69Model model;
  const auto es = model.eigenSystem();

  auto build = [&](bool usePartials, int code) {
    bgl::xx::Instance inst(2, 2, 2, 4, 1, 1, 2, 1, 0);
    inst.setTipStates(0, {1});  // C
    if (usePartials) {
      inst.setTipPartials(1, iupacTipPartials("R"));
    } else {
      inst.setTipStates(1, {code});
    }
    inst.setEigenDecomposition(0, es.evec, es.ivec, es.eval);
    inst.setStateFrequencies(0, model.frequencies());
    inst.setCategoryWeights(0, {1.0});
    inst.setCategoryRates({1.0});
    inst.setPatternWeights({1.0});
    inst.updateTransitionMatrices(0, {0, 1}, {0.15, 0.25});
    inst.updatePartials({BglOperation{2, BGL_OP_NONE, BGL_OP_NONE, 0, 0, 1, 1}});
    return std::exp(inst.rootLogLikelihood(2));
  };

  const double ambiguous = build(true, -1);
  const double asA = build(false, 0);
  const double asG = build(false, 2);
  EXPECT_NEAR(ambiguous, asA + asG, 1e-12);
}

}  // namespace
}  // namespace bgl::phylo
