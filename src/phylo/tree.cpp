#include "phylo/tree.h"

#include <algorithm>
#include <sstream>

#include "core/defs.h"

namespace bgl::phylo {
namespace {

struct RawTree {
  std::vector<Node> nodes;
  int root = -1;
};

}  // namespace

Tree Tree::random(int tips, Rng& rng, double meanBranchLength) {
  if (tips < 2) throw Error("Tree::random: need at least 2 tips");
  std::vector<Node> raw(tips);
  auto newLength = [&] { return rng.exponential(1.0 / meanBranchLength); };
  for (int t = 0; t < tips; ++t) raw[t].length = newLength();

  // Root joining the first two tips.
  int root = static_cast<int>(raw.size());
  raw.push_back({});
  raw[root].left = 0;
  raw[root].right = 1;
  raw[0].parent = root;
  raw[1].parent = root;

  std::vector<int> attachable = {0, 1};  // nodes with an edge above them
  for (int t = 2; t < tips; ++t) {
    // Split the edge above a random node with a new internal node that
    // also subtends the new tip.
    const int below = attachable[rng.belowInt(static_cast<int>(attachable.size()))];
    const int parent = raw[below].parent;
    const int mid = static_cast<int>(raw.size());
    raw.push_back({});
    raw[mid].parent = parent;
    raw[mid].length = newLength();
    raw[mid].left = below;
    raw[mid].right = t;
    if (raw[parent].left == below) {
      raw[parent].left = mid;
    } else {
      raw[parent].right = mid;
    }
    raw[below].parent = mid;
    raw[t].parent = mid;
    attachable.push_back(t);
    attachable.push_back(mid);
  }
  return Tree::fromRaw(raw, tips, root);
}

Tree Tree::fromRaw(const std::vector<Node>& raw, int tipCount, int rawRoot) {
  // Post-order over the raw ids.
  std::vector<int> order;
  order.reserve(raw.size());
  std::vector<std::pair<int, bool>> stack{{rawRoot, false}};
  while (!stack.empty()) {
    auto [n, visited] = stack.back();
    stack.pop_back();
    if (raw[n].left < 0) {
      order.push_back(n);
      continue;
    }
    if (visited) {
      order.push_back(n);
    } else {
      stack.push_back({n, true});
      stack.push_back({raw[n].right, false});
      stack.push_back({raw[n].left, false});
    }
  }

  std::vector<int> remap(raw.size(), -1);
  int nextInternal = tipCount;
  for (int n : order) {
    remap[n] = (raw[n].left < 0) ? n : nextInternal++;
  }

  Tree tree;
  tree.tipCount_ = tipCount;
  tree.nodes_.resize(raw.size());
  for (std::size_t n = 0; n < raw.size(); ++n) {
    const int id = remap[n];
    Node& out = tree.nodes_[id];
    out.length = raw[n].length;
    out.parent = raw[n].parent >= 0 ? remap[raw[n].parent] : -1;
    out.left = raw[n].left >= 0 ? remap[raw[n].left] : -1;
    out.right = raw[n].right >= 0 ? remap[raw[n].right] : -1;
  }
  tree.validate();
  return tree;
}

namespace {

// --- Newick parsing -------------------------------------------------------

struct NewickParser {
  const std::string& text;
  std::size_t pos = 0;
  RawTree out;
  int tipCount = 0;

  explicit NewickParser(const std::string& s) : text(s) {}

  char peek() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) throw Error("Newick: unexpected end of input");
    return text[pos];
  }

  int parseClade() {
    if (peek() == '(') {
      ++pos;  // '('
      const int left = parseClade();
      if (peek() != ',') throw Error("Newick: expected ','");
      ++pos;
      const int right = parseClade();
      if (peek() != ')') throw Error("Newick: expected ')'");
      ++pos;
      const int id = static_cast<int>(out.nodes.size());
      out.nodes.push_back({});
      out.nodes[id].left = left;
      out.nodes[id].right = right;
      out.nodes[left].parent = id;
      out.nodes[right].parent = id;
      parseLength(id);
      return id;
    }
    // Tip: "t<k>" or "<k>".
    std::string label;
    while (pos < text.size() && text[pos] != ':' && text[pos] != ',' &&
           text[pos] != ')' && text[pos] != ';') {
      label += text[pos++];
    }
    if (label.empty()) throw Error("Newick: empty tip label");
    const std::string digits = (label[0] == 't') ? label.substr(1) : label;
    int tip = -1;
    try {
      tip = std::stoi(digits);
    } catch (...) {
      throw Error("Newick: tip labels must be t<number>, got '" + label + "'");
    }
    while (static_cast<int>(out.nodes.size()) <= tip) out.nodes.push_back({});
    tipCount = std::max(tipCount, tip + 1);
    parseLength(tip);
    return tip;
  }

  void parseLength(int id) {
    if (pos < text.size() && text[pos] == ':') {
      ++pos;
      std::size_t used = 0;
      out.nodes[id].length = std::stod(text.substr(pos), &used);
      pos += used;
    }
  }
};

}  // namespace

Tree Tree::fromNewick(const std::string& newick) {
  NewickParser parser(newick);
  // Tips are numbered 0..T-1 by the caller; reserve their slots first by
  // scanning: parseClade() grows the node vector on demand, so internal
  // nodes created before high-numbered tips could collide. Avoid that by
  // pre-allocating from the label scan.
  int maxTip = -1;
  for (std::size_t i = 0; i < newick.size(); ++i) {
    if (newick[i] == 't' && i + 1 < newick.size() &&
        std::isdigit(static_cast<unsigned char>(newick[i + 1]))) {
      maxTip = std::max(maxTip, std::atoi(newick.c_str() + i + 1));
    }
  }
  if (maxTip < 1) throw Error("Newick: need at least two labeled tips");
  parser.out.nodes.resize(maxTip + 1);
  const int root = parser.parseClade();
  parser.out.root = root;
  return Tree::fromRaw(parser.out.nodes, maxTip + 1, root);
}

std::vector<int> Tree::postOrder() const {
  std::vector<int> order;
  order.reserve(nodes_.size());
  std::vector<std::pair<int, bool>> stack{{root(), false}};
  while (!stack.empty()) {
    auto [n, visited] = stack.back();
    stack.pop_back();
    if (isTip(n)) {
      order.push_back(n);
      continue;
    }
    if (visited) {
      order.push_back(n);
    } else {
      stack.push_back({n, true});
      stack.push_back({nodes_[n].right, false});
      stack.push_back({nodes_[n].left, false});
    }
  }
  return order;
}

std::vector<BglOperation> Tree::operations(bool scaleWrite) const {
  std::vector<BglOperation> ops;
  ops.reserve(nodeCount() - tipCount_);
  for (int n : postOrder()) {
    if (isTip(n)) continue;
    BglOperation op;
    op.destinationPartials = n;
    op.destinationScaleWrite = scaleWrite ? n - tipCount_ : BGL_OP_NONE;
    op.destinationScaleRead = BGL_OP_NONE;
    op.child1Partials = nodes_[n].left;
    op.child1TransitionMatrix = nodes_[n].left;
    op.child2Partials = nodes_[n].right;
    op.child2TransitionMatrix = nodes_[n].right;
    ops.push_back(op);
  }
  return ops;
}

void Tree::matrixUpdates(std::vector<int>& nodeIndices,
                         std::vector<double>& lengths) const {
  nodeIndices.clear();
  lengths.clear();
  for (int n = 0; n < nodeCount(); ++n) {
    if (n == root()) continue;
    nodeIndices.push_back(n);
    lengths.push_back(nodes_[n].length);
  }
}

std::string Tree::toNewick() const {
  std::ostringstream os;
  os.precision(10);
  auto emit = [&](auto&& self, int n) -> void {
    if (isTip(n)) {
      os << 't' << n;
    } else {
      os << '(';
      self(self, nodes_[n].left);
      os << ',';
      self(self, nodes_[n].right);
      os << ')';
    }
    if (n != root()) os << ':' << nodes_[n].length;
  };
  emit(emit, root());
  os << ';';
  return os.str();
}

double Tree::totalLength() const {
  double sum = 0.0;
  for (int n = 0; n < nodeCount(); ++n) {
    if (n != root()) sum += nodes_[n].length;
  }
  return sum;
}

void Tree::validate() const {
  if (nodeCount() != 2 * tipCount_ - 1) throw Error("Tree: wrong node count");
  int seenRoot = -1;
  for (int n = 0; n < nodeCount(); ++n) {
    const Node& nd = nodes_[n];
    if (nd.parent < 0) {
      if (seenRoot >= 0) throw Error("Tree: multiple roots");
      seenRoot = n;
    } else {
      const Node& p = nodes_[nd.parent];
      if (p.left != n && p.right != n) throw Error("Tree: parent/child mismatch");
    }
    if (isTip(n)) {
      if (nd.left >= 0 || nd.right >= 0) throw Error("Tree: tip with children");
    } else {
      if (nd.left < 0 || nd.right < 0) throw Error("Tree: internal node missing child");
      if (nodes_[nd.left].parent != n || nodes_[nd.right].parent != n) {
        throw Error("Tree: child/parent mismatch");
      }
    }
  }
  if (seenRoot != root()) throw Error("Tree: root is not the last node");
}

bool Tree::nni(Rng& rng) {
  if (tipCount_ < 4) return false;
  // Pick an internal node whose parent is also internal (any non-root
  // internal node qualifies, since the root is internal).
  std::vector<int> candidates;
  for (int n = tipCount_; n < nodeCount(); ++n) {
    if (n != root()) candidates.push_back(n);
  }
  if (candidates.empty()) return false;
  const int n = candidates[rng.belowInt(static_cast<int>(candidates.size()))];
  const int p = nodes_[n].parent;
  const int sibling = (nodes_[p].left == n) ? nodes_[p].right : nodes_[p].left;
  // Swap the sibling with a random child of n.
  int& childSlot = rng.uniform() < 0.5 ? nodes_[n].left : nodes_[n].right;
  int& siblingSlot = (nodes_[p].left == sibling) ? nodes_[p].left : nodes_[p].right;
  const int child = childSlot;
  childSlot = sibling;
  siblingSlot = child;
  nodes_[sibling].parent = n;
  nodes_[child].parent = p;
  return true;
}

}  // namespace bgl::phylo
