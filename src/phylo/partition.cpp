#include "phylo/partition.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <numeric>

#include "core/defs.h"
#include "obs/journal.h"
#include "sched/sched.h"

namespace bgl::phylo {
namespace {

using Clock = std::chrono::steady_clock;

double elapsedSeconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Calibration spec matching one shard's (model, options) combination.
sched::CalibrationSpec shardSpec(const SubstitutionModel& model,
                                 const LikelihoodOptions& options,
                                 const SplitOptions& split) {
  sched::CalibrationSpec spec;
  spec.states = model.states();
  spec.categories = options.categories;
  spec.singlePrecision = sched::resolveSinglePrecision(options.preferenceFlags,
                                                       options.requirementFlags);
  spec.preferenceFlags = options.preferenceFlags;
  spec.requirementFlags = options.requirementFlags;
  spec.seed = split.calibrationSeed;
  return spec;
}

int shardResource(const LikelihoodOptions& options) {
  return options.resources.empty() ? 0 : options.resources.front();
}

/// Failures worth failing over: the device/runtime/implementation is gone
/// or misbehaving. Programming errors (OUT_OF_RANGE, UNIMPLEMENTED,
/// FLOATING_POINT) would reproduce identically on any shard, so they are
/// never failed over.
bool isHardError(int code) {
  switch (code) {
    case BGL_ERROR_GENERAL:
    case BGL_ERROR_OUT_OF_MEMORY:
    case BGL_ERROR_UNIDENTIFIED_EXCEPTION:
    case BGL_ERROR_NO_RESOURCE:
    case BGL_ERROR_NO_IMPLEMENTATION:
    case BGL_ERROR_HARDWARE:
      return true;
    default:
      return false;
  }
}

}  // namespace

PartitionedLikelihood::PartitionedLikelihood(const Tree& tree,
                                             const std::vector<PartitionSpec>& specs,
                                             bool concurrent)
    : concurrent_(concurrent) {
  if (specs.empty()) throw Error("PartitionedLikelihood: no partitions");
  parts_.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.model == nullptr) throw Error("PartitionedLikelihood: null model");
    parts_.push_back(std::make_unique<TreeLikelihood>(tree, *spec.model, spec.data,
                                                      spec.options));
  }
}

double PartitionedLikelihood::logLikelihood(const Tree& tree) {
  if (!concurrent_ || parts_.size() == 1) {
    double total = 0.0;
    for (auto& part : parts_) total += part->logLikelihood(tree);
    return total;
  }
  // One async evaluation per instance: instances are fully independent
  // (this is the concurrency model client programs use per Section IV-F).
  std::vector<std::future<double>> futures;
  futures.reserve(parts_.size() - 1);
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [this, i, &tree] {
      return parts_[i]->logLikelihood(tree);
    }));
  }
  double total = parts_[0]->logLikelihood(tree);
  for (auto& f : futures) total += f.get();
  return total;
}

void autoAssignResources(std::vector<PartitionSpec>& specs, bool benchmark) {
  if (specs.empty()) return;
  const auto estimates = sched::resourceEstimates({}, {}, benchmark);
  if (estimates.empty()) return;
  // Fastest resources first.
  std::vector<const sched::ResourceEstimate*> ranked;
  ranked.reserve(estimates.size());
  for (const auto& e : estimates) ranked.push_back(&e);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const sched::ResourceEstimate* a,
                      const sched::ResourceEstimate* b) {
                     return a->patternsPerSecond > b->patternsPerSecond;
                   });
  // Largest partitions first, so the heaviest subsets land on the fastest
  // resources; wrap around when partitions outnumber resources.
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return specs[a].data.patterns > specs[b].data.patterns;
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto* pick = ranked[i % ranked.size()];
    specs[order[i]].options.resources = {pick->resource};
  }
}

SplitMode splitModeFromFlags(long flags) {
  if (flags & BGL_FLAG_LOADBALANCE_ADAPTIVE) return SplitMode::Adaptive;
  if (flags & (BGL_FLAG_LOADBALANCE_BENCHMARK | BGL_FLAG_LOADBALANCE_MODEL)) {
    return SplitMode::Proportional;
  }
  return SplitMode::Equal;
}

std::vector<PatternSet> splitPatterns(const PatternSet& data, int shards) {
  if (shards < 1) throw Error("splitPatterns: need >= 1 shard");
  if (shards > data.patterns) shards = data.patterns;
  std::vector<int> shares(static_cast<std::size_t>(shards));
  for (int k = 0; k < data.patterns; ++k) ++shares[static_cast<std::size_t>(k % shards)];
  return splitPatternsByShares(data, shares);
}

std::vector<PatternSet> splitPatternsByShares(const PatternSet& data,
                                              const std::vector<int>& shares) {
  if (shares.empty()) throw Error("splitPatternsByShares: need >= 1 shard");
  int total = 0;
  for (int s : shares) {
    if (s < 0) throw Error("splitPatternsByShares: negative share");
    total += s;
  }
  if (total != data.patterns) {
    throw Error("splitPatternsByShares: shares sum to " + std::to_string(total) +
                ", expected " + std::to_string(data.patterns));
  }
  const int n = static_cast<int>(shares.size());
  std::vector<PatternSet> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[s].taxa = data.taxa;
    out[s].originalSites = 0;
  }
  // Deal pattern columns in index order, strided across the shards that
  // still have capacity: shard composition stays statistically similar to
  // the full set even when shares are very unequal.
  std::vector<std::vector<int>> columns(static_cast<std::size_t>(n));
  std::vector<int> remaining = shares;
  int cursor = 0;
  for (int k = 0; k < data.patterns; ++k) {
    int probed = 0;
    while (remaining[static_cast<std::size_t>(cursor)] == 0 && probed < n) {
      cursor = (cursor + 1) % n;
      ++probed;
    }
    columns[static_cast<std::size_t>(cursor)].push_back(k);
    --remaining[static_cast<std::size_t>(cursor)];
    cursor = (cursor + 1) % n;
  }
  for (int s = 0; s < n; ++s) {
    auto& shard = out[s];
    shard.patterns = static_cast<int>(columns[s].size());
    shard.states.resize(static_cast<std::size_t>(data.taxa) * shard.patterns);
    shard.weights.reserve(shard.patterns);
    for (int j = 0; j < shard.patterns; ++j) {
      const int k = columns[s][j];
      shard.weights.push_back(data.weights[k]);
      shard.originalSites += static_cast<int>(data.weights[k]);
      for (int t = 0; t < data.taxa; ++t) {
        shard.states[static_cast<std::size_t>(t) * shard.patterns + j] =
            data.at(t, k);
      }
    }
  }
  return out;
}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 bool concurrent)
    : SplitLikelihood(tree, model, data, shardOptions, [&] {
        SplitOptions split;
        split.mode = SplitMode::Equal;
        split.concurrent = concurrent;
        return split;
      }()) {}

SplitLikelihood::SplitLikelihood(const Tree& tree, const SubstitutionModel& model,
                                 const PatternSet& data,
                                 const std::vector<LikelihoodOptions>& shardOptions,
                                 const SplitOptions& split)
    : model_(&model), data_(data), shardOptions_(shardOptions), split_(split) {
  if (shardOptions_.empty()) throw Error("SplitLikelihood: no shards");
  if (data_.patterns < 1) throw Error("SplitLikelihood: no patterns");
  const int n = static_cast<int>(shardOptions_.size());

  std::vector<double> speeds;
  if (split_.mode == SplitMode::Equal) {
    speeds.assign(static_cast<std::size_t>(n), 1.0);
  } else if (!split_.speeds.empty()) {
    if (static_cast<int>(split_.speeds.size()) != n) {
      throw Error("SplitLikelihood: speeds/shardOptions size mismatch");
    }
    speeds = split_.speeds;
    calibratedSpeeds_ = speeds;
  } else {
    // Calibrate each shard's (resource, flags) combination through the
    // scheduler; estimates are cached process-wide, so identical shard
    // configurations cost one calibration run between them.
    speeds.reserve(static_cast<std::size_t>(n));
    for (const auto& options : shardOptions_) {
      const auto estimate = sched::resourceEstimate(
          shardResource(options), shardSpec(model, options, split_),
          split_.benchmark);
      speeds.push_back(estimate.patternsPerSecond);
    }
    calibratedSpeeds_ = speeds;
  }

  currentSpeeds_ = speeds;
  quarantined_.assign(static_cast<std::size_t>(n), 0);
  shardErrors_.assign(static_cast<std::size_t>(n), std::string());
  active_.resize(static_cast<std::size_t>(n));
  std::iota(active_.begin(), active_.end(), 0);

  const auto shares =
      sched::proportionalShares(data_.patterns, speeds, split_.minPatternsPerShard);
  if (split_.mode == SplitMode::Adaptive) {
    sched::LoadBalancer::Options options;
    options.ewmaAlpha = split_.ewmaAlpha;
    options.imbalanceThreshold = split_.imbalanceThreshold;
    options.minShare = split_.minPatternsPerShard;
    options.settleRounds = split_.settleRounds;
    balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
  }
  build(tree, shares);
}

void SplitLikelihood::build(const Tree& tree, const std::vector<int>& shares) {
  std::vector<int> current = shares;
  const int maxAttempts = static_cast<int>(shardOptions_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    if (tryBuild(tree, current)) return;
    // tryBuild quarantined the failing shard; re-apportion its patterns
    // across the survivors and retry the whole build.
    ++failovers_;
    sched::noteFailover(1);
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    current = sharesAfterQuarantine();
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "rebuilding shard set, attempt " + std::to_string(attempt + 2) + "/" +
            std::to_string(maxAttempts));
  }
  throw Error("SplitLikelihood: shard construction still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

bool SplitLikelihood::tryBuild(const Tree& tree, const std::vector<int>& shares) {
  shards_.clear();
  shards_.resize(shares.size());
  shardPatterns_ = shares;
  shardSeconds_.assign(shares.size(), 0.0);
  const auto shardData = splitPatternsByShares(data_, shares);
  for (std::size_t s = 0; s < shares.size(); ++s) {
    if (shares[s] <= 0) continue;  // idle or quarantined shard: no instance
    try {
      shards_[s] = std::make_unique<TreeLikelihood>(tree, *model_, shardData[s],
                                                    shardOptions_[s]);
    } catch (const Error& e) {
      if (!split_.failover || !isHardError(e.code())) throw;
      quarantine(s, e.what(), e.code());
      return false;
    } catch (const std::bad_alloc&) {
      if (!split_.failover) throw;
      quarantine(s, "out of host memory building shard", kErrOutOfMemory);
      return false;
    }
  }
  return true;
}

void SplitLikelihood::quarantine(std::size_t shard, const std::string& reason,
                                 int code) {
  quarantined_[shard] = 1;
  shardErrors_[shard] = reason;
  shards_[shard].reset();  // destroy the instance; never hand it work again
  lastFailure_ = reason;
  lastFailureCode_ = code;
  obs::Journal::instance().append(obs::JournalKind::kShardQuarantine, code,
                                  /*instance=*/-1, /*resource=*/-1,
                                  static_cast<int>(shard), reason);
}

std::vector<int> SplitLikelihood::sharesAfterQuarantine() {
  active_.clear();
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (!quarantined_[i]) active_.push_back(static_cast<int>(i));
  }
  if (active_.empty()) {
    if (!split_.cpuFallback || cpuFallbackUsed_) {
      throw Error("SplitLikelihood: every shard is quarantined; last error: " +
                      lastFailure_,
                  lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
    }
    // Last resort: rebuild shard 0 as a plain host-CPU instance carrying
    // the whole alignment. Precision requirements are preserved; the
    // failing framework/vector/threading demands are dropped.
    const long precisionMask =
        BGL_FLAG_PRECISION_SINGLE | BGL_FLAG_PRECISION_DOUBLE;
    const LikelihoodOptions& orig = shardOptions_[0];
    LikelihoodOptions fallback;
    fallback.categories = orig.categories;
    fallback.alpha = orig.alpha;
    fallback.useScaling = orig.useScaling;
    fallback.requirementFlags =
        BGL_FLAG_FRAMEWORK_CPU | (orig.requirementFlags & precisionMask);
    fallback.preferenceFlags = orig.preferenceFlags & precisionMask;
    fallback.resources = {0};
    shardOptions_[0] = fallback;
    quarantined_[0] = 0;
    shardErrors_[0].clear();
    cpuFallbackUsed_ = true;
    active_ = {0};
    obs::Journal::instance().append(
        obs::JournalKind::kCpuFallback, 0, /*instance=*/-1, /*resource=*/0,
        /*shard=*/0,
        "every shard quarantined; host-CPU fallback carries the full "
        "alignment");
  }

  std::vector<double> speeds;
  speeds.reserve(active_.size());
  for (int i : active_) {
    const double s = i < static_cast<int>(currentSpeeds_.size())
                         ? currentSpeeds_[static_cast<std::size_t>(i)]
                         : 1.0;
    speeds.push_back(s > 0.0 ? s : 1.0);
  }
  // The balancer must be rebuilt over the survivors only: feeding the old
  // full-size balancer would let sanitizeSpeeds resurrect dead shards.
  if (split_.mode == SplitMode::Adaptive) {
    sched::LoadBalancer::Options options;
    options.ewmaAlpha = split_.ewmaAlpha;
    options.imbalanceThreshold = split_.imbalanceThreshold;
    options.minShare = split_.minPatternsPerShard;
    options.settleRounds = split_.settleRounds;
    balancer_ = std::make_unique<sched::LoadBalancer>(speeds, options);
  }
  const auto activeShares =
      sched::proportionalShares(data_.patterns, speeds, split_.minPatternsPerShard);
  std::vector<int> shares(shardOptions_.size(), 0);
  for (std::size_t j = 0; j < active_.size(); ++j) {
    shares[static_cast<std::size_t>(active_[j])] = activeShares[j];
  }
  obs::Journal::instance().append(
      obs::JournalKind::kReapportion, 0, /*instance=*/-1, /*resource=*/-1,
      /*shard=*/-1,
      std::to_string(data_.patterns) + " patterns re-apportioned across " +
          std::to_string(active_.size()) + " surviving shard(s)");
  return shares;
}

double SplitLikelihood::evaluateShard(std::size_t shard, const Tree& tree) {
  if (shards_[shard] == nullptr) {
    shardSeconds_[shard] = 0.0;
    return 0.0;
  }
  // Failures are captured into roundErrorCode_/roundErrorMessage_ instead
  // of thrown: shards run inside futures, and a raw exception would lose
  // the shard identity the failover path needs.
  try {
    const int instance = shards_[shard]->instance();
    const bool timeline = bglResetTimeline(instance) == BGL_SUCCESS;
    const auto start = Clock::now();
    const double logL = shards_[shard]->logLikelihood(tree);
    double seconds = elapsedSeconds(start);
    if (timeline) {
      // Prefer the obs-layer timeline: on simulated accelerator profiles the
      // roofline-modeled time is the honest per-device time base, and it is
      // immune to host-side oversubscription when shards run concurrently.
      BglTimeline tl{};
      if (bglGetTimeline(instance, &tl) == BGL_SUCCESS && tl.modeledSeconds > 0.0) {
        seconds = tl.modeledSeconds;
      }
    }
    if (shard < split_.debugSlowdown.size() && split_.debugSlowdown[shard] > 0.0) {
      seconds *= split_.debugSlowdown[shard];
    }
    shardSeconds_[shard] = seconds;
    return logL;
  } catch (const Error& e) {
    roundErrorCode_[shard] = e.code() != 0 ? e.code() : kErrGeneral;
    roundErrorMessage_[shard] = e.what();
  } catch (const std::bad_alloc&) {
    roundErrorCode_[shard] = kErrOutOfMemory;
    roundErrorMessage_[shard] = "out of host memory evaluating shard";
  } catch (const std::exception& e) {
    roundErrorCode_[shard] = kErrGeneral;
    roundErrorMessage_[shard] = e.what();
  }
  shardSeconds_[shard] = 0.0;
  return 0.0;
}

double SplitLikelihood::evaluateRound(const Tree& tree) {
  double total = 0.0;
  if (!split_.concurrent || shards_.size() == 1) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      total += evaluateShard(i, tree);
    }
  } else {
    std::vector<std::future<double>> futures;
    futures.reserve(shards_.size() - 1);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      futures.push_back(std::async(std::launch::async, [this, i, &tree] {
        return evaluateShard(i, tree);
      }));
    }
    total = evaluateShard(0, tree);
    for (auto& f : futures) total += f.get();
  }
  return total;
}

double SplitLikelihood::logLikelihood(const Tree& tree) {
  const int maxAttempts = static_cast<int>(shardOptions_.size()) + 2;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    roundErrorCode_.assign(shards_.size(), 0);
    roundErrorMessage_.assign(shards_.size(), std::string());
    const double total = evaluateRound(tree);

    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (roundErrorCode_[i] == 0) continue;
      if (!isHardError(roundErrorCode_[i])) {
        // Programming error: reproduces on any shard, never failed over.
        throw Error(roundErrorMessage_[i], roundErrorCode_[i]);
      }
      failed.push_back(i);
    }

    if (failed.empty()) {
      if (balancer_ != nullptr) {
        // The balancer is indexed over active_ (the non-quarantined
        // shards); translate between balancer slots and shard indices.
        for (std::size_t j = 0; j < active_.size(); ++j) {
          const auto i = static_cast<std::size_t>(active_[j]);
          if (shardPatterns_[i] > 0 && shardSeconds_[i] > 0.0) {
            balancer_->observe(static_cast<int>(j), shardPatterns_[i],
                               shardSeconds_[i]);
          }
        }
        const auto& observed = balancer_->speeds();
        for (std::size_t j = 0; j < active_.size() && j < observed.size(); ++j) {
          currentSpeeds_[static_cast<std::size_t>(active_[j])] = observed[j];
        }
        std::vector<int> activeShares(active_.size());
        for (std::size_t j = 0; j < active_.size(); ++j) {
          activeShares[j] = shardPatterns_[static_cast<std::size_t>(active_[j])];
        }
        const auto newActive = balancer_->rebalance(data_.patterns, activeShares);
        if (!newActive.empty()) {
          std::vector<int> newShares(shards_.size(), 0);
          for (std::size_t j = 0; j < active_.size(); ++j) {
            newShares[static_cast<std::size_t>(active_[j])] = newActive[j];
          }
          const int migrated = sched::migratedItems(shardPatterns_, newShares);
          sched::noteRebalance(static_cast<std::uint64_t>(migrated));
          obs::Journal::instance().append(
              obs::JournalKind::kRebalance, 0, /*instance=*/-1,
              /*resource=*/-1, /*shard=*/-1,
              "adaptive re-split migrated " + std::to_string(migrated) +
                  " patterns across " + std::to_string(active_.size()) +
                  " shard(s)");
          obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                               "sched.rebalance");
          build(tree, newShares);
          ++rebalances_;
        }
      }
      return total;
    }

    if (!split_.failover) {
      throw Error(roundErrorMessage_[failed.front()],
                  roundErrorCode_[failed.front()]);
    }
    for (std::size_t i : failed) {
      quarantine(i, roundErrorMessage_[i], roundErrorCode_[i]);
    }
    ++failovers_;
    sched::noteFailover(static_cast<std::uint64_t>(failed.size()));
    obs::ScopedSpan span(sched::recorder(), obs::Category::kOperation,
                         "sched.failover");
    build(tree, sharesAfterQuarantine());
    obs::Journal::instance().append(
        obs::JournalKind::kRetry, 0, /*instance=*/-1, /*resource=*/-1,
        /*shard=*/-1,
        "shard set rebuilt after " + std::to_string(failed.size()) +
            " shard failure(s); retrying the evaluation");
  }
  throw Error("SplitLikelihood: evaluation still failing after " +
                  std::to_string(maxAttempts) + " failovers: " + lastFailure_,
              lastFailureCode_ != 0 ? lastFailureCode_ : kErrHardware);
}

const std::string& SplitLikelihood::implName(int shard) const {
  static const std::string kIdle = "(idle)";
  const auto& ptr = shards_[static_cast<std::size_t>(shard)];
  return ptr == nullptr ? kIdle : ptr->implName();
}

std::vector<int> SplitLikelihood::quarantinedShards() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (quarantined_[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<double> SplitLikelihood::shardSpeeds() const {
  if (balancer_ == nullptr) return calibratedSpeeds_;
  // Balancer slots map to active_ shard indices; quarantined shards
  // report speed 0.
  std::vector<double> out(shards_.size(), 0.0);
  const auto& observed = balancer_->speeds();
  for (std::size_t j = 0; j < active_.size() && j < observed.size(); ++j) {
    out[static_cast<std::size_t>(active_[j])] = observed[j];
  }
  return out;
}

}  // namespace bgl::phylo
