#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>

namespace bgl::obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // value follows its key; no comma
  }
  if (!needComma_.empty()) {
    if (needComma_.back()) os_ << ',';
    needComma_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  separator();
  os_ << '{';
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  needComma_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separator();
  os_ << '[';
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  needComma_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separator();
  os_ << '"' << escape(k) << "\":";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
  return *this;
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

namespace {

// Microsecond timestamp with sub-microsecond precision preserved, as the
// trace-event format expects.
double toUs(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void writeEventArgs(JsonWriter& w, const TraceEvent& ev) {
  w.key("args").beginObject();
  w.field("category", categoryName(ev.category));
  if (!ev.device.empty()) w.field("device", ev.device);
  if (!ev.framework.empty()) w.field("framework", ev.framework);
  if (ev.stream >= 0) w.field("stream", ev.stream);
  if (ev.bytes > 0) w.field("bytes", ev.bytes);
  if (ev.groups > 0) w.field("groups", ev.groups);
  if (ev.queuedNs > 0) w.field("queuedNs", ev.queuedNs);
  w.endObject();
}

/// Chrome flow event ("s" opens the arrow at the enqueue span, "f" with
/// bp:"e" lands it on the enclosing execution span). Emitted directly
/// after the span's B event so viewers bind the flow to that slice.
void writeFlow(JsonWriter& w, const TraceEvent& ev) {
  w.beginObject();
  w.field("name", "stream");
  w.field("cat", "flow");
  w.field("ph", ev.flowPhase == 1 ? "s" : "f");
  if (ev.flowPhase != 1) w.field("bp", "e");
  w.field("id", ev.flowId);
  w.field("ts", toUs(ev.beginNs));
  w.field("pid", 1);
  w.field("tid", ev.tid);
  w.endObject();
}

void writeBegin(JsonWriter& w, const TraceEvent& ev) {
  w.beginObject();
  w.field("name", ev.name);
  w.field("cat", categoryName(ev.category));
  w.field("ph", "B");
  w.field("ts", toUs(ev.beginNs));
  w.field("pid", 1);
  w.field("tid", ev.tid);
  writeEventArgs(w, ev);
  w.endObject();
}

void writeEnd(JsonWriter& w, const TraceEvent& ev) {
  w.beginObject();
  w.field("name", ev.name);
  w.field("cat", categoryName(ev.category));
  w.field("ph", "E");
  w.field("ts", toUs(ev.beginNs + ev.durNs));
  w.field("pid", 1);
  w.field("tid", ev.tid);
  w.endObject();
}

}  // namespace

void writeChromeTrace(std::ostream& os, const TraceRecorder& recorder,
                      const std::string& processName) {
  std::vector<TraceEvent> events = recorder.events();

  // Group by tid; within a tid, emit properly nested B/E pairs by treating
  // spans as a stack ordered by (begin asc, duration desc) so an enclosing
  // span opens before anything nested inside it.
  std::map<int, std::vector<const TraceEvent*>> byTid;
  for (const TraceEvent& ev : events) byTid[ev.tid].push_back(&ev);

  JsonWriter w(os);
  w.beginObject();
  w.key("traceEvents").beginArray();

  // Process metadata so viewers show a friendly name.
  w.beginObject();
  w.field("name", "process_name");
  w.field("ph", "M");
  w.field("pid", 1);
  w.key("args").beginObject().field("name", processName).endObject();
  w.endObject();

  for (auto& [tid, spans] : byTid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->beginNs != b->beginNs) return a->beginNs < b->beginNs;
                       return a->durNs > b->durNs;
                     });
    std::vector<const TraceEvent*> open;
    for (const TraceEvent* ev : spans) {
      // Close any span that ends before this one begins. Spans that merely
      // partially overlap (clock jitter between lanes) are closed too, which
      // keeps the stream balanced at the cost of clipping the earlier span.
      while (!open.empty() &&
             open.back()->beginNs + open.back()->durNs <= ev->beginNs) {
        writeEnd(w, *open.back());
        open.pop_back();
      }
      writeBegin(w, *ev);
      if (ev->flowId != 0 && ev->flowPhase != 0) writeFlow(w, *ev);
      open.push_back(ev);
    }
    while (!open.empty()) {
      writeEnd(w, *open.back());
      open.pop_back();
    }
  }

  w.endArray();
  w.field("displayTimeUnit", "ms");
  if (recorder.droppedEvents() > 0) {
    w.field("droppedEvents", recorder.droppedEvents());
  }
  w.endObject();
  os << '\n';
}

// ---------------------------------------------------------------------------
// Stats export
// ---------------------------------------------------------------------------

void writeJournalRecord(JsonWriter& w, const JournalRecord& rec) {
  w.beginObject();
  w.field("sequence", rec.sequence);
  w.field("timeNs", rec.timeNs);
  w.field("kind", journalKindName(rec.kind));
  if (rec.code != 0) w.field("code", rec.code);
  if (rec.instance >= 0) w.field("instance", rec.instance);
  if (rec.resource >= 0) w.field("resource", rec.resource);
  if (rec.shard >= 0) w.field("shard", rec.shard);
  w.field("message", std::string(rec.message));
  w.endObject();
}

void writeStatsJson(std::ostream& os, const TraceRecorder& recorder,
                    const std::string& implName, const std::string& resourceName) {
  JsonWriter w(os);
  w.beginObject();
  w.field("schema", 2);
  w.field("implementation", implName);
  w.field("resource", resourceName);

  w.key("counters").beginObject();
  for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
    const auto counter = static_cast<Counter>(c);
    w.field(counterName(counter), recorder.counter(counter));
  }
  w.endObject();

  w.key("gauges").beginObject();
  for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g) {
    const auto gauge = static_cast<Gauge>(g);
    const std::string name = gaugeName(gauge);
    w.field(name, recorder.gauge(gauge));
    w.field(name + "Max", recorder.gaugeMax(gauge));
  }
  w.endObject();

  w.key("categories").beginObject();
  for (int c = 0; c < static_cast<int>(Category::kCount); ++c) {
    const auto cat = static_cast<Category>(c);
    const DurationHistogram h = recorder.histogram(cat);
    if (h.count == 0) continue;
    w.key(categoryName(cat)).beginObject();
    w.field("count", h.count);
    w.field("totalSeconds", h.totalNs * 1e-9);
    w.field("minNs", h.minNs);
    w.field("maxNs", h.maxNs);
    w.field("meanNs", static_cast<double>(h.totalNs) / static_cast<double>(h.count));
    w.field("p50Ns", histogramQuantile(h, 0.50));
    w.field("p95Ns", histogramQuantile(h, 0.95));
    w.field("p99Ns", histogramQuantile(h, 0.99));
    w.key("log2Buckets").beginArray();
    int last = DurationHistogram::kBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (int b = 0; b < last; ++b) w.value(h.buckets[b]);
    w.endArray();
    w.endObject();
  }
  w.endObject();

  w.field("timelineSeconds", recorder.timelineSeconds());
  w.field("retainedEvents", static_cast<std::uint64_t>(recorder.eventCount()));
  w.field("droppedEvents", recorder.droppedEvents());

  // Process-wide flight recorder: every stats export carries the journal,
  // so a postmortem starts from whatever stats file survived (satellite of
  // docs/ROBUSTNESS.md — the journal replaces the last-error string).
  const Journal& journal = Journal::instance();
  w.field("journalTotal", journal.totalAppended());
  w.key("journal").beginArray();
  for (const JournalRecord& rec : journal.snapshot()) writeJournalRecord(w, rec);
  w.endArray();

  w.endObject();
  os << '\n';
}

// ---------------------------------------------------------------------------
// File variants
// ---------------------------------------------------------------------------

bool writeChromeTraceFile(const std::string& path, const TraceRecorder& recorder,
                          const std::string& processName) {
  std::ofstream os(path);
  if (!os) return false;
  writeChromeTrace(os, recorder, processName);
  return os.good();
}

bool writeStatsJsonFile(const std::string& path, const TraceRecorder& recorder,
                        const std::string& implName,
                        const std::string& resourceName) {
  std::ofstream os(path);
  if (!os) return false;
  writeStatsJson(os, recorder, implName, resourceName);
  return os.good();
}

}  // namespace bgl::obs
