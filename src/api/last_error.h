// Internal: the thread-local last-error channel behind
// bglGetLastErrorMessage. The channel lives in c_api.cpp; other C API
// translation units (sched_c_api.cpp, serve_c_api.cpp) use these hooks to
// attach detail to the codes they return. Not part of the public surface.
#pragma once

#include <string>

namespace bgl::api {

/// Replace the calling thread's last-error detail.
void setThreadLastError(std::string message);

/// Clear the calling thread's last-error detail (entry-point preamble).
void clearThreadLastError();

}  // namespace bgl::api
