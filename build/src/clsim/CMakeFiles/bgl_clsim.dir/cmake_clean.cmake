file(REMOVE_RECURSE
  "CMakeFiles/bgl_clsim.dir/cl_runtime.cpp.o"
  "CMakeFiles/bgl_clsim.dir/cl_runtime.cpp.o.d"
  "libbgl_clsim.a"
  "libbgl_clsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
