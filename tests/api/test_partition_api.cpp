// Multi-partition C API surface (PR 10): pattern-partition maps, per-slot
// category rates, model-batched transition-matrix updates, partition-
// restricted partials operations, and the per-partition root reduction —
// argument validation plus a full two-partition evaluation through the raw
// C entry points.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/bgl.h"

namespace {

constexpr int kTips = 4;
constexpr int kPatterns = 16;
constexpr int kPartitions = 2;
constexpr int kCategories = 2;
constexpr int kEdges = 2 * kTips - 2;  // matrices per partition

/// Two-partition instance: eigen/rates/weights/frequency slot per
/// partition, one matrix block of kEdges per partition.
int makePartitionedInstance() {
  return bglCreateInstance(kTips, /*partials=*/kTips - 1, /*compact=*/kTips,
                           /*states=*/4, kPatterns, /*eigen=*/kPartitions,
                           /*matrices=*/kPartitions * kEdges, kCategories,
                           /*scale=*/0, nullptr, 0, 0, 0, nullptr);
}

std::vector<int> contiguousMap() {
  std::vector<int> map(kPatterns, 0);
  for (int s = 10; s < kPatterns; ++s) map[s] = 1;  // 10 + 6 patterns
  return map;
}

void setTips(int inst) {
  for (int t = 0; t < kTips; ++t) {
    std::vector<int> states(kPatterns);
    for (int s = 0; s < kPatterns; ++s) states[s] = (s + t) % 4;
    ASSERT_EQ(bglSetTipStates(inst, t, states.data()), BGL_SUCCESS);
  }
}

/// Jukes-Cantor eigensystem (the textbook nucleotide model): transition
/// matrices mix states, so every pattern keeps a positive site likelihood.
void setModelSlot(int inst, int slot, const double* rates) {
  const double vectors[16] = {1.0, 2.0, 0.0, 0.5,    //
                              1.0, -2.0, 0.5, 0.0,   //
                              1.0, 2.0, 0.0, -0.5,   //
                              1.0, -2.0, -0.5, 0.0};
  const double inverse[16] = {0.25, 0.25, 0.25, 0.25,        //
                              0.125, -0.125, 0.125, -0.125,  //
                              0.0, 1.0, 0.0, -1.0,           //
                              1.0, 0.0, -1.0, 0.0};
  const double values[4] = {0.0, -4.0 / 3.0, -4.0 / 3.0, -4.0 / 3.0};
  ASSERT_EQ(bglSetEigenDecomposition(inst, slot, vectors, inverse, values),
            BGL_SUCCESS);
  const std::vector<double> freqs(4, 0.25);
  ASSERT_EQ(bglSetStateFrequencies(inst, slot, freqs.data()), BGL_SUCCESS);
  const std::vector<double> weights(kCategories, 1.0 / kCategories);
  ASSERT_EQ(bglSetCategoryWeights(inst, slot, weights.data()), BGL_SUCCESS);
  ASSERT_EQ(bglSetCategoryRatesWithIndex(inst, slot, rates), BGL_SUCCESS);
}

TEST(PartitionApi, PatternPartitionMapValidation) {
  const int inst = makePartitionedInstance();
  ASSERT_GE(inst, 0);
  const auto good = contiguousMap();
  EXPECT_EQ(bglSetPatternPartitions(inst, kPartitions, good.data()), BGL_SUCCESS);

  EXPECT_EQ(bglSetPatternPartitions(inst, 0, good.data()), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetPatternPartitions(inst, kPartitions, nullptr),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetPatternPartitions(99999, kPartitions, good.data()),
            BGL_ERROR_OUT_OF_RANGE);

  auto decreasing = good;
  decreasing[4] = 1;  // 1 then back to 0: not non-decreasing
  EXPECT_EQ(bglSetPatternPartitions(inst, kPartitions, decreasing.data()),
            BGL_ERROR_OUT_OF_RANGE);

  std::vector<int> skipping(kPatterns, 0);
  for (int s = 10; s < kPatterns; ++s) skipping[s] = 2;  // jumps 0 -> 2
  EXPECT_EQ(bglSetPatternPartitions(inst, 3, skipping.data()),
            BGL_ERROR_OUT_OF_RANGE);

  std::vector<int> startsAtOne(kPatterns, 1);
  EXPECT_EQ(bglSetPatternPartitions(inst, kPartitions, startsAtOne.data()),
            BGL_ERROR_OUT_OF_RANGE);

  const std::vector<int> incomplete(kPatterns, 0);  // never reaches 1
  EXPECT_EQ(bglSetPatternPartitions(inst, kPartitions, incomplete.data()),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_NE(std::string(bglGetLastErrorMessage()).find("covers only"),
            std::string::npos);

  // partitionCount == 1 (map ignored, may be NULL) restores the
  // single-partition state.
  EXPECT_EQ(bglSetPatternPartitions(inst, 1, nullptr), BGL_SUCCESS);
  bglFinalizeInstance(inst);
}

TEST(PartitionApi, CategoryRatesSlotValidation) {
  const int inst = makePartitionedInstance();
  ASSERT_GE(inst, 0);
  const std::vector<double> rates(kCategories, 1.0);
  EXPECT_EQ(bglSetCategoryRatesWithIndex(inst, 0, nullptr), BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetCategoryRatesWithIndex(inst, -1, rates.data()),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglSetCategoryRatesWithIndex(inst, kPartitions, rates.data()),
            BGL_ERROR_OUT_OF_RANGE);  // == eigenBufferCount
  EXPECT_EQ(bglSetCategoryRatesWithIndex(inst, 1, rates.data()), BGL_SUCCESS);
  // Slot 0 aliases the legacy global-rates entry point.
  EXPECT_EQ(bglSetCategoryRates(inst, rates.data()), BGL_SUCCESS);
  bglFinalizeInstance(inst);
}

TEST(PartitionApi, TransitionMatricesWithModelsValidation) {
  const int inst = makePartitionedInstance();
  ASSERT_GE(inst, 0);
  const std::vector<double> rates(kCategories, 1.0);
  setModelSlot(inst, 0, rates.data());

  const int eigen[2] = {0, 0};
  const int prob[2] = {0, 1};
  const double lengths[2] = {0.1, 0.2};
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, nullptr, nullptr, prob,
                                                  lengths, 2),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, nullptr, nullptr,
                                                  lengths, 2),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, nullptr, prob,
                                                  nullptr, 2),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, nullptr, prob,
                                                  lengths, -1),
            BGL_ERROR_OUT_OF_RANGE);

  const int badEigen[2] = {0, kPartitions};  // slot out of range
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, badEigen, nullptr, prob,
                                                  lengths, 2),
            BGL_ERROR_OUT_OF_RANGE);
  const int badProb[2] = {0, kPartitions * kEdges};  // matrix out of range
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, nullptr, badProb,
                                                  lengths, 2),
            BGL_ERROR_OUT_OF_RANGE);
  const int badRates[2] = {0, kPartitions};  // rates slot out of range
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, badRates, prob,
                                                  lengths, 2),
            BGL_ERROR_OUT_OF_RANGE);

  // NULL categoryRatesIndices: every edge uses slot 0 (legacy rates).
  EXPECT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen, nullptr, prob,
                                                  lengths, 2),
            BGL_SUCCESS);
  bglFinalizeInstance(inst);
}

TEST(PartitionApi, UpdatePartialsByPartitionValidation) {
  const int inst = makePartitionedInstance();
  ASSERT_GE(inst, 0);
  setTips(inst);
  const auto map = contiguousMap();
  ASSERT_EQ(bglSetPatternPartitions(inst, kPartitions, map.data()), BGL_SUCCESS);
  const std::vector<double> rates(kCategories, 1.0);
  setModelSlot(inst, 0, rates.data());
  std::vector<int> eigen(kEdges, 0), prob(kEdges);
  std::vector<double> lengths(kEdges, 0.1);
  for (int e = 0; e < kEdges; ++e) prob[e] = e;
  ASSERT_EQ(bglUpdateTransitionMatricesWithModels(inst, eigen.data(), nullptr,
                                                  prob.data(), lengths.data(),
                                                  kEdges),
            BGL_SUCCESS);

  BglOperationByPartition op{};
  op.destinationPartials = kTips;  // first internal buffer
  op.destinationScaleWrite = BGL_OP_NONE;
  op.destinationScaleRead = BGL_OP_NONE;
  op.child1Partials = 0;
  op.child1TransitionMatrix = 0;
  op.child2Partials = 1;
  op.child2TransitionMatrix = 1;
  op.partition = 0;

  EXPECT_EQ(bglUpdatePartialsByPartition(inst, nullptr, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);

  BglOperationByPartition bad = op;
  bad.partition = kPartitions;  // partition index out of range
  EXPECT_EQ(bglUpdatePartialsByPartition(inst, &bad, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);
  bad = op;
  bad.partition = -1;
  EXPECT_EQ(bglUpdatePartialsByPartition(inst, &bad, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);
  bad = op;
  bad.destinationPartials = 0;  // a tip as destination
  EXPECT_EQ(bglUpdatePartialsByPartition(inst, &bad, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);
  bad = op;
  bad.child1TransitionMatrix = kPartitions * kEdges;  // matrix out of range
  EXPECT_EQ(bglUpdatePartialsByPartition(inst, &bad, 1, BGL_OP_NONE),
            BGL_ERROR_OUT_OF_RANGE);

  EXPECT_EQ(bglUpdatePartialsByPartition(inst, &op, 1, BGL_OP_NONE), BGL_SUCCESS);
  bglFinalizeInstance(inst);
}

TEST(PartitionApi, FullTwoPartitionEvaluation) {
  const int inst = makePartitionedInstance();
  ASSERT_GE(inst, 0);
  setTips(inst);
  std::vector<double> weights(kPatterns, 1.0);
  ASSERT_EQ(bglSetPatternWeights(inst, weights.data()), BGL_SUCCESS);
  const auto map = contiguousMap();
  ASSERT_EQ(bglSetPatternPartitions(inst, kPartitions, map.data()), BGL_SUCCESS);

  // Each partition gets its own model slot and rate distribution.
  const double rates0[kCategories] = {1.0, 1.0};
  const double rates1[kCategories] = {0.5, 1.5};
  setModelSlot(inst, 0, rates0);
  setModelSlot(inst, 1, rates1);

  // One matrix block per partition, indexed by child node id.
  std::vector<int> eigen, ratesIdx, prob;
  std::vector<double> lengths;
  for (int q = 0; q < kPartitions; ++q) {
    for (int e = 0; e < kEdges; ++e) {
      eigen.push_back(q);
      ratesIdx.push_back(q);
      prob.push_back(q * kEdges + e);
      lengths.push_back(0.1 * (e + 1));
    }
  }
  ASSERT_EQ(bglUpdateTransitionMatricesWithModels(
                inst, eigen.data(), ratesIdx.data(), prob.data(), lengths.data(),
                static_cast<int>(prob.size())),
            BGL_SUCCESS);

  // Balanced 4-tip tree: (0,1)->4, (2,3)->5, (4,5)->6, for both partitions.
  std::vector<BglOperationByPartition> ops;
  for (int q = 0; q < kPartitions; ++q) {
    const int joins[3][3] = {{4, 0, 1}, {5, 2, 3}, {6, 4, 5}};
    for (const auto& j : joins) {
      BglOperationByPartition op{};
      op.destinationPartials = j[0];
      op.destinationScaleWrite = BGL_OP_NONE;
      op.destinationScaleRead = BGL_OP_NONE;
      op.child1Partials = j[1];
      op.child1TransitionMatrix = q * kEdges + j[1];
      op.child2Partials = j[2];
      op.child2TransitionMatrix = q * kEdges + j[2];
      op.partition = q;
      ops.push_back(op);
    }
  }
  ASSERT_EQ(bglUpdatePartialsByPartition(inst, ops.data(),
                                         static_cast<int>(ops.size()), BGL_OP_NONE),
            BGL_SUCCESS);

  const int roots[kPartitions] = {6, 6};
  const int slots[kPartitions] = {0, 1};
  const int parts[kPartitions] = {0, 1};
  double byPartition[kPartitions] = {0.0, 0.0};
  double total = 0.0;

  EXPECT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, nullptr, slots, slots, nullptr, parts, kPartitions,
                byPartition, &total),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, roots, slots, slots, nullptr, parts, kPartitions, nullptr,
                &total),
            BGL_ERROR_OUT_OF_RANGE);
  EXPECT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, roots, slots, slots, nullptr, nullptr, kPartitions,
                byPartition, &total),
            BGL_ERROR_OUT_OF_RANGE);
  const int badPart[kPartitions] = {0, kPartitions};
  EXPECT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, roots, slots, slots, nullptr, badPart, kPartitions,
                byPartition, &total),
            BGL_ERROR_OUT_OF_RANGE);

  ASSERT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, roots, slots, slots, nullptr, parts, kPartitions,
                byPartition, &total),
            BGL_SUCCESS);
  EXPECT_TRUE(std::isfinite(byPartition[0]));
  EXPECT_TRUE(std::isfinite(byPartition[1]));
  EXPECT_LT(byPartition[0], 0.0);
  EXPECT_LT(byPartition[1], 0.0);
  EXPECT_EQ(total, byPartition[0] + byPartition[1]);

  // The total output pointer is optional.
  EXPECT_EQ(bglCalculateRootLogLikelihoodsByPartition(
                inst, roots, slots, slots, nullptr, parts, kPartitions,
                byPartition, nullptr),
            BGL_SUCCESS);
  bglFinalizeInstance(inst);
}

}  // namespace
