// PR 5 perf smoke: asynchronous command streams + level-order batching.
//
// Runs a Fig. 4 deep-tree genomictest workload (balanced 384-tip
// nucleotide tree, 32 patterns, 4 rate categories, double precision — the
// launch-overhead-bound small-problem regime of Section VIII-A) on the
// host profile and compares the per-operation synchronous path
// (BGL_FLAG_COMPUTATION_SYNCH) against the level-order batched
// asynchronous path (BGL_FLAG_COMPUTATION_ASYNCH) for both simulated
// accelerator frameworks plus the thread-pool CPU implementation.
//
// This is a smoke test, not just a report: it exits non-zero unless
//  * every async log likelihood is BIT-IDENTICAL to its sync counterpart
//    (the determinism contract of docs/PERFORMANCE.md),
//  * the batched paths match the serial-CPU reference log likelihood
//    bit-for-bit,
//  * the async path is at least 1.2x faster than the sync path on both
//    simulated frameworks (wall clock; host rows are real measurements).
//
// Results land in BENCH_pr5.json (set BGL_BENCH_DIR to redirect).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/genomictest.h"

namespace {

constexpr double kMinFrameworkSpeedup = 1.2;

bgl::harness::RunResult runMode(long flags) {
  bgl::harness::ProblemSpec spec;
  spec.tips = 384;      // deep balanced tree: 383 ops over 9 levels
  spec.patterns = 32;   // launch-bound: dispatch overhead dominates per-op work
  spec.states = 4;
  spec.categories = 4;
  spec.singlePrecision = false;
  spec.resource = 0;    // host profile: measured wall time
  spec.requirementFlags = flags;
  spec.reps = 7;
  spec.warmupReps = 2;
  return bgl::harness::runThroughput(spec);
}

struct Config {
  const char* label;
  long flags;
  bool simulatedFramework;  // subject to the 1.2x speedup gate
};

}  // namespace

int main() {
  using namespace bgl;
  bench::printHeader(
      "PR 5 perf smoke: async command streams + level-order batching",
      "Ayres & Cummings 2017, Fig. 4 workload (Section VIII-A)");
  bench::printNote(
      "384 tips, 32 patterns, 4 states, 4 categories, double precision; "
      "sync = one launch per node, async = one fused launch per level");

  bench::JsonReport report(
      "pr5", "PR 5 perf smoke: async command streams + level-order batching",
      "Ayres & Cummings 2017, Fig. 4 workload (Section VIII-A)");
  report.note(
      "speedup = syncSeconds / asyncSeconds per implementation; gates: "
      "async logL bitwise-equal to sync logL, batched logL bitwise-equal "
      "to the serial-CPU reference, speedup >= 1.2 on both simulated "
      "frameworks");

  const std::vector<Config> configs = {
      {"cuda", BGL_FLAG_FRAMEWORK_CUDA, true},
      {"opencl", BGL_FLAG_FRAMEWORK_OPENCL, true},
      {"cpu-thread-pool", BGL_FLAG_THREADING_THREAD_POOL, false},
  };

  int failures = 0;
  try {
    const auto reference =
        runMode(BGL_FLAG_THREADING_NONE | BGL_FLAG_VECTOR_NONE |
                BGL_FLAG_COMPUTATION_SYNCH);
    if (!std::isfinite(reference.logL)) {
      // An underflowed -inf would satisfy the bitwise gates vacuously.
      std::fprintf(stderr, "FAIL: reference logL %.17g is not finite\n",
                   reference.logL);
      return 1;
    }
    std::printf("\n%-18s %10s %10s %10s %8s %22s\n", "implementation", "sync(s)",
                "async(s)", "speedup", "bitEq", "logL");
    std::printf("%-18s %10s %10s %10s %8s %22.12f\n", "cpu-serial (ref)", "-",
                "-", "-", "-", reference.logL);
    report.row()
        .field("implementation", "cpu-serial-reference")
        .field("mode", "sync")
        .field("seconds", reference.seconds)
        .field("gflops", reference.gflops)
        .field("logL", reference.logL);

    for (const auto& config : configs) {
      const auto sync = runMode(config.flags | BGL_FLAG_COMPUTATION_SYNCH);
      const auto async = runMode(config.flags | BGL_FLAG_COMPUTATION_ASYNCH);
      const double speedup = sync.seconds / async.seconds;
      const bool syncAsyncExact = sync.logL == async.logL;
      const bool referenceExact = async.logL == reference.logL;
      std::printf("%-18s %10.4f %10.4f %10.2f %8s %22.12f\n", config.label,
                  sync.seconds, async.seconds, speedup,
                  syncAsyncExact && referenceExact ? "yes" : "NO", async.logL);

      for (const auto* mode : {"sync", "async"}) {
        const auto& r = *mode == 's' ? sync : async;
        report.row()
            .field("implementation", config.label)
            .field("mode", mode)
            .field("seconds", r.seconds)
            .field("gflops", r.gflops)
            .field("logL", r.logL)
            .field("impl", r.implName);
      }
      report.row()
          .field("implementation", config.label)
          .field("mode", "summary")
          .field("speedup", speedup)
          .field("syncAsyncBitIdentical", syncAsyncExact ? 1 : 0)
          .field("referenceBitIdentical", referenceExact ? 1 : 0);

      if (!syncAsyncExact) {
        std::fprintf(stderr,
                     "FAIL %s: async logL %.17g != sync logL %.17g\n",
                     config.label, async.logL, sync.logL);
        ++failures;
      }
      if (!referenceExact) {
        std::fprintf(stderr,
                     "FAIL %s: batched logL %.17g != serial-CPU reference "
                     "%.17g\n",
                     config.label, async.logL, reference.logL);
        ++failures;
      }
      if (config.simulatedFramework && speedup < kMinFrameworkSpeedup) {
        std::fprintf(stderr,
                     "FAIL %s: async speedup %.3f < required %.2f\n",
                     config.label, speedup, kMinFrameworkSpeedup);
        ++failures;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    return 1;
  }

  if (failures > 0) {
    std::fprintf(stderr, "perf smoke failed: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("perf smoke passed: async >= %.1fx on both frameworks, all "
              "log likelihoods bit-identical\n",
              kMinFrameworkSpeedup);
  return 0;
}
