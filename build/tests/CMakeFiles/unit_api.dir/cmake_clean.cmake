file(REMOVE_RECURSE
  "CMakeFiles/unit_api.dir/api/test_accel_paths.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_accel_paths.cpp.o.d"
  "CMakeFiles/unit_api.dir/api/test_api_basic.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_api_basic.cpp.o.d"
  "CMakeFiles/unit_api.dir/api/test_cpu_behaviors.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_cpu_behaviors.cpp.o.d"
  "CMakeFiles/unit_api.dir/api/test_cross_impl.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_cross_impl.cpp.o.d"
  "CMakeFiles/unit_api.dir/api/test_derivatives_scaling.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_derivatives_scaling.cpp.o.d"
  "CMakeFiles/unit_api.dir/api/test_likelihood_correct.cpp.o"
  "CMakeFiles/unit_api.dir/api/test_likelihood_correct.cpp.o.d"
  "unit_api"
  "unit_api.pdb"
  "unit_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
