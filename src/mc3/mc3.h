// Metropolis-coupled Markov chain Monte Carlo for Bayesian phylogenetic
// inference — the MrBayes-like application substrate used by the
// application-level benchmark (Fig. 6 of the paper).
//
// N chains run at temperatures beta_i = 1/(1 + delta*i); chain 0 is the
// cold chain whose samples constitute the posterior. Chain-level
// concurrency mirrors MrBayes-MPI (one worker per chain, no shared
// likelihood state); within-chain parallelism comes from whichever
// evaluator backs the chain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/patterns.h"
#include "core/rng.h"
#include "mc3/evaluator.h"
#include "phylo/tree.h"

namespace bgl::mc3 {

struct Mc3Options {
  int chains = 4;
  double heatDelta = 0.1;       ///< incremental heating parameter
  int generations = 200;
  int swapInterval = 10;        ///< generations between swap attempts
  unsigned seed = 42;
  double branchPriorMean = 0.1; ///< exponential prior on branch lengths
  double branchMoveLambda = 2.0 * 0.0953;  ///< multiplier tuning (2 ln 1.1)
  double topologyMoveWeight = 0.3;         ///< probability of an NNI move
  bool parallelChains = true;   ///< one worker thread per chain (MPI-style)
};

struct Mc3Result {
  double coldLogL = 0.0;        ///< final cold-chain log likelihood
  double bestLogL = 0.0;
  long proposed = 0;
  long accepted = 0;
  long swapsProposed = 0;
  long swapsAccepted = 0;
  double seconds = 0.0;         ///< wall time of run()
  double likelihoodMeasuredSeconds = 0.0;  ///< from evaluator timelines
  double likelihoodModeledSeconds = 0.0;
  std::vector<double> coldTrace;///< cold-chain logL per generation
  std::string evaluatorName;
  phylo::Tree mapTree;          ///< best tree seen on the cold chain
};

class Mc3Sampler {
 public:
  Mc3Sampler(const PatternSet& data, const SubstitutionModel& model,
             const Mc3Options& options, EvaluatorFactory factory);
  ~Mc3Sampler();

  Mc3Result run();

 private:
  struct Chain;
  void step(Chain& chain);

  const PatternSet& data_;
  Mc3Options options_;
  Rng rng_;
  std::vector<std::unique_ptr<Chain>> chains_;
};

}  // namespace bgl::mc3
