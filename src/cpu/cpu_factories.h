// Factories for the CPU implementation family.
#pragma once

#include <memory>
#include <vector>

#include "api/implementation.h"

namespace bgl::cpu {

/// Append all CPU implementation factories (serial, SSE, AVX, futures,
/// thread-create, thread-pool, and SIMD+pool combinations) to `out`.
void appendCpuFactories(std::vector<std::unique_ptr<ImplementationFactory>>& out);

}  // namespace bgl::cpu
