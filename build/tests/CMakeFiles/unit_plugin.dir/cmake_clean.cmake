file(REMOVE_RECURSE
  "CMakeFiles/unit_plugin.dir/api/test_plugin_bglxx.cpp.o"
  "CMakeFiles/unit_plugin.dir/api/test_plugin_bglxx.cpp.o.d"
  "unit_plugin"
  "unit_plugin.pdb"
  "unit_plugin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
