#include "perfmodel/device_profiles.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace bgl::perf {

double modeledKernelSeconds(const DeviceProfile& device, const LaunchWork& work,
                            bool openCl) {
  const double overheadUs =
      openCl ? device.launchOverheadUsOpenCl : device.launchOverheadUsCuda;

  // Compute ceiling. Without fast FMA the fused mul+add pairs that dominate
  // the partials kernel issue as two instructions, cutting the achievable
  // rate for FMA-friendly work. Double precision scales by dpRatio.
  double peakGflops =
      device.spGflops * device.computeEfficiency * work.variantEfficiency;
  if (work.doublePrecision) peakGflops *= device.dpRatio;
  if (work.fmaFriendly && !(work.useFma && device.fastFma)) {
    // mul+add pairs: 2 instructions instead of 1 fused op => ~12% slower in
    // the compute-bound regime (ALUs still dual-issue most of the pairs;
    // calibrated to the Table IV double-precision gains).
    peakGflops *= 0.89;
  }
  const double computeSeconds = work.flops / (peakGflops * 1e9);

  // Bandwidth ceiling, with an LLC residency model for CPU-class devices.
  double effBandwidth = device.bandwidthGBs * device.bandwidthEfficiency;
  if (device.llcMb > 0.0 && work.workingSetBytes > 0.0 &&
      work.workingSetBytes < device.llcMb * 1024.0 * 1024.0) {
    effBandwidth = device.llcBandwidthGBs * device.bandwidthEfficiency;
  }
  const double memorySeconds = work.bytes / (effBandwidth * 1e9);

  // Softened maximum: real kernels near the roofline ridge pay a little of
  // both ceilings (this is what gives the small-but-nonzero FMA gains the
  // paper measures in the bandwidth-bound single-precision rows).
  const double c4 = computeSeconds * computeSeconds * computeSeconds * computeSeconds;
  const double m4 = memorySeconds * memorySeconds * memorySeconds * memorySeconds;
  const double body = std::pow(c4 + m4, 0.25);
  const double scheduling = work.numGroups * device.perGroupNs * 1e-9;
  return overheadUs * 1e-6 + scheduling + body;
}

double modeledCopySeconds(const DeviceProfile& device, double bytes) {
  return device.pcieLatencyUs * 1e-6 + bytes / (device.pcieGBs * 1e9);
}

const std::vector<DeviceProfile>& deviceRegistry() {
  static const std::vector<DeviceProfile> registry = [] {
    std::vector<DeviceProfile> v;

    // Index 0: the actual host CPU; launches on it are measured, not modeled.
    {
      DeviceProfile d;
      d.name = "Host CPU";
      d.vendor = "generic x86-64";
      d.deviceClass = DeviceClass::HostCpu;
      d.hostMeasured = true;
      d.computeUnits = static_cast<int>(std::thread::hardware_concurrency());
      if (d.computeUnits <= 0) d.computeUnits = 1;
      d.memoryGb = 8.0;
      d.bandwidthGBs = 20.0;
      d.spGflops = 100.0;
      d.dpRatio = 0.5;
      d.localMemKb = 32.0;
      d.fastFma = true;
      d.launchOverheadUsCuda = 0.5;
      d.launchOverheadUsOpenCl = 0.5;
      d.pcieGBs = 1e6;  // no real transfer: same address space
      d.pcieLatencyUs = 0.0;
      v.push_back(d);
    }

    // Table II devices. Efficiency constants are calibrated so that peak
    // modeled throughput approximates the paper's reported figures
    // (R9 Nano: 444.92 GFLOPS nucleotide / 1324.19 codon, single precision).
    {
      DeviceProfile d;
      d.name = "NVIDIA Quadro P5000";
      d.vendor = "NVIDIA Corporation";
      d.deviceClass = DeviceClass::Gpu;
      d.computeUnits = 2560;
      d.memoryGb = 16.0;
      d.bandwidthGBs = 288.0;
      d.spGflops = 8900.0;
      d.dpRatio = 1.0 / 32.0 * 8.0;  // GP104 DP is 1/32; partials mix lifts it
      d.localMemKb = 96.0;
      d.fastFma = true;
      d.launchOverheadUsCuda = 5.0;
      d.launchOverheadUsOpenCl = 16.0;
      d.computeEfficiency = 0.135;
      d.perGroupNs = 0.3;  // hardware work-group scheduling
      d.bandwidthEfficiency = 0.72;
      v.push_back(d);
    }
    {
      DeviceProfile d;
      d.name = "AMD Radeon R9 Nano";
      d.vendor = "Advanced Micro Devices";
      d.deviceClass = DeviceClass::Gpu;
      d.computeUnits = 4096;
      d.memoryGb = 4.0;
      d.bandwidthGBs = 512.0;
      d.spGflops = 8192.0;
      d.dpRatio = 0.13;  // calibrated: Table IV DP rows land near the ridge
      d.localMemKb = 32.0;  // less local memory than NVIDIA (Section VII-B1)
      d.fastFma = true;
      d.launchOverheadUsCuda = 0.0;  // CUDA unavailable on AMD
      d.launchOverheadUsOpenCl = 12.0;
      d.computeEfficiency = 0.162;
      d.perGroupNs = 0.3;  // hardware work-group scheduling
      d.bandwidthEfficiency = 0.695;
      v.push_back(d);
    }
    {
      DeviceProfile d;
      d.name = "AMD FirePro S9170";
      d.vendor = "Advanced Micro Devices";
      d.deviceClass = DeviceClass::Gpu;
      d.computeUnits = 2816;
      d.memoryGb = 32.0;
      d.bandwidthGBs = 320.0;
      d.spGflops = 5240.0;
      d.dpRatio = 0.5;  // Hawaii-class DP
      d.localMemKb = 32.0;
      d.fastFma = true;
      d.launchOverheadUsCuda = 0.0;
      d.launchOverheadUsOpenCl = 12.0;
      d.computeEfficiency = 0.19;
      d.perGroupNs = 0.3;  // hardware work-group scheduling
      d.bandwidthEfficiency = 0.72;
      v.push_back(d);
    }
    {
      DeviceProfile d;
      d.name = "Intel Xeon Phi 7210";
      d.vendor = "Intel Corporation";
      d.deviceClass = DeviceClass::ManyCore;
      d.computeUnits = 64;
      d.memoryGb = 16.0;        // MCDRAM
      d.bandwidthGBs = 450.0;
      d.spGflops = 5324.0;
      d.dpRatio = 0.5;
      d.localMemKb = 32.0;
      d.fastFma = true;
      d.launchOverheadUsCuda = 0.0;
      d.launchOverheadUsOpenCl = 180.0;  // fork/join across 256 HW threads
      d.computeEfficiency = 0.035;       // no platform-specific tuning (paper)
      d.bandwidthEfficiency = 0.22;
      d.llcMb = 32.0;
      d.llcBandwidthGBs = 700.0;
      d.perGroupNs = 150.0;  // wide fork/join across 256 hardware threads
      d.pcieGBs = 1e6;  // 7210 is a self-hosted CPU, not an accelerator card
      d.pcieLatencyUs = 0.0;
      v.push_back(d);
    }
    {
      DeviceProfile d;
      d.name = "2x Intel Xeon E5-2680v4";
      d.vendor = "Intel Corporation";
      d.deviceClass = DeviceClass::ManyCore;
      d.computeUnits = 56;  // 2 x 14 cores x 2 SMT
      d.memoryGb = 256.0;
      d.bandwidthGBs = 153.0;
      d.spGflops = 2150.0;  // 28 cores x 2.4 GHz x 32 SP FLOPs/cycle
      d.dpRatio = 0.5;
      d.localMemKb = 32.0;
      d.fastFma = true;
      d.launchOverheadUsCuda = 0.0;
      d.launchOverheadUsOpenCl = 12.0;
      d.computeEfficiency = 0.31;
      d.bandwidthEfficiency = 0.45;
      d.llcMb = 70.0;  // 2 x 35 MB L3
      d.llcBandwidthGBs = 600.0;
      d.perGroupNs = 25.0;  // calibrated to the Table V work-group sweep
      d.pcieGBs = 1e6;
      d.pcieLatencyUs = 0.0;
      v.push_back(d);
    }
    return v;
  }();
  return registry;
}

}  // namespace bgl::perf
