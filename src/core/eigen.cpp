#include "core/eigen.h"

#include <algorithm>
#include <cmath>

namespace bgl {

void jacobiEigenSymmetric(const double* matrix, int n,
                          std::vector<double>& eigenvalues,
                          std::vector<double>& eigenvectors) {
  std::vector<double> a(matrix, matrix + static_cast<std::size_t>(n) * n);
  eigenvectors.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) eigenvectors[static_cast<std::size_t>(i) * n + i] = 1.0;

  auto at = [&](int r, int c) -> double& { return a[static_cast<std::size_t>(r) * n + c]; };
  auto vt = [&](int r, int c) -> double& {
    return eigenvectors[static_cast<std::size_t>(r) * n + c];
  };

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n - 1; ++p)
      for (int q = p + 1; q < n; ++q) off += at(p, q) * at(p, q);
    if (off < 1e-30) break;
    if (sweep == kMaxSweeps - 1) throw Error("jacobiEigenSymmetric: no convergence");

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = at(p, p);
        const double aqq = at(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        at(p, p) = app - t * apq;
        at(q, q) = aqq + t * apq;
        at(p, q) = 0.0;
        at(q, p) = 0.0;
        for (int i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double aip = at(i, p);
            const double aiq = at(i, q);
            at(i, p) = aip - s * (aiq + tau * aip);
            at(p, i) = at(i, p);
            at(i, q) = aiq + s * (aip - tau * aiq);
            at(q, i) = at(i, q);
          }
          const double vip = vt(i, p);
          const double viq = vt(i, q);
          vt(i, p) = vip - s * (viq + tau * vip);
          vt(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
  }

  eigenvalues.resize(n);
  for (int i = 0; i < n; ++i) eigenvalues[i] = at(i, i);
}

EigenSystem decomposeReversible(const double* q, const double* pi, int n) {
  for (int i = 0; i < n; ++i) {
    if (!(pi[i] > 0.0)) throw Error("decomposeReversible: frequencies must be positive");
  }

  // Symmetrize: B = D^{1/2} Q D^{-1/2}. Average the off-diagonal pair to
  // absorb tiny asymmetries from finite-precision Q construction.
  std::vector<double> sqrtPi(n), invSqrtPi(n);
  for (int i = 0; i < n; ++i) {
    sqrtPi[i] = std::sqrt(pi[i]);
    invSqrtPi[i] = 1.0 / sqrtPi[i];
  }
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      b[static_cast<std::size_t>(i) * n + j] =
          sqrtPi[i] * q[static_cast<std::size_t>(i) * n + j] * invSqrtPi[j];
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (b[static_cast<std::size_t>(i) * n + j] +
                                b[static_cast<std::size_t>(j) * n + i]);
      b[static_cast<std::size_t>(i) * n + j] = avg;
      b[static_cast<std::size_t>(j) * n + i] = avg;
    }

  std::vector<double> eval;
  std::vector<double> v;
  jacobiEigenSymmetric(b.data(), n, eval, v);

  EigenSystem es;
  es.states = n;
  es.eval = std::move(eval);
  es.evec.resize(static_cast<std::size_t>(n) * n);
  es.ivec.resize(static_cast<std::size_t>(n) * n);
  // E = D^{-1/2} V, E^{-1} = V^T D^{1/2}
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      es.evec[static_cast<std::size_t>(i) * n + j] =
          invSqrtPi[i] * v[static_cast<std::size_t>(i) * n + j];
      es.ivec[static_cast<std::size_t>(i) * n + j] =
          v[static_cast<std::size_t>(j) * n + i] * sqrtPi[j];
    }
  return es;
}

std::vector<double> reconstructRateMatrix(const EigenSystem& es) {
  const int n = es.states;
  std::vector<double> out(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k)
        sum += es.evec[static_cast<std::size_t>(i) * n + k] * es.eval[k] *
               es.ivec[static_cast<std::size_t>(k) * n + j];
      out[static_cast<std::size_t>(i) * n + j] = sum;
    }
  return out;
}

}  // namespace bgl
